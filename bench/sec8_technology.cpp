// Section 8: isoefficiency as a function of technology-dependent factors.
//  * t_w enters the dominant isoefficiency terms cubed: k-fold faster CPUs
//    (k-fold larger relative t_s, t_w) force a ~k^3 larger problem.
//  * k-fold more processors only cost the isoefficiency power (k^{1.5} for
//    Cannon: 10x processors -> 31.6x problem).
//  * Hence, contrary to conventional wisdom, k-fold as many processors can
//    beat processors that are each k-fold as fast.

#include <cmath>
#include <iostream>

#include "analysis/technology.hpp"
#include "util/table.hpp"

using namespace hpmm;

namespace {

MachineParams make(double ts, double tw, const char* label) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  m.label = label;
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Section 8: technology-dependent factors ===\n\n";

  {
    std::cout << "--- Problem growth to hold E = 0.7 (Cannon, t_s = 0, t_w = 3) "
                 "---\n\n";
    const MachineParams mp = make(0.0, 3.0, "SIMD-like");
    const CannonModel cannon(mp);
    Table t({"k", "W growth for k x processors", "paper (k^1.5)",
             "W growth for k x faster CPUs", "paper (k^3)"});
    for (double k : {2.0, 4.0, 10.0}) {
      const auto more = problem_growth_more_procs(cannon, 1e6, k, 0.7);
      const auto faster =
          problem_growth_faster_procs<CannonModel>(mp, 1e6, k, 0.7);
      t.begin_row()
          .add_num(k, 3)
          .add(more ? format_number(*more, 4) : "-")
          .add_num(std::pow(k, 1.5), 4)
          .add(faster ? format_number(*faster, 4) : "-")
          .add_num(k * k * k, 4);
    }
    t.print_aligned(std::cout);
    std::cout << "\n[paper: 10x processors -> 31.6x problem; 10x faster CPUs -> "
                 "1000x problem]\n\n";
  }

  {
    std::cout << "--- Fixed problem: k x more processors vs k x faster "
                 "processors (Cannon) ---\n\n";
    Table t({"machine", "n", "p", "k", "T (k x procs)", "T (k x speed)",
             "winner"});
    struct Case {
      MachineParams mp;
      double n, p, k;
    };
    const Case cases[] = {
        {make(0.5, 3.0, "low-startup"), 4096, 256, 4},
        {make(0.5, 3.0, "low-startup"), 1024, 256, 4},
        {make(5000, 3.0, "high-startup"), 64, 16, 4},
        {make(150, 3.0, "nCUBE2-like"), 512, 64, 10},
        {make(150, 3.0, "nCUBE2-like"), 64, 64, 10},
    };
    for (const auto& c : cases) {
      const auto r = more_vs_faster<CannonModel>(c.mp, c.n, c.p, c.k);
      t.begin_row()
          .add(c.mp.label)
          .add_num(c.n, 4)
          .add_num(c.p, 4)
          .add_num(c.k, 2)
          .add(format_si(r.t_more_procs, 4))
          .add(format_si(r.t_faster_procs, 4))
          .add(r.more_procs_wins() ? "more procs" : "faster procs");
    }
    t.print_aligned(std::cout);
    std::cout
        << "\nLarge, compute-bound problems favour more processors; small,\n"
           "startup-bound problems favour faster processors — 'under certain\n"
           "conditions, it may be better to have a parallel computer with\n"
           "k-fold as many processors rather than one with the same number of\n"
           "processors, each k-fold as fast.'\n\n";
  }

  {
    std::cout << "--- The t_w^3 multiplier across algorithms (k = 10 faster "
                 "CPUs, E = 0.7) ---\n\n";
    const MachineParams mp = make(0.0, 3.0, "t_s=0");
    Table t({"algorithm", "W growth", "expected"});
    const auto g_c = problem_growth_faster_procs<CannonModel>(mp, 1e6, 10, 0.7);
    // Berntsen at a p where its t_w term (not the p^2 concurrency bound)
    // sets the isoefficiency.
    const auto g_b = problem_growth_faster_procs<BerntsenModel>(mp, 1024, 10, 0.7);
    const auto g_g = problem_growth_faster_procs<GkModel>(mp, 1e6, 10, 0.7);
    t.begin_row().add("cannon").add(g_c ? format_number(*g_c, 4) : "-").add("1000 (t_w^3)");
    t.begin_row().add("berntsen").add(g_b ? format_number(*g_b, 4) : "-").add("1000 (t_w^3)");
    t.begin_row().add("gk").add(g_g ? format_number(*g_g, 4) : "-").add("1000 (t_w^3)");
    t.print_aligned(std::cout);
  }
  return 0;
}
