#include "serve/script.hpp"

#include <cstdlib>
#include <istream>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw PreconditionError("serve script line " + std::to_string(line) + ": " +
                          what);
}

double parse_double(std::size_t line, const std::string& key,
                    const std::string& value) {
  if (value.empty()) fail(line, key + " has an empty value");
  const char* begin = value.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + value.size()) {
    fail(line, key + " expects a number, got '" + value + "'");
  }
  return v;
}

std::size_t parse_size(std::size_t line, const std::string& key,
                       const std::string& value) {
  for (const char c : value) {
    if (c < '0' || c > '9') {
      fail(line, key + " expects a non-negative integer, got '" + value + "'");
    }
  }
  if (value.empty()) fail(line, key + " has an empty value");
  return static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
}

double parse_prob(std::size_t line, const std::string& key,
                  const std::string& value) {
  const double v = parse_double(line, key, value);
  if (v < 0.0 || v > 1.0) {
    fail(line, key + " must be within [0, 1], got '" + value + "'");
  }
  return v;
}

AbftMode parse_abft(std::size_t line, const std::string& value) {
  if (value == "off") return AbftMode::kOff;
  if (value == "detect") return AbftMode::kDetect;
  if (value == "correct") return AbftMode::kCorrect;
  fail(line, "abft must be off, detect or correct, got '" + value + "'");
}

StragglerSpec parse_straggler(std::size_t line, const std::string& value) {
  const auto colon = value.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) {
    fail(line, "straggler expects pid:factor, got '" + value + "'");
  }
  StragglerSpec s;
  s.pid = static_cast<ProcId>(
      parse_size(line, "straggler pid", value.substr(0, colon)));
  s.factor = parse_double(line, "straggler factor", value.substr(colon + 1));
  if (s.factor < 1.0) {
    fail(line, "straggler factor must be >= 1, got '" + value + "'");
  }
  return s;
}

TenantRequest parse_request_line(std::size_t line_no, std::istringstream& in) {
  TenantRequest req;
  FaultPlan plan;
  bool any_fault_key = false;
  bool have_n = false, have_p = false;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail(line_no, "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "tenant") {
      if (value.empty()) fail(line_no, "tenant must not be empty");
      req.tenant = value;
    } else if (key == "arrival") {
      req.arrival = parse_double(line_no, key, value);
      if (req.arrival < 0.0) fail(line_no, "arrival must be >= 0");
    } else if (key == "algo") {
      req.algo = value;
    } else if (key == "n") {
      req.n = parse_size(line_no, key, value);
      have_n = true;
    } else if (key == "p") {
      req.p = parse_size(line_no, key, value);
      have_p = true;
    } else if (key == "machine") {
      (void)serve_machine_params(value);  // validates the name
      req.machine = value;
    } else if (key == "deadline_factor") {
      req.deadline_factor = parse_double(line_no, key, value);
      if (req.deadline_factor < 0.0) {
        fail(line_no, "deadline_factor must be >= 0");
      }
    } else if (key == "drop") {
      plan.drop_prob = parse_prob(line_no, key, value);
      any_fault_key = true;
    } else if (key == "dup") {
      plan.duplicate_prob = parse_prob(line_no, key, value);
      any_fault_key = true;
    } else if (key == "delay") {
      plan.delay_prob = parse_prob(line_no, key, value);
      any_fault_key = true;
    } else if (key == "delay_factor") {
      plan.delay_factor = parse_double(line_no, key, value);
      if (plan.delay_factor < 0.0) fail(line_no, "delay_factor must be >= 0");
      any_fault_key = true;
    } else if (key == "corrupt") {
      plan.corrupt_prob = parse_prob(line_no, key, value);
      any_fault_key = true;
    } else if (key == "straggler") {
      plan.stragglers.push_back(parse_straggler(line_no, value));
      any_fault_key = true;
    } else if (key == "abft") {
      plan.abft = parse_abft(line_no, value);
      any_fault_key = true;
    } else if (key == "fault_seed") {
      plan.seed = parse_size(line_no, key, value);
      any_fault_key = true;
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!have_n || req.n == 0) fail(line_no, "n must be a positive integer");
  if (!have_p || req.p == 0) fail(line_no, "p must be a positive integer");
  if (any_fault_key) req.faults = std::make_shared<FaultPlan>(plan);
  return req;
}

void parse_slo_line(std::size_t line_no, std::istringstream& in,
                    SloTargets& slos) {
  std::string tenant = "*";
  SloTarget target;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail(line_no, "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "tenant") {
      if (value.empty()) fail(line_no, "tenant must not be empty");
      tenant = value;
    } else if (key == "slo_p99") {
      target.p99 = parse_double(line_no, key, value);
      if (target.p99 <= 0.0) fail(line_no, "slo_p99 must be > 0");
    } else if (key == "slo_availability") {
      target.availability = parse_double(line_no, key, value);
      if (target.availability <= 0.0 || target.availability >= 1.0) {
        fail(line_no, "slo_availability must be within (0, 1), got '" +
                          value + "'");
      }
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!target.any()) {
    fail(line_no, "slo line must set slo_p99 and/or slo_availability");
  }
  if (!slos.emplace(tenant, target).second) {
    fail(line_no, "duplicate slo for tenant '" + tenant + "'");
  }
}

ServeWorkload parse_workload(std::istream& in, bool allow_slo) {
  ServeWorkload workload;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tenant names and other values flow into JSONL journals and reports;
    // json_escape handles any byte, but raw control characters in a script
    // are always a mistake (a stray CR from a CRLF file would otherwise
    // silently become part of the last value on the line). Reject them
    // here, naming the line.
    for (const char c : line) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u == '\r') {
        fail(line_no,
             "embedded newline (CR) — script lines must be LF-terminated "
             "with no carriage returns");
      }
      if ((u < 0x20 && c != '\t') || u == 0x7f) {
        fail(line_no, "control character (byte " +
                          std::to_string(static_cast<unsigned>(u)) +
                          ") in script line");
      }
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head[0] == '#') continue;
    if (allow_slo && head == "slo") {
      parse_slo_line(line_no, tokens, workload.slos);
      continue;
    }
    if (head != "request") {
      fail(line_no, allow_slo
                        ? "expected 'request ...', 'slo ...' or a # comment, "
                          "got '" + head + "'"
                        : "expected 'request ...' or a # comment, got '" +
                              head + "'");
    }
    TenantRequest req = parse_request_line(line_no, tokens);
    req.id = workload.requests.size();
    workload.requests.push_back(std::move(req));
  }
  return workload;
}

}  // namespace

std::vector<TenantRequest> parse_serve_script(std::istream& in) {
  return parse_workload(in, /*allow_slo=*/false).requests;
}

std::vector<TenantRequest> parse_serve_script(const std::string& text) {
  std::istringstream in(text);
  return parse_serve_script(in);
}

ServeWorkload parse_serve_workload(std::istream& in) {
  return parse_workload(in, /*allow_slo=*/true);
}

ServeWorkload parse_serve_workload(const std::string& text) {
  std::istringstream in(text);
  return parse_serve_workload(in);
}

std::vector<TenantRequest> generate_workload(const WorkloadOptions& options) {
  require(options.tenants >= 1, "generate_workload: tenants must be >= 1");
  require(options.mean_gap >= 0.0, "generate_workload: mean_gap must be >= 0");
  require(options.fault_fraction >= 0.0 && options.fault_fraction <= 1.0,
          "generate_workload: fault_fraction must be within [0, 1]");
  (void)serve_machine_params(options.machine);  // validates the name

  // Simulatable (algo, n, p) classes, kept small so workloads stay fast;
  // the "" entries exercise the selector (and hence the plan cache).
  struct Shape {
    const char* algo;
    std::size_t n, p;
  };
  static constexpr Shape kShapes[] = {
      {"cannon", 16, 16}, {"cannon", 32, 16}, {"gk", 16, 8}, {"gk", 32, 8},
      {"simple", 16, 16}, {"", 16, 16},       {"", 32, 4},
  };
  constexpr std::size_t kShapeCount = sizeof(kShapes) / sizeof(kShapes[0]);

  Rng rng(options.seed);
  std::vector<TenantRequest> requests;
  requests.reserve(options.requests);
  double arrival = 0.0;
  for (std::size_t i = 0; i < options.requests; ++i) {
    const Shape& shape = kShapes[rng.next_below(kShapeCount)];
    TenantRequest req;
    req.id = i;
    req.tenant = "t" + std::to_string(rng.next_below(options.tenants));
    req.algo = shape.algo;
    req.n = shape.n;
    req.p = shape.p;
    req.machine = options.machine;
    arrival += rng.uniform(0.0, 2.0 * options.mean_gap);
    req.arrival = arrival;
    if (rng.next_double() < options.fault_fraction) {
      auto plan = std::make_shared<FaultPlan>();
      plan->corrupt_prob = 0.05;
      plan->abft = AbftMode::kCorrect;
      plan->seed = rng.next_u64();
      req.faults = std::move(plan);
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace hpmm
