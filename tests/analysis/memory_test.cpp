#include "analysis/memory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Memory, MaxOrderMatchesFootprintAlgebra) {
  // Cannon stores 3 n^2/p words: M words allow n = sqrt(M p / 3).
  const CannonModel m(params(150, 3));
  const auto n = max_order_for_memory(m, 100.0, 30000.0);
  ASSERT_TRUE(n);
  EXPECT_NEAR(*n, std::sqrt(30000.0 * 100.0 / 3.0), 1.0);
}

TEST(Memory, SimpleAlgorithmFitsMuchLess) {
  // O(n^2/sqrt(p)) vs O(n^2/p): at the same memory, Simple supports a far
  // smaller matrix than Cannon (Section 4.1's memory-inefficiency).
  const MachineParams mp = params(150, 3);
  const SimpleModel simple(mp);
  const CannonModel cannon(mp);
  const double p = 1024, mem = 1e6;
  const auto n_simple = max_order_for_memory(simple, p, mem);
  const auto n_cannon = max_order_for_memory(cannon, p, mem);
  ASSERT_TRUE(n_simple && n_cannon);
  EXPECT_LT(*n_simple, *n_cannon / 3.0);
}

TEST(Memory, TinyMemoryIsInfeasible) {
  const CannonModel m(params(1, 1));
  // A single processor needs 3 words even for a 1x1 problem.
  EXPECT_FALSE(max_order_for_memory(m, 1.0, 1.0).has_value());
  EXPECT_THROW(max_order_for_memory(m, 0.5, 100.0), PreconditionError);
  EXPECT_THROW(max_order_for_memory(m, 4.0, -1.0), PreconditionError);
}

TEST(Memory, MaxEfficiencyGrowsWithMemory) {
  const CannonModel m(params(150, 3));
  const double p = 4096;
  const auto e_small = max_efficiency_for_memory(m, p, 1e4);
  const auto e_big = max_efficiency_for_memory(m, p, 1e7);
  ASSERT_TRUE(e_small && e_big);
  EXPECT_LT(*e_small, *e_big);
  EXPECT_LE(*e_big, 1.0);
}

TEST(Memory, CannonOutlastsSimpleUnderMemoryCeiling) {
  // With a fixed per-processor memory budget, the memory-efficient
  // formulation can keep a target efficiency out to far more processors.
  const MachineParams mp = params(10, 3);
  const CannonModel cannon(mp);
  const SimpleModel simple(mp);
  const double e = 0.5, mem = 1e6;
  const auto p_cannon = max_procs_at_efficiency_and_memory(cannon, e, mem);
  const auto p_simple = max_procs_at_efficiency_and_memory(simple, e, mem);
  ASSERT_TRUE(p_cannon && p_simple);
  EXPECT_GT(*p_cannon, 4.0 * *p_simple);
}

TEST(Memory, DnsRespectsItsApplicabilityCap) {
  // DNS stores 3 words regardless — memory never binds, but n <= sqrt(p)
  // does; max_efficiency must respect it (and stay below the ceiling).
  const DnsModel m(params(10, 2));
  const auto e = max_efficiency_for_memory(m, 4096.0, 100.0);
  ASSERT_TRUE(e);
  EXPECT_LE(*e, m.efficiency_ceiling() + 1e-12);
  EXPECT_GT(*e, 0.0);
}

TEST(Memory, UnconstrainedWhenMemoryHuge) {
  const CannonModel m(params(10, 3));
  const auto p_max = max_procs_at_efficiency_and_memory(m, 0.5, 1e30, 1e9);
  ASSERT_TRUE(p_max);
  EXPECT_DOUBLE_EQ(*p_max, 1e9);  // hit the search cap, not the ceiling
}

TEST(Memory, EfficiencyTargetAboveCeilingCannotScale) {
  // Above the DNS efficiency ceiling only the trivial p = 1 "configuration"
  // meets the target (E = 1 serially) — the search collapses to ~1.
  const DnsModel m(params(10, 2));  // ceiling 1/25
  const auto p_max = max_procs_at_efficiency_and_memory(m, 0.5, 1e9);
  ASSERT_TRUE(p_max);
  EXPECT_LT(*p_max, 1.01);
}

}  // namespace
}  // namespace hpmm
