// The `hpmm` command-line tool: the paper's algorithm library, selector and
// analysis machinery behind one binary. Run without arguments for usage.

#include <exception>
#include <iostream>

#include "tools/commands.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  // dispatch() translates PreconditionError/InternalError from the commands
  // it knows about; this is the last line of defence for anything escaping
  // it (argument parsing, stream failures, unforeseen exceptions), keeping
  // the exit-code contract: 1 = caller error, 2 = bug in hpmm.
  try {
    const hpmm::CliArgs args(argc, argv);
    return hpmm::tools::dispatch(args, std::cout, std::cerr);
  } catch (const hpmm::PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const hpmm::InternalError& e) {
    std::cerr << "internal error (please report): " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "internal error (please report): " << e.what() << "\n";
    return 2;
  }
}
