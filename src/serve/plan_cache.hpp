#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/request.hpp"

namespace hpmm {

/// A resolved service plan: what would actually run for a request class.
/// Resolution invokes the selector (or the named formulation's model), so
/// the server caches plans by request class instead of re-planning every
/// arrival.
struct ServicePlan {
  bool applicable = false;  ///< some formulation fits (n, p)
  std::string algorithm;    ///< winning formulation ("" when !applicable)
  double t_model = 0.0;     ///< its model-predicted T_p (deadline baseline)
};

/// Cache key for a request's plan: every input the planner's answer depends
/// on — the requested formulation, the problem shape and the machine
/// technology. Faults and deadlines never influence planning, so they are
/// deliberately absent: a retried or chaos-wrapped request shares its clean
/// twin's plan.
std::string plan_cache_key(const TenantRequest& request,
                           const MachineParams& machine);

/// Bounded LRU cache of resolved plans with hit/miss counters. Lookups
/// refresh recency; inserting at capacity evicts the least recently used
/// entry. Capacity 0 is a valid pass-through configuration: inserts are
/// dropped and every lookup misses, which disables plan caching without a
/// special case at the call site. Single-threaded like the serve event loop
/// that owns it.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity);

  /// The cached plan for `key` (refreshing its recency), or null on a miss.
  /// Counts one hit or one miss per call.
  const ServicePlan* lookup(const std::string& key);

  /// Insert (or overwrite) `key`, evicting the LRU entry when at capacity.
  void insert(const std::string& key, ServicePlan plan);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// hits / (hits + misses); 0 before the first lookup.
  double hit_rate() const noexcept;

 private:
  using Entry = std::pair<std::string, ServicePlan>;
  std::size_t capacity_;
  std::list<Entry> entries_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hpmm
