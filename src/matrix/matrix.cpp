#include "matrix/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hpmm {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill_value)
    : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::slice(std::size_t r0, std::size_t c0, std::size_t h,
                     std::size_t w) const {
  require(r0 + h <= rows_ && c0 + w <= cols_, "Matrix::slice: out of range");
  Matrix out(h, w);
  for (std::size_t r = 0; r < h; ++r) {
    std::copy_n(row_ptr(r0 + r) + c0, w, out.row_ptr(r));
  }
  return out;
}

void Matrix::paste(const Matrix& block, std::size_t r0, std::size_t c0) {
  require(r0 + block.rows() <= rows_ && c0 + block.cols() <= cols_,
          "Matrix::paste: out of range");
  for (std::size_t r = 0; r < block.rows(); ++r) {
    std::copy_n(block.row_ptr(r), block.cols(), row_ptr(r0 + r) + c0);
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double frobenius_norm(const Matrix& m) noexcept {
  double sum = 0.0;
  for (double v : m.data()) sum += v * v;
  return std::sqrt(sum);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "max_abs_diff: shape mismatch");
  double worst = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::fabs(da[i] - db[i]));
  }
  return worst;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  return max_abs_diff(a, b) <= tol;
}

}  // namespace hpmm
