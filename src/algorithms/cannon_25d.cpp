#include "algorithms/cannon_25d.hpp"

#include <cmath>

#include "matrix/block.hpp"
#include "matrix/checksum.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/torus3d.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr int kTagReplA = 1;
constexpr int kTagReplB = 2;
constexpr int kTagAlignA = 3;
constexpr int kTagAlignB = 4;
constexpr int kTagShiftA = 5;
constexpr int kTagShiftB = 6;
constexpr int kTagReduceC = 7;

}  // namespace

void Cannon25DAlgorithm::check_applicable(std::size_t n, std::size_t p) const {
  require(p >= 1, "cannon25d: need at least one processor");
  require(c_ >= 1 && is_pow2(c_),
          "cannon25d: --c must be a power of two (binomial replication tree)");
  require(p % c_ == 0 && is_perfect_square(p / c_),
          "cannon25d: p must equal c * q^2 for the q x q x c grid (see --c)");
  require(c_ * c_ * c_ <= p,
          "cannon25d: --c must satisfy c^3 <= p (c <= p^(1/3))");
  const std::size_t q = exact_sqrt(p / c_);
  require(q % c_ == 0,
          "cannon25d: --c must divide sqrt(p/c) so each layer runs an "
          "integral number of multiply-shift steps");
  require(p <= c_ * n * n,
          "cannon25d: at most c n^2 processors usable (q <= n per layer)");
  require(n % q == 0, "cannon25d: sqrt(p/c) must divide n");
}

MatmulResult Cannon25DAlgorithm::run(const Matrix& a, const Matrix& b,
                                     std::size_t p,
                                     const MachineParams& params) const {
  const std::size_t n = validated_order(a, b);
  check_applicable(n, p);
  const std::size_t c = c_;
  const std::size_t q = exact_sqrt(p / c);  // per-layer mesh side sqrt(p/c)
  const std::size_t s = q / c;              // multiply-shift steps per layer

  const Torus3D grid3(q, q, c);
  auto topo = std::make_shared<Torus3D>(grid3);
  SimMachine machine(topo, params);

  // ABFT: blocks crossing the network carry row/column checksums, verified
  // (optionally corrected) on receipt; tree collectives additionally verify
  // at every hop so corruptions cannot compound (same scheme as Cannon/GK).
  const AbftMode abft = params.faults ? params.faults->abft : AbftMode::kOff;
  const auto guard = [abft](Matrix blk) {
    return abft == AbftMode::kOff ? std::move(blk) : with_checksums(blk);
  };
  const auto unguard = [abft, &machine](Matrix blk) {
    if (abft != AbftMode::kOff) {
      const ChecksumVerdict v =
          verify_checksums(blk, abft == AbftMode::kCorrect);
      if (!v.consistent) machine.note_abft(true, v.corrected);
      blk = strip_checksums(blk);
    }
    return blk;
  };
  const OnReceive hop_check =
      abft == AbftMode::kOff
          ? OnReceive{}
          : OnReceive{[abft, &machine](Matrix& blk) {
              const ChecksumVerdict v =
                  verify_checksums(blk, abft == AbftMode::kCorrect);
              if (!v.consistent) machine.note_abft(true, v.corrected);
            }};

  // Initial layout: layer 0 holds A and B in Cannon's q x q block
  // distribution; replication fills the other layers.
  const BlockGrid grid(n, n, q, q);
  const std::vector<Matrix> a0 = scatter_blocks(a, grid);
  const std::vector<Matrix> b0 = scatter_blocks(b, grid);
  const std::size_t bw = grid.block_words();

  std::vector<Matrix> a_blk(p), b_blk(p);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < q; ++j) {
      a_blk[grid3.rank(i, j, 0)] = a0[i * q + j];
      b_blk[grid3.rank(i, j, 0)] = b0[i * q + j];
    }
  }
  // Every processor ends up holding one A, one B and one C block of
  // (n/q)^2 = c n^2/p words each: the Theta(c n^2/p) replication cost.
  for (ProcId pid = 0; pid < p; ++pid) machine.note_alloc(pid, 3 * bw);

  // --- Phase 1: replicate A and B along the fibers (binomial one-to-all
  // broadcast from layer 0, log2 c rounds of t_s + t_w m each).
  if (c > 1) {
    machine.begin_phase("replicate-a");
    for (std::size_t i = 0; i < q; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        const std::vector<ProcId> fiber = grid3.fiber(i, j);
        std::vector<Matrix> copies =
            broadcast_binomial(machine, fiber, 0, kTagReplA,
                               guard(std::move(a_blk[fiber[0]])), hop_check);
        for (std::size_t l = 0; l < c; ++l) {
          a_blk[fiber[l]] = unguard(std::move(copies[l]));
        }
      }
    }
    machine.synchronize();
    machine.end_phase();
    machine.begin_phase("replicate-b");
    for (std::size_t i = 0; i < q; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        const std::vector<ProcId> fiber = grid3.fiber(i, j);
        std::vector<Matrix> copies =
            broadcast_binomial(machine, fiber, 0, kTagReplB,
                               guard(std::move(b_blk[fiber[0]])), hop_check);
        for (std::size_t l = 0; l < c; ++l) {
          b_blk[fiber[l]] = unguard(std::move(copies[l]));
        }
      }
    }
    machine.synchronize();
    machine.end_phase();
  }

  // --- Phase 2: staggered Cannon alignment. Layer l starts at global step
  // l*s, so its A block (i, j) moves (i + l*s) mod q steps west and its B
  // block (j + l*s) mod q steps north; after alignment processor (i, j, l)
  // holds A(i, i+j+l*s) and B(i+j+l*s, j). Blocks with zero shift stay put
  // (one row/column per layer), exactly as in plain Cannon.
  if (q > 1) {
    PhaseScope scope(machine, "align");
    std::vector<Message> align_a;
    for (std::size_t l = 0; l < c; ++l) {
      for (std::size_t i = 0; i < q; ++i) {
        const std::size_t shift = (i + l * s) % q;
        if (shift == 0) continue;
        for (std::size_t j = 0; j < q; ++j) {
          const ProcId src = grid3.rank(i, j, l);
          align_a.emplace_back(src, grid3.west(src, shift), kTagAlignA,
                               guard(std::move(a_blk[src])));
        }
      }
    }
    machine.exchange(std::move(align_a));
    for (std::size_t l = 0; l < c; ++l) {
      for (std::size_t i = 0; i < q; ++i) {
        if ((i + l * s) % q == 0) continue;
        for (std::size_t j = 0; j < q; ++j) {
          const ProcId dst = grid3.west(grid3.rank(i, j, l), (i + l * s) % q);
          a_blk[dst] =
              unguard(std::move(machine.receive(dst, kTagAlignA).blocks.front()));
        }
      }
    }
    std::vector<Message> align_b;
    for (std::size_t l = 0; l < c; ++l) {
      for (std::size_t j = 0; j < q; ++j) {
        const std::size_t shift = (j + l * s) % q;
        if (shift == 0) continue;
        for (std::size_t i = 0; i < q; ++i) {
          const ProcId src = grid3.rank(i, j, l);
          align_b.emplace_back(src, grid3.north(src, shift), kTagAlignB,
                               guard(std::move(b_blk[src])));
        }
      }
    }
    machine.exchange(std::move(align_b));
    for (std::size_t l = 0; l < c; ++l) {
      for (std::size_t j = 0; j < q; ++j) {
        if ((j + l * s) % q == 0) continue;
        for (std::size_t i = 0; i < q; ++i) {
          const ProcId dst = grid3.north(grid3.rank(i, j, l), (j + l * s) % q);
          b_blk[dst] =
              unguard(std::move(machine.receive(dst, kTagAlignB).blocks.front()));
        }
      }
    }
  }

  // --- Phase 3: s = q/c multiply-shift steps per layer (A rolls west, B
  // rolls north, the final step needs no shift). Across the c layers the
  // staggered starts cover all q of Cannon's steps exactly once.
  std::vector<Matrix> c_blk(p);
  for (ProcId pid = 0; pid < p; ++pid) {
    c_blk[pid] = Matrix(grid.block_rows(), grid.block_cols());
  }
  for (std::size_t step = 0; step < s; ++step) {
    std::vector<SimMachine::ComputeTask> phase;
    phase.reserve(p);
    for (ProcId pid = 0; pid < p; ++pid) {
      phase.push_back({pid, &c_blk[pid], {{&a_blk[pid], &b_blk[pid]}}});
    }
    {
      PhaseScope scope(machine, "multiply");
      machine.compute_multiply_add_batch(phase);
    }
    if (step + 1 == s) break;
    PhaseScope scope(machine, "shift");
    std::vector<Message> shift_a, shift_b;
    shift_a.reserve(p);
    shift_b.reserve(p);
    for (ProcId pid = 0; pid < p; ++pid) {
      shift_a.emplace_back(pid, grid3.west(pid), kTagShiftA,
                           guard(std::move(a_blk[pid])));
      shift_b.emplace_back(pid, grid3.north(pid), kTagShiftB,
                           guard(std::move(b_blk[pid])));
    }
    machine.exchange(std::move(shift_a));
    machine.exchange(std::move(shift_b));
    for (ProcId pid = 0; pid < p; ++pid) {
      a_blk[pid] =
          unguard(std::move(machine.receive(pid, kTagShiftA).blocks.front()));
      b_blk[pid] =
          unguard(std::move(machine.receive(pid, kTagShiftB).blocks.front()));
    }
  }

  // --- Phase 4: sum the c partial C contributions along each fiber onto
  // layer 0 (binomial reduction, log2 c rounds; checksum linearity lets the
  // guarded partials flow through the tree and be verified at the root).
  std::vector<Matrix> c_layer0(q * q);
  if (c > 1) {
    PhaseScope scope(machine, "reduce");
    machine.synchronize();
    for (std::size_t i = 0; i < q; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        const std::vector<ProcId> fiber = grid3.fiber(i, j);
        std::vector<Matrix> contribs;
        contribs.reserve(c);
        for (std::size_t l = 0; l < c; ++l) {
          contribs.push_back(guard(std::move(c_blk[fiber[l]])));
        }
        c_layer0[i * q + j] = unguard(reduce_binomial(
            machine, fiber, 0, kTagReduceC, std::move(contribs), 0.0,
            hop_check));
      }
    }
  } else {
    for (std::size_t i = 0; i < q; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        c_layer0[i * q + j] = std::move(c_blk[grid3.rank(i, j, 0)]);
      }
    }
  }
  machine.synchronize();
  machine.assert_clean_run();

  MatmulResult result;
  result.c = gather_blocks(c_layer0, grid);
  result.report =
      machine.report(name(), n, std::pow(static_cast<double>(n), 3.0));
  if (machine.tracing()) result.trace = machine.trace();
  return result;
}

}  // namespace hpmm
