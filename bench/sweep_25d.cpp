// 2.5D replication sweep (DESIGN.md §8): simulate cannon25d across the
// replication factor c and report how the communication structure trades
// memory for bandwidth. Two sweeps:
//
//   * fixed per-layer mesh (q = 16, n = 64): c grows the machine, p = c q^2 —
//     strong scaling by replication at constant layer geometry;
//   * fixed machine (p = 4096, n = 128): c redistributes the same processors
//     into fewer, deeper layers — the classic 2.5D c-sweep.
//
// Prints both tables and writes the combined rows as JSON for downstream
// tooling:  ./sweep_25d [--out=BENCH_25d.json]

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/cannon_25d.hpp"
#include "analysis/perf_model.hpp"
#include "machine/params.hpp"
#include "matrix/generate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace hpmm;

namespace {

struct SweepRow {
  std::string sweep;
  std::size_t n = 0, p = 0, c = 0, q = 0;
  double t_sim = 0.0, t_model = 0.0, ratio = 0.0, efficiency = 0.0;
  double words_per_proc = 0.0;        // all phases
  double layer_words_per_proc = 0.0;  // alignment + multiply-shift only
  std::uint64_t peak_words = 0;       // per-processor storage high-water mark
};

SweepRow run_point(const std::string& sweep, std::size_t n, std::size_t c,
                   std::size_t q, const MachineParams& mp, const Matrix& a,
                   const Matrix& b) {
  const std::size_t p = c * q * q;
  const Cannon25DAlgorithm alg(c);
  const MatmulResult res = alg.run(a, b, p, mp);
  const Cannon25DModel model(mp, c);

  SweepRow row;
  row.sweep = sweep;
  row.n = n;
  row.p = p;
  row.c = c;
  row.q = q;
  row.t_sim = res.report.t_parallel;
  row.t_model = model.t_parallel(static_cast<double>(n), static_cast<double>(p));
  row.ratio = row.t_sim / row.t_model;
  row.efficiency = res.report.efficiency();
  row.words_per_proc =
      static_cast<double>(res.report.total_words) / static_cast<double>(p);
  // Collective traffic (replicate A, replicate B, reduce C) moves exactly
  // 3 q^2 (c-1) blocks of (n/q)^2 words; the rest is the per-layer Cannon
  // phase (alignment + multiply-shift), the component the paper's Eq. 3
  // charges as 2 t_w n^2/sqrt(p) and 2.5D shrinks to 2 t_w n^2/sqrt(p c).
  const double bw = static_cast<double>((n / q) * (n / q));
  const double collective_words =
      3.0 * static_cast<double>(q * q * (c - 1)) * bw;
  row.layer_words_per_proc =
      (static_cast<double>(res.report.total_words) - collective_words) /
      static_cast<double>(p);
  row.peak_words = res.report.max_peak_words;
  return row;
}

void add_to_tables(const SweepRow& r, Table& pretty, Table& json) {
  pretty.begin_row()
      .add_int(static_cast<long long>(r.c))
      .add_int(static_cast<long long>(r.p))
      .add_int(static_cast<long long>(r.q))
      .add_num(r.t_sim, 6)
      .add_num(r.t_model, 6)
      .add_num(r.ratio, 4)
      .add_num(r.efficiency, 4)
      .add_num(r.words_per_proc, 4)
      .add_num(r.layer_words_per_proc, 4)
      .add_int(static_cast<long long>(r.peak_words));
  json.begin_row()
      .add(r.sweep)
      .add_int(static_cast<long long>(r.n))
      .add_int(static_cast<long long>(r.p))
      .add_int(static_cast<long long>(r.c))
      .add_int(static_cast<long long>(r.q))
      .add_num(r.t_sim, 8)
      .add_num(r.t_model, 8)
      .add_num(r.ratio, 6)
      .add_num(r.efficiency, 6)
      .add_num(r.words_per_proc, 6)
      .add_num(r.layer_words_per_proc, 6)
      .add_int(static_cast<long long>(r.peak_words));
}

Table make_pretty() {
  return Table({"c", "p", "q", "T_p sim", "T_p model", "ratio", "E",
                "words/proc", "layer words/proc", "peak words"});
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_25d.json");
  const MachineParams mp = machines::ncube2();

  Table json({"sweep", "n", "p", "c", "q", "t_sim", "t_model", "ratio",
              "efficiency", "words_per_proc", "layer_words_per_proc",
              "peak_words"});

  std::cout << "=== 2.5D Cannon replication sweep (" << mp.label << ") ===\n";

  {
    const std::size_t n = 64, q = 16;
    Rng rng(2025);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    std::cout << "\n--- Sweep A: fixed layer mesh q = " << q << ", n = " << n
              << " (p = c q^2 grows with c) ---\n\n";
    Table t = make_pretty();
    for (std::size_t c : {1, 2, 4, 8, 16}) {
      add_to_tables(run_point("fixed-q", n, c, q, mp, a, b), t, json);
    }
    t.print_aligned(std::cout);
  }

  {
    const std::size_t n = 128, p = 4096;
    Rng rng(2026);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    std::cout << "\n--- Sweep B: fixed machine p = " << p << ", n = " << n
              << " (c redistributes the processors) ---\n\n";
    Table t = make_pretty();
    for (std::size_t c : {1, 4, 16}) {
      const std::size_t q = static_cast<std::size_t>(std::lround(
          std::sqrt(static_cast<double>(p / c))));
      add_to_tables(run_point("fixed-p", n, c, q, mp, a, b), t, json);
    }
    t.print_aligned(std::cout);
  }

  std::cout << "\n'layer words/proc' is the alignment + multiply-shift "
               "traffic only\n(2 n^2/sqrt(pc) asymptotically); the replicate/"
               "reduce collectives account\nfor the rest. 'ratio' is simulated "
               "T_p over the closed-form model and\nshould be 1 at every "
               "point.\n";

  std::ofstream out(out_path);
  json.print_json(out);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
