// Combined fault plans: drops, duplicates, delays and a straggler injected
// in ONE plan. The categories must compose — reliable messaging still
// masks every loss, the product stays exact, each category's counter
// registers, and the whole run is seed-deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/registry.hpp"
#include "matrix/kernels.hpp"
#include "sim/fault.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

MachineParams test_params() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  return m;
}

Matrix int_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = std::floor(rng.uniform(1.0, 9.0));
    }
  }
  return m;
}

std::shared_ptr<FaultPlan> combined_plan(std::uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = seed;
  plan->drop_prob = 0.05;
  plan->duplicate_prob = 0.05;
  plan->delay_prob = 0.15;
  plan->delay_factor = 2.0;
  plan->stragglers.push_back({1, 3.0});
  return plan;
}

MatmulResult run_cannon(const Matrix& a, const Matrix& b,
                        std::shared_ptr<const FaultPlan> plan) {
  MachineParams mp = test_params();
  mp.faults = std::move(plan);
  return default_registry().implementation("cannon").run(a, b, 16, mp);
}

TEST(CombinedFaults, AllCategoriesComposeAndTheProductStaysExact) {
  Rng rng(2026);
  const Matrix a = int_matrix(16, rng);
  const Matrix b = int_matrix(16, rng);
  const Matrix reference = multiply(a, b);

  const MatmulResult clean = run_cannon(a, b, nullptr);
  const MatmulResult faulty = run_cannon(a, b, combined_plan(77));

  // Reliable messaging masks the drops; every entry is still exact.
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      ASSERT_DOUBLE_EQ(faulty.c(i, j), reference(i, j))
          << "at (" << i << ", " << j << ")";
    }
  }

  // Each injected category left its fingerprint in the counters.
  const FaultStats& fs = faulty.report.faults;
  EXPECT_GT(fs.transmissions_dropped, 0u);
  EXPECT_GT(fs.retransmissions, 0u);
  EXPECT_GT(fs.duplicates_suppressed, 0u);
  EXPECT_GT(fs.deliveries_delayed, 0u);
  EXPECT_EQ(fs.messages_lost, 0u);  // reliable mode: nothing vanishes

  // Retransmissions, delays and the 3x straggler all cost simulated time.
  EXPECT_GT(faulty.report.t_parallel, clean.report.t_parallel);
}

TEST(CombinedFaults, SameSeedSamePlanIsBitIdentical) {
  Rng rng(2027);
  const Matrix a = int_matrix(16, rng);
  const Matrix b = int_matrix(16, rng);
  const MatmulResult first = run_cannon(a, b, combined_plan(5));
  const MatmulResult second = run_cannon(a, b, combined_plan(5));
  EXPECT_EQ(first.report.t_parallel, second.report.t_parallel);
  const FaultStats& fa = first.report.faults;
  const FaultStats& fb = second.report.faults;
  EXPECT_EQ(fa.transmissions_dropped, fb.transmissions_dropped);
  EXPECT_EQ(fa.retransmissions, fb.retransmissions);
  EXPECT_EQ(fa.duplicates_suppressed, fb.duplicates_suppressed);
  EXPECT_EQ(fa.deliveries_delayed, fb.deliveries_delayed);
}

TEST(CombinedFaults, CorruptionLayersOnTopWithAbftCorrection) {
  // The full gauntlet: message-level chaos AND payload corruption, with
  // ABFT correction masking the flips — the product must survive exact.
  Rng rng(2028);
  const Matrix a = int_matrix(16, rng);
  const Matrix b = int_matrix(16, rng);
  const Matrix reference = multiply(a, b);
  auto plan = combined_plan(41);
  plan->corrupt_prob = 0.05;
  plan->abft = AbftMode::kCorrect;
  const MatmulResult result = run_cannon(a, b, plan);
  const FaultStats& fs = result.report.faults;
  EXPECT_GT(fs.elements_corrupted, 0u);
  EXPECT_EQ(fs.abft_detected, fs.abft_corrected);  // every flip repaired
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      ASSERT_DOUBLE_EQ(result.c(i, j), reference(i, j))
          << "at (" << i << ", " << j << ")";
    }
  }
}

}  // namespace
}  // namespace hpmm
