#include "analysis/region_map.hpp"

#include <cctype>
#include <cmath>
#include <memory>

#include "analysis/bounds.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace hpmm {

char to_char(Region r) noexcept { return static_cast<char>(r); }

std::string to_string(Region r) {
  switch (r) {
    case Region::kNone: return "none";
    case Region::kGk: return "gk";
    case Region::kBerntsen: return "berntsen";
    case Region::kCannon: return "cannon";
    case Region::kDns: return "dns";
    case Region::kCannon25: return "cannon25d";
  }
  return "?";
}

/// Smallest overhead the 2.5D formulation reaches at (n, p) over its
/// replication envelope c = 2, 4, 8, ... with c^3 <= p; nullopt-like
/// negative value when no replicated configuration applies. c = 1 is
/// deliberately excluded: it duplicates plain Cannon, so Region::kCannon25
/// means "replication strictly helps here".
static double best_cannon25_overhead(const MachineParams& params, double n,
                                     double p) {
  double best = -1.0;
  for (std::size_t c = 2; static_cast<double>(c) * static_cast<double>(c) *
                              static_cast<double>(c) <=
                          p;
       c *= 2) {
    const Cannon25DModel model(params, c);
    if (!model.applicable(n, p)) continue;
    const double to = model.t_overhead(n, p);
    if (best < 0.0 || to < best) best = to;
  }
  return best;
}

/// A machine whose comm_time *is* the word count: zero startup and per-hop
/// cost, one time unit per word. Word volumes are machine-independent, so
/// the overlay needs no caller-supplied parameters.
static MachineParams word_count_machine() {
  MachineParams mp;
  mp.t_s = 0.0;
  mp.t_w = 1.0;
  mp.t_h = 0.0;
  return mp;
}

bool RegionMap::comm_optimal_at(double n, double p, Region r) {
  const MachineParams words = word_count_machine();
  std::unique_ptr<PerfModel> model;
  switch (r) {
    case Region::kNone: return false;
    case Region::kGk: model = std::make_unique<GkModel>(words); break;
    case Region::kBerntsen:
      model = std::make_unique<BerntsenModel>(words);
      break;
    case Region::kCannon: model = std::make_unique<CannonModel>(words); break;
    case Region::kDns: model = std::make_unique<DnsModel>(words); break;
    case Region::kCannon25: {
      // The envelope's cheapest replicated configuration, by word volume.
      std::unique_ptr<PerfModel> best;
      double best_words = 0.0;
      for (std::size_t c = 2; static_cast<double>(c) * static_cast<double>(c) *
                                  static_cast<double>(c) <=
                              p;
           c *= 2) {
        auto candidate = std::make_unique<Cannon25DModel>(words, c);
        if (!candidate->applicable(n, p)) continue;
        const double w = candidate->comm_time(n, p);
        if (!best || w < best_words) {
          best_words = w;
          best = std::move(candidate);
        }
      }
      if (!best) return false;
      model = std::move(best);
      break;
    }
  }
  if (!model || !model->applicable(n, p)) return false;
  const double moved = model->comm_time(n, p);
  const CommLowerBound bound =
      comm_lower_bound(n, p, model->memory_per_proc(n, p));
  return bound.words > 0.0 && moved <= kBoundOptimalFactor * bound.words;
}

Region RegionMap::best_at(const MachineParams& params, double n, double p,
                          bool include_25d) {
  const BerntsenModel berntsen(params);
  const CannonModel cannon(params);
  const GkModel gk(params);
  const DnsModel dns(params);
  struct Candidate {
    const PerfModel* model;
    Region region;
  };
  const Candidate candidates[] = {
      {&berntsen, Region::kBerntsen},
      {&cannon, Region::kCannon},
      {&gk, Region::kGk},
      {&dns, Region::kDns},
  };
  Region best = Region::kNone;
  double best_to = 0.0;
  for (const auto& c : candidates) {
    if (!c.model->applicable(n, p)) continue;
    const double to = c.model->t_overhead(n, p);
    if (best == Region::kNone || to < best_to) {
      best = c.region;
      best_to = to;
    }
  }
  if (include_25d) {
    const double to = best_cannon25_overhead(params, n, p);
    if (to >= 0.0 && (best == Region::kNone || to < best_to)) {
      best = Region::kCannon25;
    }
  }
  return best;
}

RegionMap::RegionMap(const MachineParams& params, double p_min, double p_max,
                     std::size_t p_cells, double n_min, double n_max,
                     std::size_t n_cells, bool include_25d, bool with_bounds)
    : params_(params),
      p_min_(p_min),
      p_max_(p_max),
      n_min_(n_min),
      n_max_(n_max),
      p_cells_(p_cells),
      n_cells_(n_cells),
      include_25d_(include_25d),
      with_bounds_(with_bounds) {
  require(p_min >= 1.0 && p_max > p_min, "RegionMap: bad p range");
  require(n_min >= 1.0 && n_max > n_min, "RegionMap: bad n range");
  require(p_cells >= 2 && n_cells >= 2, "RegionMap: need at least a 2x2 grid");
  cells_.resize(p_cells_ * n_cells_);
  optimal_.assign(p_cells_ * n_cells_, 0);
  for (std::size_t row = 0; row < n_cells_; ++row) {
    for (std::size_t col = 0; col < p_cells_; ++col) {
      const Region r = best_at(params_, n_at(row), p_at(col), include_25d_);
      cells_[row * p_cells_ + col] = r;
      if (with_bounds_) {
        optimal_[row * p_cells_ + col] =
            comm_optimal_at(n_at(row), p_at(col), r) ? 1 : 0;
      }
    }
  }
}

bool RegionMap::comm_optimal(std::size_t row, std::size_t col) const {
  require(row < n_cells_ && col < p_cells_, "RegionMap::comm_optimal: range");
  return optimal_[row * p_cells_ + col] != 0;
}

double RegionMap::p_at(std::size_t col) const {
  require(col < p_cells_, "RegionMap::p_at: out of range");
  const double t = static_cast<double>(col) / static_cast<double>(p_cells_ - 1);
  return p_min_ * std::pow(p_max_ / p_min_, t);
}

double RegionMap::n_at(std::size_t row) const {
  require(row < n_cells_, "RegionMap::n_at: out of range");
  const double t = static_cast<double>(row) / static_cast<double>(n_cells_ - 1);
  return n_min_ * std::pow(n_max_ / n_min_, t);
}

Region RegionMap::at(std::size_t row, std::size_t col) const {
  require(row < n_cells_ && col < p_cells_, "RegionMap::at: out of range");
  return cells_[row * p_cells_ + col];
}

double RegionMap::fraction(Region r) const {
  std::size_t count = 0;
  for (Region c : cells_) {
    if (c == r) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(cells_.size());
}

MachineSpaceMap::MachineSpaceMap(double n, double p, double ts_min,
                                 double ts_max, std::size_t ts_cells,
                                 double tw_min, double tw_max,
                                 std::size_t tw_cells)
    : n_(n),
      p_(p),
      ts_min_(ts_min),
      ts_max_(ts_max),
      tw_min_(tw_min),
      tw_max_(tw_max),
      ts_cells_(ts_cells),
      tw_cells_(tw_cells) {
  require(n >= 1.0 && p >= 1.0, "MachineSpaceMap: bad workload");
  require(ts_min > 0.0 && ts_max > ts_min, "MachineSpaceMap: bad t_s range");
  require(tw_min > 0.0 && tw_max > tw_min, "MachineSpaceMap: bad t_w range");
  require(ts_cells >= 2 && tw_cells >= 2, "MachineSpaceMap: need a 2x2 grid");
  cells_.resize(ts_cells_ * tw_cells_);
  for (std::size_t row = 0; row < tw_cells_; ++row) {
    for (std::size_t col = 0; col < ts_cells_; ++col) {
      cells_[row * ts_cells_ + col] = best_at(n_, p_, ts_at(col), tw_at(row));
    }
  }
}

Region MachineSpaceMap::best_at(double n, double p, double t_s, double t_w) {
  MachineParams mp;
  mp.t_s = t_s;
  mp.t_w = t_w;
  return RegionMap::best_at(mp, n, p);
}

double MachineSpaceMap::ts_at(std::size_t col) const {
  require(col < ts_cells_, "MachineSpaceMap::ts_at: out of range");
  const double t = static_cast<double>(col) / static_cast<double>(ts_cells_ - 1);
  return ts_min_ * std::pow(ts_max_ / ts_min_, t);
}

double MachineSpaceMap::tw_at(std::size_t row) const {
  require(row < tw_cells_, "MachineSpaceMap::tw_at: out of range");
  const double t = static_cast<double>(row) / static_cast<double>(tw_cells_ - 1);
  return tw_min_ * std::pow(tw_max_ / tw_min_, t);
}

Region MachineSpaceMap::at(std::size_t row, std::size_t col) const {
  require(row < tw_cells_ && col < ts_cells_, "MachineSpaceMap::at: range");
  return cells_[row * ts_cells_ + col];
}

double MachineSpaceMap::fraction(Region r) const {
  std::size_t count = 0;
  for (Region c : cells_) {
    if (c == r) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(cells_.size());
}

void MachineSpaceMap::print_ascii(std::ostream& os) const {
  os << "t_w up, t_s right; a=GK b=Berntsen c=Cannon d=DNS x=none  [n="
     << format_number(n_, 4) << ", p=" << format_number(p_, 4) << "]\n";
  for (std::size_t row = tw_cells_; row-- > 0;) {
    os << format_number(tw_at(row), 3) << " | ";
    for (std::size_t col = 0; col < ts_cells_; ++col) {
      os << to_char(at(row, col));
    }
    os << '\n';
  }
  os << "     +" << std::string(ts_cells_, '-') << '\n';
  os << "      t_s: " << format_number(ts_min_, 3) << " .. "
     << format_number(ts_max_, 3) << " (log scale)\n";
}

void RegionMap::print_ascii(std::ostream& os) const {
  os << "n up, p right; a=GK b=Berntsen c=Cannon d=DNS "
     << (include_25d_ ? "e=2.5D " : "")
     << (with_bounds_ ? "UPPERCASE=within 4x of comm lower bound " : "")
     << "x=none  [" << params_.label << "]\n";
  for (std::size_t row = n_cells_; row-- > 0;) {
    os << format_number(n_at(row), 3);
    os << std::string(row % 1 == 0 ? 1 : 1, ' ') << "| ";
    for (std::size_t col = 0; col < p_cells_; ++col) {
      const char ch = to_char(at(row, col));
      const bool up = with_bounds_ && comm_optimal(row, col);
      os << (up ? static_cast<char>(std::toupper(static_cast<unsigned char>(ch)))
                : ch);
    }
    os << '\n';
  }
  os << "      +" << std::string(p_cells_, '-') << '\n';
  os << "       p: " << format_number(p_min_, 3) << " .. "
     << format_number(p_max_, 3) << " (log scale)\n";
}

}  // namespace hpmm
