#include "matrix/checksum.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hpmm {
namespace {

double default_tolerance(const Matrix& aug) {
  double max_abs = 0.0;
  for (double v : aug.data()) max_abs = std::max(max_abs, std::abs(v));
  const double extent =
      static_cast<double>(std::max(aug.rows(), aug.cols()));
  // Sums accumulate one rounding error per term; a bit-flip perturbation is
  // a large fraction of the element's magnitude, far above this.
  return (max_abs + 1.0) * extent * 1e-12;
}

}  // namespace

Matrix with_checksums(const Matrix& m) {
  require(!m.empty(), "with_checksums: empty matrix");
  const std::size_t r = m.rows(), c = m.cols();
  Matrix out(r + 1, c + 1);
  for (std::size_t i = 0; i < r; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      out(i, j) = m(i, j);
      row_sum += m(i, j);
    }
    out(i, c) = row_sum;
  }
  for (std::size_t j = 0; j <= c; ++j) {
    double col_sum = 0.0;
    for (std::size_t i = 0; i < r; ++i) col_sum += out(i, j);
    out(r, j) = col_sum;
  }
  return out;
}

ChecksumVerdict verify_checksums(Matrix& augmented, bool correct, double tol) {
  require(augmented.rows() >= 2 && augmented.cols() >= 2,
          "verify_checksums: not an augmented block");
  const std::size_t r = augmented.rows() - 1;  // payload rows
  const std::size_t c = augmented.cols() - 1;  // payload cols
  if (tol < 0.0) tol = default_tolerance(augmented);

  // Row i's constraint (i <= r): sum of its first c entries equals its last
  // entry. Column j's constraint (j <= c): sum of its first r entries equals
  // its last. A single corrupted element violates exactly one of each.
  std::size_t bad_rows = 0, bad_cols = 0, bad_row = 0, bad_col = 0;
  for (std::size_t i = 0; i <= r; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) sum += augmented(i, j);
    if (std::abs(sum - augmented(i, c)) > tol) {
      ++bad_rows;
      bad_row = i;
    }
  }
  for (std::size_t j = 0; j <= c; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < r; ++i) sum += augmented(i, j);
    if (std::abs(sum - augmented(r, j)) > tol) {
      ++bad_cols;
      bad_col = j;
    }
  }

  ChecksumVerdict v;
  if (bad_rows == 0 && bad_cols == 0) return v;
  v.consistent = false;
  if (bad_rows != 1 || bad_cols != 1) return v;  // multi-element damage
  v.correctable = true;
  v.row = bad_row;
  v.col = bad_col;
  if (!correct) return v;

  // Recompute the damaged element from an undamaged constraint through it.
  if (bad_row < r && bad_col < c) {
    double others = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      if (j != bad_col) others += augmented(bad_row, j);
    }
    augmented(bad_row, bad_col) = augmented(bad_row, c) - others;
  } else if (bad_row < r) {  // the row-checksum entry itself
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) sum += augmented(bad_row, j);
    augmented(bad_row, c) = sum;
  } else if (bad_col < c) {  // the column-checksum entry itself
    double sum = 0.0;
    for (std::size_t i = 0; i < r; ++i) sum += augmented(i, bad_col);
    augmented(r, bad_col) = sum;
  } else {  // the grand-total corner
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) sum += augmented(r, j);
    augmented(r, c) = sum;
  }
  v.corrected = true;
  return v;
}

Matrix strip_checksums(const Matrix& augmented) {
  require(augmented.rows() >= 2 && augmented.cols() >= 2,
          "strip_checksums: not an augmented block");
  return augmented.slice(0, 0, augmented.rows() - 1, augmented.cols() - 1);
}

}  // namespace hpmm
