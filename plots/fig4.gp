# Figure 4 reproduction: efficiency vs matrix size, Cannon vs GK, p = 64,
# CM-5 parameters. Usage:
#   ./build/bench/export_figures --outdir=results
#   gnuplot -e "datadir='results'" plots/fig4.gp
# Produces fig4.png next to the data.

if (!exists("datadir")) datadir = 'results'
set terminal pngcairo size 800,560
set output datadir.'/fig4.png'
set datafile separator comma
set title 'Figure 4: E vs n, Cannon vs GK, p = 64 (CM-5 parameters)'
set xlabel 'matrix order n'
set ylabel 'efficiency E'
set yrange [0:1]
set key bottom right
set grid
plot datadir.'/fig4_efficiency.csv' \
       using 2:(strcol(1) eq 'gk' ? $4 : NaN)     with linespoints title 'GK (Eq. 18)', \
     '' using 2:(strcol(1) eq 'cannon' ? $4 : NaN) with linespoints title "Cannon (Eq. 3)"
