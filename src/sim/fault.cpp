#include "sim/fault.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/table.hpp"

namespace hpmm {
namespace {

/// SplitMix64 finalizer: a well-mixed 64-bit hash of a 64-bit input.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of a hash.
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string percent(double prob) {
  return format_number(prob * 100.0, 3) + "%";
}

}  // namespace

const char* to_string(AbftMode mode) noexcept {
  switch (mode) {
    case AbftMode::kOff: return "off";
    case AbftMode::kDetect: return "detect";
    case AbftMode::kCorrect: return "correct";
  }
  return "?";
}

bool FaultPlan::active() const noexcept {
  if (drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0 ||
      corrupt_prob > 0.0) {
    return true;
  }
  for (const auto& s : stragglers) {
    if (s.factor != 1.0) return true;
  }
  return !failstops.empty();
}

std::string FaultPlan::summary() const {
  std::string s = "drop=" + percent(drop_prob) + " dup=" + percent(duplicate_prob) +
                  " delay=" + percent(delay_prob) + " (x" +
                  format_number(delay_factor, 3) + ") corrupt=" +
                  percent(corrupt_prob);
  s += " stragglers=[";
  for (std::size_t i = 0; i < stragglers.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(stragglers[i].pid) + ":" +
         format_number(stragglers[i].factor, 3);
  }
  s += "] failstops=[";
  for (std::size_t i = 0; i < failstops.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(failstops[i].pid) + "@" +
         format_number(failstops[i].at_time, 4);
  }
  s += "] abft=";
  s += to_string(abft);
  s += reliable ? " retry=on" : " retry=off";
  s += " seed=" + std::to_string(seed);
  return s;
}

std::string FaultStats::summary() const {
  std::string s = "drops=" + std::to_string(transmissions_dropped) +
                  " rexmit=" + std::to_string(retransmissions) +
                  " dup=" + std::to_string(duplicates_suppressed + duplicates_delivered) +
                  " delayed=" + std::to_string(deliveries_delayed) +
                  " corrupted=" + std::to_string(elements_corrupted);
  if (abft_detected || abft_corrected) {
    s += " abft-detected=" + std::to_string(abft_detected) +
         " abft-corrected=" + std::to_string(abft_corrected);
  }
  if (messages_lost) s += " lost=" + std::to_string(messages_lost);
  return s;
}

ProcessorFailure::ProcessorFailure(ProcId pid, double at_time)
    : std::runtime_error("processor " + std::to_string(pid) +
                         " fail-stopped at t=" + format_number(at_time, 6)),
      pid_(pid),
      at_time_(at_time) {}

DeadlineExceeded::DeadlineExceeded(ProcId pid, double budget, double at_time)
    : std::runtime_error("deadline exceeded: processor " + std::to_string(pid) +
                         " passed the virtual-time budget " +
                         format_number(budget, 6) + " at t=" +
                         format_number(at_time, 6)),
      pid_(pid),
      budget_(budget),
      at_time_(at_time) {}

FaultInjector::FaultInjector(std::shared_ptr<const FaultPlan> plan)
    : plan_(std::move(plan)) {
  require(plan_ != nullptr, "FaultInjector: plan must not be null");
  const auto valid_prob = [](double v) { return v >= 0.0 && v <= 1.0; };
  require(valid_prob(plan_->drop_prob) && valid_prob(plan_->duplicate_prob) &&
              valid_prob(plan_->delay_prob) && valid_prob(plan_->corrupt_prob),
          "FaultPlan: probabilities must be within [0, 1]");
  require(plan_->delay_factor >= 0.0, "FaultPlan: negative delay_factor");
  require(!plan_->reliable || plan_->rto_factor > 0.0,
          "FaultPlan: rto_factor must be positive when retrying");
  require(!plan_->reliable || plan_->rto_backoff >= 1.0,
          "FaultPlan: rto_backoff must be >= 1");
  for (const auto& s : plan_->stragglers) {
    require(s.factor >= 1.0,
            "FaultPlan: straggler factor must be >= 1 (a slowdown)");
  }
  for (const auto& f : plan_->failstops) {
    require(f.at_time >= 0.0, "FaultPlan: fail-stop time must be >= 0");
  }
}

std::uint64_t FaultInjector::draw(const Message& m, std::uint64_t round,
                                  unsigned attempt, std::uint64_t salt) const {
  std::uint64_t h = mix64(plan_->seed ^ salt);
  h = mix64(h ^ round);
  h = mix64(h ^ (static_cast<std::uint64_t>(m.src) << 32 | m.dst));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.tag)) << 8 |
                 attempt));
  return h;
}

MessageFate FaultInjector::fate(const Message& m, std::uint64_t round,
                                unsigned attempt, double base_cost) const {
  MessageFate f;
  if (plan_->drop_prob > 0.0) {
    f.dropped = to_unit(draw(m, round, attempt, 0xD80FULL)) < plan_->drop_prob;
  }
  if (f.dropped) return f;  // a lost transmission has no other fate
  if (plan_->duplicate_prob > 0.0) {
    f.duplicated =
        to_unit(draw(m, round, attempt, 0xD0B1EULL)) < plan_->duplicate_prob;
  }
  if (plan_->corrupt_prob > 0.0) {
    f.corrupted =
        to_unit(draw(m, round, attempt, 0xC0BB17ULL)) < plan_->corrupt_prob;
  }
  if (plan_->delay_prob > 0.0 &&
      to_unit(draw(m, round, attempt, 0xDE1A7ULL)) < plan_->delay_prob) {
    f.delay = plan_->delay_factor * base_cost;
  }
  return f;
}

double FaultInjector::slowdown(ProcId pid) const noexcept {
  for (const auto& s : plan_->stragglers) {
    if (s.pid == pid) return s.factor;
  }
  return 1.0;
}

std::optional<double> FaultInjector::fail_time(ProcId pid) const noexcept {
  for (const auto& f : plan_->failstops) {
    if (f.pid == pid) return f.at_time;
  }
  return std::nullopt;
}

std::size_t FaultInjector::corrupt_word_index(const Message& m,
                                              std::uint64_t round,
                                              unsigned attempt) const {
  const std::size_t words = m.words();
  if (words == 0) return 0;
  return static_cast<std::size_t>(draw(m, round, attempt, 0x1DE7ULL) % words);
}

void corrupt_message_word(Message& m, std::size_t word_index) {
  std::size_t remaining = word_index;
  for (auto& block : m.blocks) {
    if (remaining >= block.size()) {
      remaining -= block.size();
      continue;
    }
    double& value = block.data()[remaining];
    // Flip a high mantissa bit: a large, sign-preserving perturbation that
    // never produces NaN/Inf (the exponent bits are untouched).
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    bits ^= 1ULL << 51;
    std::memcpy(&value, &bits, sizeof bits);
    return;
  }
}

}  // namespace hpmm
