#include "topology/routing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Routing, EcubeRouteIsMinimalAndDimensionOrdered) {
  Hypercube cube(4);
  const Route r = ecube_route(cube, 0b0000, 0b1011);
  ASSERT_EQ(r.size(), 3u);  // three differing bits
  // Lowest dimension corrected first.
  EXPECT_EQ(r[0], (Link{0b0000, 0b0001}));
  EXPECT_EQ(r[1], (Link{0b0001, 0b0011}));
  EXPECT_EQ(r[2], (Link{0b0011, 0b1011}));
}

TEST(Routing, EcubeRouteLinksArePhysical) {
  Hypercube cube(5);
  for (ProcId src = 0; src < cube.size(); src += 5) {
    for (ProcId dst = 0; dst < cube.size(); dst += 3) {
      const Route r = ecube_route(cube, src, dst);
      EXPECT_EQ(r.size(), cube.hops(src, dst));
      for (const auto& [a, b] : r) EXPECT_EQ(cube.hops(a, b), 1u);
      if (!r.empty()) {
        EXPECT_EQ(r.front().first, src);
        EXPECT_EQ(r.back().second, dst);
      }
    }
  }
}

TEST(Routing, EcubeSelfRouteIsEmpty) {
  Hypercube cube(3);
  EXPECT_TRUE(ecube_route(cube, 5, 5).empty());
}

TEST(Routing, XyRouteTakesShorterRingDirection) {
  Torus2D torus(8, 8);
  // (0,0) -> (0,6): west twice (wrap), not east six times.
  const Route r = xy_route(torus, torus.rank(0, 0), torus.rank(0, 6));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].second, torus.rank(0, 7));
}

TEST(Routing, XyRouteLengthIsHopCount) {
  Torus2D torus(4, 6);
  for (ProcId src = 0; src < torus.size(); src += 3) {
    for (ProcId dst = 0; dst < torus.size(); dst += 5) {
      const Route r = xy_route(torus, src, dst);
      EXPECT_EQ(r.size(), torus.hops(src, dst));
      for (const auto& [a, b] : r) EXPECT_EQ(torus.hops(a, b), 1u);
    }
  }
}

TEST(Routing, RouteOnDispatchesByTopology) {
  Hypercube cube(3);
  Torus2D torus(4, 4);
  FullyConnected fc(8);
  EXPECT_EQ(route_on(cube, 0, 7).size(), 3u);
  EXPECT_EQ(route_on(torus, 0, 5).size(), 2u);
  EXPECT_EQ(route_on(fc, 0, 7).size(), 1u);  // dedicated link
  EXPECT_TRUE(route_on(fc, 3, 3).empty());
}

TEST(Routing, UnitShiftIsConflictFree) {
  // A wrap-around shift (Cannon's roll step) uses every ring link once.
  Torus2D torus(4, 4);
  std::vector<std::pair<ProcId, ProcId>> transfers;
  for (ProcId pid = 0; pid < torus.size(); ++pid) {
    transfers.emplace_back(pid, torus.west(pid));
  }
  EXPECT_EQ(max_link_load(torus, transfers), 1u);
}

TEST(Routing, BinomialRoundIsConflictFree) {
  // One round of a binomial broadcast uses disjoint hypercube links.
  Hypercube cube(4);
  std::vector<std::pair<ProcId, ProcId>> transfers;
  for (ProcId v = 0; v < 8; ++v) {
    transfers.emplace_back(v, v + 8);  // dimension-3 partner exchange
  }
  EXPECT_EQ(max_link_load(cube, transfers), 1u);
}

TEST(Routing, CannonAlignmentContentionOnTorus) {
  // Cannon's alignment shifts row i left by i steps: on the mesh the paths
  // in one row share ring links, with worst load ~ sqrt(p)/2 under minimal
  // XY routing (each ring direction carries about half the row's traffic).
  // The paper ignores this ("simple one-to-one communication along
  // non-conflicting paths" on the *hypercube* with cut-through).
  const std::size_t side = 8;
  Torus2D torus(side, side);
  std::vector<std::pair<ProcId, ProcId>> transfers;
  for (std::size_t i = 1; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      transfers.emplace_back(torus.rank(i, j), torus.west(torus.rank(i, j), i));
    }
  }
  const unsigned load = max_link_load(torus, transfers);
  EXPECT_GT(load, 1u);
  EXPECT_LE(load, side / 2 + 1);
}

TEST(Routing, CannonAlignmentConflictFreeOnHypercubeAcrossRows) {
  // On the hypercube with e-cube routing, different mesh rows live in
  // different subcubes (row-major embedding), so alignment messages from
  // different rows never share a link; contention is confined within rows.
  Hypercube cube(4);  // 4x4 mesh rows = subcubes of the low 2 bits
  const std::size_t side = 4;
  std::vector<std::pair<ProcId, ProcId>> row_transfers[4];
  for (std::size_t i = 1; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      const auto src = static_cast<ProcId>(i * side + j);
      const auto dst = static_cast<ProcId>(i * side + ((j + side - i) % side));
      row_transfers[i].emplace_back(src, dst);
    }
  }
  // Links used by distinct rows are disjoint.
  std::set<Link> seen;
  for (std::size_t i = 1; i < side; ++i) {
    for (const auto& [link, load] : link_loads(cube, row_transfers[i])) {
      (void)load;
      EXPECT_TRUE(seen.insert(link).second) << "row " << i;
    }
  }
}

TEST(Routing, LinkLoadsCountsEveryTraversal) {
  Hypercube cube(2);
  std::vector<std::pair<ProcId, ProcId>> transfers{{0, 3}, {1, 3}};
  const auto loads = link_loads(cube, transfers);
  // 0->3 routes 0->1->3; 1->3 routes 1->3. Link (1,3) carries both.
  EXPECT_EQ(loads.at(Link{1, 3}), 2u);
  EXPECT_EQ(loads.at(Link{0, 1}), 1u);
  EXPECT_EQ(max_link_load(cube, transfers), 2u);
}

TEST(Routing, EmptyTransferSet) {
  Hypercube cube(2);
  EXPECT_EQ(max_link_load(cube, {}), 0u);
}

TEST(Routing, Validation) {
  Hypercube cube(2);
  EXPECT_THROW(ecube_route(cube, 0, 4), PreconditionError);
  Torus2D torus(2, 2);
  EXPECT_THROW(xy_route(torus, 0, 4), PreconditionError);
}

}  // namespace
}  // namespace hpmm
