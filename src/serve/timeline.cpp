#include "serve/timeline.hpp"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/json.hpp"

namespace hpmm {
namespace {

bool is_instant(JournalKind kind) noexcept {
  switch (kind) {
    case JournalKind::kRejectInvalid:
    case JournalKind::kRejectInfeasible:
    case JournalKind::kRejectBreaker:
    case JournalKind::kRejectQueueFull:
    case JournalKind::kRejectQuota:
    case JournalKind::kDeadlineAbort:
    case JournalKind::kBreakerOpen:
    case JournalKind::kBreakerHalfOpen:
    case JournalKind::kBreakerClose:
      return true;
    default:
      return false;
  }
}

}  // namespace

void write_serve_timeline(std::ostream& os, const EventJournal& journal,
                          std::size_t slots) {
  // Tenant lanes are sorted by name so the timeline's bytes depend only on
  // the journal's content, never on discovery order.
  std::map<std::string, std::int64_t> tenant_tid;
  for (const auto& e : journal.events()) {
    if (!e.tenant.empty()) tenant_tid.emplace(e.tenant, 0);
  }
  std::int64_t next_tid = 0;
  for (auto& [tenant, tid] : tenant_tid) tid = next_tid++;

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"executor slots\"}}";
  os << ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"tenants\"}}";
  for (std::size_t s = 0; s < slots; ++s) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << s
       << ",\"args\":{\"name\":\"slot " << s << "\"}}";
  }
  for (const auto& [tenant, tid] : tenant_tid) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":" << json_quote(tenant) << "}}";
  }

  // Each dispatch opens an attempt span; the retry or completion that
  // releases its slot closes it.
  std::map<std::int64_t, JournalEvent> open;
  for (const auto& e : journal.events()) {
    if (e.kind == JournalKind::kDispatch) {
      open[e.request] = e;
      continue;
    }
    if ((e.kind == JournalKind::kRetry || e.kind == JournalKind::kComplete) &&
        e.request >= 0) {
      const auto it = open.find(e.request);
      if (it != open.end()) {
        const JournalEvent& d = it->second;
        const std::string name = d.tenant + " #" + std::to_string(d.request) +
                                 " a" + std::to_string(d.attempt);
        const std::string cause =
            e.kind == JournalKind::kRetry ? "retry" : e.cause;
        const auto span = [&](std::int64_t pid, std::int64_t tid) {
          os << ",{\"name\":" << json_quote(name)
             << ",\"cat\":\"attempt\",\"ph\":\"X\",\"ts\":"
             << json_number(d.time)
             << ",\"dur\":" << json_number(e.time - d.time) << ",\"pid\":"
             << pid << ",\"tid\":" << tid << ",\"args\":{\"tenant\":"
             << json_quote(d.tenant) << ",\"request\":" << d.request
             << ",\"attempt\":" << d.attempt
             << ",\"outcome\":" << json_quote(cause) << "}}";
        };
        span(0, d.slot);
        span(1, tenant_tid[d.tenant]);
        open.erase(it);
      }
    }
    if (is_instant(e.kind) && !e.tenant.empty()) {
      os << ",{\"name\":" << json_quote(to_string(e.kind))
         << ",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << json_number(e.time) << ",\"pid\":1,\"tid\":"
         << tenant_tid[e.tenant] << ",\"args\":{";
      bool first = true;
      if (e.request >= 0) {
        os << "\"request\":" << e.request;
        first = false;
      }
      if (!e.cause.empty()) {
        if (!first) os << ',';
        os << "\"cause\":" << json_quote(e.cause);
        first = false;
      }
      if (!e.detail.empty()) {
        if (!first) os << ',';
        os << "\"detail\":" << json_quote(e.detail);
      }
      os << "}}";
    }
  }
  os << "]}\n";
}

}  // namespace hpmm
