#include "sim/reliable.hpp"

#include "util/error.hpp"

namespace hpmm {

ReliableOutcome reliable_delivery(const FaultInjector& injector,
                                  const Message& m, std::uint64_t round,
                                  double base_cost) {
  const FaultPlan& plan = injector.plan();
  ReliableOutcome out;
  out.busy = base_cost;

  MessageFate f = injector.fate(m, round, 0, base_cost);
  if (!plan.reliable) {
    out.delivered = !f.dropped;
    out.duplicated = f.duplicated;
    out.corrupted = f.corrupted;
    out.delay = f.delay;
    return out;
  }

  double rto = plan.rto_factor * base_cost;
  while (f.dropped) {
    ensure(out.attempts <= plan.max_retries,
           "reliable_delivery: message " + std::to_string(m.src) + " -> " +
               std::to_string(m.dst) + " (tag " + std::to_string(m.tag) +
               ") presumed lost after " + std::to_string(plan.max_retries) +
               " retries — drop probability too high for the retry budget");
    out.wait += rto;
    rto *= plan.rto_backoff;
    f = injector.fate(m, round, out.attempts, base_cost);
    ++out.attempts;
    out.busy += base_cost;
  }
  // Fates of the delivering attempt. The receiver de-duplicates, so a
  // duplicate is suppressed rather than delivered twice.
  out.duplicated = f.duplicated;
  out.corrupted = f.corrupted;
  out.corrupt_attempt = out.attempts - 1;
  out.delay = f.delay;
  return out;
}

}  // namespace hpmm
