#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "topology/topology.hpp"

namespace hpmm {

/// Algorithm-based fault tolerance mode for matrix blocks in transit (see
/// matrix/checksum.hpp): off, detect single-element corruption, or detect
/// and correct it.
enum class AbftMode : std::uint8_t { kOff, kDetect, kCorrect };

const char* to_string(AbftMode mode) noexcept;

/// A processor whose clock runs `factor` times slower than nominal: every
/// compute charge and every send it performs takes `factor` times longer.
struct StragglerSpec {
  ProcId pid = 0;
  double factor = 1.0;
};

/// A processor that fail-stops at virtual time `at_time`: any compute or
/// exchange it would participate in once its clock reaches that time raises
/// ProcessorFailure instead.
struct FailStopSpec {
  ProcId pid = 0;
  double at_time = 0.0;
};

/// Declarative, seeded description of everything non-ideal about a machine.
/// A default-constructed plan describes the paper's ideal failure-free
/// machine; SimMachine only instantiates the fault path when active() is
/// true, so a null or all-zero plan is bit-identical to no plan at all.
///
/// Per-message fates (drop / duplicate / delay / corrupt) are drawn from a
/// counter-based hash of (seed, round, src, dst, tag, attempt), so a given
/// plan produces the same faults for the same communication pattern
/// regardless of message ordering within a round.
struct FaultPlan {
  std::uint64_t seed = 0;

  double drop_prob = 0.0;       ///< P(a transmission is lost in flight)
  double duplicate_prob = 0.0;  ///< P(the network delivers an extra copy)
  double delay_prob = 0.0;      ///< P(a delivery is late)
  double delay_factor = 1.0;    ///< extra in-flight latency, x base message cost
  double corrupt_prob = 0.0;    ///< P(one payload word is bit-flipped)

  std::vector<StragglerSpec> stragglers;
  std::vector<FailStopSpec> failstops;

  AbftMode abft = AbftMode::kOff;

  /// Reliable-messaging policy (sim/reliable.hpp). When `reliable` is set,
  /// a dropped transmission costs the sender a timeout of
  /// rto_factor x (message cost), doubling by rto_backoff per retry, then a
  /// retransmission — so drops surface as T_o instead of hung receives.
  bool reliable = true;
  double rto_factor = 2.0;
  double rto_backoff = 2.0;
  unsigned max_retries = 12;

  /// True when any fault mechanism can fire (probabilities, stragglers or
  /// fail-stops). ABFT alone does not make a plan active: it changes what
  /// the algorithms send, not what the machine does to messages.
  bool active() const noexcept;

  /// One-line human-readable scenario description.
  std::string summary() const;
};

/// Counters for every fault event observed during a run; aggregated by
/// SimMachine and reported through RunReport.
struct FaultStats {
  std::uint64_t transmissions_dropped = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t duplicates_delivered = 0;  ///< unreliable mode only
  std::uint64_t deliveries_delayed = 0;
  std::uint64_t elements_corrupted = 0;
  std::uint64_t abft_detected = 0;
  std::uint64_t abft_corrected = 0;
  std::uint64_t messages_lost = 0;  ///< unreliable mode: never delivered

  bool any() const noexcept {
    return transmissions_dropped || retransmissions || duplicates_suppressed ||
           duplicates_delivered || deliveries_delayed || elements_corrupted ||
           abft_detected || abft_corrected || messages_lost;
  }

  /// "drops=.. rexmit=.." fragment for report summaries.
  std::string summary() const;
};

/// Raised when a fail-stopped processor is asked to compute or communicate.
/// Derives from std::runtime_error (not PreconditionError) so resilient
/// harnesses can catch exactly this and re-plan (see core/runner.hpp).
class ProcessorFailure : public std::runtime_error {
 public:
  ProcessorFailure(ProcId pid, double at_time);
  ProcId pid() const noexcept { return pid_; }
  double at_time() const noexcept { return at_time_; }

 private:
  ProcId pid_;
  double at_time_;
};

/// Raised when a run exhausts its virtual-time budget
/// (MachineParams::deadline > 0 and some processor's clock passed it). Like
/// ProcessorFailure it derives from std::runtime_error so serving harnesses
/// can catch exactly this, abandon the run and report deadline_exceeded.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded(ProcId pid, double budget, double at_time);
  ProcId pid() const noexcept { return pid_; }
  /// The budget that was exceeded (MachineParams::deadline).
  double budget() const noexcept { return budget_; }
  /// The clock value that first passed the budget.
  double at_time() const noexcept { return at_time_; }

 private:
  ProcId pid_;
  double budget_;
  double at_time_;
};

/// The fate the network hands one transmission attempt of one message.
struct MessageFate {
  bool dropped = false;
  bool duplicated = false;
  bool corrupted = false;
  double delay = 0.0;  ///< extra in-flight latency, absolute time units
};

/// Deterministic oracle the simulator consults: given a message, the
/// exchange-round counter and the attempt number, decides that
/// transmission's fate. Stateless between calls (pure hashing), so replaying
/// the same communication pattern replays the same faults.
class FaultInjector {
 public:
  explicit FaultInjector(std::shared_ptr<const FaultPlan> plan);

  const FaultPlan& plan() const noexcept { return *plan_; }

  /// Fate of attempt `attempt` of message `m` in exchange round `round`.
  /// `base_cost` scales the delay (delay = delay_factor * base_cost).
  MessageFate fate(const Message& m, std::uint64_t round, unsigned attempt,
                   double base_cost) const;

  /// Clock-rate multiplier of pid (1.0 unless listed as a straggler).
  double slowdown(ProcId pid) const noexcept;

  /// Virtual time at which pid fail-stops, if scheduled.
  std::optional<double> fail_time(ProcId pid) const noexcept;

  /// Index (into the message's flattened payload words) of the element a
  /// corrupting fate flips.
  std::size_t corrupt_word_index(const Message& m, std::uint64_t round,
                                 unsigned attempt) const;

 private:
  std::uint64_t draw(const Message& m, std::uint64_t round, unsigned attempt,
                     std::uint64_t salt) const;

  std::shared_ptr<const FaultPlan> plan_;
};

/// Flip one mantissa bit of payload word `word_index` of `m` (indices run
/// over the concatenated blocks in order). The flipped element differs from
/// the original, so row/column checksums can detect and locate it.
void corrupt_message_word(Message& m, std::size_t word_index);

}  // namespace hpmm
