#include "algorithms/parallel_matmul.hpp"

#include "algorithms/berntsen.hpp"
#include "algorithms/cannon.hpp"
#include "algorithms/cannon_25d.hpp"
#include "algorithms/dns.hpp"
#include "algorithms/fox.hpp"
#include "algorithms/gk.hpp"
#include "algorithms/simple_2d.hpp"
#include "util/error.hpp"

namespace hpmm {

bool ParallelMatmul::applicable(std::size_t n, std::size_t p) const {
  try {
    check_applicable(n, p);
    return true;
  } catch (const PreconditionError&) {
    return false;
  }
}

std::size_t ParallelMatmul::validated_order(const Matrix& a, const Matrix& b) {
  require(a.square() && b.square(), "ParallelMatmul: operands must be square");
  require(a.rows() == b.rows(), "ParallelMatmul: operands must share an order");
  require(!a.empty(), "ParallelMatmul: operands must be non-empty");
  return a.rows();
}

std::vector<std::unique_ptr<ParallelMatmul>> all_algorithms() {
  std::vector<std::unique_ptr<ParallelMatmul>> out;
  out.push_back(std::make_unique<SimpleAlgorithm>());
  out.push_back(std::make_unique<CannonAlgorithm>());
  out.push_back(std::make_unique<Cannon25DAlgorithm>());
  out.push_back(std::make_unique<FoxAlgorithm>());
  out.push_back(std::make_unique<BerntsenAlgorithm>());
  out.push_back(std::make_unique<DnsAlgorithm>());
  out.push_back(std::make_unique<GkAlgorithm>());
  out.push_back(std::make_unique<GkAlgorithm>(GkAlgorithm::Broadcast::kJohnssonHo));
  return out;
}

}  // namespace hpmm
