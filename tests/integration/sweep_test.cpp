// Randomised conformance sweep: seeded random sampling of valid
// (algorithm, n, p, machine) configurations, checking the full invariant
// set on each — the fuzz-style backstop behind the targeted tests.

#include <gtest/gtest.h>

#include <set>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "util/bits.hpp"

namespace hpmm {
namespace {

struct Config {
  std::string algorithm;
  std::size_t n, p;
  MachineParams machine;
};

/// Draw a random valid configuration for some registered algorithm.
Config draw(Rng& rng) {
  const auto& reg = default_registry();
  const auto names = reg.names();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Config cfg;
    cfg.algorithm = names[rng.next_below(names.size())];
    // Random-ish machine.
    cfg.machine.t_s = rng.uniform(0.0, 300.0);
    cfg.machine.t_w = rng.uniform(0.1, 8.0);
    // Sizes: keep simulations fast.
    const std::size_t n_choices[] = {8, 12, 16, 24, 32};
    const std::size_t p_choices[] = {1, 4, 8, 9, 16, 25, 64, 128, 512};
    cfg.n = n_choices[rng.next_below(5)];
    cfg.p = p_choices[rng.next_below(9)];
    if (cfg.algorithm == "dns" && cfg.p > 256) continue;  // keep runs small
    if (reg.implementation(cfg.algorithm).applicable(cfg.n, cfg.p)) return cfg;
  }
  ADD_FAILURE() << "could not draw a valid configuration";
  return Config{"cannon", 8, 4, MachineParams{}};
}

class RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSweep, InvariantsHold) {
  Rng rng(GetParam());
  const Config cfg = draw(rng);
  SCOPED_TRACE(cfg.algorithm + " n=" + std::to_string(cfg.n) +
               " p=" + std::to_string(cfg.p) +
               " ts=" + std::to_string(cfg.machine.t_s) +
               " tw=" + std::to_string(cfg.machine.t_w));

  const Matrix a = random_matrix(cfg.n, cfg.n, rng);
  const Matrix b = random_matrix(cfg.n, cfg.n, rng);
  const auto res = default_registry()
                       .implementation(cfg.algorithm)
                       .run(a, b, cfg.p, cfg.machine);

  // 1. Numerical correctness against the serial kernel.
  EXPECT_LE(max_abs_diff(res.c, multiply(a, b)),
            1e-12 * static_cast<double>(cfg.n));
  // 2. Work conservation.
  const auto n64 = static_cast<std::uint64_t>(cfg.n);
  EXPECT_EQ(res.report.total_flops, n64 * n64 * n64);
  // 3. Speedup within [0, p]; efficiency within (0, 1].
  EXPECT_GT(res.report.speedup(), 0.0);
  EXPECT_LE(res.report.speedup(), static_cast<double>(cfg.p) * (1 + 1e-12));
  EXPECT_LE(res.report.efficiency(), 1.0 + 1e-12);
  // 4. Non-negative overhead and components bounded by T_p.
  EXPECT_GE(res.report.total_overhead(), -1e-9);
  EXPECT_LE(res.report.max_compute_time, res.report.t_parallel + 1e-9);
  EXPECT_LE(res.report.max_comm_time, res.report.t_parallel + 1e-9);
  EXPECT_LE(res.report.max_idle_time, res.report.t_parallel + 1e-9);
  // 5. Words sent are symmetric with message count (every message carries
  // at least one word in these algorithms).
  if (cfg.p > 1 && res.report.total_messages > 0) {
    EXPECT_GE(res.report.total_words, res.report.total_messages);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep,
                         ::testing::Range<std::uint64_t>(1, 61));

TEST(RandomSweepMeta, DrawCoversManyAlgorithms) {
  // The sampler must actually exercise a spread of formulations.
  Rng rng(999);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(draw(rng).algorithm);
  EXPECT_GE(seen.size(), 8u);
}

}  // namespace
}  // namespace hpmm
