#pragma once

#include <cstddef>

#include "matrix/matrix.hpp"

namespace hpmm {

/// Uniform partition of an (rows x cols) matrix into a (grid_rows x grid_cols)
/// array of equally sized blocks. This is how every parallel formulation in
/// the paper distributes its operands; block (i, j) lives on logical
/// processor (i, j) of the corresponding mesh.
class BlockGrid {
 public:
  /// Requires grid dimensions to divide the matrix dimensions exactly, as in
  /// the paper (matrices of size n x n on sqrt(p) x sqrt(p) processors with
  /// sqrt(p) | n).
  BlockGrid(std::size_t rows, std::size_t cols, std::size_t grid_rows,
            std::size_t grid_cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t grid_rows() const noexcept { return grid_rows_; }
  std::size_t grid_cols() const noexcept { return grid_cols_; }
  std::size_t block_rows() const noexcept { return rows_ / grid_rows_; }
  std::size_t block_cols() const noexcept { return cols_ / grid_cols_; }
  std::size_t block_count() const noexcept { return grid_rows_ * grid_cols_; }

  /// Words in one block (the message size m of the paper's t_s + t_w * m).
  std::size_t block_words() const noexcept {
    return block_rows() * block_cols();
  }

  /// Copy block (bi, bj) out of the global matrix.
  Matrix extract(const Matrix& global, std::size_t bi, std::size_t bj) const;

  /// Paste `block` back at position (bi, bj) of the global matrix.
  void insert(Matrix& global, const Matrix& block, std::size_t bi,
              std::size_t bj) const;

 private:
  std::size_t rows_, cols_, grid_rows_, grid_cols_;
};

/// Scatter a global matrix into its grid of blocks, row-major over blocks.
/// Result index: bi * grid_cols + bj.
std::vector<Matrix> scatter_blocks(const Matrix& global, const BlockGrid& grid);

/// Gather blocks (ordered as produced by scatter_blocks) into a global matrix.
Matrix gather_blocks(const std::vector<Matrix>& blocks, const BlockGrid& grid);

}  // namespace hpmm
