// DESIGN.md §5 "failure injection" seams: the simulator and algorithm layer
// must reject misuse loudly — invalid (n, p) combinations, inbox misuse,
// port-model violations — and every run must satisfy the clean-run
// invariant (no message delivered but never received).

#include <gtest/gtest.h>

#include <memory>

#include "core/registry.hpp"
#include "machine/params.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams test_params() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  return m;
}

SimMachine make_machine(unsigned dim) {
  return SimMachine(std::make_shared<Hypercube>(dim), test_params());
}

Matrix payload(std::size_t words) { return Matrix(1, words); }

TEST(ErrorPaths, ApplicabilityRejectsInvalidShapes) {
  const auto& reg = default_registry();
  // Non-square p for Cannon.
  EXPECT_THROW(reg.implementation("cannon").check_applicable(16, 10),
               PreconditionError);
  // sqrt(p) does not divide n.
  EXPECT_THROW(reg.implementation("cannon").check_applicable(15, 16),
               PreconditionError);
  // GK needs p = 2^(3q).
  EXPECT_THROW(reg.implementation("gk").check_applicable(16, 16),
               PreconditionError);
  // DNS needs p >= n^2.
  EXPECT_THROW(reg.implementation("dns").check_applicable(16, 8),
               PreconditionError);
  // p exceeding the usable maximum.
  EXPECT_THROW(reg.implementation("cannon").check_applicable(2, 16),
               PreconditionError);
}

TEST(ErrorPaths, RunRefusesWhatCheckApplicableRefuses) {
  const auto& reg = default_registry();
  const Matrix a(16, 16), b(16, 16);
  EXPECT_THROW(reg.implementation("cannon").run(a, b, 10, test_params()),
               PreconditionError);
}

TEST(ErrorPaths, ReceiveFromEmptyInboxIsRejected) {
  auto m = make_machine(1);
  EXPECT_THROW(m.receive(0, 7), PreconditionError);
}

TEST(ErrorPaths, ReceiveWrongTagIsRejected) {
  auto m = make_machine(1);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, /*tag=*/3, payload(4));
  m.exchange(std::move(msgs));
  EXPECT_THROW(m.receive(1, 4), PreconditionError);  // wrong tag
  EXPECT_NO_THROW(m.receive(1, 3));
}

TEST(ErrorPaths, DoubleReceiveIsRejected) {
  auto m = make_machine(1);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 3, payload(4));
  m.exchange(std::move(msgs));
  (void)m.receive(1, 3);
  EXPECT_THROW(m.receive(1, 3), PreconditionError);
}

TEST(ErrorPaths, ReceiveOutOfRangePidIsRejected) {
  auto m = make_machine(1);
  EXPECT_THROW(m.receive(5, 0), PreconditionError);
}

TEST(ErrorPaths, OnePortRejectsTwoSendsFromOneProcessor) {
  auto m = make_machine(2);  // one-port is the default
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(4));
  msgs.emplace_back(0, 2, 2, payload(4));
  EXPECT_THROW(m.exchange(std::move(msgs)), PreconditionError);
}

TEST(ErrorPaths, OnePortRejectsTwoReceivesAtOneProcessor) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(1, 0, 1, payload(4));
  msgs.emplace_back(2, 0, 2, payload(4));
  EXPECT_THROW(m.exchange(std::move(msgs)), PreconditionError);
}

TEST(ErrorPaths, SelfMessageIsRejected) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(1, 1, 1, payload(4));
  EXPECT_THROW(m.exchange(std::move(msgs)), PreconditionError);
}

// Satellite regression: the clean-run invariant names the leftover message.
TEST(ErrorPaths, LeftoverMessageFailsCleanRunWithTagAndDestination) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 3, /*tag=*/42, payload(4));
  m.exchange(std::move(msgs));
  EXPECT_EQ(m.pending_messages(), 1u);
  try {
    m.assert_clean_run();
    FAIL() << "expected InternalError for the unreceived message";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tag 42"), std::string::npos) << what;
    EXPECT_NE(what.find("processor 3"), std::string::npos) << what;
  }
}

TEST(ErrorPaths, CleanRunPassesWhenAllMessagesReceived) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 3, 42, payload(4));
  m.exchange(std::move(msgs));
  (void)m.receive(3, 42);
  EXPECT_EQ(m.pending_messages(), 0u);
  EXPECT_NO_THROW(m.assert_clean_run());
}

TEST(ErrorPaths, ChargeGroupCommValidatesMembers) {
  auto m = make_machine(1);
  const std::vector<ProcId> bad = {0, 9};
  EXPECT_THROW(m.charge_group_comm(bad, 10.0), PreconditionError);
}

TEST(ErrorPaths, NegativeComputeIsRejected) {
  auto m = make_machine(1);
  EXPECT_THROW(m.compute(0, -5.0), PreconditionError);
}

}  // namespace
}  // namespace hpmm
