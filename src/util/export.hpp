#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "util/metrics.hpp"

namespace hpmm {

/// Rendering formats for a MetricsRegistry snapshot (docs/observability.md).
enum class MetricsExportFormat : std::uint8_t {
  kPrometheus,  ///< text exposition format (.prom)
  kOtlpJson     ///< OTLP-style JSON (.json)
};

/// Route a `--metrics-out` path on its extension: ".prom" -> Prometheus
/// text exposition, ".json" -> OTLP-style JSON. Throws PreconditionError
/// for any other extension.
MetricsExportFormat metrics_export_format(std::string_view path);

/// The exposition metric name a registry instrument renders as: "hpmm_"
/// prefix, every character outside [a-zA-Z0-9_:] replaced by '_' (dotted
/// registry names become underscored), suffixes per convention added by the
/// writer ("_total" for counters, "_bucket"/"_sum"/"_count" for
/// histograms). Exposed so tests and the format validator agree with the
/// writer on naming.
std::string prometheus_metric_name(std::string_view name);

/// Render the registry in Prometheus text exposition format: every sample
/// family preceded by its # HELP / # TYPE pair, counters as `_total`,
/// histograms as cumulative `_bucket{le="..."}` rows plus `_sum`/`_count`,
/// and each TimeSeries as a `_events_total` counter and `_value_sum` gauge
/// (the exposition format has no windowed type). Families are emitted in
/// sorted-name order per section (counters, gauges, histograms, series), so
/// output is deterministic — byte-identical for byte-identical registries.
void write_prometheus(const MetricsRegistry& registry, std::ostream& os);

/// Render the registry as one OTLP-style JSON object (resourceMetrics /
/// scopeMetrics / metrics, sum|gauge|histogram data points; TimeSeries
/// windows as a non-standard "series" payload). Same determinism contract
/// as write_prometheus; output passes json_valid.
void write_otlp_json(const MetricsRegistry& registry, std::ostream& os);

/// Render in the given format (dispatch helper for --metrics-out).
void write_metrics(const MetricsRegistry& registry, MetricsExportFormat format,
                   std::ostream& os);

}  // namespace hpmm
