// Figure 2: comparison of the four algorithms for t_w = 3, t_s = 10 (a
// near-future hypercube). Expected picture: all four regions a, b, c, d are
// present at practical values of p and n.

#include "region_common.hpp"
#include "machine/params.hpp"

int main() {
  hpmm::bench::run_region_figure(hpmm::machines::future_hypercube(), "Figure 2");
  return 0;
}
