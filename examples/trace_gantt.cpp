// Visualise where the time goes: run any registered formulation with event
// tracing enabled (MachineParams::trace) and print a per-processor Gantt
// chart plus the compute/send/wait breakdown — the visual counterpart of
// the T_p / T_o numbers.
//
//   ./trace_gantt --algorithm=gk --n=16 --p=8 --ts=60 --tw=2
//   ./trace_gantt --algorithm=cannon --n=32 --p=16
//   ./trace_gantt --algorithm=berntsen --n=16 --p=8

#include <algorithm>
#include <iostream>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string algorithm = args.get("algorithm", "gk");
  const auto n = static_cast<std::size_t>(args.get_int("n", 16));
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  MachineParams mp;
  mp.t_s = args.get_double("ts", 60.0);
  mp.t_w = args.get_double("tw", 2.0);
  mp.trace = true;  // ask the simulated machine to record event timelines

  const auto& reg = default_registry();
  if (!reg.contains(algorithm)) {
    std::cerr << "unknown algorithm '" << algorithm << "'; choose from:";
    for (const auto& name : reg.names()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 1;
  }
  const ParallelMatmul& impl = reg.implementation(algorithm);
  try {
    impl.check_applicable(n, p);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }

  Rng rng(5);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const MatmulResult result = impl.run(a, b, p, mp);

  std::cout << "Execution trace: " << algorithm << ", n = " << n << ", p = "
            << p << ", t_s = " << mp.t_s << ", t_w = " << mp.t_w << "\n"
            << result.report.summary() << "\n\n";
  result.trace.print_gantt(std::cout, 72, 16);

  std::cout << "\nPer-processor breakdown:\n";
  Table t({"proc", "compute", "send", "wait", "modeled-comm", "utilization"});
  const auto shown = std::min<std::size_t>(result.trace.procs(), 16);
  for (ProcId pid = 0; pid < shown; ++pid) {
    t.begin_row()
        .add_int(pid)
        .add_num(result.trace.total(pid, TraceEvent::Kind::kCompute), 4)
        .add_num(result.trace.total(pid, TraceEvent::Kind::kSend), 4)
        .add_num(result.trace.total(pid, TraceEvent::Kind::kWait), 4)
        .add_num(result.trace.total(pid, TraceEvent::Kind::kModeledComm), 4)
        .add_num(result.trace.utilization(pid), 3);
  }
  t.print_aligned(std::cout);
  std::cout << "\nThe mean utilization across processors approximates the\n"
               "efficiency E = " << format_number(result.report.efficiency(), 3)
            << " (exactly, once send time is charged as overhead).\n";
  return 0;
}
