#pragma once

#include <cstdint>
#include <string>

#include "matrix/matrix.hpp"

namespace hpmm {

class ThreadPool;  // util/thread_pool.hpp

/// Local matrix-multiply kernel variants. All compute C (+)= A * B with the
/// conventional O(n^3) algorithm — the paper considers only this algorithm
/// (Section 2, footnote 1). Every kernel accumulates each C element in
/// strictly increasing k order, so all of them (and any thread count) agree
/// bit-for-bit apart from compiler-level FMA contraction differences.
enum class Kernel : std::uint8_t {
  kNaiveIjk,     ///< textbook triple loop, i-j-k order
  kCacheIkj,     ///< i-k-j order: unit-stride inner loop over B and C rows
  kBlocked,      ///< square tiling for cache reuse, ikj inside tiles
  kTransposedB,  ///< multiplies against an explicit transpose of B
  kPacked        ///< register-blocked micro-kernel over packed B panels
};

/// Human-readable kernel name ("naive-ijk", ...).
std::string to_string(Kernel k);

/// Inverse of to_string; throws PreconditionError (listing the valid names)
/// for anything else.
Kernel kernel_from_string(const std::string& name);

/// Host execution policy for local numerics: which kernel runs the real
/// multiply-adds and how many host threads drive them. Purely a wall-clock
/// concern — simulated virtual time never depends on it.
struct ExecPolicy {
  Kernel kernel = Kernel::kCacheIkj;
  unsigned threads = 1;  ///< host threads for local numerics (>= 1)
};

/// C += A * B using the requested kernel.
/// Shapes: A is m x k, B is k x n, C is m x n (validated).
/// A non-null `pool` parallelizes Kernel::kPacked over row panels; the
/// result is bit-identical for every pool size (each C element is owned by
/// exactly one thread and accumulated in the same k order). Other kernels
/// ignore the pool.
void multiply_add(const Matrix& a, const Matrix& b, Matrix& c,
                  Kernel kernel = Kernel::kCacheIkj, ThreadPool* pool = nullptr);

/// Returns A * B (freshly allocated) using the requested kernel.
Matrix multiply(const Matrix& a, const Matrix& b,
                Kernel kernel = Kernel::kCacheIkj, ThreadPool* pool = nullptr);

/// Number of useful multiply-add operations for an (m x k) * (k x n) product;
/// this is the paper's unit of "problem size" W (one mult + one add = 1).
std::uint64_t matmul_flops(std::size_t m, std::size_t k, std::size_t n) noexcept;

/// Tile edge used by Kernel::kBlocked.
inline constexpr std::size_t kBlockedTile = 32;

/// Register micro-tile of Kernel::kPacked: each micro-kernel call keeps an
/// MR x NR accumulator block in registers (sized for 4 x 8 doubles = one
/// AVX2 register file with room for operands).
inline constexpr std::size_t kPackedMR = 4;
inline constexpr std::size_t kPackedNR = 8;

/// Cache-level tile sizes of Kernel::kPacked. The numerical result is
/// independent of these (accumulation order per C element is always plain
/// increasing k); they only steer cache reuse and the threading grain.
struct PackedTuning {
  std::size_t kc = 256;  ///< K-panel depth: one packed B panel spans kc rows
  std::size_t mc = 64;   ///< rows per work item when threading over panels
};

/// Process-wide tuning used by Kernel::kPacked. The first call (unless
/// set_packed_tuning was used) runs a small autotuner: each candidate tile
/// pair multiplies a probe matrix and the fastest wins. Thread-safe.
PackedTuning packed_tuning();

/// Pin the process-wide packed tuning (tests, benchmark sweeps); overrides
/// any autotuned choice. Throws PreconditionError on zero tile sizes.
void set_packed_tuning(const PackedTuning& tuning);

/// Time the candidate tile sizes on this machine with an n x n probe
/// multiply and return the fastest. Called lazily by packed_tuning().
PackedTuning autotune_packed(std::size_t probe_n = 192);

/// Host wall-clock profile of Kernel::kPacked invocations — the real time
/// the micro-kernel spent, as opposed to the simulator's virtual charges.
struct KernelWallProfile {
  std::uint64_t calls = 0;  ///< packed multiply_add invocations
  double seconds = 0.0;     ///< steady_clock wall time inside them
};

/// Toggle process-wide packed-kernel wall profiling (off by default: one
/// steady_clock pair per call when on, nothing otherwise). Thread-safe;
/// counts accumulate across threads.
void enable_kernel_wall_profile(bool on) noexcept;
KernelWallProfile kernel_wall_profile() noexcept;
void reset_kernel_wall_profile() noexcept;

}  // namespace hpmm
