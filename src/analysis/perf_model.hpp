#pragma once

#include <memory>
#include <string>
#include <vector>

#include "machine/params.hpp"

namespace hpmm {

/// Analytical performance model of one parallel formulation: the paper's
/// T_p expressions (Section 4) as continuous functions of matrix order n and
/// processor count p, for a given set of machine parameters.
///
/// All times are in multiply-add units; W = n^3.
class PerfModel {
 public:
  explicit PerfModel(MachineParams params) : params_(std::move(params)) {}
  virtual ~PerfModel() = default;

  virtual std::string name() const = 0;

  /// Communication (and other overhead) time on the critical path; i.e.
  /// T_p = W/p + t_overhead_per_proc. For DNS this includes the data
  /// serialisation term proportional to n^3/p.
  virtual double comm_time(double n, double p) const = 0;

  /// Largest processor count the formulation can use for order n — the
  /// concurrency bound h(W) of Section 5 (e.g. n^2 for Cannon, n^{3/2} for
  /// Berntsen, n^3 for GK/DNS).
  virtual double max_procs(double n) const = 0;

  /// Smallest processor count (only DNS is bounded below, by n^2).
  virtual double min_procs(double n) const { (void)n; return 1.0; }

  /// Words of storage per processor (Section 4's memory-efficiency claims).
  virtual double memory_per_proc(double n, double p) const;

  /// True when (n, p) lies in the formulation's range of applicability
  /// (continuous relaxation: divisibility constraints are ignored).
  bool applicable(double n, double p) const {
    return p >= min_procs(n) && p <= max_procs(n) && p >= 1.0 && n >= 1.0;
  }

  /// T_p(n, p) = n^3/p + comm_time(n, p).
  double t_parallel(double n, double p) const {
    return n * n * n / p + comm_time(n, p);
  }
  /// T_o(W, p) = p T_p - W.
  double t_overhead(double n, double p) const {
    return p * comm_time(n, p);
  }
  /// S = W / T_p.
  double speedup(double n, double p) const {
    return n * n * n / t_parallel(n, p);
  }
  /// E = S / p = 1 / (1 + T_o/W).
  double efficiency(double n, double p) const {
    return speedup(n, p) / p;
  }

  const MachineParams& params() const noexcept { return params_; }

 protected:
  double t_s() const noexcept { return params_.t_s; }
  double t_w() const noexcept { return params_.t_w; }

 private:
  MachineParams params_;
};

/// Simple algorithm, Eq. 2: T_p = n^3/p + 2 t_s log p + 2 t_w n^2/sqrt(p).
class SimpleModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "simple"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n; }
  double memory_per_proc(double n, double p) const override;
};

/// The simple algorithm with ring all-to-alls on a plain mesh (no hypercube
/// links): T_p = n^3/p + 2 (sqrt(p)-1)(t_s + t_w n^2/p). Exact for the
/// simulated "simple-ring" variant; shows what the hypercube's log-factor
/// buys the broadcast-heavy formulation (Cannon, by contrast, costs the
/// same on mesh and hypercube).
class SimpleRingModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "simple-ring"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n; }
  double memory_per_proc(double n, double p) const override;
};

/// Cannon's algorithm, Eq. 3: T_p = n^3/p + 2 t_s sqrt(p) + 2 t_w n^2/sqrt(p).
class CannonModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "cannon"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n; }
  double memory_per_proc(double n, double p) const override;
};

/// 2.5D memory-replicated Cannon (Ballard-Demmel-Holtz-Lipshitz) with
/// replication factor c on a sqrt(p/c) x sqrt(p/c) x c grid:
///   T_p = n^3/p + (3 log2 c + 2 sqrt(p/c^3)) (t_s + t_w c n^2/p),
/// i.e. 2 log2 c broadcast rounds + 2 sqrt(p/c^3) per-layer Cannon rounds
/// (alignment + shifts) + log2 c reduction rounds, each moving the
/// c n^2/p-word resident block. Degenerates to Cannon's Eq. 3 at c = 1;
/// memory rises to Theta(c n^2/p) per processor and the per-layer bandwidth
/// term drops to 2 t_w n^2/sqrt(pc). Exact for the simulated cannon25d
/// under one-port cut-through routing.
class Cannon25DModel final : public PerfModel {
 public:
  explicit Cannon25DModel(MachineParams params, std::size_t c = 2)
      : PerfModel(std::move(params)), c_(static_cast<double>(c)) {}
  std::string name() const override { return "cannon25d"; }
  double comm_time(double n, double p) const override;
  /// q <= n per layer: p = c q^2 <= c n^2.
  double max_procs(double n) const override { return c_ * n * n; }
  /// c <= p^{1/3}, i.e. p >= c^3.
  double min_procs(double n) const override { (void)n; return c_ * c_ * c_; }
  double memory_per_proc(double n, double p) const override;

  double replication() const noexcept { return c_; }

 private:
  double c_;
};

/// Fox's algorithm, pipelined variant of Eq. 4:
/// T_p = n^3/p + 2 t_w n^2/sqrt(p) + t_s p.
class FoxModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "fox"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n; }
  double memory_per_proc(double n, double p) const override;
};

/// Berntsen's algorithm, Eq. 5:
/// T_p = n^3/p + 2 t_s p^{1/3} + (1/3) t_s log p + 3 t_w n^2/p^{2/3},
/// restricted to p <= n^{3/2}.
class BerntsenModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "berntsen"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override;
  double memory_per_proc(double n, double p) const override;
};

/// DNS algorithm, Eq. 6:
/// T_p = n^3/p + (t_s + t_w)(5 log(p/n^2) + 2 n^3/p), n^2 <= p <= n^3.
/// The n^3/p overhead term caps efficiency at 1/(1 + 2 t_s + 2 t_w).
class DnsModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "dns"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n * n; }
  double min_procs(double n) const override { return n * n; }
  double memory_per_proc(double n, double p) const override;

  /// The efficiency ceiling 1/(1 + 2(t_s + t_w)) of Section 5.3.
  double efficiency_ceiling() const;
};

/// GK algorithm, Eq. 7:
/// T_p = n^3/p + (5/3) t_s log p + (5/3) t_w n^2 p^{-2/3} log p, p <= n^3.
class GkModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "gk"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n * n; }
  double memory_per_proc(double n, double p) const override;
};

/// GK with the Johnsson-Ho one-to-all broadcast (Section 5.4.1):
/// T_p = n^3/p + 5 t_w n^2 p^{-2/3} + (5/3) t_s log p
///       + 10 n p^{-1/3} sqrt((1/3) t_s t_w log p).
/// Valid only at granularity n^3 >= (t_s/t_w)^{3/2} p (log p)^{3/2}
/// (min_n_for_packets); below it the packetised pipeline degenerates.
class GkJohnssonHoModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "gk-jh"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n * n; }
  double memory_per_proc(double n, double p) const override;

  /// Granularity bound: smallest n for which every pipelined packet holds at
  /// least one word, n^2/p^{2/3} >= (t_s/t_w) log p (Section 5.4.1).
  double min_n_for_packets(double p) const;
};

/// Simple algorithm with all-port communication, Eq. 16:
/// T_p = n^3/p + 2 t_w n^2/(sqrt(p) log p) + (1/2) t_s log p,
/// requiring n >= (1/2) sqrt(p) log p.
class SimpleAllPortModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "simple-allport"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n; }
  double memory_per_proc(double n, double p) const override;

  /// Message-granularity bound of Section 7.1: n >= (1/2) sqrt(p) log p.
  double min_n_for_channels(double p) const;
};

/// GK with all-port communication, Eq. 17:
/// T_p = n^3/p + t_s log p + 9 t_w n^2/(p^{2/3} log p) + 6 n p^{-1/3} sqrt(t_s t_w).
class GkAllPortModel final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "gk-allport"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n * n; }
  double memory_per_proc(double n, double p) const override;

  /// Granularity bound of Section 7.2 (problem must grow as p (log p)^3).
  double min_n_for_channels(double p) const;
};

/// GK on the fully connected CM-5 view, Eq. 18:
/// T_p = n^3/p + t_s (log p + 2) + t_w n^2 p^{-2/3} (log p + 2).
class GkCm5Model final : public PerfModel {
 public:
  using PerfModel::PerfModel;
  std::string name() const override { return "gk-fc"; }
  double comm_time(double n, double p) const override;
  double max_procs(double n) const override { return n * n * n; }
  double memory_per_proc(double n, double p) const override;
};

/// The four algorithms the paper compares in Sections 5-6 (Table 1 order):
/// Berntsen, Cannon, GK, DNS — with the given machine parameters.
std::vector<std::unique_ptr<PerfModel>> table1_models(const MachineParams& params);

/// Every model in this header, same machine parameters.
std::vector<std::unique_ptr<PerfModel>> all_models(const MachineParams& params);

}  // namespace hpmm
