#include "analysis/technology.hpp"

#include <gtest/gtest.h>

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Technology, CannonTenfoldProcessorsNeeds31x) {
  // Section 8: "in case of Cannon's algorithm, if the number of processors
  // is increased 10 times, one would have to solve a problem 31.6 times
  // bigger" (p^{1.5} isoefficiency: 10^{1.5} = 31.6).
  const CannonModel m(params(0.0, 3.0));  // t_w-dominated regime
  const auto growth = problem_growth_more_procs(m, 1e6, 10.0, 0.7);
  ASSERT_TRUE(growth);
  EXPECT_NEAR(*growth, 31.6, 0.5);
}

TEST(Technology, CannonTenfoldFasterCpusNeeds1000x) {
  // Section 8: with small t_s, 10x faster processors force a 1000x larger
  // problem (the t_w^3 factor).
  const auto growth =
      problem_growth_faster_procs<CannonModel>(params(0.0, 3.0), 1e6, 10.0, 0.7);
  ASSERT_TRUE(growth);
  EXPECT_NEAR(*growth, 1000.0, 5.0);
}

TEST(Technology, MoreProcessorsCanBeatFasterProcessors) {
  // The headline contrarian claim: for a fixed problem, k-fold more
  // processors can outperform k-fold faster processors.
  const MachineParams mp = params(0.5, 3.0);
  // Large matrix, communication-light regime: more processors win.
  const auto r = more_vs_faster<CannonModel>(mp, 4096.0, 256.0, 4.0);
  EXPECT_LT(r.t_more_procs, r.t_faster_procs);
  EXPECT_TRUE(r.more_procs_wins());
}

TEST(Technology, FasterProcessorsWinWhenCommDominates) {
  // Small problem on a high-latency machine: adding processors only adds
  // startup cost, so faster CPUs win.
  const MachineParams mp = params(5000.0, 3.0);
  const auto r = more_vs_faster<CannonModel>(mp, 64.0, 16.0, 4.0);
  EXPECT_GT(r.t_more_procs, r.t_faster_procs);
  EXPECT_FALSE(r.more_procs_wins());
}

TEST(Technology, FasterCpusTimeIsConsistent) {
  // With free communication the two options tie exactly: n^3/(k p) each.
  const MachineParams mp = params(0.0, 0.0);
  const auto r = more_vs_faster<CannonModel>(mp, 512.0, 64.0, 8.0);
  EXPECT_DOUBLE_EQ(r.t_more_procs, r.t_faster_procs);
  EXPECT_DOUBLE_EQ(r.t_more_procs, 512.0 * 512.0 * 512.0 / 512.0);
}

TEST(Technology, GkGrowthIsMilderThanCannon) {
  // GK's ~p polylog isoefficiency makes its required growth under 10x
  // processors smaller than Cannon's p^{1.5}.
  const MachineParams mp = params(0.0, 3.0);
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  const auto g_gk = problem_growth_more_procs(gk, 1e6, 10.0, 0.7);
  const auto g_cn = problem_growth_more_procs(cannon, 1e6, 10.0, 0.7);
  ASSERT_TRUE(g_gk && g_cn);
  EXPECT_LT(*g_gk, *g_cn);
}

TEST(Technology, UnreachableEfficiencyPropagates) {
  const DnsModel dns(params(10, 2));  // ceiling 1/25
  EXPECT_FALSE(problem_growth_more_procs(dns, 1e6, 10.0, 0.5).has_value());
}

}  // namespace
}  // namespace hpmm
