#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(FullyConnected, AllPairsOneHop) {
  FullyConnected fc(8);
  EXPECT_EQ(fc.size(), 8u);
  for (ProcId a = 0; a < 8; ++a) {
    for (ProcId b = 0; b < 8; ++b) {
      EXPECT_EQ(fc.hops(a, b), a == b ? 0u : 1u);
    }
  }
}

TEST(FullyConnected, NeighborsAreEveryoneElse) {
  FullyConnected fc(5);
  const auto ns = fc.neighbors(2);
  EXPECT_EQ(ns.size(), 4u);
  for (ProcId nb : ns) EXPECT_NE(nb, 2u);
}

TEST(FullyConnected, Ports) {
  FullyConnected fc(10);
  EXPECT_EQ(fc.ports_per_proc(), 9u);
}

TEST(FullyConnected, Validation) {
  EXPECT_THROW(FullyConnected(0), PreconditionError);
  FullyConnected fc(4);
  EXPECT_THROW(fc.hops(4, 0), PreconditionError);
  EXPECT_THROW(fc.neighbors(4), PreconditionError);
}

TEST(FullyConnected, AdjacentHelper) {
  FullyConnected fc(3);
  EXPECT_TRUE(fc.adjacent(0, 1));
  EXPECT_FALSE(fc.adjacent(1, 1));
}

}  // namespace
}  // namespace hpmm
