// Every algorithm must stay numerically correct (and keep its invariants)
// under every machine mode: store-and-forward routing, non-zero per-hop
// latency, link-contention charging, and combinations — the timing changes,
// the product must not.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"

namespace hpmm {
namespace {

struct ModeCase {
  const char* algorithm;
  std::size_t n, p;
  Routing routing;
  double t_h;
  Contention contention;
};

class MachineModes : public ::testing::TestWithParam<ModeCase> {};

TEST_P(MachineModes, ProductCorrectAndCostsSane) {
  const auto c = GetParam();
  MachineParams mp;
  mp.t_s = 30.0;
  mp.t_w = 2.0;
  mp.routing = c.routing;
  mp.t_h = c.t_h;
  mp.contention = c.contention;

  Rng rng(81);
  const Matrix a = random_matrix(c.n, c.n, rng);
  const Matrix b = random_matrix(c.n, c.n, rng);
  const auto res =
      default_registry().implementation(c.algorithm).run(a, b, c.p, mp);
  EXPECT_LE(max_abs_diff(res.c, multiply(a, b)), 1e-12 * double(c.n))
      << c.algorithm;
  EXPECT_GT(res.report.t_parallel, 0.0);
  EXPECT_LE(res.report.efficiency(), 1.0 + 1e-12);

  // The extra costs can only slow things down relative to the ideal
  // cut-through, contention-free machine.
  MachineParams ideal = mp;
  ideal.routing = Routing::kCutThrough;
  ideal.t_h = 0.0;
  ideal.contention = Contention::kIgnore;
  const auto base =
      default_registry().implementation(c.algorithm).run(a, b, c.p, ideal);
  EXPECT_GE(res.report.t_parallel, base.report.t_parallel - 1e-9) << c.algorithm;
  EXPECT_EQ(res.c, base.c);  // identical numerics regardless of timing mode
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MachineModes,
    ::testing::Values(
        // Store-and-forward: multi-hop transfers pay per hop.
        ModeCase{"cannon", 16, 16, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        ModeCase{"simple", 16, 16, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        ModeCase{"fox", 16, 16, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        ModeCase{"fox-pipe", 16, 16, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        ModeCase{"berntsen", 16, 8, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        ModeCase{"dns", 4, 32, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        ModeCase{"gk", 16, 64, Routing::kStoreAndForward, 0.0,
                 Contention::kIgnore},
        // Cut-through with per-hop latency.
        ModeCase{"cannon", 16, 16, Routing::kCutThrough, 1.5,
                 Contention::kIgnore},
        ModeCase{"gk", 16, 64, Routing::kCutThrough, 1.5, Contention::kIgnore},
        ModeCase{"berntsen", 16, 8, Routing::kCutThrough, 1.5,
                 Contention::kIgnore},
        // Contention charging.
        ModeCase{"cannon", 16, 16, Routing::kCutThrough, 0.0,
                 Contention::kLinkLoad},
        ModeCase{"gk", 16, 64, Routing::kCutThrough, 0.0,
                 Contention::kLinkLoad},
        ModeCase{"simple-ring", 12, 9, Routing::kCutThrough, 0.0,
                 Contention::kLinkLoad},
        // Everything at once.
        ModeCase{"cannon", 16, 16, Routing::kStoreAndForward, 2.0,
                 Contention::kLinkLoad},
        ModeCase{"gk", 16, 8, Routing::kStoreAndForward, 2.0,
                 Contention::kLinkLoad}),
    [](const auto& info) {
      const auto& c = info.param;
      std::string name = c.algorithm;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += c.routing == Routing::kStoreAndForward ? "_sf" : "_ct";
      if (c.t_h > 0) name += "_hop";
      if (c.contention == Contention::kLinkLoad) name += "_load";
      return name;
    });

TEST(MachineModes, StoreAndForwardCostsMoreWhereRoutesAreLong) {
  // GK's stage-1 moves and the hypercube Fox's B-roll cross several links;
  // store-and-forward must be measurably slower there, while Cannon (all
  // nearest-neighbour shifts, 1-hop alignment ring moves) barely changes.
  Rng rng(82);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  MachineParams ct;
  ct.t_s = 30.0;
  ct.t_w = 2.0;
  MachineParams sf = ct;
  sf.routing = Routing::kStoreAndForward;
  const auto& reg = default_registry();
  const double fox_ct = reg.implementation("fox").run(a, b, 16, ct).report.t_parallel;
  const double fox_sf = reg.implementation("fox").run(a, b, 16, sf).report.t_parallel;
  EXPECT_GT(fox_sf, fox_ct * 1.05);
}

}  // namespace
}  // namespace hpmm
