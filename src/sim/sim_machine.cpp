#include "sim/sim_machine.hpp"

#include <algorithm>

#include "sim/reliable.hpp"
#include "topology/routing.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hpmm {

SimMachine::SimMachine(std::shared_ptr<const Topology> topology,
                       MachineParams params)
    : topology_(std::move(topology)), params_(std::move(params)) {
  require(topology_ != nullptr, "SimMachine: topology must not be null");
  require(params_.exec.threads >= 1, "SimMachine: exec.threads must be >= 1");
  if (params_.exec.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(params_.exec.threads);
  }
  stats_.resize(topology_->size());
  inbox_.resize(topology_->size());
  chain_.resize(topology_->size());
  traffic_ = TrafficMatrix(topology_->size());
  // Register the standard distributions up front so they appear in metric
  // exports even before the first message.
  metrics_.histogram("sim.message_words", Histogram::pow2_bounds(24));
  metrics_.histogram("sim.message_hops", Histogram::pow2_bounds(8));
  metrics_.histogram("sim.hop_latency", Histogram::pow2_bounds(24));
  tracing_ = params_.trace;
  // The fault path only exists when a plan can actually fire; an inactive
  // plan keeps the machine on the exact ideal code path (bit-identical
  // times), which tests/algorithms/resilience_test.cpp pins down.
  if (params_.faults && params_.faults->active()) {
    injector_ = std::make_unique<FaultInjector>(params_.faults);
    for (const auto& s : params_.faults->stragglers) {
      require(s.pid < procs(), "FaultPlan: straggler pid out of range");
    }
    for (const auto& f : params_.faults->failstops) {
      require(f.pid < procs(), "FaultPlan: fail-stop pid out of range");
    }
  }
}

void SimMachine::record(ProcId pid, TraceEvent::Kind kind, double start,
                        double end, std::uint64_t words) {
  if (!tracing_ || end <= start) return;
  trace_events_.push_back(
      TraceEvent{pid, kind, start, end, words, current_phase()});
}

SimMachine::PhaseId SimMachine::begin_phase(std::string_view name) {
  require(!name.empty(), "SimMachine::begin_phase: empty phase name");
  PhaseId id = 0;
  for (std::size_t i = 1; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) {
      id = static_cast<PhaseId>(i);
      break;
    }
  }
  if (id == 0) {
    require(phase_names_.size() < 0xffff,
            "SimMachine::begin_phase: too many distinct phases");
    id = static_cast<PhaseId>(phase_names_.size());
    phase_names_.emplace_back(name);
  }
  phase_stack_.push_back(id);
  return id;
}

void SimMachine::end_phase() {
  require(!phase_stack_.empty(), "SimMachine::end_phase: no open phase");
  phase_stack_.pop_back();
}

PhaseStats& SimMachine::phase_cell(PhaseId phase, ProcId pid) {
  if (phase_stats_.size() <= phase) phase_stats_.resize(phase + 1u);
  auto& row = phase_stats_[phase];
  if (row.size() < procs()) row.resize(procs());
  return row[pid];
}

PathTerms& SimMachine::chain_cell(ProcId pid) {
  auto& row = chain_[pid];
  const PhaseId phase = current_phase();
  if (row.size() <= phase) row.resize(phase + 1u);
  return row[phase];
}

void SimMachine::compute(ProcId pid, double flops) {
  require(pid < procs(), "SimMachine::compute: pid out of range");
  require(flops >= 0.0, "SimMachine::compute: negative flops");
  auto& st = stats_[pid];
  double duration = flops;  // t_c = 1 multiply-add unit
  if (injector_) {
    check_alive(pid);
    duration = flops * injector_->slowdown(pid);  // straggler runs slower
  }
  record(pid, TraceEvent::Kind::kCompute, st.clock, st.clock + duration);
  st.clock += duration;
  st.compute_time += duration;
  st.flops += static_cast<std::uint64_t>(flops);
  auto& cell = phase_cell(current_phase(), pid);
  cell.compute_time += duration;
  cell.flops += static_cast<std::uint64_t>(flops);
  chain_cell(pid).compute += duration;
  check_deadline(pid);
}

SimMachine::~SimMachine() = default;
SimMachine::SimMachine(SimMachine&&) noexcept = default;
SimMachine& SimMachine::operator=(SimMachine&&) noexcept = default;

void SimMachine::compute_multiply_add(ProcId pid, const Matrix& a,
                                      const Matrix& b, Matrix& c) {
  compute_multiply_add(pid, a, b, c, params_.exec.kernel);
}

void SimMachine::compute_multiply_add(ProcId pid, const Matrix& a,
                                      const Matrix& b, Matrix& c,
                                      Kernel kernel) {
  multiply_add(a, b, c, kernel, pool_.get());
  compute(pid, static_cast<double>(matmul_flops(a.rows(), a.cols(), b.cols())));
}

void SimMachine::compute_multiply_add_batch(
    const std::vector<ComputeTask>& tasks) {
  const Kernel kernel = params_.exec.kernel;
  for (const auto& t : tasks) {
    require(t.c != nullptr, "compute_multiply_add_batch: null output matrix");
    require(t.pid < procs(), "compute_multiply_add_batch: pid out of range");
  }
  // Numerics first: tasks touch disjoint outputs, so they run concurrently
  // across the pool. A single task instead threads inside the kernel.
  const auto run_task = [&](const ComputeTask& t, ThreadPool* pool) {
    for (const auto& [a, b] : t.products) multiply_add(*a, *b, *t.c, kernel, pool);
  };
  if (pool_ != nullptr && tasks.size() > 1) {
    pool_->parallel_for(tasks.size(),
                        [&](std::size_t i) { run_task(tasks[i], nullptr); });
  } else {
    for (const auto& t : tasks) run_task(t, pool_.get());
  }
  // Virtual-time accounting: serial and order-preserving — one charge per
  // product, exactly like the equivalent compute_multiply_add sequence
  // (same clocks, same trace events, ProcessorFailure at the same point).
  for (const auto& t : tasks) {
    for (const auto& [a, b] : t.products) {
      compute(t.pid,
              static_cast<double>(matmul_flops(a->rows(), a->cols(), b->cols())));
    }
  }
}

double SimMachine::message_cost(const Message& m,
                                unsigned contention_load) const {
  const unsigned hops = topology_->hops(m.src, m.dst);
  const double base = params_.message_time(static_cast<double>(m.words()), hops);
  if (contention_load <= 1) return base;
  // Under link contention the per-word part serialises with the other
  // messages sharing the bottleneck link; startup/hop latency is unaffected.
  const double tw_part = params_.t_w * static_cast<double>(m.words()) *
                         (params_.routing == Routing::kStoreAndForward
                              ? static_cast<double>(hops)
                              : 1.0);
  return base + tw_part * static_cast<double>(contention_load - 1);
}

double SimMachine::message_startup(const Message& m) const {
  const unsigned hops = topology_->hops(m.src, m.dst);
  if (hops == 0) return 0.0;
  if (params_.routing == Routing::kStoreAndForward) {
    return params_.t_s * static_cast<double>(hops);
  }
  return params_.t_s + params_.t_h * static_cast<double>(hops);
}

void SimMachine::exchange(std::vector<Message> messages) {
  ++exchange_round_;  // identifies this round in fault-fate hashing
  // Validate port-model constraints.
  std::vector<unsigned> sends(procs(), 0), recvs(procs(), 0);
  for (const auto& m : messages) {
    require(m.src < procs() && m.dst < procs(),
            "SimMachine::exchange: endpoint out of range");
    require(m.src != m.dst, "SimMachine::exchange: self-message");
    if (injector_) {
      check_alive(m.src);
      check_alive(m.dst);
    }
    ++sends[m.src];
    ++recvs[m.dst];
  }
  const bool one_port = params_.ports == PortModel::kOnePort;
  for (ProcId pid = 0; pid < procs(); ++pid) {
    const unsigned limit =
        one_port ? 1u : std::max(1u, topology_->ports_per_proc());
    require(sends[pid] <= limit,
            "SimMachine::exchange: too many sends from one processor for the "
            "port model (split the pattern into multiple rounds)");
    require(recvs[pid] <= limit,
            "SimMachine::exchange: too many receives at one processor for the "
            "port model (split the pattern into multiple rounds)");
  }

  // Optional contention model: each message's per-word time scales with the
  // worst link load along its route within this round.
  std::vector<unsigned> load_factor(messages.size(), 1);
  if (params_.contention == Contention::kLinkLoad && !messages.empty()) {
    std::vector<std::pair<ProcId, ProcId>> transfers;
    transfers.reserve(messages.size());
    for (const auto& m : messages) transfers.emplace_back(m.src, m.dst);
    const auto loads = link_loads(*topology_, transfers);
    for (std::size_t i = 0; i < messages.size(); ++i) {
      unsigned worst = 1;
      for (const Link& link :
           route_on(*topology_, messages[i].src, messages[i].dst)) {
        worst = std::max(worst, loads.at(link));
      }
      load_factor[i] = worst;
    }
  }

  // Senders are busy for the full duration of their transfers. Under the
  // all-port model multiple transfers from one processor run concurrently,
  // so the busy time is the max (not the sum) of their costs. With an
  // active fault plan each message additionally walks the reliable-delivery
  // retry schedule (sim/reliable.hpp): timeouts extend the sender's elapsed
  // span beyond its busy time, and the arrival moves to the successful
  // attempt (plus any in-flight delay).
  std::vector<double> send_busy(procs(), 0.0);
  std::vector<double> send_span(procs(), 0.0);
  std::vector<double> arrival_max(procs(), 0.0);
  std::vector<bool> deliver(messages.size(), true);
  std::vector<bool> deliver_dup(messages.size(), false);
  // Critical-path bookkeeping (pure metadata — never feeds back into the
  // clock arithmetic below): which message sets each receiver's arrival,
  // which sets each sender's busy time, and each message's startup/word/
  // other split. Retry timeouts, in-flight delays and straggler inflation
  // all land in `other`.
  const PhaseId cur = current_phase();
  std::vector<int> arrival_msg(procs(), -1);
  std::vector<int> busiest_msg(procs(), -1);
  std::vector<double> msg_startup(messages.size(), 0.0);
  std::vector<double> msg_word(messages.size(), 0.0);
  std::vector<double> msg_other(messages.size(), 0.0);
  Histogram& h_words =
      metrics_.histogram("sim.message_words", Histogram::pow2_bounds(24));
  Histogram& h_hops =
      metrics_.histogram("sim.message_hops", Histogram::pow2_bounds(8));
  Histogram& h_hop_latency =
      metrics_.histogram("sim.hop_latency", Histogram::pow2_bounds(24));
  Counter& c_messages = metrics_.counter("sim.messages");
  Counter& c_words = metrics_.counter("sim.words");
  for (std::size_t i = 0; i < messages.size(); ++i) {
    auto& m = messages[i];
    double cost = message_cost(m, load_factor[i]);
    double busy = cost, span = cost, arrival_delay = 0.0;
    if (injector_) {
      cost *= injector_->slowdown(m.src);  // a straggler's sends run slower
      const ReliableOutcome out =
          reliable_delivery(*injector_, m, exchange_round_, cost);
      busy = out.busy;
      span = out.span();
      arrival_delay = out.delay;
      deliver[i] = out.delivered;
      auto& fs = fault_stats_;
      fs.transmissions_dropped += out.attempts - 1 + (out.delivered ? 0 : 1);
      fs.retransmissions += out.retransmissions();
      stats_[m.src].retransmissions += out.retransmissions();
      if (out.delay > 0.0) ++fs.deliveries_delayed;
      if (!out.delivered) ++fs.messages_lost;
      if (out.duplicated) {
        // The reliable protocol de-duplicates at the receiver; without it
        // the extra copy really lands in the inbox.
        if (injector_->plan().reliable) {
          ++fs.duplicates_suppressed;
        } else {
          deliver_dup[i] = out.delivered;
          if (out.delivered) ++fs.duplicates_delivered;
        }
      }
      if (out.delivered && out.corrupted) {
        corrupt_message_word(
            m, injector_->corrupt_word_index(m, exchange_round_,
                                             out.corrupt_attempt));
        ++fs.elements_corrupted;
      }
    }
    if (deliver[i]) {
      const double arrival = stats_[m.src].clock + span + arrival_delay;
      if (arrival > arrival_max[m.dst]) {
        arrival_max[m.dst] = arrival;
        arrival_msg[m.dst] = static_cast<int>(i);
      }
    }
    if (busy > send_busy[m.src]) {
      send_busy[m.src] = busy;
      busiest_msg[m.src] = static_cast<int>(i);
    }
    send_span[m.src] = std::max(send_span[m.src], span);
    stats_[m.src].messages_sent += 1;
    stats_[m.src].words_sent += m.words();
    // Cost split: startup is the t_s/hop slice of the *base* cost, the rest
    // of the transfer time (contention included) is per-word, and everything
    // past the successful transfer (timeouts, delay, slowdown) is "other".
    msg_startup[i] = std::min(message_startup(m), busy);
    msg_word[i] = busy - msg_startup[i];
    msg_other[i] = (span + arrival_delay) - busy;
    auto& pcell = phase_cell(cur, m.src);
    pcell.messages_sent += 1;
    pcell.words_sent += m.words();
    const unsigned hops = topology_->hops(m.src, m.dst);
    h_words.observe(static_cast<double>(m.words()));
    h_hops.observe(static_cast<double>(hops));
    if (hops > 0) h_hop_latency.observe(cost / static_cast<double>(hops));
    c_messages.add();
    c_words.add(m.words());
    traffic_.add(m.src, m.dst, m.words());
  }
  // Receivers that end up waiting adopt the chain that produced their
  // arrival: the sender's pre-round decomposition plus this message's cost,
  // attributed to the phase open now (snapshot the chains before the
  // mutation loop below touches them).
  std::vector<std::vector<PathTerms>> adopted(procs());
  for (ProcId pid = 0; pid < procs(); ++pid) {
    const int mi = arrival_msg[pid];
    if (mi < 0) continue;
    const Message& m = messages[static_cast<std::size_t>(mi)];
    auto& chain = adopted[pid];
    chain = chain_[m.src];
    if (chain.size() <= cur) chain.resize(cur + 1u);
    chain[cur].startup += msg_startup[static_cast<std::size_t>(mi)];
    chain[cur].word += msg_word[static_cast<std::size_t>(mi)];
    chain[cur].other += msg_other[static_cast<std::size_t>(mi)];
  }
  for (ProcId pid = 0; pid < procs(); ++pid) {
    auto& st = stats_[pid];
    auto& pcell = phase_cell(cur, pid);
    const double busy_until = st.clock + send_busy[pid];
    record(pid, TraceEvent::Kind::kSend, st.clock, busy_until);
    st.comm_time += send_busy[pid];
    pcell.comm_time += send_busy[pid];
    if (busiest_msg[pid] >= 0) {
      const auto mi = static_cast<std::size_t>(busiest_msg[pid]);
      auto& cell = chain_cell(pid);
      cell.startup += msg_startup[mi];
      cell.word += msg_word[mi];
    }
    double next = busy_until;
    if (send_span[pid] > send_busy[pid]) {
      // Timeout-and-retransmit overhead beyond the pure transfer time.
      const double span_until = st.clock + send_span[pid];
      record(pid, TraceEvent::Kind::kRetry, next, span_until);
      st.idle_time += span_until - next;
      pcell.idle_time += span_until - next;
      chain_cell(pid).other += span_until - next;
      next = span_until;
    }
    if (arrival_max[pid] > next) {
      record(pid, TraceEvent::Kind::kWait, next, arrival_max[pid]);
      st.idle_time += arrival_max[pid] - next;
      pcell.idle_time += arrival_max[pid] - next;
      // The wait ends at the arrival: pid's clock is now explained by the
      // producing chain, not by what pid did this round.
      if (arrival_msg[pid] >= 0) chain_[pid] = std::move(adopted[pid]);
      next = arrival_max[pid];
    }
    st.clock = next;
    check_deadline(pid);
  }
  // Deliver payloads.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (!deliver[i]) continue;
    const ProcId dst = messages[i].dst;
    if (deliver_dup[i]) inbox_[dst].push_back(messages[i]);
    inbox_[dst].push_back(std::move(messages[i]));
  }
}

Message SimMachine::receive(ProcId pid, int tag) {
  require(pid < procs(), "SimMachine::receive: pid out of range");
  auto& box = inbox_[pid];
  const auto it = std::find_if(box.begin(), box.end(),
                               [tag](const Message& m) { return m.tag == tag; });
  require(it != box.end(),
          "SimMachine::receive: no pending message with requested tag");
  Message out = std::move(*it);
  box.erase(it);
  return out;
}

bool SimMachine::has_message(ProcId pid, int tag) const {
  require(pid < procs(), "SimMachine::has_message: pid out of range");
  const auto& box = inbox_[pid];
  return std::any_of(box.begin(), box.end(),
                     [tag](const Message& m) { return m.tag == tag; });
}

std::size_t SimMachine::pending_messages() const noexcept {
  std::size_t n = 0;
  for (const auto& box : inbox_) n += box.size();
  return n;
}

void SimMachine::assert_clean_run() const {
  for (ProcId pid = 0; pid < procs(); ++pid) {
    if (inbox_[pid].empty()) continue;
    const Message& m = inbox_[pid].front();
    throw InternalError(
        "SimMachine::assert_clean_run: leftover message with tag " +
        std::to_string(m.tag) + " pending at destination processor " +
        std::to_string(pid) + " (from " + std::to_string(m.src) + ", " +
        std::to_string(pending_messages()) + " pending in total)");
  }
}

void SimMachine::note_abft(bool detected, bool corrected) {
  if (detected) ++fault_stats_.abft_detected;
  if (corrected) ++fault_stats_.abft_corrected;
}

void SimMachine::check_alive(ProcId pid) const {
  const auto fail_at = injector_->fail_time(pid);
  if (fail_at && stats_[pid].clock >= *fail_at) {
    throw ProcessorFailure(pid, *fail_at);
  }
}

double SimMachine::synchronize() {
  const double t = time();
  // Barrier laggards adopt the chain of the processor that set the barrier
  // time — their clock is now explained by its critical path.
  const PhaseId cur = current_phase();
  std::vector<PathTerms> crit_chain;
  for (ProcId pid = 0; pid < procs(); ++pid) {
    if (stats_[pid].clock == t) {
      crit_chain = chain_[pid];
      break;
    }
  }
  for (ProcId pid = 0; pid < procs(); ++pid) {
    auto& st = stats_[pid];
    record(pid, TraceEvent::Kind::kWait, st.clock, t);
    st.idle_time += t - st.clock;
    if (t > st.clock) {
      phase_cell(cur, pid).idle_time += t - st.clock;
      chain_[pid] = crit_chain;
    }
    st.clock = t;
  }
  return t;
}

void SimMachine::charge_group_comm(std::span<const ProcId> group, double time_cost) {
  require(time_cost >= 0.0, "charge_group_comm: negative time");
  double start = 0.0;
  for (ProcId pid : group) {
    require(pid < procs(), "charge_group_comm: pid out of range");
    start = std::max(start, stats_[pid].clock);
  }
  // As at a barrier, members that wait for the group's latest processor
  // adopt its chain; the modeled charge itself then lands on everyone.
  const PhaseId cur = current_phase();
  std::vector<PathTerms> crit_chain;
  for (ProcId pid : group) {
    if (stats_[pid].clock == start) {
      crit_chain = chain_[pid];
      break;
    }
  }
  for (ProcId pid : group) {
    auto& st = stats_[pid];
    if (start > st.clock) {
      record(pid, TraceEvent::Kind::kWait, st.clock, start);
      st.idle_time += start - st.clock;
      phase_cell(cur, pid).idle_time += start - st.clock;
      chain_[pid] = crit_chain;
    }
    record(pid, TraceEvent::Kind::kModeledComm, start, start + time_cost);
    st.comm_time += time_cost;
    phase_cell(cur, pid).comm_time += time_cost;
    chain_cell(pid).modeled += time_cost;
    st.clock = start + time_cost;
    check_deadline(pid);
  }
}

void SimMachine::note_alloc(ProcId pid, std::uint64_t words) {
  require(pid < procs(), "note_alloc: pid out of range");
  auto& st = stats_[pid];
  st.words_stored += words;
  st.peak_words_stored = std::max(st.peak_words_stored, st.words_stored);
}

void SimMachine::note_free(ProcId pid, std::uint64_t words) {
  require(pid < procs(), "note_free: pid out of range");
  auto& st = stats_[pid];
  require(st.words_stored >= words, "note_free: freeing more than stored");
  st.words_stored -= words;
}

double SimMachine::clock(ProcId pid) const {
  require(pid < procs(), "SimMachine::clock: pid out of range");
  return stats_[pid].clock;
}

const ProcStats& SimMachine::stats(ProcId pid) const {
  require(pid < procs(), "SimMachine::stats: pid out of range");
  return stats_[pid];
}

double SimMachine::time() const noexcept {
  double t = 0.0;
  for (const auto& st : stats_) t = std::max(t, st.clock);
  return t;
}

RunReport SimMachine::report(std::string algorithm, std::size_t n,
                             double w_useful, bool keep_proc_stats) const {
  RunReport r;
  r.algorithm = std::move(algorithm);
  r.n = n;
  r.p = procs();
  r.params = params_;
  r.t_parallel = time();
  r.w_useful = w_useful;
  for (const auto& st : stats_) {
    r.max_compute_time = std::max(r.max_compute_time, st.compute_time);
    r.max_comm_time = std::max(r.max_comm_time, st.comm_time);
    r.max_idle_time = std::max(r.max_idle_time, st.idle_time);
    r.total_flops += st.flops;
    r.total_messages += st.messages_sent;
    r.total_words += st.words_sent;
    r.max_peak_words = std::max(r.max_peak_words, st.peak_words_stored);
  }
  r.faults = fault_stats_;
  if (keep_proc_stats) r.procs = stats_;
  // Phase table + critical-path decomposition. The first processor whose
  // clock attains T_p carries a complete dependency chain for the run (its
  // per-phase terms sum to exactly T_p).
  ProcId crit = 0;
  for (ProcId pid = 0; pid < procs(); ++pid) {
    if (stats_[pid].clock == r.t_parallel) {
      crit = pid;
      break;
    }
  }
  const auto& crit_chain = chain_[crit];
  for (std::size_t ph = 0; ph < phase_names_.size(); ++ph) {
    PhaseBreakdown b;
    b.name = phase_names_[ph];
    if (ph < phase_stats_.size()) {
      for (const auto& cell : phase_stats_[ph]) {
        b.max_compute_time = std::max(b.max_compute_time, cell.compute_time);
        b.max_comm_time = std::max(b.max_comm_time, cell.comm_time);
        b.max_idle_time = std::max(b.max_idle_time, cell.idle_time);
        b.flops += cell.flops;
        b.messages += cell.messages_sent;
        b.words += cell.words_sent;
      }
    }
    if (ph < crit_chain.size()) b.path = crit_chain[ph];
    r.critical_path.compute += b.path.compute;
    r.critical_path.startup += b.path.startup;
    r.critical_path.word += b.path.word;
    r.critical_path.modeled += b.path.modeled;
    r.critical_path.other += b.path.other;
    // Drop the unattributed row when nothing happened outside a phase.
    if (ph == 0 && b.path.total() == 0.0 && b.max_compute_time == 0.0 &&
        b.max_comm_time == 0.0 && b.max_idle_time == 0.0 && b.flops == 0 &&
        b.messages == 0) {
      continue;
    }
    r.phases.push_back(std::move(b));
  }
  return r;
}

void SimMachine::reset() {
  for (auto& st : stats_) st = ProcStats{};
  for (auto& box : inbox_) box.clear();
  trace_events_.clear();
  fault_stats_ = FaultStats{};
  exchange_round_ = 0;
  phase_names_.assign(1, std::string());
  phase_stack_.clear();
  phase_stats_.clear();
  for (auto& row : chain_) row.clear();
  metrics_.reset();
  traffic_ = TrafficMatrix(procs());
}

}  // namespace hpmm
