// Property-based differential sweep: every registered formulation, plus
// cannon25d across its replication factors, is run over seeded random
// (n, p, c, t_s, t_w) tuples and compared against the serial reference.
//
// The operands are integer-valued, so every partial product and partial sum
// is exactly representable in a double and the result is independent of
// summation order: the parallel product must match the serial one
// *bit for bit*, not just within a norm tolerance. The same sweep checks
// the simulated T_p against the analytic models and pins the exact message
// accounting of the 2.5D formulation.
//
// This suite carries the ctest label "slow" (skip with: ctest -LE slow).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/cannon.hpp"
#include "algorithms/cannon_25d.hpp"
#include "algorithms/parallel_matmul.hpp"
#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

/// Integer entries in [-8, 8): products are bounded by n * 64 < 2^53, so
/// every intermediate is exact and reassociation cannot change the result.
Matrix integer_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = std::floor(rng.uniform(-8.0, 8.0));
    }
  }
  return m;
}

::testing::AssertionResult bit_identical(const Matrix& got,
                                         const Matrix& want) {
  if (got.rows() != want.rows() || got.cols() != want.cols()) {
    return ::testing::AssertionFailure()
           << "shape " << got.rows() << "x" << got.cols() << " vs "
           << want.rows() << "x" << want.cols();
  }
  for (std::size_t r = 0; r < got.rows(); ++r) {
    for (std::size_t c = 0; c < got.cols(); ++c) {
      if (got(r, c) != want(r, c)) {  // exact, not approximate
        return ::testing::AssertionFailure()
               << "entry (" << r << "," << c << "): " << got(r, c)
               << " != " << want(r, c);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct MachineDraw {
  MachineParams mp;
  std::uint64_t seed;
};

/// Seeded machine-parameter draws: integral t_s in [0, 250), t_w in [1, 5).
std::vector<MachineDraw> machine_draws(std::size_t count) {
  Rng meta(0x25D0C0FFEEULL);
  std::vector<MachineDraw> draws;
  for (std::size_t i = 0; i < count; ++i) {
    MachineDraw d;
    d.mp.t_s = std::floor(meta.uniform(0.0, 250.0));
    d.mp.t_w = 1.0 + std::floor(meta.uniform(0.0, 4.0));
    d.seed = meta.next_u64();
    draws.push_back(d);
  }
  return draws;
}

TEST(Differential, SweepAllFormulationsMatchSerialBitForBit) {
  const std::vector<std::size_t> n_choices = {8, 12, 16, 24, 32};
  const std::vector<std::size_t> p_choices = {1,  4,  8,  9,   16,  25,
                                              27, 32, 64, 128, 256, 512};
  const auto algos = all_algorithms();
  std::size_t runs = 0;
  for (const MachineDraw& draw : machine_draws(3)) {
    Rng rng(draw.seed);
    for (std::size_t n : n_choices) {
      const Matrix a = integer_matrix(n, rng);
      const Matrix b = integer_matrix(n, rng);
      const Matrix serial = multiply(a, b);
      for (std::size_t p : p_choices) {
        for (const auto& alg : algos) {
          if (!alg->applicable(n, p)) continue;
          const MatmulResult res = alg->run(a, b, p, draw.mp);
          EXPECT_TRUE(bit_identical(res.c, serial))
              << alg->name() << " n=" << n << " p=" << p
              << " t_s=" << draw.mp.t_s << " t_w=" << draw.mp.t_w;
          ++runs;
        }
      }
    }
  }
  // The sweep must actually exercise a substantial grid; if applicability
  // filters everything out, the test is vacuous and should fail.
  EXPECT_GT(runs, 200u);
}

TEST(Differential, SweepCannon25DReplicationFactorsMatchSerialBitForBit) {
  // (p, c) pairs covering c = 1, 2, 4 against several layer-mesh sizes.
  struct Shape {
    std::size_t n, p, c;
  };
  const std::vector<Shape> shapes = {
      {8, 8, 2},   {16, 8, 2},   {16, 32, 2},  {32, 32, 2},
      {16, 64, 4}, {32, 64, 4},  {32, 256, 4}, {12, 9, 1},
      {16, 16, 1}, {32, 128, 2},
  };
  for (const MachineDraw& draw : machine_draws(3)) {
    Rng rng(draw.seed ^ 0x5EEDULL);
    for (const Shape& s : shapes) {
      const Cannon25DAlgorithm alg(s.c);
      ASSERT_TRUE(alg.applicable(s.n, s.p))
          << "n=" << s.n << " p=" << s.p << " c=" << s.c;
      const Matrix a = integer_matrix(s.n, rng);
      const Matrix b = integer_matrix(s.n, rng);
      const MatmulResult res = alg.run(a, b, s.p, draw.mp);
      EXPECT_TRUE(bit_identical(res.c, multiply(a, b)))
          << "n=" << s.n << " p=" << s.p << " c=" << s.c
          << " t_s=" << draw.mp.t_s << " t_w=" << draw.mp.t_w;
    }
  }
}

TEST(Differential, SimulatedTimeTracksModels) {
  // Every formulation's simulated T_p must stay within a constant factor of
  // its analytic model over the random machine draws; Cannon and cannon25d
  // are simulation-exact and held to a much tighter band.
  const auto& reg = default_registry();
  for (const MachineDraw& draw : machine_draws(4)) {
    Rng rng(draw.seed ^ 0x40DE1ULL);
    const std::size_t n = 16;
    const Matrix a = integer_matrix(n, rng);
    const Matrix b = integer_matrix(n, rng);
    for (const auto& name : reg.names()) {
      const auto& alg = reg.implementation(name);
      const auto model = reg.model(name, draw.mp);
      for (std::size_t p : {4, 16, 64, 256}) {
        const double pd = static_cast<double>(p);
        if (!alg.applicable(n, p) ||
            !model->applicable(static_cast<double>(n), pd)) {
          continue;
        }
        const MatmulResult res = alg.run(a, b, p, draw.mp);
        const double predicted = model->t_parallel(static_cast<double>(n), pd);
        const double ratio = res.report.t_parallel / predicted;
        EXPECT_GT(ratio, 0.1) << name << " p=" << p << " t_s=" << draw.mp.t_s;
        EXPECT_LT(ratio, 10.0) << name << " p=" << p << " t_s=" << draw.mp.t_s;
        if (name == "cannon" || name == "cannon25d") {
          EXPECT_NEAR(ratio, 1.0, 1e-9) << name << " p=" << p;
        }
      }
    }
  }
}

TEST(Differential, Cannon25DMessageAccountingIsExact) {
  // With ABFT off and no faults, the simulator's message/word counters must
  // equal the closed-form phase decomposition:
  //   replicate A + B : 2 q^2 (c-1) blocks    (binomial trees)
  //   alignment       : 2 c q (q-1) blocks    (one row/col per layer skips)
  //   multiply-shift  : 2 (s-1) c q^2 blocks  (s = q/c steps)
  //   reduce C        : q^2 (c-1) blocks
  struct Shape {
    std::size_t n, p, c;
  };
  const std::vector<Shape> shapes = {
      {16, 16, 1}, {16, 32, 2}, {32, 128, 2}, {32, 64, 4}, {32, 256, 4}};
  MachineParams mp;
  mp.t_s = 50.0;
  mp.t_w = 2.0;
  Rng rng(7);
  for (const Shape& s : shapes) {
    const std::size_t q = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(s.p / s.c))));
    const std::size_t steps = q / s.c;
    const std::size_t bw = (s.n / q) * (s.n / q);
    const Matrix a = integer_matrix(s.n, rng);
    const Matrix b = integer_matrix(s.n, rng);
    const MatmulResult res = Cannon25DAlgorithm(s.c).run(a, b, s.p, mp);
    const std::uint64_t blocks = 3 * q * q * (s.c - 1) +
                                 2 * s.c * q * (q - 1) +
                                 2 * (steps - 1) * s.c * q * q;
    EXPECT_EQ(res.report.total_messages, blocks)
        << "n=" << s.n << " p=" << s.p << " c=" << s.c;
    EXPECT_EQ(res.report.total_words, blocks * bw)
        << "n=" << s.n << " p=" << s.p << " c=" << s.c;
    // Memory claim: every processor registers exactly its three blocks,
    // Theta(c n^2 / p) words each.
    EXPECT_EQ(res.report.max_peak_words, 3 * bw);
  }
}

TEST(Differential, ReplicationReducesPerLayerTrafficVsCannon) {
  // The point of 2.5D: the per-layer Cannon traffic (alignment +
  // multiply-shift) drops from ~2 n^2/sqrt(p) to ~2 n^2/sqrt(p c) words per
  // processor. Compare measured counters at the same (n, p); the collective
  // (replicate/reduce) words are subtracted via the closed form verified
  // above.
  MachineParams mp;
  mp.t_s = 150.0;
  mp.t_w = 3.0;
  Rng rng(11);
  struct Shape {
    std::size_t n, p, c;
  };
  for (const Shape& s : {Shape{32, 256, 4}, Shape{64, 256, 4}}) {
    const std::size_t q = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(s.p / s.c))));
    const std::size_t bw = (s.n / q) * (s.n / q);
    const Matrix a = integer_matrix(s.n, rng);
    const Matrix b = integer_matrix(s.n, rng);
    const auto r25 = Cannon25DAlgorithm(s.c).run(a, b, s.p, mp);
    const auto r2d = CannonAlgorithm().run(a, b, s.p, mp);
    const std::uint64_t collective_words = 3 * q * q * (s.c - 1) * bw;
    ASSERT_GE(r25.report.total_words, collective_words);
    const double layer_pp =
        static_cast<double>(r25.report.total_words - collective_words) /
        static_cast<double>(s.p);
    const double cannon_pp = static_cast<double>(r2d.report.total_words) /
                             static_cast<double>(s.p);
    EXPECT_LT(layer_pp, cannon_pp) << "n=" << s.n << " p=" << s.p;
    // And the replicas actually cost memory: c times Cannon's footprint.
    EXPECT_EQ(r25.report.max_peak_words,
              s.c * r2d.report.max_peak_words);
  }
}

TEST(Differential, Cannon25DBitIdenticalAcrossKernelsAndThreads) {
  // ExecPolicy is wall-clock only: simulated report and numerical result
  // must be byte-identical for every kernel/thread setting.
  Rng rng(13);
  const std::size_t n = 16, p = 32, c = 2;
  const Matrix a = integer_matrix(n, rng);
  const Matrix b = integer_matrix(n, rng);
  MachineParams base;
  base.t_s = 25.0;
  base.t_w = 1.5;
  const MatmulResult ref = Cannon25DAlgorithm(c).run(a, b, p, base);
  const ExecPolicy policies[] = {{Kernel::kCacheIkj, 4},
                                 {Kernel::kPacked, 1},
                                 {Kernel::kPacked, 4},
                                 {Kernel::kBlocked, 2}};
  for (const ExecPolicy& pol : policies) {
    MachineParams mp = base;
    mp.exec = pol;
    const MatmulResult got = Cannon25DAlgorithm(c).run(a, b, p, mp);
    EXPECT_TRUE(bit_identical(got.c, ref.c));
    EXPECT_EQ(got.report.t_parallel, ref.report.t_parallel);
    EXPECT_EQ(got.report.total_words, ref.report.total_words);
    EXPECT_EQ(got.report.total_messages, ref.report.total_messages);
    EXPECT_EQ(got.report.max_comm_time, ref.report.max_comm_time);
    EXPECT_EQ(got.report.max_idle_time, ref.report.max_idle_time);
  }
}

}  // namespace
}  // namespace hpmm
