#include "topology/torus.hpp"

#include <gtest/gtest.h>

#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Torus, GeometryAndName) {
  Torus2D t(3, 5);
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.grid_rows(), 3u);
  EXPECT_EQ(t.grid_cols(), 5u);
  EXPECT_EQ(t.name(), "torus(3x5)");
  EXPECT_EQ(t.ports_per_proc(), 4u);
}

TEST(Torus, SquareFactory) {
  const auto t = Torus2D::square(484);
  EXPECT_EQ(t.grid_rows(), 22u);
  EXPECT_THROW(Torus2D::square(485), PreconditionError);
}

TEST(Torus, CoordsRankRoundTrip) {
  Torus2D t(4, 6);
  for (ProcId r = 0; r < t.size(); ++r) {
    const auto [i, j] = t.coords(r);
    EXPECT_EQ(t.rank(i, j), r);
  }
}

TEST(Torus, DirectionalMovesWrapAround) {
  Torus2D t(4, 4);
  const ProcId origin = t.rank(0, 0);
  EXPECT_EQ(t.west(origin), t.rank(0, 3));
  EXPECT_EQ(t.east(origin), t.rank(0, 1));
  EXPECT_EQ(t.north(origin), t.rank(3, 0));
  EXPECT_EQ(t.south(origin), t.rank(1, 0));
}

TEST(Torus, MultiStepMoves) {
  Torus2D t(5, 5);
  const ProcId origin = t.rank(2, 2);
  EXPECT_EQ(t.west(origin, 3), t.rank(2, 4));
  EXPECT_EQ(t.north(origin, 7), t.rank(0, 2));  // 7 mod 5 = 2 up
}

TEST(Torus, MovesAreInverses) {
  Torus2D t(4, 6);
  for (ProcId r = 0; r < t.size(); ++r) {
    EXPECT_EQ(t.east(t.west(r)), r);
    EXPECT_EQ(t.south(t.north(r)), r);
  }
}

TEST(Torus, HopsWrapAroundDistance) {
  Torus2D t(8, 8);
  EXPECT_EQ(t.hops(t.rank(0, 0), t.rank(0, 7)), 1u);  // wraps
  EXPECT_EQ(t.hops(t.rank(0, 0), t.rank(4, 4)), 8u);
  EXPECT_EQ(t.hops(t.rank(1, 1), t.rank(1, 1)), 0u);
}

TEST(Torus, NeighborsAreAtDistanceOne) {
  Torus2D t(4, 4);
  for (ProcId r = 0; r < t.size(); ++r) {
    const auto ns = t.neighbors(r);
    EXPECT_EQ(ns.size(), 4u);
    for (ProcId nb : ns) EXPECT_EQ(t.hops(r, nb), 1u);
  }
}

TEST(Torus, DegenerateRingNeighbors) {
  Torus2D ring(1, 4);
  const auto ns = ring.neighbors(0);
  // Left/right wrap plus north/south collapsing onto self (removed).
  EXPECT_EQ(ns.size(), 2u);
}

TEST(Torus, GrayRankGivesDilationOneEmbedding) {
  Torus2D t(8, 8);
  Hypercube h(6);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const ProcId node = t.gray_rank(r, c);
      // Torus neighbours map to hypercube neighbours.
      EXPECT_EQ(h.hops(node, t.gray_rank((r + 1) % 8, c)), 1u);
      EXPECT_EQ(h.hops(node, t.gray_rank(r, (c + 1) % 8)), 1u);
    }
  }
}

TEST(Torus, GrayRankIsBijective) {
  Torus2D t(4, 8);
  std::vector<bool> seen(32, false);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const ProcId node = t.gray_rank(r, c);
      ASSERT_LT(node, 32u);
      EXPECT_FALSE(seen[node]);
      seen[node] = true;
    }
  }
}

TEST(Torus, GrayRankRequiresPow2) {
  Torus2D t(3, 3);
  EXPECT_THROW(t.gray_rank(0, 0), PreconditionError);
}

}  // namespace
}  // namespace hpmm
