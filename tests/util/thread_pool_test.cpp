#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadDegeneratesToSerial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t i) { order.push_back(i); });
  // With no workers the caller runs the batch in index order.
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for(17, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.parallel_for(0, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i % 7 == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> hits{0};
  pool.parallel_for(10, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, WallProfileAccumulatesAndResets) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.wall_profile().batches, 0u);
  pool.parallel_for(10, [](std::size_t) {});
  pool.parallel_for(5, [](std::size_t) {});
  const auto& w = pool.wall_profile();
  EXPECT_EQ(w.batches, 2u);
  EXPECT_EQ(w.items, 15u);
  EXPECT_GE(w.busy_seconds, 0.0);
  pool.parallel_for(0, [](std::size_t) {});  // no-op batch is not counted
  EXPECT_EQ(pool.wall_profile().batches, 2u);
  pool.reset_wall_profile();
  EXPECT_EQ(pool.wall_profile().batches, 0u);
  EXPECT_EQ(pool.wall_profile().items, 0u);
  EXPECT_DOUBLE_EQ(pool.wall_profile().busy_seconds, 0.0);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), PreconditionError);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace hpmm
