#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <queue>
#include <utility>

#include "core/registry.hpp"
#include "core/selector.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hpmm {
namespace {

/// Outcome of simulating one service attempt (never a rejection).
struct Attempt {
  ServeOutcome outcome = ServeOutcome::kOk;
  double service_time = 0.0;  ///< how long the attempt held its slot
  std::string detail;
};

/// Mutable serving state of one admitted request.
struct Pending {
  ServicePlan plan;
  double deadline = 0.0;
  unsigned attempts = 0;  ///< attempts started so far
  Attempt last;           ///< result of the attempt now in (or just out of) a slot
};

ServicePlan resolve_plan(const TenantRequest& req,
                         const MachineParams& machine) {
  ServicePlan plan;
  const auto nd = static_cast<double>(req.n);
  const auto pd = static_cast<double>(req.p);
  if (!req.algo.empty()) {
    // The caller has already checked the registry contains req.algo.
    if (!default_registry().implementation(req.algo).applicable(req.n,
                                                                req.p)) {
      return plan;
    }
    plan.applicable = true;
    plan.algorithm = req.algo;
    plan.t_model = default_registry().model(req.algo, machine)->t_parallel(nd, pd);
    return plan;
  }
  const Selection sel = select_algorithm(req.n, req.p, machine,
                                         /*require_simulatable=*/true);
  if (sel.best.empty()) return plan;
  plan.applicable = true;
  plan.algorithm = sel.best;
  plan.t_model = sel.t_parallel;
  return plan;
}

double deadline_for(const TenantRequest& req, const ServicePlan& plan,
                    const ServeOptions& options) {
  const double factor = req.deadline_factor > 0.0 ? req.deadline_factor
                                                  : options.deadline_factor;
  return factor > 0.0 ? factor * plan.t_model : 0.0;
}

/// Run one attempt end to end on its own simulated machine. Pure in
/// (request, plan, deadline, attempt): safe to speculate on host threads.
Attempt simulate_attempt(const TenantRequest& req,
                         const MachineParams& machine, const ServicePlan& plan,
                         double deadline, unsigned attempt) {
  MachineParams mp = machine;
  mp.faults = fault_plan_for_attempt(req.faults, attempt);
  mp.deadline = deadline;
  // Host threads are the server's to spend (across requests, not inside
  // one); simulated results are identical either way.
  mp.exec.threads = 1;
  const Matrix a = request_operand(req.n, req.id, 0xA);
  const Matrix b = request_operand(req.n, req.id, 0xB);
  Attempt out;
  try {
    const MatmulResult r =
        default_registry().implementation(plan.algorithm).run(a, b, req.p, mp);
    out.service_time = r.report.t_parallel;
    if (r.report.faults.abft_detected > r.report.faults.abft_corrected) {
      out.outcome = ServeOutcome::kFailed;
      out.detail = "abft detected uncorrected corruption (" +
                   std::to_string(r.report.faults.abft_detected -
                                  r.report.faults.abft_corrected) +
                   " blocks)";
    }
  } catch (const DeadlineExceeded& e) {
    out.outcome = ServeOutcome::kDeadlineExceeded;
    out.service_time = deadline;
    out.detail = e.what();
  } catch (const ProcessorFailure& e) {
    out.outcome = ServeOutcome::kFailed;
    out.service_time = e.at_time();
    out.detail = e.what();
  }
  return out;
}

/// Deterministic backoff jitter in [0, 1): a private stream per
/// (server seed, request, attempt), independent of event order.
double jitter_unit(std::uint64_t seed, std::uint64_t id, unsigned attempt) {
  Rng rng(seed ^ (id * 0x9E3779B97F4A7C15ULL) ^
          (static_cast<std::uint64_t>(attempt) << 48));
  return rng.next_double();
}

/// Event kinds in processing-priority order at equal time: completions
/// free slots and queue units before retries re-enter, and both before new
/// arrivals face admission.
enum class EventKind : std::uint8_t { kCompletion = 0, kRetry = 1, kArrival = 2 };

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kArrival;
  std::uint64_t seq = 0;  ///< push order, the deterministic tie-breaker
  std::size_t index = 0;  ///< request index
};

struct LaterEvent {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

void write_options_json(std::ostream& os, const ServeOptions& o) {
  // `threads` is deliberately omitted: it is host wall-clock policy, and the
  // report must be byte-identical for every thread count.
  os << "{\"slots\":" << o.slots
     << ",\"queue_capacity\":" << o.queue_capacity
     << ",\"tenant_quota\":" << o.tenant_quota
     << ",\"breaker_threshold\":" << o.breaker_threshold
     << ",\"breaker_cooldown\":" << json_number(o.breaker_cooldown)
     << ",\"max_retries\":" << o.max_retries
     << ",\"backoff_base\":" << json_number(o.backoff_base)
     << ",\"backoff_factor\":" << json_number(o.backoff_factor)
     << ",\"backoff_jitter\":" << json_number(o.backoff_jitter)
     << ",\"deadline_factor\":" << json_number(o.deadline_factor)
     << ",\"seed\":" << o.seed
     << ",\"plan_cache_capacity\":" << o.plan_cache_capacity
     << ",\"window\":" << json_number(o.window) << "}";
}

void write_record_json(std::ostream& os, const RequestRecord& r) {
  os << "{\"id\":" << r.request.id << ",\"tenant\":"
     << json_quote(r.request.tenant)
     << ",\"arrival\":" << json_number(r.request.arrival)
     << ",\"algo\":" << json_quote(r.request.algo) << ",\"n\":" << r.request.n
     << ",\"p\":" << r.request.p
     << ",\"machine\":" << json_quote(r.request.machine)
     << ",\"outcome\":" << json_quote(to_string(r.outcome))
     << ",\"attempts\":" << r.attempts << ",\"slot\":" << r.slot
     << ",\"cache_hit\":" << (r.cache_hit ? "true" : "false")
     << ",\"algorithm\":" << json_quote(r.algorithm)
     << ",\"deadline\":" << json_number(r.deadline)
     << ",\"start\":" << json_number(r.start)
     << ",\"finish\":" << json_number(r.finish)
     << ",\"latency\":" << json_number(r.latency)
     << ",\"service_time\":" << json_number(r.service_time)
     << ",\"detail\":" << json_quote(r.detail) << "}";
}

/// The journal event recording an admission-time rejection.
JournalKind reject_kind(ServeOutcome outcome) noexcept {
  switch (outcome) {
    case ServeOutcome::kRejectedInvalid: return JournalKind::kRejectInvalid;
    case ServeOutcome::kRejectedInfeasible:
      return JournalKind::kRejectInfeasible;
    case ServeOutcome::kRejectedBreaker: return JournalKind::kRejectBreaker;
    case ServeOutcome::kRejectedQueueFull:
      return JournalKind::kRejectQueueFull;
    default: return JournalKind::kRejectQuota;
  }
}

}  // namespace

Server::Server(ServeOptions options) : options_(options) {
  require(options.slots >= 1, "serve: slots must be >= 1");
  require(options.threads >= 1, "serve: threads must be >= 1");
  require(options.backoff_base >= 0.0, "serve: backoff_base must be >= 0");
  require(options.backoff_factor >= 1.0, "serve: backoff_factor must be >= 1");
  require(options.backoff_jitter >= 0.0, "serve: backoff_jitter must be >= 0");
  require(options.deadline_factor >= 0.0,
          "serve: deadline_factor must be >= 0");
  require(options.window > 0.0, "serve: window must be > 0");
  for (const auto& [tenant, target] : options.slos) {
    require(!tenant.empty(), "serve: slo tenant must not be empty");
    // evaluate_slo validates the target's ranges; fail now, not at report
    // time.
    (void)evaluate_slo(tenant, target, 0, 0, 0.0, nullptr, nullptr);
  }
  // Queue, quota and breaker limits are validated by the components that
  // own them (AdmissionController, CircuitBreaker). Any plan-cache capacity
  // is valid: 0 disables caching (PlanCache passes every lookup through).
  (void)AdmissionController({options.queue_capacity, options.tenant_quota,
                             options.breaker_threshold,
                             options.breaker_cooldown});
}

ServeReport Server::run(std::vector<TenantRequest> requests) const {
  const ServeOptions& opt = options_;

  ServeReport report;
  report.options = opt;

  std::vector<RequestRecord> records(requests.size());
  std::vector<MachineParams> machine(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = i;
    records[i].request = requests[i];
    machine[i] = serve_machine_params(requests[i].machine);
  }

  std::vector<Pending> state(requests.size());
  AdmissionController admission({opt.queue_capacity, opt.tenant_quota,
                                 opt.breaker_threshold, opt.breaker_cooldown});
  PlanCache cache(opt.plan_cache_capacity);

  // Speculative host-parallel simulation of every request's first attempt.
  // Each attempt is schedule-independent, so the only cost of speculation
  // is wall-clock wasted on requests admission later rejects; the serial
  // event loop below consumes these results and stays bit-identical to the
  // threads == 1 run.
  std::vector<std::optional<Attempt>> first_attempt(requests.size());
  if (opt.threads > 1 && !requests.empty()) {
    ThreadPool pool(opt.threads);
    pool.parallel_for(requests.size(), [&](std::size_t i) {
      const TenantRequest& req = requests[i];
      if (req.n == 0 || req.p == 0) return;
      if (!req.algo.empty() && !default_registry().contains(req.algo)) return;
      const ServicePlan plan = resolve_plan(req, machine[i]);
      if (!plan.applicable) return;
      first_attempt[i] = simulate_attempt(req, machine[i], plan,
                                          deadline_for(req, plan, opt), 0);
    });
  }

  auto run_attempt = [&](std::size_t i, unsigned attempt) -> Attempt {
    if (attempt == 0 && first_attempt[i]) return *first_attempt[i];
    return simulate_attempt(requests[i], machine[i], state[i].plan,
                            state[i].deadline, attempt);
  };

  auto latency_hist = [&](const std::string& tenant) -> Histogram& {
    return report.metrics.histogram("serve.latency." + tenant,
                                    Histogram::pow2_bounds(44));
  };

  // Windowed per-tenant observability (DESIGN.md §13). Everything below —
  // series observations, journal appends, breaker-transition detection —
  // happens only in the serial event loop, so the journal, the series and
  // the report stay byte-identical for every host thread count.
  auto series = [&](const std::string& tenant, const char* what)
      -> TimeSeries& {
    return report.metrics.series("serve.series." + tenant + "." + what,
                                 opt.window);
  };
  auto latency_series = [&](const std::string& tenant) -> TimeSeries& {
    return report.metrics.series("serve.series." + tenant + ".latency",
                                 opt.window, Histogram::pow2_bounds(44));
  };

  EventJournal& journal = report.journal;
  auto jot = [&](double now, JournalKind kind, std::size_t i) {
    JournalEvent e;
    e.time = now;
    e.kind = kind;
    e.request = static_cast<std::int64_t>(i);
    e.tenant = requests[i].tenant;
    return e;
  };

  // Breaker transitions are journaled by observing each tenant's breaker
  // against the last state we reported for it: after every final outcome
  // (open / close happen there) and at every arrival (the open -> half-open
  // cooldown expiry is lazy — it becomes visible when the next arrival
  // observes the breaker).
  std::map<std::string, CircuitBreaker::State> breaker_seen;
  auto journal_breaker = [&](const std::string& tenant, double now) {
    const CircuitBreaker* b = admission.breaker(tenant);
    if (b == nullptr) return;
    const CircuitBreaker::State st = b->state(now);
    const auto it = breaker_seen.emplace(tenant, CircuitBreaker::State::kClosed)
                        .first;
    if (st == it->second) return;
    it->second = st;
    JournalEvent e;
    e.time = now;
    e.tenant = tenant;
    switch (st) {
      case CircuitBreaker::State::kOpen:
        e.kind = JournalKind::kBreakerOpen;
        e.has_value = true;
        e.value = opt.breaker_cooldown;
        e.cause = "consecutive_failures";
        e.detail = std::to_string(b->consecutive_failures()) +
                   " consecutive final failures (threshold " +
                   std::to_string(opt.breaker_threshold) + ")";
        break;
      case CircuitBreaker::State::kHalfOpen:
        e.kind = JournalKind::kBreakerHalfOpen;
        e.cause = "cooldown_elapsed";
        break;
      case CircuitBreaker::State::kClosed:
        e.kind = JournalKind::kBreakerClose;
        e.cause = "final_success";
        break;
    }
    journal.append(std::move(e));
  };

  auto finalize = [&](std::size_t i, double now, ServeOutcome outcome,
                      const std::string& detail) {
    const TenantRequest& req = requests[i];
    RequestRecord& rec = records[i];
    TenantStats& ts = report.tenants[req.tenant];
    rec.outcome = outcome;
    rec.finish = now;
    rec.detail = detail;
    // Aggregate counters advance here, inside the serial loop, so streamed
    // metrics snapshots (options.metrics_every) see them grow monotonically;
    // final values match the per-tenant tallies exactly.
    switch (outcome) {
      case ServeOutcome::kOk:
        ++ts.ok;
        report.metrics.counter("serve.ok").add();
        break;
      case ServeOutcome::kDeadlineExceeded:
        ++ts.deadline_exceeded;
        report.metrics.counter("serve.deadline_exceeded").add();
        break;
      case ServeOutcome::kFailed:
        ++ts.failed;
        report.metrics.counter("serve.failed").add();
        break;
      case ServeOutcome::kRejectedInvalid: ++ts.rejected_invalid; break;
      case ServeOutcome::kRejectedInfeasible: ++ts.rejected_infeasible; break;
      case ServeOutcome::kRejectedBreaker: ++ts.rejected_breaker; break;
      case ServeOutcome::kRejectedQueueFull: ++ts.rejected_queue_full; break;
      case ServeOutcome::kRejectedQuota: ++ts.rejected_quota; break;
    }
    if (is_rejection(outcome)) report.metrics.counter("serve.rejected").add();
    series(req.tenant, "finals").observe(now, 1.0);
    if (outcome != ServeOutcome::kOk) {
      series(req.tenant, "errors").observe(now, 1.0);
    }
    if (is_rejection(outcome)) {
      JournalEvent e = jot(now, reject_kind(outcome), i);
      e.cause = to_string(outcome);
      e.detail = detail;
      journal.append(std::move(e));
      return;
    }
    rec.latency = now - req.arrival;
    admission.on_final(req.tenant, now, outcome == ServeOutcome::kOk);
    series(req.tenant, "in_flight")
        .observe(now,
                 static_cast<double>(admission.tenant_in_flight(req.tenant)));
    if (outcome == ServeOutcome::kOk) {
      ts.ok_latency_sum += rec.latency;
      latency_hist(req.tenant).observe(rec.latency);
      series(req.tenant, "ok").observe(now, 1.0);
      latency_series(req.tenant).observe(now, rec.latency);
    }
    if (outcome == ServeOutcome::kDeadlineExceeded) {
      JournalEvent e = jot(now, JournalKind::kDeadlineAbort, i);
      e.slot = rec.slot;
      e.attempt = static_cast<std::int64_t>(rec.attempts);
      e.has_value = true;
      e.value = rec.deadline;
      e.cause = "budget_exhausted";
      e.detail = detail;
      journal.append(std::move(e));
    }
    JournalEvent e = jot(now, JournalKind::kComplete, i);
    e.slot = rec.slot;
    e.attempt = static_cast<std::int64_t>(rec.attempts);
    e.has_value = true;
    e.value = rec.latency;
    e.cause = to_string(outcome);
    e.detail = detail;
    journal.append(std::move(e));
    journal_breaker(req.tenant, now);
  };

  // Ready-to-serve queues, one per tenant, drained round-robin in tenant
  // name order so no tenant can starve another (the fair-scheduling half of
  // the quota story).
  std::map<std::string, std::deque<std::size_t>> ready;
  std::string last_served;
  auto pop_ready = [&]() -> std::optional<std::size_t> {
    auto take = [&](auto it) {
      last_served = it->first;
      const std::size_t i = it->second.front();
      it->second.pop_front();
      return i;
    };
    for (auto it = ready.upper_bound(last_served); it != ready.end(); ++it) {
      if (!it->second.empty()) return take(it);
    }
    for (auto it = ready.begin();
         it != ready.end() && it->first <= last_served; ++it) {
      if (!it->second.empty()) return take(it);
    }
    return std::nullopt;
  };

  std::priority_queue<Event, std::vector<Event>, LaterEvent> events;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    events.push({requests[i].arrival, EventKind::kArrival, seq++, i});
  }

  // Executor slots, lowest free index first: slot assignment is a pure
  // function of the event order, so the journal's and timeline's slot lanes
  // are as deterministic as the schedule itself.
  std::vector<char> slot_busy(opt.slots, 0);
  std::size_t free_slots = opt.slots;
  auto dispatch = [&](double now) {
    while (free_slots > 0) {
      const auto picked = pop_ready();
      if (!picked) break;
      const std::size_t i = *picked;
      std::size_t slot = 0;
      while (slot_busy[slot] != 0) ++slot;
      slot_busy[slot] = 1;
      --free_slots;
      Pending& st = state[i];
      if (st.attempts == 0) records[i].start = now;
      records[i].slot = static_cast<std::int64_t>(slot);
      series(requests[i].tenant, "queue_depth")
          .observe(now,
                   static_cast<double>(ready[requests[i].tenant].size()));
      JournalEvent e = jot(now, JournalKind::kDispatch, i);
      e.slot = static_cast<std::int64_t>(slot);
      e.attempt = static_cast<std::int64_t>(st.attempts + 1);
      e.cause = st.plan.algorithm;
      journal.append(std::move(e));
      st.last = run_attempt(i, st.attempts);
      ++st.attempts;
      events.push({now + st.last.service_time, EventKind::kCompletion, seq++, i});
    }
  };

  // Streamed metrics snapshots: just before processing the first event past
  // a k * metrics_every boundary, capture the registry stamped at that
  // boundary (at most one snapshot per crossing — idle boundaries collapse
  // into the next active one). The loop is serial, so snapshots are
  // byte-identical for every host thread count.
  const double every = opt.metrics_every;
  double next_snap = every;
  double makespan = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const double now = ev.time;
    if (every > 0.0 && now > next_snap) {
      report.metric_snapshots.push_back({next_snap, report.metrics});
      next_snap = (std::floor(now / every) + 1.0) * every;
    }
    makespan = std::max(makespan, now);
    const std::size_t i = ev.index;
    const TenantRequest& req = requests[i];
    switch (ev.kind) {
      case EventKind::kArrival: {
        TenantStats& ts = report.tenants[req.tenant];
        ++ts.submitted;
        report.metrics.counter("serve.submitted").add();
        series(req.tenant, "arrivals").observe(now, 1.0);
        journal.append(jot(now, JournalKind::kArrival, i));
        if (req.n == 0 || req.p == 0) {
          finalize(i, now, ServeOutcome::kRejectedInvalid,
                   "n and p must be positive");
          break;
        }
        if (!req.algo.empty() && !default_registry().contains(req.algo)) {
          finalize(i, now, ServeOutcome::kRejectedInvalid,
                   "unknown algorithm '" + req.algo + "'");
          break;
        }
        const std::string key = plan_cache_key(req, machine[i]);
        ServicePlan plan;
        if (const ServicePlan* hit = cache.lookup(key)) {
          plan = *hit;
          records[i].cache_hit = true;
          ++ts.cache_hits;
          report.metrics.counter("serve.cache.hits").add();
        } else {
          plan = resolve_plan(req, machine[i]);
          cache.insert(key, plan);
          report.metrics.counter("serve.cache.misses").add();
        }
        {
          JournalEvent e = jot(now,
                               records[i].cache_hit
                                   ? JournalKind::kPlanCacheHit
                                   : JournalKind::kPlanCacheMiss,
                               i);
          e.cause = plan.applicable ? plan.algorithm : "infeasible";
          journal.append(std::move(e));
        }
        if (!plan.applicable) {
          finalize(i, now, ServeOutcome::kRejectedInfeasible,
                   "no formulation applicable at n=" + std::to_string(req.n) +
                       ", p=" + std::to_string(req.p));
          break;
        }
        // Observe the breaker before the admission decision so an open ->
        // half-open cooldown expiry is journaled ahead of the probe admit.
        journal_breaker(req.tenant, now);
        const ServeOutcome admitted = admission.try_admit(req.tenant, now);
        if (admitted != ServeOutcome::kOk) {
          finalize(i, now, admitted, "admission rejected the request");
          break;
        }
        Pending& st = state[i];
        st.plan = std::move(plan);
        st.deadline = deadline_for(req, st.plan, opt);
        records[i].algorithm = st.plan.algorithm;
        records[i].deadline = st.deadline;
        {
          JournalEvent e = jot(now, JournalKind::kAdmit, i);
          e.has_value = true;
          e.value = st.deadline;
          e.cause = st.plan.algorithm;
          journal.append(std::move(e));
        }
        series(req.tenant, "in_flight")
            .observe(now, static_cast<double>(
                              admission.tenant_in_flight(req.tenant)));
        ready[req.tenant].push_back(i);
        series(req.tenant, "queue_depth")
            .observe(now, static_cast<double>(ready[req.tenant].size()));
        dispatch(now);
        break;
      }
      case EventKind::kRetry: {
        ready[req.tenant].push_back(i);
        series(req.tenant, "queue_depth")
            .observe(now, static_cast<double>(ready[req.tenant].size()));
        dispatch(now);
        break;
      }
      case EventKind::kCompletion: {
        Pending& st = state[i];
        RequestRecord& rec = records[i];
        slot_busy[static_cast<std::size_t>(rec.slot)] = 0;
        ++free_slots;
        rec.attempts = st.attempts;
        rec.service_time = st.last.service_time;
        if (st.last.outcome == ServeOutcome::kFailed &&
            st.attempts <= opt.max_retries) {
          TenantStats& ts = report.tenants[req.tenant];
          ++ts.retries;
          report.metrics.counter("serve.retries").add();
          series(req.tenant, "retries").observe(now, 1.0);
          const double backoff =
              opt.backoff_base *
              std::pow(opt.backoff_factor,
                       static_cast<double>(st.attempts - 1)) *
              (1.0 + opt.backoff_jitter *
                         jitter_unit(opt.seed, req.id, st.attempts));
          JournalEvent e = jot(now, JournalKind::kRetry, i);
          e.slot = rec.slot;
          e.attempt = static_cast<std::int64_t>(st.attempts);
          e.has_value = true;
          e.value = backoff;
          e.cause = "attempt_failed";
          e.detail = st.last.detail;
          journal.append(std::move(e));
          events.push({now + backoff, EventKind::kRetry, seq++, i});
        } else {
          finalize(i, now, st.last.outcome, st.last.detail);
        }
        dispatch(now);
        break;
      }
    }
  }

  report.makespan = makespan;
  report.cache_hits = cache.hits();
  report.cache_misses = cache.misses();
  // The aggregate counters accumulated inside the loop; here we only make
  // sure the standard families exist (at zero) even when nothing fired, so
  // the report's metric set does not depend on the outcome mix.
  report.metrics.counter("serve.cache.hits");
  report.metrics.counter("serve.cache.misses");
  if (!report.tenants.empty()) {
    report.metrics.counter("serve.ok");
    report.metrics.counter("serve.failed");
    report.metrics.counter("serve.deadline_exceeded");
    report.metrics.counter("serve.rejected");
  }
  for (auto& [tenant, ts] : report.tenants) {
    if (const CircuitBreaker* breaker = admission.breaker(tenant)) {
      ts.breaker_trips = breaker->trips();
    }
  }
  // Plan-cache self-telemetry (docs/observability.md): end-of-run occupancy
  // and hit rate, deterministic for every thread count.
  report.metrics.gauge("serve.plan_cache.size")
      .set(static_cast<double>(cache.size()));
  report.metrics.gauge("serve.plan_cache.capacity")
      .set(static_cast<double>(cache.capacity()));
  report.metrics.gauge("serve.plan_cache.hit_rate").set(cache.hit_rate());
  for (const auto& [tenant, ts] : report.tenants) {
    const SloTarget target = slo_target_for(opt.slos, tenant);
    if (!target.any()) continue;
    report.slo.push_back(evaluate_slo(
        tenant, target, ts.submitted, ts.submitted - ts.ok,
        report.latency_quantile(tenant, 0.99),
        report.metrics.find_series("serve.series." + tenant + ".finals"),
        report.metrics.find_series("serve.series." + tenant + ".errors")));
  }
  // Final streamed snapshot: the complete registry (including the zero
  // families and plan-cache gauges above) stamped at the makespan.
  if (every > 0.0) report.metric_snapshots.push_back({makespan, report.metrics});
  if (opt.keep_request_log) report.requests = std::move(records);
  return report;
}

bool ServeReport::slo_breached() const noexcept {
  for (const auto& v : slo) {
    if (v.breached()) return true;
  }
  return false;
}

double ServeReport::latency_quantile(const std::string& tenant,
                                     double q) const {
  const Histogram* h = metrics.find_histogram("serve.latency." + tenant);
  return h != nullptr ? h->quantile(q) : 0.0;
}

double ServeReport::cache_hit_rate() const noexcept {
  const std::uint64_t lookups = cache_hits + cache_misses;
  return lookups > 0
             ? static_cast<double>(cache_hits) / static_cast<double>(lookups)
             : 0.0;
}

Table ServeReport::tenant_table() const {
  Table table({"tenant", "req", "ok", "dlx", "fail", "rej", "retry", "trips",
               "p50", "p95", "p99"});
  for (const auto& [tenant, ts] : tenants) {
    table.begin_row()
        .add(tenant)
        .add_int(static_cast<long long>(ts.submitted))
        .add_int(static_cast<long long>(ts.ok))
        .add_int(static_cast<long long>(ts.deadline_exceeded))
        .add_int(static_cast<long long>(ts.failed))
        .add_int(static_cast<long long>(ts.rejected()))
        .add_int(static_cast<long long>(ts.retries))
        .add_int(static_cast<long long>(ts.breaker_trips))
        .add_num(latency_quantile(tenant, 0.50))
        .add_num(latency_quantile(tenant, 0.95))
        .add_num(latency_quantile(tenant, 0.99));
  }
  return table;
}

std::string ServeReport::summary() const {
  TenantStats total;
  for (const auto& [tenant, ts] : tenants) {
    total.submitted += ts.submitted;
    total.ok += ts.ok;
    total.deadline_exceeded += ts.deadline_exceeded;
    total.failed += ts.failed;
    total.rejected_invalid += ts.rejected();
    total.retries += ts.retries;
    total.breaker_trips += ts.breaker_trips;
  }
  return "serve: " + std::to_string(total.submitted) + " requests, " +
         std::to_string(tenants.size()) + " tenants, makespan " +
         format_number(makespan, 4) + " | ok=" + std::to_string(total.ok) +
         " dlx=" + std::to_string(total.deadline_exceeded) +
         " fail=" + std::to_string(total.failed) +
         " rej=" + std::to_string(total.rejected_invalid) +
         " retries=" + std::to_string(total.retries) +
         " trips=" + std::to_string(total.breaker_trips) + " | cache " +
         std::to_string(cache_hits) + "/" +
         std::to_string(cache_hits + cache_misses) + " (" +
         format_number(cache_hit_rate() * 100.0, 3) + "%)";
}

void ServeReport::write_json(std::ostream& os) const {
  os << "{\"options\":";
  write_options_json(os, options);
  os << ",\"makespan\":" << json_number(makespan) << ",\"cache\":{\"hits\":"
     << cache_hits << ",\"misses\":" << cache_misses
     << ",\"hit_rate\":" << json_number(cache_hit_rate()) << "},\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, ts] : tenants) {
    if (!first) os << ",";
    first = false;
    const std::uint64_t completed = ts.ok;
    os << json_quote(tenant) << ":{\"submitted\":" << ts.submitted
       << ",\"ok\":" << ts.ok
       << ",\"deadline_exceeded\":" << ts.deadline_exceeded
       << ",\"failed\":" << ts.failed
       << ",\"rejected_invalid\":" << ts.rejected_invalid
       << ",\"rejected_infeasible\":" << ts.rejected_infeasible
       << ",\"rejected_breaker\":" << ts.rejected_breaker
       << ",\"rejected_queue_full\":" << ts.rejected_queue_full
       << ",\"rejected_quota\":" << ts.rejected_quota
       << ",\"retries\":" << ts.retries
       << ",\"breaker_trips\":" << ts.breaker_trips
       << ",\"cache_hits\":" << ts.cache_hits << ",\"mean_latency\":"
       << json_number(completed > 0
                          ? ts.ok_latency_sum / static_cast<double>(completed)
                          : 0.0)
       << ",\"p50\":" << json_number(latency_quantile(tenant, 0.50))
       << ",\"p95\":" << json_number(latency_quantile(tenant, 0.95))
       << ",\"p99\":" << json_number(latency_quantile(tenant, 0.99)) << "}";
  }
  os << "}";
  if (!slo.empty()) {
    os << ",\"slo\":[";
    for (std::size_t i = 0; i < slo.size(); ++i) {
      if (i) os << ",";
      slo[i].write_json(os);
    }
    os << "]";
  }
  os << ",\"journal_events\":" << journal.size() << ",\"requests\":[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i) os << ",";
    write_record_json(os, requests[i]);
  }
  os << "],\"metrics\":";
  metrics.write_json(os);
  os << "}";
}

}  // namespace hpmm
