#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "sim/fault.hpp"
#include "util/metrics.hpp"

namespace hpmm {

/// Per-processor accounting accumulated by the simulator.
struct ProcStats {
  double clock = 0.0;         ///< local virtual time
  double compute_time = 0.0;  ///< time spent in charged computation
  double comm_time = 0.0;     ///< time spent busy sending/receiving
  double idle_time = 0.0;     ///< time spent waiting for messages/barriers
  std::uint64_t flops = 0;    ///< charged multiply-add operations
  std::uint64_t messages_sent = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t retransmissions = 0;    ///< extra sends forced by drops
  std::uint64_t peak_words_stored = 0;  ///< high-water mark of registered storage
  std::uint64_t words_stored = 0;       ///< currently registered storage
};

/// Additive decomposition of critical-path time into the cost model's terms
/// (DESIGN.md §9): charged computation, message startup (t_s plus hop
/// latency), per-word transfer (t_w, including any contention
/// serialisation), modeled-collective charges, and everything else (retry
/// timeouts, in-flight delays, straggler inflation). On an ideal machine
/// `other` is zero and startup/word reconcile exactly with the analytical
/// models' t_s/t_w terms.
struct PathTerms {
  double compute = 0.0;
  double startup = 0.0;
  double word = 0.0;
  double modeled = 0.0;
  double other = 0.0;

  double total() const noexcept {
    return compute + startup + word + modeled + other;
  }
};

/// Per-(phase, processor) accounting cell kept by the simulator; the same
/// quantities as ProcStats' time/traffic counters, split by the phase that
/// was open when they accrued.
struct PhaseStats {
  double compute_time = 0.0;
  double comm_time = 0.0;
  double idle_time = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t words_sent = 0;
};

/// One row of RunReport::phases: a phase's busy-time maxima and traffic
/// totals over processors, plus the slice of the run's critical path it
/// accounts for (the per-phase terms sum to T_p across all rows).
struct PhaseBreakdown {
  std::string name;  ///< "" for activity outside any PhaseScope
  double max_compute_time = 0.0;  ///< per-processor maxima within the phase
  double max_comm_time = 0.0;
  double max_idle_time = 0.0;
  std::uint64_t flops = 0;  ///< totals over all processors
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  PathTerms path;  ///< critical-path slice attributed to this phase
};

/// Engine self-telemetry snapshot taken by SimMachine::report(): how the
/// simulator itself (not the simulated machine) behaved. Host-side
/// diagnostics like engine_footprint_bytes — surfaced by `hpmm profile` and
/// as `engine.*` gauges in RunReport::metrics, deliberately NOT serialized
/// by write_json so reports stay byte-comparable across engine versions.
/// The wall-clock fields are nondeterministic by nature; everything else is
/// a pure function of the simulated run.
struct EngineTelemetry {
  std::uint64_t inbox_slots = 0;       ///< arena slots ever allocated
  std::uint64_t inbox_free = 0;        ///< free-list length at report time
  std::uint64_t inbox_pending = 0;     ///< delivered-but-unreceived messages
  std::uint64_t inbox_high_water = 0;  ///< max pending over the run
  std::uint64_t arena_bytes = 0;       ///< approx_footprint_bytes()
  std::uint64_t events = 0;  ///< charged events (computes+messages+modeled)
  double events_per_vtime = 0.0;    ///< events / T_p (virtual-time rate)
  double events_per_wall_sec = 0.0; ///< events / host wall seconds
  double wall_seconds = 0.0;        ///< host wall time since construction
  std::uint64_t pool_threads = 0;   ///< ThreadPool size (0 = no pool)
  std::uint64_t pool_batches = 0;   ///< parallel_for invocations
  std::uint64_t pool_items = 0;     ///< indices dispatched across batches
  double pool_busy_seconds = 0.0;   ///< caller wall time inside the pool
  std::uint64_t causal_spans = 0;   ///< spans in the causal DAG (if enabled)
  std::uint64_t causal_bytes = 0;   ///< causal DAG arena bytes
};

/// One fault-bearing span on the measured critical path: what kind of
/// activity, where, and how much of T_p the fault slice accounts for.
struct CausalSpanNote {
  std::string kind;  ///< "compute" | "send" | "retry" | "transfer" | "modeled"
  std::uint32_t pid = 0;
  std::string phase;  ///< "" for activity outside any PhaseScope
  double start = 0.0;
  double end = 0.0;
  double overhead = 0.0;  ///< fault-attributable slice of the span
};

/// Summary of the causal span DAG (sim/causal.hpp) recorded for a run with
/// MachineParams::causal set. `measured` is the critical path walked from
/// the happens-before DAG itself — independent of the chain_ bookkeeping —
/// and must reconcile with RunReport::critical_path to 1e-9 when the DAG is
/// complete (trace_sample >= 1). Like EngineTelemetry, never serialized by
/// write_json.
struct CausalSummary {
  bool enabled = false;
  bool complete = false;  ///< every processor sampled; measured path valid
  std::uint64_t spans = 0;
  std::uint64_t bytes = 0;
  std::uint64_t path_spans = 0;  ///< spans on the measured critical path
  PathTerms measured;            ///< critical path summed from the DAG
  double fault_overhead = 0.0;   ///< fault slice of the measured path
  std::vector<CausalSpanNote> fault_spans;  ///< path spans with overhead > 0
};

/// Outcome of one simulated parallel run: the quantities of Section 2.
struct RunReport {
  std::string algorithm;
  std::size_t n = 0;  ///< matrix order
  std::size_t p = 0;  ///< processors
  MachineParams params;
  double t_parallel = 0.0;  ///< T_p = max over processor clocks
  double w_useful = 0.0;    ///< problem size W = n^3 (multiply-add units)

  double max_compute_time = 0.0;
  double max_comm_time = 0.0;
  double max_idle_time = 0.0;
  std::uint64_t total_flops = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_words = 0;
  std::uint64_t max_peak_words = 0;

  /// Host-side accounting snapshot of the simulator at report time
  /// (SimMachine::approx_footprint_bytes): how much real memory the engine
  /// held for this run. Diagnostic only — deliberately NOT serialized by
  /// write_json, so reports stay byte-comparable across engine versions.
  std::uint64_t engine_footprint_bytes = 0;

  /// Engine self-telemetry (never serialized; see EngineTelemetry).
  EngineTelemetry engine;

  /// Causal span DAG summary (never serialized; empty unless
  /// MachineParams::causal was set — see CausalSummary).
  CausalSummary causal;

  /// Snapshot of the machine's MetricsRegistry at report time, with the
  /// engine.* telemetry gauges added — what `--metrics-out` renders as
  /// Prometheus text / OTLP JSON (util/export.hpp). Never serialized by
  /// write_json.
  MetricsRegistry metrics;

  /// Fault events observed during the run (all zero on an ideal machine).
  FaultStats faults;

  std::vector<ProcStats> procs;  ///< per-processor detail (optional to keep)

  /// Phase-attributed breakdown (one row per phase the algorithm opened,
  /// plus a leading "" row when unattributed activity exists). Empty only
  /// for runs that never touched the machine.
  std::vector<PhaseBreakdown> phases;

  /// Critical-path decomposition of T_p itself: the sum of phases[i].path,
  /// satisfying critical_path.total() == t_parallel.
  PathTerms critical_path;

  /// T_o(W, p) = p * T_p - W (Section 2).
  double total_overhead() const noexcept {
    return static_cast<double>(p) * t_parallel - w_useful;
  }
  /// S = W / T_p.
  double speedup() const noexcept {
    return t_parallel > 0.0 ? w_useful / t_parallel : 0.0;
  }
  /// E = S / p.
  double efficiency() const noexcept {
    return p > 0 ? speedup() / static_cast<double>(p) : 0.0;
  }

  /// One-line human-readable summary.
  std::string summary() const;

  /// Complete machine-readable report as one JSON object (machine
  /// parameters, timings, derived metrics, per-phase table, critical-path
  /// terms, faults when any). `hpmm run --format=json` prints exactly this.
  void write_json(std::ostream& os) const;
};

}  // namespace hpmm
