#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {
namespace {

MachineParams test_params() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  return m;
}

SimMachine traced_machine(unsigned dim) {
  SimMachine m(std::make_shared<Hypercube>(dim), test_params());
  m.enable_tracing();
  return m;
}

TEST(Trace, DisabledByDefault) {
  SimMachine m(std::make_shared<Hypercube>(2), test_params());
  m.compute(0, 10.0);
  EXPECT_TRUE(m.trace().empty());
}

TEST(Trace, RecordsComputeSpans) {
  auto m = traced_machine(1);
  m.compute(0, 25.0);
  m.compute(0, 5.0);
  const Trace t = m.trace();
  const auto events = t.events_of(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kCompute);
  EXPECT_DOUBLE_EQ(events[0].start, 0.0);
  EXPECT_DOUBLE_EQ(events[0].end, 25.0);
  EXPECT_DOUBLE_EQ(events[1].start, 25.0);
  EXPECT_DOUBLE_EQ(events[1].end, 30.0);
  EXPECT_DOUBLE_EQ(t.total(0, TraceEvent::Kind::kCompute), 30.0);
}

TEST(Trace, RecordsSendAndWait) {
  auto m = traced_machine(2);
  m.compute(0, 50.0);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 5));
  m.exchange(std::move(msgs));
  const Trace t = m.trace();
  // Sender: compute then send.
  EXPECT_DOUBLE_EQ(t.total(0, TraceEvent::Kind::kSend), 20.0);
  EXPECT_DOUBLE_EQ(t.total(0, TraceEvent::Kind::kWait), 0.0);
  // Receiver: waited from 0 to arrival at 70.
  EXPECT_DOUBLE_EQ(t.total(1, TraceEvent::Kind::kWait), 70.0);
}

TEST(Trace, RecordsBarrierWaits) {
  auto m = traced_machine(2);
  m.compute(0, 100.0);
  m.synchronize();
  const Trace t = m.trace();
  EXPECT_DOUBLE_EQ(t.total(3, TraceEvent::Kind::kWait), 100.0);
  EXPECT_DOUBLE_EQ(t.total(0, TraceEvent::Kind::kWait), 0.0);
}

TEST(Trace, RecordsModeledComm) {
  auto m = traced_machine(2);
  const std::vector<ProcId> group{0, 1};
  m.charge_group_comm(group, 42.0);
  const Trace t = m.trace();
  EXPECT_DOUBLE_EQ(t.total(0, TraceEvent::Kind::kModeledComm), 42.0);
  EXPECT_DOUBLE_EQ(t.total(2, TraceEvent::Kind::kModeledComm), 0.0);
}

TEST(Trace, SpanEqualsMachineTime) {
  auto m = traced_machine(3);
  std::vector<ProcId> group(8);
  for (ProcId pid = 0; pid < 8; ++pid) group[pid] = pid;
  broadcast_binomial(m, group, 0, 1, Matrix(2, 2));
  m.compute(3, 11.0);
  EXPECT_DOUBLE_EQ(m.trace().span(), m.time());
}

TEST(Trace, UtilizationIsComputeShare) {
  auto m = traced_machine(1);
  m.compute(0, 30.0);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 10));  // cost 30
  m.exchange(std::move(msgs));
  // span = 60; proc 0 computed 30 -> utilization 0.5.
  EXPECT_NEAR(m.trace().utilization(0), 0.5, 1e-12);
  EXPECT_NEAR(m.trace().utilization(1), 0.0, 1e-12);
}

TEST(Trace, ResetClearsEvents) {
  auto m = traced_machine(1);
  m.compute(0, 5.0);
  m.reset();
  EXPECT_TRUE(m.trace().empty());
}

TEST(Trace, GanttRendering) {
  auto m = traced_machine(2);
  m.compute(0, 40.0);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 5));
  m.exchange(std::move(msgs));
  m.synchronize();
  std::ostringstream os;
  m.trace().print_gantt(os, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("Gantt"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);  // compute on p0
  EXPECT_NE(out.find('.'), std::string::npos);  // waits elsewhere
  EXPECT_NE(out.find("p0 |"), std::string::npos);
}

TEST(Trace, GanttEmptyTrace) {
  Trace t;
  std::ostringstream os;
  t.print_gantt(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(Trace, Validation) {
  std::vector<TraceEvent> bad{
      TraceEvent{5, TraceEvent::Kind::kCompute, 0.0, 1.0, 0}};
  EXPECT_THROW(Trace(2, bad), PreconditionError);
  EXPECT_THROW(Trace(8, {TraceEvent{0, TraceEvent::Kind::kCompute, 2.0, 1.0, 0}}),
               PreconditionError);
}

TEST(Trace, ThroughPublicAlgorithmInterface) {
  // MachineParams::trace returns the timeline via MatmulResult::trace.
  Rng rng(9);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  MachineParams mp = test_params();
  const auto& gk = default_registry().implementation("gk");
  const auto untraced = gk.run(a, b, 8, mp);
  EXPECT_TRUE(untraced.trace.empty());
  mp.trace = true;
  const auto traced = gk.run(a, b, 8, mp);
  EXPECT_FALSE(traced.trace.empty());
  EXPECT_DOUBLE_EQ(traced.trace.span(), traced.report.t_parallel);
  EXPECT_EQ(traced.trace.procs(), 8u);
  // Tracing must not perturb the timing.
  EXPECT_DOUBLE_EQ(traced.report.t_parallel, untraced.report.t_parallel);
  // Per-processor compute total equals the report's compute accounting.
  for (ProcId pid = 0; pid < 8; ++pid) {
    EXPECT_NEAR(traced.trace.total(pid, TraceEvent::Kind::kCompute),
                16.0 * 16.0 * 16.0 / 8.0, 1e-9);
  }
}

TEST(Trace, KindNames) {
  // Exhaustive over the enum: extending Kind must extend to_string.
  EXPECT_STREQ(to_string(TraceEvent::Kind::kCompute), "compute");
  EXPECT_STREQ(to_string(TraceEvent::Kind::kSend), "send");
  EXPECT_STREQ(to_string(TraceEvent::Kind::kWait), "wait");
  EXPECT_STREQ(to_string(TraceEvent::Kind::kModeledComm), "modeled-comm");
  EXPECT_STREQ(to_string(TraceEvent::Kind::kRetry), "retry");
}

TEST(Trace, EmptyTraceEdgeCases) {
  Trace t;
  EXPECT_DOUBLE_EQ(t.span(), 0.0);
  EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);  // span 0 -> 0, not NaN
  // All-zero-duration events still leave span and utilization at 0.
  Trace z(1, {TraceEvent{0, TraceEvent::Kind::kCompute, 0.0, 0.0, 0}});
  EXPECT_DOUBLE_EQ(z.span(), 0.0);
  EXPECT_DOUBLE_EQ(z.utilization(0), 0.0);
}

TEST(Trace, EventsOfOrdersByStartKeepingTies) {
  std::vector<TraceEvent> events;
  events.push_back({0, TraceEvent::Kind::kSend, 5.0, 6.0, 3, 0});
  events.push_back({1, TraceEvent::Kind::kCompute, 0.0, 1.0, 0, 0});
  events.push_back({0, TraceEvent::Kind::kCompute, 0.0, 5.0, 0, 0});
  events.push_back({0, TraceEvent::Kind::kWait, 5.0, 5.0, 0, 0});  // ties send
  const Trace t(2, events);
  const auto of0 = t.events_of(0);
  ASSERT_EQ(of0.size(), 3u);
  EXPECT_EQ(of0[0].kind, TraceEvent::Kind::kCompute);
  // Equal start times keep their recorded order (send before wait).
  EXPECT_EQ(of0[1].kind, TraceEvent::Kind::kSend);
  EXPECT_EQ(of0[2].kind, TraceEvent::Kind::kWait);
}

TEST(Trace, GanttRendersRetryGlyph) {
  std::vector<TraceEvent> events{
      {0, TraceEvent::Kind::kRetry, 0.0, 10.0, 0, 0}};
  const Trace t(1, events);
  std::ostringstream os;
  t.print_gantt(os, 16);
  EXPECT_NE(os.str().find('!'), std::string::npos);
  EXPECT_NE(os.str().find("!=retry"), std::string::npos);  // legend
}

TEST(Trace, WriteChromeIsValidJsonCarryingPhases) {
  auto m = traced_machine(1);
  {
    PhaseScope scope(m, "shift");
    m.compute(0, 5.0);
    std::vector<Message> msgs;
    msgs.emplace_back(0, 1, 1, Matrix(1, 4));
    m.exchange(std::move(msgs));
  }
  std::ostringstream os;
  m.trace().write_chrome(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_valid(out)) << out;
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"shift\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"send\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, PhaseTableValidation) {
  std::vector<TraceEvent> events{
      {0, TraceEvent::Kind::kCompute, 0.0, 1.0, 0, 2}};  // phase 2 of 2
  EXPECT_THROW(Trace(1, events, {"", "align"}), PreconditionError);
  EXPECT_THROW(Trace(1, {}, {}), PreconditionError);  // no default entry
  const Trace ok(1, events, {"", "align", "shift"});
  EXPECT_EQ(ok.phase_name(2), "shift");
  EXPECT_THROW(ok.phase_name(3), PreconditionError);
}

}  // namespace
}  // namespace hpmm
