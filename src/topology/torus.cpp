#include "topology/torus.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

unsigned ring_distance(std::size_t a, std::size_t b, std::size_t len) {
  const std::size_t d = a > b ? a - b : b - a;
  return static_cast<unsigned>(std::min(d, len - d));
}

}  // namespace

Torus2D::Torus2D(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  require(rows > 0 && cols > 0, "Torus2D: dimensions must be positive");
}

Torus2D Torus2D::square(std::size_t p) {
  const std::size_t side = exact_sqrt(p);
  return Torus2D(side, side);
}

unsigned Torus2D::hops(ProcId src, ProcId dst) const {
  const auto [sr, sc] = coords(src);
  const auto [dr, dc] = coords(dst);
  return ring_distance(sr, dr, rows_) + ring_distance(sc, dc, cols_);
}

std::vector<ProcId> Torus2D::neighbors(ProcId node) const {
  std::vector<ProcId> out{north(node), south(node), west(node), east(node)};
  // A 1-wide or 1-tall torus yields duplicate neighbours; deduplicate.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), node), out.end());
  return out;
}

std::string Torus2D::name() const {
  return "torus(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

std::pair<std::size_t, std::size_t> Torus2D::coords(ProcId node) const {
  require(node < size(), "Torus2D::coords: node out of range");
  return {node / cols_, node % cols_};
}

ProcId Torus2D::rank(std::size_t row, std::size_t col) const {
  require(row < rows_ && col < cols_, "Torus2D::rank: coords out of range");
  return static_cast<ProcId>(row * cols_ + col);
}

ProcId Torus2D::west(ProcId node, std::size_t steps) const {
  const auto [r, c] = coords(node);
  return rank(r, (c + cols_ - steps % cols_) % cols_);
}

ProcId Torus2D::east(ProcId node, std::size_t steps) const {
  const auto [r, c] = coords(node);
  return rank(r, (c + steps) % cols_);
}

ProcId Torus2D::north(ProcId node, std::size_t steps) const {
  const auto [r, c] = coords(node);
  return rank((r + rows_ - steps % rows_) % rows_, c);
}

ProcId Torus2D::south(ProcId node, std::size_t steps) const {
  const auto [r, c] = coords(node);
  return rank((r + steps) % rows_, c);
}

ProcId Torus2D::gray_rank(std::size_t row, std::size_t col) const {
  require(is_pow2(rows_) && is_pow2(cols_),
          "Torus2D::gray_rank: needs power-of-two dimensions");
  require(row < rows_ && col < cols_, "Torus2D::gray_rank: coords out of range");
  const auto gr = gray_code(row);
  const auto gc = gray_code(col);
  return static_cast<ProcId>((gr << exact_log2(cols_)) | gc);
}

}  // namespace hpmm
