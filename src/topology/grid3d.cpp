#include "topology/grid3d.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {

Grid3D::Grid3D(unsigned q) : q_(q) {
  require(3 * q <= 30, "Grid3D: too large to simulate");
}

Grid3D Grid3D::with_procs(std::size_t p) {
  require(is_pow8(p), "Grid3D::with_procs: p must be 2^(3q)");
  return Grid3D(exact_log2(p) / 3);
}

Grid3D::Coord Grid3D::coords(ProcId node) const {
  require(node < size(), "Grid3D::coords: node out of range");
  const std::size_t mask = side() - 1;
  return Coord{(node >> (2 * q_)) & mask, (node >> q_) & mask, node & mask};
}

ProcId Grid3D::rank(std::size_t i, std::size_t j, std::size_t k) const {
  require(i < side() && j < side() && k < side(),
          "Grid3D::rank: coords out of range");
  return static_cast<ProcId>((i << (2 * q_)) | (j << q_) | k);
}

std::vector<ProcId> Grid3D::line_i(std::size_t j, std::size_t k) const {
  std::vector<ProcId> out;
  out.reserve(side());
  for (std::size_t i = 0; i < side(); ++i) out.push_back(rank(i, j, k));
  return out;
}

std::vector<ProcId> Grid3D::line_j(std::size_t i, std::size_t k) const {
  std::vector<ProcId> out;
  out.reserve(side());
  for (std::size_t j = 0; j < side(); ++j) out.push_back(rank(i, j, k));
  return out;
}

std::vector<ProcId> Grid3D::line_k(std::size_t i, std::size_t j) const {
  std::vector<ProcId> out;
  out.reserve(side());
  for (std::size_t k = 0; k < side(); ++k) out.push_back(rank(i, j, k));
  return out;
}

}  // namespace hpmm
