#pragma once

#include "topology/topology.hpp"

namespace hpmm {

/// 2-D wrap-around processor mesh (torus) of shape rows x cols — the logical
/// arrangement used by the Simple, Cannon and Fox formulations. When both
/// sides are powers of two the torus embeds into a hypercube with dilation 1
/// via binary-reflected Gray codes (gray_rank).
class Torus2D final : public Topology {
 public:
  Torus2D(std::size_t rows, std::size_t cols);

  /// Square torus: sqrt(p) x sqrt(p); throws unless p is a perfect square.
  static Torus2D square(std::size_t p);

  std::size_t grid_rows() const noexcept { return rows_; }
  std::size_t grid_cols() const noexcept { return cols_; }

  std::size_t size() const noexcept override { return rows_ * cols_; }
  unsigned hops(ProcId src, ProcId dst) const override;
  unsigned ports_per_proc() const noexcept override { return 4; }
  std::vector<ProcId> neighbors(ProcId node) const override;
  std::string name() const override;

  /// (row, col) coordinates of a rank, row-major.
  std::pair<std::size_t, std::size_t> coords(ProcId node) const;

  /// Row-major rank of (row, col).
  ProcId rank(std::size_t row, std::size_t col) const;

  /// Rank `steps` to the left (westward) with wrap-around.
  ProcId west(ProcId node, std::size_t steps = 1) const;
  /// Rank `steps` to the right (eastward) with wrap-around.
  ProcId east(ProcId node, std::size_t steps = 1) const;
  /// Rank `steps` up (northward) with wrap-around.
  ProcId north(ProcId node, std::size_t steps = 1) const;
  /// Rank `steps` down (southward) with wrap-around.
  ProcId south(ProcId node, std::size_t steps = 1) const;

  /// Hypercube node id of torus position (row, col) under the Gray-code
  /// embedding. Requires rows and cols to be powers of two. Adjacent torus
  /// nodes map to adjacent hypercube nodes (dilation 1).
  ProcId gray_rank(std::size_t row, std::size_t col) const;

 private:
  std::size_t rows_, cols_;
};

}  // namespace hpmm
