// The communication lower-bound layer: closed forms at hand-computed points,
// the clamps that make the bound honest (p = 1 must require nothing), the
// name -> class table, the strong-scaling range geometry, and the
// distance-from-optimal scoreboard conventions. The simulator never runs
// here; the measured-vs-bound oracle lives in tests/integration.

#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/perf_model.hpp"
#include "analysis/region_map.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams word_machine() {
  MachineParams m;
  m.t_s = 0.0;
  m.t_w = 1.0;
  m.t_h = 0.0;
  return m;
}

TEST(Bounds, MemIndependentRegimeAtHandComputedPoint) {
  // n = 64, p = 64, M = 192 (= 3n^2/p, one copy exactly filling memory):
  //   mem-dep  = 64^3/(64 sqrt(192)) - 192 = 512/sqrt(3) - 192 ~ 103.6
  //   mem-indep = 3 (64^3/64)^{2/3} - 3*64^2/64 = 3*256 - 192 = 576
  // The memory-independent regime binds.
  const CommLowerBound b = comm_lower_bound(64.0, 64.0, 192.0);
  EXPECT_DOUBLE_EQ(b.memory_words, 192.0);
  EXPECT_NEAR(b.words_mem_dependent, 512.0 / std::sqrt(3.0) - 192.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.words_mem_independent, 576.0);
  EXPECT_DOUBLE_EQ(b.words, 576.0);
  EXPECT_DOUBLE_EQ(b.total_words, 64.0 * 576.0);
  EXPECT_DOUBLE_EQ(b.latency, 3.0);  // 576 words through a 192-word memory
}

TEST(Bounds, MemDependentRegimeBindsWhenMemoryIsScarce) {
  // DNS territory: n = 256, p = 65536, M = 3 words.
  //   mem-dep  = 256/sqrt(3) - 3 ~ 144.8
  //   mem-indep = 3*256^{2/3} - 3 ~ 118.0
  const CommLowerBound b = comm_lower_bound(256.0, 65536.0, 3.0);
  const double dep = 256.0 / std::sqrt(3.0) - 3.0;
  const double indep = 3.0 * std::pow(256.0, 2.0 / 3.0) - 3.0;
  EXPECT_NEAR(b.words_mem_dependent, dep, 1e-9);
  EXPECT_NEAR(b.words_mem_independent, indep, 1e-9);
  EXPECT_GT(b.words_mem_dependent, b.words_mem_independent);
  EXPECT_DOUBLE_EQ(b.words, b.words_mem_dependent);
  EXPECT_NEAR(b.latency, dep / 3.0, 1e-9);
}

TEST(Bounds, SingleProcessorRequiresNoCommunication) {
  // p = 1 with the whole working set resident: both regimes clamp to 0.
  // The -M and -3n^2/p subtractions exist exactly for this.
  const double n = 64.0;
  const CommLowerBound b = comm_lower_bound(n, 1.0, 3.0 * n * n);
  EXPECT_DOUBLE_EQ(b.words_mem_dependent, 0.0);
  EXPECT_DOUBLE_EQ(b.words_mem_independent, 0.0);
  EXPECT_DOUBLE_EQ(b.words, 0.0);
  EXPECT_DOUBLE_EQ(b.total_words, 0.0);
  EXPECT_DOUBLE_EQ(b.latency, 0.0);
}

TEST(Bounds, BoundGrowsAsMemoryShrinks) {
  // At fixed (n, p) the binding floor is monotone non-increasing in M:
  // more memory can only relax the requirement.
  double prev = std::numeric_limits<double>::infinity();
  for (const double m : {8.0, 64.0, 512.0, 4096.0, 32768.0}) {
    const double w = comm_lower_bound(128.0, 256.0, m).words;
    EXPECT_LE(w, prev) << "M=" << m;
    prev = w;
  }
}

TEST(Bounds, RejectsDegenerateArguments) {
  EXPECT_THROW(comm_lower_bound(0.5, 4.0, 64.0), PreconditionError);
  EXPECT_THROW(comm_lower_bound(8.0, 0.0, 64.0), PreconditionError);
  EXPECT_THROW(comm_lower_bound(8.0, 4.0, 0.0), PreconditionError);
  EXPECT_THROW(comm_lower_bound(8.0, 4.0, -3.0), PreconditionError);
}

// ---- classification table --------------------------------------------------

TEST(Bounds, ClassificationCoversEveryFormulationFamily) {
  for (const char* name :
       {"simple", "simple-ring", "simple-allport", "cannon", "cannon-gray",
        "fox", "fox-pipe"}) {
    EXPECT_EQ(bounds_class(name), BoundsClass::k2D) << name;
  }
  EXPECT_EQ(bounds_class("cannon25d"), BoundsClass::k25D);
  for (const char* name :
       {"berntsen", "dns", "gk", "gk-jh", "gk-fc", "gk-allport"}) {
    EXPECT_EQ(bounds_class(name), BoundsClass::k3D) << name;
  }
}

TEST(Bounds, UnknownNameThrowsWithInstruction) {
  try {
    bounds_class("hyper-systolic");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("bounds classification"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("hyper-systolic"), std::string::npos);
  }
}

TEST(Bounds, ClassNamesRender) {
  EXPECT_EQ(to_string(BoundsClass::k2D), "2D");
  EXPECT_EQ(to_string(BoundsClass::k25D), "2.5D");
  EXPECT_EQ(to_string(BoundsClass::k3D), "3D");
}

// ---- strong-scaling ranges -------------------------------------------------

TEST(Bounds, StrongScalingRangeGeometry) {
  // n = 64, M = 192: p_2d = 3n^2/M = 64, p_3d = 64^{3/2} = 512.
  const StrongScalingRange r2 = strong_scaling_range(BoundsClass::k2D, 64, 192);
  EXPECT_DOUBLE_EQ(r2.p_min, 64.0);
  EXPECT_DOUBLE_EQ(r2.p_max, 64.0);  // 2D is degenerate: one point

  const StrongScalingRange r25 =
      strong_scaling_range(BoundsClass::k25D, 64, 192);
  EXPECT_DOUBLE_EQ(r25.p_min, 64.0);
  EXPECT_DOUBLE_EQ(r25.p_max, 512.0);  // interval up to p_2d^{3/2}

  const StrongScalingRange r3 = strong_scaling_range(BoundsClass::k3D, 64, 192);
  EXPECT_DOUBLE_EQ(r3.p_min, 512.0);  // 3D degenerate at the 2.5D endpoint
  EXPECT_DOUBLE_EQ(r3.p_max, 512.0);
  EXPECT_DOUBLE_EQ(r3.p_min, std::pow(r2.p_min, 1.5));
}

TEST(Bounds, StrongScalingRangeClampsToOneProcessor) {
  // Memory so large that 3n^2/M < 1: every class clamps to the [1, 1] point.
  for (const BoundsClass cls :
       {BoundsClass::k2D, BoundsClass::k25D, BoundsClass::k3D}) {
    const StrongScalingRange r = strong_scaling_range(cls, 16, 1 << 20);
    EXPECT_DOUBLE_EQ(r.p_min, 1.0) << to_string(cls);
    EXPECT_DOUBLE_EQ(r.p_max, 1.0) << to_string(cls);
  }
}

TEST(Bounds, StrongScalingRangeRejectsDegenerateArguments) {
  EXPECT_THROW(strong_scaling_range(BoundsClass::k2D, 0.0, 64.0),
               PreconditionError);
  EXPECT_THROW(strong_scaling_range(BoundsClass::k2D, 8.0, 0.0),
               PreconditionError);
}

// ---- distance from optimal -------------------------------------------------

TEST(Bounds, DistanceScoresMeasuredAgainstTheModelsOwnFootprint) {
  // GK at n = 64, p = 64 keeps M = 3n^2/p^{2/3} = 768 words; at that M the
  // memory-dependent regime is vacuous and the memory-independent floor is
  // 576 words/proc (36864 total).
  const GkModel gk(word_machine());
  const DistanceFromOptimal d = distance_from_measured(gk, 64.0, 64.0, 40000.0);
  EXPECT_EQ(d.cls, BoundsClass::k3D);
  EXPECT_DOUBLE_EQ(d.n, 64.0);
  EXPECT_DOUBLE_EQ(d.p, 64.0);
  EXPECT_DOUBLE_EQ(d.bound.memory_words, 768.0);
  EXPECT_DOUBLE_EQ(d.bound.total_words, 36864.0);
  EXPECT_DOUBLE_EQ(d.measured_total_words, 40000.0);
  EXPECT_NEAR(d.ratio, 40000.0 / 36864.0, 1e-12);
}

TEST(Bounds, DistanceConventionsWhenTheBoundIsVacuous) {
  // p = 1: the bound is 0. Zero measured words scores a perfect 1; any
  // measured traffic where none was required scores +inf, not a division
  // artefact.
  const GkModel gk(word_machine());
  const DistanceFromOptimal perfect = distance_from_measured(gk, 64.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(perfect.bound.total_words, 0.0);
  EXPECT_DOUBLE_EQ(perfect.ratio, 1.0);

  const DistanceFromOptimal waste = distance_from_measured(gk, 64.0, 1.0, 5.0);
  EXPECT_TRUE(std::isinf(waste.ratio));
  EXPECT_GT(waste.ratio, 0.0);
}

TEST(Bounds, DistanceRejectsNegativeMeasurement) {
  const GkModel gk(word_machine());
  EXPECT_THROW(distance_from_measured(gk, 64.0, 64.0, -1.0), PreconditionError);
}

// ---- the regions overlay predicate -----------------------------------------

TEST(Bounds, RegionOverlayMarksWordEfficientFormulations) {
  // Cannon at n = 64, p = 64 moves 2n^2/sqrt(p) = 1024 words/proc against a
  // 576-word floor: within the 4x band. Berntsen at n = 256, p = 512 moves
  // 3n^2/p^{2/3} = 3072 against 2688: also within.
  EXPECT_TRUE(RegionMap::comm_optimal_at(64.0, 64.0, Region::kCannon));
  EXPECT_TRUE(RegionMap::comm_optimal_at(256.0, 512.0, Region::kBerntsen));
}

TEST(Bounds, RegionOverlayRejectsGkAtLargeP) {
  // GK's (5/3) n^2/p^{2/3} log p traffic leaves the 4x band once log p is
  // large: at n = 64, p = 4096 it moves ~7.1x the floor. At small p the log
  // factor is still modest and GK stays within the band.
  EXPECT_TRUE(RegionMap::comm_optimal_at(64.0, 8.0, Region::kGk));
  EXPECT_FALSE(RegionMap::comm_optimal_at(64.0, 4096.0, Region::kGk));
}

TEST(Bounds, RegionOverlayNeverMarksTheEmptyRegion) {
  EXPECT_FALSE(RegionMap::comm_optimal_at(64.0, 64.0, Region::kNone));
}

}  // namespace
}  // namespace hpmm
