#include <gtest/gtest.h>

#include <memory>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "sim/fault.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

SimMachine make_machine(unsigned dim, MachineParams mp) {
  return SimMachine(std::make_shared<Hypercube>(dim), std::move(mp));
}

TEST(Deadline, ComputePastBudgetThrows) {
  MachineParams mp = machines::ideal();
  mp.deadline = 100.0;
  SimMachine m = make_machine(1, mp);
  m.compute(0, 100.0);  // lands exactly on the budget: still within it
  EXPECT_DOUBLE_EQ(m.clock(0), 100.0);
  try {
    m.compute(0, 1.0);
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.pid(), 0u);
    EXPECT_DOUBLE_EQ(e.budget(), 100.0);
    EXPECT_DOUBLE_EQ(e.at_time(), 101.0);
  }
}

TEST(Deadline, ExchangePastBudgetThrows) {
  MachineParams mp = machines::ncube2();  // t_s = 150 > the budget below
  mp.deadline = 10.0;
  SimMachine m = make_machine(1, mp);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, identity_matrix(2));
  EXPECT_THROW(m.exchange(std::move(msgs)), DeadlineExceeded);
}

TEST(Deadline, ZeroDeadlineDisablesTheCheck) {
  SimMachine m = make_machine(1, machines::ideal());
  m.compute(0, 1e12);
  EXPECT_DOUBLE_EQ(m.clock(0), 1e12);
}

TEST(Deadline, RunAbortsOnlyWhenBudgetTooSmall) {
  // A full algorithm run under a generous budget is bit-identical to the
  // unbounded run; a budget below its T_p aborts with DeadlineExceeded.
  const auto& impl = default_registry().implementation("cannon");
  Rng rng(11);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);

  const MachineParams base = machines::ncube2();
  const MatmulResult unbounded = impl.run(a, b, 16, base);

  MachineParams roomy = base;
  roomy.deadline = unbounded.report.t_parallel;  // exactly T_p: completes
  const MatmulResult bounded = impl.run(a, b, 16, roomy);
  EXPECT_DOUBLE_EQ(bounded.report.t_parallel, unbounded.report.t_parallel);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(bounded.c(i, j), unbounded.c(i, j));
    }
  }

  MachineParams tight = base;
  tight.deadline = unbounded.report.t_parallel / 2.0;
  EXPECT_THROW(impl.run(a, b, 16, tight), DeadlineExceeded);
}

TEST(Deadline, ModeledCollectiveChargesAreChecked) {
  MachineParams mp = machines::ideal();
  mp.deadline = 5.0;
  SimMachine m = make_machine(2, mp);
  const std::vector<ProcId> group{0, 1, 2, 3};
  m.charge_group_comm(group, 4.0);
  EXPECT_THROW(m.charge_group_comm(group, 4.0), DeadlineExceeded);
}

}  // namespace
}  // namespace hpmm
