// Section 6: the exact conditions under which each formulation wins.
//  * GK vs Cannon cut-off: with t_s = 0 the GK t_w term becomes smaller than
//    Cannon's for p > ~130 million, independent of n.
//  * DNS vs GK: the equal-overhead curve only crosses p = n^3 at
//    p ~ 2.6e18 (footnote 3) — DNS never beats GK at practical scale on the
//    Figure 1 machine.
//  * Even with t_s = 10 t_w, DNS is worse than GK up to ~10,000 processors
//    for any problem size (Section 10).

#include <cmath>
#include <iostream>

#include "analysis/crossover.hpp"
#include "util/table.hpp"

using namespace hpmm;

namespace {

MachineParams make(double ts, double tw, const char* label) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  m.label = label;
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Section 6: equal-overhead conditions and cut-off points ===\n\n";

  {
    std::cout << "--- Claim 1: GK vs Cannon t_w-term cut-off at p ~ 1.3e8 "
                 "(t_s = 0) ---\n\n";
    const MachineParams mp = make(0.0, 3.0, "t_s=0, t_w=3");
    const GkModel gk(mp);
    const CannonModel cannon(mp);
    Table t({"p", "GK t_w factor (5/3)p^(1/3)log p", "Cannon t_w factor 2sqrt(p)",
             "GK dominates all n?"});
    for (double p : {1e6, 1e7, 1e8, 1.3e8, 2e8, 1e9}) {
      t.begin_row()
          .add(format_si(p, 3))
          .add_num((5.0 / 3.0) * std::cbrt(p) * std::log2(p), 4)
          .add_num(2.0 * std::sqrt(p), 4)
          .add(dominates_at_p(gk, cannon, p) ? "yes" : "no");
    }
    t.print_aligned(std::cout);
    const auto cutoff = dominance_cutoff_p(gk, cannon, 1e12);
    std::cout << "\nMeasured cut-off: p = "
              << (cutoff ? format_si(*cutoff, 3) : "-")
              << "   [paper: ~130 million]\n\n";
  }

  {
    std::cout << "--- Claim 2: DNS vs GK crossover crosses p = n^3 only at "
                 "p ~ 2.6e18 (t_s = 150, t_w = 3, footnote 3) ---\n\n";
    // The paper compares Table 1's overhead rows. Their t_s parts differ by
    // the fixed factor (t_s + t_w)/t_s, so the crossover is set by the t_w
    // parts: GK's (5/3) t_w n^2 p^{1/3} log p vs DNS's 2 (t_s + t_w) n^3.
    // At the applicability boundary n = p^{1/3} these are equal when
    //   log2 p = 6 (t_s + t_w) / (5 t_w).
    const MachineParams mp = machines::ncube2();
    const double lp_star = 6.0 * (mp.t_s + mp.t_w) / (5.0 * mp.t_w);
    const double p_star = std::pow(2.0, lp_star);
    std::cout << "t_w-term equality at n = p^(1/3):  log2 p = 6 (t_s + t_w) / "
                 "(5 t_w) = "
              << format_number(lp_star, 4) << "  ->  p = "
              << format_si(p_star, 3) << "   [paper: 2.6e18]\n\n";

    Table t({"p", "GK t_w term at n=p^(1/3)", "DNS 2(t_s+t_w)n^3 term",
             "DNS region reaches p=n^3?"});
    for (double p : {1e6, 1e12, 1e18, p_star, 1e19}) {
      const double n = std::cbrt(p);
      const double gk_tw = (5.0 / 3.0) * mp.t_w * n * n * std::cbrt(p) *
                           std::log2(p);
      const double dns_ser = 2.0 * (mp.t_s + mp.t_w) * n * n * n;
      t.begin_row()
          .add(format_si(p, 3))
          .add(format_si(gk_tw, 3))
          .add(format_si(dns_ser, 3))
          .add(gk_tw > dns_ser ? "yes" : "no");
    }
    t.print_aligned(std::cout);
    std::cout << "\n'This region has no practical importance' — on Figure 1's\n"
                 "machine DNS never earns a region below p ~ 2.6e18.\n\n";
  }

  {
    std::cout << "--- Claim 3: with t_s = 10 t_w, DNS worse than GK up to "
                 "~10,000 processors ---\n\n";
    // Using Table 1's DNS overhead bound (the form the paper compares):
    //   T_o_DNS = (t_s + t_w)((5/3) p log p + 2 n^3), log r <= (1/3) log p.
    const MachineParams mp = make(10.0, 1.0, "t_s=10, t_w=1");
    const DnsModel dns(mp);
    const GkModel gk(mp);
    const auto dns_to_table1 = [&](double n, double p) {
      return (mp.t_s + mp.t_w) *
             ((5.0 / 3.0) * p * std::log2(p) + 2.0 * n * n * n);
    };
    Table t({"p", "DNS (Table 1 bound) ever beats GK?",
             "max DNS advantage, exact Eq. 6"});
    for (double p = 64; p <= 131072; p *= 4.0) {
      bool bound_wins = false;
      double best_ratio = 0.0;  // max GK/DNS overhead ratio (exact model)
      for (double n = std::cbrt(p); n * n <= p * 1.0001; n *= 1.02) {
        if (dns_to_table1(n, p) < gk.t_overhead(n, p)) bound_wins = true;
        best_ratio = std::max(best_ratio,
                              gk.t_overhead(n, p) / dns.t_overhead(n, p));
      }
      t.begin_row()
          .add(format_si(p, 3))
          .add(bound_wins ? "yes" : "no")
          .add(best_ratio > 1.0
                   ? format_number((best_ratio - 1.0) * 100.0, 2) + "%"
                   : "never ahead");
    }
    t.print_aligned(std::cout);
    std::cout
        << "\nUnder the paper's comparison DNS never beats GK at this scale;\n"
           "with the exact Eq. 6 (log r instead of the (1/3) log p bound) DNS\n"
           "edges ahead in a narrow mid-n band by only a few percent.\n";
  }
  return 0;
}
