#include "serve/slo.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "serve/script.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace hpmm {
namespace {

TenantRequest clean_request(double arrival, const std::string& tenant = "a") {
  TenantRequest req;
  req.tenant = tenant;
  req.arrival = arrival;
  req.algo = "cannon";
  req.n = 16;
  req.p = 16;
  return req;
}

std::shared_ptr<FaultPlan> corrupting_plan(std::uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>();
  plan->corrupt_prob = 1.0;
  plan->abft = AbftMode::kDetect;
  plan->seed = seed;
  return plan;
}

TEST(SloTargetFor, TenantEntryThenWildcardThenEmpty) {
  SloTargets targets;
  targets["a"].p99 = 10.0;
  targets["*"].availability = 0.9;
  EXPECT_DOUBLE_EQ(slo_target_for(targets, "a").p99, 10.0);
  EXPECT_DOUBLE_EQ(slo_target_for(targets, "a").availability, 0.0);
  EXPECT_DOUBLE_EQ(slo_target_for(targets, "b").availability, 0.9);
  EXPECT_FALSE(slo_target_for(SloTargets{}, "a").any());
}

TEST(EvaluateSlo, BudgetAndOverallBurn) {
  SloTarget target;
  target.availability = 0.9;  // allowed error rate 0.1
  const SloVerdict v = evaluate_slo("t", target, 100, 5, 0.0, nullptr,
                                    nullptr);
  EXPECT_DOUBLE_EQ(v.error_budget, 10.0);
  EXPECT_DOUBLE_EQ(v.budget_remaining, 5.0);
  EXPECT_FALSE(v.availability_breached);
  // 5% observed error rate / 10% allowed = burning at half speed.
  EXPECT_DOUBLE_EQ(v.burn_overall, 0.5);
  EXPECT_FALSE(v.breached());
}

TEST(EvaluateSlo, ExhaustedBudgetBreaches) {
  SloTarget target;
  target.availability = 0.75;  // exact in binary: allowed rate 0.25
  const SloVerdict v = evaluate_slo("t", target, 100, 30, 0.0, nullptr,
                                    nullptr);
  EXPECT_DOUBLE_EQ(v.error_budget, 25.0);
  EXPECT_DOUBLE_EQ(v.budget_remaining, -5.0);
  EXPECT_TRUE(v.availability_breached);
  EXPECT_DOUBLE_EQ(v.burn_overall, 1.2);
  EXPECT_TRUE(v.breached());
}

TEST(EvaluateSlo, WindowedBurnRates) {
  SloTarget target;
  target.availability = 0.9;  // allowed 0.1
  TimeSeries finals(100.0);
  TimeSeries errors(100.0);
  // Window 0: 10 finals, 0 errors. Window 1: 10 finals, 5 errors (burn 5).
  // Window 9 (outside any 6-window span with window 1): 10 finals, 1 error.
  for (int i = 0; i < 10; ++i) finals.observe(0.0 + i, 1.0);
  for (int i = 0; i < 10; ++i) finals.observe(100.0 + i, 1.0);
  for (int i = 0; i < 5; ++i) errors.observe(100.0 + i, 1.0);
  for (int i = 0; i < 10; ++i) finals.observe(900.0 + i, 1.0);
  errors.observe(900.0, 1.0);
  const SloVerdict v =
      evaluate_slo("t", target, 30, 6, 0.0, &finals, &errors);
  // Fast burn: worst single window is window 1 with 5/10 errors -> 5.0.
  EXPECT_DOUBLE_EQ(v.burn_fast, 5.0);
  // Slow burn: spans ending at windows 1..6 cover windows 0 and 1 only ->
  // 5 errors over 20 finals -> 2.5; the span ending at window 9 sees
  // 1/10 -> 1.0.
  EXPECT_DOUBLE_EQ(v.burn_slow, 2.5);
  EXPECT_DOUBLE_EQ(v.burn_overall, 2.0);
}

TEST(EvaluateSlo, P99Objective) {
  SloTarget target;
  target.p99 = 1000.0;
  const SloVerdict over =
      evaluate_slo("t", target, 10, 0, 1500.0, nullptr, nullptr);
  EXPECT_TRUE(over.p99_breached);
  EXPECT_TRUE(over.breached());
  EXPECT_FALSE(over.availability_breached);
  const SloVerdict under =
      evaluate_slo("t", target, 10, 0, 900.0, nullptr, nullptr);
  EXPECT_FALSE(under.p99_breached);
  EXPECT_FALSE(under.breached());
}

TEST(EvaluateSlo, ValidatesTargets) {
  SloTarget bad_avail;
  bad_avail.availability = 1.0;
  EXPECT_THROW(evaluate_slo("t", bad_avail, 1, 0, 0.0, nullptr, nullptr),
               PreconditionError);
  bad_avail.availability = -0.5;
  EXPECT_THROW(evaluate_slo("t", bad_avail, 1, 0, 0.0, nullptr, nullptr),
               PreconditionError);
  SloTarget bad_p99;
  bad_p99.p99 = -1.0;
  EXPECT_THROW(evaluate_slo("t", bad_p99, 1, 0, 0.0, nullptr, nullptr),
               PreconditionError);
}

TEST(EvaluateSlo, VerdictJsonIsValid) {
  SloTarget target;
  target.availability = 0.75;
  target.p99 = 5000.0;
  const SloVerdict v =
      evaluate_slo("t", target, 100, 26, 6000.0, nullptr, nullptr);
  std::ostringstream os;
  v.write_json(os);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"budget_remaining\":-1"), std::string::npos);
  EXPECT_NE(os.str().find("\"breached\":true"), std::string::npos);
}

TEST(ServerSlo, VerdictsAndSeriesInReport) {
  ServeOptions opt;
  opt.max_retries = 0;
  SloTarget target;
  target.availability = 0.75;
  opt.slos["*"] = target;
  const Server server(opt);
  TenantRequest failing = clean_request(10.0, "a");
  failing.faults = corrupting_plan(3);
  const ServeReport report = server.run(
      {clean_request(0.0, "a"), failing, clean_request(0.0, "b")});
  // "a": 2 submitted, 1 error -> budget 0.5 exhausted. "b": clean.
  ASSERT_EQ(report.slo.size(), 2u);
  EXPECT_EQ(report.slo[0].tenant, "a");
  EXPECT_EQ(report.slo[0].errors, 1u);
  EXPECT_TRUE(report.slo[0].availability_breached);
  EXPECT_GT(report.slo[0].burn_fast, 0.0);
  EXPECT_EQ(report.slo[1].tenant, "b");
  EXPECT_FALSE(report.slo[1].breached());
  EXPECT_TRUE(report.slo_breached());
  // The windowed per-tenant series back the burn rates and land in the
  // report's metrics JSON.
  EXPECT_NE(report.metrics.find_series("serve.series.a.finals"), nullptr);
  EXPECT_NE(report.metrics.find_series("serve.series.a.errors"), nullptr);
  EXPECT_NE(report.metrics.find_series("serve.series.b.arrivals"), nullptr);
  std::ostringstream os;
  report.write_json(os);
  EXPECT_TRUE(json_valid(os.str()));
  EXPECT_NE(os.str().find("\"slo\":["), std::string::npos);
  EXPECT_NE(os.str().find("\"series\":{"), std::string::npos);
  EXPECT_NE(os.str().find("\"serve.series.a.finals\""), std::string::npos);
}

TEST(ServerSlo, NoTargetsMeansNoVerdictsOrSection) {
  const Server server(ServeOptions{});
  const ServeReport report = server.run({clean_request(0.0)});
  EXPECT_TRUE(report.slo.empty());
  EXPECT_FALSE(report.slo_breached());
  std::ostringstream os;
  report.write_json(os);
  EXPECT_EQ(os.str().find("\"slo\":["), std::string::npos);
}

TEST(ServerSlo, ScriptSlosFlowIntoReport) {
  const std::string script =
      "# workload with objectives\n"
      "slo tenant=alice slo_p99=1 slo_availability=0.99\n"
      "slo slo_availability=0.5\n"
      "request tenant=alice arrival=0 algo=cannon n=16 p=16\n"
      "request tenant=bob arrival=0 algo=cannon n=16 p=16\n";
  const ServeWorkload workload = parse_serve_workload(script);
  ASSERT_EQ(workload.requests.size(), 2u);
  ASSERT_EQ(workload.slos.size(), 2u);
  ServeOptions opt;
  opt.slos = workload.slos;
  const Server server(opt);
  const ServeReport report = server.run(workload.requests);
  ASSERT_EQ(report.slo.size(), 2u);
  // alice's p99 objective of 1 time unit is impossibly tight; bob falls
  // back to the "*" availability default and passes.
  EXPECT_EQ(report.slo[0].tenant, "alice");
  EXPECT_TRUE(report.slo[0].p99_breached);
  EXPECT_EQ(report.slo[1].tenant, "bob");
  EXPECT_FALSE(report.slo[1].breached());
  EXPECT_TRUE(report.slo_breached());
}

TEST(ServerSlo, ConstructorValidatesTargetsAndWindow) {
  ServeOptions bad_window;
  bad_window.window = 0.0;
  EXPECT_THROW(Server{bad_window}, PreconditionError);
  ServeOptions bad_target;
  bad_target.slos["a"].availability = 2.0;
  EXPECT_THROW(Server{bad_target}, PreconditionError);
  ServeOptions empty_tenant;
  empty_tenant.slos[""].availability = 0.9;
  EXPECT_THROW(Server{empty_tenant}, PreconditionError);
}

}  // namespace
}  // namespace hpmm
