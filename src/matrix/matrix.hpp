#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpmm {

/// Dense row-major matrix of doubles. Value type with deep-copy semantics;
/// the unit of data exchanged between simulated processors.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() noexcept = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws PreconditionError when out of range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Pointer to the first element of row r.
  double* row_ptr(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  /// Set every element to `value`.
  void fill(double value) noexcept;

  /// Element-wise sum: *this += other. Shapes must match.
  Matrix& operator+=(const Matrix& other);

  /// Element-wise difference: *this -= other. Shapes must match.
  Matrix& operator-=(const Matrix& other);

  /// Copy the rectangle [r0, r0+h) x [c0, c0+w) out of this matrix.
  Matrix slice(std::size_t r0, std::size_t c0, std::size_t h, std::size_t w) const;

  /// Paste `block` into this matrix with its top-left corner at (r0, c0).
  void paste(const Matrix& block, std::size_t r0, std::size_t c0);

  /// Transposed copy.
  Matrix transposed() const;

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Frobenius norm sqrt(sum a_ij^2).
double frobenius_norm(const Matrix& m) noexcept;

/// Largest absolute element-wise difference. Shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// True when every |a_ij - b_ij| <= tol. Shapes must match.
bool approx_equal(const Matrix& a, const Matrix& b, double tol);

}  // namespace hpmm
