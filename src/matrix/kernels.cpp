#include "matrix/kernels.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpmm {
namespace {

void mul_naive_ijk(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) acc += a(i, l) * b(l, j);
      c(i, j) += acc;
    }
  }
}

void mul_cache_ikj(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c.row_ptr(i);
    for (std::size_t l = 0; l < k; ++l) {
      const double aval = a(i, l);
      const double* brow = b.row_ptr(l);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void mul_blocked(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  constexpr std::size_t t = kBlockedTile;
  for (std::size_t i0 = 0; i0 < m; i0 += t) {
    const std::size_t i1 = std::min(i0 + t, m);
    for (std::size_t l0 = 0; l0 < k; l0 += t) {
      const std::size_t l1 = std::min(l0 + t, k);
      for (std::size_t j0 = 0; j0 < n; j0 += t) {
        const std::size_t j1 = std::min(j0 + t, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = c.row_ptr(i);
          for (std::size_t l = l0; l < l1; ++l) {
            const double aval = a(i, l);
            const double* brow = b.row_ptr(l);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aval * brow[j];
          }
        }
      }
    }
  }
}

void mul_transposed_b(const Matrix& a, const Matrix& b, Matrix& c) {
  const Matrix bt = b.transposed();
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* btrow = bt.row_ptr(j);
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) acc += arow[l] * btrow[l];
      c(i, j) += acc;
    }
  }
}

}  // namespace

std::string to_string(Kernel k) {
  switch (k) {
    case Kernel::kNaiveIjk: return "naive-ijk";
    case Kernel::kCacheIkj: return "cache-ikj";
    case Kernel::kBlocked: return "blocked";
    case Kernel::kTransposedB: return "transposed-b";
  }
  return "unknown";
}

void multiply_add(const Matrix& a, const Matrix& b, Matrix& c, Kernel kernel) {
  require(a.cols() == b.rows(), "multiply_add: inner dimensions differ");
  require(c.rows() == a.rows() && c.cols() == b.cols(),
          "multiply_add: C has wrong shape");
  switch (kernel) {
    case Kernel::kNaiveIjk: mul_naive_ijk(a, b, c); return;
    case Kernel::kCacheIkj: mul_cache_ikj(a, b, c); return;
    case Kernel::kBlocked: mul_blocked(a, b, c); return;
    case Kernel::kTransposedB: mul_transposed_b(a, b, c); return;
  }
  throw PreconditionError("multiply_add: unknown kernel");
}

Matrix multiply(const Matrix& a, const Matrix& b, Kernel kernel) {
  Matrix c(a.rows(), b.cols());
  multiply_add(a, b, c, kernel);
  return c;
}

std::uint64_t matmul_flops(std::size_t m, std::size_t k, std::size_t n) noexcept {
  return static_cast<std::uint64_t>(m) * k * n;
}

}  // namespace hpmm
