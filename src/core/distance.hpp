#pragma once

#include <cstdint>
#include <string>

#include "algorithms/parallel_matmul.hpp"
#include "analysis/bounds.hpp"

namespace hpmm {

/// Simulate one multiplication of random seeded n x n matrices with `impl`
/// over p processors and score its *exact measured* word count against the
/// communication lower bound evaluated at `model`'s memory footprint.
/// Throws PreconditionError when the implementation cannot run the shape
/// (divisibility constraints included).
DistanceFromOptimal distance_from_optimal(const ParallelMatmul& impl,
                                          const PerfModel& model,
                                          std::size_t n, std::size_t p,
                                          std::uint64_t seed = 42);

/// Registry lookup by name, then the same measurement. For cannon25d this
/// uses the registry's default replication c = 2; other factors go through
/// the (impl, model) overload with an explicitly constructed pair.
DistanceFromOptimal distance_from_optimal(const std::string& algorithm,
                                          std::size_t n, std::size_t p,
                                          const MachineParams& machine,
                                          std::uint64_t seed = 42);

}  // namespace hpmm
