#pragma once

#include "algorithms/parallel_matmul.hpp"

namespace hpmm {

/// The Gupta-Kumar (GK) variant of the DNS algorithm (Section 4.6) — the
/// paper's contribution. p = 2^{3q} processors (any 1 <= p <= n^3) arranged
/// as a p^{1/3} x p^{1/3} x p^{1/3} grid of *blocks*: the DNS data flow of
/// Section 4.5.1 with every single-element operation replaced by an
/// (n/p^{1/3}) x (n/p^{1/3}) block operation.
///
/// Stages:
///  1. distribute: A block (j, t) travels (0,j,t) -> (t,j,t), then is
///     broadcast along its k-line; B block (t, k) travels (0,t,k) -> (t,t,k),
///     then along its j-line;
///  2. every processor multiplies its block pair (n^3/p multiply-adds);
///  3. the p^{1/3} partial products on each i-line are summed to i = 0.
///
/// Paper models:
///   hypercube, naive broadcast (Eq. 7):
///     T_p = n^3/p + (5/3) t_s log p + (5/3) t_w n^2 p^{-2/3} log p
///   fully connected / CM-5 (Eq. 18):
///     T_p = n^3/p + t_s (log p + 2) + t_w n^2 p^{-2/3} (log p + 2)
///   Johnsson-Ho broadcast (Section 5.4.1) and all-port (Eq. 17) variants
///   are modeled collectives (see DESIGN.md).
class GkAlgorithm final : public ParallelMatmul {
 public:
  enum class Broadcast {
    kBinomial,    ///< naive one-to-all broadcast — Eq. 7 / Eq. 18
    kJohnssonHo,  ///< pipelined broadcast of [20] — Section 5.4.1 (modeled)
    kAllPort      ///< simultaneous all-port communication — Eq. 17 (modeled)
  };
  enum class Interconnect {
    kHypercube,      ///< the paper's primary architecture
    kFullyConnected  ///< the CM-5 view of Section 9 (one-hop moves)
  };

  explicit GkAlgorithm(Broadcast broadcast = Broadcast::kBinomial,
                       Interconnect interconnect = Interconnect::kHypercube)
      : broadcast_(broadcast), interconnect_(interconnect) {}

  std::string name() const override;
  void check_applicable(std::size_t n, std::size_t p) const override;
  MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                   const MachineParams& params) const override;

  Broadcast broadcast() const noexcept { return broadcast_; }
  Interconnect interconnect() const noexcept { return interconnect_; }

 private:
  Broadcast broadcast_;
  Interconnect interconnect_;
};

}  // namespace hpmm
