#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Runner, SweepProducesModelPoints) {
  const auto pts = efficiency_sweep("cannon", 16, params(150, 3),
                                    {16, 32, 64, 128});
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& pt : pts) {
    EXPECT_EQ(pt.p, 16u);
    EXPECT_GT(pt.model_efficiency, 0.0);
    EXPECT_LT(pt.model_efficiency, 1.0);
    EXPECT_FALSE(pt.sim_efficiency.has_value());  // sim_n_limit = 0
  }
  // Efficiency grows with n.
  EXPECT_LT(pts.front().model_efficiency, pts.back().model_efficiency);
}

TEST(Runner, SweepSimulatesUpToLimit) {
  const auto pts = efficiency_sweep("cannon", 16, params(150, 3),
                                    {16, 32, 64}, /*sim_n_limit=*/32);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_TRUE(pts[0].sim_efficiency.has_value());
  EXPECT_TRUE(pts[1].sim_efficiency.has_value());
  EXPECT_FALSE(pts[2].sim_efficiency.has_value());
  // Simulated efficiency equals the model's (the simulation realises Eq. 3
  // exactly).
  EXPECT_NEAR(*pts[0].sim_efficiency, pts[0].model_efficiency, 1e-9);
}

TEST(Runner, SweepSkipsInapplicableOrders) {
  // p = 16 on Cannon needs 4 | n; 20 is kept (model-applicable), but only
  // simulated when divisible.
  const auto pts = efficiency_sweep("cannon", 16, params(150, 3),
                                    {20}, /*sim_n_limit=*/64);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].sim_efficiency.has_value());  // 4 divides 20
  const auto pts2 = efficiency_sweep("cannon", 16, params(150, 3),
                                     {21}, /*sim_n_limit=*/64);
  ASSERT_EQ(pts2.size(), 1u);
  EXPECT_FALSE(pts2[0].sim_efficiency.has_value());  // 4 does not divide 21
}

TEST(Runner, SweepDropsModelInapplicablePoints) {
  // n = 2, p = 16 violates p <= n^2.
  const auto pts = efficiency_sweep("cannon", 16, params(150, 3), {2, 16});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].n, 16u);
}

TEST(Runner, TableRendering) {
  const auto pts = efficiency_sweep("gk", 8, params(150, 3), {8, 16});
  const Table t = efficiency_table(pts, "gk");
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print_aligned(os);
  EXPECT_NE(os.str().find("E(model)"), std::string::npos);
}

TEST(Runner, CrossoverDetection) {
  // Construct two synthetic series crossing at n = 30.
  std::vector<EfficiencyPoint> a, b;
  for (std::size_t n : {10u, 20u, 30u, 40u}) {
    EfficiencyPoint pa, pb;
    pa.n = pb.n = n;
    pa.model_efficiency = 0.5;
    pb.model_efficiency = n < 30 ? 0.4 : 0.6;
    a.push_back(pa);
    b.push_back(pb);
  }
  const auto cross = crossover_order(a, b);
  ASSERT_TRUE(cross);
  EXPECT_EQ(*cross, 30u);
}

TEST(Runner, NoCrossoverWhenDominant) {
  std::vector<EfficiencyPoint> a, b;
  for (std::size_t n : {10u, 20u}) {
    EfficiencyPoint pa, pb;
    pa.n = pb.n = n;
    pa.model_efficiency = 0.9;
    pb.model_efficiency = 0.1;
    a.push_back(pa);
    b.push_back(pb);
  }
  EXPECT_FALSE(crossover_order(a, b).has_value());
}

TEST(Runner, CrossoverAlignsMismatchedOrders) {
  std::vector<EfficiencyPoint> a, b;
  for (std::size_t n : {8u, 16u, 24u}) {
    EfficiencyPoint pt;
    pt.n = n;
    pt.model_efficiency = 0.5;
    a.push_back(pt);
  }
  for (std::size_t n : {16u, 24u}) {
    EfficiencyPoint pt;
    pt.n = n;
    pt.model_efficiency = n == 16 ? 0.3 : 0.7;
    b.push_back(pt);
  }
  const auto cross = crossover_order(a, b);
  ASSERT_TRUE(cross);
  EXPECT_EQ(*cross, 24u);
}

}  // namespace
}  // namespace hpmm
