// Scalability study — run an isoefficiency analysis for one algorithm: how
// fast must the problem grow to keep your target efficiency as processors
// are added, what exponent does that imply, and where (if anywhere) the
// efficiency becomes unreachable.
//
//   ./scalability_study --algorithm=gk --efficiency=0.8 --ts=150 --tw=3

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/isoefficiency.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string name = args.get("algorithm", "gk");
  const double efficiency = args.get_double("efficiency", 0.8);
  MachineParams mp;
  mp.t_s = args.get_double("ts", 150.0);
  mp.t_w = args.get_double("tw", 3.0);

  const auto& reg = default_registry();
  if (!reg.contains(name)) {
    std::cerr << "unknown algorithm '" << name << "'; choose from:";
    for (const auto& n : reg.names()) std::cerr << ' ' << n;
    std::cerr << '\n';
    return 1;
  }
  const auto model = reg.model(name, mp);

  std::cout << "Scalability study: " << name << ", target E = " << efficiency
            << ", t_s = " << mp.t_s << ", t_w = " << mp.t_w << "\n\n";

  Table t({"p", "matrix order n", "problem size W = n^3", "W / p",
           "memory/proc (words)"});
  std::vector<double> ps;
  for (double p = 8; p <= 1e9; p *= 8) ps.push_back(p);
  std::size_t reachable = 0;
  for (double p : ps) {
    const auto n = iso_matrix_order(*model, p, efficiency);
    t.begin_row().add(format_si(p, 3));
    if (n) {
      ++reachable;
      const double w = (*n) * (*n) * (*n);
      t.add_num(*n, 4)
          .add(format_si(w, 3))
          .add(format_si(w / p, 3))
          .add(format_si(model->memory_per_proc(*n, p), 3));
    } else {
      t.add("unreachable").add("-").add("-").add("-");
    }
  }
  t.print_aligned(std::cout);

  const auto fit = fit_isoefficiency_exponent(*model, efficiency, ps);
  if (fit.points >= 2) {
    std::cout << "\nFitted isoefficiency exponent: W ~ p^"
              << format_number(fit.exponent, 3) << " over " << fit.points
              << " points (Table 1 asymptote: p^"
              << format_number(table1_asymptotic_exponent(name), 2)
              << " x polylog factors)\n";
  }
  if (reachable < ps.size()) {
    std::cout << "\nSome processor counts cannot reach E = " << efficiency
              << " — a concurrency limit or an efficiency ceiling (e.g. DNS's\n"
              << "1/(1 + 2(t_s + t_w)) cap, Section 5.3).\n";
  }
  std::cout << "\nW/p is the per-processor work: if it must grow with p (as it\n"
               "does for every formulation here), the machine cannot be kept\n"
               "efficient at constant memory per processor forever.\n";
  return 0;
}
