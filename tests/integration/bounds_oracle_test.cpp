// The bounds layer as a machine-checked oracle: every algorithm in the
// registry — present and future — must move at least the communication
// lower bound's word count at every shape it accepts, cannon25d's measured
// traffic must track the memory-dependent Theta(n^3/(p sqrt(M))) term as
// the replication factor c grows, and the perfect-strong-scaling range
// boundary must coincide with the replication ceiling observed in the
// simulator (the shift phase vanishing at the 3D corner).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algorithms/cannon_25d.hpp"
#include "analysis/bounds.hpp"
#include "analysis/perf_model.hpp"
#include "core/distance.hpp"
#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

// The measured word count is machine-independent (it counts payload words,
// not time), so one machine suffices for the oracle sweep.
const MachineParams kNcube = params(150.0, 3.0);

TEST(BoundsOracle, MeasuredWordsDominateTheBoundAcrossTheRegistry) {
  // Every registered formulation, every power-of-two shape it accepts,
  // two seeds: exact measured words >= the lower bound at the model's own
  // memory footprint. New registry entries are swept automatically; an
  // algorithm that beat the bound would be a bug in the accounting, the
  // bound, or physics.
  const AlgorithmRegistry& reg = default_registry();
  int points = 0;
  for (const std::string& name : reg.names()) {
    const ParallelMatmul& impl = reg.implementation(name);
    const auto model = reg.model(name, kNcube);
    for (const std::size_t n : {8u, 16u, 32u}) {
      for (std::size_t p = 1; p <= 512; p *= 2) {
        if (!impl.applicable(n, p)) continue;
        for (const std::uint64_t seed : {7u, 42u}) {
          const DistanceFromOptimal d =
              distance_from_optimal(impl, *model, n, p, seed);
          EXPECT_GE(d.measured_total_words, d.bound.total_words - 1e-6)
              << name << " n=" << n << " p=" << p << " seed=" << seed;
          EXPECT_GE(d.ratio, 1.0)
              << name << " n=" << n << " p=" << p << " seed=" << seed;
          ++points;
        }
      }
    }
  }
  // The grid must stay dense enough to mean something; with 14 algorithms
  // over 3 orders and 10 processor counts this sits far above the floor.
  EXPECT_GE(points, 60);
}

TEST(BoundsOracle, Cannon25dOracleAcrossReplicationFactors) {
  // The registry sweep only sees cannon25d at its default c = 2; the oracle
  // must also hold as replication grows, where the broadcast/reduce phases
  // dominate the traffic.
  struct Point {
    std::size_t c, q;
  };
  for (const Point pt : {Point{2, 2}, Point{2, 4}, Point{2, 8}, Point{4, 4},
                         Point{4, 8}}) {
    const std::size_t p = pt.c * pt.q * pt.q;
    const Cannon25DAlgorithm impl(pt.c);
    const Cannon25DModel model(kNcube, pt.c);
    for (const std::size_t n : {8u, 16u, 32u}) {
      if (!impl.applicable(n, p)) continue;
      const DistanceFromOptimal d = distance_from_optimal(impl, model, n, p);
      EXPECT_GE(d.measured_total_words, d.bound.total_words - 1e-6)
          << "c=" << pt.c << " n=" << n << " p=" << p;
      EXPECT_GE(d.ratio, 1.0) << "c=" << pt.c << " n=" << n << " p=" << p;
    }
  }
}

TEST(BoundsOracle, Cannon25dTrafficTracksTheMemoryDependentBound) {
  // Along the self-similar ray p/c^3 = 64 at n = 64 (so the shift round
  // count is constant and only the block size scales), the per-processor
  // measured words and the memory-dependent leading term n^3/(p sqrt(M))
  // both shrink ~4x per step; their ratio must stay in a narrow constant
  // band as c grows 2 -> 4 -> 8. This is PR 3's per-layer traffic result
  // restated against the bound: replication buys exactly the sqrt(M)
  // traffic reduction the theory promises, constants included.
  const double n = 64.0;
  struct Point {
    std::size_t c, p;
  };
  std::vector<double> track;
  double prev_pp = std::numeric_limits<double>::infinity();
  for (const Point pt : {Point{2, 512}, Point{4, 4096}, Point{8, 32768}}) {
    const Cannon25DAlgorithm impl(pt.c);
    const Cannon25DModel model(kNcube, pt.c);
    ASSERT_TRUE(impl.applicable(64, pt.p)) << "c=" << pt.c;
    const DistanceFromOptimal d =
        distance_from_optimal(impl, model, 64, pt.p, 42);
    const double words_pp = d.measured_total_words / static_cast<double>(pt.p);
    const double leading =
        n * n * n /
        (static_cast<double>(pt.p) * std::sqrt(d.bound.memory_words));
    EXPECT_LT(words_pp, prev_pp) << "c=" << pt.c;
    prev_pp = words_pp;
    track.push_back(words_pp / leading);
  }
  // Measured band at these points: 3.76, 3.94, 4.03.
  for (const double r : track) {
    EXPECT_GE(r, 3.0);
    EXPECT_LE(r, 4.5);
  }
  const double spread = *std::max_element(track.begin(), track.end()) /
                        *std::min_element(track.begin(), track.end());
  EXPECT_LE(spread, 1.15) << "traffic drifted off the mem-dependent bound";
}

TEST(BoundsOracle, StrongScalingBoundaryMatchesTheReplicationCeiling) {
  // n = 64, M = 192 words: strong_scaling_range(2.5D) = [64, 512]. Walking
  // p = 128 -> 256 -> 512 inside the range with the memory-filling
  // replication c = pM/(3n^2) = p/64, per-processor traffic keeps falling
  // and the Cannon shift phase — the term the strong-scaling argument
  // scales as 1/sqrt(c) — shrinks to exactly zero at p_max, where
  // c = p^{1/3} turns the formulation purely 3D. Past p_max the class
  // cannot continue: the next memory-filling c violates its own p >= c^3
  // feasibility floor. The analytic boundary and the simulated mechanism
  // agree.
  const StrongScalingRange range =
      strong_scaling_range(BoundsClass::k25D, 64.0, 192.0);
  ASSERT_DOUBLE_EQ(range.p_min, 64.0);
  ASSERT_DOUBLE_EQ(range.p_max, 512.0);

  Rng rng(42);
  const Matrix a = random_matrix(64, 64, rng);
  const Matrix b = random_matrix(64, 64, rng);

  double prev_pp = std::numeric_limits<double>::infinity();
  for (const std::size_t p : {128u, 256u, 512u}) {
    const std::size_t c = p / 64;  // = pM/(3n^2): fills the 192-word memory
    const Cannon25DAlgorithm impl(c);
    ASSERT_TRUE(impl.applicable(64, p)) << "p=" << p;
    const RunReport report = impl.run(a, b, p, kNcube).report;

    const double words_pp =
        static_cast<double>(report.total_words) / static_cast<double>(p);
    EXPECT_LT(words_pp, prev_pp) << "p=" << p;
    prev_pp = words_pp;

    // Shift traffic is 2(sqrt(p/c^3) - 1) rounds of cn^2/p-word blocks on
    // each processor; zero exactly at the 3D corner p = p_max.
    std::uint64_t shift_words = 0;
    for (const PhaseBreakdown& ph : report.phases) {
      if (ph.name == "shift") shift_words += ph.words;
    }
    const double q_over_c = std::sqrt(static_cast<double>(p) /
                                      static_cast<double>(c * c * c));
    const auto expected =
        static_cast<std::uint64_t>(2.0 * (q_over_c - 1.0) * (c * 64.0 * 64.0 /
                                                             p) *
                                   static_cast<double>(p));
    EXPECT_EQ(shift_words, expected) << "p=" << p;
    if (static_cast<double>(p) == range.p_max) {
      EXPECT_EQ(shift_words, 0u) << "shift traffic survived the 3D corner";
    } else {
      EXPECT_GT(shift_words, 0u) << "p=" << p;
    }
  }

  // One doubling past p_max: memory-filling c = 16 needs p >= 16^3 = 4096,
  // but the memory-filling processor count is only 1024 — infeasible, so
  // perfect strong scaling ends at p_max by the same ceiling the range
  // formula encodes.
  const Cannon25DModel beyond(kNcube, 16);
  EXPECT_GT(beyond.min_procs(64.0), 1024.0);
}

}  // namespace
}  // namespace hpmm
