#include "sim/report.hpp"

#include "util/table.hpp"

namespace hpmm {

std::string RunReport::summary() const {
  std::string s = algorithm + ": n=" + std::to_string(n) +
                  " p=" + std::to_string(p) +
                  " T_p=" + format_number(t_parallel) +
                  " S=" + format_number(speedup()) +
                  " E=" + format_number(efficiency()) +
                  " T_o=" + format_number(total_overhead());
  if (faults.any()) s += " faults[" + faults.summary() + "]";
  return s;
}

}  // namespace hpmm
