// Golden driver for the `hpmm bounds` scoreboard (DESIGN.md §14): the
// analytic table over the whole registry at a memory budget that makes the
// strong-scaling columns non-trivial, then the measured scoreboard at a
// DNS/GK-territory point where the simulator runs and the distance ratios
// are pinned. Byte-compared against tests/golden/bounds_table.txt.

#include <iostream>
#include <vector>

#include "tools/commands.hpp"

namespace {

int dispatch_line(std::vector<const char*> argv) {
  const hpmm::CliArgs args(static_cast<int>(argv.size()), argv.data());
  return hpmm::tools::dispatch(args, std::cout, std::cerr);
}

}  // namespace

int main() {
  // n = 64 with M = 192 words: the 2.5D strong-scaling range is [64, 512]
  // and Cannon's memory-dependent floor is non-zero.
  std::cout << "== bounds: registry floors at n=64, p=64, M=192 ==\n";
  int rc = dispatch_line(
      {"hpmm", "bounds", "--n=64", "--p=64", "--memory=192"});
  if (rc != 0) return rc;

  // n = 16, p = 512 is 3D territory: DNS and the GK family simulate, and
  // the measured columns pin each one's distance-from-optimal ratio.
  std::cout << "\n== bounds: measured scoreboard at n=16, p=512, M=48 ==\n";
  rc = dispatch_line({"hpmm", "bounds", "--n=16", "--p=512", "--memory=48",
                      "--measured=1"});
  return rc;
}
