#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "serve/request.hpp"

namespace hpmm {

/// Per-tenant circuit breaker over virtual time. Closed until `threshold`
/// consecutive final failures, then open (every arrival rejected) for
/// `cooldown` virtual-time units, then half-open: exactly one probe request
/// is admitted, and its outcome closes the breaker again or re-opens it for
/// another cooldown. Only *final* outcomes feed the breaker — a retry that
/// eventually succeeds counts as one success.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(unsigned threshold, double cooldown);

  /// Whether a request arriving at `now` may proceed: closed, or half-open
  /// (cooldown elapsed) with no probe in flight.
  bool can_admit(double now) const noexcept;

  /// Commit an admission decided by can_admit: performs the open ->
  /// half-open transition and reserves the half-open probe. Kept separate
  /// from can_admit so a request the breaker would pass but a later
  /// admission check rejects does not consume the probe.
  void note_admitted(double now);

  /// can_admit + note_admitted in one step.
  bool admit(double now);

  void record_success();
  void record_failure(double now);

  /// The state an arrival at `now` would observe (cooldown expiry included).
  State state(double now) const noexcept;

  unsigned consecutive_failures() const noexcept { return failures_; }
  /// Times the breaker transitioned to open (initial trips and re-trips).
  std::uint64_t trips() const noexcept { return trips_; }
  /// Whether the half-open probe has been handed out and is unresolved.
  bool probe_in_flight() const noexcept { return probe_in_flight_; }

 private:
  unsigned threshold_;
  double cooldown_;
  State state_ = State::kClosed;
  unsigned failures_ = 0;
  double opened_at_ = 0.0;
  bool probe_in_flight_ = false;
  std::uint64_t trips_ = 0;
};

/// "closed", "open" or "half_open" — the journal's breaker-state tokens.
const char* to_string(CircuitBreaker::State state) noexcept;

/// Admission limits; see ServeOptions for the serving-level defaults.
struct AdmissionConfig {
  std::size_t queue_capacity = 16;  ///< admitted-but-unfinished, server-wide
  std::size_t tenant_quota = 8;     ///< admitted-but-unfinished, per tenant
  unsigned breaker_threshold = 3;   ///< consecutive failures that trip
  double breaker_cooldown = 50000.0;  ///< virtual time open before half-open
};

/// Arrival-time gate combining the per-tenant circuit breakers with bounded
/// admitted-work accounting. Checks run in a fixed order — breaker, then
/// server-wide queue bound, then tenant quota — so a rejection's recorded
/// reason is deterministic. An admitted request holds one unit of queue and
/// quota until its *final* outcome (retries keep the slot), which is also
/// when its success or failure feeds the tenant's breaker.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// kOk — and the request's queue/quota units reserved — or the rejection
  /// to record.
  ServeOutcome try_admit(const std::string& tenant, double now);

  /// Final outcome of a previously admitted request: releases its units and
  /// feeds the tenant's breaker.
  void on_final(const std::string& tenant, double now, bool success);

  std::size_t in_flight() const noexcept { return in_flight_; }
  std::size_t tenant_in_flight(const std::string& tenant) const;

  /// The tenant's breaker, or null before its first arrival.
  const CircuitBreaker* breaker(const std::string& tenant) const;

 private:
  CircuitBreaker& breaker_for(const std::string& tenant);

  AdmissionConfig config_;
  std::size_t in_flight_ = 0;
  std::map<std::string, std::size_t> tenant_in_flight_;
  std::map<std::string, CircuitBreaker> breakers_;
};

}  // namespace hpmm
