#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams test_params(double ts = 10.0, double tw = 2.0) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

Matrix payload(std::size_t words) { return Matrix(1, words); }

std::shared_ptr<FaultPlan> make_plan() { return std::make_shared<FaultPlan>(); }

TEST(FaultPlan, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlan, AnyProbabilityActivates) {
  FaultPlan plan;
  plan.drop_prob = 0.01;
  EXPECT_TRUE(plan.active());
  plan = FaultPlan{};
  plan.corrupt_prob = 0.5;
  EXPECT_TRUE(plan.active());
  plan = FaultPlan{};
  plan.delay_prob = 1.0;
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, StragglersAndFailstopsActivate) {
  FaultPlan plan;
  plan.stragglers.push_back({2, 3.0});
  EXPECT_TRUE(plan.active());
  plan = FaultPlan{};
  plan.failstops.push_back({0, 100.0});
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, UnitFactorStragglerIsNotAFault) {
  FaultPlan plan;
  plan.stragglers.push_back({2, 1.0});
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlan, AbftAloneDoesNotActivate) {
  // ABFT changes what algorithms send, not what the machine does to
  // messages, so it must not force the injector (and its costs) into being.
  FaultPlan plan;
  plan.abft = AbftMode::kCorrect;
  EXPECT_FALSE(plan.active());
}

TEST(FaultInjector, RejectsMalformedPlans) {
  auto bad_prob = make_plan();
  bad_prob->drop_prob = 1.5;
  EXPECT_THROW(FaultInjector{bad_prob}, PreconditionError);

  auto negative = make_plan();
  negative->corrupt_prob = -0.1;
  EXPECT_THROW(FaultInjector{negative}, PreconditionError);

  auto slow = make_plan();
  slow->stragglers.push_back({0, 0.5});  // faster-than-nominal is not a fault
  EXPECT_THROW(FaultInjector{slow}, PreconditionError);

  auto rto = make_plan();
  rto->rto_factor = 0.0;
  EXPECT_THROW(FaultInjector{rto}, PreconditionError);
}

TEST(FaultInjector, FateIsDeterministic) {
  auto plan = make_plan();
  plan->seed = 7;
  plan->drop_prob = 0.3;
  plan->duplicate_prob = 0.2;
  plan->corrupt_prob = 0.1;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  const Message m(0, 1, 4, payload(16));
  for (std::uint64_t round = 1; round <= 40; ++round) {
    for (unsigned attempt = 0; attempt < 3; ++attempt) {
      const MessageFate fa = a.fate(m, round, attempt, 42.0);
      const MessageFate fb = b.fate(m, round, attempt, 42.0);
      EXPECT_EQ(fa.dropped, fb.dropped);
      EXPECT_EQ(fa.duplicated, fb.duplicated);
      EXPECT_EQ(fa.corrupted, fb.corrupted);
      EXPECT_DOUBLE_EQ(fa.delay, fb.delay);
    }
  }
}

TEST(FaultInjector, FateDependsOnSeed) {
  auto p1 = make_plan();
  p1->seed = 1;
  p1->drop_prob = 0.5;
  auto p2 = std::make_shared<FaultPlan>(*p1);
  p2->seed = 2;
  const FaultInjector a(p1), b(p2);
  const Message m(0, 1, 4, payload(16));
  int differing = 0;
  for (std::uint64_t round = 1; round <= 100; ++round) {
    if (a.fate(m, round, 0, 1.0).dropped != b.fate(m, round, 0, 1.0).dropped) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, EmpiricalDropRateTracksPlan) {
  auto plan = make_plan();
  plan->seed = 99;
  plan->drop_prob = 0.25;
  const FaultInjector inj(plan);
  int drops = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    // Vary round and endpoints so each draw is an independent hash.
    const Message m(static_cast<ProcId>(i % 16),
                    static_cast<ProcId>((i + 1) % 16), i % 7, payload(4));
    if (inj.fate(m, static_cast<std::uint64_t>(i / 16 + 1), 0, 1.0).dropped) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / trials;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultInjector, DelayScalesWithBaseCost) {
  auto plan = make_plan();
  plan->delay_prob = 1.0;
  plan->delay_factor = 2.5;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  const MessageFate fate = inj.fate(m, 1, 0, 40.0);
  EXPECT_DOUBLE_EQ(fate.delay, 100.0);
}

TEST(FaultInjector, SlowdownAndFailTimeLookups) {
  auto plan = make_plan();
  plan->stragglers.push_back({3, 2.0});
  plan->failstops.push_back({1, 500.0});
  const FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.slowdown(3), 2.0);
  EXPECT_DOUBLE_EQ(inj.slowdown(0), 1.0);
  ASSERT_TRUE(inj.fail_time(1).has_value());
  EXPECT_DOUBLE_EQ(*inj.fail_time(1), 500.0);
  EXPECT_FALSE(inj.fail_time(3).has_value());
}

TEST(CorruptMessageWord, FlipsExactlyOneElement) {
  Message m(0, 1, 1, payload(8));
  for (std::size_t i = 0; i < 8; ++i) m.blocks.front()(0, i) = double(i + 1);
  Message orig = m;
  corrupt_message_word(m, 5);
  int changed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (m.blocks.front()(0, i) != orig.blocks.front()(0, i)) ++changed;
  }
  EXPECT_EQ(changed, 1);
  EXPECT_NE(m.blocks.front()(0, 5), orig.blocks.front()(0, 5));
  // Mantissa-bit flip: the value stays finite (no NaN/Inf surprises).
  EXPECT_TRUE(std::isfinite(m.blocks.front()(0, 5)));
}

TEST(SimMachineFaults, StragglerSlowsComputeByFactor) {
  auto plan = make_plan();
  plan->stragglers.push_back({1, 3.0});
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  m.compute(0, 100.0);
  m.compute(1, 100.0);
  EXPECT_DOUBLE_EQ(m.clock(0), 100.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 300.0);
  // flops counters record useful work, not wall-clock.
  EXPECT_EQ(m.stats(1).flops, 100u);
}

TEST(SimMachineFaults, StragglerSlowsItsSends) {
  auto plan = make_plan();
  plan->stragglers.push_back({0, 2.0});
  MachineParams mp = test_params();  // t_s=10, t_w=2
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));  // nominal cost 20, straggler x2
  m.exchange(std::move(msgs));
  EXPECT_DOUBLE_EQ(m.clock(0), 40.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 40.0);
}

TEST(SimMachineFaults, FailStopRaisesOnCompute) {
  auto plan = make_plan();
  plan->failstops.push_back({0, 150.0});
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  m.compute(0, 100.0);  // clock 100 < 150: still alive
  m.compute(0, 100.0);  // clock 200 >= 150 at the next use
  try {
    m.compute(0, 1.0);
    FAIL() << "expected ProcessorFailure";
  } catch (const ProcessorFailure& failure) {
    EXPECT_EQ(failure.pid(), 0u);
    EXPECT_DOUBLE_EQ(failure.at_time(), 150.0);
  }
}

TEST(SimMachineFaults, FailStopRaisesOnExchange) {
  auto plan = make_plan();
  plan->failstops.push_back({1, 50.0});
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  m.compute(1, 60.0);  // push pid 1 past its fail time
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));
  EXPECT_THROW(m.exchange(std::move(msgs)), ProcessorFailure);
}

TEST(SimMachineFaults, FailStopPidOutOfRangeRejected) {
  auto plan = make_plan();
  plan->failstops.push_back({9, 50.0});
  MachineParams mp = test_params();
  mp.faults = plan;
  EXPECT_THROW(SimMachine(std::make_shared<Hypercube>(1u), mp),
               PreconditionError);
}

TEST(SimMachineFaults, DropsAreRetransmittedAndCharged) {
  auto plan = make_plan();
  plan->seed = 3;
  plan->drop_prob = 1.0;   // first attempt always drops...
  plan->max_retries = 1;   // ...so cap at one retry and make it succeed
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));
  // Every attempt drops and the retry budget is exhausted: the reliable
  // protocol reports the message presumed lost as an internal error.
  EXPECT_THROW(m.exchange(std::move(msgs)), InternalError);
}

TEST(SimMachineFaults, ModerateDropRateDeliversWithRetries) {
  auto plan = make_plan();
  plan->seed = 11;
  plan->drop_prob = 0.4;
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(3u), mp);
  // Enough rounds that some transmission drops with high probability.
  for (int round = 0; round < 12; ++round) {
    std::vector<Message> msgs;
    for (ProcId src = 0; src < 8; ++src) {
      msgs.emplace_back(src, src ^ 1u, round + 1, payload(4));
    }
    m.exchange(std::move(msgs));
    for (ProcId dst = 0; dst < 8; ++dst) {
      EXPECT_TRUE(m.has_message(dst, round + 1));
      (void)m.receive(dst, round + 1);
    }
  }
  EXPECT_GT(m.fault_stats().transmissions_dropped, 0u);
  EXPECT_EQ(m.fault_stats().retransmissions,
            m.fault_stats().transmissions_dropped);
  EXPECT_EQ(m.fault_stats().messages_lost, 0u);
  m.assert_clean_run();
}

TEST(SimMachineFaults, UnreliableModeLosesMessages) {
  auto plan = make_plan();
  plan->seed = 5;
  plan->drop_prob = 1.0;
  plan->reliable = false;
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));
  m.exchange(std::move(msgs));
  EXPECT_FALSE(m.has_message(1, 1));
  EXPECT_EQ(m.fault_stats().messages_lost, 1u);
}

TEST(SimMachineFaults, DuplicatesAreSuppressedInReliableMode) {
  auto plan = make_plan();
  plan->seed = 2;
  plan->duplicate_prob = 1.0;
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(1u), mp);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));
  m.exchange(std::move(msgs));
  (void)m.receive(1, 1);
  EXPECT_FALSE(m.has_message(1, 1));  // the duplicate never reached the inbox
  EXPECT_EQ(m.fault_stats().duplicates_suppressed, 1u);
  m.assert_clean_run();
}

TEST(SimMachineFaults, ReportCarriesFaultCounters) {
  auto plan = make_plan();
  plan->seed = 11;
  plan->drop_prob = 0.4;
  MachineParams mp = test_params();
  mp.faults = plan;
  SimMachine m(std::make_shared<Hypercube>(2u), mp);
  for (int round = 0; round < 10; ++round) {
    std::vector<Message> msgs;
    for (ProcId src = 0; src < 4; ++src) {
      msgs.emplace_back(src, src ^ 1u, 1, payload(4));
    }
    m.exchange(std::move(msgs));
    for (ProcId dst = 0; dst < 4; ++dst) (void)m.receive(dst, 1);
  }
  const RunReport report = m.report("test", 4, 64.0);
  EXPECT_EQ(report.faults.retransmissions, m.fault_stats().retransmissions);
  EXPECT_GT(report.faults.retransmissions, 0u);
  EXPECT_NE(report.summary().find("faults["), std::string::npos);
}

}  // namespace
}  // namespace hpmm
