#pragma once

#include "algorithms/parallel_matmul.hpp"

namespace hpmm {

/// 2.5D memory-replicated Cannon formulation (Ballard-Demmel-Holtz-Lipshitz;
/// Solomonik & Demmel): p = c * q^2 processors arranged as a q x q x c grid
/// with q = sqrt(p/c). Layer 0 holds the operands in Cannon's q x q block
/// layout; a binomial broadcast along each replication fiber gives every
/// layer a copy, each layer runs q/c of Cannon's q multiply-shift steps from
/// a staggered initial alignment, and a binomial reduction sums the partial
/// C contributions back onto layer 0.
///
/// The replication factor c interpolates between 2D Cannon (c = 1, this
/// algorithm degenerates to exactly Eq. 3) and a 3D formulation
/// (c = p^{1/3}): per-layer communication volume drops from 2 t_w n^2/sqrt(p)
/// to 2 t_w n^2/sqrt(pc) at the price of Theta(c n^2/p) storage per
/// processor and 3 log2(c) extra broadcast/reduce rounds.
///
/// Model: T_p = n^3/p + (3 log2 c + 2 sqrt(p/c^3)) (t_s + t_w c n^2/p),
/// exact for the simulation under one-port cut-through routing (see
/// Cannon25DModel and DESIGN.md).
class Cannon25DAlgorithm final : public ParallelMatmul {
 public:
  /// `c` is the memory-replication factor (power of two; c = 1 degenerates
  /// to plain Cannon on one layer).
  explicit Cannon25DAlgorithm(std::size_t c = 2) : c_(c) {}

  std::string name() const override { return "cannon25d"; }
  void check_applicable(std::size_t n, std::size_t p) const override;
  MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                   const MachineParams& params) const override;

  std::size_t replication() const noexcept { return c_; }

 private:
  std::size_t c_;
};

}  // namespace hpmm
