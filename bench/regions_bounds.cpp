// Golden driver for the `regions --with-bounds=1` overlay: the Figure 1
// best-algorithm map with communication-optimal cells (within 4x of the
// lower bound at the winner's own memory footprint) upper-cased. The
// default Figure 1 golden (fig1_regions) stays untouched — this driver
// pins the overlay variant byte for byte in tests/golden/regions_bounds.txt.

#include <iostream>
#include <vector>

#include "tools/commands.hpp"

int main() {
  const std::vector<const char*> argv = {"hpmm", "regions", "--with-bounds=1"};
  const hpmm::CliArgs args(static_cast<int>(argv.size()), argv.data());
  return hpmm::tools::dispatch(args, std::cout, std::cerr);
}
