#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace hpmm {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8Alone) {
  EXPECT_EQ(json_escape("\xc3\xa9"), "\xc3\xa9");  // e-acute survives
}

TEST(JsonQuote, WrapsInDoubleQuotes) {
  EXPECT_EQ(json_quote("x"), "\"x\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
}

TEST(JsonNumber, RoundTripsDoubles) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(std::stod(json_number(0.1)), 0.1);
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonValid, AcceptsScalars) {
  EXPECT_TRUE(json_valid("null"));
  EXPECT_TRUE(json_valid("true"));
  EXPECT_TRUE(json_valid("false"));
  EXPECT_TRUE(json_valid("0"));
  EXPECT_TRUE(json_valid("-1.5e+10"));
  EXPECT_TRUE(json_valid("\"text\""));
}

TEST(JsonValid, AcceptsNestedStructures) {
  EXPECT_TRUE(json_valid("{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}"));
  EXPECT_TRUE(json_valid("  [ ]  "));
  EXPECT_TRUE(json_valid("{}"));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("{\"a\" 1}"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("1 2"));  // trailing garbage
}

TEST(JsonValid, RejectsNonJsonNumberTokens) {
  // strtod accepts all of these; JSON does not.
  EXPECT_FALSE(json_valid("inf"));
  EXPECT_FALSE(json_valid("nan"));
  EXPECT_FALSE(json_valid("+1"));
  EXPECT_FALSE(json_valid("1."));
  EXPECT_FALSE(json_valid(".5"));
  EXPECT_FALSE(json_valid("0x10"));
  EXPECT_FALSE(json_valid("01"));
}

TEST(JsonValid, RejectsBadStringEscapes) {
  EXPECT_FALSE(json_valid("\"\\x41\""));
  EXPECT_FALSE(json_valid("\"\\u12\""));
  EXPECT_FALSE(json_valid(std::string("\"a\nb\"")));  // raw control char
}

TEST(JsonValid, EscapedOutputIsAlwaysValid) {
  std::string evil;
  for (int c = 0; c < 0x20; ++c) evil.push_back(static_cast<char>(c));
  evil += "\"\\ normal";
  EXPECT_TRUE(json_valid(json_quote(evil)));
}

}  // namespace
}  // namespace hpmm
