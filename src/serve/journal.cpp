#include "serve/journal.hpp"

#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace hpmm {

const char* to_string(JournalKind kind) noexcept {
  switch (kind) {
    case JournalKind::kArrival: return "arrival";
    case JournalKind::kPlanCacheHit: return "plan_cache_hit";
    case JournalKind::kPlanCacheMiss: return "plan_cache_miss";
    case JournalKind::kAdmit: return "admit";
    case JournalKind::kRejectInvalid: return "reject_invalid";
    case JournalKind::kRejectInfeasible: return "reject_infeasible";
    case JournalKind::kRejectBreaker: return "reject_breaker";
    case JournalKind::kRejectQueueFull: return "reject_queue_full";
    case JournalKind::kRejectQuota: return "reject_quota";
    case JournalKind::kDispatch: return "dispatch";
    case JournalKind::kRetry: return "retry";
    case JournalKind::kDeadlineAbort: return "deadline_abort";
    case JournalKind::kBreakerOpen: return "breaker_open";
    case JournalKind::kBreakerHalfOpen: return "breaker_half_open";
    case JournalKind::kBreakerClose: return "breaker_close";
    case JournalKind::kComplete: return "complete";
  }
  return "unknown";
}

const char* journal_value_key(JournalKind kind) noexcept {
  switch (kind) {
    case JournalKind::kAdmit: return "deadline";
    case JournalKind::kRetry: return "backoff";
    case JournalKind::kDeadlineAbort: return "deadline";
    case JournalKind::kBreakerOpen: return "cooldown";
    case JournalKind::kComplete: return "latency";
    default: return "";
  }
}

void EventJournal::append(JournalEvent event) {
  event.seq = events_.size();
  events_.push_back(std::move(event));
}

std::vector<JournalEvent> EventJournal::of_kind(JournalKind kind) const {
  std::vector<JournalEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<JournalEvent> EventJournal::of_tenant(
    const std::string& tenant) const {
  std::vector<JournalEvent> out;
  for (const auto& e : events_) {
    if (e.tenant == tenant) out.push_back(e);
  }
  return out;
}

void EventJournal::write_jsonl(std::ostream& os) const {
  for (const auto& e : events_) {
    os << "{\"seq\":" << e.seq << ",\"t\":" << json_number(e.time)
       << ",\"event\":" << json_quote(to_string(e.kind));
    if (e.request >= 0) os << ",\"request\":" << e.request;
    if (!e.tenant.empty()) os << ",\"tenant\":" << json_quote(e.tenant);
    if (e.slot >= 0) os << ",\"slot\":" << e.slot;
    if (e.attempt >= 0) os << ",\"attempt\":" << e.attempt;
    if (e.has_value) {
      const char* key = journal_value_key(e.kind);
      os << ",\"" << (*key != '\0' ? key : "value")
         << "\":" << json_number(e.value);
    }
    if (!e.cause.empty()) os << ",\"cause\":" << json_quote(e.cause);
    if (!e.detail.empty()) os << ",\"detail\":" << json_quote(e.detail);
    os << "}\n";
  }
}

std::string EventJournal::jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

}  // namespace hpmm
