#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace hpmm {

/// One timed activity on one simulated processor, recorded when tracing is
/// enabled on a SimMachine.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kCompute,      ///< charged multiply-add work
    kSend,         ///< busy transmitting
    kWait,         ///< idle waiting for an arrival or barrier
    kModeledComm,  ///< a modeled collective's charged span
    kRetry,        ///< timeout + retransmission forced by a dropped message
  };
  ProcId pid = 0;
  Kind kind = Kind::kCompute;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t words = 0;  ///< payload words for kSend/kModeledComm

  double duration() const noexcept { return end - start; }
};

const char* to_string(TraceEvent::Kind kind) noexcept;

/// A recorded execution: per-processor timelines plus summary queries and an
/// ASCII Gantt rendering — the visual counterpart of the RunReport numbers.
class Trace {
 public:
  Trace() = default;
  Trace(std::size_t procs, std::vector<TraceEvent> events);

  std::size_t procs() const noexcept { return procs_; }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// Events of one processor, in time order.
  std::vector<TraceEvent> events_of(ProcId pid) const;

  /// End of the latest event (the traced T_p).
  double span() const noexcept;

  /// Total time pid spent in `kind`.
  double total(ProcId pid, TraceEvent::Kind kind) const;

  /// Fraction of [0, span()] that pid spent computing.
  double utilization(ProcId pid) const;

  /// ASCII Gantt chart: one row per processor, `width` time bins; the
  /// dominant activity of each bin is drawn as #=compute, >=send, .=wait,
  /// ~=modeled comm, space=nothing recorded.
  void print_gantt(std::ostream& os, std::size_t width = 72,
                   std::size_t max_procs = 32) const;

 private:
  std::size_t procs_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace hpmm
