#pragma once

#include "topology/topology.hpp"

namespace hpmm {

/// Logical 2^q x 2^q x 2^q processor arrangement used by the DNS and GK
/// formulations (Sections 4.5 / 4.6): processor r sits at (i, j, k) with
/// r = i * 2^{2q} + j * 2^q + k. Since each coordinate occupies q address
/// bits, every axis-aligned line of the grid is a q-dimensional subcube of
/// the 3q-dimensional hypercube — which is what makes the broadcasts and
/// reductions of DNS/GK cheap.
class Grid3D {
 public:
  /// Grid with side 2^q (p = 2^{3q} processors).
  explicit Grid3D(unsigned q);

  /// Grid with exactly p processors; throws unless p = 2^{3q}.
  static Grid3D with_procs(std::size_t p);

  unsigned q() const noexcept { return q_; }
  std::size_t side() const noexcept { return std::size_t{1} << q_; }
  std::size_t size() const noexcept { return std::size_t{1} << (3 * q_); }

  /// (i, j, k) coordinates of a rank.
  struct Coord {
    std::size_t i, j, k;
    friend bool operator==(const Coord&, const Coord&) noexcept = default;
  };
  Coord coords(ProcId node) const;

  /// Rank of (i, j, k).
  ProcId rank(std::size_t i, std::size_t j, std::size_t k) const;

  /// All ranks along the i axis through (.., j, k), ascending in i.
  std::vector<ProcId> line_i(std::size_t j, std::size_t k) const;
  /// All ranks along the j axis through (i, .., k), ascending in j.
  std::vector<ProcId> line_j(std::size_t i, std::size_t k) const;
  /// All ranks along the k axis through (i, j, ..), ascending in k.
  std::vector<ProcId> line_k(std::size_t i, std::size_t j) const;

 private:
  unsigned q_;
};

}  // namespace hpmm
