#include "serve/plan_cache.hpp"

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {

std::string plan_cache_key(const TenantRequest& request,
                           const MachineParams& machine) {
  std::string key = request.algo + "|" + std::to_string(request.n) + "|" +
                    std::to_string(request.p) + "|" + machine.label + "|" +
                    json_number(machine.t_s) + "|" + json_number(machine.t_w) +
                    "|" + json_number(machine.t_h) + "|" +
                    std::to_string(static_cast<int>(machine.ports));
  return key;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

const ServicePlan* PlanCache::lookup(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  entries_.splice(entries_.begin(), entries_, it->second);
  return &entries_.front().second;
}

void PlanCache::insert(const std::string& key, ServicePlan plan) {
  // Capacity 0 is a pass-through: nothing is ever stored, so there is
  // nothing to evict (inserting then evicting the entry itself would churn
  // the list for no benefit) and every lookup is an honest miss.
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
  }
  entries_.emplace_front(key, std::move(plan));
  index_[key] = entries_.begin();
}

double PlanCache::hit_rate() const noexcept {
  const std::uint64_t lookups = hits_ + misses_;
  return lookups > 0
             ? static_cast<double>(hits_) / static_cast<double>(lookups)
             : 0.0;
}

}  // namespace hpmm
