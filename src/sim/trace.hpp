#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace hpmm {

/// One timed activity on one simulated processor, recorded when tracing is
/// enabled on a SimMachine.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kCompute,      ///< charged multiply-add work
    kSend,         ///< busy transmitting
    kWait,         ///< idle waiting for an arrival or barrier
    kModeledComm,  ///< a modeled collective's charged span
    kRetry,        ///< timeout + retransmission forced by a dropped message
  };
  ProcId pid = 0;
  Kind kind = Kind::kCompute;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t words = 0;  ///< payload words for kSend/kModeledComm
  /// Index into Trace::phase_names(); 0 is the unattributed default phase.
  std::uint16_t phase = 0;

  double duration() const noexcept { return end - start; }
};

const char* to_string(TraceEvent::Kind kind) noexcept;

/// A recorded execution: per-processor timelines plus summary queries and an
/// ASCII Gantt rendering — the visual counterpart of the RunReport numbers.
class Trace {
 public:
  Trace() = default;
  Trace(std::size_t procs, std::vector<TraceEvent> events);
  /// As above with the phase-name table the events' phase ids index into;
  /// entry 0 names the unattributed default phase (conventionally "").
  Trace(std::size_t procs, std::vector<TraceEvent> events,
        std::vector<std::string> phase_names);

  std::size_t procs() const noexcept { return procs_; }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  const std::vector<std::string>& phase_names() const noexcept {
    return phase_names_;
  }
  /// Name of one phase id (validated).
  const std::string& phase_name(std::uint16_t phase) const;

  /// Events of one processor, in time order.
  std::vector<TraceEvent> events_of(ProcId pid) const;

  /// End of the latest event (the traced T_p).
  double span() const noexcept;

  /// Total time pid spent in `kind`.
  double total(ProcId pid, TraceEvent::Kind kind) const;

  /// Fraction of [0, span()] that pid spent computing.
  double utilization(ProcId pid) const;

  /// ASCII Gantt chart: one row per processor, `width` time bins; the
  /// dominant activity of each bin is drawn as #=compute, >=send, .=wait,
  /// ~=modeled comm, !=retry, space=nothing recorded.
  void print_gantt(std::ostream& os, std::size_t width = 72,
                   std::size_t max_procs = 32) const;

  /// Chrome-trace / Perfetto JSON export: one complete "X" duration event
  /// per TraceEvent (tid = simulated processor, name = phase when tagged,
  /// kind otherwise; words and phase under "args"), loadable in
  /// chrome://tracing or ui.perfetto.dev.
  void write_chrome(std::ostream& os) const;

 private:
  std::size_t procs_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::string> phase_names_{std::string()};
};

}  // namespace hpmm
