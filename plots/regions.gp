# Figures 1-3 reproduction: best-algorithm regions in the (p, n) plane.
# Usage:
#   ./build/bench/export_figures --outdir=results
#   gnuplot -e "datadir='results'; fig='fig1_regions'" plots/regions.gp
# region_code: 0 = none, 1 = GK (a), 2 = Berntsen (b), 3 = Cannon (c),
# 4 = DNS (d).

if (!exists("datadir")) datadir = 'results'
if (!exists("fig")) fig = 'fig1_regions'
set terminal pngcairo size 860,600
set output datadir.'/'.fig.'.png'
set datafile separator comma
set title fig.' — regions of superiority (1=GK 2=Berntsen 3=Cannon 4=DNS)'
set xlabel 'processors p'
set ylabel 'matrix order n'
set logscale xy
set palette defined (0 'grey90', 1 'web-blue', 2 'forest-green', 3 'orange', 4 'red')
set cbrange [0:4]
unset colorbox
plot datadir.'/'.fig.'.csv' using 1:2:3 with points pt 5 ps 0.6 palette notitle
