#include "matrix/checksum.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

Matrix counting_matrix(std::size_t r, std::size_t c) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m(i, j) = static_cast<double>(i * c + j + 1);
    }
  }
  return m;
}

TEST(Checksum, AugmentedShapeAndSums) {
  const Matrix m = counting_matrix(3, 4);
  const Matrix aug = with_checksums(m);
  ASSERT_EQ(aug.rows(), 4u);
  ASSERT_EQ(aug.cols(), 5u);
  for (std::size_t i = 0; i < 3; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(aug(i, j), m(i, j));
      row += m(i, j);
    }
    EXPECT_DOUBLE_EQ(aug(i, 4), row);
  }
  for (std::size_t j = 0; j < 4; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < 3; ++i) col += m(i, j);
    EXPECT_DOUBLE_EQ(aug(3, j), col);
  }
  // Corner: grand total via either path.
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) total += m(i, j);
  }
  EXPECT_DOUBLE_EQ(aug(3, 4), total);
}

TEST(Checksum, RoundTripStripsToOriginal) {
  const Matrix m = counting_matrix(5, 2);
  const Matrix back = strip_checksums(with_checksums(m));
  ASSERT_EQ(back.rows(), 5u);
  ASSERT_EQ(back.cols(), 2u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(back(i, j), m(i, j));
  }
}

TEST(Checksum, IntactBlockIsConsistent) {
  Matrix aug = with_checksums(counting_matrix(4, 4));
  const ChecksumVerdict v = verify_checksums(aug, /*correct=*/true);
  EXPECT_TRUE(v.consistent);
  EXPECT_FALSE(v.corrected);
}

TEST(Checksum, DetectsAndLocatesSingleCorruption) {
  Matrix aug = with_checksums(counting_matrix(4, 4));
  aug(2, 1) += 7.0;
  const ChecksumVerdict v = verify_checksums(aug, /*correct=*/false);
  EXPECT_FALSE(v.consistent);
  EXPECT_TRUE(v.correctable);
  EXPECT_FALSE(v.corrected);
  EXPECT_EQ(v.row, 2u);
  EXPECT_EQ(v.col, 1u);
}

TEST(Checksum, CorrectsInnerElementExactly) {
  // Integer-valued data: recomputation from the row sum is bit-exact.
  const Matrix original = counting_matrix(4, 4);
  Matrix aug = with_checksums(original);
  aug(2, 1) = -999.0;
  const ChecksumVerdict v = verify_checksums(aug, /*correct=*/true);
  EXPECT_TRUE(v.corrected);
  EXPECT_DOUBLE_EQ(aug(2, 1), original(2, 1));
  // The repaired block is consistent again.
  const ChecksumVerdict again = verify_checksums(aug, false);
  EXPECT_TRUE(again.consistent);
}

TEST(Checksum, CorrectsChecksumRowAndColumnEntries) {
  const Matrix original = counting_matrix(3, 3);
  {
    Matrix aug = with_checksums(original);
    const double good = aug(1, 3);
    aug(1, 3) += 5.0;  // row-checksum entry
    EXPECT_TRUE(verify_checksums(aug, true).corrected);
    EXPECT_DOUBLE_EQ(aug(1, 3), good);
  }
  {
    Matrix aug = with_checksums(original);
    const double good = aug(3, 2);
    aug(3, 2) -= 3.0;  // column-checksum entry
    EXPECT_TRUE(verify_checksums(aug, true).corrected);
    EXPECT_DOUBLE_EQ(aug(3, 2), good);
  }
  {
    Matrix aug = with_checksums(original);
    const double good = aug(3, 3);
    aug(3, 3) *= 2.0;  // grand-total corner
    EXPECT_TRUE(verify_checksums(aug, true).corrected);
    EXPECT_DOUBLE_EQ(aug(3, 3), good);
  }
}

TEST(Checksum, MultiElementDamageDetectedNotCorrectable) {
  Matrix aug = with_checksums(counting_matrix(4, 4));
  aug(0, 0) += 1.0;
  aug(2, 3) += 1.0;
  const ChecksumVerdict v = verify_checksums(aug, /*correct=*/true);
  EXPECT_FALSE(v.consistent);
  EXPECT_FALSE(v.correctable);
  EXPECT_FALSE(v.corrected);
}

TEST(Checksum, LinearityThroughSums) {
  // with_checksums(A) + with_checksums(B) == with_checksums(A + B): augmented
  // blocks can be summed in a reduction tree and verified once at the root.
  Rng rng(2024);
  const Matrix a = random_matrix(6, 6, rng);
  const Matrix b = random_matrix(6, 6, rng);
  Matrix lhs = with_checksums(a);
  lhs += with_checksums(b);
  Matrix ab = a;
  ab += b;
  const Matrix rhs = with_checksums(ab);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-9);
    }
  }
  // And the sum still verifies as consistent.
  EXPECT_TRUE(verify_checksums(lhs, false).consistent);
}

TEST(Checksum, RejectsDegenerateInputs) {
  EXPECT_THROW(with_checksums(Matrix()), PreconditionError);
  Matrix tiny(1, 1);
  EXPECT_THROW(verify_checksums(tiny, false), PreconditionError);
  EXPECT_THROW(strip_checksums(Matrix(1, 5)), PreconditionError);
}

}  // namespace
}  // namespace hpmm
