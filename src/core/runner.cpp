#include "core/runner.hpp"

#include <algorithm>

#include "core/selector.hpp"
#include "core/validate.hpp"
#include "matrix/generate.hpp"
#include "sim/fault.hpp"
#include "util/error.hpp"

namespace hpmm {

std::vector<EfficiencyPoint> efficiency_sweep(
    const std::string& algorithm, std::size_t p, const MachineParams& params,
    const std::vector<std::size_t>& orders, std::size_t sim_n_limit,
    const AlgorithmRegistry& registry) {
  const auto model = registry.model(algorithm, params);
  const ParallelMatmul& impl = registry.implementation(algorithm);
  std::vector<EfficiencyPoint> out;
  out.reserve(orders.size());
  for (std::size_t n : orders) {
    EfficiencyPoint pt;
    pt.n = n;
    pt.p = p;
    const auto nd = static_cast<double>(n);
    const auto pd = static_cast<double>(p);
    if (!model->applicable(nd, pd)) continue;
    pt.model_efficiency = model->efficiency(nd, pd);
    pt.model_t_parallel = model->t_parallel(nd, pd);
    if (n <= sim_n_limit && impl.applicable(n, p)) {
      Rng rng(0x5EED0000ULL + n);
      const Matrix a = random_matrix(n, n, rng);
      const Matrix b = random_matrix(n, n, rng);
      MatmulResult run = impl.run(a, b, p, params);
      pt.sim_t_parallel = run.report.t_parallel;
      pt.sim_efficiency = run.report.efficiency();
    }
    out.push_back(pt);
  }
  return out;
}

Table efficiency_table(const std::vector<EfficiencyPoint>& points,
                       const std::string& label) {
  Table t({"n", "p", "E(model) " + label, "E(sim)", "T_p(model)", "T_p(sim)"});
  for (const auto& pt : points) {
    t.begin_row()
        .add_int(static_cast<long long>(pt.n))
        .add_int(static_cast<long long>(pt.p))
        .add_num(pt.model_efficiency);
    if (pt.sim_efficiency) {
      t.add_num(*pt.sim_efficiency);
    } else {
      t.add("-");
    }
    t.add_num(pt.model_t_parallel);
    if (pt.sim_t_parallel) {
      t.add_num(*pt.sim_t_parallel);
    } else {
      t.add("-");
    }
  }
  return t;
}

std::optional<std::size_t> crossover_order(
    const std::vector<EfficiencyPoint>& a, const std::vector<EfficiencyPoint>& b,
    bool use_simulated) {
  const auto eff = [use_simulated](const EfficiencyPoint& pt) {
    if (use_simulated && pt.sim_efficiency) return *pt.sim_efficiency;
    return pt.model_efficiency;
  };
  // Walk matching orders; report the first order at which the sign of
  // (E_a - E_b) differs from the initial sign.
  std::optional<bool> a_ahead_initially;
  for (std::size_t i = 0, j = 0; i < a.size() && j < b.size();) {
    if (a[i].n < b[j].n) {
      ++i;
      continue;
    }
    if (b[j].n < a[i].n) {
      ++j;
      continue;
    }
    const bool a_ahead = eff(a[i]) >= eff(b[j]);
    if (!a_ahead_initially) {
      a_ahead_initially = a_ahead;
    } else if (a_ahead != *a_ahead_initially) {
      return a[i].n;
    }
    ++i;
    ++j;
  }
  return std::nullopt;
}

ResilientRun run_resilient(const Matrix& a, const Matrix& b, std::size_t p,
                           const MachineParams& params,
                           const std::string& algorithm,
                           const AlgorithmRegistry& registry) {
  require(p >= 1, "run_resilient: need at least one processor");
  const std::size_t n = a.rows();

  ResilientRun run;
  run.procs = p;
  run.algorithm = algorithm;
  if (run.algorithm.empty()) {
    const Selection sel = select_algorithm(n, p, params, true, registry);
    require(!sel.best.empty(),
            "run_resilient: no formulation applicable at the requested (n, p)");
    run.algorithm = sel.best;
  }

  MachineParams current = params;
  // Each retry loses at least one processor, so p attempts bound the loop.
  for (std::size_t attempt = 0; attempt <= p; ++attempt) {
    try {
      run.result =
          registry.implementation(run.algorithm).run(a, b, run.procs, current);
      return run;
    } catch (const ProcessorFailure& failure) {
      // The attempt is abandoned: every processor's progress up to the
      // failure instant is sunk cost.
      run.wasted_time += failure.at_time();

      DegradationEvent event;
      event.failed_pid = failure.pid();
      event.failed_at = failure.at_time();
      event.procs_before = run.procs;

      const std::size_t survivors = run.procs - 1;
      const DegradedSelection deg =
          select_degraded(n, survivors, params, true, registry);
      event.procs_after = deg.p;
      event.algorithm = deg.selection.best;

      // The replacement run executes on the surviving part of the machine:
      // the fired fail-stop is consumed, and pending faults pinned to
      // processors outside the new configuration no longer apply.
      if (current.faults) {
        auto plan = std::make_shared<FaultPlan>(*current.faults);
        auto& fs = plan->failstops;
        fs.erase(std::remove_if(fs.begin(), fs.end(),
                                [&](const FailStopSpec& spec) {
                                  return spec.pid == failure.pid() ||
                                         spec.pid >= deg.p;
                                }),
                 fs.end());
        auto& st = plan->stragglers;
        st.erase(std::remove_if(st.begin(), st.end(),
                                [&](const StragglerSpec& spec) {
                                  return spec.pid >= deg.p;
                                }),
                 st.end());
        current.faults = std::move(plan);
      }

      run.procs = deg.p;
      run.algorithm = deg.selection.best;
      run.degradations.push_back(std::move(event));
    }
  }
  // p + 1 attempts with a strictly shrinking machine cannot all fail.
  throw InternalError(
      "run_resilient: degradation failed to converge to a completed run");
}

}  // namespace hpmm
