#include "core/selector.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpmm {
namespace {

Selection select_from(const std::vector<std::string>& names, std::size_t n,
                      std::size_t p, const MachineParams& params,
                      bool require_simulatable,
                      const AlgorithmRegistry& registry) {
  require(n >= 1 && p >= 1, "select_algorithm: n and p must be positive");
  Selection sel;
  const auto nd = static_cast<double>(n);
  const auto pd = static_cast<double>(p);
  for (const auto& name : names) {
    SelectorCandidate cand;
    cand.name = name;
    const auto model = registry.model(name, params);
    const bool model_ok = model->applicable(nd, pd);
    const bool impl_ok =
        !require_simulatable || registry.implementation(name).applicable(n, p);
    cand.applicable = model_ok && impl_ok;
    if (cand.applicable) {
      cand.t_parallel = model->t_parallel(nd, pd);
      cand.efficiency = model->efficiency(nd, pd);
      if (sel.best.empty() || cand.t_parallel < sel.t_parallel) {
        sel.best = name;
        sel.t_parallel = cand.t_parallel;
        sel.efficiency = cand.efficiency;
      }
    }
    sel.candidates.push_back(std::move(cand));
  }
  return sel;
}

}  // namespace

Selection select_algorithm(std::size_t n, std::size_t p,
                           const MachineParams& params,
                           bool require_simulatable,
                           const AlgorithmRegistry& registry) {
  // One-port hypercube formulations only — the all-port and fully-connected
  // variants assume different hardware and are selected explicitly.
  static const std::vector<std::string> kNames = {
      "simple", "cannon", "cannon25d", "fox", "berntsen", "dns", "gk", "gk-jh"};
  return select_from(kNames, n, p, params, require_simulatable, registry);
}

Selection select_among_table1(std::size_t n, std::size_t p,
                              const MachineParams& params,
                              bool require_simulatable) {
  static const std::vector<std::string> kNames = {"berntsen", "cannon", "gk",
                                                  "dns"};
  return select_from(kNames, n, p, params, require_simulatable,
                     default_registry());
}

DegradedSelection select_degraded(std::size_t n, std::size_t survivors,
                                  const MachineParams& params,
                                  bool require_simulatable,
                                  const AlgorithmRegistry& registry) {
  require(survivors >= 1,
          "select_degraded: no surviving processors to re-plan onto");
  for (std::size_t p = survivors; p >= 1; --p) {
    Selection sel =
        select_algorithm(n, p, params, require_simulatable, registry);
    if (!sel.best.empty()) {
      DegradedSelection deg;
      deg.p = p;
      deg.selection = std::move(sel);
      return deg;
    }
  }
  // p == 1 always admits the simple formulation, so this is unreachable for
  // valid inputs; keep a hard error rather than a silent fallback.
  throw PreconditionError(
      "select_degraded: no formulation applicable on the surviving machine");
}

}  // namespace hpmm
