#include "serve/admission.hpp"

#include "util/error.hpp"

namespace hpmm {

CircuitBreaker::CircuitBreaker(unsigned threshold, double cooldown)
    : threshold_(threshold), cooldown_(cooldown) {
  require(threshold >= 1, "CircuitBreaker: threshold must be >= 1");
  require(cooldown >= 0.0, "CircuitBreaker: cooldown must be >= 0");
}

bool CircuitBreaker::can_admit(double now) const noexcept {
  switch (state(now)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      // probe_in_flight_ is cleared whenever the breaker (re)opens, so a
      // just-cooled-down breaker always has a free probe.
      return !probe_in_flight_;
  }
  return false;
}

void CircuitBreaker::note_admitted(double now) {
  if (state_ == State::kOpen && now >= opened_at_ + cooldown_) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
  if (state_ == State::kHalfOpen) probe_in_flight_ = true;
}

bool CircuitBreaker::admit(double now) {
  if (!can_admit(now)) return false;
  note_admitted(now);
  return true;
}

void CircuitBreaker::record_success() {
  state_ = State::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(double now) {
  ++failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed && failures_ >= threshold_)) {
    state_ = State::kOpen;
    opened_at_ = now;
    probe_in_flight_ = false;
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state(double now) const noexcept {
  if (state_ == State::kOpen && now >= opened_at_ + cooldown_) {
    return State::kHalfOpen;
  }
  return state_;
}

const char* to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  require(config.queue_capacity >= 1,
          "AdmissionController: queue_capacity must be >= 1");
  require(config.tenant_quota >= 1,
          "AdmissionController: tenant_quota must be >= 1");
  // Breakers are created lazily per tenant; validate their limits now so a
  // bad configuration fails at construction, not on the first arrival.
  (void)CircuitBreaker(config.breaker_threshold, config.breaker_cooldown);
}

ServeOutcome AdmissionController::try_admit(const std::string& tenant,
                                            double now) {
  CircuitBreaker& breaker = breaker_for(tenant);
  if (!breaker.can_admit(now)) return ServeOutcome::kRejectedBreaker;
  if (in_flight_ >= config_.queue_capacity) {
    return ServeOutcome::kRejectedQueueFull;
  }
  if (tenant_in_flight_[tenant] >= config_.tenant_quota) {
    return ServeOutcome::kRejectedQuota;
  }
  breaker.note_admitted(now);
  ++in_flight_;
  ++tenant_in_flight_[tenant];
  return ServeOutcome::kOk;
}

void AdmissionController::on_final(const std::string& tenant, double now,
                                   bool success) {
  require(in_flight_ > 0 && tenant_in_flight_[tenant] > 0,
          "AdmissionController::on_final: tenant '" + tenant +
              "' has no admitted request in flight");
  --in_flight_;
  --tenant_in_flight_[tenant];
  CircuitBreaker& breaker = breaker_for(tenant);
  if (success) {
    breaker.record_success();
  } else {
    breaker.record_failure(now);
  }
}

std::size_t AdmissionController::tenant_in_flight(
    const std::string& tenant) const {
  const auto it = tenant_in_flight_.find(tenant);
  return it == tenant_in_flight_.end() ? 0 : it->second;
}

const CircuitBreaker* AdmissionController::breaker(
    const std::string& tenant) const {
  const auto it = breakers_.find(tenant);
  return it == breakers_.end() ? nullptr : &it->second;
}

CircuitBreaker& AdmissionController::breaker_for(const std::string& tenant) {
  const auto it = breakers_.find(tenant);
  if (it != breakers_.end()) return it->second;
  return breakers_
      .emplace(tenant, CircuitBreaker(config_.breaker_threshold,
                                      config_.breaker_cooldown))
      .first->second;
}

}  // namespace hpmm
