#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/slo.hpp"

namespace hpmm {

/// A parsed serve workload: the request stream plus any per-tenant SLO
/// directives the script declared.
struct ServeWorkload {
  std::vector<TenantRequest> requests;
  SloTargets slos;
};

/// Parse a serve script: one request per line, strict key=value fields.
///
///   # comment and blank lines are ignored
///   request tenant=alice arrival=0 algo=cannon n=16 p=16 machine=ncube2
///   request tenant=bob arrival=500 n=32 p=8 corrupt=0.1 abft=correct
///
/// Recognized keys — tenant, arrival, algo, n, p, machine, deadline_factor —
/// plus the fault keys drop, dup, delay, delay_factor, corrupt, straggler
/// (pid:factor, repeatable), abft (off|detect|correct) and fault_seed; a
/// FaultPlan is attached only when at least one fault key appears. Parsing
/// is strict in the CLI's style: an unknown key, malformed value,
/// out-of-range probability or unknown machine throws PreconditionError
/// naming the line and field. Request ids are assigned by line order.
std::vector<TenantRequest> parse_serve_script(std::istream& in);

/// parse_serve_script over an in-memory script.
std::vector<TenantRequest> parse_serve_script(const std::string& text);

/// parse_serve_script extended with per-tenant objective lines:
///
///   slo tenant=alice slo_p99=80000 slo_availability=0.99
///   slo slo_availability=0.95            # no tenant= -> the "*" default
///
/// `slo_p99` is a virtual-time latency bound on the tenant's p99;
/// `slo_availability` is the target success fraction in (0, 1). A line must
/// set at least one objective; a second slo line for the same tenant, an
/// out-of-range value or an unknown key throws PreconditionError naming the
/// line (same strictness as the request lines).
ServeWorkload parse_serve_workload(std::istream& in);

/// parse_serve_workload over an in-memory script.
ServeWorkload parse_serve_workload(const std::string& text);

/// Knobs of the seeded workload generator.
struct WorkloadOptions {
  std::size_t requests = 32;
  std::size_t tenants = 3;        ///< named t0, t1, ...
  std::uint64_t seed = 1;
  double mean_gap = 20000.0;      ///< mean virtual time between arrivals
  double fault_fraction = 0.0;    ///< fraction carrying a corrupt-prone plan
  std::string machine = "ncube2";
};

/// Seeded-deterministic workload: draws each request's tenant, problem
/// shape (from a fixed table of simulatable configurations, including
/// selector-choice entries) and arrival gap from one Rng stream, so the
/// same options reproduce the identical request list. Requests selected by
/// `fault_fraction` carry a corruption-prone FaultPlan with ABFT correction
/// enabled (masked faults: slower, still exact).
std::vector<TenantRequest> generate_workload(const WorkloadOptions& options);

}  // namespace hpmm
