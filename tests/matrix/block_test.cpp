#include "matrix/block.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(BlockGrid, BasicGeometry) {
  BlockGrid g(8, 8, 4, 4);
  EXPECT_EQ(g.block_rows(), 2u);
  EXPECT_EQ(g.block_cols(), 2u);
  EXPECT_EQ(g.block_count(), 16u);
  EXPECT_EQ(g.block_words(), 4u);
}

TEST(BlockGrid, RequiresExactDivision) {
  EXPECT_THROW(BlockGrid(8, 8, 3, 4), PreconditionError);
  EXPECT_THROW(BlockGrid(8, 8, 4, 3), PreconditionError);
  EXPECT_THROW(BlockGrid(8, 8, 0, 4), PreconditionError);
}

TEST(BlockGrid, ExtractPicksTheRightElements) {
  const Matrix m = index_matrix(4, 4);
  BlockGrid g(4, 4, 2, 2);
  const Matrix blk = g.extract(m, 1, 0);
  EXPECT_EQ(blk(0, 0), m(2, 0));
  EXPECT_EQ(blk(1, 1), m(3, 1));
}

TEST(BlockGrid, ExtractValidation) {
  const Matrix m = index_matrix(4, 4);
  BlockGrid g(4, 4, 2, 2);
  EXPECT_THROW(g.extract(m, 2, 0), PreconditionError);
  const Matrix wrong(6, 6);
  EXPECT_THROW(g.extract(wrong, 0, 0), PreconditionError);
}

TEST(BlockGrid, InsertValidation) {
  Matrix m(4, 4);
  BlockGrid g(4, 4, 2, 2);
  Matrix wrong_shape(1, 2);
  EXPECT_THROW(g.insert(m, wrong_shape, 0, 0), PreconditionError);
}

TEST(BlockGrid, ScatterGatherRoundTrip) {
  Rng rng(3);
  const Matrix m = random_matrix(12, 12, rng);
  BlockGrid g(12, 12, 3, 4);
  const auto blocks = scatter_blocks(m, g);
  ASSERT_EQ(blocks.size(), 12u);
  EXPECT_EQ(gather_blocks(blocks, g), m);
}

TEST(BlockGrid, GatherWrongCountThrows) {
  BlockGrid g(4, 4, 2, 2);
  std::vector<Matrix> blocks(3, Matrix(2, 2));
  EXPECT_THROW(gather_blocks(blocks, g), PreconditionError);
}

TEST(BlockGrid, RectangularBlocks) {
  // Non-square block shapes as used by Berntsen's algorithm.
  Rng rng(4);
  const Matrix m = random_matrix(8, 16, rng);
  BlockGrid g(8, 16, 4, 2);
  EXPECT_EQ(g.block_rows(), 2u);
  EXPECT_EQ(g.block_cols(), 8u);
  EXPECT_EQ(gather_blocks(scatter_blocks(m, g), g), m);
}

/// Property: scatter/gather round-trips for every grid shape that divides.
class ScatterGatherProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ScatterGatherProperty, RoundTrip) {
  const auto [size, grid] = GetParam();
  Rng rng(size * 31 + grid);
  const Matrix m = random_matrix(size, size, rng);
  BlockGrid g(size, size, grid, grid);
  EXPECT_EQ(gather_blocks(scatter_blocks(m, g), g), m);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScatterGatherProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 1},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{24, 3},
                      std::pair<std::size_t, std::size_t>{32, 8},
                      std::pair<std::size_t, std::size_t>{60, 5}));

}  // namespace
}  // namespace hpmm
