#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace hpmm {

CliArgs::CliArgs(int argc, const char* const* argv) {
  require(argc >= 1, "CliArgs: argc must be >= 1");
  program_ = argv[0];
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!flags_done && arg == "--") {
      // Conventional end-of-flags marker: everything after it is positional.
      flags_done = true;
      continue;
    }
    if (!flags_done && arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      require(!key.empty(), "CliArgs: empty flag name in '" + arg + "'");
      values_[std::move(key)] =
          eq == std::string::npos ? "true" : arg.substr(eq + 1);
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  // The whole token must parse: strtoll stopping early (garbage, trailing
  // junk, empty string) must fail loudly, not silently produce 0.
  require(!text.empty() && end == text.c_str() + text.size(),
          "--" + key + ": expected an integer, got '" + text + "'");
  require(errno != ERANGE,
          "--" + key + ": integer out of range: '" + text + "'");
  return value;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  require(!text.empty() && end == text.c_str() + text.size(),
          "--" + key + ": expected a number, got '" + text + "'");
  // Overflow to +-inf is an error; gradual underflow to 0/denormal is fine.
  require(errno != ERANGE || std::abs(value) != HUGE_VAL,
          "--" + key + ": number out of range: '" + text + "'");
  return value;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace hpmm
