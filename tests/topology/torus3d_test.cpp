#include "topology/torus3d.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Torus3D, GeometryAndName) {
  Torus3D t(4, 4, 2);
  EXPECT_EQ(t.size(), 32u);
  EXPECT_EQ(t.grid_rows(), 4u);
  EXPECT_EQ(t.grid_cols(), 4u);
  EXPECT_EQ(t.grid_layers(), 2u);
  EXPECT_EQ(t.ports_per_proc(), 6u);
  EXPECT_EQ(t.name(), "torus3d(4x4x2)");
  EXPECT_THROW(Torus3D(0, 4, 2), PreconditionError);
}

TEST(Torus3D, LayerMajorRanks) {
  // rank(i, j, l) = l q^2 + i q + j: layers are contiguous, fibers stride
  // by the layer size.
  Torus3D t(4, 4, 2);
  EXPECT_EQ(t.rank(0, 0, 0), 0u);
  EXPECT_EQ(t.rank(1, 2, 0), 6u);
  EXPECT_EQ(t.rank(1, 2, 1), 22u);
  EXPECT_EQ(t.rank(3, 3, 1), 31u);
}

TEST(Torus3D, CoordsRankRoundTrip) {
  Torus3D t(3, 4, 2);
  for (ProcId r = 0; r < t.size(); ++r) {
    const auto c = t.coords(r);
    EXPECT_EQ(t.rank(c[0], c[1], c[2]), r);
  }
  EXPECT_THROW(t.coords(t.size()), PreconditionError);
}

TEST(Torus3D, WestNorthUpWrap) {
  Torus3D t(4, 4, 4);
  const ProcId origin = t.rank(0, 0, 0);
  EXPECT_EQ(t.west(origin), t.rank(0, 3, 0));       // column wraps
  EXPECT_EQ(t.north(origin), t.rank(3, 0, 0));      // row wraps
  EXPECT_EQ(t.up(origin), t.rank(0, 0, 1));
  EXPECT_EQ(t.up(origin, 4), origin);               // full loop
  EXPECT_EQ(t.west(t.rank(2, 3, 1), 2), t.rank(2, 1, 1));
  // Shifts never leave the layer.
  for (ProcId r = 0; r < t.size(); ++r) {
    EXPECT_EQ(t.coords(t.west(r))[2], t.coords(r)[2]);
    EXPECT_EQ(t.coords(t.north(r))[2], t.coords(r)[2]);
  }
}

TEST(Torus3D, FiberIsLayerOrdered) {
  Torus3D t(4, 4, 4);
  const auto fiber = t.fiber(2, 1);
  ASSERT_EQ(fiber.size(), 4u);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(fiber[l], t.rank(2, 1, l));
  }
}

TEST(Torus3D, HopsAreRingDistanceSums) {
  Torus3D t(4, 4, 2);
  EXPECT_EQ(t.hops(t.rank(0, 0, 0), t.rank(0, 0, 0)), 0u);
  EXPECT_EQ(t.hops(t.rank(0, 0, 0), t.rank(0, 3, 0)), 1u);  // wrap, not 3
  EXPECT_EQ(t.hops(t.rank(0, 0, 0), t.rank(2, 2, 1)), 5u);
  EXPECT_EQ(t.hops(t.rank(1, 1, 0), t.rank(1, 1, 1)), 1u);
}

TEST(Torus3D, NeighborsDedupDegenerateRings) {
  // A 4x4x1 torus has no fiber neighbours; a 2-long ring contributes one
  // neighbour, not two.
  Torus3D flat(4, 4, 1);
  EXPECT_EQ(flat.neighbors(0).size(), 4u);
  Torus3D thin(2, 2, 2);
  const auto nb = thin.neighbors(0);
  EXPECT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  Torus3D full(4, 4, 4);
  EXPECT_EQ(full.neighbors(full.rank(1, 2, 3)).size(), 6u);
}

}  // namespace
}  // namespace hpmm
