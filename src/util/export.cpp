#include "util/export.hpp"

#include <cmath>
#include <cstdint>

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {

namespace {

/// Exposition sample values: Prometheus accepts Go-style floats plus the
/// special tokens below. json_number gives the shortest round-trip decimal,
/// which is both valid and deterministic.
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_number(v);
}

void help_and_type(std::ostream& os, const std::string& name,
                   const std::string& source, std::string_view type) {
  os << "# HELP " << name << ' ' << source << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

MetricsExportFormat metrics_export_format(std::string_view path) {
  const auto dot = path.rfind('.');
  const std::string_view ext =
      dot == std::string_view::npos ? std::string_view{} : path.substr(dot);
  if (ext == ".prom") return MetricsExportFormat::kPrometheus;
  if (ext == ".json") return MetricsExportFormat::kOtlpJson;
  throw PreconditionError(
      "metrics export path must end in .prom (Prometheus text exposition) or "
      ".json (OTLP-style JSON): " +
      std::string(path));
}

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "hpmm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void write_prometheus(const MetricsRegistry& registry, std::ostream& os) {
  for (const auto& name : registry.counter_names()) {
    const std::string pn = prometheus_metric_name(name) + "_total";
    help_and_type(os, pn, name, "counter");
    os << pn << ' ' << registry.find_counter(name)->value() << '\n';
  }
  for (const auto& name : registry.gauge_names()) {
    const std::string pn = prometheus_metric_name(name);
    help_and_type(os, pn, name, "gauge");
    os << pn << ' ' << prom_value(registry.find_gauge(name)->value()) << '\n';
  }
  for (const auto& name : registry.histogram_names()) {
    const Histogram& h = *registry.find_histogram(name);
    const std::string pn = prometheus_metric_name(name);
    help_and_type(os, pn, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      cumulative += h.bucket_count(i);
      const bool overflow = i + 1 == h.buckets();
      os << pn << "_bucket{le=\""
         << (overflow ? std::string("+Inf") : prom_value(h.bucket_bound(i)))
         << "\"} " << cumulative << '\n';
    }
    os << pn << "_sum " << prom_value(h.sum()) << '\n';
    os << pn << "_count " << h.count() << '\n';
  }
  // The exposition format has no windowed-series type; export each series'
  // running totals (the windows stay available in the JSON exports).
  for (const auto& name : registry.series_names()) {
    const TimeSeries& s = *registry.find_series(name);
    const std::string base = prometheus_metric_name(name);
    const std::string events = base + "_events_total";
    help_and_type(os, events, name, "counter");
    os << events << ' ' << s.total_count() << '\n';
    const std::string sum = base + "_value_sum";
    help_and_type(os, sum, name, "gauge");
    os << sum << ' ' << prom_value(s.total_sum()) << '\n';
  }
}

void write_otlp_json(const MetricsRegistry& registry, std::ostream& os) {
  os << "{\"resourceMetrics\": [{\"resource\": {\"attributes\": "
        "[{\"key\": \"service.name\", \"value\": {\"stringValue\": "
        "\"hpmm\"}}]}, \"scopeMetrics\": [{\"scope\": {\"name\": \"hpmm\"}, "
        "\"metrics\": [";
  bool first = true;
  const auto sep = [&os, &first]() {
    if (!first) os << ", ";
    first = false;
  };
  for (const auto& name : registry.counter_names()) {
    sep();
    os << "{\"name\": " << json_quote(name)
       << ", \"sum\": {\"aggregationTemporality\": 2, \"isMonotonic\": true, "
          "\"dataPoints\": [{\"asDouble\": "
       << json_number(
              static_cast<double>(registry.find_counter(name)->value()))
       << "}]}}";
  }
  for (const auto& name : registry.gauge_names()) {
    sep();
    os << "{\"name\": " << json_quote(name)
       << ", \"gauge\": {\"dataPoints\": [{\"asDouble\": "
       << json_number(registry.find_gauge(name)->value()) << "}]}}";
  }
  for (const auto& name : registry.histogram_names()) {
    const Histogram& h = *registry.find_histogram(name);
    sep();
    os << "{\"name\": " << json_quote(name)
       << ", \"histogram\": {\"aggregationTemporality\": 2, \"dataPoints\": "
          "[{\"count\": "
       << h.count() << ", \"sum\": " << json_number(h.sum())
       << ", \"max\": " << json_number(h.max()) << ", \"bucketCounts\": [";
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      if (i) os << ", ";
      os << h.bucket_count(i);
    }
    os << "], \"explicitBounds\": [";
    for (std::size_t i = 0; i + 1 < h.buckets(); ++i) {
      if (i) os << ", ";
      os << json_number(h.bucket_bound(i));
    }
    os << "]}]}}";
  }
  for (const auto& name : registry.series_names()) {
    const TimeSeries& s = *registry.find_series(name);
    sep();
    os << "{\"name\": " << json_quote(name)
       << ", \"series\": {\"windowWidth\": " << json_number(s.window_width())
       << ", \"windows\": [";
    bool w_first = true;
    for (const auto& [index, w] : s.windows()) {
      if (!w_first) os << ", ";
      w_first = false;
      os << "{\"index\": " << index << ", \"count\": " << w.count
         << ", \"sum\": " << json_number(w.sum)
         << ", \"max\": " << json_number(w.max) << "}";
    }
    os << "]}}";
  }
  os << "]}]}]}";
}

void write_metrics(const MetricsRegistry& registry, MetricsExportFormat format,
                   std::ostream& os) {
  if (format == MetricsExportFormat::kPrometheus) {
    write_prometheus(registry, os);
  } else {
    write_otlp_json(registry, os);
  }
}

}  // namespace hpmm
