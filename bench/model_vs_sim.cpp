// Validation harness: runs every registered formulation end-to-end on the
// simulator over real matrices and compares the simulated T_p against the
// paper's analytical expression, printing the ratio (1.000 where the
// simulation realises the equation exactly) and the numerical error of the
// computed product against the serial algorithm.

#include <chrono>
#include <iostream>

#include "core/registry.hpp"
#include "core/validate.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main() {
  MachineParams mp;
  mp.t_s = 60.0;
  mp.t_w = 2.0;
  mp.label = "t_s=60, t_w=2";
  std::cout << "=== Model vs simulation, all formulations (" << mp.label
            << ") ===\n\n";

  struct Case {
    const char* name;
    std::size_t n, p;
  };
  const Case cases[] = {
      {"simple", 16, 16},        {"simple", 32, 64},
      {"simple-allport", 16, 16},{"cannon", 16, 16},
      {"cannon", 32, 64},        {"cannon", 22, 121},
      {"fox", 16, 16},           {"fox", 32, 64},
      {"berntsen", 16, 8},       {"berntsen", 32, 64},
      {"dns", 4, 32},            {"dns", 8, 128},
      {"dns", 8, 512},           {"gk", 16, 8},
      {"gk", 16, 64},            {"gk", 24, 512},
      {"gk-jh", 16, 64},         {"gk-allport", 16, 64},
      {"gk-fc", 16, 64},         {"gk-fc", 24, 512},
  };

  const auto& reg = default_registry();
  Table t({"algorithm", "n", "p", "T_p sim", "T_p model", "sim/model",
           "max |C - C_serial|", "product", "wall ms"});
  for (const auto& c : cases) {
    const auto model = reg.model(c.name, mp);
    // Host wall clock alongside the virtual T_p: real seconds this process
    // spent simulating the case (validation run + serial reference).
    const auto wall_start = std::chrono::steady_clock::now();
    const auto pt = validate_algorithm(reg.implementation(c.name), *model, c.n, c.p);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    t.begin_row()
        .add(c.name)
        .add_int(static_cast<long long>(c.n))
        .add_int(static_cast<long long>(c.p))
        .add_num(pt.sim_t_parallel, 6)
        .add_num(pt.model_t_parallel, 6)
        .add_num(pt.ratio(), 4)
        .add(format_number(pt.max_numeric_error, 2))
        .add(pt.product_correct ? "ok" : "WRONG")
        .add_num(wall_ms, 3);
  }
  t.print_aligned(std::cout);
  std::cout << "\nCannon, GK, GK-fc, DNS and the modeled all-port/JH variants\n"
               "realise their equations exactly (ratio 1); Simple and Fox sit\n"
               "within the paper's loose constants (Eq. 2 doubles the t_s\n"
               "term; Eq. 4 models the pipelined mesh variant).\n";
  return 0;
}
