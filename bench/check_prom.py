#!/usr/bin/env python3
"""Lint a Prometheus text exposition (or a `--metrics-every` snapshot stream).

Validates the .prom files that `hpmm run/serve --metrics-out` writes
(src/util/export.cpp) against the exposition-format rules that matter for a
real scraper:

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and sample lines carry a
    numeric value (Go float, or the NaN/+Inf/-Inf tokens);
  * every sample belongs to a family announced by a `# HELP` line directly
    followed by its `# TYPE` line, with a known type (counter / gauge /
    histogram), and family blocks are never split or repeated;
  * counter families end in `_total` and histogram `_bucket{le=...}` rows
    are cumulative and non-decreasing, closing with `+Inf` == `_count`;
  * a snapshot stream (blocks separated by `# snapshot t=<virtual time>`
    comment lines, as written by `hpmm serve --metrics-every`) has strictly
    increasing timestamps, and every counter is monotone non-decreasing
    across the snapshots in which it appears.

Usage: python3 bench/check_prom.py FILE [FILE...]
Exit codes: 0 ok, 1 lint errors, 2 unreadable input.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?|NaN|[-+]Inf)$")
SNAPSHOT_RE = re.compile(r"^# snapshot t=(?P<time>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)$")
KNOWN_TYPES = {"counter", "gauge", "histogram"}
HISTO_SUFFIXES = ("_bucket", "_sum", "_count")


class Linter:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def error(self, lineno, msg):
        self.errors.append(f"{self.path}:{lineno}: {msg}")

    def lint_block(self, lines):
        """Lint one exposition block; returns {counter family: value}."""
        counters = {}
        seen_families = set()
        family = None       # (name, type) announced by the open HELP/TYPE pair
        pending_help = None
        bucket_prev = None  # last cumulative bucket count of the open histogram
        bucket_done = False
        for lineno, line in lines:
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) < 4:
                    self.error(lineno, f"malformed HELP line: {line!r}")
                    continue
                pending_help = (lineno, parts[2])
                family = None
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) < 4:
                    self.error(lineno, f"malformed TYPE line: {line!r}")
                    continue
                name, mtype = parts[2], parts[3]
                if pending_help is None or pending_help[1] != name:
                    self.error(lineno, f"# TYPE {name} without a directly "
                                       "preceding # HELP for the same family")
                pending_help = None
                if not NAME_RE.match(name):
                    self.error(lineno, f"illegal family name {name!r}")
                if mtype not in KNOWN_TYPES:
                    self.error(lineno, f"unknown type {mtype!r} for {name}")
                if name in seen_families:
                    self.error(lineno, f"family {name} announced twice "
                                       "(split family block)")
                seen_families.add(name)
                if mtype == "counter" and not name.endswith("_total"):
                    self.error(lineno, f"counter {name} must end in _total")
                family = (name, mtype)
                bucket_prev = None
                bucket_done = False
                continue
            if line.startswith("#"):
                self.error(lineno, f"unexpected comment line: {line!r}")
                continue
            if pending_help is not None:
                self.error(pending_help[0], "# HELP with no following # TYPE")
                pending_help = None
            m = SAMPLE_RE.match(line)
            if not m:
                self.error(lineno, f"malformed sample line: {line!r}")
                continue
            name, labels, value = m.group("name", "labels", "value")
            if family is None:
                self.error(lineno, f"sample {name} outside any HELP/TYPE block")
                continue
            fam_name, fam_type = family
            if fam_type == "histogram":
                if name == fam_name + "_bucket":
                    if bucket_done:
                        self.error(lineno, f"{name}: bucket row after +Inf")
                    if not labels or 'le="' not in labels:
                        self.error(lineno, f"{name}: _bucket without an le label")
                        continue
                    count = float(value)
                    if bucket_prev is not None and count < bucket_prev:
                        self.error(lineno, f"{name}: cumulative bucket counts "
                                           f"decreased ({bucket_prev:g} -> "
                                           f"{count:g})")
                    bucket_prev = count
                    if 'le="+Inf"' in labels:
                        bucket_done = True
                    continue
                if name in (fam_name + "_sum", fam_name + "_count"):
                    if name.endswith("_count") and bucket_prev is not None \
                            and float(value) != bucket_prev:
                        self.error(lineno, f"{name} ({value}) != +Inf bucket "
                                           f"({bucket_prev:g})")
                    continue
                self.error(lineno, f"sample {name} outside histogram family "
                                   f"{fam_name} (expected "
                                   f"{fam_name}{'/'.join(HISTO_SUFFIXES)})")
                continue
            if name != fam_name:
                self.error(lineno, f"sample {name} outside family {fam_name}")
                continue
            if labels:
                self.error(lineno, f"unexpected labels on {name}: {labels}")
            if fam_type == "counter":
                v = float(value)
                if v < 0:
                    self.error(lineno, f"counter {name} is negative ({value})")
                counters[name] = v
        if pending_help is not None:
            self.error(pending_help[0], "# HELP with no following # TYPE")
        return counters

    def lint(self, text):
        # Split a snapshot stream into blocks on the `# snapshot t=` markers;
        # a plain single exposition is one unmarked block.
        blocks = [(None, [])]
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                self.error(lineno, "blank line inside exposition")
                continue
            snap = SNAPSHOT_RE.match(line)
            if snap:
                blocks.append(((lineno, float(snap.group("time"))), []))
                continue
            blocks[-1][1].append((lineno, line))
        if not blocks[0][1]:
            blocks = blocks[1:]
        if not blocks:
            self.error(0, "no exposition content")
            return

        prev_time = None
        prev_counters = {}
        for marker, lines in blocks:
            if marker is not None:
                lineno, time = marker
                if prev_time is not None and time <= prev_time:
                    self.error(lineno, f"snapshot timestamps not increasing "
                                       f"({prev_time:g} -> {time:g})")
                prev_time = time
            counters = self.lint_block(lines)
            first = lines[0][0] if lines else (marker[0] if marker else 0)
            for name, v in counters.items():
                if name in prev_counters and v < prev_counters[name]:
                    self.error(first, f"counter {name} decreased across "
                                      f"snapshots ({prev_counters[name]:g} -> "
                                      f"{v:g})")
            prev_counters.update(counters)


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip().splitlines()[-2].strip())
    failed = False
    for path in sys.argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_prom: cannot read {path}: {e}", file=sys.stderr)
            return 2
        linter = Linter(path)
        linter.lint(text)
        if linter.errors:
            failed = True
            for err in linter.errors:
                print(err, file=sys.stderr)
        else:
            blocks = text.count("# snapshot t=")
            what = f"{blocks} snapshot(s)" if blocks else "1 exposition"
            print(f"check_prom: {path} ok ({what})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
