#pragma once

#include "topology/topology.hpp"

namespace hpmm {

/// Boolean d-cube: 2^d processors, node ids are bit strings, two nodes are
/// adjacent iff their ids differ in exactly one bit. The paper's primary
/// architecture.
class Hypercube final : public Topology {
 public:
  /// A hypercube of dimension `dim` (p = 2^dim processors).
  explicit Hypercube(unsigned dim);

  /// The hypercube with exactly p = 2^d processors; throws unless p is a
  /// power of two.
  static Hypercube with_procs(std::size_t p);

  unsigned dim() const noexcept { return dim_; }

  std::size_t size() const noexcept override { return std::size_t{1} << dim_; }
  unsigned hops(ProcId src, ProcId dst) const override;
  unsigned ports_per_proc() const noexcept override { return dim_; }
  std::vector<ProcId> neighbors(ProcId node) const override;
  std::string name() const override;

  /// Neighbour of `node` across dimension d (bit d flipped).
  ProcId neighbor(ProcId node, unsigned d) const;

  /// Splits the cube into 2^k subcubes of dimension dim-k each, keyed by the
  /// top k address bits — the decomposition used by Berntsen's algorithm.
  /// Returns, for each subcube index s in [0, 2^k), the member node ids in
  /// ascending order (each member's low dim-k bits enumerate the subcube).
  std::vector<std::vector<ProcId>> subcubes(unsigned k) const;

  /// Index of the subcube (under subcubes(k)) that `node` belongs to.
  ProcId subcube_of(ProcId node, unsigned k) const;

  /// Rank of `node` within its subcube (its low dim-k bits).
  ProcId rank_in_subcube(ProcId node, unsigned k) const;

 private:
  unsigned dim_;
};

}  // namespace hpmm
