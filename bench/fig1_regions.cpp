// Figure 1: comparison of the four algorithms for t_w = 3, t_s = 150
// (an nCUBE2-like machine). Expected picture: Berntsen (b) below p = n^{3/2},
// GK (a) everywhere above it, and no DNS region at practical scale.

#include "region_common.hpp"
#include "machine/params.hpp"

int main() {
  hpmm::bench::run_region_figure(hpmm::machines::ncube2(), "Figure 1");
  return 0;
}
