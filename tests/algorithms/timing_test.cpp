#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/berntsen.hpp"
#include "algorithms/cannon.hpp"
#include "algorithms/dns.hpp"
#include "algorithms/fox.hpp"
#include "algorithms/gk.hpp"
#include "algorithms/simple_2d.hpp"
#include "matrix/generate.hpp"

namespace hpmm {
namespace {

constexpr double kTs = 40.0;
constexpr double kTw = 2.5;

MachineParams test_params() {
  MachineParams m;
  m.t_s = kTs;
  m.t_w = kTw;
  return m;
}

/// Simulated T_p of an algorithm on random n x n operands.
double sim_time(const ParallelMatmul& alg, std::size_t n, std::size_t p) {
  Rng rng(31);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  return alg.run(a, b, p, test_params()).report.t_parallel;
}

double dn(std::size_t v) { return static_cast<double>(v); }

// The simulated algorithms execute phase-synchronously, so their T_p must
// equal the paper's expressions *exactly* (not just asymptotically), with
// the constants the simulation's collectives actually deliver.

TEST(Timing, CannonMatchesEq3Exactly) {
  // T_p = n^3/p + 2 t_s sqrt(p) + 2 t_w n^2/sqrt(p)   (Eq. 3)
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{16, 16},
                            {16, 4}, {24, 64}, {12, 9}}) {
    const double sp = std::sqrt(dn(p));
    const double expect =
        dn(n) * dn(n) * dn(n) / dn(p) + 2.0 * kTs * sp + 2.0 * kTw * dn(n) * dn(n) / sp;
    EXPECT_NEAR(sim_time(CannonAlgorithm(), n, p), expect, 1e-9)
        << "n=" << n << " p=" << p;
  }
}

TEST(Timing, CannonSingleProcessorIsSerialTime) {
  EXPECT_DOUBLE_EQ(sim_time(CannonAlgorithm(), 8, 1), 512.0);
}

TEST(Timing, SimpleRecursiveDoublingExact) {
  // Two recursive-doubling all-to-alls: each t_s log sqrt(p) + t_w (n^2/p)(sqrt(p)-1).
  const std::size_t n = 16, p = 16;
  const double sp = 4.0, m = dn(n) * dn(n) / dn(p);
  const double expect =
      dn(n) * dn(n) * dn(n) / dn(p) + 2.0 * (kTs * 2.0 + kTw * m * (sp - 1.0));
  EXPECT_NEAR(sim_time(SimpleAlgorithm(), n, p), expect, 1e-9);
}

TEST(Timing, SimpleRingExact) {
  // Two ring all-to-alls: each (sqrt(p)-1)(t_s + t_w n^2/p).
  const std::size_t n = 12, p = 9;
  const double m = dn(n) * dn(n) / dn(p);
  const double expect = dn(n) * dn(n) * dn(n) / dn(p) + 2.0 * 2.0 * (kTs + kTw * m);
  EXPECT_NEAR(
      sim_time(SimpleAlgorithm(SimpleAlgorithm::Variant::kOnePortRing), n, p),
      expect, 1e-9);
}

TEST(Timing, FoxExact) {
  // Per iteration: binomial row broadcast (t_s + t_w m) log sqrt(p), then a
  // B roll (t_s + t_w m), no roll after the last iteration.
  const std::size_t n = 16, p = 16;
  const double sp = 4.0, m = dn(n) * dn(n) / dn(p);
  const double c = kTs + kTw * m;
  const double expect =
      dn(n) * dn(n) * dn(n) / dn(p) + sp * c * std::log2(sp) + (sp - 1.0) * c;
  EXPECT_NEAR(sim_time(FoxAlgorithm(), n, p), expect, 1e-9);
}

TEST(Timing, BerntsenExact) {
  // Cannon inside subcubes: 2 * p^{1/3} rounds of (t_s + t_w n^2/p), then a
  // recursive-halving reduce-scatter: (1/3) t_s log p + t_w (n^2/p^{2/3})(1 - p^{-1/3}).
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{16, 8},
                            {16, 64}, {32, 64}}) {
    const double s = std::cbrt(dn(p));
    const double m_in = dn(n) * dn(n) / dn(p);
    const double m_red = dn(n) * dn(n) / std::pow(dn(p), 2.0 / 3.0);
    const double expect = dn(n) * dn(n) * dn(n) / dn(p) +
                          2.0 * s * (kTs + kTw * m_in) +
                          std::log2(s) * kTs + kTw * m_red * (1.0 - 1.0 / s);
    EXPECT_NEAR(sim_time(BerntsenAlgorithm(), n, p), expect, 1e-9)
        << "n=" << n << " p=" << p;
  }
}

TEST(Timing, GkMatchesEq7Exactly) {
  // T_p = n^3/p + (5/3) t_s log p + (5/3) t_w (n^2/p^{2/3}) log p   (Eq. 7)
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{8, 8},
                            {16, 64}, {8, 64}, {16, 512}}) {
    const double lp = std::log2(dn(p));
    const double m = dn(n) * dn(n) / std::pow(dn(p), 2.0 / 3.0);
    const double expect = dn(n) * dn(n) * dn(n) / dn(p) +
                          (5.0 / 3.0) * lp * (kTs + kTw * m);
    EXPECT_NEAR(sim_time(GkAlgorithm(), n, p), expect, 1e-6)
        << "n=" << n << " p=" << p;
  }
}

TEST(Timing, GkFullyConnectedMatchesEq18Exactly) {
  // T_p = n^3/p + (log p + 2)(t_s + t_w n^2/p^{2/3})   (Eq. 18)
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{8, 8},
                            {16, 64}, {16, 512}}) {
    const double lp = std::log2(dn(p));
    const double m = dn(n) * dn(n) / std::pow(dn(p), 2.0 / 3.0);
    const double expect =
        dn(n) * dn(n) * dn(n) / dn(p) + (lp + 2.0) * (kTs + kTw * m);
    EXPECT_NEAR(sim_time(GkAlgorithm(GkAlgorithm::Broadcast::kBinomial,
                                     GkAlgorithm::Interconnect::kFullyConnected),
                         n, p),
                expect, 1e-6)
        << "n=" << n << " p=" << p;
  }
}

TEST(Timing, DnsMatchesEq6Exactly) {
  // With p = n^2 r: T_p = n^3/p + (t_s + t_w)(5 log r + 2 n^3/p) exactly in
  // the simulation (alignment plus 2(m-1) shifts = 2m rounds when m > 1).
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{4, 32},
                            {8, 128}, {8, 256}}) {
    const double r = dn(p) / (dn(n) * dn(n));
    const double m = dn(n) / r;  // = n^3/p
    const double c = kTs + kTw;
    const double expect = m + c * (5.0 * std::log2(r) + 2.0 * m);
    EXPECT_NEAR(sim_time(DnsAlgorithm(), n, p), expect, 1e-9)
        << "n=" << n << " p=" << p;
  }
}

TEST(Timing, DnsOneElementVersion) {
  // p = n^3 (r = n, m = 1): no internal Cannon, T_p = 1 + 5 (t_s + t_w) log n.
  const std::size_t n = 4, p = 64;
  const double expect = 1.0 + 5.0 * (kTs + kTw) * 2.0;
  EXPECT_NEAR(sim_time(DnsAlgorithm(), n, p), expect, 1e-9);
}

TEST(Timing, GkJohnssonHoMatchesSection541) {
  // Five phases, each priced as one pipelined broadcast of an
  // (n/p^{1/3})^2-word block over p^{1/3} processors.
  const std::size_t n = 16, p = 64;
  const double m = dn(n) * dn(n) / std::pow(dn(p), 2.0 / 3.0);
  const double phase = [&] {
    const double logg = std::log2(std::cbrt(dn(p)));
    const double packets = std::max(1.0, std::sqrt(kTs * m / (kTw * logg)));
    return kTs * logg + kTw * m + 2.0 * kTw * logg * packets;
  }();
  const double expect = dn(n) * dn(n) * dn(n) / dn(p) + 5.0 * phase;
  EXPECT_NEAR(sim_time(GkAlgorithm(GkAlgorithm::Broadcast::kJohnssonHo), n, p),
              expect, 1e-6);
}

TEST(Timing, GkAllPortMatchesEq17) {
  // T_p = n^3/p + t_s log p + 9 t_w n^2/(p^{2/3} log p) + 6 n p^{-1/3} sqrt(t_s t_w).
  const std::size_t n = 16, p = 64;
  const double lp = 6.0;
  const double m = dn(n) * dn(n) / std::pow(dn(p), 2.0 / 3.0);
  const double expect = dn(n) * dn(n) * dn(n) / dn(p) + kTs * lp +
                        9.0 * kTw * m / lp +
                        6.0 * dn(n) / std::cbrt(dn(p)) * std::sqrt(kTs * kTw);
  EXPECT_NEAR(sim_time(GkAlgorithm(GkAlgorithm::Broadcast::kAllPort), n, p),
              expect, 1e-6);
}

TEST(Timing, SimpleAllPortMatchesEq16) {
  // T_p = n^3/p + 2 t_w n^2/(sqrt(p) log p) + (1/2) t_s log p.
  const std::size_t n = 16, p = 16;
  const double lp = 4.0;
  const double expect = dn(n) * dn(n) * dn(n) / dn(p) +
                        2.0 * kTw * dn(n) * dn(n) / (std::sqrt(dn(p)) * lp) +
                        0.5 * kTs * lp;
  EXPECT_NEAR(
      sim_time(SimpleAlgorithm(SimpleAlgorithm::Variant::kAllPort), n, p),
      expect, 1e-6);
}

TEST(Timing, GkBeatsCannonAtSmallNLargeP) {
  // The headline behaviour: for small matrices on many processors the GK
  // algorithm outperforms Cannon's (Section 6 / Figure 4).
  const std::size_t n = 8, p = 64;
  EXPECT_LT(sim_time(GkAlgorithm(), n, p), sim_time(CannonAlgorithm(), n, p));
}

TEST(Timing, CannonBeatsGkAtLargeNModerateP) {
  // And the reverse at large granularity: Cannon has no log p factor on t_w.
  const std::size_t n = 128, p = 64;
  EXPECT_GT(sim_time(GkAlgorithm(), n, p), sim_time(CannonAlgorithm(), n, p));
}

TEST(Timing, OverheadNonNegativeEverywhere) {
  Rng rng(8);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  for (const auto& alg : all_algorithms()) {
    for (std::size_t p : {1u, 4u, 8u, 16u, 64u}) {
      if (!alg->applicable(16, p)) continue;
      const auto res = alg->run(a, b, p, test_params());
      EXPECT_GE(res.report.total_overhead(), -1e-9)
          << alg->name() << " p=" << p;
      EXPECT_LE(res.report.efficiency(), 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace hpmm
