#pragma once

#include "algorithms/parallel_matmul.hpp"

namespace hpmm {

/// The Dekel-Nassimi-Sahni algorithm (Section 4.5) for n^2 <= p <= n^3
/// processors, p = n^2 * r with 1 <= r <= n.
///
/// The machine is viewed as r x r x r *superprocessors* of (n/r)^2 hypercube
/// processors each, holding one matrix element apiece. Superprocessor
/// (i, j, k) computes the block product A(j,i) * B(i,k) with one-element-per-
/// processor Cannon on its internal (n/r) x (n/r) mesh; the r partial block
/// products along the i axis are then summed in a binomial tree.
/// With r = n this is the classic one-element-per-processor DNS algorithm
/// (p = n^3, O(log n) time).
///
/// Paper model (Eq. 6): T_p = n^3/p + (t_s + t_w)(5 log(p/n^2) + 2 n^3/p).
/// Note the 2 (t_s + t_w) n^3/p term: it caps the achievable efficiency at
/// 1 / (1 + 2 t_s + 2 t_w) no matter how large the problem (Section 5.3).
class DnsAlgorithm final : public ParallelMatmul {
 public:
  std::string name() const override { return "dns"; }
  void check_applicable(std::size_t n, std::size_t p) const override;
  MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                   const MachineParams& params) const override;
};

}  // namespace hpmm
