#include "core/distance.hpp"

#include "core/registry.hpp"
#include "matrix/generate.hpp"

namespace hpmm {

DistanceFromOptimal distance_from_optimal(const ParallelMatmul& impl,
                                          const PerfModel& model,
                                          std::size_t n, std::size_t p,
                                          std::uint64_t seed) {
  impl.check_applicable(n, p);
  Rng rng(seed);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const MatmulResult run = impl.run(a, b, p, model.params());
  return distance_from_measured(model, static_cast<double>(n),
                                static_cast<double>(p),
                                static_cast<double>(run.report.total_words));
}

DistanceFromOptimal distance_from_optimal(const std::string& algorithm,
                                          std::size_t n, std::size_t p,
                                          const MachineParams& machine,
                                          std::uint64_t seed) {
  const AlgorithmRegistry& registry = default_registry();
  const ParallelMatmul& impl = registry.implementation(algorithm);
  const auto model = registry.model(algorithm, machine);
  DistanceFromOptimal d = distance_from_optimal(impl, *model, n, p, seed);
  d.algorithm = algorithm;  // keep the registry name (e.g. cannon-gray)
  return d;
}

}  // namespace hpmm
