#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace hpmm {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written sample of an instantaneous quantity.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts samples v <= bounds[i]
/// (cumulative-style upper bounds, ascending); one implicit overflow bucket
/// catches everything above the last bound. Tracks count and sum so the
/// mean survives bucketing.
class Histogram {
 public:
  Histogram() = default;
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  /// Number of buckets including the overflow bucket (bounds + 1).
  std::size_t buckets() const noexcept { return counts_.size(); }
  /// Inclusive upper bound of bucket i; infinity for the overflow bucket.
  double bucket_bound(std::size_t i) const;
  std::uint64_t bucket_count(std::size_t i) const;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  /// Largest observed sample (exact, not bucketed); 0 before any
  /// observation. Correct for all-negative distributions too.
  double max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Bucket-interpolated quantile estimate for q in [0, 1]: find the bucket
  /// holding the q-th ranked sample and interpolate linearly between its
  /// bounds (the first bucket interpolates up from min(0, its bound)).
  /// Ranks that land in the overflow bucket — samples above the last finite
  /// bound — interpolate between that bound and max(), the one order
  /// statistic tracked exactly (so a p99 past the top edge no longer
  /// collapses to the single largest sample); every estimate is capped at
  /// max(). An empty histogram returns 0. Throws PreconditionError for q
  /// outside [0, 1].
  double quantile(double q) const;

  void reset() noexcept;

  /// Power-of-two upper bounds 1, 2, 4, ..., 2^(n-1) — the usual choice for
  /// message-size and latency distributions.
  static std::vector<double> pow2_bounds(unsigned n);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_{0};  // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width virtual-time windowed accumulator: every observation lands
/// in window floor(time / width), and windows are stored sparsely, so an
/// arbitrarily long virtual timeline costs memory only where something
/// happened. Each window tracks count, sum and max of the observed values;
/// when histogram bounds are supplied at construction, each window also
/// carries a fixed-bucket Histogram so per-window quantiles (e.g. latency
/// p99 over time) survive aggregation. The serve-mode per-tenant time
/// series (DESIGN.md §13) are built from these.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// `window_width` must be positive. A non-empty `hist_bounds` (strictly
  /// ascending) attaches a per-window histogram.
  explicit TimeSeries(double window_width,
                      std::vector<double> hist_bounds = {});

  void observe(double time, double value);

  double window_width() const noexcept { return width_; }
  bool empty() const noexcept { return windows_.empty(); }
  bool has_histograms() const noexcept { return !hist_bounds_.empty(); }

  struct Window {
    std::int64_t index = 0;   ///< floor(time / window_width)
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    Histogram hist;  ///< per-window samples; default-empty without bounds
  };

  /// Sparse, index-sorted windows.
  const std::map<std::int64_t, Window>& windows() const noexcept {
    return windows_;
  }
  /// The window containing `index`, or null if nothing landed there.
  const Window* find(std::int64_t index) const;

  /// Sum of counts over every window.
  std::uint64_t total_count() const noexcept;
  /// Sum of sums over every window.
  double total_sum() const noexcept;

  void reset() noexcept { windows_.clear(); }

  /// {"window_width": W, "windows": [{"index", "start", "count", "sum",
  /// "max"[, "p50", "p95", "p99"]}]} — quantiles only with histograms.
  void write_json(std::ostream& os) const;

 private:
  double width_ = 0.0;
  std::vector<double> hist_bounds_;
  std::map<std::int64_t, Window> windows_;
};

/// Words transferred per directed (src, dst) processor pair. Stored sparsely
/// (algorithms touch O(p log p) of the p^2 links), with a dense row-major
/// export for tooling.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t procs = 0) : procs_(procs) {}

  void add(std::size_t src, std::size_t dst, std::uint64_t words);
  std::uint64_t words(std::size_t src, std::size_t dst) const;

  std::size_t procs() const noexcept { return procs_; }
  std::uint64_t total_words() const noexcept { return total_; }
  /// Number of directed pairs with nonzero traffic.
  std::size_t links_used() const noexcept { return cells_.size(); }

  struct Link {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::uint64_t words = 0;
  };
  /// The heaviest directed link (lowest (src, dst) on ties; zero Link when
  /// no traffic was recorded).
  Link busiest() const;

  /// Dense p x p row-major copy — O(p^2) memory, intended for export only.
  std::vector<std::uint64_t> dense() const;

 private:
  std::size_t procs_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

/// Name-addressed bag of counters, gauges and histograms. Instruments fetch
/// their metric once by name (creating it on first use) and update it
/// directly; readers enumerate by sorted name or export everything as JSON.
class MetricsRegistry {
 public:
  /// Fetch-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies on first creation only (non-empty, ascending).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  /// `window_width` and `hist_bounds` apply on first creation only.
  TimeSeries& series(const std::string& name, double window_width,
                     std::vector<double> hist_bounds = {});

  /// Lookup without creating; null when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const TimeSeries* find_series(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;
  std::vector<std::string> series_names() const;

  /// Zero every metric, keeping registrations (and histogram buckets).
  void reset() noexcept;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, max, p50, p95, p99,
  /// buckets: [...]}}, "series": {name: {window_width, windows: [...]}}}.
  /// The "series" section appears only when at least one TimeSeries is
  /// registered, keeping pre-existing exports byte-stable.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace hpmm
