#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {
namespace {

MachineParams test_params() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  return m;
}

SimMachine machine(unsigned dim) {
  return SimMachine(std::make_shared<Hypercube>(dim), test_params());
}

TEST(Phase, DefaultIsPhaseZero) {
  auto m = machine(1);
  EXPECT_EQ(m.current_phase(), 0u);
  ASSERT_EQ(m.phase_names().size(), 1u);
  EXPECT_EQ(m.phase_names()[0], "");
}

TEST(Phase, BeginEndNestAndIntern) {
  auto m = machine(1);
  const auto a = m.begin_phase("align");
  EXPECT_EQ(m.current_phase(), a);
  const auto s = m.begin_phase("shift");
  EXPECT_EQ(m.current_phase(), s);  // innermost wins
  m.end_phase();
  EXPECT_EQ(m.current_phase(), a);
  m.end_phase();
  EXPECT_EQ(m.current_phase(), 0u);
  // Reusing a name returns the same interned id.
  EXPECT_EQ(m.begin_phase("shift"), s);
  m.end_phase();
  ASSERT_EQ(m.phase_names().size(), 3u);
  EXPECT_EQ(m.phase_names()[a], "align");
  EXPECT_EQ(m.phase_names()[s], "shift");
}

TEST(Phase, ScopeIsRaii) {
  auto m = machine(1);
  {
    PhaseScope scope(m, "multiply");
    EXPECT_EQ(m.phase_names()[m.current_phase()], "multiply");
  }
  EXPECT_EQ(m.current_phase(), 0u);
}

TEST(Phase, Validation) {
  auto m = machine(1);
  EXPECT_THROW(m.end_phase(), PreconditionError);  // nothing open
  EXPECT_THROW(m.begin_phase(""), PreconditionError);
}

TEST(Phase, TagsTraceEvents) {
  auto m = machine(2);
  m.enable_tracing();
  m.compute(0, 5.0);  // unphased
  {
    PhaseScope scope(m, "shift");
    std::vector<Message> msgs;
    msgs.emplace_back(0, 1, 1, Matrix(1, 5));
    m.exchange(std::move(msgs));
  }
  const Trace t = m.trace();
  ASSERT_GE(t.phase_names().size(), 2u);
  bool saw_unphased_compute = false, saw_phased_send = false;
  for (const auto& e : t.events()) {
    if (e.kind == TraceEvent::Kind::kCompute && e.phase == 0) {
      saw_unphased_compute = true;
    }
    if (e.kind == TraceEvent::Kind::kSend) {
      EXPECT_EQ(t.phase_name(e.phase), "shift");
      saw_phased_send = true;
    }
  }
  EXPECT_TRUE(saw_unphased_compute);
  EXPECT_TRUE(saw_phased_send);
}

TEST(Phase, ReportBreaksDownByPhase) {
  auto m = machine(2);
  {
    PhaseScope scope(m, "multiply");
    m.compute(0, 100.0);
  }
  {
    PhaseScope scope(m, "shift");
    std::vector<Message> msgs;
    msgs.emplace_back(0, 1, 1, Matrix(1, 5));  // cost 10 + 2*5 = 20
    m.exchange(std::move(msgs));
  }
  const RunReport r = m.report("test", 4, 64.0);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].name, "multiply");
  EXPECT_DOUBLE_EQ(r.phases[0].max_compute_time, 100.0);
  EXPECT_EQ(r.phases[0].messages, 0u);
  EXPECT_EQ(r.phases[1].name, "shift");
  EXPECT_DOUBLE_EQ(r.phases[1].max_comm_time, 20.0);
  EXPECT_EQ(r.phases[1].messages, 1u);
  EXPECT_EQ(r.phases[1].words, 5u);
  // Critical path: 100 compute + 10 startup + 10 word time.
  EXPECT_DOUBLE_EQ(r.critical_path.compute, 100.0);
  EXPECT_DOUBLE_EQ(r.critical_path.startup, 10.0);
  EXPECT_DOUBLE_EQ(r.critical_path.word, 10.0);
  EXPECT_DOUBLE_EQ(r.critical_path.total(), r.t_parallel);
}

TEST(Phase, UnphasedRowOnlyWhenNonZero) {
  auto m = machine(1);
  {
    PhaseScope scope(m, "only");
    m.compute(0, 1.0);
  }
  const RunReport r = m.report("test", 2, 8.0);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_EQ(r.phases[0].name, "only");
}

TEST(Phase, WaitersAdoptTheSendersChain) {
  // Receiver 1 idles until the send arrives; its critical path must be the
  // sender's compute + the message cost, not its own (empty) history.
  auto m = machine(2);
  {
    PhaseScope scope(m, "work");
    m.compute(0, 50.0);
  }
  {
    PhaseScope scope(m, "move");
    std::vector<Message> msgs;
    msgs.emplace_back(0, 1, 1, Matrix(1, 5));
    m.exchange(std::move(msgs));
  }
  const RunReport r = m.report("test", 4, 64.0);
  // Both the sender's and the receiver's clock decompose identically here,
  // and T_p = 50 + 20.
  EXPECT_DOUBLE_EQ(r.t_parallel, 70.0);
  EXPECT_DOUBLE_EQ(r.critical_path.compute, 50.0);
  EXPECT_DOUBLE_EQ(r.critical_path.startup, 10.0);
  EXPECT_DOUBLE_EQ(r.critical_path.word, 10.0);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(r.phases[0].path.compute, 50.0);  // "work" slice
  EXPECT_DOUBLE_EQ(r.phases[1].path.startup + r.phases[1].path.word, 20.0);
}

TEST(Phase, BarrierLaggardsAdoptTheCriticalChain) {
  auto m = machine(2);
  {
    PhaseScope scope(m, "compute");
    m.compute(2, 80.0);
  }
  m.synchronize();
  const RunReport r = m.report("test", 4, 64.0);
  EXPECT_DOUBLE_EQ(r.t_parallel, 80.0);
  EXPECT_DOUBLE_EQ(r.critical_path.compute, 80.0);
  EXPECT_DOUBLE_EQ(r.critical_path.total(), 80.0);
}

TEST(Phase, ModeledChargesLandInModeledTerm) {
  auto m = machine(2);
  const std::vector<ProcId> group{0, 1, 2, 3};
  {
    PhaseScope scope(m, "allport");
    m.charge_group_comm(group, 33.0);
  }
  const RunReport r = m.report("test", 4, 64.0);
  EXPECT_DOUBLE_EQ(r.critical_path.modeled, 33.0);
  EXPECT_DOUBLE_EQ(r.critical_path.total(), r.t_parallel);
}

TEST(Phase, ChainSumsToClockForEveryProcessor) {
  // After a full GK run, the per-phase critical-path terms must sum to T_p
  // (fp-accumulation tolerance only).
  Rng rng(3);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  const auto& gk = default_registry().implementation("gk");
  const auto result = gk.run(a, b, 64, test_params());
  const RunReport& r = result.report;
  EXPECT_FALSE(r.phases.empty());
  double sum = 0.0;
  for (const auto& ph : r.phases) sum += ph.path.total();
  EXPECT_NEAR(sum, r.t_parallel, 1e-9 * (1.0 + r.t_parallel));
  EXPECT_NEAR(r.critical_path.total(), r.t_parallel,
              1e-9 * (1.0 + r.t_parallel));
}

TEST(Phase, AttributionIsBitIdentityNeutral) {
  // Tracing on/off and phases must not perturb any simulated quantity.
  Rng rng(7);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  const auto& cannon = default_registry().implementation("cannon");
  MachineParams mp = test_params();
  const auto plain = cannon.run(a, b, 16, mp);
  mp.trace = true;
  const auto traced = cannon.run(a, b, 16, mp);
  EXPECT_DOUBLE_EQ(plain.report.t_parallel, traced.report.t_parallel);
  EXPECT_EQ(plain.report.total_messages, traced.report.total_messages);
  EXPECT_DOUBLE_EQ(max_abs_diff(plain.c, traced.c), 0.0);
  ASSERT_EQ(plain.report.phases.size(), traced.report.phases.size());
  for (std::size_t i = 0; i < plain.report.phases.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.report.phases[i].path.total(),
                     traced.report.phases[i].path.total());
  }
}

TEST(Phase, AlgorithmsNamePaperPhases) {
  Rng rng(1);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  const auto& cannon = default_registry().implementation("cannon");
  const auto result = cannon.run(a, b, 16, test_params());
  std::vector<std::string> names;
  for (const auto& ph : result.report.phases) names.push_back(ph.name);
  EXPECT_EQ(names, (std::vector<std::string>{"align", "multiply", "shift"}));
}

TEST(Phase, ResetClearsPhaseState) {
  auto m = machine(1);
  {
    PhaseScope scope(m, "x");
    m.compute(0, 1.0);
  }
  m.metrics().counter("custom").add(5);
  m.reset();
  EXPECT_EQ(m.current_phase(), 0u);
  EXPECT_EQ(m.phase_names().size(), 1u);
  EXPECT_EQ(m.metrics().counter("custom").value(), 0u);
  EXPECT_EQ(m.traffic().total_words(), 0u);
  const RunReport r = m.report("test", 2, 8.0);
  EXPECT_TRUE(r.phases.empty());
}

TEST(Metrics, ExchangeFeedsHistogramsAndTraffic) {
  auto m = machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 5));
  msgs.emplace_back(2, 3, 1, Matrix(1, 3));
  m.exchange(std::move(msgs));
  const auto* words = m.metrics().find_histogram("sim.message_words");
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(words->count(), 2u);
  EXPECT_DOUBLE_EQ(words->sum(), 8.0);
  EXPECT_EQ(m.metrics().counter("sim.messages").value(), 2u);
  EXPECT_EQ(m.metrics().counter("sim.words").value(), 8u);
  EXPECT_EQ(m.traffic().words(0, 1), 5u);
  EXPECT_EQ(m.traffic().words(2, 3), 3u);
  EXPECT_EQ(m.traffic().links_used(), 2u);
}

TEST(Metrics, CollectivesCountInvocations) {
  auto m = machine(3);
  std::vector<ProcId> group(8);
  for (ProcId pid = 0; pid < 8; ++pid) group[pid] = pid;
  broadcast_binomial(m, group, 0, 1, Matrix(2, 2));
  EXPECT_EQ(m.metrics().counter("collective.broadcast_binomial").value(), 1u);
  std::vector<Matrix> contribs(8, Matrix(2, 2));
  reduce_binomial(m, group, 0, 2, std::move(contribs));
  EXPECT_EQ(m.metrics().counter("collective.reduce_binomial").value(), 1u);
}

TEST(Metrics, RegistryJsonExportIsValid) {
  auto m = machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 4));
  m.exchange(std::move(msgs));
  std::ostringstream os;
  m.metrics().write_json(os);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
}

}  // namespace
}  // namespace hpmm
