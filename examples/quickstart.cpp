// Quickstart: multiply two matrices with the GK algorithm on a simulated
// 64-processor hypercube, verify the product against the serial kernel, and
// read the timing report.
//
//   ./quickstart [--n=64] [--p=64] [--ts=150] [--tw=3]

#include <iostream>

#include "algorithms/gk.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hpmm;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto p = static_cast<std::size_t>(args.get_int("p", 64));

  MachineParams machine;
  machine.t_s = args.get_double("ts", 150.0);  // nCUBE2-like defaults
  machine.t_w = args.get_double("tw", 3.0);

  // 1. Make reproducible random operands.
  Rng rng(2024);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);

  // 2. Run the paper's GK formulation on a simulated hypercube.
  GkAlgorithm gk;
  gk.check_applicable(n, p);  // throws with an explanation if (n, p) is bad
  const MatmulResult result = gk.run(a, b, p, machine);

  // 3. Verify against the serial O(n^3) algorithm.
  const Matrix reference = multiply(a, b);
  const double err = max_abs_diff(result.c, reference);

  // 4. Read the report.
  const RunReport& r = result.report;
  std::cout << "hpmm quickstart: C = A * B with the GK algorithm\n"
            << "  n = " << n << ", p = " << p << " (hypercube), t_s = "
            << machine.t_s << ", t_w = " << machine.t_w << "\n\n"
            << "  parallel time  T_p = " << r.t_parallel << " units\n"
            << "  speedup        S   = " << r.speedup() << "\n"
            << "  efficiency     E   = " << r.efficiency() << "\n"
            << "  total overhead T_o = " << r.total_overhead() << "\n"
            << "  messages sent      = " << r.total_messages << "\n"
            << "  words moved        = " << r.total_words << "\n"
            << "  max |C - C_serial| = " << err << "\n\n"
            << (err < 1e-10 * static_cast<double>(n) ? "product verified OK"
                                                     : "PRODUCT MISMATCH")
            << "\n";
  return err < 1e-10 * static_cast<double>(n) ? 0 : 1;
}
