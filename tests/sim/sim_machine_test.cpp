#include "sim/sim_machine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams test_params(double ts = 10.0, double tw = 2.0) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

SimMachine make_machine(unsigned dim, MachineParams params = test_params()) {
  return SimMachine(std::make_shared<Hypercube>(dim), std::move(params));
}

Matrix payload(std::size_t words) { return Matrix(1, words); }

TEST(SimMachine, ComputeAdvancesClockAndCounters) {
  auto m = make_machine(2);
  m.compute(1, 100.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 100.0);
  EXPECT_DOUBLE_EQ(m.clock(0), 0.0);
  EXPECT_EQ(m.stats(1).flops, 100u);
  EXPECT_DOUBLE_EQ(m.stats(1).compute_time, 100.0);
  EXPECT_DOUBLE_EQ(m.time(), 100.0);
}

TEST(SimMachine, ComputeValidation) {
  auto m = make_machine(1);
  EXPECT_THROW(m.compute(5, 1.0), PreconditionError);
  EXPECT_THROW(m.compute(0, -1.0), PreconditionError);
}

TEST(SimMachine, SingleMessageCostAndDelivery) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 7, payload(5));
  m.exchange(std::move(msgs));
  // cost = t_s + t_w * 5 = 10 + 10 = 20 for both endpoints.
  EXPECT_DOUBLE_EQ(m.clock(0), 20.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 20.0);
  EXPECT_TRUE(m.has_message(1, 7));
  const Message got = m.receive(1, 7);
  EXPECT_EQ(got.words(), 5u);
  EXPECT_EQ(got.src, 0u);
  EXPECT_FALSE(m.has_message(1, 7));
}

TEST(SimMachine, ReceiverWaitsForLateSender) {
  auto m = make_machine(2);
  m.compute(0, 50.0);  // sender is busy until t = 50
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));
  m.exchange(std::move(msgs));
  EXPECT_DOUBLE_EQ(m.clock(0), 70.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 70.0);  // waited 50, then 20 transfer
  EXPECT_DOUBLE_EQ(m.stats(1).idle_time, 70.0);
  EXPECT_DOUBLE_EQ(m.stats(0).idle_time, 0.0);
}

TEST(SimMachine, BusyReceiverDoesNotWait) {
  auto m = make_machine(2);
  m.compute(1, 100.0);  // receiver busy past the arrival
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(5));
  m.exchange(std::move(msgs));
  EXPECT_DOUBLE_EQ(m.clock(1), 100.0);  // arrival at 20 < 100
  EXPECT_DOUBLE_EQ(m.stats(1).idle_time, 0.0);
}

TEST(SimMachine, RingShiftCostsOneMessageTime) {
  // Every processor sends to its hypercube neighbour and receives from the
  // other one: a synchronous shift costs t_s + t_w m for everyone.
  auto m = make_machine(2);
  std::vector<Message> msgs;
  for (ProcId pid = 0; pid < 4; ++pid) {
    msgs.emplace_back(pid, (pid + 1) % 4, 1, payload(3));
  }
  m.exchange(std::move(msgs));
  for (ProcId pid = 0; pid < 4; ++pid) {
    EXPECT_DOUBLE_EQ(m.clock(pid), 16.0);  // 10 + 2*3
  }
}

TEST(SimMachine, OnePortRejectsTwoSends) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(1));
  msgs.emplace_back(0, 2, 1, payload(1));
  EXPECT_THROW(m.exchange(std::move(msgs)), PreconditionError);
}

TEST(SimMachine, OnePortRejectsTwoReceives) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(1, 0, 1, payload(1));
  msgs.emplace_back(2, 0, 1, payload(1));
  EXPECT_THROW(m.exchange(std::move(msgs)), PreconditionError);
}

TEST(SimMachine, AllPortAllowsConcurrentSendsAtMaxCost) {
  auto params = test_params();
  params.ports = PortModel::kAllPort;
  SimMachine m(std::make_shared<Hypercube>(2), params);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(3));  // cost 16
  msgs.emplace_back(0, 2, 2, payload(8));  // cost 26
  m.exchange(std::move(msgs));
  // Concurrent transfers: the sender is busy for the longer one only.
  EXPECT_DOUBLE_EQ(m.clock(0), 26.0);
  EXPECT_DOUBLE_EQ(m.clock(1), 16.0);
  EXPECT_DOUBLE_EQ(m.clock(2), 26.0);
}

TEST(SimMachine, AllPortStillBoundedByPortCount) {
  auto params = test_params();
  params.ports = PortModel::kAllPort;
  SimMachine m(std::make_shared<Hypercube>(1), params);  // 1 port per proc
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(1));
  EXPECT_NO_THROW(m.exchange(std::move(msgs)));
  // dim-1 cube has 1 port; two sends must be rejected... but p=2 has only
  // one possible peer anyway, so use a bigger cube.
  SimMachine m2(std::make_shared<Hypercube>(2), params);  // 2 ports
  std::vector<Message> over;
  over.emplace_back(0, 1, 1, payload(1));
  over.emplace_back(0, 2, 2, payload(1));
  over.emplace_back(0, 3, 3, payload(1));
  EXPECT_THROW(m2.exchange(std::move(over)), PreconditionError);
}

TEST(SimMachine, SelfMessageRejected) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(1, 1, 1, payload(1));
  EXPECT_THROW(m.exchange(std::move(msgs)), PreconditionError);
}

TEST(SimMachine, ReceiveMissingTagThrows) {
  auto m = make_machine(1);
  EXPECT_THROW(m.receive(0, 42), PreconditionError);
}

TEST(SimMachine, StoreAndForwardChargesPerHop) {
  auto params = test_params();
  params.routing = Routing::kStoreAndForward;
  SimMachine m(std::make_shared<Hypercube>(2), params);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 3, 1, payload(5));  // 2 hops on the 2-cube
  m.exchange(std::move(msgs));
  EXPECT_DOUBLE_EQ(m.clock(3), 40.0);  // (10 + 10) * 2
}

TEST(SimMachine, SynchronizeBarrier) {
  auto m = make_machine(2);
  m.compute(0, 100.0);
  const double t = m.synchronize();
  EXPECT_DOUBLE_EQ(t, 100.0);
  for (ProcId pid = 0; pid < 4; ++pid) EXPECT_DOUBLE_EQ(m.clock(pid), 100.0);
  EXPECT_DOUBLE_EQ(m.stats(3).idle_time, 100.0);
  EXPECT_DOUBLE_EQ(m.stats(0).idle_time, 0.0);
}

TEST(SimMachine, ChargeGroupComm) {
  auto m = make_machine(2);
  m.compute(1, 30.0);
  const std::vector<ProcId> group{0, 1};
  m.charge_group_comm(group, 12.0);
  EXPECT_DOUBLE_EQ(m.clock(0), 42.0);  // synced to 30, then +12
  EXPECT_DOUBLE_EQ(m.clock(1), 42.0);
  EXPECT_DOUBLE_EQ(m.clock(2), 0.0);  // not in the group
  EXPECT_DOUBLE_EQ(m.stats(0).idle_time, 30.0);
  EXPECT_DOUBLE_EQ(m.stats(0).comm_time, 12.0);
}

TEST(SimMachine, StorageAccounting) {
  auto m = make_machine(1);
  m.note_alloc(0, 100);
  m.note_alloc(0, 50);
  EXPECT_EQ(m.stats(0).peak_words_stored, 150u);
  m.note_free(0, 120);
  EXPECT_EQ(m.stats(0).words_stored, 30u);
  EXPECT_EQ(m.stats(0).peak_words_stored, 150u);
  EXPECT_THROW(m.note_free(0, 31), PreconditionError);
}

TEST(SimMachine, SenderCountersTrackTraffic) {
  auto m = make_machine(2);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(7));
  m.exchange(std::move(msgs));
  EXPECT_EQ(m.stats(0).messages_sent, 1u);
  EXPECT_EQ(m.stats(0).words_sent, 7u);
  EXPECT_EQ(m.stats(1).messages_sent, 0u);
}

TEST(SimMachine, ReportAggregates) {
  auto m = make_machine(2);
  m.compute(0, 64.0);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(4));
  m.exchange(std::move(msgs));
  (void)m.receive(1, 1);
  m.synchronize();
  const RunReport r = m.report("test", 4, 64.0);
  EXPECT_EQ(r.p, 4u);
  EXPECT_EQ(r.n, 4u);
  EXPECT_DOUBLE_EQ(r.t_parallel, 64.0 + 10.0 + 2.0 * 4);
  EXPECT_EQ(r.total_flops, 64u);
  EXPECT_EQ(r.total_messages, 1u);
  EXPECT_EQ(r.total_words, 4u);
  EXPECT_GT(r.total_overhead(), 0.0);
  EXPECT_GT(r.speedup(), 0.0);
  EXPECT_LE(r.efficiency(), 1.0);
  EXPECT_FALSE(r.summary().empty());
}

TEST(SimMachine, PendingMessagesAndReset) {
  auto m = make_machine(1);
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, payload(1));
  m.exchange(std::move(msgs));
  EXPECT_EQ(m.pending_messages(), 1u);
  m.reset();
  EXPECT_EQ(m.pending_messages(), 0u);
  EXPECT_DOUBLE_EQ(m.time(), 0.0);
}

TEST(SimMachine, ComputeMultiplyAddChargesExactFlops) {
  auto m = make_machine(1);
  Matrix a(4, 8, 1.0), b(8, 2, 1.0), c(4, 2);
  m.compute_multiply_add(0, a, b, c);
  EXPECT_DOUBLE_EQ(m.clock(0), 64.0);  // 4*8*2
  EXPECT_EQ(c(0, 0), 8.0);
}

}  // namespace
}  // namespace hpmm
