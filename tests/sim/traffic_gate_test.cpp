// TrafficCapture::kAuto boundary (DESIGN.md §12): capture stays on at
// exactly p = MachineParams::kTrafficAutoThreshold and switches off at one
// more processor. The test references the named constant — not a literal —
// so the gate, docs/cli.md and this check can only drift together.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/sim_machine.hpp"
#include "topology/topology.hpp"

namespace hpmm {
namespace {

SimMachine auto_machine(std::size_t p) {
  MachineParams mp;
  mp.t_s = 10.0;
  mp.t_w = 2.0;
  mp.traffic_capture = TrafficCapture::kAuto;
  // Aggregate capture keeps the boundary machines cheap; the traffic gate
  // is independent of the metrics mode.
  mp.metrics_mode = MetricsMode::kAggregate;
  return SimMachine(std::make_shared<FullyConnected>(p), mp);
}

TEST(TrafficGate, ThresholdConstantMatchesTheDocumentedValue) {
  // docs/cli.md documents --traffic=auto as "on up to 65536 processors".
  EXPECT_EQ(MachineParams::kTrafficAutoThreshold, 65536u);
}

TEST(TrafficGate, AutoCapturesAtExactlyTheThreshold) {
  SimMachine m = auto_machine(MachineParams::kTrafficAutoThreshold);
  EXPECT_TRUE(m.traffic_captured());
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 4));
  m.exchange(std::move(msgs));
  (void)m.receive(1, 1);
  EXPECT_GT(m.traffic().links_used(), 0u);
}

TEST(TrafficGate, AutoDropsCaptureOneProcessorPastTheThreshold) {
  SimMachine m = auto_machine(MachineParams::kTrafficAutoThreshold + 1);
  EXPECT_FALSE(m.traffic_captured());
  std::vector<Message> msgs;
  msgs.emplace_back(0, 1, 1, Matrix(1, 4));
  m.exchange(std::move(msgs));
  (void)m.receive(1, 1);
  EXPECT_EQ(m.traffic().links_used(), 0u);
  // The gate affects only capture, never the simulated clocks.
  EXPECT_DOUBLE_EQ(m.clock(1), 10.0 + 2.0 * 4);
}

TEST(TrafficGate, ExplicitOnOverridesTheThreshold) {
  MachineParams mp;
  mp.traffic_capture = TrafficCapture::kOn;
  mp.metrics_mode = MetricsMode::kAggregate;
  SimMachine m(
      std::make_shared<FullyConnected>(MachineParams::kTrafficAutoThreshold + 1),
      mp);
  EXPECT_TRUE(m.traffic_captured());
}

}  // namespace
}  // namespace hpmm
