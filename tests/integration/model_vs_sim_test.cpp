// Cross-layer validation: the simulated algorithms must realise their
// analytical models — exactly where the paper's expression is exact, within
// the paper's loose constants elsewhere.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/validate.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

struct GridCase {
  const char* name;
  std::size_t n, p;
  double lo, hi;  // acceptable sim/model T_p ratio band
};

class ModelVsSim : public ::testing::TestWithParam<GridCase> {};

TEST_P(ModelVsSim, RatioWithinBand) {
  const auto c = GetParam();
  const auto& reg = default_registry();
  const auto model = reg.model(c.name, params(60, 2));
  const auto pt = validate_algorithm(reg.implementation(c.name), *model, c.n, c.p);
  EXPECT_TRUE(pt.product_correct) << c.name;
  EXPECT_GE(pt.ratio(), c.lo) << c.name << " n=" << c.n << " p=" << c.p
                              << " sim=" << pt.sim_t_parallel
                              << " model=" << pt.model_t_parallel;
  EXPECT_LE(pt.ratio(), c.hi) << c.name << " n=" << c.n << " p=" << c.p
                              << " sim=" << pt.sim_t_parallel
                              << " model=" << pt.model_t_parallel;
}

INSTANTIATE_TEST_SUITE_P(
    ExactModels, ModelVsSim,
    ::testing::Values(
        // Cannon, GK (hypercube), GK (CM-5) and DNS simulate their equations
        // exactly.
        GridCase{"cannon", 16, 4, 0.999, 1.001},
        GridCase{"cannon", 16, 16, 0.999, 1.001},
        GridCase{"cannon", 32, 64, 0.999, 1.001},
        // cannon25d (registry default c = 2) realises its closed form
        // exactly: broadcasts, staggered alignment, s = q/c shifts, reduce.
        GridCase{"cannon25d", 16, 8, 0.999, 1.001},
        GridCase{"cannon25d", 16, 32, 0.999, 1.001},
        GridCase{"cannon25d", 32, 128, 0.999, 1.001},
        GridCase{"gk", 16, 8, 0.999, 1.001},
        GridCase{"gk", 16, 64, 0.999, 1.001},
        GridCase{"gk", 24, 512, 0.999, 1.001},
        GridCase{"gk-fc", 16, 64, 0.999, 1.001},
        GridCase{"gk-fc", 16, 512, 0.999, 1.001},
        GridCase{"dns", 4, 32, 0.999, 1.001},
        GridCase{"dns", 8, 128, 0.999, 1.001},
        GridCase{"gk-allport", 16, 64, 0.999, 1.001},
        GridCase{"simple-allport", 16, 16, 0.999, 1.001},
        GridCase{"simple-ring", 12, 9, 0.999, 1.001},
        GridCase{"simple-ring", 16, 16, 0.999, 1.001}));

INSTANTIATE_TEST_SUITE_P(
    LooseConstantModels, ModelVsSim,
    ::testing::Values(
        // The paper's Eq. 2 doubles the recursive-doubling t_s constant and
        // Eq. 4 models a pipelined Fox; the simulations sit within a small
        // constant band of the expressions.
        GridCase{"simple", 16, 16, 0.4, 1.1},
        GridCase{"simple", 32, 64, 0.4, 1.1},
        GridCase{"fox", 16, 16, 0.3, 3.0},
        GridCase{"berntsen", 16, 8, 0.7, 1.05},
        GridCase{"berntsen", 32, 64, 0.7, 1.05},
        GridCase{"gk-jh", 16, 64, 0.5, 1.5}));

TEST(ModelVsSim, OverheadRatioStableAcrossN) {
  // For a fixed p, sim/model must not drift with n (same asymptotics).
  const auto& reg = default_registry();
  const auto model = reg.model("gk", params(60, 2));
  double first = 0.0;
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const auto pt = validate_algorithm(reg.implementation("gk"), *model, n, 64);
    if (first == 0.0) {
      first = pt.ratio();
    } else {
      EXPECT_NEAR(pt.ratio(), first, 0.05) << n;
    }
  }
}

TEST(ModelVsSim, CannonExactAcrossMachines) {
  const auto& reg = default_registry();
  for (const auto mp : {params(150, 3), params(10, 3), params(0.5, 3),
                        machines::cm5_measured()}) {
    const auto model = reg.model("cannon", mp);
    const auto pt = validate_algorithm(reg.implementation("cannon"), *model, 24, 16);
    EXPECT_NEAR(pt.ratio(), 1.0, 1e-9) << mp.label;
  }
}

}  // namespace
}  // namespace hpmm
