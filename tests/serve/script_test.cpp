#include "serve/script.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/error.hpp"

namespace hpmm {
namespace {

std::string error_of(const std::string& script) {
  try {
    parse_serve_script(script);
  } catch (const PreconditionError& e) {
    return e.what();
  }
  return "";
}

TEST(ServeScript, ParsesFieldsCommentsAndBlankLines) {
  const std::string text =
      "# tenant alice runs cannon\n"
      "\n"
      "request tenant=alice arrival=0 algo=cannon n=16 p=16 machine=ideal\n"
      "request tenant=bob arrival=500 n=32 p=8 deadline_factor=2.5\n";
  const auto reqs = parse_serve_script(text);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].id, 0u);
  EXPECT_EQ(reqs[0].tenant, "alice");
  EXPECT_DOUBLE_EQ(reqs[0].arrival, 0.0);
  EXPECT_EQ(reqs[0].algo, "cannon");
  EXPECT_EQ(reqs[0].n, 16u);
  EXPECT_EQ(reqs[0].p, 16u);
  EXPECT_EQ(reqs[0].machine, "ideal");
  EXPECT_EQ(reqs[0].faults, nullptr);  // no fault key: no plan
  EXPECT_EQ(reqs[1].id, 1u);
  EXPECT_EQ(reqs[1].algo, "");  // selector's choice
  EXPECT_DOUBLE_EQ(reqs[1].deadline_factor, 2.5);
}

TEST(ServeScript, StreamAndStringOverloadsAgree) {
  const std::string text = "request tenant=a arrival=1 n=16 p=16\n";
  std::istringstream in(text);
  const auto from_stream = parse_serve_script(in);
  const auto from_string = parse_serve_script(text);
  ASSERT_EQ(from_stream.size(), from_string.size());
  EXPECT_EQ(from_stream[0].tenant, from_string[0].tenant);
}

TEST(ServeScript, FaultKeysAttachAPlan) {
  const auto reqs = parse_serve_script(
      "request n=16 p=16 drop=0.1 delay=0.2 delay_factor=3 corrupt=0.05 "
      "straggler=0:4 straggler=2:1.5 abft=correct fault_seed=7\n");
  ASSERT_EQ(reqs.size(), 1u);
  ASSERT_NE(reqs[0].faults, nullptr);
  const FaultPlan& plan = *reqs[0].faults;
  EXPECT_DOUBLE_EQ(plan.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_prob, 0.2);
  EXPECT_DOUBLE_EQ(plan.delay_factor, 3.0);
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.05);
  ASSERT_EQ(plan.stragglers.size(), 2u);
  EXPECT_EQ(plan.stragglers[0].pid, 0u);
  EXPECT_DOUBLE_EQ(plan.stragglers[0].factor, 4.0);
  EXPECT_EQ(plan.abft, AbftMode::kCorrect);
  EXPECT_EQ(plan.seed, 7u);
}

TEST(ServeScript, StrictErrorsNameTheLine) {
  EXPECT_NE(error_of("request n=16 p=16\nrequest n=16 p=16 bogus=1\n")
                .find("line 2"),
            std::string::npos);
  EXPECT_NE(error_of("request n=zero p=16\n").find("line 1"),
            std::string::npos);
  // Missing n or p, malformed probability, unknown machine and unknown abft
  // mode are all parse-time errors.
  EXPECT_FALSE(error_of("request p=16\n").empty());
  EXPECT_FALSE(error_of("request n=16\n").empty());
  EXPECT_FALSE(error_of("request n=16 p=16 drop=1.5\n").empty());
  EXPECT_FALSE(error_of("request n=16 p=16 machine=pdp11\n").empty());
  EXPECT_FALSE(error_of("request n=16 p=16 abft=sometimes\n").empty());
  EXPECT_FALSE(error_of("request n=16 p=16 straggler=3\n").empty());
  EXPECT_FALSE(error_of("launch n=16 p=16\n").empty());
}

TEST(ServeScript, ControlCharactersAreRejectedNamingTheLine) {
  // A stray CR (CRLF script) must be called out as an embedded newline, on
  // the exact line it appears.
  const std::string crlf_err =
      error_of("request n=16 p=16\nrequest n=16 p=16\r\n");
  EXPECT_NE(crlf_err.find("line 2"), std::string::npos) << crlf_err;
  EXPECT_NE(crlf_err.find("newline"), std::string::npos) << crlf_err;
  // Other control bytes (here: a vertical tab and a DEL) are rejected too.
  EXPECT_NE(error_of("request n=16 p=16 tenant=a\x0b" "b\n").find("line 1"),
            std::string::npos);
  EXPECT_FALSE(error_of("request n=16 p=16 tenant=a\x7fz\n").empty());
  // Tabs are ordinary whitespace, not an error.
  EXPECT_EQ(error_of("request\tn=16\tp=16\n"), "");
}

TEST(ServeScript, HostileTenantNamesParseIntact) {
  // Quotes and backslashes are legal value bytes; they must survive parsing
  // unmodified (the JSON layer escapes them at serialization time).
  const auto reqs =
      parse_serve_script("request tenant=ev\"il\\\\t n=16 p=16\n");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].tenant, "ev\"il\\\\t");
}

TEST(ServeWorkload, SameOptionsSameStream) {
  WorkloadOptions opt;
  opt.requests = 24;
  opt.tenants = 3;
  opt.seed = 42;
  opt.fault_fraction = 0.25;
  const auto a = generate_workload(opt);
  const auto b = generate_workload(opt);
  ASSERT_EQ(a.size(), 24u);
  ASSERT_EQ(b.size(), 24u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].algo, b[i].algo) << i;
    EXPECT_EQ(a[i].n, b[i].n) << i;
    EXPECT_EQ(a[i].p, b[i].p) << i;
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival) << i;
    ASSERT_EQ(a[i].faults == nullptr, b[i].faults == nullptr) << i;
    if (a[i].faults) EXPECT_EQ(a[i].faults->seed, b[i].faults->seed) << i;
  }
}

TEST(ServeWorkload, SeedChangesTheStream) {
  WorkloadOptions opt;
  opt.requests = 24;
  opt.seed = 1;
  const auto a = generate_workload(opt);
  opt.seed = 2;
  const auto b = generate_workload(opt);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].tenant != b[i].tenant || a[i].n != b[i].n ||
              a[i].arrival != b[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST(ServeWorkload, FaultFractionBoundsThePlans) {
  WorkloadOptions opt;
  opt.requests = 20;
  opt.fault_fraction = 0.5;
  std::size_t with_plan = 0;
  for (const auto& req : generate_workload(opt)) {
    if (req.faults) {
      ++with_plan;
      EXPECT_GT(req.faults->corrupt_prob, 0.0);
      EXPECT_EQ(req.faults->abft, AbftMode::kCorrect);
    }
  }
  EXPECT_GT(with_plan, 0u);
  EXPECT_LT(with_plan, 20u);
  // Arrivals are non-decreasing (gaps are drawn, then accumulated).
  const auto reqs = generate_workload(opt);
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
  }
}

TEST(ServeWorkload, ZeroFaultFractionMeansNoPlans) {
  WorkloadOptions opt;
  opt.requests = 16;
  for (const auto& req : generate_workload(opt)) {
    EXPECT_EQ(req.faults, nullptr);
  }
}

std::string workload_error_of(const std::string& script) {
  try {
    parse_serve_workload(script);
  } catch (const PreconditionError& e) {
    return e.what();
  }
  return "";
}

TEST(ServeWorkloadScript, SloLinesParsedAlongsideRequests) {
  const std::string text =
      "# objectives first, requests after\n"
      "slo tenant=alice slo_p99=80000 slo_availability=0.99\n"
      "slo slo_availability=0.9\n"
      "request tenant=alice arrival=0 algo=cannon n=16 p=16\n";
  const ServeWorkload workload = parse_serve_workload(text);
  ASSERT_EQ(workload.requests.size(), 1u);
  ASSERT_EQ(workload.slos.size(), 2u);
  EXPECT_DOUBLE_EQ(workload.slos.at("alice").p99, 80000.0);
  EXPECT_DOUBLE_EQ(workload.slos.at("alice").availability, 0.99);
  // A tenant-less slo line is the "*" default.
  EXPECT_DOUBLE_EQ(workload.slos.at("*").availability, 0.9);
  EXPECT_DOUBLE_EQ(workload.slos.at("*").p99, 0.0);
  std::istringstream in(text);
  const ServeWorkload from_stream = parse_serve_workload(in);
  EXPECT_EQ(from_stream.slos.size(), workload.slos.size());
}

TEST(ServeWorkloadScript, SloLineErrors) {
  EXPECT_NE(workload_error_of("slo tenant=a\n")
                .find("slo line must set slo_p99 and/or slo_availability"),
            std::string::npos);
  EXPECT_NE(workload_error_of("slo tenant=a slo_p99=0\n")
                .find("slo_p99 must be > 0"),
            std::string::npos);
  EXPECT_NE(workload_error_of("slo slo_availability=1\n")
                .find("slo_availability must be within (0, 1)"),
            std::string::npos);
  EXPECT_NE(workload_error_of("slo tenant=a slo_p99=1\n"
                              "slo tenant=a slo_availability=0.5\n")
                .find("duplicate slo for tenant 'a'"),
            std::string::npos);
  EXPECT_NE(workload_error_of("slo tenant=a n=16\n").find("unknown key 'n'"),
            std::string::npos);
  // Line numbers in errors count every script line, slo lines included.
  EXPECT_NE(workload_error_of("slo slo_availability=0.5\n"
                              "request n=16\n")
                .find("line 2"),
            std::string::npos);
}

TEST(ServeWorkloadScript, RequestOnlyParserStillRejectsSloLines) {
  // parse_serve_script predates objectives and keeps its contract: a
  // request list only, with the original error message.
  EXPECT_NE(error_of("slo slo_availability=0.5\n")
                .find("expected 'request ...' or a # comment"),
            std::string::npos);
  EXPECT_NE(workload_error_of("budget tenant=a\n")
                .find("expected 'request ...', 'slo ...' or a # comment"),
            std::string::npos);
}

}  // namespace
}  // namespace hpmm
