#include "algorithms/cannon.hpp"

#include <cmath>

#include "matrix/block.hpp"
#include "matrix/checksum.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr int kTagAlignA = 1;
constexpr int kTagAlignB = 2;
constexpr int kTagShiftA = 3;
constexpr int kTagShiftB = 4;

}  // namespace

void CannonAlgorithm::check_applicable(std::size_t n, std::size_t p) const {
  require(p >= 1, "cannon: need at least one processor");
  require(is_perfect_square(p), "cannon: p must be a perfect square");
  require(p <= n * n, "cannon: at most n^2 processors usable (Table 1)");
  require(n % exact_sqrt(p) == 0, "cannon: sqrt(p) must divide n");
  if (mapping_ == Mapping::kHypercubeGray) {
    require(is_pow2(exact_sqrt(p)),
            "cannon-gray: sqrt(p) must be a power of two for the Gray-code "
            "hypercube embedding");
  }
}

MatmulResult CannonAlgorithm::run(const Matrix& a, const Matrix& b,
                                  std::size_t p,
                                  const MachineParams& params) const {
  const std::size_t n = validated_order(a, b);
  check_applicable(n, p);
  const std::size_t sp = exact_sqrt(p);

  // Logical mesh geometry; physically either the mesh itself or its
  // Gray-code image in a hypercube (dilation 1: logical neighbours remain
  // physical neighbours, so Eq. 3 holds identically on both).
  const Torus2D torus(sp, sp);
  std::shared_ptr<const Topology> topo;
  if (mapping_ == Mapping::kHypercubeGray) {
    topo = std::make_shared<Hypercube>(Hypercube::with_procs(p));
  } else {
    topo = std::make_shared<Torus2D>(sp, sp);
  }
  SimMachine machine(topo, params);
  // Physical processor id of logical mesh node `r`.
  const auto phys = [&](ProcId r) {
    if (mapping_ == Mapping::kMesh) return r;
    const auto [row, col] = torus.coords(r);
    return torus.gray_rank(row, col);
  };

  // ABFT: guard blocks crossing the network with row/column checksums and
  // verify (optionally correct) them on receipt (matrix/checksum.hpp). The
  // extra checksum row/column travels with every message, so the protection
  // overhead shows up honestly in T_o.
  const AbftMode abft = params.faults ? params.faults->abft : AbftMode::kOff;
  const auto guard = [abft](Matrix blk) {
    return abft == AbftMode::kOff ? std::move(blk) : with_checksums(blk);
  };
  const auto unguard = [abft, &machine](Matrix blk) {
    if (abft != AbftMode::kOff) {
      const ChecksumVerdict v =
          verify_checksums(blk, abft == AbftMode::kCorrect);
      if (!v.consistent) machine.note_abft(true, v.corrected);
      blk = strip_checksums(blk);
    }
    return blk;
  };

  const BlockGrid grid(n, n, sp, sp);
  std::vector<Matrix> a_blk = scatter_blocks(a, grid);
  std::vector<Matrix> b_blk = scatter_blocks(b, grid);
  const std::size_t bw = grid.block_words();
  for (ProcId pid = 0; pid < p; ++pid) machine.note_alloc(pid, 3 * bw);

  // Alignment: block A(i,j) moves i steps west, block B(i,j) moves j steps
  // north. One-to-one communication along non-conflicting paths; with
  // cut-through routing this costs a single message time per matrix
  // (the paper ignores it relative to the sqrt(p) multiply-shift steps).
  if (sp > 1) {
    PhaseScope scope(machine, "align");
    std::vector<Message> align_a;
    for (std::size_t i = 0; i < sp; ++i) {
      if (i == 0) continue;  // row 0 is already aligned
      for (std::size_t j = 0; j < sp; ++j) {
        const ProcId src = torus.rank(i, j);
        const ProcId dst = torus.west(src, i);
        align_a.emplace_back(phys(src), phys(dst), kTagAlignA, guard(std::move(a_blk[i * sp + j])));
      }
    }
    machine.exchange(std::move(align_a));
    // Collect the aligned A blocks back into row-major slots.
    for (std::size_t i = 1; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        const ProcId pid = torus.rank(i, j);
        a_blk[i * sp + j] = unguard(std::move(machine.receive(phys(pid), kTagAlignA).blocks.front()));
      }
    }
    std::vector<Message> align_b;
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 1; j < sp; ++j) {
        const ProcId src = torus.rank(i, j);
        const ProcId dst = torus.north(src, j);
        align_b.emplace_back(phys(src), phys(dst), kTagAlignB, guard(std::move(b_blk[i * sp + j])));
      }
    }
    machine.exchange(std::move(align_b));
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 1; j < sp; ++j) {
        const ProcId pid = torus.rank(i, j);
        b_blk[i * sp + j] = unguard(std::move(machine.receive(phys(pid), kTagAlignB).blocks.front()));
      }
    }
  }

  // sqrt(p) multiply-shift steps: multiply resident blocks, roll A west and
  // B north. The final step needs no shift.
  std::vector<Matrix> c_blk(p);
  for (std::size_t idx = 0; idx < p; ++idx) {
    c_blk[idx] = Matrix(grid.block_rows(), grid.block_cols());
  }
  for (std::size_t step = 0; step < sp; ++step) {
    std::vector<SimMachine::ComputeTask> phase;
    phase.reserve(p);
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        const ProcId pid = torus.rank(i, j);
        phase.push_back({phys(pid),
                         &c_blk[i * sp + j],
                         {{&a_blk[i * sp + j], &b_blk[i * sp + j]}}});
      }
    }
    {
      PhaseScope scope(machine, "multiply");
      machine.compute_multiply_add_batch(phase);
    }
    if (step + 1 == sp) break;
    PhaseScope scope(machine, "shift");
    std::vector<Message> shift_a, shift_b;
    shift_a.reserve(p);
    shift_b.reserve(p);
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        const ProcId src = torus.rank(i, j);
        shift_a.emplace_back(phys(src), phys(torus.west(src)), kTagShiftA,
                             guard(std::move(a_blk[i * sp + j])));
        shift_b.emplace_back(phys(src), phys(torus.north(src)), kTagShiftB,
                             guard(std::move(b_blk[i * sp + j])));
      }
    }
    machine.exchange(std::move(shift_a));
    machine.exchange(std::move(shift_b));
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        const ProcId pid = torus.rank(i, j);
        a_blk[i * sp + j] = unguard(std::move(machine.receive(phys(pid), kTagShiftA).blocks.front()));
        b_blk[i * sp + j] = unguard(std::move(machine.receive(phys(pid), kTagShiftB).blocks.front()));
      }
    }
  }
  machine.synchronize();
  machine.assert_clean_run();

  MatmulResult result;
  result.c = gather_blocks(c_blk, grid);
  result.report = machine.report(name(), n, std::pow(static_cast<double>(n), 3.0));
  if (machine.tracing()) result.trace = machine.trace();
  return result;
}

}  // namespace hpmm
