#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "sim/fault.hpp"

namespace hpmm {

/// Per-processor accounting accumulated by the simulator.
struct ProcStats {
  double clock = 0.0;         ///< local virtual time
  double compute_time = 0.0;  ///< time spent in charged computation
  double comm_time = 0.0;     ///< time spent busy sending/receiving
  double idle_time = 0.0;     ///< time spent waiting for messages/barriers
  std::uint64_t flops = 0;    ///< charged multiply-add operations
  std::uint64_t messages_sent = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t retransmissions = 0;    ///< extra sends forced by drops
  std::uint64_t peak_words_stored = 0;  ///< high-water mark of registered storage
  std::uint64_t words_stored = 0;       ///< currently registered storage
};

/// Outcome of one simulated parallel run: the quantities of Section 2.
struct RunReport {
  std::string algorithm;
  std::size_t n = 0;  ///< matrix order
  std::size_t p = 0;  ///< processors
  MachineParams params;
  double t_parallel = 0.0;  ///< T_p = max over processor clocks
  double w_useful = 0.0;    ///< problem size W = n^3 (multiply-add units)

  double max_compute_time = 0.0;
  double max_comm_time = 0.0;
  double max_idle_time = 0.0;
  std::uint64_t total_flops = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_words = 0;
  std::uint64_t max_peak_words = 0;

  /// Fault events observed during the run (all zero on an ideal machine).
  FaultStats faults;

  std::vector<ProcStats> procs;  ///< per-processor detail (optional to keep)

  /// T_o(W, p) = p * T_p - W (Section 2).
  double total_overhead() const noexcept {
    return static_cast<double>(p) * t_parallel - w_useful;
  }
  /// S = W / T_p.
  double speedup() const noexcept {
    return t_parallel > 0.0 ? w_useful / t_parallel : 0.0;
  }
  /// E = S / p.
  double efficiency() const noexcept {
    return p > 0 ? speedup() / static_cast<double>(p) : 0.0;
  }

  /// One-line human-readable summary.
  std::string summary() const;
};

}  // namespace hpmm
