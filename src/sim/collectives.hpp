#pragma once

#include <functional>
#include <span>
#include <vector>

#include "sim/sim_machine.hpp"

namespace hpmm {

/// Collective operations over a group of simulated processors.
///
/// The *emergent* collectives below are built hop-by-hop from point-to-point
/// exchange rounds, so their cost arises from the simulator's timing rule and
/// is validated against the closed forms of [Johnsson & Ho 1989] in tests:
///
///   binomial one-to-all broadcast:   (t_s + t_w m) log g
///   ring all-to-all broadcast:       (t_s + t_w m)(g - 1)
///   recursive-doubling all-to-all:    t_s log g + t_w m (g - 1)
///   binomial-tree reduction:         (t_s + t_w m) log g  (+ add time)
///
/// The *modeled* collectives replicate data directly and charge a literature
/// closed form via SimMachine::charge_group_comm (see DESIGN.md §2).
///
/// Groups are ordered lists of processor ids; "position" below means index in
/// that list. When the group is an ascending subcube of a hypercube the
/// binomial/recursive-doubling patterns communicate only across physical
/// hypercube links.

/// Per-hop receive hook: invoked on every block as it comes off the wire,
/// before it is forwarded or combined. ABFT-guarded algorithms use this to
/// verify (and repair) checksums at each tree hop, so one corrupted
/// transmission never compounds with another further down the tree.
using OnReceive = std::function<void(Matrix&)>;

/// One-to-all broadcast of `payload` from group[root_pos] to every group
/// member via a binomial tree. Returns one copy per member, indexed by
/// position.
std::vector<Matrix> broadcast_binomial(SimMachine& machine,
                                       std::span<const ProcId> group,
                                       std::size_t root_pos, int tag,
                                       Matrix payload,
                                       const OnReceive& on_receive = {});

/// All-to-one reduction: element-wise sum of `contributions` (one per
/// position) delivered to group[root_pos] via a binomial tree. Each combine
/// charges `add_cost_per_word` * words of compute to the combining processor
/// (the paper's equations fold these additions into the n^3/p term, so the
/// matching default is 0 — see DESIGN.md).
Matrix reduce_binomial(SimMachine& machine, std::span<const ProcId> group,
                       std::size_t root_pos, int tag,
                       std::vector<Matrix> contributions,
                       double add_cost_per_word = 0.0,
                       const OnReceive& on_receive = {});

/// All-to-all broadcast over a ring: every member contributes one block and
/// receives every block. Result[pos][i] is the contribution of position i.
/// Cost (g-1)(t_s + t_w m) — the mesh-row pattern of the Simple algorithm.
std::vector<std::vector<Matrix>> all_to_all_ring(SimMachine& machine,
                                                 std::span<const ProcId> group,
                                                 int tag,
                                                 std::vector<Matrix> contributions);

/// All-to-all broadcast by recursive doubling (hypercube allgather); group
/// size must be a power of two. Cost t_s log g + t_w m (g-1).
std::vector<std::vector<Matrix>> all_to_all_recursive_doubling(
    SimMachine& machine, std::span<const ProcId> group, int tag,
    std::vector<Matrix> contributions);

/// Recursive-halving reduce-scatter: element-wise sum of `contributions`
/// (one per position), with the sum left *scattered*: position v ends up
/// holding horizontal slice v (rows [v*h/g, (v+1)*h/g)) of the g-way sum.
/// Group size must be a power of two and divide the contribution row count.
/// Cost sum_{s=1..log g} (t_s + t_w m / 2^s) = t_s log g + t_w m (1 - 1/g) —
/// the scheme that gives Berntsen's algorithm its t_w n^2/p^{2/3} summation
/// term (Section 4.4 / Eq. 5).
std::vector<Matrix> reduce_scatter_halving(SimMachine& machine,
                                           std::span<const ProcId> group,
                                           int tag,
                                           std::vector<Matrix> contributions,
                                           double add_cost_per_word = 0.0);

/// Closed-form time of the Johnsson-Ho pipelined one-to-all broadcast of an
/// m-word message over a g-processor (sub)cube (Section 5.4.1):
///   t_s log g + t_w m + 2 t_w log g * max(1, sqrt(t_s m / (t_w log g))).
double johnsson_ho_broadcast_time(const MachineParams& params, double words,
                                  std::size_t group_size);

/// Modeled broadcast: replicates `payload` to all members and charges `time`
/// to the whole group.
std::vector<Matrix> broadcast_modeled(SimMachine& machine,
                                      std::span<const ProcId> group,
                                      std::size_t root_pos, Matrix payload,
                                      double time);

/// Modeled all-to-all broadcast: every member receives all contributions;
/// `time` charged to the whole group.
std::vector<std::vector<Matrix>> all_to_all_modeled(
    SimMachine& machine, std::span<const ProcId> group,
    std::vector<Matrix> contributions, double time);

}  // namespace hpmm
