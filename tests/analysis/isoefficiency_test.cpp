#include "analysis/isoefficiency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "machine/params.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

std::vector<double> log_grid(double lo, double hi, int count) {
  std::vector<double> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(lo * std::pow(hi / lo, double(i) / (count - 1)));
  }
  return out;
}

TEST(Isoefficiency, SolvedOrderAchievesTheEfficiency) {
  const CannonModel m(params(150, 3));
  for (double p : {64.0, 1024.0, 65536.0}) {
    for (double e : {0.5, 0.7, 0.9}) {
      const auto n = iso_matrix_order(m, p, e);
      ASSERT_TRUE(n) << "p=" << p << " E=" << e;
      EXPECT_GE(m.efficiency(*n, p), e - 1e-6);
      // And only just: 1% less n falls below the target.
      EXPECT_LT(m.efficiency(*n * 0.99, p), e);
    }
  }
}

TEST(Isoefficiency, ValidatesArguments) {
  const CannonModel m(params(1, 1));
  EXPECT_THROW(iso_matrix_order(m, 0.5, 0.5), PreconditionError);
  EXPECT_THROW(iso_matrix_order(m, 4.0, 0.0), PreconditionError);
  EXPECT_THROW(iso_matrix_order(m, 4.0, 1.0), PreconditionError);
}

TEST(Isoefficiency, SingleProcessorIsTrivial) {
  const CannonModel m(params(150, 3));
  EXPECT_DOUBLE_EQ(*iso_matrix_order(m, 1.0, 0.9), 1.0);
}

TEST(Isoefficiency, CannonExponentIs1_5) {
  // Table 1: Cannon's isoefficiency is Θ(p^{1.5}).
  const CannonModel m(params(150, 3));
  const auto ps = log_grid(1e4, 1e10, 12);
  const auto fit = fit_isoefficiency_exponent(m, 0.7, ps);
  EXPECT_EQ(fit.points, 12u);
  EXPECT_NEAR(fit.exponent, 1.5, 0.05);
}

TEST(Isoefficiency, BerntsenExponentIs2) {
  // Table 1: Θ(p^2), forced by the p <= n^{3/2} concurrency bound. Fit over
  // large p, where the concurrency term dominates the (p^{4/3} and p) comm
  // terms.
  const BerntsenModel m(params(150, 3));
  const auto ps = log_grid(1e6, 1e12, 12);
  const auto fit = fit_isoefficiency_exponent(m, 0.7, ps);
  EXPECT_NEAR(fit.exponent, 2.0, 0.05);
}

TEST(Isoefficiency, GkExponentIsNearOnePlusPolylog) {
  // Θ(p (log p)^3): the fitted power over a finite range exceeds 1 slightly
  // (the polylog), but is well below Cannon's 1.5.
  const GkModel m(params(150, 3));
  const auto ps = log_grid(1e6, 1e12, 12);
  const auto fit = fit_isoefficiency_exponent(m, 0.7, ps);
  EXPECT_GT(fit.exponent, 1.0);
  EXPECT_LT(fit.exponent, 1.35);
}

TEST(Isoefficiency, DnsExponentIsNearOne) {
  // Θ(p log p) — the best possible for the conventional algorithm. Use an
  // efficiency below the DNS ceiling.
  const MachineParams mp = params(0.5, 0.1);  // ceiling = 1/(1+1.2) = 0.45
  const DnsModel m(mp);
  const auto ps = log_grid(1e6, 1e12, 12);
  const auto fit = fit_isoefficiency_exponent(m, 0.3, ps);
  EXPECT_EQ(fit.points, 12u);
  EXPECT_GT(fit.exponent, 0.95);
  EXPECT_LT(fit.exponent, 1.2);
}

TEST(Isoefficiency, DnsUnreachableAboveCeiling) {
  const DnsModel m(params(10, 2));  // ceiling = 1/25
  EXPECT_FALSE(iso_problem_size(m, 4096, 0.5).has_value());
  EXPECT_TRUE(iso_problem_size(m, 4096, 0.03).has_value());
}

TEST(Isoefficiency, ScalabilityOrderingMatchesTable1) {
  // At large p, required W orders as: DNS < GK < Cannon < Berntsen.
  const MachineParams mp = params(0.5, 0.1);
  const double p = 1e10, e = 0.3;
  const auto w_dns = iso_problem_size(DnsModel(mp), p, e);
  const auto w_gk = iso_problem_size(GkModel(mp), p, e);
  const auto w_cannon = iso_problem_size(CannonModel(mp), p, e);
  const auto w_bernt = iso_problem_size(BerntsenModel(mp), p, e);
  ASSERT_TRUE(w_dns && w_gk && w_cannon && w_bernt);
  EXPECT_LT(*w_dns, *w_gk);
  EXPECT_LT(*w_gk, *w_cannon);
  EXPECT_LT(*w_cannon, *w_bernt);
}

TEST(Isoefficiency, TwCubedSensitivity) {
  // Section 8: the t_w term's isoefficiency carries a t_w^3 factor — scaling
  // t_w by k scales the required W by ~k^3 (when the t_w term dominates).
  const double p = 1e8, e = 0.7;
  const CannonModel slow(params(0.0, 3.0));
  const CannonModel fast(params(0.0, 30.0));
  const auto w1 = iso_problem_size(slow, p, e);
  const auto w2 = iso_problem_size(fast, p, e);
  ASSERT_TRUE(w1 && w2);
  EXPECT_NEAR(*w2 / *w1, 1000.0, 1.0);
}

TEST(Isoefficiency, HigherEfficiencyNeedsBiggerProblem) {
  const GkModel m(params(150, 3));
  const double p = 1e6;
  const auto w_lo = iso_problem_size(m, p, 0.5);
  const auto w_hi = iso_problem_size(m, p, 0.9);
  ASSERT_TRUE(w_lo && w_hi);
  EXPECT_GT(*w_hi, *w_lo);
}

TEST(Isoefficiency, Table1AsymptoticExponents) {
  EXPECT_DOUBLE_EQ(table1_asymptotic_exponent("berntsen"), 2.0);
  EXPECT_DOUBLE_EQ(table1_asymptotic_exponent("cannon"), 1.5);
  EXPECT_DOUBLE_EQ(table1_asymptotic_exponent("gk"), 1.0);
  EXPECT_DOUBLE_EQ(table1_asymptotic_exponent("dns"), 1.0);
  EXPECT_THROW(table1_asymptotic_exponent("nope"), PreconditionError);
}

TEST(Isoefficiency, FitHandlesUnreachablePoints) {
  const DnsModel m(params(10, 2));
  const auto ps = log_grid(1e6, 1e10, 8);
  const auto fit = fit_isoefficiency_exponent(m, 0.9, ps);  // above ceiling
  EXPECT_EQ(fit.points, 0u);
  EXPECT_DOUBLE_EQ(fit.exponent, 0.0);
}

}  // namespace
}  // namespace hpmm
