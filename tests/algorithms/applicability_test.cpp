#include <gtest/gtest.h>

#include "algorithms/berntsen.hpp"
#include "algorithms/cannon.hpp"
#include "algorithms/cannon_25d.hpp"
#include "algorithms/dns.hpp"
#include "algorithms/fox.hpp"
#include "algorithms/gk.hpp"
#include "algorithms/simple_2d.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Applicability, CannonRequiresPerfectSquareDividingN) {
  CannonAlgorithm c;
  EXPECT_TRUE(c.applicable(12, 9));
  EXPECT_FALSE(c.applicable(12, 8));    // not a square
  EXPECT_FALSE(c.applicable(10, 9));    // 3 does not divide 10
  EXPECT_FALSE(c.applicable(4, 25));    // p > n^2
  EXPECT_TRUE(c.applicable(4, 16));     // p = n^2 allowed
  EXPECT_THROW(c.check_applicable(12, 8), PreconditionError);
}

TEST(Applicability, SimpleHypercubeNeedsPow2Side) {
  SimpleAlgorithm s;
  EXPECT_TRUE(s.applicable(12, 4));
  EXPECT_FALSE(s.applicable(12, 9));  // 3 not a power of two
  SimpleAlgorithm ring(SimpleAlgorithm::Variant::kOnePortRing);
  EXPECT_TRUE(ring.applicable(12, 9));  // torus accepts any square
}

TEST(Applicability, SimpleAllPortGranularityBound) {
  SimpleAlgorithm ap(SimpleAlgorithm::Variant::kAllPort);
  // Section 7.1: n >= (1/2) sqrt(p) log p.
  EXPECT_TRUE(ap.applicable(8, 16));    // 8 >= 8
  EXPECT_FALSE(ap.applicable(7, 16));   // would starve the channels (7 < 8,
                                        // and 4 does not divide 7 either)
  EXPECT_FALSE(ap.applicable(12, 64));  // 12 < 24
}

TEST(Applicability, FoxMatchesCannonPlusPow2) {
  FoxAlgorithm f;
  EXPECT_TRUE(f.applicable(8, 16));
  EXPECT_FALSE(f.applicable(12, 9));
}

TEST(Applicability, BerntsenConcurrencyLimit) {
  BerntsenAlgorithm b;
  // p <= n^{3/2}: for n = 16, limit is 64.
  EXPECT_TRUE(b.applicable(16, 64));
  EXPECT_FALSE(b.applicable(16, 512));
  EXPECT_FALSE(b.applicable(16, 128));  // not 2^{3q} either
  // p must be 2^{3q}.
  EXPECT_FALSE(b.applicable(64, 16));
  EXPECT_TRUE(b.applicable(64, 8));
  // p^{2/3} must divide n.
  EXPECT_FALSE(b.applicable(18, 64));  // 16 does not divide 18
  EXPECT_TRUE(b.applicable(32, 64));
}

TEST(Applicability, BerntsenBoundaryIsExact) {
  BerntsenAlgorithm b;
  // n = 4: n^{3/2} = 8, so p = 8 is exactly at the limit.
  EXPECT_TRUE(b.applicable(4, 8));
  // n = 3 -> n^{3/2} ~ 5.2 < 8.
  EXPECT_FALSE(b.applicable(3, 8));
}

TEST(Applicability, DnsRange) {
  DnsAlgorithm d;
  EXPECT_FALSE(d.applicable(8, 32));   // p < n^2
  EXPECT_TRUE(d.applicable(8, 64));    // p = n^2 (r = 1)
  EXPECT_TRUE(d.applicable(8, 512));   // p = n^3
  EXPECT_FALSE(d.applicable(8, 1024)); // p > n^3
  EXPECT_FALSE(d.applicable(8, 96));   // r = 1.5 not a power of two
  EXPECT_FALSE(d.applicable(6, 36));   // n not a power of two
}

TEST(Applicability, GkFullRange) {
  GkAlgorithm g;
  EXPECT_TRUE(g.applicable(8, 1));
  EXPECT_TRUE(g.applicable(8, 8));
  EXPECT_TRUE(g.applicable(8, 64));
  EXPECT_TRUE(g.applicable(8, 512));    // p = n^3
  EXPECT_FALSE(g.applicable(8, 4096));  // p > n^3
  EXPECT_FALSE(g.applicable(8, 16));    // not 2^{3q}
}

TEST(Applicability, GkDivisibility) {
  GkAlgorithm g;
  EXPECT_TRUE(g.applicable(10, 8));    // p^{1/3} = 2 divides 10
  EXPECT_FALSE(g.applicable(10, 64));  // 4 does not divide 10
  EXPECT_TRUE(g.applicable(12, 64));
}

TEST(Applicability, RunRejectsInapplicableCombos) {
  Matrix a(8, 8), b(8, 8);
  MachineParams mp;
  EXPECT_THROW(CannonAlgorithm().run(a, b, 5, mp), PreconditionError);
  EXPECT_THROW(DnsAlgorithm().run(a, b, 32, mp), PreconditionError);
  EXPECT_THROW(GkAlgorithm().run(a, b, 16, mp), PreconditionError);
  EXPECT_THROW(BerntsenAlgorithm().run(a, b, 512, mp), PreconditionError);
}

TEST(Applicability, Cannon25DGridAndReplicationConstraints) {
  Cannon25DAlgorithm c2;  // c = 2
  EXPECT_TRUE(c2.applicable(8, 8));      // 2 x (2x2): q = 2, c | q
  EXPECT_TRUE(c2.applicable(16, 32));    // 2 x (4x4)
  EXPECT_TRUE(c2.applicable(16, 128));   // 2 x (8x8)
  EXPECT_FALSE(c2.applicable(16, 16));   // p/c = 8 not a perfect square
  EXPECT_FALSE(c2.applicable(16, 2));    // c^3 = 8 > p
  EXPECT_FALSE(c2.applicable(10, 32));   // q = 4 does not divide 10
  EXPECT_FALSE(c2.applicable(2, 32));    // p > c n^2
  EXPECT_THROW(c2.check_applicable(16, 16), PreconditionError);

  Cannon25DAlgorithm c4(4);
  EXPECT_TRUE(c4.applicable(16, 64));    // 4 x (4x4), c | q, c^3 = 64 <= p
  EXPECT_FALSE(c4.applicable(16, 36));   // q = 3 not divisible by c = 4
  EXPECT_FALSE(c4.applicable(16, 16));   // c^3 > p

  Cannon25DAlgorithm c3(3);              // replication must be a power of two
  EXPECT_FALSE(c3.applicable(18, 27));
  EXPECT_THROW(c3.check_applicable(18, 27), PreconditionError);

  // c = 1 degenerates to plain Cannon's grid (any perfect square p <= n^2).
  Cannon25DAlgorithm c1(1);
  EXPECT_TRUE(c1.applicable(12, 9));
  EXPECT_FALSE(c1.applicable(12, 8));
}

TEST(Applicability, Cannon25DErrorsNameTheFlag) {
  // The CLI exposes the replication factor as --c; precondition messages
  // must point at it so a failed run is actionable.
  Cannon25DAlgorithm c2;
  try {
    c2.check_applicable(16, 16);  // c q^2 != p
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--c"), std::string::npos) << e.what();
  }
  Cannon25DAlgorithm c8(8);
  try {
    c8.check_applicable(64, 16);  // c^3 = 512 > p
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--c"), std::string::npos) << e.what();
  }
}

TEST(Applicability, EveryAlgorithmAcceptsSingleProcessorOrSaysWhy) {
  for (const auto& alg : all_algorithms()) {
    if (alg->name() == "dns") {
      EXPECT_FALSE(alg->applicable(8, 1));  // DNS needs p >= n^2
    } else if (alg->name() == "cannon25d") {
      EXPECT_FALSE(alg->applicable(8, 1));  // replication needs p >= c^3 = 8
      EXPECT_TRUE(alg->applicable(8, 8));
    } else {
      EXPECT_TRUE(alg->applicable(8, 1)) << alg->name();
    }
  }
}

}  // namespace
}  // namespace hpmm
