#include "analysis/region_map.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "machine/params.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  m.label = "test";
  return m;
}

TEST(RegionMap, NoAlgorithmAbovePCubed) {
  const auto mp = params(150, 3);
  EXPECT_EQ(RegionMap::best_at(mp, 10.0, 2000.0), Region::kNone);  // p > n^3
  EXPECT_NE(RegionMap::best_at(mp, 13.0, 2000.0), Region::kNone);  // 13^3 = 2197
}

TEST(RegionMap, BerntsenWinsAtLowP) {
  // Figure 1: for p < n^{3/2} Berntsen's algorithm is the best choice on an
  // nCUBE2-like machine.
  const auto mp = params(150, 3);
  EXPECT_EQ(RegionMap::best_at(mp, 1000.0, 100.0), Region::kBerntsen);
  EXPECT_EQ(RegionMap::best_at(mp, 10000.0, 1000.0), Region::kBerntsen);
}

TEST(RegionMap, GkWinsBetweenN32AndN3OnNcube2) {
  // Figure 1: the GK algorithm is the best choice for n^{3/2} < p <= n^3
  // with t_s = 150 (DNS is always worse there, Cannon/Berntsen inapplicable).
  const auto mp = params(150, 3);
  EXPECT_EQ(RegionMap::best_at(mp, 100.0, 5e4), Region::kGk);   // p > n^2 = 1e4
  EXPECT_EQ(RegionMap::best_at(mp, 100.0, 2e3), Region::kGk);   // n^{3/2} < p < n^2
}

TEST(RegionMap, DnsWinsOnSimdMachine) {
  // Figure 3 (t_s = 0.5): DNS is the best choice for n^2 <= p <= n^3.
  const auto mp = params(0.5, 3.0);
  EXPECT_EQ(RegionMap::best_at(mp, 100.0, 5e4), Region::kDns);
  EXPECT_EQ(RegionMap::best_at(mp, 32.0, 2e4), Region::kDns);
}

TEST(RegionMap, CannonRegionOnSimdMachine) {
  // Figure 3: Cannon for n^{3/2} <= p <= n^2.
  const auto mp = params(0.5, 3.0);
  EXPECT_EQ(RegionMap::best_at(mp, 100.0, 5e3), Region::kCannon);
}

TEST(RegionMap, BerntsenStillWinsLowPOnSimd) {
  const auto mp = params(0.5, 3.0);
  EXPECT_EQ(RegionMap::best_at(mp, 1000.0, 64.0), Region::kBerntsen);
}

TEST(RegionMap, GridGeometry) {
  const RegionMap map(params(150, 3), 1.0, 1e6, 16, 1.0, 1e4, 12);
  EXPECT_EQ(map.p_cells(), 16u);
  EXPECT_EQ(map.n_cells(), 12u);
  EXPECT_DOUBLE_EQ(map.p_at(0), 1.0);
  EXPECT_NEAR(map.p_at(15), 1e6, 1e-6);
  EXPECT_DOUBLE_EQ(map.n_at(0), 1.0);
  EXPECT_NEAR(map.n_at(11), 1e4, 1e-8);
  EXPECT_THROW(map.at(12, 0), PreconditionError);
}

TEST(RegionMap, FractionsSumToOne) {
  const RegionMap map(params(10, 3), 1.0, 1e8, 24, 1.0, 1e5, 20);
  const double total = map.fraction(Region::kNone) + map.fraction(Region::kGk) +
                       map.fraction(Region::kBerntsen) +
                       map.fraction(Region::kCannon) + map.fraction(Region::kDns);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RegionMap, Figure2HasAllFourRegions) {
  // "In Figure 2 (t_s = 10) each of the four algorithms performs better than
  // the rest in some region and all four regions contain practical values."
  const RegionMap map(params(10, 3), 1.0, 1e8, 48, 1.0, 1e5, 36);
  EXPECT_GT(map.fraction(Region::kGk), 0.0);
  EXPECT_GT(map.fraction(Region::kBerntsen), 0.0);
  EXPECT_GT(map.fraction(Region::kCannon), 0.0);
  EXPECT_GT(map.fraction(Region::kDns), 0.0);
  EXPECT_GT(map.fraction(Region::kNone), 0.0);
}

TEST(RegionMap, Figure1HasEssentiallyNoDnsRegion) {
  // Figure 1 (t_s = 150) shows no d region. Under Table 1's conservative
  // DNS bound (log r <= (1/3) log p) DNS never wins; our exact Eq. 6 model
  // (with log r) leaves DNS a hair-thin sliver at p > ~6e6 — far beyond
  // 1993-practical machine sizes. Assert the sliver stays negligible and
  // out of the practical range.
  const RegionMap map(params(150, 3), 1.0, 1e8, 48, 1.0, 1e5, 36);
  EXPECT_LT(map.fraction(Region::kDns), 0.01);
  for (std::size_t r = 0; r < map.n_cells(); ++r) {
    for (std::size_t c = 0; c < map.p_cells(); ++c) {
      if (map.at(r, c) == Region::kDns) {
        EXPECT_GT(map.p_at(c), 1e6);  // only at impractical p
      }
    }
  }
  EXPECT_GT(map.fraction(Region::kGk), 0.0);
  EXPECT_GT(map.fraction(Region::kBerntsen), 0.0);
}

TEST(RegionMap, AsciiRenderingMentionsLegend) {
  const RegionMap map(params(150, 3), 1.0, 1e4, 8, 1.0, 1e3, 6);
  std::ostringstream os;
  map.print_ascii(os);
  EXPECT_NE(os.str().find("a=GK"), std::string::npos);
  EXPECT_NE(os.str().find('|'), std::string::npos);
}

TEST(RegionMap, ValidatesConstruction) {
  EXPECT_THROW(RegionMap(params(1, 1), 10.0, 1.0, 4, 1.0, 10.0, 4),
               PreconditionError);
  EXPECT_THROW(RegionMap(params(1, 1), 1.0, 10.0, 1, 1.0, 10.0, 4),
               PreconditionError);
}

TEST(RegionMap, DefaultMapExcludes25D) {
  // The paper's Figures 1-3 compare exactly four algorithms; the 2.5D
  // envelope is opt-in so the reproduced maps stay byte-stable.
  const RegionMap map(machines::ncube2(), 1.0, 1e9, 24, 1.0, 1e5, 12);
  EXPECT_DOUBLE_EQ(map.fraction(Region::kCannon25), 0.0);
  EXPECT_NE(RegionMap::best_at(machines::simd_cm2(), 100.0, 5000.0),
            Region::kCannon25);
}

TEST(RegionMap, ExtendedMapOnlyEverUpgradesCells) {
  // With include_25d the winner at each cell either stays what the default
  // map picked or becomes 'e' — replication can only displace, not reshuffle.
  const MachineParams mp = machines::simd_cm2();
  const RegionMap base(mp, 1.0, 1e7, 30, 1.0, 1e4, 15);
  const RegionMap ext(mp, 1.0, 1e7, 30, 1.0, 1e4, 15, /*include_25d=*/true);
  std::size_t upgraded = 0;
  for (std::size_t row = 0; row < base.n_cells(); ++row) {
    for (std::size_t col = 0; col < base.p_cells(); ++col) {
      if (ext.at(row, col) == Region::kCannon25) {
        ++upgraded;
      } else {
        EXPECT_EQ(ext.at(row, col), base.at(row, col))
            << "row=" << row << " col=" << col;
      }
    }
  }
  EXPECT_GT(upgraded, 0u);
}

TEST(RegionMap, Extended25DWinsOnLowStartupMachine) {
  // Hand-checked point on the CM-2-like machine (t_s = 0.5, t_w = 3),
  // n = 100, p = 5000: per-proc comm is ~919 for Cannon (2 sqrt(p) rounds),
  // ~662 for c = 2 replication (3 + 2 sqrt(p/8) rounds of doubled blocks);
  // Berntsen/DNS are out of range and GK's bandwidth term is ~3x larger.
  EXPECT_EQ(RegionMap::best_at(machines::simd_cm2(), 100.0, 5000.0,
                               /*include_25d=*/true),
            Region::kCannon25);
  // c = 1 is excluded from the envelope: at a point where replication does
  // not pay (tiny p, huge n) the extended answer must equal the default one
  // rather than relabel the existing winner as 'e'.
  EXPECT_EQ(RegionMap::best_at(machines::ncube2(), 1000.0, 16.0,
                               /*include_25d=*/true),
            RegionMap::best_at(machines::ncube2(), 1000.0, 16.0));
}

TEST(RegionMap, ExtendedAsciiLegendMentions25D) {
  const RegionMap ext(machines::simd_cm2(), 1.0, 1e6, 12, 1.0, 1e4, 8,
                      /*include_25d=*/true);
  std::ostringstream os;
  ext.print_ascii(os);
  EXPECT_NE(os.str().find("e=2.5D"), std::string::npos);
  EXPECT_EQ(to_string(Region::kCannon25), "cannon25d");
}

TEST(MachineSpaceMap, DnsWinsAtLowStartupGkAtHighStartup) {
  // The Figures 1-vs-3 contrast as a single map: fix the workload in the
  // n^2 <= p <= n^3 band and sweep the machine.
  const double n = 100, p = 5e4;
  EXPECT_EQ(MachineSpaceMap::best_at(n, p, 0.5, 3.0), Region::kDns);
  EXPECT_EQ(MachineSpaceMap::best_at(n, p, 150.0, 3.0), Region::kGk);
}

TEST(MachineSpaceMap, GridGeometryAndFractions) {
  const MachineSpaceMap map(100, 5e4, 0.1, 1000.0, 20, 0.5, 30.0, 12);
  EXPECT_EQ(map.ts_cells(), 20u);
  EXPECT_EQ(map.tw_cells(), 12u);
  EXPECT_DOUBLE_EQ(map.ts_at(0), 0.1);
  EXPECT_NEAR(map.ts_at(19), 1000.0, 1e-9);
  EXPECT_NEAR(map.tw_at(11), 30.0, 1e-12);
  const double total = map.fraction(Region::kNone) + map.fraction(Region::kGk) +
                       map.fraction(Region::kBerntsen) +
                       map.fraction(Region::kCannon) + map.fraction(Region::kDns);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Both DNS (cheap-startup corner) and GK (expensive-startup corner) appear.
  EXPECT_GT(map.fraction(Region::kDns), 0.0);
  EXPECT_GT(map.fraction(Region::kGk), 0.0);
}

TEST(MachineSpaceMap, AsciiAndValidation) {
  const MachineSpaceMap map(64, 512, 0.5, 200.0, 8, 1.0, 8.0, 4);
  std::ostringstream os;
  map.print_ascii(os);
  EXPECT_NE(os.str().find("t_w up"), std::string::npos);
  EXPECT_THROW(MachineSpaceMap(64, 512, 5.0, 1.0, 8, 1.0, 8.0, 4),
               PreconditionError);
  EXPECT_THROW(map.at(4, 0), PreconditionError);
}

TEST(RegionMap, SingleProcessorHasAWinner) {
  // p = 1 is within every formulation's range; overhead ties at 0 are fine —
  // some algorithm must be reported.
  EXPECT_NE(RegionMap::best_at(params(150, 3), 100.0, 1.0), Region::kNone);
}

}  // namespace
}  // namespace hpmm
