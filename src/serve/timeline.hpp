#pragma once

#include <cstddef>
#include <iosfwd>

#include "serve/journal.hpp"

namespace hpmm {

/// Chrome-trace / Perfetto JSON timeline of a serve run, reconstructed
/// entirely from the event journal (so it needs no per-request log and is
/// byte-identical whenever the journal is). Two lanes groups:
///   pid 0 "executor slots" — one tid per slot (0..slots-1), an "X"
///     duration event per service attempt (dispatch -> slot release);
///   pid 1 "tenants" — one tid per tenant (sorted by name), the same
///     attempt spans plus "i" instant events for rejections, deadline
///     aborts and breaker transitions.
/// Load the file in chrome://tracing or ui.perfetto.dev.
void write_serve_timeline(std::ostream& os, const EventJournal& journal,
                          std::size_t slots);

}  // namespace hpmm
