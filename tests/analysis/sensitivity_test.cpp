#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Sensitivity, SplitIsExactForSeparableModels) {
  // Cannon's overhead is a pure t_s term plus a pure t_w term.
  const MachineParams mp = params(150, 3);
  const auto split = overhead_split<CannonModel>(mp, 128, 64);
  EXPECT_DOUBLE_EQ(split.ts_part, 2.0 * 150 * 8);
  EXPECT_DOUBLE_EQ(split.tw_part, 2.0 * 3 * 128 * 128 / 8);
  EXPECT_DOUBLE_EQ(split.other_part, 0.0);
  const CannonModel m(mp);
  EXPECT_NEAR(split.total(), m.comm_time(128, 64), 1e-9);
}

TEST(Sensitivity, SplitsSumToCommTimeAcrossModels) {
  const MachineParams mp = params(40, 2.5);
  const double n = 256, p = 64;
  EXPECT_NEAR(overhead_split<SimpleModel>(mp, n, p).total(),
              SimpleModel(mp).comm_time(n, p), 1e-9);
  EXPECT_NEAR(overhead_split<BerntsenModel>(mp, n, p).total(),
              BerntsenModel(mp).comm_time(n, p), 1e-9);
  EXPECT_NEAR(overhead_split<GkModel>(mp, n, p).total(),
              GkModel(mp).comm_time(n, p), 1e-9);
  EXPECT_NEAR(overhead_split<GkCm5Model>(mp, n, p).total(),
              GkCm5Model(mp).comm_time(n, p), 1e-9);
}

TEST(Sensitivity, JohnssonHoHasMixedTerm) {
  // The pipelined broadcast's sqrt(t_s t_w) packets are neither pure-t_s
  // nor pure-t_w.
  const auto split = overhead_split<GkJohnssonHoModel>(params(40, 2.5), 256, 64);
  EXPECT_GT(split.other_part, 0.0);
}

TEST(Sensitivity, SmallMatricesAreStartupDominated) {
  const MachineParams mp = params(150, 3);
  EXPECT_TRUE(overhead_split<CannonModel>(mp, 16, 64).startup_dominated());
  EXPECT_FALSE(overhead_split<CannonModel>(mp, 2048, 64).startup_dominated());
}

TEST(Sensitivity, BalanceOrderSeparatesTheRegimes) {
  // Cannon at p: t_s part = 2 t_s sqrt(p), t_w part = 2 t_w n^2/sqrt(p);
  // equal at n = sqrt(t_s/t_w) * sqrt(p).
  const MachineParams mp = params(150, 3);
  const double p = 64;
  const auto n_bal = balance_order<CannonModel>(mp, p);
  ASSERT_TRUE(n_bal);
  EXPECT_NEAR(*n_bal, std::sqrt(150.0 / 3.0) * 8.0, 0.5);
  // Below: startup-dominated; above: bandwidth-dominated.
  EXPECT_TRUE(overhead_split<CannonModel>(mp, *n_bal * 0.5, p).startup_dominated());
  EXPECT_FALSE(overhead_split<CannonModel>(mp, *n_bal * 2.0, p).startup_dominated());
}

TEST(Sensitivity, NoBalanceWhenOneSideAlwaysWins) {
  // With t_s = 0 every order is bandwidth-dominated.
  EXPECT_FALSE(balance_order<CannonModel>(params(0.0, 3.0), 64).has_value());
}

TEST(Sensitivity, ElasticitiesArePartitionOfUnity) {
  // compute share + t_s share + t_w share (+ mixed) = 1.
  const MachineParams mp = params(150, 3);
  const CannonModel m(mp);
  const double n = 256, p = 64;
  const double e_ts = ts_elasticity<CannonModel>(mp, n, p);
  const double e_tw = tw_elasticity<CannonModel>(mp, n, p);
  const double compute_share = (n * n * n / p) / m.t_parallel(n, p);
  EXPECT_NEAR(e_ts + e_tw + compute_share, 1.0, 1e-9);
  EXPECT_GT(e_ts, 0.0);
  EXPECT_GT(e_tw, 0.0);
}

TEST(Sensitivity, ElasticityPredictsFiniteDifference) {
  // A 1% t_s bump changes T_p by ~e_ts percent.
  const MachineParams mp = params(150, 3);
  const double n = 128, p = 64;
  const double e_ts = ts_elasticity<CannonModel>(mp, n, p);
  MachineParams bumped = mp;
  bumped.t_s *= 1.01;
  const double t0 = CannonModel(mp).t_parallel(n, p);
  const double t1 = CannonModel(bumped).t_parallel(n, p);
  EXPECT_NEAR((t1 - t0) / t0, 0.01 * e_ts, 1e-6);
}

TEST(Sensitivity, GkLessTsSensitiveThanCannonAtLargeP) {
  // GK pays (5/3) log p startups vs Cannon's 2 sqrt(p) — the design reason
  // it wins the small-n regime (Section 6).
  const MachineParams mp = params(150, 3);
  const double n = 64, p = 4096;
  EXPECT_LT(ts_elasticity<GkModel>(mp, n, p),
            ts_elasticity<CannonModel>(mp, n, p));
}

}  // namespace
}  // namespace hpmm
