#include "topology/hypercube.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Hypercube, SizeAndPorts) {
  Hypercube h(4);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h.dim(), 4u);
  EXPECT_EQ(h.ports_per_proc(), 4u);
}

TEST(Hypercube, WithProcsValidation) {
  EXPECT_EQ(Hypercube::with_procs(64).dim(), 6u);
  EXPECT_THROW(Hypercube::with_procs(63), PreconditionError);
}

TEST(Hypercube, HopsIsHammingDistance) {
  Hypercube h(4);
  EXPECT_EQ(h.hops(0, 0), 0u);
  EXPECT_EQ(h.hops(0b0000, 0b0001), 1u);
  EXPECT_EQ(h.hops(0b0101, 0b1010), 4u);
  EXPECT_EQ(h.hops(3, 5), 2u);
}

TEST(Hypercube, HopsSymmetric) {
  Hypercube h(5);
  for (ProcId a = 0; a < h.size(); a += 3) {
    for (ProcId b = 0; b < h.size(); b += 5) {
      EXPECT_EQ(h.hops(a, b), h.hops(b, a));
    }
  }
}

TEST(Hypercube, NeighborsDifferInOneBit) {
  Hypercube h(3);
  const auto ns = h.neighbors(0b101);
  ASSERT_EQ(ns.size(), 3u);
  for (ProcId nb : ns) EXPECT_EQ(h.hops(0b101, nb), 1u);
  // All distinct
  auto sorted = ns;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Hypercube, NeighborAcrossDimension) {
  Hypercube h(3);
  EXPECT_EQ(h.neighbor(0b000, 0), 0b001u);
  EXPECT_EQ(h.neighbor(0b000, 2), 0b100u);
  EXPECT_EQ(h.neighbor(0b111, 1), 0b101u);
  EXPECT_THROW(h.neighbor(0, 3), PreconditionError);
}

TEST(Hypercube, SubcubesPartitionTheCube) {
  Hypercube h(6);
  const auto subs = h.subcubes(2);
  ASSERT_EQ(subs.size(), 4u);
  std::vector<bool> seen(h.size(), false);
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.size(), 16u);
    for (ProcId node : sub) {
      EXPECT_FALSE(seen[node]);
      seen[node] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Hypercube, SubcubeMembersAreSubcube) {
  // Within a subcube, consecutive members by rank differ only in low bits;
  // members pos and pos^2^k are physical neighbours.
  Hypercube h(6);
  const auto subs = h.subcubes(2);
  for (const auto& sub : subs) {
    for (std::size_t pos = 0; pos < sub.size(); ++pos) {
      for (unsigned k = 0; k < 4; ++k) {
        const std::size_t peer = pos ^ (1u << k);
        EXPECT_EQ(h.hops(sub[pos], sub[peer]), 1u);
      }
    }
  }
}

TEST(Hypercube, SubcubeOfAndRank) {
  Hypercube h(6);
  EXPECT_EQ(h.subcube_of(0b110101, 2), 0b11u);
  EXPECT_EQ(h.rank_in_subcube(0b110101, 2), 0b0101u);
  for (ProcId node = 0; node < h.size(); ++node) {
    const auto s = h.subcube_of(node, 2);
    const auto r = h.rank_in_subcube(node, 2);
    EXPECT_EQ(h.subcubes(2)[s][r], node);
  }
}

TEST(Hypercube, NameMentionsDimension) {
  EXPECT_EQ(Hypercube(5).name(), "hypercube(d=5)");
}

TEST(Hypercube, TriangleInequality) {
  Hypercube h(4);
  for (ProcId a = 0; a < h.size(); ++a) {
    for (ProcId b = 0; b < h.size(); ++b) {
      for (ProcId c = 0; c < h.size(); c += 3) {
        EXPECT_LE(h.hops(a, c), h.hops(a, b) + h.hops(b, c));
      }
    }
  }
}

}  // namespace
}  // namespace hpmm
