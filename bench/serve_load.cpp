// Serving-mode load generator: drive the `hpmm serve` engine with a seeded
// multi-tenant workload and the noisy-neighbor chaos scenario, sweeping the
// host thread count. Reports wall-clock throughput (requests/sec), the plan
// cache hit rate and per-tenant tail latency, and cross-checks that every
// thread count produced a byte-identical serve report (the envelope's
// determinism contract).
//
//   ./serve_load [--requests=48] [--tenants=4] [--seed=7] [--repeat=2]
//                [--out=BENCH_serve.json]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/chaos.hpp"
#include "serve/script.hpp"
#include "serve/server.hpp"
#include "serve/timeline.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace hpmm;

namespace {

struct SweepPoint {
  std::string scenario;
  unsigned threads = 1;
  std::size_t requests = 0;
  double wall_ms = 0.0;
  double req_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t ok = 0, failed = 0, rejected = 0, retries = 0;
  std::uint64_t journal_events = 0;
  /// Report, journal JSONL and timeline all byte-identical to threads=1.
  bool deterministic = false;
};

std::string json_of(const ServeReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

std::vector<unsigned> thread_sweep() {
  std::vector<unsigned> threads = {1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 4) threads.push_back(hw);
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_serve.json");
  WorkloadOptions wl;
  wl.requests = static_cast<std::size_t>(args.get_int("requests", 48));
  wl.tenants = static_cast<std::size_t>(args.get_int("tenants", 4));
  wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  wl.fault_fraction = 0.15;
  // Each sweep point keeps its best wall-clock over --repeat runs: a
  // single run is at the mercy of whatever else the host is doing, and the
  // perf-trajectory gate compares these numbers against a baseline.
  const int repeat = std::max(1, static_cast<int>(args.get_int("repeat", 2)));

  NoisyNeighborOptions chaos;
  chaos.seed = wl.seed;
  // Scale the chaos streams with --requests too: the default 12+12 finishes
  // in a few milliseconds, far too little work for a stable throughput
  // number (the baseline gate in bench/compare_bench.py needs one).
  chaos.healthy_requests = wl.requests / 2;
  chaos.noisy_requests = wl.requests - chaos.healthy_requests;

  struct Scenario {
    std::string name;
    std::vector<TenantRequest> requests;
  };
  const std::vector<Scenario> scenarios = {
      {"generated", generate_workload(wl)},
      {"noisy-neighbor", noisy_neighbor_scenario(chaos)},
  };

  std::vector<SweepPoint> points;
  // Per-tenant tails from the threads=1 run of each scenario (identical at
  // every thread count by construction — and verified below).
  struct TenantTail {
    std::string scenario, tenant;
    std::uint64_t ok = 0;
    double p50 = 0.0, p99 = 0.0;
  };
  std::vector<TenantTail> tails;

  Table pretty({"scenario", "threads", "req", "wall ms", "req/s",
                "cache hit", "ok", "fail", "rej", "retry", "identical"});
  for (const Scenario& sc : scenarios) {
    std::string reference_json, reference_journal, reference_timeline;
    for (unsigned threads : thread_sweep()) {
      ServeOptions opt;
      opt.threads = threads;
      opt.seed = wl.seed;
      opt.max_retries = 2;
      const Server server(opt);
      double wall_s = 0.0;
      ServeReport report;
      for (int rep = 0; rep < repeat; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        ServeReport attempt = server.run(sc.requests);
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        if (rep == 0 || s < wall_s) wall_s = s;
        report = std::move(attempt);
      }

      SweepPoint pt;
      pt.scenario = sc.name;
      pt.threads = threads;
      pt.requests = sc.requests.size();
      pt.wall_ms = wall_s * 1e3;
      pt.req_per_sec =
          wall_s > 0.0 ? static_cast<double>(sc.requests.size()) / wall_s : 0.0;
      pt.cache_hit_rate = report.cache_hit_rate();
      for (const auto& [tenant, ts] : report.tenants) {
        pt.ok += ts.ok;
        pt.failed += ts.failed + ts.deadline_exceeded;
        pt.rejected += ts.rejected();
        pt.retries += ts.retries;
      }
      const std::string json = json_of(report);
      const std::string journal = report.journal.jsonl();
      std::ostringstream timeline_os;
      write_serve_timeline(timeline_os, report.journal, opt.slots);
      const std::string timeline = timeline_os.str();
      pt.journal_events = report.journal.size();
      if (threads == 1) {
        reference_json = json;
        reference_journal = journal;
        reference_timeline = timeline;
        for (const auto& [tenant, ts] : report.tenants) {
          tails.push_back({sc.name, tenant, ts.ok,
                           report.latency_quantile(tenant, 0.50),
                           report.latency_quantile(tenant, 0.99)});
        }
      }
      pt.deterministic = json == reference_json &&
                         journal == reference_journal &&
                         timeline == reference_timeline;
      points.push_back(pt);

      pretty.begin_row()
          .add(pt.scenario)
          .add_int(pt.threads)
          .add_int(static_cast<long long>(pt.requests))
          .add_num(pt.wall_ms, 4)
          .add_num(pt.req_per_sec, 5)
          .add_num(pt.cache_hit_rate, 3)
          .add_int(static_cast<long long>(pt.ok))
          .add_int(static_cast<long long>(pt.failed))
          .add_int(static_cast<long long>(pt.rejected))
          .add_int(static_cast<long long>(pt.retries))
          .add(pt.deterministic ? "yes" : "NO");
    }
  }

  std::cout << "=== serve load sweep (virtual-time server, host threads) "
               "===\n\n";
  pretty.print_aligned(std::cout);
  std::cout << "\n'identical' compares the full JSON serve report, the "
               "event journal JSONL and\nthe timeline export against the "
               "threads=1 run; anything but 'yes' is a\ndeterminism "
               "regression.\n\nper-tenant tails (threads=1):\n\n";
  Table tail_table({"scenario", "tenant", "ok", "p50", "p99"});
  for (const TenantTail& t : tails) {
    tail_table.begin_row()
        .add(t.scenario)
        .add(t.tenant)
        .add_int(static_cast<long long>(t.ok))
        .add_num(t.p50, 4)
        .add_num(t.p99, 4);
  }
  tail_table.print_aligned(std::cout);

  bool all_identical = true;
  std::ofstream out(out_path);
  out << "{\"sweeps\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    all_identical = all_identical && pt.deterministic;
    if (i) out << ",";
    out << "{\"scenario\":" << json_quote(pt.scenario)
        << ",\"threads\":" << pt.threads << ",\"requests\":" << pt.requests
        << ",\"wall_ms\":" << json_number(pt.wall_ms)
        << ",\"req_per_sec\":" << json_number(pt.req_per_sec)
        << ",\"cache_hit_rate\":" << json_number(pt.cache_hit_rate)
        << ",\"ok\":" << pt.ok << ",\"failed\":" << pt.failed
        << ",\"rejected\":" << pt.rejected << ",\"retries\":" << pt.retries
        << ",\"journal_events\":" << pt.journal_events
        << ",\"deterministic\":" << (pt.deterministic ? "true" : "false")
        << "}";
  }
  out << "],\"tenants\":[";
  for (std::size_t i = 0; i < tails.size(); ++i) {
    const TenantTail& t = tails[i];
    if (i) out << ",";
    out << "{\"scenario\":" << json_quote(t.scenario)
        << ",\"tenant\":" << json_quote(t.tenant) << ",\"ok\":" << t.ok
        << ",\"p50\":" << json_number(t.p50)
        << ",\"p99\":" << json_number(t.p99) << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!all_identical) {
    std::cerr << "determinism regression: serve report, journal or timeline "
                 "bytes differ across host thread counts\n";
    return 1;
  }
  return 0;
}
