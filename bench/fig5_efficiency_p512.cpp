// Figure 5: efficiency vs matrix size for Cannon's algorithm on p = 484 and
// the GK algorithm on p = 512 CM-5 processors (Cannon needs a perfect
// square; "the efficiency can only be better for smaller p").
//
// Paper readings: crossover near n = 295 (predicted from equal overheads at
// p = 512); GK reaches E = 0.5 around n ~ 112 measured while Cannon sat at
// 0.28 on 110x110 — a ~1.8x efficiency gap that the model reproduces.

#include <iostream>
#include <vector>

#include "analysis/crossover.hpp"
#include "core/runner.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main() {
  const MachineParams mp = machines::cm5_measured();
  std::cout << "=== Figure 5: E vs n, Cannon (p = 484) vs GK (p = 512), "
            << mp.label << " ===\n\n";

  std::vector<std::size_t> gk_orders, cannon_orders;
  for (std::size_t n = 24; n <= 616; n += 8) gk_orders.push_back(n);
  for (std::size_t n = 22; n <= 616; n += 22) cannon_orders.push_back(n);

  // Simulate end-to-end up to n = 352 (512-processor simulations over real
  // data; larger sizes are model-only to keep the run quick).
  const auto gk = efficiency_sweep("gk-fc", 512, mp, gk_orders, 352);
  const auto cannon = efficiency_sweep("cannon", 484, mp, cannon_orders, 352);

  std::cout << "--- GK, p = 512 ---\n";
  efficiency_table(gk, "gk-fc").print_aligned(std::cout);
  std::cout << "\n--- Cannon, p = 484 ---\n";
  efficiency_table(cannon, "cannon").print_aligned(std::cout);

  const GkCm5Model gk_model(mp);
  const CannonModel cannon_model(mp);
  const auto n_eq = n_equal_overhead(gk_model, cannon_model, 512.0, 22.0, 1e5);
  std::cout << "\nPredicted crossover (equal T_o at p = 512): n = "
            << (n_eq ? format_number(*n_eq, 3) : "-")
            << "   [paper: 295]\n";

  double cross_n = 0.0;
  for (double n = 22; n < 2000; n += 1.0) {
    if (gk_model.efficiency(n, 512) < cannon_model.efficiency(n, 484)) {
      cross_n = n;
      break;
    }
  }
  std::cout << "Efficiency-curve crossover (GK@512 vs Cannon@484): n = "
            << format_number(cross_n, 3) << ", at E = "
            << format_number(gk_model.efficiency(cross_n, 512), 3)
            << "   [paper: measured crossover at E ~ 0.93]\n";

  std::cout << "Efficiency gap in the GK region: E_gk(112, 512) = "
            << format_number(gk_model.efficiency(112, 512), 3)
            << ", E_cannon(110, 484) = "
            << format_number(cannon_model.efficiency(110, 484), 3)
            << " (ratio "
            << format_number(gk_model.efficiency(112, 512) /
                                 cannon_model.efficiency(110, 484),
                             3)
            << "x; paper measured 0.50 vs 0.28 = 1.79x)\n";
  return 0;
}
