#pragma once

// Template implementations for technology.hpp (included at its end).

#include "analysis/isoefficiency.hpp"

namespace hpmm {

template <typename Model>
std::optional<double> problem_growth_faster_procs(const MachineParams& params,
                                                  double p, double k,
                                                  double efficiency) {
  const Model baseline(params);
  const Model faster(params.with_cpu_speedup(k));
  const auto w0 = iso_problem_size(baseline, p, efficiency);
  const auto w1 = iso_problem_size(faster, p, efficiency);
  if (!w0 || !w1) return std::nullopt;
  return *w1 / *w0;
}

template <typename Model>
MoreVsFaster more_vs_faster(const MachineParams& params, double n, double p,
                            double k) {
  MoreVsFaster out;
  const Model more(params);
  out.t_more_procs = more.t_parallel(n, k * p);
  // k-times faster processors: the time unit shrinks k-fold, so in original
  // units T = T_p(model with t_s, t_w scaled by k) / k.
  const Model faster(params.with_cpu_speedup(k));
  out.t_faster_procs = faster.t_parallel(n, p) / k;
  return out;
}

}  // namespace hpmm
