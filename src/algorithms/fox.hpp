#pragma once

#include "algorithms/parallel_matmul.hpp"

namespace hpmm {

/// Fox's algorithm (Section 4.3): sqrt(p) iterations; in iteration t the
/// processor holding block A(i, (i+t) mod sqrt(p)) broadcasts it along mesh
/// row i, every processor multiplies the received A block with its resident
/// B block, and B rolls one step north.
///
/// Two broadcast schemes are provided:
///  * kBinomialHypercube — one-to-all broadcast inside each row subcube (the
///    straightforward hypercube scheme);
///  * kPipelinedRing — Eq. 4's mechanism: the root splits its block into
///    packets that stream around the mesh row, so the t_w cost loses its
///    sqrt(p) broadcast factor at the price of t_s per packet per hop.
/// Either way the algorithm is dominated by Cannon's (Section 4.3), which is
/// why the paper drops it from the comparison sections.
class FoxAlgorithm final : public ParallelMatmul {
 public:
  enum class Variant { kBinomialHypercube, kPipelinedRing };

  explicit FoxAlgorithm(Variant variant = Variant::kBinomialHypercube)
      : variant_(variant) {}

  std::string name() const override {
    return variant_ == Variant::kBinomialHypercube ? "fox" : "fox-pipe";
  }
  void check_applicable(std::size_t n, std::size_t p) const override;
  MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                   const MachineParams& params) const override;

  Variant variant() const noexcept { return variant_; }

 private:
  /// One iteration's pipelined row broadcasts (all rows concurrently).
  /// a_col[i] is the broadcasting column of row i; fills `received`.
  void pipelined_row_broadcast(class SimMachine& machine,
                               const class Torus2D& torus, std::size_t sp,
                               const std::vector<Matrix>& a_blk,
                               std::size_t iteration,
                               std::vector<Matrix>& received) const;

  Variant variant_;
};

}  // namespace hpmm
