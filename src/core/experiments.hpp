#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "machine/params.hpp"

namespace hpmm {

/// One quantitative claim from the paper, checked against this
/// reproduction: the recorded paper value, what we measure, and whether the
/// measurement lands inside the acceptance band.
struct ClaimCheck {
  std::string claim;      ///< e.g. "Fig4 predicted crossover order"
  double paper = 0.0;     ///< the paper's number
  double measured = 0.0;  ///< ours
  double lo = 0.0;        ///< acceptance band (absolute)
  double hi = 0.0;
  bool passed = false;
  std::string note;  ///< deviation commentary where applicable
};

/// Outcome of one experiment reproduction.
struct ExperimentResult {
  std::string id;
  std::string title;
  std::vector<ClaimCheck> checks;

  bool all_passed() const noexcept {
    for (const auto& c : checks) {
      if (!c.passed) return false;
    }
    return true;
  }
};

/// The executable counterpart of EXPERIMENTS.md: every table/figure/claim of
/// the paper as a runnable reproduction with recorded paper values and
/// acceptance bands. `bench/` prints the full series; this registry distils
/// each experiment to its checkable numbers (and is what `hpmm reproduce`
/// runs).
class ExperimentSuite {
 public:
  /// Experiment ids in paper order: table1, fig1, fig2, fig3, fig4, fig5,
  /// sec6, sec7, sec8, validation.
  static std::vector<std::string> ids();

  /// True when `id` names a known experiment.
  static bool contains(const std::string& id);

  /// Run one experiment; throws PreconditionError for unknown ids.
  static ExperimentResult run(const std::string& id);

  /// Run every experiment in order.
  static std::vector<ExperimentResult> run_all();

  /// Human-readable report: one line per check, PASS/FAIL, plus a summary.
  static void print_report(const std::vector<ExperimentResult>& results,
                           std::ostream& os);
};

}  // namespace hpmm
