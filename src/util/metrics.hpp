#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace hpmm {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written sample of an instantaneous quantity.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts samples v <= bounds[i]
/// (cumulative-style upper bounds, ascending); one implicit overflow bucket
/// catches everything above the last bound. Tracks count and sum so the
/// mean survives bucketing.
class Histogram {
 public:
  Histogram() = default;
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  /// Number of buckets including the overflow bucket (bounds + 1).
  std::size_t buckets() const noexcept { return counts_.size(); }
  /// Inclusive upper bound of bucket i; infinity for the overflow bucket.
  double bucket_bound(std::size_t i) const;
  std::uint64_t bucket_count(std::size_t i) const;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  /// Largest observed sample (exact, not bucketed); 0 before any
  /// observation. Correct for all-negative distributions too.
  double max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Bucket-interpolated quantile estimate for q in [0, 1]: find the bucket
  /// holding the q-th ranked sample and interpolate linearly between its
  /// bounds (the first bucket interpolates up from min(0, its bound)).
  /// Samples in the overflow bucket resolve to max(), and every estimate is
  /// capped at max() — the one order statistic tracked exactly. An empty
  /// histogram returns 0. Throws PreconditionError for q outside [0, 1].
  double quantile(double q) const;

  void reset() noexcept;

  /// Power-of-two upper bounds 1, 2, 4, ..., 2^(n-1) — the usual choice for
  /// message-size and latency distributions.
  static std::vector<double> pow2_bounds(unsigned n);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_{0};  // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Words transferred per directed (src, dst) processor pair. Stored sparsely
/// (algorithms touch O(p log p) of the p^2 links), with a dense row-major
/// export for tooling.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t procs = 0) : procs_(procs) {}

  void add(std::size_t src, std::size_t dst, std::uint64_t words);
  std::uint64_t words(std::size_t src, std::size_t dst) const;

  std::size_t procs() const noexcept { return procs_; }
  std::uint64_t total_words() const noexcept { return total_; }
  /// Number of directed pairs with nonzero traffic.
  std::size_t links_used() const noexcept { return cells_.size(); }

  struct Link {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::uint64_t words = 0;
  };
  /// The heaviest directed link (lowest (src, dst) on ties; zero Link when
  /// no traffic was recorded).
  Link busiest() const;

  /// Dense p x p row-major copy — O(p^2) memory, intended for export only.
  std::vector<std::uint64_t> dense() const;

 private:
  std::size_t procs_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

/// Name-addressed bag of counters, gauges and histograms. Instruments fetch
/// their metric once by name (creating it on first use) and update it
/// directly; readers enumerate by sorted name or export everything as JSON.
class MetricsRegistry {
 public:
  /// Fetch-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies on first creation only (non-empty, ascending).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Lookup without creating; null when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Zero every metric, keeping registrations (and histogram buckets).
  void reset() noexcept;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, max, p50, p95, p99,
  /// buckets: [...]}}}.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hpmm
