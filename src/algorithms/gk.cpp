#include "algorithms/gk.hpp"

#include <cmath>

#include "matrix/checksum.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr int kTagMoveA = 1;
constexpr int kTagMoveB = 2;
constexpr int kTagBcastA = 3;
constexpr int kTagBcastB = 4;
constexpr int kTagReduce = 5;

}  // namespace

std::string GkAlgorithm::name() const {
  std::string base;
  switch (broadcast_) {
    case Broadcast::kBinomial: base = "gk"; break;
    case Broadcast::kJohnssonHo: base = "gk-jh"; break;
    case Broadcast::kAllPort: base = "gk-allport"; break;
  }
  if (interconnect_ == Interconnect::kFullyConnected) base += "-fc";
  return base;
}

void GkAlgorithm::check_applicable(std::size_t n, std::size_t p) const {
  require(p >= 1, "gk: need at least one processor");
  require(is_pow8(p), "gk: p must be 2^(3q)");
  require(p <= n * n * n, "gk: at most n^3 processors usable");
  const std::size_t s = exact_cbrt(p);
  require(n % s == 0, "gk: p^(1/3) must divide n");
}

MatmulResult GkAlgorithm::run(const Matrix& a, const Matrix& b, std::size_t p,
                              const MachineParams& params) const {
  const std::size_t n = validated_order(a, b);
  check_applicable(n, p);
  const std::size_t s = exact_cbrt(p);  // grid side p^{1/3}
  const std::size_t bn = n / s;         // block order n / p^{1/3}
  const double m_words = static_cast<double>(bn) * static_cast<double>(bn);

  std::shared_ptr<const Topology> topo;
  if (interconnect_ == Interconnect::kFullyConnected) {
    topo = std::make_shared<FullyConnected>(p);
  } else {
    topo = std::make_shared<Hypercube>(Hypercube::with_procs(p));
  }
  MachineParams effective = params;
  effective.ports = broadcast_ == Broadcast::kAllPort ? PortModel::kAllPort
                                                      : PortModel::kOnePort;
  SimMachine machine(topo, effective);

  // ABFT: blocks crossing the network carry row/column checksums, verified
  // (optionally corrected) on receipt. Checksum linearity lets augmented
  // blocks flow through the stage-3 reduction and be verified once at the
  // root. Only the real-message (binomial / fully-connected) paths are
  // guarded; the modeled variants move no actual data.
  const AbftMode abft = params.faults ? params.faults->abft : AbftMode::kOff;
  const auto guard = [abft](Matrix blk) {
    return abft == AbftMode::kOff ? std::move(blk) : with_checksums(blk);
  };
  const auto unguard = [abft, &machine](Matrix blk) {
    if (abft != AbftMode::kOff) {
      const ChecksumVerdict v =
          verify_checksums(blk, abft == AbftMode::kCorrect);
      if (!v.consistent) machine.note_abft(true, v.corrected);
      blk = strip_checksums(blk);
    }
    return blk;
  };
  // Per-hop repair for the tree collectives: single-element ABFT can only
  // fix one corruption per block, so blocks relayed through several tree
  // hops must be verified at every hop — otherwise two corruptions compound
  // (or a corrupted partial is summed into a neighbour's) before the final
  // unguard sees them.
  const OnReceive hop_check =
      abft == AbftMode::kOff
          ? OnReceive{}
          : OnReceive{[abft, &machine](Matrix& blk) {
              const ChecksumVerdict v =
                  verify_checksums(blk, abft == AbftMode::kCorrect);
              if (!v.consistent) machine.note_abft(true, v.corrected);
            }};

  // Rank layout (i, j, k) -> i s^2 + j s + k: every axis line is a subcube.
  const auto rank = [s](std::size_t i, std::size_t j, std::size_t k) {
    return static_cast<ProcId>((i * s + j) * s + k);
  };

  // Initial layout (plane i = 0): (0, j, k) holds A block (j, k) and B
  // block (j, k), each bn x bn.
  std::vector<Matrix> a_blk(p), b_blk(p);
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t k = 0; k < s; ++k) {
      const ProcId pid = rank(0, j, k);
      a_blk[pid] = a.slice(j * bn, k * bn, bn, bn);
      b_blk[pid] = b.slice(j * bn, k * bn, bn, bn);
      machine.note_alloc(pid, a_blk[pid].size() + b_blk[pid].size());
    }
  }

  // Per-phase cost of the two modeled variants. The Johnsson-Ho variant
  // prices each of the five communication phases as one pipelined broadcast
  // (Section 5.4.1); the all-port variant spreads Eq. 17's total over the
  // five phases.
  const double log_p = p > 1 ? std::log2(static_cast<double>(p)) : 0.0;
  double modeled_phase_time = 0.0;
  if (broadcast_ == Broadcast::kJohnssonHo) {
    modeled_phase_time = johnsson_ho_broadcast_time(params, m_words, s);
  } else if (broadcast_ == Broadcast::kAllPort && p > 1) {
    // Eq. 17: t_s log p + 9 t_w n^2/(p^{2/3} log p) + 6 n p^{-1/3} sqrt(t_s t_w),
    // spread evenly over the five communication phases.
    const double total = params.t_s * log_p + 9.0 * params.t_w * m_words / log_p +
                         6.0 * static_cast<double>(bn) *
                             std::sqrt(params.t_s * params.t_w);
    modeled_phase_time = total / 5.0;
  }
  const bool modeled = broadcast_ != Broadcast::kBinomial && p > 1;

  std::vector<ProcId> all_procs(p);
  for (ProcId pid = 0; pid < p; ++pid) all_procs[pid] = pid;

  // --- Stage 1a/1b: move A block (j, t) from (0, j, t) to (t, j, t) and B
  // block (t, k) from (0, t, k) to (t, t, k). On the hypercube this is
  // dimension-ordered hop-by-hop routing along the i axis (log s rounds, as
  // the paper charges); on the fully connected machine a single round.
  const auto route_plane0_to_diag = [&](std::vector<Matrix>& blk, int tag,
                                        bool target_is_k) {
    // target coordinate t: for A the k index, for B the j index.
    if (s == 1) return;
    if (modeled) {
      for (std::size_t other = 0; other < s; ++other) {
        for (std::size_t t = 1; t < s; ++t) {
          const ProcId src = target_is_k ? rank(0, other, t) : rank(0, t, other);
          const ProcId dst = target_is_k ? rank(t, other, t) : rank(t, t, other);
          blk[dst] = std::move(blk[src]);
        }
      }
      // Book the bn x bn block each processor handles so the modeled phase
      // contributes its data volume to the exact word accounting.
      machine.charge_group_comm(all_procs, modeled_phase_time,
                                static_cast<std::uint64_t>(bn) * bn);
      return;
    }
    if (interconnect_ == Interconnect::kFullyConnected) {
      std::vector<Message> msgs;
      for (std::size_t other = 0; other < s; ++other) {
        for (std::size_t t = 1; t < s; ++t) {
          const ProcId src = target_is_k ? rank(0, other, t) : rank(0, t, other);
          const ProcId dst = target_is_k ? rank(t, other, t) : rank(t, t, other);
          msgs.emplace_back(src, dst, tag, guard(std::move(blk[src])));
        }
      }
      machine.exchange(std::move(msgs));
      for (std::size_t other = 0; other < s; ++other) {
        for (std::size_t t = 1; t < s; ++t) {
          const ProcId dst = target_is_k ? rank(t, other, t) : rank(t, t, other);
          blk[dst] = unguard(std::move(machine.receive(dst, tag).blocks.front()));
        }
      }
      return;
    }
    for (std::size_t dbit = 1; dbit < s; dbit <<= 1) {
      std::vector<Message> msgs;
      for (std::size_t other = 0; other < s; ++other) {
        for (std::size_t t = 0; t < s; ++t) {
          if ((t & dbit) == 0) continue;
          const std::size_t cur = t & (dbit - 1);
          const ProcId src = target_is_k ? rank(cur, other, t) : rank(cur, t, other);
          const ProcId dst = target_is_k ? rank(cur | dbit, other, t)
                                         : rank(cur | dbit, t, other);
          msgs.emplace_back(src, dst, tag, guard(std::move(blk[src])));
        }
      }
      if (msgs.empty()) continue;
      machine.exchange(std::move(msgs));
      for (std::size_t other = 0; other < s; ++other) {
        for (std::size_t t = 0; t < s; ++t) {
          if ((t & dbit) == 0) continue;
          const std::size_t cur = (t & (dbit - 1)) | dbit;
          const ProcId dst = target_is_k ? rank(cur, other, t) : rank(cur, t, other);
          blk[dst] = unguard(std::move(machine.receive(dst, tag).blocks.front()));
        }
      }
    }
  };

  // Phases are separated by barriers so the simulated time decomposes
  // exactly as the paper's stage-by-stage accounting (Eq. 7 / Eq. 18): five
  // communication phases of (t_s + t_w m) log p^{1/3} each on the hypercube.
  {
    PhaseScope scope(machine, "move-a");
    route_plane0_to_diag(a_blk, kTagMoveA, /*target_is_k=*/true);
    machine.synchronize();
  }
  {
    PhaseScope scope(machine, "move-b");
    route_plane0_to_diag(b_blk, kTagMoveB, /*target_is_k=*/false);
    machine.synchronize();
  }

  // --- Stage 1c: broadcast A along k-lines; 1d: broadcast B along j-lines.
  if (s > 1) {
    {
      PhaseScope scope(machine, "broadcast-a");
      for (std::size_t i = 0; i < s; ++i) {
        for (std::size_t j = 0; j < s; ++j) {
          std::vector<ProcId> group;
          group.reserve(s);
          for (std::size_t k = 0; k < s; ++k) group.push_back(rank(i, j, k));
          std::vector<Matrix> copies;
          if (modeled) {
            copies = broadcast_modeled(machine, group, i,
                                       std::move(a_blk[group[i]]),
                                       modeled_phase_time);
          } else {
            copies = broadcast_binomial(machine, group, i, kTagBcastA,
                                        guard(std::move(a_blk[group[i]])),
                                        hop_check);
            for (auto& cp : copies) cp = unguard(std::move(cp));
          }
          for (std::size_t k = 0; k < s; ++k) a_blk[group[k]] = std::move(copies[k]);
        }
      }
      machine.synchronize();
    }
    PhaseScope scope(machine, "broadcast-b");
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t k = 0; k < s; ++k) {
        std::vector<ProcId> group;
        group.reserve(s);
        for (std::size_t j = 0; j < s; ++j) group.push_back(rank(i, j, k));
        std::vector<Matrix> copies;
        if (modeled) {
          copies = broadcast_modeled(machine, group, i, std::move(b_blk[group[i]]),
                                     modeled_phase_time);
        } else {
          copies = broadcast_binomial(machine, group, i, kTagBcastB,
                                      guard(std::move(b_blk[group[i]])),
                                      hop_check);
          for (auto& cp : copies) cp = unguard(std::move(cp));
        }
        for (std::size_t j = 0; j < s; ++j) b_blk[group[j]] = std::move(copies[j]);
      }
    }
    machine.synchronize();
  }

  // --- Stage 2: every processor multiplies its bn x bn block pair
  // (n^3/p multiply-add units).
  std::vector<Matrix> c_blk(p);
  std::vector<SimMachine::ComputeTask> phase;
  phase.reserve(p);
  for (ProcId pid = 0; pid < p; ++pid) {
    c_blk[pid] = Matrix(bn, bn);
    phase.push_back({pid, &c_blk[pid], {{&a_blk[pid], &b_blk[pid]}}});
  }
  {
    PhaseScope scope(machine, "multiply");
    machine.compute_multiply_add_batch(phase);
  }
  for (ProcId pid = 0; pid < p; ++pid) {
    machine.note_alloc(pid, c_blk[pid].size());
  }

  // --- Stage 3: sum the p^{1/3} partial products along each i-line into the
  // i = 0 plane.
  Matrix c(n, n);
  PhaseScope reduce_scope(machine, "reduce");
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t k = 0; k < s; ++k) {
      std::vector<ProcId> group;
      std::vector<Matrix> contribs;
      group.reserve(s);
      contribs.reserve(s);
      for (std::size_t i = 0; i < s; ++i) {
        group.push_back(rank(i, j, k));
        contribs.push_back(std::move(c_blk[rank(i, j, k)]));
      }
      Matrix sum(bn, bn);
      if (modeled && s > 1) {
        // Data combined directly; the phase is charged once per line with
        // the modeled collective's closed form.
        for (auto& part : contribs) sum += part;
        machine.charge_group_comm(group, modeled_phase_time,
                                  static_cast<std::uint64_t>(bn) * bn);
      } else {
        for (auto& part : contribs) part = guard(std::move(part));
        sum = unguard(reduce_binomial(machine, group, 0, kTagReduce,
                                      std::move(contribs), 0.0, hop_check));
      }
      c.paste(sum, j * bn, k * bn);
    }
  }
  machine.synchronize();
  machine.assert_clean_run();

  MatmulResult result;
  result.c = std::move(c);
  result.report = machine.report(name(), n, std::pow(static_cast<double>(n), 3.0));
  if (machine.tracing()) result.trace = machine.trace();
  return result;
}

}  // namespace hpmm
