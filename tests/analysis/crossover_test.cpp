#include "analysis/crossover.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Crossover, NumericRootMatchesClosedFormGkCannon) {
  // Eq. 15 closed form vs the generic bisection, across machines and p.
  for (double ts : {150.0, 10.0}) {
    const MachineParams mp = params(ts, 3.0);
    const GkModel gk(mp);
    const CannonModel cannon(mp);
    for (double p : {64.0, 4096.0, 262144.0}) {
      const auto closed = n_equal_overhead_gk_cannon(mp, p);
      const auto numeric = n_equal_overhead(gk, cannon, p, 1.0, 1e12);
      if (closed && numeric) {
        EXPECT_NEAR(*numeric / *closed, 1.0, 1e-4) << "ts=" << ts << " p=" << p;
      } else {
        EXPECT_EQ(closed.has_value(), numeric.has_value())
            << "ts=" << ts << " p=" << p;
      }
    }
  }
}

TEST(Crossover, GkWinsBelowCannonAbove) {
  const MachineParams mp = params(150, 3);
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  const double p = 4096.0;
  const auto n_eq = n_equal_overhead(gk, cannon, p, 1.0, 1e12);
  ASSERT_TRUE(n_eq);
  EXPECT_LT(gk.t_overhead(*n_eq * 0.5, p), cannon.t_overhead(*n_eq * 0.5, p));
  EXPECT_GT(gk.t_overhead(*n_eq * 2.0, p), cannon.t_overhead(*n_eq * 2.0, p));
}

TEST(Crossover, Cm5Figure4PredictedCrossoverNear83) {
  // Section 9: "for 64 processors, Cannon's algorithm should perform better
  // than our algorithm for n > 83" (CM-5 measured parameters, Eq. 18 vs 3).
  const MachineParams mp = machines::cm5_measured();
  const GkCm5Model gk(mp);
  const CannonModel cannon(mp);
  const auto n_eq = n_equal_overhead(gk, cannon, 64.0, 1.0, 1e6);
  ASSERT_TRUE(n_eq);
  EXPECT_NEAR(*n_eq, 83.0, 3.0);
}

TEST(Crossover, Cm5Figure5PredictedCrossoverNear295) {
  // Section 9: "For 512 processors, the predicted cross-over point is for
  // n = 295" (GK at p = 512 vs Cannon at p = 484, by efficiency).
  const MachineParams mp = machines::cm5_measured();
  const GkCm5Model gk(mp);
  const CannonModel cannon(mp);
  // Efficiencies are compared across *different* processor counts, so find
  // the root of E_gk(n, 512) - E_cannon(n, 484) by scanning.
  double crossover = 0.0;
  for (double n = 22; n <= 1200; n += 1.0) {
    if (gk.efficiency(n, 512) < cannon.efficiency(n, 484)) {
      crossover = n;
      break;
    }
  }
  EXPECT_NEAR(crossover, 295.0, 25.0);
}

TEST(Crossover, GkDominatesCannonBeyond130MillionProcs) {
  // Section 6: with t_s = 0, the GK t_w term beats Cannon's for
  // p > ~1.3e8 regardless of n.
  const MachineParams mp = params(0.0, 3.0);
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  EXPECT_FALSE(dominates_at_p(gk, cannon, 1e6));
  EXPECT_TRUE(dominates_at_p(gk, cannon, 2e8));
  const auto cutoff = dominance_cutoff_p(gk, cannon, 1e12);
  ASSERT_TRUE(cutoff);
  EXPECT_GT(*cutoff, 0.5e8);
  EXPECT_LT(*cutoff, 3e8);
}

TEST(Crossover, GkVsCannonTwTermAlgebra) {
  // The t_w comparison reduces to 2 sqrt(p) vs (5/3) p^{1/3} log p; they
  // cross at p ~ 1.3e8 (the paper's "130 million processors").
  const auto f = [](double p) {
    return 2.0 * std::sqrt(p) - (5.0 / 3.0) * std::cbrt(p) * std::log2(p);
  };
  EXPECT_LT(f(1.0e8), 0.0);
  EXPECT_GT(f(1.4e8), 0.0);
}

TEST(Crossover, NoCrossoverWhenOneDominates) {
  // With t_s = 0 and enormous p, GK's overhead is below Cannon's for all n.
  const MachineParams mp = params(0.0, 3.0);
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  EXPECT_FALSE(n_equal_overhead(gk, cannon, 1e10, 1.0, 1e12).has_value());
}

TEST(Crossover, ClosedFormRejectsNegativeSquare) {
  // Beyond p ~ 1.3e8 the denominator of Eq. 15 turns positive while the
  // numerator stays negative: n^2 < 0, i.e. GK wins for every n.
  const MachineParams mp = params(150, 3);
  EXPECT_FALSE(n_equal_overhead_gk_cannon(mp, 1e10).has_value());
  // At small p both terms are negative and a genuine crossover exists.
  EXPECT_TRUE(n_equal_overhead_gk_cannon(mp, 64.0).has_value());
}

TEST(Crossover, ValidatesArguments) {
  const MachineParams mp = params(1, 1);
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  EXPECT_THROW(n_equal_overhead(gk, cannon, 0.0, 1.0, 10.0), PreconditionError);
  EXPECT_THROW(n_equal_overhead(gk, cannon, 4.0, 10.0, 10.0), PreconditionError);
}

TEST(Crossover, DnsVsGkNeedsAstronomicalP) {
  // Section 6 footnote: the DNS-vs-GK equal-overhead curve only crosses
  // p = n^3 at p ~ 2.6e18 — DNS never beats GK at practical scale when
  // t_s = 150, t_w = 3.
  const MachineParams mp = params(150, 3);
  const DnsModel dns(mp);
  const GkModel gk(mp);
  for (double p : {1e4, 1e6, 1e8}) {
    const double n = std::cbrt(p);  // DNS applicability floor n^3 = p
    // Everywhere DNS is applicable (n in [p^{1/3}, sqrt(p)]), GK overhead is
    // smaller at practical p.
    for (double nn = n; nn * nn <= p * 1.0001; nn *= 1.3) {
      EXPECT_LT(gk.t_overhead(nn, p), dns.t_overhead(nn, p))
          << "p=" << p << " n=" << nn;
    }
  }
}

}  // namespace
}  // namespace hpmm
