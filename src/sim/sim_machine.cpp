#include "sim/sim_machine.hpp"

#include <algorithm>

#include "sim/reliable.hpp"
#include "topology/routing.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hpmm {

SimMachine::SimMachine(std::shared_ptr<const Topology> topology,
                       MachineParams params)
    : topology_(std::move(topology)), params_(std::move(params)) {
  require(topology_ != nullptr, "SimMachine: topology must not be null");
  require(params_.exec.threads >= 1, "SimMachine: exec.threads must be >= 1");
  if (params_.exec.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(params_.exec.threads);
  }
  stats_.resize(topology_->size());
  inbox_.resize(topology_->size());
  tracing_ = params_.trace;
  // The fault path only exists when a plan can actually fire; an inactive
  // plan keeps the machine on the exact ideal code path (bit-identical
  // times), which tests/algorithms/resilience_test.cpp pins down.
  if (params_.faults && params_.faults->active()) {
    injector_ = std::make_unique<FaultInjector>(params_.faults);
    for (const auto& s : params_.faults->stragglers) {
      require(s.pid < procs(), "FaultPlan: straggler pid out of range");
    }
    for (const auto& f : params_.faults->failstops) {
      require(f.pid < procs(), "FaultPlan: fail-stop pid out of range");
    }
  }
}

void SimMachine::record(ProcId pid, TraceEvent::Kind kind, double start,
                        double end, std::uint64_t words) {
  if (!tracing_ || end <= start) return;
  trace_events_.push_back(TraceEvent{pid, kind, start, end, words});
}

void SimMachine::compute(ProcId pid, double flops) {
  require(pid < procs(), "SimMachine::compute: pid out of range");
  require(flops >= 0.0, "SimMachine::compute: negative flops");
  auto& st = stats_[pid];
  double duration = flops;  // t_c = 1 multiply-add unit
  if (injector_) {
    check_alive(pid);
    duration = flops * injector_->slowdown(pid);  // straggler runs slower
  }
  record(pid, TraceEvent::Kind::kCompute, st.clock, st.clock + duration);
  st.clock += duration;
  st.compute_time += duration;
  st.flops += static_cast<std::uint64_t>(flops);
}

SimMachine::~SimMachine() = default;
SimMachine::SimMachine(SimMachine&&) noexcept = default;
SimMachine& SimMachine::operator=(SimMachine&&) noexcept = default;

void SimMachine::compute_multiply_add(ProcId pid, const Matrix& a,
                                      const Matrix& b, Matrix& c) {
  compute_multiply_add(pid, a, b, c, params_.exec.kernel);
}

void SimMachine::compute_multiply_add(ProcId pid, const Matrix& a,
                                      const Matrix& b, Matrix& c,
                                      Kernel kernel) {
  multiply_add(a, b, c, kernel, pool_.get());
  compute(pid, static_cast<double>(matmul_flops(a.rows(), a.cols(), b.cols())));
}

void SimMachine::compute_multiply_add_batch(
    const std::vector<ComputeTask>& tasks) {
  const Kernel kernel = params_.exec.kernel;
  for (const auto& t : tasks) {
    require(t.c != nullptr, "compute_multiply_add_batch: null output matrix");
    require(t.pid < procs(), "compute_multiply_add_batch: pid out of range");
  }
  // Numerics first: tasks touch disjoint outputs, so they run concurrently
  // across the pool. A single task instead threads inside the kernel.
  const auto run_task = [&](const ComputeTask& t, ThreadPool* pool) {
    for (const auto& [a, b] : t.products) multiply_add(*a, *b, *t.c, kernel, pool);
  };
  if (pool_ != nullptr && tasks.size() > 1) {
    pool_->parallel_for(tasks.size(),
                        [&](std::size_t i) { run_task(tasks[i], nullptr); });
  } else {
    for (const auto& t : tasks) run_task(t, pool_.get());
  }
  // Virtual-time accounting: serial and order-preserving — one charge per
  // product, exactly like the equivalent compute_multiply_add sequence
  // (same clocks, same trace events, ProcessorFailure at the same point).
  for (const auto& t : tasks) {
    for (const auto& [a, b] : t.products) {
      compute(t.pid,
              static_cast<double>(matmul_flops(a->rows(), a->cols(), b->cols())));
    }
  }
}

double SimMachine::message_cost(const Message& m,
                                unsigned contention_load) const {
  const unsigned hops = topology_->hops(m.src, m.dst);
  const double base = params_.message_time(static_cast<double>(m.words()), hops);
  if (contention_load <= 1) return base;
  // Under link contention the per-word part serialises with the other
  // messages sharing the bottleneck link; startup/hop latency is unaffected.
  const double tw_part = params_.t_w * static_cast<double>(m.words()) *
                         (params_.routing == Routing::kStoreAndForward
                              ? static_cast<double>(hops)
                              : 1.0);
  return base + tw_part * static_cast<double>(contention_load - 1);
}

void SimMachine::exchange(std::vector<Message> messages) {
  ++exchange_round_;  // identifies this round in fault-fate hashing
  // Validate port-model constraints.
  std::vector<unsigned> sends(procs(), 0), recvs(procs(), 0);
  for (const auto& m : messages) {
    require(m.src < procs() && m.dst < procs(),
            "SimMachine::exchange: endpoint out of range");
    require(m.src != m.dst, "SimMachine::exchange: self-message");
    if (injector_) {
      check_alive(m.src);
      check_alive(m.dst);
    }
    ++sends[m.src];
    ++recvs[m.dst];
  }
  const bool one_port = params_.ports == PortModel::kOnePort;
  for (ProcId pid = 0; pid < procs(); ++pid) {
    const unsigned limit =
        one_port ? 1u : std::max(1u, topology_->ports_per_proc());
    require(sends[pid] <= limit,
            "SimMachine::exchange: too many sends from one processor for the "
            "port model (split the pattern into multiple rounds)");
    require(recvs[pid] <= limit,
            "SimMachine::exchange: too many receives at one processor for the "
            "port model (split the pattern into multiple rounds)");
  }

  // Optional contention model: each message's per-word time scales with the
  // worst link load along its route within this round.
  std::vector<unsigned> load_factor(messages.size(), 1);
  if (params_.contention == Contention::kLinkLoad && !messages.empty()) {
    std::vector<std::pair<ProcId, ProcId>> transfers;
    transfers.reserve(messages.size());
    for (const auto& m : messages) transfers.emplace_back(m.src, m.dst);
    const auto loads = link_loads(*topology_, transfers);
    for (std::size_t i = 0; i < messages.size(); ++i) {
      unsigned worst = 1;
      for (const Link& link :
           route_on(*topology_, messages[i].src, messages[i].dst)) {
        worst = std::max(worst, loads.at(link));
      }
      load_factor[i] = worst;
    }
  }

  // Senders are busy for the full duration of their transfers. Under the
  // all-port model multiple transfers from one processor run concurrently,
  // so the busy time is the max (not the sum) of their costs. With an
  // active fault plan each message additionally walks the reliable-delivery
  // retry schedule (sim/reliable.hpp): timeouts extend the sender's elapsed
  // span beyond its busy time, and the arrival moves to the successful
  // attempt (plus any in-flight delay).
  std::vector<double> send_busy(procs(), 0.0);
  std::vector<double> send_span(procs(), 0.0);
  std::vector<double> arrival_max(procs(), 0.0);
  std::vector<bool> deliver(messages.size(), true);
  std::vector<bool> deliver_dup(messages.size(), false);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    auto& m = messages[i];
    double cost = message_cost(m, load_factor[i]);
    double busy = cost, span = cost, arrival_delay = 0.0;
    if (injector_) {
      cost *= injector_->slowdown(m.src);  // a straggler's sends run slower
      const ReliableOutcome out =
          reliable_delivery(*injector_, m, exchange_round_, cost);
      busy = out.busy;
      span = out.span();
      arrival_delay = out.delay;
      deliver[i] = out.delivered;
      auto& fs = fault_stats_;
      fs.transmissions_dropped += out.attempts - 1 + (out.delivered ? 0 : 1);
      fs.retransmissions += out.retransmissions();
      stats_[m.src].retransmissions += out.retransmissions();
      if (out.delay > 0.0) ++fs.deliveries_delayed;
      if (!out.delivered) ++fs.messages_lost;
      if (out.duplicated) {
        // The reliable protocol de-duplicates at the receiver; without it
        // the extra copy really lands in the inbox.
        if (injector_->plan().reliable) {
          ++fs.duplicates_suppressed;
        } else {
          deliver_dup[i] = out.delivered;
          if (out.delivered) ++fs.duplicates_delivered;
        }
      }
      if (out.delivered && out.corrupted) {
        corrupt_message_word(
            m, injector_->corrupt_word_index(m, exchange_round_,
                                             out.corrupt_attempt));
        ++fs.elements_corrupted;
      }
    }
    if (deliver[i]) {
      arrival_max[m.dst] = std::max(
          arrival_max[m.dst], stats_[m.src].clock + span + arrival_delay);
    }
    send_busy[m.src] = std::max(send_busy[m.src], busy);
    send_span[m.src] = std::max(send_span[m.src], span);
    stats_[m.src].messages_sent += 1;
    stats_[m.src].words_sent += m.words();
  }
  for (ProcId pid = 0; pid < procs(); ++pid) {
    auto& st = stats_[pid];
    const double busy_until = st.clock + send_busy[pid];
    record(pid, TraceEvent::Kind::kSend, st.clock, busy_until);
    st.comm_time += send_busy[pid];
    double next = busy_until;
    if (send_span[pid] > send_busy[pid]) {
      // Timeout-and-retransmit overhead beyond the pure transfer time.
      const double span_until = st.clock + send_span[pid];
      record(pid, TraceEvent::Kind::kRetry, next, span_until);
      st.idle_time += span_until - next;
      next = span_until;
    }
    if (arrival_max[pid] > next) {
      record(pid, TraceEvent::Kind::kWait, next, arrival_max[pid]);
      st.idle_time += arrival_max[pid] - next;
      next = arrival_max[pid];
    }
    st.clock = next;
  }
  // Deliver payloads.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (!deliver[i]) continue;
    const ProcId dst = messages[i].dst;
    if (deliver_dup[i]) inbox_[dst].push_back(messages[i]);
    inbox_[dst].push_back(std::move(messages[i]));
  }
}

Message SimMachine::receive(ProcId pid, int tag) {
  require(pid < procs(), "SimMachine::receive: pid out of range");
  auto& box = inbox_[pid];
  const auto it = std::find_if(box.begin(), box.end(),
                               [tag](const Message& m) { return m.tag == tag; });
  require(it != box.end(),
          "SimMachine::receive: no pending message with requested tag");
  Message out = std::move(*it);
  box.erase(it);
  return out;
}

bool SimMachine::has_message(ProcId pid, int tag) const {
  require(pid < procs(), "SimMachine::has_message: pid out of range");
  const auto& box = inbox_[pid];
  return std::any_of(box.begin(), box.end(),
                     [tag](const Message& m) { return m.tag == tag; });
}

std::size_t SimMachine::pending_messages() const noexcept {
  std::size_t n = 0;
  for (const auto& box : inbox_) n += box.size();
  return n;
}

void SimMachine::assert_clean_run() const {
  for (ProcId pid = 0; pid < procs(); ++pid) {
    if (inbox_[pid].empty()) continue;
    const Message& m = inbox_[pid].front();
    throw InternalError(
        "SimMachine::assert_clean_run: leftover message with tag " +
        std::to_string(m.tag) + " pending at destination processor " +
        std::to_string(pid) + " (from " + std::to_string(m.src) + ", " +
        std::to_string(pending_messages()) + " pending in total)");
  }
}

void SimMachine::note_abft(bool detected, bool corrected) {
  if (detected) ++fault_stats_.abft_detected;
  if (corrected) ++fault_stats_.abft_corrected;
}

void SimMachine::check_alive(ProcId pid) const {
  const auto fail_at = injector_->fail_time(pid);
  if (fail_at && stats_[pid].clock >= *fail_at) {
    throw ProcessorFailure(pid, *fail_at);
  }
}

double SimMachine::synchronize() {
  const double t = time();
  for (ProcId pid = 0; pid < procs(); ++pid) {
    auto& st = stats_[pid];
    record(pid, TraceEvent::Kind::kWait, st.clock, t);
    st.idle_time += t - st.clock;
    st.clock = t;
  }
  return t;
}

void SimMachine::charge_group_comm(std::span<const ProcId> group, double time_cost) {
  require(time_cost >= 0.0, "charge_group_comm: negative time");
  double start = 0.0;
  for (ProcId pid : group) {
    require(pid < procs(), "charge_group_comm: pid out of range");
    start = std::max(start, stats_[pid].clock);
  }
  for (ProcId pid : group) {
    auto& st = stats_[pid];
    if (start > st.clock) {
      record(pid, TraceEvent::Kind::kWait, st.clock, start);
      st.idle_time += start - st.clock;
    }
    record(pid, TraceEvent::Kind::kModeledComm, start, start + time_cost);
    st.comm_time += time_cost;
    st.clock = start + time_cost;
  }
}

void SimMachine::note_alloc(ProcId pid, std::uint64_t words) {
  require(pid < procs(), "note_alloc: pid out of range");
  auto& st = stats_[pid];
  st.words_stored += words;
  st.peak_words_stored = std::max(st.peak_words_stored, st.words_stored);
}

void SimMachine::note_free(ProcId pid, std::uint64_t words) {
  require(pid < procs(), "note_free: pid out of range");
  auto& st = stats_[pid];
  require(st.words_stored >= words, "note_free: freeing more than stored");
  st.words_stored -= words;
}

double SimMachine::clock(ProcId pid) const {
  require(pid < procs(), "SimMachine::clock: pid out of range");
  return stats_[pid].clock;
}

const ProcStats& SimMachine::stats(ProcId pid) const {
  require(pid < procs(), "SimMachine::stats: pid out of range");
  return stats_[pid];
}

double SimMachine::time() const noexcept {
  double t = 0.0;
  for (const auto& st : stats_) t = std::max(t, st.clock);
  return t;
}

RunReport SimMachine::report(std::string algorithm, std::size_t n,
                             double w_useful, bool keep_proc_stats) const {
  RunReport r;
  r.algorithm = std::move(algorithm);
  r.n = n;
  r.p = procs();
  r.params = params_;
  r.t_parallel = time();
  r.w_useful = w_useful;
  for (const auto& st : stats_) {
    r.max_compute_time = std::max(r.max_compute_time, st.compute_time);
    r.max_comm_time = std::max(r.max_comm_time, st.comm_time);
    r.max_idle_time = std::max(r.max_idle_time, st.idle_time);
    r.total_flops += st.flops;
    r.total_messages += st.messages_sent;
    r.total_words += st.words_sent;
    r.max_peak_words = std::max(r.max_peak_words, st.peak_words_stored);
  }
  r.faults = fault_stats_;
  if (keep_proc_stats) r.procs = stats_;
  return r;
}

void SimMachine::reset() {
  for (auto& st : stats_) st = ProcStats{};
  for (auto& box : inbox_) box.clear();
  trace_events_.clear();
  fault_stats_ = FaultStats{};
  exchange_round_ = 0;
}

}  // namespace hpmm
