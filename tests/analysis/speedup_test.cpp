#include "analysis/speedup.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

std::vector<double> pow2_procs(double lo, double hi) {
  std::vector<double> out;
  for (double p = lo; p <= hi; p *= 2.0) out.push_back(p);
  return out;
}

TEST(Speedup, FixedSizeCurveRisesThenSaturates) {
  const CannonModel m(params(150, 3));
  const auto curve = fixed_size_speedup(m, 256, pow2_procs(1, 65536));
  ASSERT_GT(curve.size(), 8u);
  // Rises at the start...
  EXPECT_GT(curve[3].speedup, curve[0].speedup);
  // ...but the last point is below the peak (saturation / rollover).
  double peak = 0.0;
  for (const auto& pt : curve) peak = std::max(peak, pt.speedup);
  EXPECT_LT(curve.back().speedup, peak);
  // Efficiency decreases monotonically with p at fixed n.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].efficiency, curve[i - 1].efficiency + 1e-12);
  }
}

TEST(Speedup, FixedSizeSkipsInapplicable) {
  const CannonModel m(params(150, 3));
  const auto curve = fixed_size_speedup(m, 16, pow2_procs(1, 4096));
  for (const auto& pt : curve) EXPECT_LE(pt.p, 256.0);  // p <= n^2
}

TEST(Speedup, MaxFixedSizeIsAStationaryPoint) {
  const CannonModel m(params(150, 3));
  const auto best = max_fixed_size_speedup(m, 256);
  ASSERT_TRUE(best);
  // No sampled p does better.
  for (double p : pow2_procs(1, 65536)) {
    if (!m.applicable(256, p)) continue;
    EXPECT_GE(best->speedup + 1e-6, m.speedup(256, p)) << p;
  }
  EXPECT_GT(best->speedup, 1.0);
  EXPECT_LE(best->p, 256.0 * 256.0);
}

TEST(Speedup, BiggerProblemsSaturateLater) {
  const CannonModel m(params(150, 3));
  const auto s1 = max_fixed_size_speedup(m, 128);
  const auto s2 = max_fixed_size_speedup(m, 1024);
  ASSERT_TRUE(s1 && s2);
  EXPECT_GT(s2->p, s1->p);
  EXPECT_GT(s2->speedup, s1->speedup);
}

TEST(Speedup, IsoefficientSpeedupIsLinear) {
  // Growing W along the isoefficiency curve keeps S = E p.
  const GkModel m(params(150, 3));
  const double e = 0.6;
  const auto curve = isoefficient_speedup(m, e, pow2_procs(8, 8192));
  ASSERT_GT(curve.size(), 5u);
  for (const auto& pt : curve) {
    EXPECT_NEAR(pt.efficiency, e, 0.02);
    EXPECT_NEAR(pt.speedup, e * pt.p, 0.03 * e * pt.p);
  }
}

TEST(Speedup, DnsCeilingBoundsIsoefficientCurve) {
  const DnsModel m(params(10, 2));  // ceiling 1/25
  const auto none = isoefficient_speedup(m, 0.5, pow2_procs(256, 65536));
  EXPECT_TRUE(none.empty());
  const auto some = isoefficient_speedup(m, 0.03, pow2_procs(256, 65536));
  EXPECT_FALSE(some.empty());
}

TEST(Speedup, GkSaturatesLaterThanCannon) {
  // GK's higher concurrency (p <= n^3) lets it keep gaining where Cannon has
  // exhausted its n^2 processors.
  const MachineParams mp = params(10, 3);
  const auto cannon = max_fixed_size_speedup(CannonModel(mp), 64);
  const auto gk = max_fixed_size_speedup(GkModel(mp), 64);
  ASSERT_TRUE(cannon && gk);
  EXPECT_GT(gk->speedup, cannon->speedup);
}

TEST(Speedup, Validation) {
  const CannonModel m(params(1, 1));
  EXPECT_THROW(fixed_size_speedup(m, 0.5, {}), PreconditionError);
  EXPECT_THROW(max_fixed_size_speedup(m, 0.0), PreconditionError);
}

}  // namespace
}  // namespace hpmm
