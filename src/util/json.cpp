#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace hpmm {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

// Cursor over the text being validated; every parse_* consumes on success.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;  // nesting guard so hostile input cannot blow the stack

  bool done() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return done() ? '\0' : text[pos]; }
  void skip_ws() noexcept {
    while (!done()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
  bool eat(char c) noexcept {
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  bool eat_word(std::string_view w) noexcept {
    if (text.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }
};

constexpr int kMaxDepth = 256;

bool parse_value(Cursor& c) noexcept;

bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }
bool is_hex(char c) noexcept {
  return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

bool parse_string(Cursor& c) noexcept {
  if (!c.eat('"')) return false;
  while (!c.done()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;  // bare control
    if (ch == '\\') {
      if (c.done()) return false;
      const char esc = c.text[c.pos++];
      switch (esc) {
        case '"': case '\\': case '/': case 'b': case 'f':
        case 'n': case 'r': case 't':
          break;
        case 'u':
          for (int i = 0; i < 4; ++i) {
            if (c.done() || !is_hex(c.text[c.pos])) return false;
            ++c.pos;
          }
          break;
        default:
          return false;
      }
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c) noexcept {
  c.eat('-');
  if (c.eat('0')) {
    // leading zero: no further digits allowed before '.'/'e'
  } else {
    if (!is_digit(c.peek())) return false;
    while (is_digit(c.peek())) ++c.pos;
  }
  if (c.eat('.')) {
    if (!is_digit(c.peek())) return false;
    while (is_digit(c.peek())) ++c.pos;
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    ++c.pos;
    if (c.peek() == '+' || c.peek() == '-') ++c.pos;
    if (!is_digit(c.peek())) return false;
    while (is_digit(c.peek())) ++c.pos;
  }
  return true;
}

bool parse_object(Cursor& c) noexcept {
  if (!c.eat('{')) return false;
  c.skip_ws();
  if (c.eat('}')) return true;
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.eat(':')) return false;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eat(',')) continue;
    return c.eat('}');
  }
}

bool parse_array(Cursor& c) noexcept {
  if (!c.eat('[')) return false;
  c.skip_ws();
  if (c.eat(']')) return true;
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eat(',')) continue;
    return c.eat(']');
  }
}

bool parse_value(Cursor& c) noexcept {
  if (++c.depth > kMaxDepth) return false;
  c.skip_ws();
  bool ok = false;
  switch (c.peek()) {
    case '{': ok = parse_object(c); break;
    case '[': ok = parse_array(c); break;
    case '"': ok = parse_string(c); break;
    case 't': ok = c.eat_word("true"); break;
    case 'f': ok = c.eat_word("false"); break;
    case 'n': ok = c.eat_word("null"); break;
    default: ok = parse_number(c); break;
  }
  --c.depth;
  return ok;
}

}  // namespace

bool json_valid(std::string_view text) noexcept {
  Cursor c{text};
  if (!parse_value(c)) return false;
  c.skip_ws();
  return c.done();
}

}  // namespace hpmm
