#pragma once

#include <string>
#include <string_view>

namespace hpmm {

/// Escapes `s` for inclusion inside a double-quoted JSON string: quote,
/// backslash and every control character below 0x20 become their JSON escape
/// (short forms \" \\ \b \f \n \r \t where they exist, \u00XX otherwise).
/// Bytes >= 0x20 pass through untouched, so UTF-8 payloads survive.
std::string json_escape(std::string_view s);

/// Convenience: json_escape wrapped in double quotes.
std::string json_quote(std::string_view s);

/// Shortest round-trip decimal form of a double as a JSON number token;
/// non-finite values (which JSON cannot express) become "null".
std::string json_number(double v);

/// Minimal RFC 8259 validity check (recursive descent over one complete
/// value plus trailing whitespace). Used by tests to schema-check the
/// chrome-trace / report exports without a JSON parser dependency; it
/// validates structure, string escapes and number syntax, not semantics.
bool json_valid(std::string_view text) noexcept;

}  // namespace hpmm
