#include "core/runner.hpp"

#include "core/validate.hpp"
#include "matrix/generate.hpp"
#include "util/error.hpp"

namespace hpmm {

std::vector<EfficiencyPoint> efficiency_sweep(
    const std::string& algorithm, std::size_t p, const MachineParams& params,
    const std::vector<std::size_t>& orders, std::size_t sim_n_limit,
    const AlgorithmRegistry& registry) {
  const auto model = registry.model(algorithm, params);
  const ParallelMatmul& impl = registry.implementation(algorithm);
  std::vector<EfficiencyPoint> out;
  out.reserve(orders.size());
  for (std::size_t n : orders) {
    EfficiencyPoint pt;
    pt.n = n;
    pt.p = p;
    const auto nd = static_cast<double>(n);
    const auto pd = static_cast<double>(p);
    if (!model->applicable(nd, pd)) continue;
    pt.model_efficiency = model->efficiency(nd, pd);
    pt.model_t_parallel = model->t_parallel(nd, pd);
    if (n <= sim_n_limit && impl.applicable(n, p)) {
      Rng rng(0x5EED0000ULL + n);
      const Matrix a = random_matrix(n, n, rng);
      const Matrix b = random_matrix(n, n, rng);
      MatmulResult run = impl.run(a, b, p, params);
      pt.sim_t_parallel = run.report.t_parallel;
      pt.sim_efficiency = run.report.efficiency();
    }
    out.push_back(pt);
  }
  return out;
}

Table efficiency_table(const std::vector<EfficiencyPoint>& points,
                       const std::string& label) {
  Table t({"n", "p", "E(model) " + label, "E(sim)", "T_p(model)", "T_p(sim)"});
  for (const auto& pt : points) {
    t.begin_row()
        .add_int(static_cast<long long>(pt.n))
        .add_int(static_cast<long long>(pt.p))
        .add_num(pt.model_efficiency);
    if (pt.sim_efficiency) {
      t.add_num(*pt.sim_efficiency);
    } else {
      t.add("-");
    }
    t.add_num(pt.model_t_parallel);
    if (pt.sim_t_parallel) {
      t.add_num(*pt.sim_t_parallel);
    } else {
      t.add("-");
    }
  }
  return t;
}

std::optional<std::size_t> crossover_order(
    const std::vector<EfficiencyPoint>& a, const std::vector<EfficiencyPoint>& b,
    bool use_simulated) {
  const auto eff = [use_simulated](const EfficiencyPoint& pt) {
    if (use_simulated && pt.sim_efficiency) return *pt.sim_efficiency;
    return pt.model_efficiency;
  };
  // Walk matching orders; report the first order at which the sign of
  // (E_a - E_b) differs from the initial sign.
  std::optional<bool> a_ahead_initially;
  for (std::size_t i = 0, j = 0; i < a.size() && j < b.size();) {
    if (a[i].n < b[j].n) {
      ++i;
      continue;
    }
    if (b[j].n < a[i].n) {
      ++j;
      continue;
    }
    const bool a_ahead = eff(a[i]) >= eff(b[j]);
    if (!a_ahead_initially) {
      a_ahead_initially = a_ahead;
    } else if (a_ahead != *a_ahead_initially) {
      return a[i].n;
    }
    ++i;
    ++j;
  }
  return std::nullopt;
}

}  // namespace hpmm
