#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  require(!bounds_.empty(), "Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    require(bounds_[i] > bounds_[i - 1],
            "Histogram: bucket bounds must be strictly ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  // Seed from the first sample so all-negative distributions report their
  // true maximum (a 0.0-initialised running max would win otherwise).
  max_ = count_ == 1 ? v : std::max(max_, v);
}

double Histogram::bucket_bound(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_bound: index out of range");
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_count: index out of range");
  return counts_[i];
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0, 1]");
  if (count_ == 0) return 0.0;
  // Rank of the target sample, 1-based: ceil(q * count), floored at 1 so
  // q = 0 resolves to the smallest recorded sample's bucket.
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto below = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: no finite upper bound. Interpolate between the top
      // finite bound and the exactly-tracked max, so a rank landing here
      // yields an estimate in (bounds.back(), max] instead of collapsing
      // every overflow quantile to the single largest sample.
      if (bounds_.empty()) return max_;
      const double lo = bounds_.back();
      if (max_ <= lo) return max_;  // defensive: max never entered overflow
      const double within =
          (target - below) / static_cast<double>(counts_[i]);  // (0, 1]
      return lo + (max_ - lo) * within;
    }
    const double hi = bounds_[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
    const double within =
        (target - below) / static_cast<double>(counts_[i]);  // (0, 1]
    return std::min(max_, lo + (hi - lo) * within);
  }
  return max_;  // unreachable: cumulative reaches count_
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

std::vector<double> Histogram::pow2_bounds(unsigned n) {
  require(n >= 1, "Histogram::pow2_bounds: need at least one bucket");
  require(n <= 63, "Histogram::pow2_bounds: too many buckets");
  std::vector<double> bounds(n);
  for (unsigned i = 0; i < n; ++i) {
    bounds[i] = static_cast<double>(std::uint64_t{1} << i);
  }
  return bounds;
}

TimeSeries::TimeSeries(double window_width, std::vector<double> hist_bounds)
    : width_(window_width), hist_bounds_(std::move(hist_bounds)) {
  require(width_ > 0.0, "TimeSeries: window_width must be positive");
  if (!hist_bounds_.empty()) {
    (void)Histogram(hist_bounds_);  // validates the bounds eagerly
  }
}

void TimeSeries::observe(double time, double value) {
  require(width_ > 0.0, "TimeSeries::observe: series has no window width");
  const auto index = static_cast<std::int64_t>(std::floor(time / width_));
  auto it = windows_.find(index);
  if (it == windows_.end()) {
    Window w;
    w.index = index;
    if (!hist_bounds_.empty()) w.hist = Histogram(hist_bounds_);
    it = windows_.emplace(index, std::move(w)).first;
  }
  Window& w = it->second;
  w.max = w.count == 0 ? value : std::max(w.max, value);
  ++w.count;
  w.sum += value;
  if (!hist_bounds_.empty()) w.hist.observe(value);
}

const TimeSeries::Window* TimeSeries::find(std::int64_t index) const {
  const auto it = windows_.find(index);
  return it == windows_.end() ? nullptr : &it->second;
}

std::uint64_t TimeSeries::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [index, w] : windows_) total += w.count;
  return total;
}

double TimeSeries::total_sum() const noexcept {
  double total = 0.0;
  for (const auto& [index, w] : windows_) total += w.sum;
  return total;
}

void TimeSeries::write_json(std::ostream& os) const {
  os << "{\"window_width\":" << json_number(width_) << ",\"windows\":[";
  bool first = true;
  for (const auto& [index, w] : windows_) {
    if (!first) os << ',';
    first = false;
    os << "{\"index\":" << index
       << ",\"start\":" << json_number(static_cast<double>(index) * width_)
       << ",\"count\":" << w.count << ",\"sum\":" << json_number(w.sum)
       << ",\"max\":" << json_number(w.max);
    if (!hist_bounds_.empty()) {
      os << ",\"p50\":" << json_number(w.hist.quantile(0.50))
         << ",\"p95\":" << json_number(w.hist.quantile(0.95))
         << ",\"p99\":" << json_number(w.hist.quantile(0.99));
    }
    os << '}';
  }
  os << "]}";
}

void TrafficMatrix::add(std::size_t src, std::size_t dst,
                        std::uint64_t words) {
  require(src < procs_ && dst < procs_,
          "TrafficMatrix::add: endpoint out of range");
  if (words == 0) return;
  cells_[(static_cast<std::uint64_t>(src) << 32) | dst] += words;
  total_ += words;
}

std::uint64_t TrafficMatrix::words(std::size_t src, std::size_t dst) const {
  require(src < procs_ && dst < procs_,
          "TrafficMatrix::words: endpoint out of range");
  const auto it = cells_.find((static_cast<std::uint64_t>(src) << 32) | dst);
  return it == cells_.end() ? 0 : it->second;
}

TrafficMatrix::Link TrafficMatrix::busiest() const {
  Link best;
  for (const auto& [key, words] : cells_) {
    const std::size_t src = static_cast<std::size_t>(key >> 32);
    const std::size_t dst = static_cast<std::size_t>(key & 0xffffffffu);
    if (words > best.words ||
        (words == best.words && best.words > 0 &&
         std::pair(src, dst) < std::pair(best.src, best.dst))) {
      best = Link{src, dst, words};
    }
  }
  return best;
}

std::vector<std::uint64_t> TrafficMatrix::dense() const {
  std::vector<std::uint64_t> out(procs_ * procs_, 0);
  for (const auto& [key, words] : cells_) {
    const std::size_t src = static_cast<std::size_t>(key >> 32);
    const std::size_t dst = static_cast<std::size_t>(key & 0xffffffffu);
    out[src * procs_ + dst] = words;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

TimeSeries& MetricsRegistry::series(const std::string& name,
                                    double window_width,
                                    std::vector<double> hist_bounds) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_
      .emplace(name, TimeSeries(window_width, std::move(hist_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

namespace {
template <class Map>
std::vector<std::string> keys_of(const Map& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [name, value] : m) out.push_back(name);
  return out;  // std::map iterates in sorted order already
}
}  // namespace

std::vector<std::string> MetricsRegistry::counter_names() const {
  return keys_of(counters_);
}
std::vector<std::string> MetricsRegistry::gauge_names() const {
  return keys_of(gauges_);
}
std::vector<std::string> MetricsRegistry::histogram_names() const {
  return keys_of(histograms_);
}
std::vector<std::string> MetricsRegistry::series_names() const {
  return keys_of(series_);
}

void MetricsRegistry::reset() noexcept {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, s] : series_) s.reset();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_number(g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ":{\"count\":" << h.count()
       << ",\"sum\":" << json_number(h.sum())
       << ",\"mean\":" << json_number(h.mean())
       << ",\"max\":" << json_number(h.max())
       << ",\"p50\":" << json_number(h.quantile(0.50))
       << ",\"p95\":" << json_number(h.quantile(0.95))
       << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":";
      if (i + 1 == h.buckets()) {
        os << "\"inf\"";
      } else {
        os << json_number(h.bucket_bound(i));
      }
      os << ",\"count\":" << h.bucket_count(i) << '}';
    }
    os << "]}";
  }
  os << '}';
  // Only emit the section when something registered a series: exports that
  // predate TimeSeries stay byte-identical.
  if (!series_.empty()) {
    os << ",\"series\":{";
    first = true;
    for (const auto& [name, s] : series_) {
      if (!first) os << ',';
      first = false;
      os << json_quote(name) << ':';
      s.write_json(os);
    }
    os << '}';
  }
  os << '}';
}

}  // namespace hpmm
