#!/usr/bin/env python3
"""Compare a bench JSON against its checked-in baseline (perf trajectory gate).

Four kinds of input:

  serve   BENCH_serve.json written by bench/serve_load: points are keyed by
          (scenario, threads) and the gated metric is req_per_sec. The
          current run must also report deterministic=true on every point —
          a byte-level divergence across host threads fails the gate even
          if throughput held.
  sim     BENCH_sim.json written by bench/sim_extreme (google-benchmark
          JSON): points are keyed by benchmark name and the gated metric is
          the events_per_sec counter.
  causal  BENCH_causal.json written by bench/causal_overhead (google-benchmark
          JSON): gated like sim on events_per_sec, plus a relative check
          inside the current run — at every machine size, full causal
          capture (sample_permil=1000) must not slow message throughput
          below 1/--max-overhead of the recorder-off baseline
          (sample_permil=-1). That bound is machine-independent, so it
          holds even where the absolute baselines do not.
  bounds  BENCH_bounds.json written by bench/bounds_sweep: points are keyed
          by (algorithm, n, p) and the gated metric is the measured/bound
          distance-from-optimal ratio. The direction is INVERTED — smaller
          is better, so a point regresses when the ratio grows past
          baseline * (1 + tolerance) — and any ratio below 1 fails
          unconditionally: an algorithm cannot beat a communication lower
          bound, so that is an accounting bug, not a perf improvement.

Only keys present in BOTH files are compared (the ctest smoke runs a
filtered subset of the CI sweep), and the intersection must be non-empty.
For serve/sim a point regresses when current < baseline * (1 - tolerance);
improvements never fail. Baselines are machine-relative: after an intentional perf
change, or on hardware unlike the one that recorded them, regenerate with
--update (copies current over the baseline).

  python3 bench/compare_bench.py --kind=serve \
      --baseline=bench/baselines/BENCH_serve.json --current=BENCH_serve.json

Exit codes: 0 ok, 1 regression (or lost determinism), 2 bad input.
"""

import argparse
import json
import shutil
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"compare_bench: cannot read {path}: {e}")


def serve_points(doc, path):
    sweeps = doc.get("sweeps")
    if not isinstance(sweeps, list) or not sweeps:
        sys.exit(f"compare_bench: {path} has no 'sweeps' array")
    points = {}
    for pt in sweeps:
        key = (str(pt["scenario"]), int(pt["threads"]))
        points[key] = pt
    return points


def sim_points(doc, path):
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        sys.exit(f"compare_bench: {path} has no 'benchmarks' array")
    points = {}
    for b in benches:
        if "events_per_sec" in b:
            points[str(b["name"])] = b
    if not points:
        sys.exit(f"compare_bench: {path} has no events_per_sec counters")
    return points


def bounds_points(doc, path):
    if not isinstance(doc, list) or not doc:
        sys.exit(f"compare_bench: {path} is not a non-empty row array")
    points = {}
    for row in doc:
        key = (str(row["algorithm"]), int(row["n"]), int(row["p"]))
        points[key] = row
    return points


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--kind", required=True,
                    choices=["serve", "sim", "bounds", "causal"])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="copy current over the baseline instead of comparing")
    ap.add_argument("--max-overhead", type=float, default=3.0,
                    help="causal only: max allowed events_per_sec ratio of "
                         "recorder-off over full capture (default 3.0)")
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("compare_bench: --tolerance must be in [0, 1)")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"compare_bench: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    pick = {"serve": serve_points, "sim": sim_points,
            "bounds": bounds_points, "causal": sim_points}[args.kind]
    metric = {"serve": "req_per_sec", "sim": "events_per_sec",
              "bounds": "ratio", "causal": "events_per_sec"}[args.kind]
    base = pick(load(args.baseline), args.baseline)
    cur = pick(load(args.current), args.current)

    shared = sorted(set(base) & set(cur), key=str)
    if not shared:
        sys.exit("compare_bench: baseline and current share no points")

    floor_frac = 1.0 - args.tolerance
    failures = []
    for key in shared:
        was = float(base[key][metric])
        now = float(cur[key][metric])
        if args.kind == "bounds":
            # Smaller is better, and < 1 is physically impossible.
            ceiling = was * (1.0 + args.tolerance)
            change = (now - was) / was * 100.0 if was > 0.0 else 0.0
            status = "ok"
            if now < 1.0:
                status = "ORACLE VIOLATION (ratio < 1)"
                failures.append(key)
            elif now > ceiling:
                status = "REGRESSION"
                failures.append(key)
            print(f"  {key}: {metric} {was:.4f} -> {now:.4f} "
                  f"({change:+.1f}%, ceiling {ceiling:.4f}) {status}")
            continue
        floor = was * floor_frac
        change = (now - was) / was * 100.0 if was > 0.0 else 0.0
        status = "ok"
        if was > 0.0 and now < floor:
            status = "REGRESSION"
            failures.append(key)
        print(f"  {key}: {metric} {was:.1f} -> {now:.1f} "
              f"({change:+.1f}%, floor {floor:.1f}) {status}")
        if args.kind == "serve" and not cur[key].get("deterministic", False):
            failures.append(key)
            print(f"  {key}: deterministic=false — serve output diverged "
                  "across host threads")

    if args.kind == "causal":
        # Machine-relative overhead bound: at every p present in the current
        # run, full capture may cost at most --max-overhead x in message
        # throughput versus the recorder-off run.
        by_p = {}
        for b in cur.values():
            if "sample_permil" in b and "p" in b:
                by_p.setdefault(float(b["p"]), {})[
                    int(b["sample_permil"])] = float(b["events_per_sec"])
        for p, rates in sorted(by_p.items()):
            if -1 not in rates or 1000 not in rates or rates[1000] <= 0.0:
                continue
            ratio = rates[-1] / rates[1000]
            status = "ok"
            if ratio > args.max_overhead:
                status = "OVERHEAD REGRESSION"
                failures.append(("causal-overhead", p))
            print(f"  p={p:.0f}: full-capture slowdown {ratio:.2f}x "
                  f"(max {args.max_overhead:.2f}x) {status}")

    skipped = len(set(base) | set(cur)) - len(shared)
    if skipped:
        print(f"compare_bench: {skipped} point(s) outside the intersection "
              "were not compared")
    if failures:
        print(f"compare_bench: {len(failures)} point(s) regressed more than "
              f"{args.tolerance * 100:.0f}% (or lost determinism) vs "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"compare_bench: {len(shared)} point(s) within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
