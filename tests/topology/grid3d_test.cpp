#include "topology/grid3d.hpp"

#include <gtest/gtest.h>

#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Grid3D, Geometry) {
  Grid3D g(2);
  EXPECT_EQ(g.side(), 4u);
  EXPECT_EQ(g.size(), 64u);
  EXPECT_EQ(g.q(), 2u);
}

TEST(Grid3D, WithProcsValidation) {
  EXPECT_EQ(Grid3D::with_procs(512).q(), 3u);
  EXPECT_THROW(Grid3D::with_procs(256), PreconditionError);
  EXPECT_THROW(Grid3D::with_procs(100), PreconditionError);
}

TEST(Grid3D, RankMatchesDnsNumbering) {
  // r = i * 2^{2q} + j * 2^q + k (Section 4.5.1).
  Grid3D g(2);
  EXPECT_EQ(g.rank(1, 2, 3), 1u * 16 + 2 * 4 + 3);
  EXPECT_EQ(g.rank(0, 0, 0), 0u);
  EXPECT_EQ(g.rank(3, 3, 3), 63u);
}

TEST(Grid3D, CoordsRankRoundTrip) {
  Grid3D g(3);
  for (ProcId r = 0; r < g.size(); ++r) {
    const auto c = g.coords(r);
    EXPECT_EQ(g.rank(c.i, c.j, c.k), r);
  }
}

TEST(Grid3D, LinesHaveRightMembers) {
  Grid3D g(2);
  const auto li = g.line_i(1, 2);
  ASSERT_EQ(li.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto c = g.coords(li[i]);
    EXPECT_EQ(c.i, i);
    EXPECT_EQ(c.j, 1u);
    EXPECT_EQ(c.k, 2u);
  }
  const auto lj = g.line_j(3, 0);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(g.coords(lj[j]).j, j);
  const auto lk = g.line_k(0, 3);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(g.coords(lk[k]).k, k);
}

TEST(Grid3D, AxisLinesAreHypercubeSubcubes) {
  // Positions pos and pos^bit along any axis line are physical hypercube
  // neighbours — the property the DNS/GK broadcasts rely on.
  Grid3D g(2);
  Hypercube h(6);
  const auto check_line = [&](const std::vector<ProcId>& line) {
    for (std::size_t pos = 0; pos < line.size(); ++pos) {
      for (std::size_t bit = 1; bit < line.size(); bit <<= 1) {
        EXPECT_EQ(h.hops(line[pos], line[pos ^ bit]), 1u);
      }
    }
  };
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      check_line(g.line_i(a, b));
      check_line(g.line_j(a, b));
      check_line(g.line_k(a, b));
    }
  }
}

TEST(Grid3D, CoordsOutOfRangeThrows) {
  Grid3D g(1);
  EXPECT_THROW(g.coords(8), PreconditionError);
  EXPECT_THROW(g.rank(2, 0, 0), PreconditionError);
}

}  // namespace
}  // namespace hpmm
