#pragma once

#include <memory>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "matrix/matrix.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"

namespace hpmm {

/// Result of one simulated parallel multiplication: the numerical product
/// (assembled from the distributed blocks, so it can be checked against the
/// serial algorithm) plus the timing report.
struct MatmulResult {
  Matrix c;
  RunReport report;
  /// Per-processor event timeline; populated when MachineParams::trace is
  /// set on the run's machine parameters, empty otherwise.
  Trace trace;
};

/// Common interface of the parallel matrix-multiplication formulations of
/// Sections 4.1-4.6. Implementations construct their own simulated machine
/// (topology per the formulation), distribute the operands, run the
/// algorithm with per-message/per-flop cost accounting, and assemble the
/// product.
///
/// Conventions shared by all implementations:
///  * The operands are taken as already distributed in the formulation's
///    initial layout; scattering/gathering the global matrices is *not*
///    charged, exactly as in the paper's T_p expressions.
///  * One multiply-add = 1 time unit (Section 2); communication follows
///    MachineParams.
class ParallelMatmul {
 public:
  virtual ~ParallelMatmul() = default;

  /// Short identifier: "cannon", "gk", ...
  virtual std::string name() const = 0;

  /// Throws PreconditionError with an explanatory message when the
  /// formulation cannot multiply n x n matrices on p processors (range of
  /// applicability from Table 1 plus block-divisibility requirements).
  virtual void check_applicable(std::size_t n, std::size_t p) const = 0;

  /// Non-throwing wrapper around check_applicable.
  bool applicable(std::size_t n, std::size_t p) const;

  /// Multiply a * b (both n x n) on p simulated processors.
  virtual MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                           const MachineParams& params) const = 0;

 protected:
  /// Shared argument validation: square, equal shapes, non-empty.
  static std::size_t validated_order(const Matrix& a, const Matrix& b);
};

/// All simulatable formulations (Simple, Cannon, Fox, Berntsen, DNS, GK and
/// GK variants), in the order they appear in the paper.
std::vector<std::unique_ptr<ParallelMatmul>> all_algorithms();

}  // namespace hpmm
