#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, IsPow8) {
  EXPECT_FALSE(is_pow8(0));
  EXPECT_TRUE(is_pow8(1));
  EXPECT_FALSE(is_pow8(2));
  EXPECT_FALSE(is_pow8(4));
  EXPECT_TRUE(is_pow8(8));
  EXPECT_TRUE(is_pow8(64));
  EXPECT_TRUE(is_pow8(512));
  EXPECT_FALSE(is_pow8(256));
  EXPECT_TRUE(is_pow8(1ULL << 30));
}

TEST(Bits, IsPerfectSquare) {
  EXPECT_TRUE(is_perfect_square(0));
  EXPECT_TRUE(is_perfect_square(1));
  EXPECT_TRUE(is_perfect_square(4));
  EXPECT_TRUE(is_perfect_square(484));
  EXPECT_FALSE(is_perfect_square(2));
  EXPECT_FALSE(is_perfect_square(483));
}

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1025), 10u);
  EXPECT_THROW(ilog2(0), PreconditionError);
}

TEST(Bits, ExactLog2) {
  EXPECT_EQ(exact_log2(1), 0u);
  EXPECT_EQ(exact_log2(512), 9u);
  EXPECT_THROW(exact_log2(3), PreconditionError);
}

TEST(Bits, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(484), 22u);
  EXPECT_EQ(isqrt(1ULL << 50), 1ULL << 25);
}

TEST(Bits, IsqrtExhaustiveSmall) {
  for (std::uint64_t x = 0; x < 5000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(Bits, Icbrt) {
  EXPECT_EQ(icbrt(0), 0u);
  EXPECT_EQ(icbrt(7), 1u);
  EXPECT_EQ(icbrt(8), 2u);
  EXPECT_EQ(icbrt(511), 7u);
  EXPECT_EQ(icbrt(512), 8u);
  EXPECT_EQ(icbrt(1ULL << 30), 1ULL << 10);
}

TEST(Bits, ExactSqrtCbrt) {
  EXPECT_EQ(exact_sqrt(484), 22u);
  EXPECT_THROW(exact_sqrt(485), PreconditionError);
  EXPECT_EQ(exact_cbrt(512), 8u);
  EXPECT_THROW(exact_cbrt(500), PreconditionError);
}

TEST(Bits, GrayCodeAdjacency) {
  // Consecutive Gray codes differ in exactly one bit.
  for (std::uint64_t i = 0; i + 1 < 1024; ++i) {
    EXPECT_EQ(popcount64(gray_code(i) ^ gray_code(i + 1)), 1u);
  }
}

TEST(Bits, GrayCodeInverse) {
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(inverse_gray_code(gray_code(i)), i);
  }
  EXPECT_EQ(inverse_gray_code(gray_code(0xDEADBEEFCAFEULL)), 0xDEADBEEFCAFEULL);
}

TEST(Bits, GrayCodeIsPermutation) {
  std::vector<bool> seen(256, false);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto g = gray_code(i);
    ASSERT_LT(g, 256u);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

TEST(Bits, Pow2Range) {
  const auto v = pow2_range(4, 64);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.front(), 4u);
  EXPECT_EQ(v.back(), 64u);
}

TEST(Bits, Pow8Range) {
  const auto v = pow8_range(1, 512);
  ASSERT_EQ(v.size(), 4u);  // 1, 8, 64, 512
  EXPECT_EQ(v[1], 8u);
  EXPECT_EQ(v[3], 512u);
}

}  // namespace
}  // namespace hpmm
