// google-benchmark microbenchmarks: serial kernels (the t_c = 1 substrate of
// the cost model), the simulator's per-message bookkeeping overhead, and the
// emergent collectives.

#include <benchmark/benchmark.h>

#include <memory>

#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "matrix/strassen.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hpmm;

void BM_SerialKernel(benchmark::State& state, Kernel kernel) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    multiply_add(a, b, c, kernel);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(matmul_flops(n, n, n)));
}

void BM_NaiveIjk(benchmark::State& s) { BM_SerialKernel(s, Kernel::kNaiveIjk); }
void BM_CacheIkj(benchmark::State& s) { BM_SerialKernel(s, Kernel::kCacheIkj); }
void BM_Blocked(benchmark::State& s) { BM_SerialKernel(s, Kernel::kBlocked); }
void BM_TransposedB(benchmark::State& s) {
  BM_SerialKernel(s, Kernel::kTransposedB);
}
void BM_Packed(benchmark::State& s) { BM_SerialKernel(s, Kernel::kPacked); }

// n=512 on the two ends of the zoo gives the headline packed-vs-naive ratio.
BENCHMARK(BM_NaiveIjk)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_CacheIkj)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_Blocked)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_TransposedB)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_Packed)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Thread-scaling sweep: same packed kernel, row panels split over a pool.
// Arg is the thread count; self-speedup is GFLOP/s(T) / GFLOP/s(1).
void BM_PackedThreads(benchmark::State& state) {
  const std::size_t n = 512;
  const auto threads = static_cast<unsigned>(state.range(0));
  ThreadPool pool(threads);
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    multiply_add(a, b, c, Kernel::kPacked, &pool);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(matmul_flops(n, n, n)));
}
// Real time, not main-thread CPU time: the workers' cycles must count.
BENCHMARK(BM_PackedThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Strassen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    Matrix c = multiply_strassen(a, b, 64);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(strassen_multiplications(n, 64)));
}
BENCHMARK(BM_Strassen)->Arg(128)->Arg(256);

void BM_ExchangeRound(benchmark::State& state) {
  const auto dim = static_cast<unsigned>(state.range(0));
  MachineParams mp;
  mp.t_s = 10;
  mp.t_w = 1;
  SimMachine machine(std::make_shared<Hypercube>(dim), mp);
  const std::size_t p = machine.procs();
  for (auto _ : state) {
    std::vector<Message> msgs;
    msgs.reserve(p);
    for (ProcId pid = 0; pid < p; ++pid) {
      msgs.emplace_back(pid, static_cast<ProcId>((pid + 1) % p), 1, Matrix(4, 4));
    }
    machine.exchange(std::move(msgs));
    for (ProcId pid = 0; pid < p; ++pid) benchmark::DoNotOptimize(machine.receive(pid, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_ExchangeRound)->Arg(4)->Arg(6)->Arg(9);

void BM_BroadcastBinomial(benchmark::State& state) {
  const auto dim = static_cast<unsigned>(state.range(0));
  MachineParams mp;
  mp.t_s = 10;
  mp.t_w = 1;
  SimMachine machine(std::make_shared<Hypercube>(dim), mp);
  std::vector<ProcId> group(machine.procs());
  for (ProcId pid = 0; pid < machine.procs(); ++pid) group[pid] = pid;
  for (auto _ : state) {
    auto copies = broadcast_binomial(machine, group, 0, 1, Matrix(8, 8));
    benchmark::DoNotOptimize(copies.data());
    machine.reset();
  }
}
BENCHMARK(BM_BroadcastBinomial)->Arg(3)->Arg(6)->Arg(9);

void BM_ReduceScatter(benchmark::State& state) {
  const auto dim = static_cast<unsigned>(state.range(0));
  MachineParams mp;
  mp.t_s = 10;
  mp.t_w = 1;
  SimMachine machine(std::make_shared<Hypercube>(dim), mp);
  std::vector<ProcId> group(machine.procs());
  for (ProcId pid = 0; pid < machine.procs(); ++pid) group[pid] = pid;
  for (auto _ : state) {
    std::vector<Matrix> contribs(machine.procs(), Matrix(64, 4, 1.0));
    auto slices = reduce_scatter_halving(machine, group, 1, std::move(contribs));
    benchmark::DoNotOptimize(slices.data());
    machine.reset();
  }
}
BENCHMARK(BM_ReduceScatter)->Arg(3)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
