// Figure 4: efficiency as a function of matrix size for Cannon's algorithm
// and the GK algorithm on p = 64 processors with the CM-5 parameters of
// Section 9 (t_c = 1.53us, t_s = 380us, t_w = 1.8us/word, normalised).
//
// Both the analytical series (Eqs. 18 and 3) and a full end-to-end
// simulation over real matrices are printed; on the simulator the crossover
// lands at the predicted n ~ 83 (the paper's hardware measured it at 96).

#include <iostream>
#include <vector>

#include "analysis/crossover.hpp"
#include "core/runner.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main() {
  const MachineParams mp = machines::cm5_measured();
  const std::size_t p = 64;
  std::cout << "=== Figure 4: E vs n, Cannon vs GK, p = " << p << " ("
            << mp.label << ") ===\n\n";

  std::vector<std::size_t> orders;
  for (std::size_t n = 8; n <= 256; n += 8) orders.push_back(n);
  const std::size_t sim_limit = 256;

  const auto gk = efficiency_sweep("gk-fc", p, mp, orders, sim_limit);
  const auto cannon = efficiency_sweep("cannon", p, mp, orders, sim_limit);

  Table t({"n", "E gk (model)", "E gk (sim)", "E cannon (model)",
           "E cannon (sim)", "winner"});
  for (std::size_t i = 0; i < gk.size() && i < cannon.size(); ++i) {
    const auto& g = gk[i];
    const auto& c = cannon[i];
    t.begin_row()
        .add_int(static_cast<long long>(g.n))
        .add_num(g.model_efficiency, 3)
        .add(g.sim_efficiency ? format_number(*g.sim_efficiency, 3) : "-")
        .add_num(c.model_efficiency, 3)
        .add(c.sim_efficiency ? format_number(*c.sim_efficiency, 3) : "-")
        .add(g.model_efficiency >= c.model_efficiency ? "gk" : "cannon");
  }
  t.print_aligned(std::cout);

  const GkCm5Model gk_model(mp);
  const CannonModel cannon_model(mp);
  const auto n_eq = n_equal_overhead(gk_model, cannon_model, double(p), 1.0, 1e5);
  std::cout << "\nPredicted crossover (equal T_o, Eq. 18 vs Eq. 3): n = "
            << (n_eq ? format_number(*n_eq, 3) : "-")
            << "   [paper: predicted 83, measured 96]\n";
  const auto sim_cross = crossover_order(gk, cannon, /*use_simulated=*/true);
  std::cout << "Simulated crossover (first n where Cannon overtakes): n = "
            << (sim_cross ? std::to_string(*sim_cross) : "-") << "\n";
  std::cout << "\nShape check: GK wins for small n (startup-dominated), Cannon\n"
               "for large n (bandwidth-dominated), as in Figure 4.\n";
  return 0;
}
