#pragma once

#include <optional>

#include "analysis/perf_model.hpp"

namespace hpmm {

/// Memory-constrained scalability.
///
/// The paper contrasts memory-efficient formulations (Cannon: 3 n²/p words
/// per processor) with memory-inefficient ones (Simple: O(n²/√p); Berntsen:
/// n²/p^{2/3}; Section 4). Since isoefficiency forces W = n³ to grow with p,
/// a machine with M words of memory per processor caps the achievable n —
/// and therefore caps efficiency. These helpers quantify that cap.

/// The largest matrix order a processor with `memory_words` can support
/// under this formulation's per-processor footprint (monotone in n at fixed
/// p; solved by bisection). Returns nullopt when even n = 1 does not fit.
std::optional<double> max_order_for_memory(const PerfModel& model, double p,
                                           double memory_words);

/// The best efficiency achievable on p processors given `memory_words` per
/// processor: efficiency at the largest memory-feasible, applicable n.
/// Returns nullopt when no applicable n fits.
std::optional<double> max_efficiency_for_memory(const PerfModel& model,
                                                double p, double memory_words);

/// The largest processor count that can still reach `efficiency` with
/// `memory_words` per processor — where the isoefficiency curve crosses the
/// memory ceiling. Returns nullopt if even p = 1... is infeasible, and
/// `limit` when the search cap is reached without hitting the ceiling.
std::optional<double> max_procs_at_efficiency_and_memory(
    const PerfModel& model, double efficiency, double memory_words,
    double limit = 1e12);

}  // namespace hpmm
