#include "analysis/perf_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(PerfModel, CannonEq3AtHandComputedPoint) {
  CannonModel m(params(150, 3));
  // n = 100, p = 100: n^3/p = 10000, comm = 2*150*10 + 2*3*10000/10 = 9000.
  EXPECT_DOUBLE_EQ(m.t_parallel(100, 100), 19000.0);
  EXPECT_DOUBLE_EQ(m.t_overhead(100, 100), 900000.0);
  EXPECT_DOUBLE_EQ(m.comm_time(100, 1), 0.0);
}

TEST(PerfModel, SimpleEq2AtHandComputedPoint) {
  SimpleModel m(params(10, 2));
  // p = 16: comm = 2*10*4 + 2*2*n^2/4 = 80 + n^2.
  EXPECT_DOUBLE_EQ(m.comm_time(8, 16), 80.0 + 64.0);
}

TEST(PerfModel, FoxEq4AtHandComputedPoint) {
  FoxModel m(params(10, 2));
  // comm = 2 t_w n^2/sqrt(p) + t_s p = 4*64/4 + 160.
  EXPECT_DOUBLE_EQ(m.comm_time(8, 16), 64.0 + 160.0);
}

TEST(PerfModel, BerntsenEq5AtHandComputedPoint) {
  BerntsenModel m(params(30, 3));
  // p = 64: 2*30*4 + 10*6/... (1/3)*30*6 = 60, 3*3*n^2/16.
  const double expect = 2.0 * 30 * 4 + 30.0 * 6 / 3.0 + 9.0 * 64.0 * 64.0 / 16.0;
  EXPECT_DOUBLE_EQ(m.comm_time(64, 64), expect);
}

TEST(PerfModel, DnsEq6AtHandComputedPoint) {
  DnsModel m(params(10, 2));
  // n = 8, p = 128 (r = 2): (t_s + t_w)(5*1 + 2*4) = 12*13.
  EXPECT_DOUBLE_EQ(m.comm_time(8, 128), 156.0);
  EXPECT_DOUBLE_EQ(m.t_parallel(8, 128), 4.0 + 156.0);
}

TEST(PerfModel, GkEq7AtHandComputedPoint) {
  GkModel m(params(150, 3));
  // n = 64, p = 64: (5/3)*150*6 + (5/3)*3*(4096/16)*6 = 1500 + 7680.
  EXPECT_DOUBLE_EQ(m.comm_time(64, 64), 1500.0 + 7680.0);
}

TEST(PerfModel, GkCm5Eq18AtHandComputedPoint) {
  GkCm5Model m(params(248.37, 1.176));
  // n = 64, p = 64: (log p + 2) (t_s + t_w * 256).
  const double expect = 8.0 * (248.37 + 1.176 * 256.0);
  EXPECT_DOUBLE_EQ(m.comm_time(64, 64), expect);
}

TEST(PerfModel, EfficiencyIdentity) {
  // E = 1/(1 + T_o/W) must hold for every model.
  const MachineParams mp = params(50, 3);
  for (const auto& m : all_models(mp)) {
    const double n = 256, p = 64;
    if (!m->applicable(n, p)) continue;
    const double e1 = m->efficiency(n, p);
    const double e2 = 1.0 / (1.0 + m->t_overhead(n, p) / (n * n * n));
    EXPECT_NEAR(e1, e2, 1e-12) << m->name();
  }
}

TEST(PerfModel, EfficiencyMonotoneInN) {
  const MachineParams mp = params(150, 3);
  for (const auto& m : all_models(mp)) {
    double prev = 0.0;
    for (double n = 64; n <= 4096; n *= 2) {
      const double p = 64;
      if (!m->applicable(n, p)) continue;
      const double e = m->efficiency(n, p);
      EXPECT_GE(e, prev - 1e-12) << m->name() << " n=" << n;
      prev = e;
    }
  }
}

TEST(PerfModel, EfficiencyDecreasesInP) {
  const MachineParams mp = params(150, 3);
  GkModel gk(mp);
  double prev = 1.0;
  for (double p = 8; p <= 32768; p *= 8) {
    const double e = gk.efficiency(512, p);
    EXPECT_LT(e, prev) << "p=" << p;
    prev = e;
  }
}

TEST(PerfModel, DnsEfficiencyCeiling) {
  DnsModel m(params(10, 2));
  EXPECT_DOUBLE_EQ(m.efficiency_ceiling(), 1.0 / 25.0);
  // At r = 1 (p = n^2, no log term) the ceiling is attained exactly...
  EXPECT_NEAR(m.efficiency(64, 64 * 64), m.efficiency_ceiling(), 1e-12);
  // ...and everywhere inside the range the efficiency stays strictly below.
  for (double p : {4096.0, 32768.0}) {
    const double n = std::sqrt(p) / 2.0;  // r = 4
    EXPECT_LT(m.efficiency(n, p), m.efficiency_ceiling());
  }
}

TEST(PerfModel, ApplicabilityRanges) {
  const MachineParams mp = params(150, 3);
  BerntsenModel b(mp);
  EXPECT_TRUE(b.applicable(100, 1000.0));   // 1000 = n^1.5
  EXPECT_FALSE(b.applicable(100, 1001.0));  // just above
  CannonModel c(mp);
  EXPECT_TRUE(c.applicable(100, 10000.0));
  EXPECT_FALSE(c.applicable(100, 10001.0));
  DnsModel d(mp);
  EXPECT_FALSE(d.applicable(100, 9999.0));  // below n^2
  EXPECT_TRUE(d.applicable(100, 10000.0));
  EXPECT_TRUE(d.applicable(100, 1e6));      // n^3
  EXPECT_FALSE(d.applicable(100, 1.1e6));
  GkModel g(mp);
  EXPECT_TRUE(g.applicable(100, 1e6));
  EXPECT_FALSE(g.applicable(100, 1.1e6));
}

TEST(PerfModel, MemoryClaims) {
  const MachineParams mp = params(150, 3);
  // Simple is memory-inefficient: O(n^2/sqrt(p)) vs Cannon's O(n^2/p).
  SimpleModel s(mp);
  CannonModel c(mp);
  EXPECT_GT(s.memory_per_proc(1024, 1024), 10.0 * c.memory_per_proc(1024, 1024));
  // Berntsen stores 2 n^2/p + n^2/p^{2/3}.
  BerntsenModel b(mp);
  EXPECT_DOUBLE_EQ(b.memory_per_proc(64, 64),
                   2.0 * 64.0 * 64.0 / 64.0 + 64.0 * 64.0 / 16.0);
  DnsModel d(mp);
  EXPECT_DOUBLE_EQ(d.memory_per_proc(64, 64 * 64 * 8), 3.0);
}

TEST(PerfModel, GranularityBounds) {
  const MachineParams mp = params(150, 3);
  SimpleAllPortModel sap(mp);
  EXPECT_DOUBLE_EQ(sap.min_n_for_channels(64), 0.5 * 8.0 * 6.0);
  GkJohnssonHoModel jh(mp);
  EXPECT_NEAR(jh.min_n_for_packets(64), std::sqrt(50.0 * 6.0) * 4.0, 1e-9);
}

TEST(PerfModel, Table1ModelsOrderAndCount) {
  const auto models = table1_models(params(150, 3));
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0]->name(), "berntsen");
  EXPECT_EQ(models[1]->name(), "cannon");
  EXPECT_EQ(models[2]->name(), "gk");
  EXPECT_EQ(models[3]->name(), "dns");
}

TEST(PerfModel, AllModelsCount) {
  EXPECT_EQ(all_models(params(1, 1)).size(), 12u);
}

TEST(PerfModel, Cannon25DReducesToCannonAtC1) {
  const MachineParams mp = params(150, 3);
  const CannonModel cannon(mp);
  const Cannon25DModel c25(mp, 1);
  for (double p : {4.0, 64.0, 1024.0}) {
    for (double n : {32.0, 256.0}) {
      EXPECT_NEAR(c25.comm_time(n, p), cannon.comm_time(n, p),
                  1e-9 * cannon.comm_time(n, p))
          << "n=" << n << " p=" << p;
      EXPECT_DOUBLE_EQ(c25.memory_per_proc(n, p), cannon.memory_per_proc(n, p));
    }
  }
}

TEST(PerfModel, Cannon25DClosedForm) {
  // T_o/p = (3 log2 c + 2 sqrt(p/c^3)) (t_s + t_w c n^2/p).
  const MachineParams mp = params(150, 3);
  const Cannon25DModel m(mp, 4);
  const double n = 256, p = 1024;
  const double rounds = 3.0 * 2.0 + 2.0 * std::sqrt(1024.0 / 64.0);
  const double words = 4.0 * n * n / p;
  EXPECT_NEAR(m.comm_time(n, p), rounds * (150.0 + 3.0 * words), 1e-9);
  EXPECT_DOUBLE_EQ(m.memory_per_proc(n, p), 3.0 * 4.0 * n * n / p);
  EXPECT_DOUBLE_EQ(m.min_procs(n), 64.0);
  EXPECT_DOUBLE_EQ(m.max_procs(n), 4.0 * n * n);
}

TEST(PerfModel, Cannon25DBandwidthTermBeatsCannonAtScale) {
  // The per-layer bandwidth term is 2 t_w n^2/sqrt(pc) vs Cannon's
  // 2 t_w n^2/sqrt(p); once p is large enough for the bandwidth side to
  // dominate the 3 log2 c extra startup rounds, replication wins outright.
  const MachineParams mp = params(150, 3);
  const CannonModel cannon(mp);
  const Cannon25DModel c2(mp, 2);
  const double n = 4096;
  EXPECT_LT(c2.comm_time(n, 65536), cannon.comm_time(n, 65536));
  // At tiny p the extra broadcast/reduce rounds dominate and c = 1 is best.
  EXPECT_GT(c2.comm_time(n, 16), cannon.comm_time(n, 16));
}

TEST(PerfModel, BerntsenHasSmallestOverheadWhereApplicable) {
  // Section 10: Berntsen's is the cheapest in communication where it
  // applies (large n relative to p).
  const MachineParams mp = params(150, 3);
  BerntsenModel b(mp);
  CannonModel c(mp);
  GkModel g(mp);
  const double n = 4096, p = 512;
  EXPECT_LT(b.t_overhead(n, p), c.t_overhead(n, p));
  EXPECT_LT(b.t_overhead(n, p), g.t_overhead(n, p));
}

}  // namespace
}  // namespace hpmm
