#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {
namespace {

TEST(Table, BuildsRows) {
  Table t({"a", "b"});
  t.begin_row().add("1").add("2");
  t.begin_row().add_int(3).add_num(4.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.at(0, 0), "1");
  EXPECT_EQ(t.at(1, 0), "3");
  EXPECT_EQ(t.at(1, 1), "4.5");
}

TEST(Table, RejectsOverflowingRow) {
  Table t({"only"});
  t.begin_row().add("x");
  EXPECT_THROW(t.add("y"), InternalError);
}

TEST(Table, RejectsAddWithoutRow) {
  Table t({"only"});
  EXPECT_THROW(t.add("x"), InternalError);
}

TEST(Table, AtOutOfRangeThrows) {
  Table t({"a"});
  t.begin_row().add("1");
  EXPECT_THROW(t.at(1, 0), PreconditionError);
  EXPECT_THROW(t.at(0, 1), PreconditionError);
}

TEST(Table, AlignedOutputContainsHeaderRule) {
  Table t({"col"});
  t.begin_row().add("value");
  std::ostringstream os;
  t.print_aligned(os);
  EXPECT_NE(os.str().find("col"), std::string::npos);
  EXPECT_NE(os.str().find("-----"), std::string::npos);
  EXPECT_NE(os.str().find("value"), std::string::npos);
}

TEST(Table, MarkdownOutput) {
  Table t({"x", "y"});
  t.begin_row().add("1").add("2");
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("| x | y |"), std::string::npos);
  EXPECT_NE(os.str().find("|---|---|"), std::string::npos);
  EXPECT_NE(os.str().find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.begin_row().add("1").add("2");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, JsonOutput) {
  Table t({"name", "value"});
  t.begin_row().add("alpha \"quoted\"").add("1.5");
  t.begin_row().add("beta").add("-");
  std::ostringstream os;
  t.print_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\": \"alpha \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"value\": 1.5"), std::string::npos);   // numeric unquoted
  EXPECT_NE(out.find("\"value\": \"-\""), std::string::npos);  // non-numeric quoted
  EXPECT_EQ(out.front(), '[');
}

TEST(Table, JsonOutputSurvivesHostileStrings) {
  Table t({"key \"quoted\"", "value"});
  std::string evil = "line\nbreak\ttab \\slash\\ \"quote\"";
  evil.push_back('\x01');
  t.begin_row().add(evil).add("nan");  // strtod-accepted, not JSON: quoted
  std::ostringstream os;
  t.print_json(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_valid(out)) << out;
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\"nan\""), std::string::npos);
}

TEST(FormatNumber, FixedRange) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(1234.0), "1234");
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(-2.25), "-2.25");
}

TEST(FormatNumber, ScientificForExtremes) {
  EXPECT_NE(format_number(2.6e18).find("e+18"), std::string::npos);
  EXPECT_NE(format_number(1e-9).find("e-09"), std::string::npos);
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(1.5, 6), "1.5");
  EXPECT_EQ(format_number(2.0, 6), "2");
}

TEST(FormatSi, Suffixes) {
  EXPECT_EQ(format_si(1500.0), "1.5K");
  EXPECT_EQ(format_si(130e6, 3), "130M");
  EXPECT_NE(format_si(2.6e18).find("E"), std::string::npos);
}

}  // namespace
}  // namespace hpmm
