#include "matrix/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, ElementAccessRoundTrip) {
  Matrix m(2, 3);
  m(1, 2) = 42.0;
  EXPECT_EQ(m(1, 2), 42.0);
  EXPECT_EQ(m.at(1, 2), 42.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), PreconditionError);
  EXPECT_THROW(m.at(0, 2), PreconditionError);
}

TEST(Matrix, RowPtrIsRowMajor) {
  Matrix m(2, 3);
  m(1, 0) = 5.0;
  EXPECT_EQ(m.row_ptr(1)[0], 5.0);
  EXPECT_EQ(m.data()[3], 5.0);
}

TEST(Matrix, PlusEquals) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  a += b;
  EXPECT_EQ(a(0, 0), 3.0);
  EXPECT_EQ(a(1, 1), 3.0);
}

TEST(Matrix, MinusEquals) {
  Matrix a(2, 2, 5.0), b(2, 2, 2.0);
  a -= b;
  EXPECT_EQ(a(1, 0), 3.0);
}

TEST(Matrix, PlusEqualsShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, PreconditionError);
}

TEST(Matrix, SliceExtractsRectangle) {
  Matrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = static_cast<double>(10 * r + c);
  }
  const Matrix s = m.slice(1, 2, 2, 2);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 12.0);
  EXPECT_EQ(s(1, 1), 23.0);
}

TEST(Matrix, SliceOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.slice(1, 1, 2, 1), PreconditionError);
}

TEST(Matrix, PasteRoundTripsWithSlice) {
  Matrix m(4, 4);
  Matrix block(2, 2, 9.0);
  m.paste(block, 2, 1);
  EXPECT_EQ(m.slice(2, 1, 2, 2), block);
  EXPECT_EQ(m(1, 1), 0.0);  // untouched
}

TEST(Matrix, PasteOutOfRangeThrows) {
  Matrix m(2, 2);
  Matrix block(2, 2);
  EXPECT_THROW(m.paste(block, 1, 0), PreconditionError);
}

TEST(Matrix, Transposed) {
  Matrix m(2, 3);
  m(0, 1) = 4.0;
  m(1, 2) = 5.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(1, 0), 4.0);
  EXPECT_EQ(t(2, 1), 5.0);
}

TEST(Matrix, EqualityIsDeep) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0);
  EXPECT_EQ(a, b);
  b(0, 0) = 2.0;
  EXPECT_NE(a, b);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0);
  b(1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_TRUE(approx_equal(a, b, 0.5));
  EXPECT_FALSE(approx_equal(a, b, 0.4));
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  Matrix a(2, 2), b(3, 2);
  EXPECT_THROW(max_abs_diff(a, b), PreconditionError);
}

}  // namespace
}  // namespace hpmm
