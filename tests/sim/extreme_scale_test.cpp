// Extreme-scale engine coverage (DESIGN.md §12): sparse exchange rounds at
// p ~ 10^5-10^6 virtual processors, aggregate metrics capture, traffic-matrix
// gating and seeded trace sampling — plus the invariant that every capture
// mode leaves the simulated clocks bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "algorithms/dns.hpp"
#include "algorithms/gk.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams test_params(double ts = 10.0, double tw = 2.0) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

Matrix payload(std::size_t words) { return Matrix(1, words); }

// ----- sparse rounds at large p ---------------------------------------------

TEST(ExtremeScale, MillionProcessorExchangeTouchesOnlyParticipants) {
  // 2^20 processors; a round between four of them must behave exactly like
  // the same round on a tiny machine (and complete immediately — the engine
  // may not iterate over all p per round).
  const unsigned dim = 20;
  const ProcId p = ProcId{1} << dim;
  SimMachine m(std::make_shared<Hypercube>(dim), test_params());
  ASSERT_EQ(m.procs(), std::size_t{1} << dim);

  const ProcId hi = p - 1, lo = 0;
  m.compute(hi, 100.0);
  std::vector<Message> msgs;
  msgs.emplace_back(hi, hi ^ 1u, 7, payload(5));
  msgs.emplace_back(lo, lo + 1, 8, payload(3));
  m.exchange(std::move(msgs));

  // cost = t_s + t_w * words, started at each sender's clock.
  EXPECT_DOUBLE_EQ(m.clock(hi), 100.0 + 10.0 + 2.0 * 5);
  EXPECT_DOUBLE_EQ(m.clock(hi ^ 1u), 100.0 + 10.0 + 2.0 * 5);
  EXPECT_DOUBLE_EQ(m.clock(lo), 10.0 + 2.0 * 3);
  EXPECT_DOUBLE_EQ(m.clock(lo + 1), 10.0 + 2.0 * 3);
  EXPECT_DOUBLE_EQ(m.clock(p / 2), 0.0);  // bystanders untouched

  EXPECT_EQ(m.pending_messages(), 2u);
  EXPECT_TRUE(m.has_message(hi ^ 1u, 7));
  const Message got = m.receive(hi ^ 1u, 7);
  EXPECT_EQ(got.src, hi);
  EXPECT_EQ(got.words(), 5u);
  EXPECT_EQ(m.receive(lo + 1, 8).words(), 3u);
  EXPECT_EQ(m.pending_messages(), 0u);
  m.assert_clean_run();

  // The per-processor footprint must stay flat (arena inbox + scratch, no
  // per-pid deques): a few hundred bytes, not kilobytes.
  const std::uint64_t bytes = m.approx_footprint_bytes();
  EXPECT_GT(bytes, std::uint64_t{0});
  EXPECT_LT(bytes / m.procs(), std::uint64_t{512})
      << "footprint " << bytes << " bytes for p = " << m.procs();
}

TEST(ExtremeScale, LargePidStatsAndCountersUse64BitMath) {
  // Indices and counters near the top of the pid range must not wrap.
  const unsigned dim = 20;
  const ProcId p = ProcId{1} << dim;
  SimMachine m(std::make_shared<Hypercube>(dim), test_params());
  const ProcId top = p - 1;
  m.note_alloc(top, std::uint64_t{1} << 33);  // > 2^32 words on one pid
  EXPECT_EQ(m.stats(top).peak_words_stored, std::uint64_t{1} << 33);
  m.note_free(top, std::uint64_t{1} << 33);
  EXPECT_EQ(m.stats(top).words_stored, 0u);
  std::vector<Message> msgs;
  msgs.emplace_back(top, top ^ (p >> 1), 1, payload(2));
  m.exchange(std::move(msgs));
  EXPECT_EQ(m.stats(top).messages_sent, 1u);
  // Hypercube distance between top and its far neighbour is one bit.
  EXPECT_EQ(m.topology().hops(top, top ^ (p >> 1)), 1u);
  (void)m.receive(top ^ (p >> 1), 1);
  m.assert_clean_run();
}

// ----- capture modes preserve the simulated clocks --------------------------

TEST(ExtremeScale, AggregateCaptureIsBitIdenticalOnClocksAndTotals) {
  Rng rng(99);
  const std::size_t n = 16, p = 64;
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);

  MachineParams full = test_params();
  MachineParams agg = test_params();
  agg.metrics_mode = MetricsMode::kAggregate;

  const GkAlgorithm gk;
  const MatmulResult rf = gk.run(a, b, p, full);
  const MatmulResult ra = gk.run(a, b, p, agg);

  // Clocks, totals and numerics: exactly equal, not approximately.
  EXPECT_EQ(rf.report.t_parallel, ra.report.t_parallel);
  EXPECT_EQ(rf.report.max_compute_time, ra.report.max_compute_time);
  EXPECT_EQ(rf.report.max_comm_time, ra.report.max_comm_time);
  EXPECT_EQ(rf.report.max_idle_time, ra.report.max_idle_time);
  EXPECT_EQ(rf.report.total_flops, ra.report.total_flops);
  EXPECT_EQ(rf.report.total_messages, ra.report.total_messages);
  EXPECT_EQ(rf.report.total_words, ra.report.total_words);
  EXPECT_EQ(max_abs_diff(rf.c, ra.c), 0.0);

  // The phase tables agree on the extensive columns; aggregate capture
  // renounces the per-processor maxima and the critical path (documented as
  // reading zero).
  ASSERT_EQ(rf.report.phases.size(), ra.report.phases.size());
  for (std::size_t i = 0; i < rf.report.phases.size(); ++i) {
    const auto& pf = rf.report.phases[i];
    const auto& pa = ra.report.phases[i];
    EXPECT_EQ(pf.name, pa.name);
    EXPECT_EQ(pf.flops, pa.flops);
    EXPECT_EQ(pf.messages, pa.messages);
    EXPECT_EQ(pf.words, pa.words);
    EXPECT_EQ(pa.max_compute_time, 0.0);
    EXPECT_EQ(pa.max_comm_time, 0.0);
    EXPECT_EQ(pa.path.total(), 0.0);
  }
  EXPECT_GT(rf.report.critical_path.total(), 0.0);
  EXPECT_EQ(ra.report.critical_path.total(), 0.0);
}

TEST(ExtremeScale, TrafficCaptureGatingKeepsClocksIdentical) {
  const auto run_with = [](TrafficCapture cap) {
    MachineParams mp = test_params();
    mp.traffic_capture = cap;
    SimMachine m(std::make_shared<Hypercube>(4u), mp);
    std::vector<Message> msgs;
    for (ProcId pid = 0; pid < 8; ++pid) {
      msgs.emplace_back(pid, pid + 8, 3, Matrix(1, pid + 1));
    }
    m.exchange(std::move(msgs));
    for (ProcId pid = 8; pid < 16; ++pid) (void)m.receive(pid, 3);
    return m;
  };
  const SimMachine on = run_with(TrafficCapture::kOn);
  const SimMachine off = run_with(TrafficCapture::kOff);
  const SimMachine aut = run_with(TrafficCapture::kAuto);  // p = 16: on
  EXPECT_TRUE(on.traffic_captured());
  EXPECT_FALSE(off.traffic_captured());
  EXPECT_TRUE(aut.traffic_captured());
  EXPECT_GT(on.traffic().links_used(), 0u);
  EXPECT_EQ(off.traffic().links_used(), 0u);
  for (ProcId pid = 0; pid < 16; ++pid) {
    EXPECT_EQ(on.clock(pid), off.clock(pid));
    EXPECT_EQ(on.clock(pid), aut.clock(pid));
  }
}

// ----- seeded trace sampling ------------------------------------------------

std::vector<TraceEvent> traced_run(double sample, std::uint64_t seed) {
  MachineParams mp = test_params();
  mp.trace = true;
  mp.trace_sample = sample;
  mp.trace_sample_seed = seed;
  SimMachine m(std::make_shared<Hypercube>(4u), mp);
  for (ProcId pid = 0; pid < 16; ++pid) m.compute(pid, 10.0 + pid);
  std::vector<Message> msgs;
  for (ProcId pid = 0; pid < 8; ++pid) msgs.emplace_back(pid, pid + 8, 1, payload(4));
  m.exchange(std::move(msgs));
  for (ProcId pid = 8; pid < 16; ++pid) (void)m.receive(pid, 1);
  m.synchronize();
  return m.trace().events();
}

TEST(ExtremeScale, TraceSampleOneRecordsEveryoneAndZeroRecordsNoOne) {
  const auto all = traced_run(1.0, 0);
  const auto none = traced_run(0.0, 0);
  EXPECT_FALSE(all.empty());
  EXPECT_TRUE(none.empty());
  std::set<ProcId> pids;
  for (const auto& e : all) pids.insert(e.pid);
  EXPECT_EQ(pids.size(), 16u);  // full trace covers every processor
}

TEST(ExtremeScale, TraceSamplingIsAPerProcessorSubsetAndSeedStable) {
  const auto all = traced_run(1.0, 5);
  const auto half = traced_run(0.5, 5);
  const auto half_again = traced_run(0.5, 5);
  // Deterministic in the seed.
  ASSERT_EQ(half.size(), half_again.size());
  std::set<ProcId> sampled;
  for (const auto& e : half) sampled.insert(e.pid);
  EXPECT_GT(sampled.size(), 0u);
  EXPECT_LT(sampled.size(), 16u);
  // A sampled processor's timeline is complete: exactly the events the full
  // trace has for that pid, in the same order with the same timestamps.
  std::vector<TraceEvent> expected;
  for (const auto& e : all) {
    if (sampled.count(e.pid)) expected.push_back(e);
  }
  ASSERT_EQ(half.size(), expected.size());
  for (std::size_t i = 0; i < half.size(); ++i) {
    EXPECT_EQ(half[i].pid, expected[i].pid);
    EXPECT_EQ(half[i].start, expected[i].start);
    EXPECT_EQ(half[i].end, expected[i].end);
    EXPECT_EQ(static_cast<int>(half[i].kind),
              static_cast<int>(expected[i].kind));
  }
  // A different seed selects a different (still deterministic) subset in
  // general; at minimum it must stay a valid subset of the full trace.
  const auto other = traced_run(0.5, 1234);
  std::set<ProcId> other_sampled;
  for (const auto& e : other) other_sampled.insert(e.pid);
  EXPECT_GT(other_sampled.size(), 0u);
  EXPECT_LT(other_sampled.size(), 16u);
}

// ----- full algorithm runs at p >= 10^5 -------------------------------------

TEST(ExtremeScale, GkRunsAtQuarterMillionProcessors) {
  // n = 64, p = n^3 = 2^18: every processor holds a 1x1 block — the paper's
  // finest-grain GK operating point, far beyond what the dense engine could
  // hold. Closed-form accounting: the n^3 multiply-adds partition exactly.
  const std::size_t n = 64;
  const std::size_t p = std::size_t{1} << 18;
  Rng rng(42);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  MachineParams mp = machines::ncube2();
  mp.metrics_mode = MetricsMode::kAggregate;
  mp.traffic_capture = TrafficCapture::kOff;
  const MatmulResult got = GkAlgorithm().run(a, b, p, mp);
  EXPECT_EQ(got.report.p, p);
  EXPECT_EQ(got.report.total_flops, static_cast<std::uint64_t>(n) * n * n);
  EXPECT_GT(got.report.t_parallel, 0.0);
  // Engine self-telemetry survives aggregate capture even at this scale:
  // the arena and event-loop gauges are O(1) extra state.
  EXPECT_GT(got.report.engine.events, 0u);
  EXPECT_GT(got.report.engine.arena_bytes, 0u);
  // Arena slots track peak concurrent messages, not p — the whole point of
  // the slab design is that a quarter-million processors don't cost a
  // quarter-million inbox allocations.
  EXPECT_GT(got.report.engine.inbox_slots, 0u);
  EXPECT_LT(got.report.engine.inbox_slots, p);
  const Gauge* arena = got.report.metrics.find_gauge("engine.arena.bytes");
  ASSERT_NE(arena, nullptr);
  EXPECT_DOUBLE_EQ(arena->value(),
                   static_cast<double>(got.report.engine.arena_bytes));
  EXPECT_NE(got.report.metrics.find_gauge("engine.events.virtual_rate"),
            nullptr);
  const Matrix expect = multiply(a, b);
  EXPECT_LE(max_abs_diff(got.c, expect), 1e-12 * static_cast<double>(n));
}

TEST(ExtremeScale, DnsRunsAtQuarterMillionProcessors) {
  const std::size_t n = 64;
  const std::size_t p = std::size_t{1} << 18;  // = n^3, 1-element operations
  Rng rng(42);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  MachineParams mp = machines::ncube2();
  mp.metrics_mode = MetricsMode::kAggregate;
  mp.traffic_capture = TrafficCapture::kOff;
  const MatmulResult got = DnsAlgorithm().run(a, b, p, mp);
  EXPECT_EQ(got.report.p, p);
  EXPECT_EQ(got.report.total_flops, static_cast<std::uint64_t>(n) * n * n);
  const Matrix expect = multiply(a, b);
  EXPECT_LE(max_abs_diff(got.c, expect), 1e-12 * static_cast<double>(n));
}

}  // namespace
}  // namespace hpmm
