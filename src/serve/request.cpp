#include "serve/request.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpmm {

const char* to_string(ServeOutcome outcome) noexcept {
  switch (outcome) {
    case ServeOutcome::kOk: return "ok";
    case ServeOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case ServeOutcome::kFailed: return "failed";
    case ServeOutcome::kRejectedInvalid: return "rejected_invalid";
    case ServeOutcome::kRejectedInfeasible: return "rejected_infeasible";
    case ServeOutcome::kRejectedBreaker: return "rejected_breaker";
    case ServeOutcome::kRejectedQueueFull: return "rejected_queue_full";
    case ServeOutcome::kRejectedQuota: return "rejected_quota";
  }
  return "?";
}

bool is_rejection(ServeOutcome outcome) noexcept {
  switch (outcome) {
    case ServeOutcome::kRejectedInvalid:
    case ServeOutcome::kRejectedInfeasible:
    case ServeOutcome::kRejectedBreaker:
    case ServeOutcome::kRejectedQueueFull:
    case ServeOutcome::kRejectedQuota:
      return true;
    case ServeOutcome::kOk:
    case ServeOutcome::kDeadlineExceeded:
    case ServeOutcome::kFailed:
      return false;
  }
  return false;
}

MachineParams serve_machine_params(const std::string& name) {
  if (name == "ideal") return machines::ideal();
  if (name == "ncube2") return machines::ncube2();
  if (name == "future") return machines::future_hypercube();
  if (name == "cm2") return machines::simd_cm2();
  if (name == "cm5") return machines::cm5_measured();
  throw PreconditionError("serve: unknown machine '" + name +
                          "' (expected ideal, ncube2, future, cm2 or cm5)");
}

std::shared_ptr<const FaultPlan> fault_plan_for_attempt(
    const std::shared_ptr<const FaultPlan>& base, unsigned attempt) {
  if (!base || attempt == 0) return base;
  auto plan = std::make_shared<FaultPlan>(*base);
  // Golden-ratio stride: well-separated seeds, distinct for every attempt.
  plan->seed = base->seed + 0x9E3779B97F4A7C15ULL * attempt;
  return plan;
}

Matrix request_operand(std::size_t n, std::uint64_t id, std::uint64_t salt) {
  require(n >= 1, "request_operand: n must be positive");
  Rng rng(0x5E57EED5ULL ^ (id << 8) ^ salt);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = std::floor(rng.uniform(1.0, 9.0));
    }
  }
  return m;
}

}  // namespace hpmm
