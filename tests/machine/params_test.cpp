#include "machine/params.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(MachineParams, MessageTimeCutThrough) {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  m.routing = Routing::kCutThrough;
  EXPECT_DOUBLE_EQ(m.message_time(5.0), 20.0);       // 10 + 2*5
  EXPECT_DOUBLE_EQ(m.message_time(5.0, 4), 20.0);    // hops free when t_h = 0
  EXPECT_DOUBLE_EQ(m.message_time(5.0, 0), 0.0);     // local
}

TEST(MachineParams, MessageTimeWithHopLatency) {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  m.t_h = 1.0;
  EXPECT_DOUBLE_EQ(m.message_time(5.0, 4), 24.0);  // 10 + 4*1 + 2*5
}

TEST(MachineParams, MessageTimeStoreAndForward) {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  m.routing = Routing::kStoreAndForward;
  EXPECT_DOUBLE_EQ(m.message_time(5.0, 3), 60.0);  // (10 + 10) * 3
}

TEST(MachineParams, CpuSpeedupScalesRelativeCosts) {
  MachineParams m;
  m.t_s = 100.0;
  m.t_w = 3.0;
  m.t_h = 0.5;
  const auto fast = m.with_cpu_speedup(10.0);
  EXPECT_DOUBLE_EQ(fast.t_s, 1000.0);
  EXPECT_DOUBLE_EQ(fast.t_w, 30.0);
  EXPECT_DOUBLE_EQ(fast.t_h, 5.0);
  EXPECT_THROW(m.with_cpu_speedup(0.0), PreconditionError);
}

TEST(MachineParams, CpuSpeedupLabelIsCompact) {
  MachineParams m;
  m.label = "base";
  // std::to_string used to render "cpu x2.000000"; the label now uses the
  // compact number format.
  EXPECT_EQ(m.with_cpu_speedup(2.0).label, "base (cpu x2)");
  EXPECT_EQ(m.with_cpu_speedup(2.5).label, "base (cpu x2.5)");
}

TEST(MachineParams, FromPhysicalNormalises) {
  // Section 9 CM-5 measurements.
  const auto m = MachineParams::from_physical(1.53, 380.0, 1.8, "cm5");
  EXPECT_NEAR(m.t_s, 248.37, 0.01);
  EXPECT_NEAR(m.t_w, 1.176, 0.001);
  EXPECT_THROW(MachineParams::from_physical(0.0, 1.0, 1.0), PreconditionError);
}

TEST(MachinePresets, PaperParameterSets) {
  EXPECT_DOUBLE_EQ(machines::ncube2().t_s, 150.0);
  EXPECT_DOUBLE_EQ(machines::ncube2().t_w, 3.0);
  EXPECT_DOUBLE_EQ(machines::future_hypercube().t_s, 10.0);
  EXPECT_DOUBLE_EQ(machines::simd_cm2().t_s, 0.5);
  EXPECT_DOUBLE_EQ(machines::simd_cm2().t_w, 3.0);
  EXPECT_NEAR(machines::cm5_measured().t_s, 248.37, 0.01);
  EXPECT_NEAR(machines::cm5_measured().t_w, 1.176, 0.001);
  // Eq. 18's constants are these exact ratios of the Section 9 measurements
  // (1.53 us per multiply-add, 380 us startup, 1.8 us per 4-byte word); the
  // per-4-byte-word convention is deliberate — see machine/params.cpp.
  EXPECT_DOUBLE_EQ(machines::cm5_measured().t_s, 380.0 / 1.53);
  EXPECT_DOUBLE_EQ(machines::cm5_measured().t_w, 1.8 / 1.53);
  EXPECT_DOUBLE_EQ(machines::ideal().t_s, 0.0);
  EXPECT_DOUBLE_EQ(machines::ideal().t_w, 0.0);
}

TEST(MachinePresets, DefaultsAreOnePortCutThrough) {
  const auto m = machines::ncube2();
  EXPECT_EQ(m.ports, PortModel::kOnePort);
  EXPECT_EQ(m.routing, Routing::kCutThrough);
  EXPECT_DOUBLE_EQ(m.t_h, 0.0);
}

}  // namespace
}  // namespace hpmm
