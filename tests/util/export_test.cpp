// Metrics export layer (util/export.hpp): extension routing, Prometheus
// text-exposition validity (name charset, HELP/TYPE pairs, cumulative
// buckets), OTLP-style JSON validity, and byte-for-byte determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/export.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace hpmm {
namespace {

MetricsRegistry sample_registry() {
  MetricsRegistry r;
  r.counter("sim.messages").add(120);
  r.counter("serve.cache.hits").add(3);
  r.gauge("engine.arena.bytes").set(39088.0);
  r.gauge("engine.events.virtual_rate").set(0.1);
  Histogram& h = r.histogram("serve.latency.t0", {10.0, 100.0, 1000.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);  // overflow bucket
  TimeSeries& s = r.series("serve.series.t0.ok", 100.0);
  s.observe(10.0, 1.0);
  s.observe(250.0, 1.0);
  return r;
}

std::string prom(const MetricsRegistry& r) {
  std::ostringstream os;
  write_prometheus(r, os);
  return os.str();
}

std::string otlp(const MetricsRegistry& r) {
  std::ostringstream os;
  write_otlp_json(r, os);
  return os.str();
}

// ----- format routing -------------------------------------------------------

TEST(MetricsExport, FormatRoutesOnExtension) {
  EXPECT_EQ(metrics_export_format("out/metrics.prom"),
            MetricsExportFormat::kPrometheus);
  EXPECT_EQ(metrics_export_format("snap.json"), MetricsExportFormat::kOtlpJson);
  EXPECT_THROW((void)metrics_export_format("metrics.txt"), PreconditionError);
  EXPECT_THROW((void)metrics_export_format("noextension"), PreconditionError);
}

TEST(MetricsExport, MetricNamesAreSanitizedIntoTheExpositionCharset) {
  EXPECT_EQ(prometheus_metric_name("serve.cache.hits"),
            "hpmm_serve_cache_hits");
  EXPECT_EQ(prometheus_metric_name("engine.events.virtual_rate"),
            "hpmm_engine_events_virtual_rate");
  EXPECT_EQ(prometheus_metric_name("weird-name with spaces"),
            "hpmm_weird_name_with_spaces");
  EXPECT_EQ(prometheus_metric_name("ok:colons_kept"), "hpmm_ok:colons_kept");
}

// ----- Prometheus text exposition -------------------------------------------

TEST(MetricsExport, PrometheusEmitsHelpTypePairsForEveryFamily) {
  const std::string text = prom(sample_registry());
  std::istringstream in(text);
  std::string line;
  std::string pending_help;  // family name from the last # HELP
  std::string pending_type;  // family name from the last # TYPE
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "exposition must not contain blank lines";
    if (line.rfind("# HELP ", 0) == 0) {
      pending_help = line.substr(7, line.find(' ', 7) - 7);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      pending_type = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(pending_type, pending_help)
          << "# TYPE must directly follow its # HELP";
      continue;
    }
    // A sample line: name must extend the family announced by # TYPE
    // (suffixes like _bucket/_sum/_count), and its charset must be legal.
    const std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_EQ(name.rfind(pending_type, 0), 0u)
        << "sample '" << name << "' outside family '" << pending_type << "'";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "illegal character '" << c << "' in " << name;
    }
  }
  EXPECT_NE(text.find("hpmm_sim_messages_total 120"), std::string::npos);
  EXPECT_NE(text.find("hpmm_engine_arena_bytes 39088"), std::string::npos);
}

TEST(MetricsExport, PrometheusHistogramBucketsAreCumulativeWithInf) {
  const std::string text = prom(sample_registry());
  // Three observations: 5 -> le 10, 50 -> le 100, 5000 -> overflow. The
  // cumulative rows must therefore read 1, 2, 2, and +Inf carries all 3.
  EXPECT_NE(text.find("hpmm_serve_latency_t0_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hpmm_serve_latency_t0_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hpmm_serve_latency_t0_bucket{le=\"1000\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hpmm_serve_latency_t0_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("hpmm_serve_latency_t0_count 3"), std::string::npos);
  EXPECT_NE(text.find("hpmm_serve_latency_t0_sum 5055"), std::string::npos);
}

TEST(MetricsExport, PrometheusSeriesRenderAsRunningTotals) {
  const std::string text = prom(sample_registry());
  EXPECT_NE(text.find("hpmm_serve_series_t0_ok_events_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("hpmm_serve_series_t0_ok_value_sum 2"),
            std::string::npos);
}

TEST(MetricsExport, OutputIsDeterministicAndSorted) {
  const MetricsRegistry r = sample_registry();
  EXPECT_EQ(prom(r), prom(r));
  EXPECT_EQ(otlp(r), otlp(r));
  // Counters render in sorted name order regardless of creation order.
  MetricsRegistry reversed;
  reversed.counter("zzz.last").add(1);
  reversed.counter("aaa.first").add(1);
  const std::string text = prom(reversed);
  EXPECT_LT(text.find("hpmm_aaa_first_total"), text.find("hpmm_zzz_last_total"));
}

// ----- OTLP-style JSON ------------------------------------------------------

TEST(MetricsExport, OtlpJsonIsValidAndCarriesEveryInstrument) {
  const std::string text = otlp(sample_registry());
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"resourceMetrics\""), std::string::npos);
  EXPECT_NE(text.find("\"sim.messages\""), std::string::npos);
  EXPECT_NE(text.find("\"isMonotonic\": true"), std::string::npos);
  EXPECT_NE(text.find("\"engine.arena.bytes\""), std::string::npos);
  EXPECT_NE(text.find("\"serve.latency.t0\""), std::string::npos);
  EXPECT_NE(text.find("\"bucketCounts\""), std::string::npos);
  EXPECT_NE(text.find("\"serve.series.t0.ok\""), std::string::npos);
  EXPECT_NE(text.find("\"windowWidth\": 100"), std::string::npos);
}

TEST(MetricsExport, EmptyRegistryRendersCleanly) {
  const MetricsRegistry empty;
  EXPECT_EQ(prom(empty), "");
  EXPECT_TRUE(json_valid(otlp(empty)));
}

TEST(MetricsExport, WriteMetricsDispatchesOnFormat) {
  const MetricsRegistry r = sample_registry();
  std::ostringstream p, j;
  write_metrics(r, MetricsExportFormat::kPrometheus, p);
  write_metrics(r, MetricsExportFormat::kOtlpJson, j);
  EXPECT_EQ(p.str(), prom(r));
  EXPECT_EQ(j.str(), otlp(r));
}

}  // namespace
}  // namespace hpmm
