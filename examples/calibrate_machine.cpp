// Section 9's methodology as a workflow: measure the *host's* multiply-add
// time with the serial kernel (the paper measured 1.53 us on a CM-5 node),
// combine it with your network's startup and per-word times, normalise into
// the paper's units, and see what the analysis predicts for a machine built
// from processors like this one.
//
//   ./calibrate_machine --startup_us=50 --per_word_us=0.02 --p=1024

#include <chrono>
#include <iostream>

#include "analysis/crossover.hpp"
#include "analysis/isoefficiency.hpp"
#include "core/selector.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hpmm;

namespace {

/// Measured time per multiply-add (microseconds) of the conventional kernel
/// on this host, at a cache-resident size.
double measure_flop_time_us() {
  const std::size_t n = 192;
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  // Warm-up.
  multiply_add(a, b, c);
  const int reps = 5;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) multiply_add(a, b, c);
  const auto t1 = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  return us / (static_cast<double>(reps) *
               static_cast<double>(matmul_flops(n, n, n)));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  // Network characteristics of the hypothetical machine (defaults: a fast
  // 1990s-beating interconnect).
  const double startup_us = args.get_double("startup_us", 50.0);
  const double per_word_us = args.get_double("per_word_us", 0.02);
  const double p = args.get_double("p", 1024);

  const double flop_us = measure_flop_time_us();
  const MachineParams mp = MachineParams::from_physical(
      flop_us, startup_us, per_word_us, "calibrated from this host");

  std::cout << "Calibration (Section 9 methodology):\n"
            << "  measured multiply-add time : " << format_number(flop_us, 4)
            << " us   [paper's CM-5 node: 1.53 us]\n"
            << "  network startup            : " << startup_us << " us\n"
            << "  network per word           : " << per_word_us << " us\n"
            << "  normalised t_s             : " << format_number(mp.t_s, 5)
            << "\n"
            << "  normalised t_w             : " << format_number(mp.t_w, 5)
            << "\n\n";

  std::cout << "--- What the analysis predicts for p = " << p
            << " processors like this one ---\n\n";
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  const auto n_eq = n_equal_overhead(gk, cannon, p, 1.0, 1e9);
  std::cout << "GK-vs-Cannon crossover: "
            << (n_eq ? "n = " + format_number(*n_eq, 4)
                     : std::string("none (one dominates)"))
            << "\n";
  for (double e : {0.5, 0.8}) {
    const auto n_c = iso_matrix_order(cannon, p, e);
    const auto n_g = iso_matrix_order(gk, p, e);
    std::cout << "order for E = " << e << ": cannon "
              << (n_c ? format_number(*n_c, 4) : "-") << ", gk "
              << (n_g ? format_number(*n_g, 4) : "-") << "\n";
  }

  std::cout << "\n--- Best algorithm by matrix size (model ranking) ---\n\n";
  Table t({"n", "best algorithm", "predicted E"});
  for (std::size_t n : {32u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
    const auto sel = select_among_table1(
        n, static_cast<std::size_t>(p), mp, /*require_simulatable=*/false);
    t.begin_row().add_int(static_cast<long long>(n));
    if (sel.best.empty()) {
      t.add("-").add("-");
    } else {
      t.add(sel.best).add_num(sel.efficiency, 3);
    }
  }
  t.print_aligned(std::cout);
  std::cout << "\nNote how a faster CPU (smaller measured multiply-add time)\n"
               "*raises* the relative t_s, t_w — Section 8's point that CPU\n"
               "speedups make communication relatively more expensive.\n";
  return 0;
}
