// Chaos-scenario acceptance tests: the serving envelope must isolate
// tenants. A noisy neighbor burning retries and tripping its breaker may
// not move a healthy tenant's tail latency; a thundering herd must be shed
// with explicit backpressure; a straggler storm must be cut off by
// deadlines instead of hogging slots.

#include "serve/chaos.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "serve/server.hpp"

namespace hpmm {
namespace {

std::string json_of(const ServeReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

TEST(NoisyNeighbor, HealthyTenantTailLatencyIsIsolated) {
  NoisyNeighborOptions scenario;
  scenario.healthy_requests = 10;
  scenario.noisy_requests = 10;
  scenario.seed = 3;
  ServeOptions opt;
  opt.breaker_threshold = 3;

  scenario.noisy_faulty = false;
  const ServeReport baseline =
      Server(opt).run(noisy_neighbor_scenario(scenario));
  scenario.noisy_faulty = true;
  const ServeReport chaotic =
      Server(opt).run(noisy_neighbor_scenario(scenario));

  // The healthy tenant finishes everything in both worlds...
  EXPECT_EQ(baseline.tenants.at("steady").ok, 10u);
  EXPECT_EQ(chaotic.tenants.at("steady").ok, 10u);
  // ...and its p99 stays within a fixed bound of the fault-free baseline.
  const double p99_base = baseline.latency_quantile("steady", 0.99);
  const double p99_chaos = chaotic.latency_quantile("steady", 0.99);
  ASSERT_GT(p99_base, 0.0);
  EXPECT_LE(p99_chaos, 1.25 * p99_base);

  // Meanwhile the noisy tenant actually suffered: retries burned, breaker
  // tripped, later arrivals shed.
  const TenantStats& noisy = chaotic.tenants.at("noisy");
  EXPECT_GT(noisy.retries, 0u);
  EXPECT_GT(noisy.failed, 0u);
  EXPECT_GE(noisy.breaker_trips, 1u);
  EXPECT_GT(noisy.rejected_breaker, 0u);
  EXPECT_EQ(noisy.ok, 0u);  // detect-only ABFT never repairs
}

TEST(NoisyNeighbor, ScenarioAndServingAreDeterministic) {
  NoisyNeighborOptions scenario;
  scenario.seed = 11;
  ServeOptions opt;
  opt.seed = 11;
  const ServeReport a = Server(opt).run(noisy_neighbor_scenario(scenario));
  const ServeReport b = Server(opt).run(noisy_neighbor_scenario(scenario));
  EXPECT_EQ(json_of(a), json_of(b));
}

TEST(ThunderingHerd, OverflowIsShedWithExplicitBackpressure) {
  ThunderingHerdOptions scenario;
  scenario.requests = 24;
  scenario.tenants = 4;
  ServeOptions opt;
  opt.slots = 2;
  opt.queue_capacity = 6;
  opt.tenant_quota = 4;
  const ServeReport report =
      Server(opt).run(thundering_herd_scenario(scenario));

  std::uint64_t submitted = 0, ok = 0, shed = 0;
  for (const auto& [tenant, ts] : report.tenants) {
    submitted += ts.submitted;
    ok += ts.ok;
    shed += ts.rejected();
    EXPECT_EQ(ts.failed, 0u) << tenant;  // the herd is clean work
  }
  EXPECT_EQ(submitted, 24u);
  EXPECT_EQ(ok + shed, 24u);  // every request gets a definite answer
  // The queue bound admits at most queue_capacity of the t=0 burst.
  EXPECT_EQ(ok, opt.queue_capacity);
  EXPECT_GT(shed, 0u);
}

TEST(ThunderingHerd, FairSchedulingServesEveryTenant) {
  ThunderingHerdOptions scenario;
  scenario.requests = 16;
  scenario.tenants = 4;
  ServeOptions opt;
  opt.slots = 1;
  opt.queue_capacity = 8;
  opt.tenant_quota = 2;
  const ServeReport report =
      Server(opt).run(thundering_herd_scenario(scenario));
  // Quota caps each tenant's admitted share, and round-robin dispatch means
  // the admitted work completes for all four tenants, not just the first.
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(report.tenants.at("herd" + std::to_string(t)).ok, 2u) << t;
  }
}

TEST(StragglerStorm, DeadlinesCutOffTheSlowestRequests) {
  StragglerStormOptions scenario;
  scenario.requests = 8;
  scenario.max_slowdown = 32.0;
  ServeOptions opt;
  opt.deadline_factor = 2.0;  // twice the model's T_p, then abort
  // Deadline aborts feed the breaker like any failure; disarm it here so
  // the test isolates the deadline mechanism.
  opt.breaker_threshold = 100;
  const ServeReport report =
      Server(opt).run(straggler_storm_scenario(scenario));
  const TenantStats& storm = report.tenants.at("storm");
  EXPECT_EQ(storm.submitted, 8u);
  EXPECT_GT(storm.ok, 0u);                 // mild stragglers still finish
  EXPECT_GT(storm.deadline_exceeded, 0u);  // extreme ones are cut off
  EXPECT_EQ(storm.ok + storm.deadline_exceeded, 8u);
  // Every aborted request paid exactly its budget, never more.
  for (const RequestRecord& rec : report.requests) {
    if (rec.outcome == ServeOutcome::kDeadlineExceeded) {
      EXPECT_DOUBLE_EQ(rec.service_time, rec.deadline);
    }
  }
}

TEST(StragglerStorm, WithoutDeadlinesTheStormRunsLongButCompletes) {
  StragglerStormOptions scenario;
  scenario.requests = 4;
  scenario.max_slowdown = 8.0;
  const ServeReport report =
      Server(ServeOptions{}).run(straggler_storm_scenario(scenario));
  EXPECT_EQ(report.tenants.at("storm").ok, 4u);
  // The last (most straggled) request is strictly slower than the first
  // (clean) one.
  EXPECT_GT(report.requests[3].service_time,
            report.requests[0].service_time);
}

}  // namespace
}  // namespace hpmm
