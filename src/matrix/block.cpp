#include "matrix/block.hpp"

#include "util/error.hpp"

namespace hpmm {

BlockGrid::BlockGrid(std::size_t rows, std::size_t cols, std::size_t grid_rows,
                     std::size_t grid_cols)
    : rows_(rows), cols_(cols), grid_rows_(grid_rows), grid_cols_(grid_cols) {
  require(grid_rows > 0 && grid_cols > 0, "BlockGrid: grid must be non-empty");
  require(rows % grid_rows == 0,
          "BlockGrid: grid_rows must divide matrix rows exactly");
  require(cols % grid_cols == 0,
          "BlockGrid: grid_cols must divide matrix cols exactly");
}

Matrix BlockGrid::extract(const Matrix& global, std::size_t bi,
                          std::size_t bj) const {
  require(global.rows() == rows_ && global.cols() == cols_,
          "BlockGrid::extract: matrix shape does not match grid");
  require(bi < grid_rows_ && bj < grid_cols_,
          "BlockGrid::extract: block index out of range");
  return global.slice(bi * block_rows(), bj * block_cols(), block_rows(),
                      block_cols());
}

void BlockGrid::insert(Matrix& global, const Matrix& block, std::size_t bi,
                       std::size_t bj) const {
  require(global.rows() == rows_ && global.cols() == cols_,
          "BlockGrid::insert: matrix shape does not match grid");
  require(bi < grid_rows_ && bj < grid_cols_,
          "BlockGrid::insert: block index out of range");
  require(block.rows() == block_rows() && block.cols() == block_cols(),
          "BlockGrid::insert: block has wrong shape");
  global.paste(block, bi * block_rows(), bj * block_cols());
}

std::vector<Matrix> scatter_blocks(const Matrix& global, const BlockGrid& grid) {
  std::vector<Matrix> blocks;
  blocks.reserve(grid.block_count());
  for (std::size_t bi = 0; bi < grid.grid_rows(); ++bi) {
    for (std::size_t bj = 0; bj < grid.grid_cols(); ++bj) {
      blocks.push_back(grid.extract(global, bi, bj));
    }
  }
  return blocks;
}

Matrix gather_blocks(const std::vector<Matrix>& blocks, const BlockGrid& grid) {
  require(blocks.size() == grid.block_count(),
          "gather_blocks: wrong number of blocks");
  Matrix global(grid.rows(), grid.cols());
  for (std::size_t bi = 0; bi < grid.grid_rows(); ++bi) {
    for (std::size_t bj = 0; bj < grid.grid_cols(); ++bj) {
      grid.insert(global, blocks[bi * grid.grid_cols() + bj], bi, bj);
    }
  }
  return global;
}

}  // namespace hpmm
