#include "core/selector.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Selector, PicksSomethingApplicable) {
  const auto sel = select_algorithm(64, 64, params(150, 3));
  EXPECT_FALSE(sel.best.empty());
  EXPECT_GT(sel.t_parallel, 0.0);
  EXPECT_GT(sel.efficiency, 0.0);
  EXPECT_LE(sel.efficiency, 1.0);
}

TEST(Selector, BestIsTheMinimumOverCandidates) {
  const auto sel = select_algorithm(64, 64, params(150, 3));
  for (const auto& cand : sel.candidates) {
    if (cand.applicable) {
      EXPECT_LE(sel.t_parallel, cand.t_parallel + 1e-9) << cand.name;
    }
  }
}

TEST(Selector, SmallProblemManyProcsPrefersGkOverCannon) {
  // The Figure 4 regime: p = 64, small n on a high-startup machine — the
  // GK algorithm must rank above Cannon.
  // (the predicted Eq. 15 crossover for these parameters is n ~ 28)
  const auto sel = select_among_table1(16, 64, params(150, 3));
  double t_gk = 0, t_cannon = 0;
  for (const auto& c : sel.candidates) {
    if (c.name == "gk") t_gk = c.t_parallel;
    if (c.name == "cannon") t_cannon = c.t_parallel;
  }
  ASSERT_GT(t_gk, 0.0);
  ASSERT_GT(t_cannon, 0.0);
  EXPECT_LT(t_gk, t_cannon);
}

TEST(Selector, LargeProblemPrefersBerntsen) {
  // Deep in the b region of Figure 1.
  const auto sel = select_among_table1(512, 64, params(150, 3));
  EXPECT_EQ(sel.best, "berntsen");
}

TEST(Selector, RequireSimulatableFiltersDivisibility) {
  // n = 10, p = 64: GK needs 4 | 10 — simulatable selection must skip it,
  // model-only selection may keep it.
  const auto strict = select_algorithm(10, 64, params(150, 3), true);
  for (const auto& c : strict.candidates) {
    if (c.name == "gk") EXPECT_FALSE(c.applicable);
  }
  const auto loose = select_algorithm(10, 64, params(150, 3), false);
  for (const auto& c : loose.candidates) {
    if (c.name == "gk") EXPECT_TRUE(c.applicable);
  }
}

TEST(Selector, NoApplicableAlgorithmLeavesBestEmpty) {
  // p > n^3: nothing applies.
  const auto sel = select_among_table1(4, 512, params(150, 3));
  EXPECT_TRUE(sel.best.empty());
  for (const auto& c : sel.candidates) EXPECT_FALSE(c.applicable);
}

TEST(Selector, CandidatesCoverTable1) {
  const auto sel = select_among_table1(64, 64, params(150, 3));
  ASSERT_EQ(sel.candidates.size(), 4u);
  EXPECT_EQ(sel.candidates[0].name, "berntsen");
  EXPECT_EQ(sel.candidates[3].name, "dns");
}

TEST(Selector, ValidatesArguments) {
  EXPECT_THROW(select_algorithm(0, 4, params(1, 1)), PreconditionError);
  EXPECT_THROW(select_algorithm(4, 0, params(1, 1)), PreconditionError);
}

TEST(Selector, MachineParametersChangeTheChoice) {
  // Same (n, p); high-startup machine avoids DNS, near-zero startup makes
  // DNS attractive (Figures 1 vs 3) — n^2 <= p <= n^3 regime.
  const auto high_ts = select_among_table1(16, 512, params(150, 3), false);
  const auto low_ts = select_among_table1(16, 512, params(0.5, 3), false);
  EXPECT_EQ(high_ts.best, "gk");
  EXPECT_EQ(low_ts.best, "dns");
}

}  // namespace
}  // namespace hpmm
