// Property-style sweeps over the whole stack: invariants that must hold for
// every algorithm, machine and problem shape.

#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

struct Shape {
  const char* name;
  std::size_t n, p;
};

const Shape kShapes[] = {
    {"simple", 16, 16},  {"simple", 16, 64},  {"cannon", 16, 16},
    {"cannon", 12, 9},   {"fox", 16, 16},     {"berntsen", 16, 8},
    {"berntsen", 16, 64},{"dns", 4, 64},      {"dns", 8, 128},
    {"gk", 16, 8},       {"gk", 16, 64},      {"gk-fc", 16, 64},
    {"gk-jh", 16, 64},
};

class AlgorithmProperties : public ::testing::TestWithParam<Shape> {
 protected:
  MatmulResult run(std::uint64_t seed = 7) const {
    const auto s = GetParam();
    Rng rng(seed);
    const Matrix a = random_matrix(s.n, s.n, rng);
    const Matrix b = random_matrix(s.n, s.n, rng);
    return default_registry().implementation(s.name).run(a, b, s.p,
                                                         params(50, 2));
  }
};

TEST_P(AlgorithmProperties, SpeedupBoundedByP) {
  const auto res = run();
  EXPECT_LE(res.report.speedup(), static_cast<double>(GetParam().p) * (1 + 1e-12));
  EXPECT_GT(res.report.speedup(), 0.0);
}

TEST_P(AlgorithmProperties, EfficiencyInUnitInterval) {
  const auto res = run();
  EXPECT_GT(res.report.efficiency(), 0.0);
  EXPECT_LE(res.report.efficiency(), 1.0 + 1e-12);
}

TEST_P(AlgorithmProperties, TotalFlopsEqualUsefulWork) {
  // Conservation of work: the charged multiply-adds across all processors
  // must equal n^3 exactly (no algorithm does redundant multiplications).
  const auto res = run();
  const auto n = static_cast<std::uint64_t>(GetParam().n);
  EXPECT_EQ(res.report.total_flops, n * n * n) << GetParam().name;
}

TEST_P(AlgorithmProperties, ComputePlusCommPlusIdleEqualsClock) {
  const auto s = GetParam();
  Rng rng(7);
  const Matrix a = random_matrix(s.n, s.n, rng);
  const Matrix b = random_matrix(s.n, s.n, rng);
  // Re-run to collect per-processor stats.
  const auto res = default_registry().implementation(s.name).run(
      a, b, s.p, params(50, 2));
  // T_p >= each component.
  EXPECT_GE(res.report.t_parallel + 1e-9, res.report.max_compute_time);
  EXPECT_GE(res.report.t_parallel + 1e-9, res.report.max_comm_time);
  EXPECT_GE(res.report.t_parallel + 1e-9, res.report.max_idle_time);
}

TEST_P(AlgorithmProperties, DeterministicAcrossRuns) {
  const auto r1 = run(3);
  const auto r2 = run(3);
  EXPECT_EQ(r1.c, r2.c);
  EXPECT_DOUBLE_EQ(r1.report.t_parallel, r2.report.t_parallel);
  EXPECT_EQ(r1.report.total_words, r2.report.total_words);
}

TEST_P(AlgorithmProperties, TimingIsDataIndependent) {
  const auto r1 = run(1);
  const auto r2 = run(2);
  EXPECT_DOUBLE_EQ(r1.report.t_parallel, r2.report.t_parallel);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, AlgorithmProperties,
                         ::testing::ValuesIn(kShapes));

TEST(Properties, MoreProcessorsNeverIncreaseComputeTime) {
  // n fixed: per-processor compute shrinks as p grows (perfect load
  // balance in every formulation).
  const auto& reg = default_registry();
  Rng rng(11);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  double prev = 1e30;
  for (std::size_t p : {1u, 8u, 64u}) {
    const auto res = reg.implementation("gk").run(a, b, p, params(50, 2));
    EXPECT_LT(res.report.max_compute_time, prev);
    prev = res.report.max_compute_time;
  }
}

TEST(Properties, EfficiencyImprovesWithProblemSizeInSim) {
  const auto& reg = default_registry();
  double prev = 0.0;
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    Rng rng(n);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    const auto res = reg.implementation("cannon").run(a, b, 16, params(50, 2));
    EXPECT_GT(res.report.efficiency(), prev);
    prev = res.report.efficiency();
  }
}

TEST(Properties, WordsSentScaleWithProblemSize) {
  // Doubling n quadruples every message, so total traffic grows 4x for the
  // mesh algorithms at fixed p.
  const auto& reg = default_registry();
  std::uint64_t words[2];
  std::size_t idx = 0;
  for (std::size_t n : {16u, 32u}) {
    Rng rng(n);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    words[idx++] =
        reg.implementation("cannon").run(a, b, 16, params(50, 2)).report.total_words;
  }
  EXPECT_EQ(words[1], 4 * words[0]);
}

TEST(Properties, MemoryEfficiencyClaims) {
  // Section 4.1 vs 4.2: the simple algorithm's peak per-processor storage
  // is ~sqrt(p)/3 times Cannon's; Cannon stores only the three resident
  // blocks.
  const auto& reg = default_registry();
  const std::size_t n = 32, p = 16;
  Rng rng(13);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const auto simple = reg.implementation("simple").run(a, b, p, params(50, 2));
  const auto cannon = reg.implementation("cannon").run(a, b, p, params(50, 2));
  EXPECT_EQ(cannon.report.max_peak_words, 3 * (n * n / p));
  EXPECT_GT(simple.report.max_peak_words, cannon.report.max_peak_words);
  // Simple gathers a whole block-row of A and block-column of B.
  EXPECT_EQ(simple.report.max_peak_words,
            2 * (n * n / p) * 4 /*sqrt p*/ + (n * n / p));
}

TEST(Properties, BerntsenMemoryMatchesSection44) {
  // 2 n^2/p operand words + n^2/p^{2/3} partial product words per processor.
  const auto& reg = default_registry();
  const std::size_t n = 16, p = 8;
  Rng rng(14);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const auto res = reg.implementation("berntsen").run(a, b, p, params(50, 2));
  EXPECT_EQ(res.report.max_peak_words, 2 * (n * n / p) + (n * n / 4));
}

TEST(Properties, HigherTsHurtsGkMoreThanCannonPerStep) {
  // GK pays (5/3) log p startups, Cannon pays 2 sqrt(p): at p = 64 Cannon
  // pays more startups, so raising t_s flips more decisions towards GK.
  const auto& reg = default_registry();
  const std::size_t n = 32, p = 64;
  Rng rng(15);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const auto gk_low = reg.implementation("gk").run(a, b, p, params(1, 3));
  const auto gk_high = reg.implementation("gk").run(a, b, p, params(1000, 3));
  const auto cn_low = reg.implementation("cannon").run(a, b, p, params(1, 3));
  const auto cn_high = reg.implementation("cannon").run(a, b, p, params(1000, 3));
  const double gk_delta = gk_high.report.t_parallel - gk_low.report.t_parallel;
  const double cn_delta = cn_high.report.t_parallel - cn_low.report.t_parallel;
  EXPECT_LT(gk_delta, cn_delta);  // 10 startups vs 16 startups at p = 64
}

}  // namespace
}  // namespace hpmm
