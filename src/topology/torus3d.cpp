#include "topology/torus3d.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpmm {
namespace {

unsigned ring_distance(std::size_t a, std::size_t b, std::size_t len) {
  const std::size_t d = a > b ? a - b : b - a;
  return static_cast<unsigned>(std::min(d, len - d));
}

}  // namespace

Torus3D::Torus3D(std::size_t rows, std::size_t cols, std::size_t layers)
    : rows_(rows), cols_(cols), layers_(layers) {
  require(rows > 0 && cols > 0 && layers > 0,
          "Torus3D: dimensions must be positive");
}

unsigned Torus3D::hops(ProcId src, ProcId dst) const {
  const auto [sr, sc, sl] = coords(src);
  const auto [dr, dc, dl] = coords(dst);
  return ring_distance(sr, dr, rows_) + ring_distance(sc, dc, cols_) +
         ring_distance(sl, dl, layers_);
}

std::vector<ProcId> Torus3D::neighbors(ProcId node) const {
  const auto [r, c, l] = coords(node);
  std::vector<ProcId> out{
      rank((r + rows_ - 1) % rows_, c, l), rank((r + 1) % rows_, c, l),
      rank(r, (c + cols_ - 1) % cols_, l), rank(r, (c + 1) % cols_, l),
      rank(r, c, (l + layers_ - 1) % layers_), rank(r, c, (l + 1) % layers_)};
  // Degenerate (length-1 or length-2) rings yield duplicates; deduplicate.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), node), out.end());
  return out;
}

std::string Torus3D::name() const {
  return "torus3d(" + std::to_string(rows_) + "x" + std::to_string(cols_) +
         "x" + std::to_string(layers_) + ")";
}

std::array<std::size_t, 3> Torus3D::coords(ProcId node) const {
  require(node < size(), "Torus3D::coords: node out of range");
  const std::size_t layer_size = rows_ * cols_;
  const std::size_t in_layer = node % layer_size;
  return {in_layer / cols_, in_layer % cols_, node / layer_size};
}

ProcId Torus3D::rank(std::size_t row, std::size_t col, std::size_t layer) const {
  require(row < rows_ && col < cols_ && layer < layers_,
          "Torus3D::rank: coords out of range");
  return static_cast<ProcId>(layer * rows_ * cols_ + row * cols_ + col);
}

ProcId Torus3D::west(ProcId node, std::size_t steps) const {
  const auto [r, c, l] = coords(node);
  return rank(r, (c + cols_ - steps % cols_) % cols_, l);
}

ProcId Torus3D::north(ProcId node, std::size_t steps) const {
  const auto [r, c, l] = coords(node);
  return rank((r + rows_ - steps % rows_) % rows_, c, l);
}

ProcId Torus3D::up(ProcId node, std::size_t steps) const {
  const auto [r, c, l] = coords(node);
  return rank(r, c, (l + steps) % layers_);
}

std::vector<ProcId> Torus3D::fiber(std::size_t row, std::size_t col) const {
  std::vector<ProcId> out;
  out.reserve(layers_);
  for (std::size_t l = 0; l < layers_; ++l) out.push_back(rank(row, col, l));
  return out;
}

}  // namespace hpmm
