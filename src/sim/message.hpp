#pragma once

#include <cstddef>
#include <vector>

#include "matrix/matrix.hpp"
#include "topology/topology.hpp"

namespace hpmm {

/// A point-to-point message: one or more matrix blocks moving from src to
/// dst in a single transfer. Its cost is t_s + t_w * words() (times hop
/// factors per the routing model).
struct Message {
  ProcId src = 0;
  ProcId dst = 0;
  int tag = 0;
  std::vector<Matrix> blocks;

  Message() = default;
  Message(ProcId s, ProcId d, int t, Matrix block) : src(s), dst(d), tag(t) {
    blocks.push_back(std::move(block));
  }
  Message(ProcId s, ProcId d, int t, std::vector<Matrix> bs)
      : src(s), dst(d), tag(t), blocks(std::move(bs)) {}

  /// Total words carried (the m of t_s + t_w * m).
  std::size_t words() const noexcept {
    std::size_t w = 0;
    for (const auto& b : blocks) w += b.size();
    return w;
  }
};

}  // namespace hpmm
