#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, IsPow8) {
  EXPECT_FALSE(is_pow8(0));
  EXPECT_TRUE(is_pow8(1));
  EXPECT_FALSE(is_pow8(2));
  EXPECT_FALSE(is_pow8(4));
  EXPECT_TRUE(is_pow8(8));
  EXPECT_TRUE(is_pow8(64));
  EXPECT_TRUE(is_pow8(512));
  EXPECT_FALSE(is_pow8(256));
  EXPECT_TRUE(is_pow8(1ULL << 30));
}

TEST(Bits, IsPerfectSquare) {
  EXPECT_TRUE(is_perfect_square(0));
  EXPECT_TRUE(is_perfect_square(1));
  EXPECT_TRUE(is_perfect_square(4));
  EXPECT_TRUE(is_perfect_square(484));
  EXPECT_FALSE(is_perfect_square(2));
  EXPECT_FALSE(is_perfect_square(483));
}

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1025), 10u);
  EXPECT_THROW(ilog2(0), PreconditionError);
}

TEST(Bits, ExactLog2) {
  EXPECT_EQ(exact_log2(1), 0u);
  EXPECT_EQ(exact_log2(512), 9u);
  EXPECT_THROW(exact_log2(3), PreconditionError);
}

TEST(Bits, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(484), 22u);
  EXPECT_EQ(isqrt(1ULL << 50), 1ULL << 25);
}

TEST(Bits, IsqrtExhaustiveSmall) {
  for (std::uint64_t x = 0; x < 5000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(Bits, Icbrt) {
  EXPECT_EQ(icbrt(0), 0u);
  EXPECT_EQ(icbrt(7), 1u);
  EXPECT_EQ(icbrt(8), 2u);
  EXPECT_EQ(icbrt(511), 7u);
  EXPECT_EQ(icbrt(512), 8u);
  EXPECT_EQ(icbrt(1ULL << 30), 1ULL << 10);
}

TEST(Bits, ExactSqrtCbrt) {
  EXPECT_EQ(exact_sqrt(484), 22u);
  EXPECT_THROW(exact_sqrt(485), PreconditionError);
  EXPECT_EQ(exact_cbrt(512), 8u);
  EXPECT_THROW(exact_cbrt(500), PreconditionError);
}

TEST(Bits, GrayCodeAdjacency) {
  // Consecutive Gray codes differ in exactly one bit.
  for (std::uint64_t i = 0; i + 1 < 1024; ++i) {
    EXPECT_EQ(popcount64(gray_code(i) ^ gray_code(i + 1)), 1u);
  }
}

TEST(Bits, GrayCodeInverse) {
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(inverse_gray_code(gray_code(i)), i);
  }
  EXPECT_EQ(inverse_gray_code(gray_code(0xDEADBEEFCAFEULL)), 0xDEADBEEFCAFEULL);
}

TEST(Bits, GrayCodeIsPermutation) {
  std::vector<bool> seen(256, false);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto g = gray_code(i);
    ASSERT_LT(g, 256u);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

TEST(Bits, Pow2Range) {
  const auto v = pow2_range(4, 64);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.front(), 4u);
  EXPECT_EQ(v.back(), 64u);
}

TEST(Bits, Pow8Range) {
  const auto v = pow8_range(1, 512);
  ASSERT_EQ(v.size(), 4u);  // 1, 8, 64, 512
  EXPECT_EQ(v[1], 8u);
  EXPECT_EQ(v[3], 512u);
}

TEST(Bits, IsqrtNearUint64Max) {
  // The floating-point seed estimate can overshoot near 2^64; the fixup must
  // clamp instead of wrapping r*r and walking ~2^31 steps (an effective hang
  // before the clamp existed).
  constexpr std::uint64_t kRoot = 0xffffffffull;  // 2^32 - 1
  EXPECT_EQ(isqrt(~std::uint64_t{0}), kRoot);
  EXPECT_EQ(isqrt(kRoot * kRoot), kRoot);
  EXPECT_EQ(isqrt(kRoot * kRoot - 1), kRoot - 1);
  EXPECT_EQ(isqrt(kRoot * kRoot + 1), kRoot);  // still floor(sqrt)
  EXPECT_EQ(isqrt(std::uint64_t{1} << 62), std::uint64_t{1} << 31);
}

TEST(Bits, IcbrtNearUint64Max) {
  constexpr std::uint64_t kRoot = 2642245ull;  // floor(cbrt(2^64 - 1))
  constexpr std::uint64_t kCube = kRoot * kRoot * kRoot;
  EXPECT_EQ(icbrt(~std::uint64_t{0}), kRoot);
  EXPECT_EQ(icbrt(kCube), kRoot);
  EXPECT_EQ(icbrt(kCube - 1), kRoot - 1);
  EXPECT_EQ(icbrt(std::uint64_t{1} << 63), std::uint64_t{1} << 21);
}

TEST(Bits, LargePScaleRoundTrips) {
  // p ~ 10^5-10^6 operating points used by the extreme-scale engine.
  for (const std::uint64_t p :
       {std::uint64_t{1} << 18, std::uint64_t{1} << 20, std::uint64_t{1} << 21,
        std::uint64_t{1} << 30}) {
    EXPECT_TRUE(is_pow2(p));
    EXPECT_EQ(std::uint64_t{1} << exact_log2(p), p);
    EXPECT_EQ(isqrt(p * p), p);
    if (p <= (std::uint64_t{1} << 21)) EXPECT_EQ(icbrt(p * p * p), p);
  }
  EXPECT_EQ(exact_cbrt(std::uint64_t{1} << 18), std::uint64_t{1} << 6);
  EXPECT_EQ(exact_sqrt(std::uint64_t{1} << 20), std::uint64_t{1} << 10);
}

}  // namespace
}  // namespace hpmm
