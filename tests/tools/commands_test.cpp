#include "tools/commands.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm::tools {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

struct Run {
  int code;
  std::string out;
  std::string err;
};

Run run(std::initializer_list<const char*> argv) {
  std::ostringstream os, es;
  const int code = dispatch(make(argv), os, es);
  return Run{code, os.str(), es.str()};
}

TEST(Cli, NoArgsPrintsUsage) {
  const auto r = run({"hpmm"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandPrintsUsage) {
  const auto r = run({"hpmm", "frobnicate"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, ListShowsAllAlgorithms) {
  const auto r = run({"hpmm", "list"});
  EXPECT_EQ(r.code, 0);
  for (const char* name :
       {"cannon", "cannon25d", "gk", "berntsen", "dns", "fox-pipe"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, MachinesShowsPresets) {
  const auto r = run({"hpmm", "machines"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("cm5"), std::string::npos);
  EXPECT_NE(r.out.find("248"), std::string::npos);  // normalised t_s
}

TEST(Cli, SelectPicksBest) {
  const auto r = run({"hpmm", "select", "--n=512", "--p=64"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("best: berntsen"), std::string::npos);
}

TEST(Cli, SelectFailsWithoutArguments) {
  const auto r = run({"hpmm", "select"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--n and --p"), std::string::npos);
}

TEST(Cli, SelectReportsNoApplicable) {
  const auto r = run({"hpmm", "select", "--n=4", "--p=513"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("no applicable"), std::string::npos);
}

TEST(Cli, RunSimulatesAndVerifies) {
  const auto r = run({"hpmm", "run", "--algorithm=cannon", "--n=16", "--p=16"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("product check   = ok"), std::string::npos);
  EXPECT_NE(r.out.find("ratio 1"), std::string::npos);  // Eq. 3 exact
}

TEST(Cli, RunRejectsUnknownAlgorithm) {
  const auto r = run({"hpmm", "run", "--algorithm=magic", "--n=16", "--p=16"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown algorithm"), std::string::npos);
}

TEST(Cli, RunCannon25DWithReplicationFlag) {
  const auto r = run({"hpmm", "run", "--algorithm=cannon25d", "--n=32",
                      "--p=32", "--c=2"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("product check   = ok"), std::string::npos);
  EXPECT_NE(r.out.find("ratio 1"), std::string::npos);  // closed form exact
}

TEST(Cli, RunCannon25DBadGridExitsOneNamingTheFlag) {
  // p = 16 is not c q^2 for c = 2; the error must point at --c.
  const auto r = run({"hpmm", "run", "--algorithm=cannon25d", "--n=16",
                      "--p=16", "--c=2"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--c"), std::string::npos) << r.err;
}

TEST(Cli, RunCannon25DReplicationBeyondCubeRootExitsOne) {
  // c = 8 on p = 16 violates c^3 <= p.
  const auto r = run({"hpmm", "run", "--algorithm=cannon25d", "--n=64",
                      "--p=16", "--c=8"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--c"), std::string::npos) << r.err;
}

TEST(Cli, RunBerntsenWrongProcessorCountExitsOne) {
  const auto r = run({"hpmm", "run", "--algorithm=berntsen", "--n=64",
                      "--p=16"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("2^(3q)"), std::string::npos) << r.err;
}

TEST(Cli, RunDnsBeyondConcurrencyLimitExitsOne) {
  const auto r = run({"hpmm", "run", "--algorithm=dns", "--n=8", "--p=4096"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("at most n^3"), std::string::npos) << r.err;
}

TEST(Cli, IsoPrintsCurveAndFit) {
  const auto r = run({"hpmm", "iso", "--algorithm=cannon", "--efficiency=0.7",
                      "--pmax=1e7"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("fitted: W ~ p^1.5"), std::string::npos);
}

TEST(Cli, IsoMarksUnreachable) {
  const auto r = run({"hpmm", "iso", "--algorithm=dns", "--efficiency=0.9",
                      "--machine=ncube2", "--pmax=1e6"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("unreachable"), std::string::npos);
}

TEST(Cli, RegionsRendersMap) {
  const auto r = run({"hpmm", "regions", "--machine=cm2", "--pcells=24",
                      "--ncells=12"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("a=GK"), std::string::npos);
  EXPECT_NE(r.out.find('d'), std::string::npos);  // DNS region on the CM-2
}

TEST(Cli, RegionsMachineSpaceView) {
  const auto r = run({"hpmm", "regions", "--n=100", "--p=50000",
                      "--tscells=16", "--twcells=8"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("t_w up"), std::string::npos);
}

TEST(Cli, RegionsWith25DOverlay) {
  const auto r = run({"hpmm", "regions", "--machine=cm2", "--with-25d=1",
                      "--pcells=24", "--ncells=12"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("e=2.5D"), std::string::npos);
  // Default map must not mention the extended region.
  const auto base = run({"hpmm", "regions", "--machine=cm2", "--pcells=24",
                         "--ncells=12"});
  EXPECT_EQ(base.code, 0);
  EXPECT_EQ(base.out.find("e=2.5D"), std::string::npos);
}

TEST(Cli, CrossoverPrintsCurve) {
  const auto r = run({"hpmm", "crossover", "--a=gk", "--b=cannon",
                      "--machine=ncube2", "--pmax=1e6"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("n_EqualTo"), std::string::npos);
}

TEST(Cli, TracePrintsGantt) {
  const auto r = run({"hpmm", "trace", "--algorithm=cannon", "--n=16", "--p=16"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Gantt"), std::string::npos);
  EXPECT_NE(r.out.find('#'), std::string::npos);
}

TEST(Cli, TraceRejectsBadCombo) {
  const auto r = run({"hpmm", "trace", "--algorithm=gk", "--n=10", "--p=64"});
  EXPECT_EQ(r.code, 1);  // 4 does not divide 10
}

TEST(Cli, ReproduceSingleExperiment) {
  const auto r = run({"hpmm", "reproduce", "--experiment=sec8"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("claims reproduced"), std::string::npos);
  EXPECT_EQ(r.out.find("[FAIL]"), std::string::npos);
}

TEST(Cli, ReproduceRejectsUnknownExperiment) {
  const auto r = run({"hpmm", "reproduce", "--experiment=fig9"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown experiment"), std::string::npos);
}

TEST(Cli, CsvFormat) {
  const auto r = run({"hpmm", "machines", "--format=csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("name,t_s,t_w"), std::string::npos);
}

TEST(Cli, MachineFromArgs) {
  EXPECT_DOUBLE_EQ(machine_from_args(make({"x", "--machine=cm2"})).t_s, 0.5);
  EXPECT_DOUBLE_EQ(machine_from_args(make({"x", "--ts=42"})).t_s, 42.0);
  EXPECT_DOUBLE_EQ(machine_from_args(make({"x"})).t_s, 150.0);  // default
  EXPECT_THROW(machine_from_args(make({"x", "--machine=zx81"})),
               PreconditionError);
}

TEST(Cli, UnknownMachineIsHandledByDispatch) {
  const auto r = run({"hpmm", "select", "--n=64", "--p=64", "--machine=zx81"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown machine"), std::string::npos);
}

TEST(Cli, UsageListsInject) {
  const auto r = run({"hpmm"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("inject"), std::string::npos);
}

TEST(Cli, InjectHelpDocumentsScenarioFlags) {
  const auto r = run({"hpmm", "inject", "--help"});
  EXPECT_EQ(r.code, 0);
  for (const char* flag : {"--drop", "--dup", "--delay", "--corrupt",
                           "--abft", "--stragglers", "--failstop",
                           "--reliable", "--retries", "--seed"}) {
    EXPECT_NE(r.out.find(flag), std::string::npos) << flag;
  }
}

TEST(Cli, InjectCleanPlanRuns) {
  const auto r = run({"hpmm", "inject", "--algorithm=cannon", "--n=16",
                      "--p=16"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("product check   = ok"), std::string::npos);
}

TEST(Cli, InjectDropScenarioMasksLossAndCountsRetransmissions) {
  const auto r = run({"hpmm", "inject", "--algorithm=cannon", "--n=32",
                      "--p=16", "--drop=0.01", "--stragglers=3:2",
                      "--seed=1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("product check   = ok"), std::string::npos);
  EXPECT_NE(r.out.find("rexmit="), std::string::npos);
}

TEST(Cli, InjectFailStopDegradesInsteadOfAborting) {
  const auto r = run({"hpmm", "inject", "--algorithm=cannon", "--n=32",
                      "--p=16", "--failstop=5:1000"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("degradation"), std::string::npos);
  EXPECT_NE(r.out.find("re-planned 16 -> "), std::string::npos);
  EXPECT_NE(r.out.find("product check   = ok"), std::string::npos);
}

TEST(Cli, InjectCorruptionDetectOnlyExposesMismatch) {
  const auto r = run({"hpmm", "inject", "--algorithm=gk", "--n=32", "--p=8",
                      "--corrupt=0.05", "--abft=detect", "--seed=1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("MISMATCH"), std::string::npos);
}

TEST(Cli, InjectCorruptionWithCorrectionPasses) {
  const auto r = run({"hpmm", "inject", "--algorithm=gk", "--n=32", "--p=8",
                      "--corrupt=0.05", "--abft=correct", "--seed=1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("abft-corrected="), std::string::npos);
}

TEST(Cli, InjectRejectsMalformedScenarioFlags) {
  EXPECT_EQ(run({"hpmm", "inject", "--abft=sometimes"}).code, 1);
  EXPECT_EQ(run({"hpmm", "inject", "--stragglers=3"}).code, 1);
  EXPECT_EQ(run({"hpmm", "inject", "--failstop=a:b"}).code, 1);
  EXPECT_EQ(run({"hpmm", "inject", "--drop=1.5"}).code, 1);
}

TEST(Cli, InvalidShapeExitsWithCallerError) {
  // Satellite: a PreconditionError from an invalid (n, p) maps to exit 1.
  const auto r = run({"hpmm", "run", "--algorithm=cannon", "--n=16",
                      "--p=10"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, ExhaustedRetryBudgetIsAnInternalError) {
  // drop=1 with a tiny retry budget exhausts the reliable protocol, which is
  // an InternalError (bug-or-misconfiguration), mapped to exit 2.
  const auto r = run({"hpmm", "inject", "--algorithm=cannon", "--n=16",
                      "--p=16", "--drop=1", "--retries=2"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("internal error"), std::string::npos);
}

TEST(Cli, GarbageNumericFlagExitsOneNamingTheFlag) {
  // --p=abc used to silently parse as p=0; it must fail loudly instead.
  const auto r = run({"hpmm", "run", "--p=abc"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--p"), std::string::npos);
  EXPECT_NE(r.err.find("abc"), std::string::npos);
  EXPECT_EQ(run({"hpmm", "run", "--n=64x"}).code, 1);
  EXPECT_EQ(run({"hpmm", "inject", "--drop=oops"}).code, 1);
}

TEST(Cli, KernelAndThreadsFlags) {
  const auto r = run({"hpmm", "run", "--algorithm=cannon", "--n=32", "--p=16",
                      "--kernel=packed", "--threads=2"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("product check   = ok"), std::string::npos);
}

TEST(Cli, UnknownKernelExitsOne) {
  const auto r = run({"hpmm", "run", "--kernel=bogus"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown kernel"), std::string::npos);
}

TEST(Cli, NonPositiveThreadsExitsOne) {
  const auto r = run({"hpmm", "run", "--threads=0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--threads"), std::string::npos);
  EXPECT_EQ(run({"hpmm", "run", "--threads=-2"}).code, 1);
}

TEST(Cli, ThreadedFaultyRunMatchesSerial) {
  // The acceptance scenario end to end through the CLI: identical simulated
  // output for --threads=1 and --threads=4 on a faulty run.
  const auto serial =
      run({"hpmm", "inject", "--algorithm=cannon", "--n=32", "--p=16",
           "--drop=0.02", "--stragglers=3:2", "--threads=1"});
  const auto threaded =
      run({"hpmm", "inject", "--algorithm=cannon", "--n=32", "--p=16",
           "--drop=0.02", "--stragglers=3:2", "--threads=4",
           "--kernel=packed"});
  EXPECT_EQ(serial.code, 0);
  EXPECT_EQ(threaded.code, 0);
  EXPECT_EQ(serial.out, threaded.out);  // byte-for-byte identical report
}

TEST(Cli, RunJsonFormatIsValidAndComplete) {
  const auto r = run({"hpmm", "run", "--algorithm=cannon", "--n=16", "--p=16",
                      "--format=json"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(json_valid(r.out)) << r.out;
  EXPECT_NE(r.out.find("\"report\""), std::string::npos);
  EXPECT_NE(r.out.find("\"phases\""), std::string::npos);
  EXPECT_NE(r.out.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(r.out.find("\"model_t_parallel\""), std::string::npos);
  EXPECT_NE(r.out.find("\"product_correct\":true"), std::string::npos);
}

TEST(Cli, TraceChromeFormatIsValidJson) {
  const auto r = run({"hpmm", "trace", "--algorithm=cannon", "--n=16",
                      "--p=16", "--format=chrome"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(json_valid(r.out)) << r.out;
  EXPECT_NE(r.out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(r.out.find("\"shift\""), std::string::npos);  // phase names carried
}

TEST(Cli, TraceChromeWritesOutFile) {
  const std::string path = ::testing::TempDir() + "hpmm_trace_test.json";
  const std::string out_flag = "--out=" + path;
  const auto r = run({"hpmm", "trace", "--algorithm=gk", "--n=16", "--p=8",
                      "--format=chrome", out_flag.c_str()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("wrote chrome trace"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream ss;
  ss << file.rdbuf();
  EXPECT_TRUE(json_valid(ss.str()));
  std::remove(path.c_str());
}

TEST(Cli, TraceRejectsUnknownFormat) {
  const auto r = run({"hpmm", "trace", "--algorithm=cannon", "--n=16",
                      "--p=16", "--format=svg"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("format"), std::string::npos);
}

TEST(Cli, ProfilePrintsPhaseAndReconciliationTables) {
  const auto r = run({"hpmm", "profile", "--algorithm=cannon", "--n=32",
                      "--p=16"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("phase"), std::string::npos);
  EXPECT_NE(r.out.find("multiply"), std::string::npos);
  EXPECT_NE(r.out.find("startup (t_s)"), std::string::npos);
  EXPECT_NE(r.out.find("word (t_w)"), std::string::npos);
  EXPECT_NE(r.out.find("ratio"), std::string::npos);
  EXPECT_NE(r.out.find("host wall"), std::string::npos);
}

TEST(Cli, ProfileDefaultsAndUsageMentionIt) {
  const auto defaults = run({"hpmm", "profile"});
  EXPECT_EQ(defaults.code, 0);
  EXPECT_NE(defaults.out.find("cannon"), std::string::npos);
  const auto usage = run({"hpmm"});
  EXPECT_NE(usage.err.find("profile"), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::stringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

TEST(Cli, RunJsonAndProfileWriteOutFiles) {
  const std::string run_path = ::testing::TempDir() + "hpmm_run_out.json";
  const std::string run_flag = "--out=" + run_path;
  const auto rj = run({"hpmm", "run", "--algorithm=cannon", "--n=16",
                       "--p=16", "--format=json", run_flag.c_str()});
  EXPECT_EQ(rj.code, 0);
  EXPECT_NE(rj.out.find("wrote run report"), std::string::npos);
  EXPECT_TRUE(json_valid(slurp(run_path)));
  std::remove(run_path.c_str());

  const std::string prof_path = ::testing::TempDir() + "hpmm_profile_out.txt";
  const std::string prof_flag = "--out=" + prof_path;
  const auto rp = run({"hpmm", "profile", "--algorithm=cannon", "--n=16",
                       "--p=16", prof_flag.c_str()});
  EXPECT_EQ(rp.code, 0);
  EXPECT_NE(rp.out.find("wrote profile report"), std::string::npos);
  EXPECT_NE(slurp(prof_path).find("startup (t_s)"), std::string::npos);
  std::remove(prof_path.c_str());
}

TEST(Cli, UnwritableOutPathExitsOneNamingTheFile) {
  // A directory path can be opened by neither ofstream nor written through:
  // the hardened --out check must fail loudly, not quietly truncate.
  const std::string out_flag = "--out=" + ::testing::TempDir();
  const auto r = run({"hpmm", "run", "--algorithm=cannon", "--n=16", "--p=16",
                      "--format=json", out_flag.c_str()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(Cli, ServeGeneratedWorkloadPrintsTenantTable) {
  const auto r = run({"hpmm", "serve", "--requests=8", "--tenants=2",
                      "--seed=5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("tenant"), std::string::npos);
  EXPECT_NE(r.out.find("p99"), std::string::npos);
  EXPECT_NE(r.out.find("serve: 8 requests"), std::string::npos);
}

TEST(Cli, ServeJsonReportIsValidAndDeterministic) {
  const auto a = run({"hpmm", "serve", "--requests=10", "--seed=3",
                      "--fault-fraction=0.3", "--format=json"});
  const auto b = run({"hpmm", "serve", "--requests=10", "--seed=3",
                      "--fault-fraction=0.3", "--format=json",
                      "--threads=4"});
  EXPECT_EQ(a.code, 0);
  EXPECT_TRUE(json_valid(a.out)) << a.out;
  EXPECT_NE(a.out.find("\"tenants\""), std::string::npos);
  EXPECT_NE(a.out.find("\"p99\""), std::string::npos);
  // Byte-identical across host thread counts.
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, ServeScriptFileDrivesTheServer) {
  const std::string path = ::testing::TempDir() + "hpmm_serve_script.txt";
  {
    std::ofstream script(path);
    script << "request tenant=alice arrival=0 algo=cannon n=16 p=16\n"
              "request tenant=bob arrival=100 algo=gk n=16 p=8\n";
  }
  const std::string script_flag = "--script=" + path;
  const auto r = run({"hpmm", "serve", script_flag.c_str()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("alice"), std::string::npos);
  EXPECT_NE(r.out.find("bob"), std::string::npos);
  EXPECT_NE(r.out.find("ok=2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ServeChaosScenarioTripsTheNoisyTenant) {
  const auto r = run({"hpmm", "serve", "--scenario=noisy-neighbor",
                      "--healthy=6", "--noisy=6"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("steady"), std::string::npos);
  EXPECT_NE(r.out.find("noisy"), std::string::npos);
}

TEST(Cli, ServeRejectsBadFlags) {
  EXPECT_EQ(run({"hpmm", "serve", "--scenario=meteor-strike"}).code, 1);
  EXPECT_EQ(run({"hpmm", "serve", "--slots=0"}).code, 1);
  EXPECT_EQ(run({"hpmm", "serve", "--requests=-1"}).code, 1);
  EXPECT_EQ(run({"hpmm", "serve", "--script=/nonexistent/x.txt"}).code, 1);
  EXPECT_EQ(run({"hpmm", "serve", "--requests=4", "--window=0"}).code, 1);
  EXPECT_EQ(
      run({"hpmm", "serve", "--requests=4", "--slo-availability=1.5"}).code,
      1);
  const auto both = run({"hpmm", "serve", "--script=x",
                         "--scenario=noisy-neighbor"});
  EXPECT_EQ(both.code, 1);
  EXPECT_NE(both.err.find("mutually exclusive"), std::string::npos);
}

TEST(Cli, ServeJournalAndTimelineFilesAreValid) {
  const std::string journal = ::testing::TempDir() + "hpmm_journal.jsonl";
  const std::string timeline = ::testing::TempDir() + "hpmm_timeline.json";
  const std::string journal_flag = "--journal=" + journal;
  const std::string timeline_flag = "--timeline=" + timeline;
  const auto r = run({"hpmm", "serve", "--requests=6", "--tenants=2",
                      "--seed=5", journal_flag.c_str(),
                      timeline_flag.c_str()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("wrote journal ("), std::string::npos);
  EXPECT_NE(r.out.find("wrote timeline to"), std::string::npos);
  std::ifstream jf(journal);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jf, line)) {
    EXPECT_TRUE(json_valid(line)) << line;
    ++lines;
  }
  EXPECT_GT(lines, 6u);  // at least arrival + terminal event per request
  std::ifstream tf(timeline);
  std::stringstream timeline_json;
  timeline_json << tf.rdbuf();
  EXPECT_TRUE(json_valid(timeline_json.str()));
  EXPECT_NE(timeline_json.str().find("\"executor slots\""),
            std::string::npos);
  std::remove(journal.c_str());
  std::remove(timeline.c_str());
  EXPECT_EQ(run({"hpmm", "serve", "--requests=4",
                 "--journal=/nonexistent/dir/j.jsonl"})
                .code,
            1);
}

TEST(Cli, ServeSloStrictExitsThreeOnBreach) {
  // An impossibly tight p99 objective breaches for every tenant.
  const auto strict = run({"hpmm", "serve", "--requests=6", "--seed=5",
                           "--slo-p99=1", "--slo-strict"});
  EXPECT_EQ(strict.code, 3);
  EXPECT_NE(strict.out.find("SLO breached"), std::string::npos);
  // Same breach without --slo-strict: verdicts are reported, exit stays 0.
  const auto lax = run({"hpmm", "serve", "--requests=6", "--seed=5",
                        "--slo-p99=1", "--format=json"});
  EXPECT_EQ(lax.code, 0);
  EXPECT_NE(lax.out.find("\"slo\":["), std::string::npos);
  EXPECT_NE(lax.out.find("\"p99_breached\":true"), std::string::npos);
  // A generous objective passes under --slo-strict.
  const auto healthy = run({"hpmm", "serve", "--requests=6", "--seed=5",
                            "--slo-availability=0.01", "--slo-strict"});
  EXPECT_EQ(healthy.code, 0);
}

TEST(Cli, BoundsTableCoversTheRegistry) {
  const auto r = run({"hpmm", "bounds", "--n=64", "--p=64", "--memory=192"});
  EXPECT_EQ(r.code, 0);
  for (const char* name : {"simple", "cannon", "cannon25d", "berntsen", "dns",
                           "gk", "gk-allport", "fox-pipe"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const char* cls : {"2D", "2.5D", "3D"}) {
    EXPECT_NE(r.out.find(cls), std::string::npos) << cls;
  }
  // Hand-computed floor at n=64, p=64: 576 words/proc, 36864 total; the
  // 2.5D strong-scaling range at M=192 runs 64..512.
  EXPECT_NE(r.out.find("576"), std::string::npos);
  EXPECT_NE(r.out.find("36.9K"), std::string::npos);
  EXPECT_NE(r.out.find("512"), std::string::npos);
  EXPECT_NE(r.out.find("strong-scaling range"), std::string::npos);
}

TEST(Cli, BoundsJsonIsValidAndOmitsTheFooter) {
  const auto r = run({"hpmm", "bounds", "--n=64", "--p=64", "--format=json"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(json_valid(r.out)) << r.out;
  EXPECT_EQ(r.out.find("strong-scaling range"), std::string::npos);
  EXPECT_NE(r.out.find("\"class\": \"2.5D\""), std::string::npos);
}

TEST(Cli, BoundsMeasuredAddsTheScoreboardColumns) {
  const auto r = run({"hpmm", "bounds", "--n=16", "--p=512", "--measured=1",
                      "--algo=gk"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("measured words"), std::string::npos);
  EXPECT_NE(r.out.find("ratio"), std::string::npos);
  // GK at n=16, p=512 measures 6.14K words against a 5.38K floor.
  EXPECT_NE(r.out.find("6.14K"), std::string::npos);
  EXPECT_NE(r.out.find("1.143"), std::string::npos);
}

TEST(Cli, BoundsRejectsUnknownAlgoNamingTheFlag) {
  const auto r = run({"hpmm", "bounds", "--algo=nope"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--algo"), std::string::npos);
  EXPECT_NE(r.err.find("nope"), std::string::npos);
}

TEST(Cli, BoundsRejectsUnknownFormatNamingTheFlag) {
  const auto r = run({"hpmm", "bounds", "--format=bogus"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--format"), std::string::npos);
  EXPECT_NE(r.err.find("bogus"), std::string::npos);
}

TEST(Cli, WithBoundsOutsideRegionsExitsOneNamingTheFlag) {
  // The overlay only exists on the regions map; silently ignoring the flag
  // elsewhere would hide a typo'd workflow.
  const auto r = run({"hpmm", "run", "--algorithm=cannon", "--n=16", "--p=16",
                      "--with-bounds=1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--with-bounds"), std::string::npos);

  const auto dual =
      run({"hpmm", "regions", "--n=64", "--p=64", "--with-bounds=1"});
  EXPECT_EQ(dual.code, 1);
  EXPECT_NE(dual.err.find("--with-bounds"), std::string::npos);
}

TEST(Cli, RegionsWithBoundsUppercasesOptimalCellsOnly) {
  const auto plain = run({"hpmm", "regions"});
  const auto overlay = run({"hpmm", "regions", "--with-bounds=1"});
  ASSERT_EQ(plain.code, 0);
  ASSERT_EQ(overlay.code, 0);
  // The default map must not change under the flag's default; the overlay
  // announces itself in the legend and upper-cases at least one cell.
  EXPECT_EQ(plain.out.find("UPPERCASE"), std::string::npos);
  EXPECT_NE(overlay.out.find("UPPERCASE"), std::string::npos);
  const auto has_upper_cell = [](const std::string& s) {
    for (const char ch : s) {
      if (ch == 'A' || ch == 'B' || ch == 'C' || ch == 'D' || ch == 'E') {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(has_upper_cell(plain.out.substr(plain.out.find('\n'))));
  EXPECT_TRUE(has_upper_cell(overlay.out.substr(overlay.out.find('\n'))));
  // Same geography: lower-casing the overlay recovers the plain map.
  std::string folded = overlay.out.substr(overlay.out.find('\n'));
  for (char& ch : folded) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  std::string plain_body = plain.out.substr(plain.out.find('\n'));
  for (char& ch : plain_body) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  EXPECT_EQ(folded, plain_body);
}

TEST(Cli, ProfileReconciliationScoresAgainstTheLowerBound) {
  const auto r = run({"hpmm", "profile", "--algorithm=cannon", "--n=64",
                      "--p=64"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("words vs lower bound"), std::string::npos);
  // Cannon moves 64512 words against the 36864-word floor: ratio 1.75.
  EXPECT_NE(r.out.find("1.75"), std::string::npos);
}

TEST(Cli, BoundsHelpAndUsageMentionIt) {
  const auto usage = run({"hpmm"});
  EXPECT_NE(usage.err.find("bounds"), std::string::npos);
  EXPECT_NE(usage.err.find("--with-bounds"), std::string::npos);
}

TEST(Cli, ServeHelpAndUsageMentionIt) {
  const auto help = run({"hpmm", "serve", "--help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("--scenario"), std::string::npos);
  EXPECT_NE(help.out.find("--breaker-threshold"), std::string::npos);
  const auto usage = run({"hpmm"});
  EXPECT_NE(usage.err.find("serve"), std::string::npos);
}

}  // namespace
}  // namespace hpmm::tools
