#pragma once

#include <string>
#include <vector>

#include "core/registry.hpp"

namespace hpmm {

/// One candidate considered by the selector.
struct SelectorCandidate {
  std::string name;
  bool applicable = false;
  double t_parallel = 0.0;  ///< predicted, multiply-add units (if applicable)
  double efficiency = 0.0;  ///< predicted (if applicable)
};

/// The selector's decision for a problem instance.
struct Selection {
  std::string best;                           ///< chosen algorithm name
  double t_parallel = 0.0;                    ///< its predicted T_p
  double efficiency = 0.0;                    ///< its predicted efficiency
  std::vector<SelectorCandidate> candidates;  ///< everything considered
};

/// The "smart preprocessor" of Section 10: given the matrix order, processor
/// count and machine parameters, predict T_p for every formulation in the
/// registry (within its range of applicability) and pick the fastest.
///
/// When `require_simulatable` is set, only formulations whose implementation
/// accepts the exact (n, p) — divisibility constraints included — are
/// considered; otherwise the continuous analytical applicability is used.
Selection select_algorithm(std::size_t n, std::size_t p,
                           const MachineParams& params,
                           bool require_simulatable = true,
                           const AlgorithmRegistry& registry = default_registry());

/// Restrict selection to the paper's four compared formulations
/// (berntsen, cannon, gk, dns).
Selection select_among_table1(std::size_t n, std::size_t p,
                              const MachineParams& params,
                              bool require_simulatable = true);

/// A re-plan after processor loss: the largest feasible configuration on the
/// surviving machine.
struct DegradedSelection {
  std::size_t p = 0;    ///< processors the plan actually uses (<= survivors)
  Selection selection;  ///< the winning formulation at that p
};

/// Graceful degradation: given `survivors` working processors, find the
/// largest p' <= survivors for which some registered formulation is
/// applicable (divisibility constraints included when `require_simulatable`)
/// and select the fastest one there. Formulations rarely accept arbitrary p,
/// so losing one processor usually steps p' down to the next perfect square,
/// power of eight, etc. Throws PreconditionError when no configuration at
/// all is feasible (survivors == 0).
DegradedSelection select_degraded(
    std::size_t n, std::size_t survivors, const MachineParams& params,
    bool require_simulatable = true,
    const AlgorithmRegistry& registry = default_registry());

}  // namespace hpmm
