#pragma once

#include <cstdint>
#include <vector>

namespace hpmm {

/// True iff x is a power of two (0 is not).
bool is_pow2(std::uint64_t x) noexcept;

/// True iff x is a power of eight, i.e. x = 2^{3q} (the processor counts
/// accepted by the GK, Berntsen and DNS formulations).
bool is_pow8(std::uint64_t x) noexcept;

/// True iff x is a perfect square (the processor counts accepted by the
/// mesh-based formulations: Simple, Cannon, Fox).
bool is_perfect_square(std::uint64_t x) noexcept;

/// Floor of log2(x). Precondition: x > 0.
unsigned ilog2(std::uint64_t x);

/// Exact log2(x). Precondition: x is a power of two.
unsigned exact_log2(std::uint64_t x);

/// Integer square root: floor(sqrt(x)).
std::uint64_t isqrt(std::uint64_t x) noexcept;

/// Integer cube root: floor(cbrt(x)).
std::uint64_t icbrt(std::uint64_t x) noexcept;

/// Exact integer square root. Precondition: x is a perfect square.
std::uint64_t exact_sqrt(std::uint64_t x);

/// Exact integer cube root. Precondition: x is a perfect cube.
std::uint64_t exact_cbrt(std::uint64_t x);

/// Binary-reflected Gray code of i.
std::uint64_t gray_code(std::uint64_t i) noexcept;

/// Inverse of gray_code: g == gray_code(inverse_gray_code(g)).
std::uint64_t inverse_gray_code(std::uint64_t g) noexcept;

/// Number of set bits.
unsigned popcount64(std::uint64_t x) noexcept;

/// All powers of two in [lo, hi], ascending.
std::vector<std::uint64_t> pow2_range(std::uint64_t lo, std::uint64_t hi);

/// All powers of eight (2^{3q}) in [lo, hi], ascending.
std::vector<std::uint64_t> pow8_range(std::uint64_t lo, std::uint64_t hi);

}  // namespace hpmm
