#pragma once

#include <optional>

#include "analysis/perf_model.hpp"

namespace hpmm {

/// Parameter-sensitivity analysis behind Section 6's reasoning: which part
/// of the machine (startup t_s or bandwidth t_w) dominates a formulation's
/// overhead at a given (n, p), and how strongly T_p reacts to each.

/// Decomposition of the overhead at one point.
struct OverheadSplit {
  double ts_part = 0.0;     ///< overhead attributable to t_s (startup)
  double tw_part = 0.0;     ///< overhead attributable to t_w (bandwidth)
  double other_part = 0.0;  ///< mixed terms (e.g. the JH pipeline sqrt)

  double total() const noexcept { return ts_part + tw_part + other_part; }
  bool startup_dominated() const noexcept { return ts_part > tw_part; }
};

/// Split comm_time(n, p) into its t_s / t_w contributions by evaluating the
/// model with each parameter zeroed (exact for models whose overhead is a
/// sum of a pure-t_s and a pure-t_w term — all of Eqs. 2-7 and 18; the JH
/// and all-port variants have a mixed sqrt(t_s t_w) remainder, reported in
/// other_part). Requires a model factory bound to the parameter set.
template <typename Model>
OverheadSplit overhead_split(const MachineParams& params, double n, double p);

/// Elasticity of T_p with respect to t_s: (dT_p/T_p) / (dt_s/t_s) — the
/// fraction of parallel time that scales with startup cost. Computed from
/// the same decomposition; elasticities w.r.t. t_s, t_w and the residual
/// compute share sum to ~1.
template <typename Model>
double ts_elasticity(const MachineParams& params, double n, double p);
template <typename Model>
double tw_elasticity(const MachineParams& params, double n, double p);

/// The matrix order at which a formulation switches from startup-dominated
/// to bandwidth-dominated overhead at fixed p (ts_part = tw_part); nullopt
/// when one side dominates for all applicable n. This is the "balance
/// point" that §6's crossovers move around.
template <typename Model>
std::optional<double> balance_order(const MachineParams& params, double p,
                                    double n_lo = 1.0, double n_hi = 1e9);

}  // namespace hpmm

#include "analysis/sensitivity_impl.hpp"
