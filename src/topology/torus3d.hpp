#pragma once

#include <array>

#include "topology/topology.hpp"

namespace hpmm {

/// 3-D wrap-around processor grid of shape rows x cols x layers — the
/// sqrt(p/c) x sqrt(p/c) x c arrangement of the 2.5D memory-replicated
/// Cannon formulation. Each layer is a rows x cols torus (the Cannon mesh);
/// the `layers` processors sharing a mesh position form a replication fiber
/// along which operand broadcasts and the final C reduction run.
///
/// Ranks are layer-major: rank(i, j, l) = l * rows * cols + i * cols + j, so
/// every layer occupies a contiguous rank range and fibers stride by the
/// layer size.
class Torus3D final : public Topology {
 public:
  Torus3D(std::size_t rows, std::size_t cols, std::size_t layers);

  std::size_t grid_rows() const noexcept { return rows_; }
  std::size_t grid_cols() const noexcept { return cols_; }
  std::size_t grid_layers() const noexcept { return layers_; }

  std::size_t size() const noexcept override { return rows_ * cols_ * layers_; }
  unsigned hops(ProcId src, ProcId dst) const override;
  unsigned ports_per_proc() const noexcept override { return 6; }
  std::vector<ProcId> neighbors(ProcId node) const override;
  std::string name() const override;

  /// (row, col, layer) coordinates of a rank.
  std::array<std::size_t, 3> coords(ProcId node) const;

  /// Rank of (row, col, layer).
  ProcId rank(std::size_t row, std::size_t col, std::size_t layer) const;

  /// Rank `steps` west (column - steps) within the same layer, wrapping.
  ProcId west(ProcId node, std::size_t steps = 1) const;
  /// Rank `steps` north (row - steps) within the same layer, wrapping.
  ProcId north(ProcId node, std::size_t steps = 1) const;
  /// Rank `steps` up the replication fiber (layer + steps), wrapping.
  ProcId up(ProcId node, std::size_t steps = 1) const;

  /// The replication fiber through mesh position (row, col): the `layers`
  /// ranks in layer order 0, 1, ..., layers-1.
  std::vector<ProcId> fiber(std::size_t row, std::size_t col) const;

 private:
  std::size_t rows_, cols_, layers_;
};

}  // namespace hpmm
