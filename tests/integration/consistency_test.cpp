// Cross-module consistency: independent components that answer the same
// question must agree — the selector vs the region map, the models vs the
// sensitivity split, the iso solver vs the speedup helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/isoefficiency.hpp"
#include "analysis/region_map.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/speedup.hpp"
#include "core/registry.hpp"
#include "core/selector.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

std::string region_name(Region r) { return to_string(r); }

TEST(Consistency, SelectorAgreesWithRegionMap) {
  // Both rank the four Table 1 formulations; the selector minimises T_p, the
  // map minimises T_o — identical orderings when both compare at the same p
  // (T_p = W/p + T_o/p).
  Rng rng(77);
  for (const auto& mp : {params(150, 3), params(10, 3), params(0.5, 3)}) {
    for (int trial = 0; trial < 40; ++trial) {
      const auto n = static_cast<std::size_t>(8 + rng.next_below(2000));
      const auto p = static_cast<std::size_t>(2 + rng.next_below(100000));
      const Region region = RegionMap::best_at(
          mp, static_cast<double>(n), static_cast<double>(p));
      const Selection sel =
          select_among_table1(n, p, mp, /*require_simulatable=*/false);
      if (region == Region::kNone) {
        EXPECT_TRUE(sel.best.empty()) << "n=" << n << " p=" << p;
      } else {
        EXPECT_EQ(sel.best, region_name(region))
            << "n=" << n << " p=" << p << " ts=" << mp.t_s;
      }
    }
  }
}

TEST(Consistency, EveryRegistryImplStaysInsideItsModelRange) {
  // For every registered formulation (the registry is the single source of
  // truth — new entries are covered automatically): wherever the simulated
  // implementation accepts an (n, p), its analytic model must accept the
  // point too. The implementation adds divisibility/layout constraints on
  // top of the model's Table 1 range, never the reverse.
  const auto& reg = default_registry();
  const MachineParams mp = params(150, 3);
  // Structured grids: uniform random (n, p) virtually never satisfies the
  // layout divisibility constraints, so sweep shapes each family can accept.
  const std::size_t n_choices[] = {8, 12, 16, 24, 32, 48, 64, 96};
  const std::size_t p_choices[] = {1,  4,   8,   9,   16,  25,   27,  32,
                                   36, 64,  128, 256, 512, 1024, 2048, 4096};
  std::size_t checked = 0;
  for (const std::size_t n : n_choices) {
    for (const std::size_t p : p_choices) {
      for (const auto& name : reg.names()) {
        if (!reg.implementation(name).applicable(n, p)) continue;
        const auto model = reg.model(name, mp);
        EXPECT_TRUE(model->applicable(static_cast<double>(n),
                                      static_cast<double>(p)))
            << name << " n=" << n << " p=" << p;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 300u);  // the sweep must not be vacuous
}

TEST(Consistency, EveryRegistryAlgorithmHasABoundsClassification) {
  // The bounds oracle scores every registry entry against the lower bound
  // of its communication-geometry class; an unclassified name throws. Like
  // the range-consistency sweep above, this covers future entries
  // automatically: registering an algorithm without adding it to the table
  // in analysis/bounds.cpp fails here before the oracle suite even runs.
  // Both the registry name and the model's own name must resolve, since
  // distance_from_measured classifies by model->name().
  const auto& reg = default_registry();
  const MachineParams mp = params(150, 3);
  for (const auto& name : reg.names()) {
    EXPECT_NO_THROW(bounds_class(name)) << name;
    EXPECT_NO_THROW(bounds_class(reg.model(name, mp)->name())) << name;
  }
}

TEST(Consistency, IsoSolverAgreesWithIsoefficientSpeedup) {
  const GkModel m(params(150, 3));
  const double p = 4096, e = 0.6;
  const auto n = iso_matrix_order(m, p, e);
  ASSERT_TRUE(n);
  const auto pts = isoefficient_speedup(m, e, std::vector<double>{p});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].speedup, m.speedup(*n, p), 1e-6 * pts[0].speedup);
}

TEST(Consistency, SensitivitySplitMatchesModelAtCrossoverPoints) {
  // At Eq. 15's GK-vs-Cannon crossover, the two total overheads agree, and
  // each model's split still sums to its own comm time.
  const MachineParams mp = params(150, 3);
  const GkModel gk(mp);
  const CannonModel cannon(mp);
  const double p = 4096;
  // A crossover exists for this machine/p (tested elsewhere); sample points
  // around it and confirm the splits track the totals.
  for (double n : {50.0, 224.0, 1000.0}) {
    EXPECT_NEAR(overhead_split<GkModel>(mp, n, p).total(),
                gk.comm_time(n, p), 1e-9 * gk.comm_time(n, p));
    EXPECT_NEAR(overhead_split<CannonModel>(mp, n, p).total(),
                cannon.comm_time(n, p), 1e-9 * cannon.comm_time(n, p));
  }
}

TEST(Consistency, MaxSpeedupSitsInsideTheApplicableRange) {
  for (const auto& mp : {params(150, 3), params(0.5, 3)}) {
    const CannonModel cannon(mp);
    const auto best = max_fixed_size_speedup(cannon, 256);
    ASSERT_TRUE(best);
    EXPECT_TRUE(cannon.applicable(256, best->p));
    // Efficiency at the peak equals speedup/p by definition.
    EXPECT_NEAR(best->efficiency, best->speedup / best->p, 1e-12);
  }
}

TEST(Consistency, EfficiencyFromModelMatchesSimToleranceBand) {
  // select() predictions use the same models validated against the
  // simulator elsewhere; spot-check the chain end to end for one case.
  // n = 15 keeps Berntsen out (p > n^{3/2}), leaving the GK-vs-Cannon duel
  // of Figure 4's regime.
  const MachineParams mp = params(150, 3);
  const Selection sel =
      select_among_table1(15, 64, mp, /*require_simulatable=*/false);
  ASSERT_EQ(sel.best, "gk");
  const GkModel gk(mp);
  EXPECT_NEAR(sel.t_parallel, gk.t_parallel(15, 64), 1e-9);
  EXPECT_NEAR(sel.efficiency, gk.efficiency(15, 64), 1e-12);
}

}  // namespace
}  // namespace hpmm
