// Machine designer — the Section 8 question as a tool: for your workload
// (matrix order n, algorithm), is the upgrade budget better spent on k-fold
// more processors or k-fold faster processors? And how much bigger must the
// problem get to keep the machine efficient after the upgrade?
//
//   ./machine_designer --n=1024 --p=256 --k=4 --ts=150 --tw=3

#include <iostream>

#include "analysis/technology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double n = args.get_double("n", 1024);
  const double p = args.get_double("p", 256);
  const double k = args.get_double("k", 4);
  MachineParams mp;
  mp.t_s = args.get_double("ts", 150.0);
  mp.t_w = args.get_double("tw", 3.0);

  std::cout << "Machine designer: n = " << n << ", p = " << p << ", upgrade k = "
            << k << ", t_s = " << mp.t_s << ", t_w = " << mp.t_w << "\n\n";

  std::cout << "--- Option A: " << k << "x more processors.  Option B: " << k
            << "x faster processors ---\n\n";
  Table t({"algorithm", "T now", "T option A", "T option B", "verdict"});
  const auto row = [&](const char* name, const MoreVsFaster& r, double t_now) {
    t.begin_row()
        .add(name)
        .add(format_si(t_now, 4))
        .add(format_si(r.t_more_procs, 4))
        .add(format_si(r.t_faster_procs, 4))
        .add(r.more_procs_wins() ? "more procs" : "faster procs");
  };
  {
    const CannonModel now(mp);
    row("cannon", more_vs_faster<CannonModel>(mp, n, p, k), now.t_parallel(n, p));
  }
  {
    const GkModel now(mp);
    row("gk", more_vs_faster<GkModel>(mp, n, p, k), now.t_parallel(n, p));
  }
  {
    const BerntsenModel now(mp);
    if (now.applicable(n, k * p)) {
      row("berntsen", more_vs_faster<BerntsenModel>(mp, n, p, k),
          now.t_parallel(n, p));
    }
  }
  t.print_aligned(std::cout);

  std::cout << "\n--- Problem growth needed to keep today's efficiency after "
               "the upgrade ---\n\n";
  const CannonModel cannon(mp);
  const double e_now = cannon.efficiency(n, p);
  std::cout << "Current Cannon efficiency: " << format_number(e_now, 3) << "\n";
  if (e_now > 0.01 && e_now < 0.99) {
    const auto grow_more = problem_growth_more_procs(cannon, p, k, e_now);
    const auto grow_fast =
        problem_growth_faster_procs<CannonModel>(mp, p, k, e_now);
    std::cout << "  W must grow " << (grow_more ? format_number(*grow_more, 3) : "-")
              << "x for " << k << "x more processors (isoefficiency power)\n"
              << "  W must grow " << (grow_fast ? format_number(*grow_fast, 3) : "-")
              << "x for " << k << "x faster processors (the t_w^3 factor)\n";
  }
  std::cout << "\nSection 8's moral: faster CPUs raise the *relative* cost of\n"
               "communication (t_s, t_w are measured in multiply-add units), so\n"
               "keeping them busy needs a k^3-fold larger problem — often more\n"
               "than the k^1.5-fold that more processors would need.\n";
  return 0;
}
