#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hpmm {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, ParsesKeyValues) {
  const auto args = make({"prog", "--n=128", "--machine=cm5"});
  EXPECT_EQ(args.get_int("n", 0), 128);
  EXPECT_EQ(args.get("machine", ""), "cm5");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FlagWithoutValueIsTrue) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_int("n", 64), 64);
  EXPECT_DOUBLE_EQ(args.get_double("ts", 150.0), 150.0);
  EXPECT_FALSE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get("machine", "ncube2"), "ncube2");
}

TEST(Cli, Positionals) {
  const auto args = make({"prog", "run", "--x=1", "fast"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "run");
  EXPECT_EQ(args.positionals()[1], "fast");
}

TEST(Cli, DoubleParsing) {
  const auto args = make({"prog", "--tw=3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("tw", 0.0), 3.5);
}

TEST(Cli, BoolVariants) {
  EXPECT_TRUE(make({"p", "--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"p", "--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make({"p", "--a=no"}).get_bool("a", true));
}

}  // namespace
}  // namespace hpmm
