#pragma once

#include <string>

#include "analysis/perf_model.hpp"

namespace hpmm {

/// Communication-geometry class of a formulation: how many copies of the
/// operands it keeps and therefore which communication lower bound and
/// perfect-strong-scaling range apply (Ballard-Demmel-Holtz-Lipshitz,
/// PAPERS.md #1).
enum class BoundsClass {
  k2D,   ///< one copy of each operand (simple, cannon, fox families)
  k25D,  ///< c replicated copies, 1 < c < p^{1/3} (cannon25d)
  k3D    ///< full p^{1/3}-fold replication (berntsen, dns, gk families)
};

/// "2D", "2.5D" or "3D".
std::string to_string(BoundsClass cls);

/// The classification of a registry algorithm (registry names and model
/// names both resolve). Throws PreconditionError for an unknown name, so
/// the registry guard test forces every future algorithm PR to classify
/// itself here before the oracle suite will pass.
BoundsClass bounds_class(const std::string& algorithm);

/// Communication lower bound at one (n, p, M) point, in words per
/// processor. Two regimes, both floors on the words some processor must
/// send or receive when multiplying n x n matrices over p processors with
/// M words of local memory:
///
///  * memory-dependent (Hong-Kung / Irony-Toledo-Tiskin):
///      words >= n^3 / (p sqrt(M)) - M
///    -- a processor doing its n^3/p multiply-adds through an M-word
///    window. The -M term credits data resident at start, so the bound
///    degenerates to 0 when the whole working set fits (p = 1).
///  * memory-independent (Loomis-Whitney / BDHL):
///      words >= 3 (n^3/p)^{2/3} - 3 n^2/p
///    -- independent of M; the subtracted term is the single-copy
///    balanced share of A, B and C a processor owns at start/end.
///
/// The binding floor is the max of the two. All initial distributions the
/// simulator charges traffic for are single-copy, so measured word counts
/// must dominate both regimes; replicated layouts only communicate *more*
/// during their broadcast phases.
struct CommLowerBound {
  double memory_words = 0.0;         ///< the M the bound was evaluated at
  double words_mem_dependent = 0.0;  ///< per-processor words, >= 0
  double words_mem_independent = 0.0;
  double words = 0.0;        ///< binding floor: max of the two regimes
  double total_words = 0.0;  ///< p * words
  double latency = 0.0;      ///< messages per processor: words / M
};

/// Evaluate the bound. Requires n >= 1, p >= 1 and memory_words > 0.
CommLowerBound comm_lower_bound(double n, double p, double memory_words);

/// Perfect-strong-scaling range [p_min, p_max] of a class on a machine with
/// M words of memory per processor: the processor counts over which running
/// time (equivalently, per-processor traffic) can halve when p doubles.
///
///  * 2D:   degenerate at p_2d = 3n^2/M -- optimal only where one copy
///          exactly fills memory; more processors leave memory idle.
///  * 2.5D: [p_2d, p_3d] with p_3d = p_2d^{3/2} -- replication c = pM/(3n^2)
///          grows with p until it hits the c <= p^{1/3} ceiling.
///  * 3D:   degenerate at p_3d -- below it the p^{1/3}-fold replicas do not
///          fit; above it the n^2/p^{2/3} traffic no longer halves.
///
/// Both endpoints are clamped to >= 1.
struct StrongScalingRange {
  double p_min = 1.0;
  double p_max = 1.0;
};

StrongScalingRange strong_scaling_range(BoundsClass cls, double n,
                                        double memory_words);

/// Measured traffic against the lower bound: the scoreboard entry of one
/// (algorithm, n, p) point. ratio >= 1 is the oracle invariant; ratio is
/// +inf when the bound is vacuous (0) yet traffic was measured, and 1 when
/// both are 0 (p = 1: nothing to move, nothing required).
struct DistanceFromOptimal {
  std::string algorithm;
  BoundsClass cls = BoundsClass::k2D;
  double n = 0.0;
  double p = 0.0;
  double measured_total_words = 0.0;
  CommLowerBound bound;
  double ratio = 1.0;
};

/// Score an already-measured total word count against the bound evaluated
/// at the model's own memory footprint M = model.memory_per_proc(n, p).
/// The model supplies the name (classification) and M; it never runs.
DistanceFromOptimal distance_from_measured(const PerfModel& model, double n,
                                           double p,
                                           double measured_total_words);

}  // namespace hpmm
