#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace hpmm {

/// Thrown when a caller passes arguments that violate a documented
/// precondition (e.g. a processor count outside an algorithm's range of
/// applicability).
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated; indicates a bug in hpmm
/// itself rather than in the caller.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Validate a documented precondition; throws PreconditionError with the
/// call site baked into the message.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": " + message);
  }
}

/// Validate an internal invariant; throws InternalError on failure.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InternalError(std::string(loc.file_name()) + ":" +
                        std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace hpmm
