#include "machine/params.hpp"

#include "util/error.hpp"
#include "util/table.hpp"

namespace hpmm {

MachineParams MachineParams::with_cpu_speedup(double k) const {
  require(k > 0.0, "with_cpu_speedup: factor must be positive");
  MachineParams out = *this;
  out.t_s = t_s * k;
  out.t_w = t_w * k;
  out.t_h = t_h * k;
  out.label = label + " (cpu x" + format_number(k) + ")";
  return out;
}

// Note on word size: the simulator charges t_w per *element* moved, and the
// matrices hold 8-byte doubles — so per_word_time must be quoted for the
// same word the message payloads use. A figure measured per 4-byte word
// (like the paper's CM-5 numbers) understates double traffic by 2x unless
// the caller doubles it first; cm5_measured() below deliberately keeps the
// paper's own per-4-byte-word figure because Eq. 18's constants (and our
// regression tests against them) were derived from it.
MachineParams MachineParams::from_physical(double flop_time, double startup_time,
                                           double per_word_time,
                                           std::string label) {
  require(flop_time > 0.0, "from_physical: flop_time must be positive");
  MachineParams out;
  out.t_s = startup_time / flop_time;
  out.t_w = per_word_time / flop_time;
  out.label = std::move(label);
  return out;
}

namespace machines {

MachineParams ncube2() {
  MachineParams m;
  m.t_s = 150.0;
  m.t_w = 3.0;
  m.label = "nCUBE2-like (t_s=150, t_w=3)";
  return m;
}

MachineParams future_hypercube() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 3.0;
  m.label = "future hypercube (t_s=10, t_w=3)";
  return m;
}

MachineParams simd_cm2() {
  MachineParams m;
  m.t_s = 0.5;
  m.t_w = 3.0;
  m.label = "CM-2-like SIMD (t_s=0.5, t_w=3)";
  return m;
}

MachineParams cm5_measured() {
  // Section 9: 1.53 us per multiply-add, 380 us message startup, 1.8 us per
  // 4-byte word, as observed by the paper's implementation. Eq. 18 uses
  // these constants as-is (t_s = 380/1.53 = 248.37, t_w = 1.8/1.53 = 1.176),
  // so we keep the per-4-byte-word figure even though the simulator moves
  // 8-byte doubles; see the from_physical word-size note.
  MachineParams m = MachineParams::from_physical(1.53, 380.0, 1.8,
                                                 "CM-5 (measured, Section 9)");
  return m;
}

MachineParams ideal() {
  MachineParams m;
  m.t_s = 0.0;
  m.t_w = 0.0;
  m.label = "ideal (free communication)";
  return m;
}

}  // namespace machines
}  // namespace hpmm
