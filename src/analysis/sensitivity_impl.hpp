#pragma once

// Template implementations for sensitivity.hpp (included at its end).

#include <cmath>

namespace hpmm {

template <typename Model>
OverheadSplit overhead_split(const MachineParams& params, double n, double p) {
  MachineParams ts_only = params;
  ts_only.t_w = 0.0;
  MachineParams tw_only = params;
  tw_only.t_s = 0.0;
  const Model full(params);
  const Model m_ts(ts_only);
  const Model m_tw(tw_only);
  OverheadSplit split;
  split.ts_part = m_ts.comm_time(n, p);
  split.tw_part = m_tw.comm_time(n, p);
  split.other_part =
      full.comm_time(n, p) - split.ts_part - split.tw_part;
  if (std::fabs(split.other_part) < 1e-9 * full.comm_time(n, p)) {
    split.other_part = 0.0;  // clean up rounding for the separable models
  }
  return split;
}

template <typename Model>
double ts_elasticity(const MachineParams& params, double n, double p) {
  const Model full(params);
  const double t_p = full.t_parallel(n, p);
  if (t_p <= 0.0) return 0.0;
  return overhead_split<Model>(params, n, p).ts_part / t_p;
}

template <typename Model>
double tw_elasticity(const MachineParams& params, double n, double p) {
  const Model full(params);
  const double t_p = full.t_parallel(n, p);
  if (t_p <= 0.0) return 0.0;
  return overhead_split<Model>(params, n, p).tw_part / t_p;
}

template <typename Model>
std::optional<double> balance_order(const MachineParams& params, double p,
                                    double n_lo, double n_hi) {
  const auto diff = [&](double n) {
    const auto split = overhead_split<Model>(params, n, p);
    return split.ts_part - split.tw_part;
  };
  double f_lo = diff(n_lo);
  double f_hi = diff(n_hi);
  if (f_lo == 0.0) return n_lo;
  if (f_hi == 0.0) return n_hi;
  if ((f_lo > 0.0) == (f_hi > 0.0)) return std::nullopt;
  double lo = n_lo, hi = n_hi;
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = std::sqrt(lo * hi);
    const double f_mid = diff(mid);
    if (f_mid == 0.0) return mid;
    if ((f_mid > 0.0) == (f_lo > 0.0)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

}  // namespace hpmm
