#include "tools/commands.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/cannon_25d.hpp"
#include "analysis/bounds.hpp"
#include "analysis/crossover.hpp"
#include "analysis/isoefficiency.hpp"
#include "analysis/region_map.hpp"
#include "core/distance.hpp"
#include "core/registry.hpp"
#include "core/runner.hpp"
#include "core/selector.hpp"
#include "core/experiments.hpp"
#include "core/validate.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "serve/chaos.hpp"
#include "serve/script.hpp"
#include "serve/server.hpp"
#include "serve/timeline.hpp"
#include "sim/fault.hpp"
#include "util/error.hpp"
#include "util/export.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace hpmm::tools {
namespace {

/// Range-of-applicability text per formulation (Table 1 plus divisibility).
std::string applicability_text(const std::string& name) {
  if (name == "berntsen") return "p = 2^(3q) <= n^(3/2), p^(2/3) | n";
  if (name == "cannon") return "p square <= n^2, sqrt(p) | n";
  if (name == "cannon-gray") return "as cannon, sqrt(p) = 2^k";
  if (name == "cannon25d") {
    return "p = c q^2 <= c n^2, c = 2^k <= p^(1/3), c | q, q | n (--c)";
  }
  if (name == "fox") return "as cannon, sqrt(p) = 2^k";
  if (name == "fox-pipe") return "as cannon";
  if (name == "simple") return "as cannon, sqrt(p) = 2^k";
  if (name == "simple-ring") return "as cannon";
  if (name == "simple-allport") return "as simple, n >= sqrt(p) log(p)/2";
  if (name == "dns") return "n^2 <= p = n^2 2^k <= n^3, n = 2^j";
  if (name == "gk" || name == "gk-jh" || name == "gk-fc" ||
      name == "gk-allport") {
    return "p = 2^(3q) <= n^3, p^(1/3) | n";
  }
  return "?";
}

/// Parse "pid:value[,pid:value...]" (straggler and fail-stop scenario
/// flags). An empty string yields an empty list.
std::vector<std::pair<std::uint32_t, double>> parse_pid_values(
    const std::string& text, const std::string& flag) {
  std::vector<std::pair<std::uint32_t, double>> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const std::size_t colon = item.find(':');
    require(colon != std::string::npos && colon > 0 && colon + 1 < item.size(),
            flag + ": expected pid:value[,pid:value...], got '" + item + "'");
    try {
      out.emplace_back(
          static_cast<std::uint32_t>(std::stoul(item.substr(0, colon))),
          std::stod(item.substr(colon + 1)));
    } catch (const std::exception&) {
      throw PreconditionError(flag + ": malformed entry '" + item + "'");
    }
    start = comma + 1;
  }
  return out;
}

AbftMode abft_from_args(const CliArgs& args) {
  const std::string mode = args.get("abft", "off");
  if (mode == "off") return AbftMode::kOff;
  if (mode == "detect") return AbftMode::kDetect;
  if (mode == "correct") return AbftMode::kCorrect;
  throw PreconditionError("inject: --abft must be off, detect or correct, got '" +
                          mode + "'");
}

/// Run `writer` against --out's file stream, or against `os` when --out is
/// absent. The stream state is checked both before writing (open failure)
/// and after write + flush — a full disk or vanished path must surface as a
/// PreconditionError, not a silently truncated file.
void write_output(const CliArgs& args, std::ostream& os,
                  const std::string& command, const std::string& what,
                  const std::function<void(std::ostream&)>& writer) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    writer(os);
    return;
  }
  std::ofstream file(out);
  require(file.good(),
          command + ": cannot open --out file '" + out + "'");
  writer(file);
  file.flush();
  require(file.good(), command + ": writing --out file '" + out +
                           "' failed (disk full or device error?)");
  os << "wrote " << what << " to " << out << "\n";
}

/// `--metrics-out=FILE[.prom|.json]` final-snapshot writer shared by run
/// and serve. The format is routed on the extension (util/export.hpp); the
/// same stream-state checks as write_output apply.
void write_metrics_out(const CliArgs& args, std::ostream& os,
                       const std::string& command,
                       const std::function<void(std::ostream&,
                                                MetricsExportFormat)>& writer) {
  const std::string path = args.get("metrics-out", "");
  if (path.empty()) return;
  const MetricsExportFormat format = metrics_export_format(path);
  std::ofstream file(path);
  require(file.good(),
          command + ": cannot open --metrics-out file '" + path + "'");
  writer(file, format);
  file.flush();
  require(file.good(), command + ": writing --metrics-out file '" + path +
                           "' failed (disk full or device error?)");
  os << "wrote metrics to " << path << "\n";
}

void print_table(const CliArgs& args, const Table& table, std::ostream& os) {
  const std::string format = args.get("format", "aligned");
  if (format == "csv") {
    table.print_csv(os);
  } else if (format == "json") {
    table.print_json(os);
  } else if (format == "markdown") {
    table.print_markdown(os);
  } else {
    table.print_aligned(os);
  }
}

}  // namespace

namespace {

MachineParams base_machine_from_args(const CliArgs& args) {
  const std::string name = args.get("machine", "");
  if (name == "ncube2") return machines::ncube2();
  if (name == "future") return machines::future_hypercube();
  if (name == "cm2") return machines::simd_cm2();
  if (name == "cm5") return machines::cm5_measured();
  if (name == "ideal") return machines::ideal();
  require(name.empty(), "unknown machine '" + name +
                            "' (try ncube2, future, cm2, cm5, ideal)");
  if (args.has("ts") || args.has("tw")) {
    MachineParams mp;
    mp.t_s = args.get_double("ts", 150.0);
    mp.t_w = args.get_double("tw", 3.0);
    mp.label = "custom (t_s=" + format_number(mp.t_s) +
               ", t_w=" + format_number(mp.t_w) + ")";
    return mp;
  }
  return machines::ncube2();
}

/// Replication factor for cannon25d: --c, default 2. Range checks beyond
/// positivity are deferred to the algorithm/model preconditions so error
/// messages name the flag consistently.
std::size_t replication_from_args(const CliArgs& args) {
  const std::int64_t c = args.get_int("c", 2);
  require(c >= 1, "--c: must be >= 1, got " + std::to_string(c));
  return static_cast<std::size_t>(c);
}

/// Implementation + model pair for one --algorithm, honouring --c for
/// cannon25d (the registry entry is fixed at c = 2; any other replication
/// factor needs a bespoke instance).
struct AlgorithmChoice {
  const ParallelMatmul* impl = nullptr;
  std::unique_ptr<ParallelMatmul> owned_impl;  // set when impl is bespoke
  std::unique_ptr<PerfModel> model;
};

AlgorithmChoice algorithm_from_args(const CliArgs& args,
                                    const std::string& algorithm,
                                    const MachineParams& mp,
                                    const std::string& command) {
  AlgorithmChoice choice;
  if (algorithm == "cannon25d" && args.has("c")) {
    const std::size_t c = replication_from_args(args);
    choice.owned_impl = std::make_unique<Cannon25DAlgorithm>(c);
    choice.impl = choice.owned_impl.get();
    choice.model = std::make_unique<Cannon25DModel>(mp, c);
    return choice;
  }
  const auto& reg = default_registry();
  require(reg.contains(algorithm),
          command + ": unknown algorithm '" + algorithm + "'");
  choice.impl = &reg.implementation(algorithm);
  choice.model = reg.model(algorithm, mp);
  return choice;
}

}  // namespace

MachineParams machine_from_args(const CliArgs& args) {
  MachineParams mp = base_machine_from_args(args);
  // Execution policy: wall-clock only, never part of the cost model. Every
  // kernel/threads setting yields bit-identical simulated times and results.
  if (args.has("kernel")) {
    mp.exec.kernel = kernel_from_string(args.get("kernel", ""));
  }
  const std::int64_t threads = args.get_int("threads", 1);
  require(threads >= 1, "--threads: must be >= 1, got " +
                            std::to_string(threads));
  mp.exec.threads = static_cast<unsigned>(threads);
  // Capture sparsity for extreme-scale runs (docs/cli.md, DESIGN.md §12).
  // Defaults reproduce the historical full-capture output byte for byte.
  const std::string metrics = args.get("metrics", "full");
  if (metrics == "aggregate") {
    mp.metrics_mode = MetricsMode::kAggregate;
  } else {
    require(metrics == "full",
            "--metrics: expected 'full' or 'aggregate', got '" + metrics + "'");
  }
  const std::string traffic = args.get("traffic", "auto");
  if (traffic == "on") {
    mp.traffic_capture = TrafficCapture::kOn;
  } else if (traffic == "off") {
    mp.traffic_capture = TrafficCapture::kOff;
  } else {
    require(traffic == "auto",
            "--traffic: expected 'auto', 'on' or 'off', got '" + traffic + "'");
  }
  mp.trace_sample = args.get_double("trace-sample", 1.0);
  require(mp.trace_sample >= 0.0 && mp.trace_sample <= 1.0,
          "--trace-sample: must be in [0, 1]");
  mp.trace_sample_seed =
      static_cast<std::uint64_t>(args.get_int("trace-seed", 0));
  // Causal span DAG capture (docs/observability.md); sampled by the same
  // --trace-sample / --trace-seed gate as the timeline.
  mp.causal = args.get_bool("causal", false);
  return mp;
}

int cmd_list(const CliArgs& args, std::ostream& os) {
  const auto& reg = default_registry();
  Table t({"algorithm", "range of applicability"});
  for (const auto& name : reg.names()) {
    t.begin_row().add(name).add(applicability_text(name));
  }
  print_table(args, t, os);
  return 0;
}

int cmd_machines(const CliArgs& args, std::ostream& os) {
  Table t({"name", "t_s", "t_w", "description"});
  const auto row = [&t](const char* key, const MachineParams& mp) {
    t.begin_row().add(key).add_num(mp.t_s).add_num(mp.t_w).add(mp.label);
  };
  row("ncube2", machines::ncube2());
  row("future", machines::future_hypercube());
  row("cm2", machines::simd_cm2());
  row("cm5", machines::cm5_measured());
  row("ideal", machines::ideal());
  print_table(args, t, os);
  return 0;
}

int cmd_select(const CliArgs& args, std::ostream& os) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 0));
  const auto p = static_cast<std::size_t>(args.get_int("p", 0));
  require(n > 0 && p > 0, "select: --n and --p are required");
  const MachineParams mp = machine_from_args(args);
  const Selection sel =
      select_algorithm(n, p, mp, args.get_bool("simulatable", true));
  Table t({"algorithm", "applicable", "predicted T_p", "predicted E"});
  for (const auto& c : sel.candidates) {
    t.begin_row().add(c.name);
    if (c.applicable) {
      t.add("yes").add_num(c.t_parallel, 5).add_num(c.efficiency, 3);
    } else {
      t.add("no").add("-").add("-");
    }
  }
  print_table(args, t, os);
  if (sel.best.empty()) {
    os << "no applicable formulation for n=" << n << ", p=" << p << "\n";
    return 1;
  }
  os << "best: " << sel.best << " (T_p=" << format_number(sel.t_parallel, 5)
     << ", E=" << format_number(sel.efficiency, 3) << ", " << mp.label << ")\n";
  return 0;
}

int cmd_run(const CliArgs& args, std::ostream& os) {
  const std::string algorithm = args.get("algorithm", "gk");
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto p = static_cast<std::size_t>(args.get_int("p", 64));
  const MachineParams mp = machine_from_args(args);
  const AlgorithmChoice choice = algorithm_from_args(args, algorithm, mp, "run");
  const auto pt = validate_algorithm(
      *choice.impl, *choice.model, n, p,
      static_cast<std::uint64_t>(args.get_int("seed", 42)));
  write_metrics_out(args, os, "run",
                    [&pt](std::ostream& s, MetricsExportFormat format) {
                      write_metrics(pt.report.metrics, format, s);
                    });
  if (args.get("format", "aligned") == "json") {
    // One JSON object: the full simulated RunReport plus the model
    // comparison and product check that `run` adds on top of it.
    write_output(args, os, "run", "run report", [&pt](std::ostream& s) {
      s << "{\"report\":";
      pt.report.write_json(s);
      s << ",\"model_t_parallel\":" << json_number(pt.model_t_parallel)
        << ",\"ratio\":" << json_number(pt.ratio())
        << ",\"max_numeric_error\":" << json_number(pt.max_numeric_error)
        << ",\"product_correct\":" << (pt.product_correct ? "true" : "false")
        << "}\n";
    });
    return pt.product_correct ? 0 : 1;
  }
  os << algorithm << ": n=" << n << " p=" << p << " (" << mp.label << ")\n"
     << "  T_p (simulated) = " << format_number(pt.sim_t_parallel, 6) << "\n"
     << "  T_p (model)     = " << format_number(pt.model_t_parallel, 6)
     << "  (ratio " << format_number(pt.ratio(), 4) << ")\n"
     << "  speedup         = "
     << format_number(std::pow(double(n), 3.0) / pt.sim_t_parallel, 5) << "\n"
     << "  efficiency      = "
     << format_number(std::pow(double(n), 3.0) / pt.sim_t_parallel / double(p), 4)
     << "\n"
     << "  product check   = "
     << (pt.product_correct ? "ok" : "MISMATCH") << " (max error "
     << format_number(pt.max_numeric_error, 2) << ")\n";
  return pt.product_correct ? 0 : 1;
}

int cmd_iso(const CliArgs& args, std::ostream& os) {
  const std::string algorithm = args.get("algorithm", "gk");
  const double efficiency = args.get_double("efficiency", 0.7);
  const MachineParams mp = machine_from_args(args);
  const auto model = algorithm_from_args(args, algorithm, mp, "iso").model;
  Table t({"p", "n needed", "W = n^3", "W/p"});
  std::vector<double> ps;
  for (double p = args.get_double("pmin", 8);
       p <= args.get_double("pmax", 1e9); p *= 8) {
    ps.push_back(p);
    const auto n = iso_matrix_order(*model, p, efficiency);
    t.begin_row().add(format_si(p, 3));
    if (n) {
      const double w = std::pow(*n, 3.0);
      t.add_num(*n, 4).add(format_si(w, 3)).add(format_si(w / p, 3));
    } else {
      t.add("unreachable").add("-").add("-");
    }
  }
  print_table(args, t, os);
  const auto fit = fit_isoefficiency_exponent(*model, efficiency, ps);
  if (fit.points >= 2) {
    os << "fitted: W ~ p^" << format_number(fit.exponent, 3) << " at E = "
       << efficiency << " (" << mp.label << ")\n";
  }
  return 0;
}

int cmd_regions(const CliArgs& args, std::ostream& os) {
  if (args.has("n") && args.has("p")) {
    // Dual view: fixed workload, sweep the machine's (t_s, t_w) plane.
    require(!args.has("with-bounds"),
            "regions: --with-bounds applies to the (p, n) map, not the "
            "(t_s, t_w) dual view");
    const MachineSpaceMap map(
        args.get_double("n", 64), args.get_double("p", 512),
        args.get_double("tsmin", 0.1), args.get_double("tsmax", 1000.0),
        static_cast<std::size_t>(args.get_int("tscells", 72)),
        args.get_double("twmin", 0.2), args.get_double("twmax", 30.0),
        static_cast<std::size_t>(args.get_int("twcells", 24)));
    map.print_ascii(os);
    return 0;
  }
  const MachineParams mp = machine_from_args(args);
  // --with-25d extends the paper's four-way comparison with the 2.5D
  // formulation's replication envelope (region letter 'e'); --with-bounds
  // upper-cases the cells where the winner is communication-optimal.
  const RegionMap map(mp, args.get_double("pmin", 1.0),
                      args.get_double("pmax", 1e9),
                      static_cast<std::size_t>(args.get_int("pcells", 72)),
                      args.get_double("nmin", 1.0),
                      args.get_double("nmax", 1e5),
                      static_cast<std::size_t>(args.get_int("ncells", 36)),
                      args.get_bool("with-25d", false),
                      args.get_bool("with-bounds", false));
  map.print_ascii(os);
  return 0;
}

int cmd_bounds(const CliArgs& args, std::ostream& os) {
  // Strict flag validation up front: unlike the presentational commands,
  // bounds is an oracle surface, so a typo must fail loudly, not fall back.
  const std::string format = args.get("format", "aligned");
  require(format == "aligned" || format == "csv" || format == "markdown" ||
              format == "json",
          "bounds: --format must be aligned, csv, markdown or json, got '" +
              format + "'");
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto p = static_cast<std::size_t>(args.get_int("p", 64));
  require(n >= 1, "bounds: --n must be >= 1");
  require(p >= 1, "bounds: --p must be >= 1");
  const double machine_memory = args.get_double("memory", 1048576.0);
  require(machine_memory > 0.0, "bounds: --memory must be positive (words "
                                "of storage per processor)");
  const bool measured = args.get_bool("measured", false);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const MachineParams mp = machine_from_args(args);

  const auto& reg = default_registry();
  std::vector<std::string> names;
  const std::string algo = args.get("algo", "all");
  if (algo == "all") {
    names = reg.names();
  } else {
    require(reg.contains(algo), "bounds: unknown --algo '" + algo +
                                    "' (try one of: hpmm list)");
    names.push_back(algo);
  }

  const double nd = static_cast<double>(n);
  const double pd = static_cast<double>(p);
  std::vector<std::string> headers = {
      "algorithm",     "class",      "M/proc",     "mem-dep/proc",
      "mem-indep/proc", "floor/proc", "msgs/proc",  "total floor",
      "ss p_min",      "ss p_max"};
  if (measured) {
    headers.push_back("measured words");
    headers.push_back("ratio");
  }
  Table t(std::move(headers));
  for (const std::string& name : names) {
    const AlgorithmChoice choice = algorithm_from_args(args, name, mp, "bounds");
    const BoundsClass cls = bounds_class(name);
    const StrongScalingRange ss =
        strong_scaling_range(cls, nd, machine_memory);
    t.begin_row().add(name).add(to_string(cls));
    if (choice.model->applicable(nd, pd)) {
      const double mem = choice.model->memory_per_proc(nd, pd);
      const CommLowerBound b = comm_lower_bound(nd, pd, mem);
      t.add(format_si(mem, 3))
          .add(format_si(b.words_mem_dependent, 3))
          .add(format_si(b.words_mem_independent, 3))
          .add(format_si(b.words, 3))
          .add(format_si(b.latency, 3))
          .add(format_si(b.total_words, 3));
    } else {
      for (int i = 0; i < 6; ++i) t.add("-");
    }
    t.add(format_si(ss.p_min, 3)).add(format_si(ss.p_max, 3));
    if (measured) {
      if (choice.impl->applicable(n, p)) {
        const DistanceFromOptimal d =
            distance_from_optimal(*choice.impl, *choice.model, n, p, seed);
        t.add(format_si(d.measured_total_words, 3));
        t.add(std::isfinite(d.ratio) ? format_number(d.ratio, 4)
                                     : std::string("inf"));
      } else {
        t.add("-").add("-");
      }
    }
  }
  print_table(args, t, os);
  if (format != "json") {
    os << "bounds at n=" << n << ", p=" << p
       << "; M/proc = each formulation's own footprint, strong-scaling range "
          "at --memory="
       << format_si(machine_memory, 3) << " words ("
       << to_string(BoundsClass::k2D) << " degenerate at 3n^2/M, "
       << to_string(BoundsClass::k25D) << " up to (3n^2/M)^(3/2), "
       << to_string(BoundsClass::k3D) << " at that endpoint)\n";
  }
  return 0;
}

int cmd_crossover(const CliArgs& args, std::ostream& os) {
  const std::string a = args.get("a", "gk");
  const std::string b = args.get("b", "cannon");
  const MachineParams mp = machine_from_args(args);
  const auto model_a = algorithm_from_args(args, a, mp, "crossover").model;
  const auto model_b = algorithm_from_args(args, b, mp, "crossover").model;
  Table t({"p", "n_EqualTo(" + a + " vs " + b + ")"});
  for (double p = args.get_double("pmin", 4);
       p <= args.get_double("pmax", 1e9); p *= 8) {
    const auto n = n_equal_overhead(*model_a, *model_b, p);
    t.begin_row().add(format_si(p, 3)).add(
        n ? format_number(*n, 4) : std::string("- (one dominates)"));
  }
  print_table(args, t, os);
  os << "below the curve " << a << " has the smaller overhead; above it " << b
     << " does (" << mp.label << ")\n";
  return 0;
}

int cmd_trace(const CliArgs& args, std::ostream& os) {
  const std::string algorithm = args.get("algorithm", "gk");
  const auto n = static_cast<std::size_t>(args.get_int("n", 16));
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  MachineParams mp = machine_from_args(args);
  mp.trace = true;
  const AlgorithmChoice choice =
      algorithm_from_args(args, algorithm, mp, "trace");
  const ParallelMatmul& impl = *choice.impl;
  impl.check_applicable(n, p);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const MatmulResult result = impl.run(a, b, p, mp);
  const std::string format = args.get("format", "gantt");
  if (format == "chrome") {
    // Chrome trace-event JSON: load into chrome://tracing or Perfetto.
    const std::string what = "chrome trace (" +
                             std::to_string(result.trace.events().size()) +
                             " events)";
    write_output(args, os, "trace", what, [&result](std::ostream& s) {
      result.trace.write_chrome(s);
    });
    return 0;
  }
  require(format == "gantt",
          "trace: --format must be gantt or chrome, got '" + format + "'");
  os << result.report.summary() << "\n";
  result.trace.print_gantt(
      os, static_cast<std::size_t>(args.get_int("width", 72)),
      static_cast<std::size_t>(args.get_int("procs", 16)));
  return 0;
}

int cmd_profile(const CliArgs& args, std::ostream& os) {
  const std::string algorithm = args.get("algorithm", "cannon");
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto p = static_cast<std::size_t>(args.get_int("p", 16));
  MachineParams mp = machine_from_args(args);
  // Minimal fault scenario flags so `profile --causal=1` can attribute
  // retry and straggler spans on the measured critical path (the full
  // scenario surface lives on `inject`).
  if (args.has("drop") || args.has("stragglers")) {
    auto plan = std::make_shared<FaultPlan>();
    plan->seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
    plan->drop_prob = args.get_double("drop", 0.0);
    plan->reliable = true;
    for (const auto& [pid, factor] : parse_pid_values(
             args.get("stragglers", ""), "profile: --stragglers")) {
      plan->stragglers.push_back({pid, factor});
    }
    mp.faults = std::move(plan);
  }
  const AlgorithmChoice choice =
      algorithm_from_args(args, algorithm, mp, "profile");
  choice.impl->check_applicable(n, p);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);

  reset_kernel_wall_profile();
  enable_kernel_wall_profile(true);
  const auto wall_start = std::chrono::steady_clock::now();
  const MatmulResult result = choice.impl->run(a, b, p, mp);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  enable_kernel_wall_profile(false);
  const KernelWallProfile kwp = kernel_wall_profile();
  const RunReport& report = result.report;

  // Per-phase table: busy-time maxima over processors, traffic totals, and
  // the slice of the critical path each phase accounts for (slices sum to
  // T_p).
  Table phases({"phase", "compute", "comm", "idle", "messages", "words",
                "T_p slice"});
  for (const PhaseBreakdown& ph : report.phases) {
    phases.begin_row()
        .add(ph.name.empty() ? "(unphased)" : ph.name)
        .add_num(ph.max_compute_time, 6)
        .add_num(ph.max_comm_time, 6)
        .add_num(ph.max_idle_time, 6)
        .add(std::to_string(ph.messages))
        .add(std::to_string(ph.words))
        .add_num(ph.path.total(), 6);
  }

  // Overhead reconciliation: the measured critical-path terms against the
  // analytical model's terms. Evaluating the model with t_w = 0 isolates
  // its startup (t_s + hop) term; t_s = t_h = 0 isolates the per-word t_w
  // term (exact for the paper's linear comm models).
  MachineParams mp_startup = mp;
  mp_startup.t_w = 0.0;
  MachineParams mp_word = mp;
  mp_word.t_s = 0.0;
  mp_word.t_h = 0.0;
  const auto model_startup =
      algorithm_from_args(args, algorithm, mp_startup, "profile").model;
  const auto model_word =
      algorithm_from_args(args, algorithm, mp_word, "profile").model;
  const double nd = static_cast<double>(n);
  const double pd = static_cast<double>(p);
  const PathTerms& cp = report.critical_path;

  Table rec({"term", "measured", "model", "ratio"});
  const auto rec_row = [&rec](const std::string& term, double measured,
                              double model) {
    rec.begin_row().add(term).add_num(measured, 6);
    if (model > 0.0) {
      rec.add_num(model, 6).add_num(measured / model, 4);
    } else {
      rec.add(measured == 0.0 ? "0" : "-").add("-");
    }
  };
  rec_row("compute (n^3/p)", cp.compute, nd * nd * nd / pd);
  rec_row("startup (t_s)", cp.startup, model_startup->comm_time(nd, pd));
  rec_row("word (t_w)", cp.word, model_word->comm_time(nd, pd));
  if (cp.modeled > 0.0) rec_row("modeled collectives", cp.modeled, 0.0);
  if (cp.other > 0.0) rec_row("other (delays/retries)", cp.other, 0.0);
  // Distance from optimal: total measured words against the communication
  // lower bound at this formulation's memory footprint (analysis/bounds).
  // The ratio column is the distance-from-optimal scoreboard entry; >= 1
  // always, and close to 1 only for communication-optimal formulations.
  const DistanceFromOptimal dist = distance_from_measured(
      *choice.model, nd, pd, static_cast<double>(report.total_words));
  rec_row("words vs lower bound", dist.measured_total_words,
          dist.bound.total_words);

  write_output(args, os, "profile", "profile report", [&](std::ostream& s) {
    s << algorithm << ": n=" << n << " p=" << p << " (" << mp.label << ")\n";
    print_table(args, phases, s);
    print_table(args, rec, s);
    s << "T_p = " << format_number(report.t_parallel, 6)
      << " (critical path sums to " << format_number(cp.total(), 6) << ")\n";
    // Measured (causal-DAG) critical path against the model-term chain:
    // both decompose T_p into the same terms, so on a fault-free run the
    // totals agree to rounding (docs/observability.md).
    if (report.causal.enabled) {
      const CausalSummary& ca = report.causal;
      s << "causal: " << ca.spans << " spans ("
        << (ca.complete ? "complete" : "sampled") << ", " << ca.bytes
        << " bytes)\n";
      if (ca.complete) {
        const PathTerms& m = ca.measured;
        s << "  measured path: " << ca.path_spans << " spans, compute "
          << format_number(m.compute, 6) << " + startup "
          << format_number(m.startup, 6) << " + word "
          << format_number(m.word, 6);
        if (m.modeled > 0.0) s << " + modeled " << format_number(m.modeled, 6);
        if (m.other > 0.0) s << " + other " << format_number(m.other, 6);
        s << " = " << format_number(m.total(), 6) << "\n";
        s << "  measured vs T_p delta: "
          << format_number(std::abs(m.total() - report.t_parallel), 3) << "\n";
        if (ca.fault_overhead > 0.0) {
          s << "  fault overhead on path: "
            << format_number(ca.fault_overhead, 6) << "\n";
        }
        for (const CausalSpanNote& note : ca.fault_spans) {
          s << "    " << note.kind << " span: pid " << note.pid;
          if (!note.phase.empty()) s << " phase " << note.phase;
          s << " [" << format_number(note.start, 6) << ", "
            << format_number(note.end, 6) << "] +"
            << format_number(note.overhead, 6) << "\n";
        }
      }
    }
    // Engine self-telemetry: what the simulator itself spent to produce the
    // numbers above (arena occupancy, event throughput, host pool).
    const EngineTelemetry& eng = report.engine;
    s << "engine: " << eng.events << " events ("
      << format_number(eng.events_per_vtime, 4) << "/vtime), arena "
      << eng.arena_bytes << " bytes, inbox " << eng.inbox_pending << "/"
      << eng.inbox_slots << " slots pending (high-water "
      << eng.inbox_high_water << ", free-list " << eng.inbox_free << ")\n";
    if (eng.pool_threads > 0) {
      s << "engine pool: " << eng.pool_threads << " threads, "
        << eng.pool_batches << " batches, " << eng.pool_items << " items, "
        << format_number(eng.pool_busy_seconds * 1e3, 4) << " ms busy\n";
    }
    s << "host wall: " << format_number(wall_seconds * 1e3, 4) << " ms";
    if (kwp.calls > 0) {
      s << " (packed kernel: " << kwp.calls << " calls, "
        << format_number(kwp.seconds * 1e3, 4) << " ms)";
    }
    s << "\n";
  });
  return 0;
}

int cmd_reproduce(const CliArgs& args, std::ostream& os) {
  const std::string which = args.get("experiment", "all");
  std::vector<ExperimentResult> results;
  if (which == "all") {
    results = ExperimentSuite::run_all();
  } else {
    require(ExperimentSuite::contains(which),
            "reproduce: unknown experiment '" + which +
                "' (try table1, fig1..fig5, sec6, sec7, sec8, validation)");
    results.push_back(ExperimentSuite::run(which));
  }
  ExperimentSuite::print_report(results, os);
  for (const auto& r : results) {
    if (!r.all_passed()) return 1;
  }
  return 0;
}

int cmd_inject(const CliArgs& args, std::ostream& os) {
  if (args.has("help")) {
    os << "usage: hpmm inject --algorithm=<name> --n=<order> --p=<procs> "
          "[scenario flags]\n"
          "simulate one multiplication on a faulty virtual machine, verify "
          "the product\nand report the resilience overhead.\n"
          "scenario flags:\n"
          "  --seed=<u64>        fault-plan seed; same seed => same faults "
          "(default 1)\n"
          "  --drop=<prob>       per-transmission message drop probability\n"
          "  --dup=<prob>        duplicate-delivery probability\n"
          "  --delay=<prob>      delayed-delivery probability\n"
          "  --delay-factor=<x>  extra latency of a delayed message, in "
          "message times (default 1)\n"
          "  --corrupt=<prob>    in-flight single-bit payload corruption "
          "probability\n"
          "  --abft=off|detect|correct\n"
          "                      checksum-guard blocks in transit "
          "(Huang-Abraham row/column sums)\n"
          "  --stragglers=pid:factor[,pid:factor...]\n"
          "                      slow those processors' compute by the "
          "factor\n"
          "  --failstop=pid:time[,pid:time...]\n"
          "                      fail-stop a processor at a virtual time; "
          "the run re-plans onto\n"
          "                      the largest feasible surviving "
          "configuration instead of aborting\n"
          "  --reliable=0|1      ack/timeout/retransmit protocol (default "
          "1; 0 makes drops fatal)\n"
          "  --retries=<k> --rto=<x> --backoff=<x>\n"
          "                      retransmission budget, timeout in message "
          "times, backoff factor\n"
          "  --data-seed=<u64>   seed for the random input matrices\n"
          "machine selection: --machine=ncube2|future|cm2|cm5|ideal or "
          "--ts=.. --tw=..\n"
          "local compute: --kernel=<name> --threads=<n> (host wall-clock "
          "only)\n";
    return 0;
  }
  const std::string algorithm = args.get("algorithm", "cannon");
  const auto n = static_cast<std::size_t>(args.get_int("n", 64));
  const auto p = static_cast<std::size_t>(args.get_int("p", 16));
  const auto& reg = default_registry();
  require(reg.contains(algorithm),
          "inject: unknown algorithm '" + algorithm + "'");

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  plan->drop_prob = args.get_double("drop", 0.0);
  plan->duplicate_prob = args.get_double("dup", 0.0);
  plan->delay_prob = args.get_double("delay", 0.0);
  plan->delay_factor = args.get_double("delay-factor", 1.0);
  plan->corrupt_prob = args.get_double("corrupt", 0.0);
  plan->abft = abft_from_args(args);
  plan->reliable = args.get_bool("reliable", true);
  plan->rto_factor = args.get_double("rto", 2.0);
  plan->rto_backoff = args.get_double("backoff", 2.0);
  plan->max_retries = static_cast<std::uint32_t>(args.get_int("retries", 12));
  for (const auto& [pid, factor] :
       parse_pid_values(args.get("stragglers", ""), "inject: --stragglers")) {
    plan->stragglers.push_back({pid, factor});
  }
  for (const auto& [pid, time] :
       parse_pid_values(args.get("failstop", ""), "inject: --failstop")) {
    plan->failstops.push_back({pid, time});
  }

  MachineParams mp = machine_from_args(args);
  mp.faults = plan;

  reg.implementation(algorithm).check_applicable(n, p);
  Rng rng(static_cast<std::uint64_t>(args.get_int("data-seed", 42)));
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);

  const ResilientRun run = run_resilient(a, b, p, mp, algorithm);

  const Matrix reference = multiply(a, b);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      max_err = std::max(max_err, std::abs(run.result.c(i, j) - reference(i, j)));
    }
  }
  const bool ok = max_err <= product_tolerance(n);

  os << "inject: " << algorithm << " n=" << n << " p=" << p << " ("
     << mp.label << ")\n"
     << "  plan            = " << plan->summary() << "\n";
  for (const auto& ev : run.degradations) {
    os << "  degradation     = processor " << ev.failed_pid
       << " fail-stopped at t=" << format_number(ev.failed_at, 6)
       << "; re-planned " << ev.procs_before << " -> " << ev.procs_after
       << " procs (" << ev.algorithm << ")\n";
  }
  os << "  completed on    = " << run.algorithm << " with " << run.procs
     << " procs\n"
     << "  T_p (simulated) = "
     << format_number(run.result.report.t_parallel, 6) << "\n";
  if (run.wasted_time > 0.0) {
    os << "  wasted (fails)  = " << format_number(run.wasted_time, 6) << "\n";
  }
  const FaultStats& fs = run.result.report.faults;
  if (fs.any()) os << "  faults          = " << fs.summary() << "\n";
  os << "  product check   = " << (ok ? "ok" : "MISMATCH") << " (max error "
     << format_number(max_err, 2) << ")\n";
  return ok ? 0 : 1;
}

namespace {

/// Strict non-negative integer flag for `serve`: rejects values below `min`
/// before the cast to an unsigned type can silently wrap them.
std::int64_t serve_int_flag(const CliArgs& args, const std::string& key,
                            std::int64_t fallback, std::int64_t min) {
  const std::int64_t v = args.get_int(key, fallback);
  require(v >= min, "serve: --" + key + " must be >= " + std::to_string(min) +
                        ", got " + std::to_string(v));
  return v;
}

}  // namespace

int cmd_serve(const CliArgs& args, std::ostream& os) {
  if (args.has("help")) {
    os << "usage: hpmm serve [stream flags] [envelope flags] "
          "[--format=aligned|csv|markdown|json] [--out=FILE]\n"
          "replay a multi-tenant request stream through the robustness "
          "envelope\n(admission control, circuit breakers, deadlines, "
          "seeded backoff retries,\nplan cache) and print the per-tenant "
          "report. Deterministic: the same\nstream, seed and options give a "
          "byte-identical report for any --threads.\n"
          "request stream (pick one):\n"
          "  --script=FILE       scripted stream (one 'request key=value "
          "...' per line)\n"
          "  --scenario=noisy-neighbor|thundering-herd|straggler-storm\n"
          "                      built-in chaos scenario (--healthy, "
          "--noisy, --gap,\n"
          "                      --corrupt, --noisy-faulty=0|1, "
          "--max-slowdown)\n"
          "  (default)           seeded generator: --requests=<k> "
          "--tenants=<k>\n"
          "                      --mean-gap=<t> --fault-fraction=<f> "
          "--machine=<name>\n"
          "envelope flags:\n"
          "  --slots=<k>         concurrent service slots (default 4)\n"
          "  --threads=<k>       host threads for speculative simulation "
          "(default 1)\n"
          "  --queue=<k>         server-wide admission queue bound (default "
          "16)\n"
          "  --quota=<k>         per-tenant in-flight quota (default 8)\n"
          "  --breaker-threshold=<k> --breaker-cooldown=<t>\n"
          "                      consecutive failures that trip a tenant's "
          "breaker,\n"
          "                      virtual time before a half-open probe\n"
          "  --retries=<k>       retry budget after detected-fault failures "
          "(default 2)\n"
          "  --backoff-base=<t> --backoff-factor=<x> --backoff-jitter=<f>\n"
          "                      exponential backoff schedule for retries\n"
          "  --deadline-factor=<x>\n"
          "                      abort a request past x times its model-"
          "predicted T_p\n"
          "  --seed=<u64>        workload + retry-jitter seed (default 1)\n"
          "  --cache=<k>         plan cache capacity (default 64)\n"
          "  --log=0|1           keep per-request records in the JSON "
          "report (default 1)\n"
          "observability (DESIGN.md 13):\n"
          "  --journal=FILE      write the decision journal (JSONL, one "
          "event per line)\n"
          "  --timeline=FILE     write a Chrome-trace/Perfetto timeline "
          "(slot + tenant lanes)\n"
          "  --window=<t>        virtual-time window of the per-tenant "
          "series (default 50000)\n"
          "  --slo-p99=<t> --slo-availability=<f>\n"
          "                      default per-tenant objectives (script "
          "'slo' lines override)\n"
          "  --slo-strict        exit 3 when any tenant's objective is "
          "breached\n"
          "  --metrics-out=FILE  write the final metrics registry "
          "(.prom = Prometheus text\n"
          "                      exposition, .json = OTLP-style JSON)\n"
          "  --metrics-every=<t> stream virtual-time-stamped snapshots "
          "into --metrics-out\n"
          "                      (byte-identical for every --threads)\n";
    return 0;
  }

  // Request stream: script file, named chaos scenario, or seeded generator.
  const std::string script = args.get("script", "");
  const std::string scenario = args.get("scenario", "");
  require(script.empty() || scenario.empty(),
          "serve: --script and --scenario are mutually exclusive");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::vector<TenantRequest> requests;
  SloTargets slos;
  if (!script.empty()) {
    std::ifstream in(script);
    require(in.good(), "serve: cannot open --script file '" + script + "'");
    ServeWorkload workload = parse_serve_workload(in);
    requests = std::move(workload.requests);
    slos = std::move(workload.slos);
  } else if (scenario == "noisy-neighbor") {
    NoisyNeighborOptions o;
    o.healthy_requests = static_cast<std::size_t>(serve_int_flag(
        args, "healthy", static_cast<std::int64_t>(o.healthy_requests), 0));
    o.noisy_requests = static_cast<std::size_t>(serve_int_flag(
        args, "noisy", static_cast<std::int64_t>(o.noisy_requests), 0));
    o.gap = args.get_double("gap", o.gap);
    o.corrupt_prob = args.get_double("corrupt", o.corrupt_prob);
    o.seed = seed;
    o.machine = args.get("machine", o.machine);
    o.noisy_faulty = args.get_bool("noisy-faulty", true);
    requests = noisy_neighbor_scenario(o);
  } else if (scenario == "thundering-herd") {
    ThunderingHerdOptions o;
    o.requests = static_cast<std::size_t>(serve_int_flag(
        args, "requests", static_cast<std::int64_t>(o.requests), 0));
    o.tenants = static_cast<std::size_t>(serve_int_flag(
        args, "tenants", static_cast<std::int64_t>(o.tenants), 1));
    o.machine = args.get("machine", o.machine);
    requests = thundering_herd_scenario(o);
  } else if (scenario == "straggler-storm") {
    StragglerStormOptions o;
    o.requests = static_cast<std::size_t>(serve_int_flag(
        args, "requests", static_cast<std::int64_t>(o.requests), 1));
    o.gap = args.get_double("gap", o.gap);
    o.max_slowdown = args.get_double("max-slowdown", o.max_slowdown);
    o.seed = seed;
    o.machine = args.get("machine", o.machine);
    requests = straggler_storm_scenario(o);
  } else {
    require(scenario.empty(),
            "serve: unknown --scenario '" + scenario +
                "' (try noisy-neighbor, thundering-herd, straggler-storm)");
    WorkloadOptions o;
    o.requests = static_cast<std::size_t>(serve_int_flag(
        args, "requests", static_cast<std::int64_t>(o.requests), 0));
    o.tenants = static_cast<std::size_t>(serve_int_flag(
        args, "tenants", static_cast<std::int64_t>(o.tenants), 1));
    o.seed = seed;
    o.mean_gap = args.get_double("mean-gap", o.mean_gap);
    o.fault_fraction = args.get_double("fault-fraction", o.fault_fraction);
    o.machine = args.get("machine", o.machine);
    requests = generate_workload(o);
  }

  ServeOptions opt;
  opt.slots = static_cast<std::size_t>(serve_int_flag(args, "slots", 4, 1));
  opt.threads =
      static_cast<unsigned>(serve_int_flag(args, "threads", 1, 1));
  opt.queue_capacity =
      static_cast<std::size_t>(serve_int_flag(args, "queue", 16, 1));
  opt.tenant_quota =
      static_cast<std::size_t>(serve_int_flag(args, "quota", 8, 1));
  opt.breaker_threshold = static_cast<unsigned>(
      serve_int_flag(args, "breaker-threshold", 3, 1));
  opt.breaker_cooldown = args.get_double("breaker-cooldown", 50000.0);
  opt.max_retries =
      static_cast<unsigned>(serve_int_flag(args, "retries", 2, 0));
  opt.backoff_base = args.get_double("backoff-base", 500.0);
  opt.backoff_factor = args.get_double("backoff-factor", 2.0);
  opt.backoff_jitter = args.get_double("backoff-jitter", 0.5);
  opt.deadline_factor = args.get_double("deadline-factor", 0.0);
  opt.seed = seed;
  opt.plan_cache_capacity =
      static_cast<std::size_t>(serve_int_flag(args, "cache", 64, 0));
  opt.keep_request_log = args.get_bool("log", true);
  opt.window = args.get_double("window", 50000.0);
  opt.metrics_every = args.get_double("metrics-every", 0.0);
  require(opt.metrics_every >= 0.0, "serve: --metrics-every must be >= 0");
  require(opt.metrics_every == 0.0 || args.has("metrics-out"),
          "serve: --metrics-every streams snapshots into --metrics-out, "
          "which is missing");
  // The CLI objectives become the "*" default; script `slo` lines keep
  // their per-tenant precedence over it.
  if (args.has("slo-p99")) slos["*"].p99 = args.get_double("slo-p99", 0.0);
  if (args.has("slo-availability")) {
    slos["*"].availability = args.get_double("slo-availability", 0.0);
  }
  opt.slos = std::move(slos);

  const Server server(opt);
  const ServeReport report = server.run(std::move(requests));

  const auto write_file = [](const std::string& flag, const std::string& path,
                             const std::function<void(std::ostream&)>& writer) {
    std::ofstream file(path);
    require(file.good(),
            "serve: cannot open --" + flag + " file '" + path + "'");
    writer(file);
    file.flush();
    require(file.good(), "serve: writing --" + flag + " file '" + path +
                             "' failed (disk full or device error?)");
  };
  const std::string journal_path = args.get("journal", "");
  if (!journal_path.empty()) {
    write_file("journal", journal_path, [&report](std::ostream& s) {
      report.journal.write_jsonl(s);
    });
    os << "wrote journal (" << report.journal.size() << " events) to "
       << journal_path << "\n";
  }
  const std::string timeline_path = args.get("timeline", "");
  if (!timeline_path.empty()) {
    write_file("timeline", timeline_path, [&report](std::ostream& s) {
      write_serve_timeline(s, report.journal, report.options.slots);
    });
    os << "wrote timeline to " << timeline_path << "\n";
  }
  // Metrics export: one final snapshot, or — with --metrics-every — the
  // virtual-time-stamped snapshot stream the serial event loop captured
  // (byte-identical for every --threads; docs/observability.md).
  write_metrics_out(
      args, os, "serve",
      [&report](std::ostream& s, MetricsExportFormat format) {
        if (report.metric_snapshots.empty()) {
          write_metrics(report.metrics, format, s);
          return;
        }
        if (format == MetricsExportFormat::kPrometheus) {
          for (const auto& snap : report.metric_snapshots) {
            s << "# snapshot t=" << json_number(snap.time) << "\n";
            write_prometheus(snap.metrics, s);
          }
          return;
        }
        s << "{\"snapshots\": [";
        bool first = true;
        for (const auto& snap : report.metric_snapshots) {
          if (!first) s << ", ";
          first = false;
          s << "{\"time\": " << json_number(snap.time) << ", \"metrics\": ";
          write_otlp_json(snap.metrics, s);
          s << "}";
        }
        s << "]}";
      });

  if (args.get("format", "aligned") == "json") {
    write_output(args, os, "serve", "serve report", [&report](std::ostream& s) {
      report.write_json(s);
      s << "\n";
    });
  } else {
    write_output(args, os, "serve", "serve report", [&](std::ostream& s) {
      print_table(args, report.tenant_table(), s);
      s << report.summary() << "\n";
    });
  }
  if (args.get_bool("slo-strict", false) && report.slo_breached()) {
    os << "serve: SLO breached:";
    for (const auto& v : report.slo) {
      if (v.breached()) os << " " << v.tenant;
    }
    os << "\n";
    return 3;
  }
  return 0;
}

int dispatch(const CliArgs& args, std::ostream& os, std::ostream& err) {
  const auto usage = [&err]() {
    err << "usage: hpmm <command> [--options]\n"
           "  list       registered formulations and applicability\n"
           "  machines   named machine parameter sets\n"
           "  select     pick the best formulation for --n, --p\n"
           "  run        simulate one multiplication (--algorithm, --n, --p)\n"
           "  iso        isoefficiency curve (--algorithm, --efficiency)\n"
           "  regions    ASCII best-algorithm map (Figures 1-3; --with-25d=1 "
           "adds the 2.5D regions,\n"
           "             --with-bounds=1 upper-cases communication-optimal "
           "cells)\n"
           "  bounds     communication lower bounds, strong-scaling ranges "
           "and\n"
           "             distance-from-optimal (--algo, --n, --p, --memory, "
           "--measured=1)\n"
           "  crossover  equal-overhead curve for a pair (--a, --b)\n"
           "  trace      simulate with tracing, print the Gantt chart\n"
           "             (--format=chrome [--out=FILE] writes trace-event "
           "JSON)\n"
           "  profile    per-phase time/traffic breakdown and overhead "
           "reconciliation\n"
           "  reproduce  check the paper's claims against this build\n"
           "  inject     simulate under injected faults (see inject --help)\n"
           "  serve      multi-tenant serving mode: deadlines, retries, "
           "admission\n"
           "             control, chaos scenarios (see serve --help)\n"
           "machine selection: --machine=ncube2|future|cm2|cm5|ideal or "
           "--ts=.. --tw=..\n"
           "cannon25d: --c=<replication factor> (power of two, default 2)\n"
           "local compute: --kernel=naive-ijk|cache-ikj|blocked|transposed-b|"
           "packed --threads=N\n"
           "               (host wall-clock only; simulated times are "
           "unaffected)\n"
           "output: --format=aligned|csv|markdown|json (run/serve "
           "--format=json print the full report)\n"
           "        --out=FILE (run --format=json, trace --format=chrome, "
           "profile, serve)\n"
           "observability: --causal=1 (span DAG + measured critical path; "
           "profile prints the\n"
           "               reconciliation), --metrics-out=FILE[.prom|.json] "
           "(run, serve),\n"
           "               serve --metrics-every=T (snapshot stream; see "
           "docs/observability.md)\n";
    return 2;
  };
  if (args.positionals().empty()) return usage();
  const std::string& cmd = args.positionals().front();
  try {
    // --with-bounds is a regions-only overlay; anywhere else it would be
    // silently ignored, which an oracle flag must never be.
    require(!args.has("with-bounds") || cmd == "regions",
            "--with-bounds: only the regions command draws the "
            "communication-optimality overlay");
    if (cmd == "list") return cmd_list(args, os);
    if (cmd == "machines") return cmd_machines(args, os);
    if (cmd == "select") return cmd_select(args, os);
    if (cmd == "run") return cmd_run(args, os);
    if (cmd == "iso") return cmd_iso(args, os);
    if (cmd == "regions") return cmd_regions(args, os);
    if (cmd == "bounds") return cmd_bounds(args, os);
    if (cmd == "crossover") return cmd_crossover(args, os);
    if (cmd == "trace") return cmd_trace(args, os);
    if (cmd == "profile") return cmd_profile(args, os);
    if (cmd == "reproduce") return cmd_reproduce(args, os);
    if (cmd == "inject") return cmd_inject(args, os);
    if (cmd == "serve") return cmd_serve(args, os);
  } catch (const PreconditionError& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const InternalError& e) {
    err << "internal error (please report): " << e.what() << "\n";
    return 2;
  }
  return usage();
}

}  // namespace hpmm::tools
