#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "machine/params.hpp"
#include "matrix/kernels.hpp"
#include "sim/causal.hpp"
#include "sim/fault.hpp"
#include "sim/message.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"
#include "topology/topology.hpp"
#include "util/metrics.hpp"

namespace hpmm {

/// Virtual-time multicomputer simulator.
///
/// Each of the p processors has a local clock, an inbox of delivered
/// messages, and accounting counters. Algorithms advance the machine through
/// two primitives:
///
///  * compute(pid, flops)   — charges `flops` multiply-add units to pid
///  * exchange(messages)    — one synchronous communication round; every
///                            message of m words costs t_s + t_w * m
///                            (Section 2's model; multi-hop and
///                            store-and-forward per MachineParams)
///
/// Timing rule for a round (see DESIGN.md): a sender is busy for the full
/// duration of each message it sends; a receiver's clock advances to
/// max(own availability, arrival), with the gap recorded as idle time.
/// Under PortModel::kOnePort a processor may send at most one message and
/// receive at most one message per round (a simultaneous send + receive is
/// allowed — the cost a wrap-around shift is charged in the paper). Under
/// kAllPort up to ports_per_proc() sends/receives proceed concurrently.
///
/// Real data (matrix blocks) moves with every message, so the numerical
/// result of a simulated algorithm can be checked exactly; time is the
/// paper's analytical model, applied message by message.
///
/// When MachineParams::faults carries an active FaultPlan, exchange()
/// additionally consults a deterministic FaultInjector: transmissions may be
/// dropped (and retried per the plan's reliable-messaging policy, the
/// timeouts and retransmissions charged in virtual time), duplicated
/// (suppressed by receiver-side de-duplication), delayed in flight, or have
/// one payload word bit-flipped; stragglers run compute and sends slower by
/// a clock-rate factor; fail-stopped processors raise ProcessorFailure from
/// any compute/exchange they would participate in. With no plan — or an
/// all-zero one — none of these paths execute and simulated times are
/// bit-identical to the ideal machine's.
class SimMachine {
 public:
  SimMachine(std::shared_ptr<const Topology> topology, MachineParams params);
  ~SimMachine();  // out of line: ThreadPool is forward-declared here
  SimMachine(SimMachine&&) noexcept;
  SimMachine& operator=(SimMachine&&) noexcept;

  std::size_t procs() const noexcept { return topology_->size(); }
  const Topology& topology() const noexcept { return *topology_; }
  const MachineParams& params() const noexcept { return params_; }

  /// Charge `flops` multiply-add units of useful computation to pid.
  void compute(ProcId pid, double flops);

  /// Convenience: run C += A * B on pid's data with the machine's
  /// ExecPolicy kernel (threading inside the kernel when exec.threads > 1)
  /// and charge its exact multiply-add count.
  void compute_multiply_add(ProcId pid, const Matrix& a, const Matrix& b,
                            Matrix& c);

  /// As above with an explicit kernel override.
  void compute_multiply_add(ProcId pid, const Matrix& a, const Matrix& b,
                            Matrix& c, Kernel kernel);

  /// One virtual processor's deferred local compute phase:
  /// C += sum_i A_i * B_i, the products applied in order (the summation
  /// order is part of the numerical contract).
  struct ComputeTask {
    ProcId pid = 0;
    Matrix* c = nullptr;
    std::vector<std::pair<const Matrix*, const Matrix*>> products;
  };

  /// Run a whole compute phase — one task per virtual processor, outputs
  /// disjoint — and charge each pid exactly as the equivalent sequence of
  /// compute_multiply_add calls would, in task order. The real numerics run
  /// concurrently on the host thread pool when exec.threads > 1 (virtual
  /// processors are independent between communication rounds), but the
  /// virtual-time accounting is serial and order-preserving, so simulated
  /// clocks, counters, traces and results are bit-identical for every
  /// thread count. ProcessorFailure surfaces exactly where the serial loop
  /// would raise it; numerics of later tasks may already have run by then,
  /// which is unobservable because a failed attempt's outputs are discarded.
  void compute_multiply_add_batch(const std::vector<ComputeTask>& tasks);

  /// One synchronous communication round. Port-model constraints are
  /// validated; payloads are delivered to the destinations' inboxes.
  void exchange(std::vector<Message> messages);

  /// Pop the (unique) pending message with `tag` from pid's inbox.
  /// Throws PreconditionError if absent.
  Message receive(ProcId pid, int tag);

  /// True when pid has a pending message with `tag`.
  bool has_message(ProcId pid, int tag) const;

  /// Number of undelivered messages across all inboxes (0 after a clean run).
  std::size_t pending_messages() const noexcept;

  /// The "clean run" invariant: every delivered message was received. Throws
  /// InternalError naming the first leftover message's tag and destination —
  /// algorithms call this before assembling their report.
  void assert_clean_run() const;

  /// Advance every processor to the maximum clock (a barrier); the gaps are
  /// recorded as idle time. Returns the barrier time.
  double synchronize();

  /// Advance every member of `group` to the group's max clock plus `time`,
  /// recorded as communication time. This is the charging primitive for
  /// *modeled* collectives (e.g. Johnsson-Ho broadcast) whose closed-form
  /// cost we take from the literature instead of simulating hop by hop.
  /// `words_per_member` books the data volume the collective moves through
  /// each member into the word/message accounting (one message per member
  /// when non-zero), so modeled phases still show up in total_words and the
  /// communication lower-bound oracle; the p x p traffic matrix is left
  /// untouched (no pairwise message ever exists).
  void charge_group_comm(std::span<const ProcId> group, double time,
                         std::uint64_t words_per_member = 0);

  /// Storage accounting hooks: algorithms register the blocks a processor
  /// holds so memory-efficiency claims (Sections 4.1/4.4) can be checked.
  void note_alloc(ProcId pid, std::uint64_t words);
  void note_free(ProcId pid, std::uint64_t words);

  double clock(ProcId pid) const;
  const ProcStats& stats(ProcId pid) const;

  /// Fault events observed so far (all zero without an active FaultPlan).
  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

  /// Record an ABFT checksum verification outcome (called by algorithms
  /// running with FaultPlan::abft enabled; see matrix/checksum.hpp).
  void note_abft(bool detected, bool corrected);

  /// The injector driving this machine's faults, or null when ideal.
  const FaultInjector* fault_injector() const noexcept {
    return injector_.get();
  }

  /// T_p: the maximum clock over all processors.
  double time() const noexcept;

  /// --- Phase attribution (DESIGN.md §9) ------------------------------
  ///
  /// Algorithms bracket their paper-named stages ("align", "shift",
  /// "broadcast", ...) with begin_phase/end_phase — normally via the
  /// PhaseScope RAII wrapper — and every trace event, per-phase accounting
  /// cell and critical-path term accrued inside the bracket is tagged with
  /// that phase. Scopes nest (the innermost wins) and reusing a name
  /// accumulates into the same phase. Attribution is pure metadata: clocks,
  /// results and traces are bit-identical with and without phases.
  using PhaseId = std::uint16_t;

  /// Open a phase; returns its id (interned by name, 0 is reserved for
  /// "no phase"). Prefer PhaseScope.
  PhaseId begin_phase(std::string_view name);

  /// Close the innermost open phase (throws when none is open).
  void end_phase();

  /// Id of the innermost open phase, 0 when none.
  PhaseId current_phase() const noexcept {
    return phase_stack_.empty() ? PhaseId{0} : phase_stack_.back();
  }

  /// Interned phase names; entry 0 is the "" default.
  const std::vector<std::string>& phase_names() const noexcept {
    return phase_names_;
  }

  /// --- Metrics -------------------------------------------------------

  /// The machine's metrics registry. exchange() feeds the message-size,
  /// hop-count and per-hop-latency histograms plus "sim.*" counters;
  /// collectives add "collective.*" invocation counters; algorithms and
  /// tools may register their own instruments.
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Words moved per directed processor pair over the whole run. Empty when
  /// traffic capture is off (TrafficCapture::kOff, or kAuto above the p
  /// threshold); traffic_captured() says which.
  const TrafficMatrix& traffic() const noexcept { return traffic_; }

  /// Whether exchange() is accumulating the traffic matrix this run.
  bool traffic_captured() const noexcept { return traffic_on_; }

  /// The happens-before span DAG recorded this run, or null unless
  /// MachineParams::causal was set (sim/causal.hpp). Recording honours the
  /// trace_sample gate and is independent of the metrics capture mode, so
  /// the DAG is byte-identical across kFull/kAggregate and host threads.
  const CausalGraph* causal() const noexcept { return causal_.get(); }

  /// Approximate resident bytes of the simulator state itself: processor
  /// stats, inboxes (including buffered payload words), phase/chain
  /// accounting, round scratch, trace events and the traffic matrix.
  /// Intended for the bytes-per-processor scalability sweeps (bench/
  /// sim_extreme.cpp); container overheads are estimated, not measured.
  std::uint64_t approx_footprint_bytes() const noexcept;

  /// Assemble a RunReport for a problem of useful work `w_useful` ( = n^3).
  RunReport report(std::string algorithm, std::size_t n, double w_useful,
                   bool keep_proc_stats = false) const;

  /// Record per-processor timelines (compute/send/wait spans) for Gantt
  /// rendering and utilization analysis. Off by default (zero overhead).
  void enable_tracing(bool on = true) { tracing_ = on; }
  bool tracing() const noexcept { return tracing_; }

  /// The recorded timeline (empty unless enable_tracing() was called before
  /// the run).
  Trace trace() const { return Trace(procs(), trace_events_, phase_names_); }

  /// Reset clocks, counters, inboxes and the trace.
  void reset();

 private:
  double message_cost(const Message& m, unsigned contention_load) const;
  /// The startup slice (t_s plus hop latency) of a message's base cost.
  double message_startup(const Message& m) const;
  PhaseStats& phase_cell(PhaseId phase, ProcId pid);
  /// Whole-machine per-phase totals (aggregate capture mode only).
  PhaseStats& phase_total(PhaseId phase);
  /// pid's critical-path cell for the currently open phase.
  PathTerms& chain_cell(ProcId pid);
  /// Seeded per-pid trace-sampling decision (stateless splitmix64 hash).
  bool trace_sampled(ProcId pid) const noexcept;
  /// Whether causal spans are recorded for pid this run.
  bool causal_on(ProcId pid) const noexcept {
    return causal_ != nullptr && (trace_all_ || trace_sampled(pid));
  }
  /// Append a delivered message to dst's inbox queue in the flat arena.
  void inbox_push(ProcId dst, Message&& m);
  void record(ProcId pid, TraceEvent::Kind kind, double start, double end,
              std::uint64_t words = 0);
  /// Throws ProcessorFailure if pid's clock has reached its fail-stop time.
  void check_alive(ProcId pid) const;
  /// Throws DeadlineExceeded if a deadline is set and pid's clock passed it.
  /// Called after every clock advance; a zero deadline disables the check
  /// (bit-identical behaviour to a machine without one).
  void check_deadline(ProcId pid) const {
    if (params_.deadline > 0.0 && stats_[pid].clock > params_.deadline) {
      throw DeadlineExceeded(pid, params_.deadline, stats_[pid].clock);
    }
  }

  std::shared_ptr<const Topology> topology_;
  MachineParams params_;
  /// Host threads for local numerics; non-null only when exec.threads > 1.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ProcStats> stats_;

  /// --- Flat arena inboxes (DESIGN.md §12) ----------------------------
  ///
  /// Delivered-but-unreceived messages live in one shared slot arena;
  /// each destination's queue is an index-linked list through it (FIFO, so
  /// receive() scans in exactly the order the old per-processor deques
  /// held). Freed slots recycle through a free list, so steady-state
  /// delivery allocates nothing and an idle processor costs two 4-byte
  /// indices instead of a ~500-byte empty deque — the difference between
  /// p ~ 10^6 fitting in memory or not.
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  struct InboxSlot {
    Message msg;
    std::uint32_t next = kNilSlot;
  };
  std::vector<InboxSlot> inbox_slots_;
  std::uint32_t inbox_free_ = kNilSlot;  ///< head of the free-slot list
  std::vector<std::uint32_t> inbox_head_;  ///< per pid; kNilSlot = empty
  std::vector<std::uint32_t> inbox_tail_;
  std::size_t pending_ = 0;  ///< undelivered messages across all inboxes
  /// Engine self-telemetry (EngineTelemetry in report.hpp): inbox
  /// high-water mark, charged-event count, and the host wall clock they
  /// rate against.
  std::uint64_t pending_high_water_ = 0;
  std::uint64_t events_ = 0;
  std::chrono::steady_clock::time_point wall_start_;

  /// --- Per-round scratch -----------------------------------------------
  ///
  /// exchange() used to allocate ~10 O(p) vectors per call and walk all p
  /// processors every round; at p ~ 10^6 that is the whole runtime. These
  /// arrays are allocated once, only entries of processors that actually
  /// participate in the current round are touched, and the participant
  /// list drives their cleanup at the next round's entry — exchange() is
  /// O(participants + messages) per call, and untouched processors' clocks
  /// stay lazily where they were.
  struct RoundScratch {
    std::vector<std::uint32_t> sends, recvs;          // per pid
    std::vector<double> send_busy, send_span, arrival_max;  // per pid
    /// Message index (into the round's message vector) that set the entry;
    /// kNoMessage when none. 64-bit so event counts can't wrap at scale.
    std::vector<std::size_t> arrival_msg, busiest_msg;  // per pid
    std::vector<std::uint8_t> in_round;  // per pid participation flag
    /// Touched pids, sorted ascending for the round's processor loops.
    /// Survives until the next round's entry, which uses it to clear the
    /// per-pid entries above — entry-time cleanup, so an exception thrown
    /// mid-round can't poison the following round.
    std::vector<ProcId> participants;
    // Per-message scratch, sized to the round's message count.
    std::vector<unsigned> load_factor;
    std::vector<std::uint8_t> deliver, deliver_dup;
    std::vector<double> msg_startup, msg_word, msg_other;
    /// Adopted chains, parallel to `participants` (full capture only).
    std::vector<std::vector<PathTerms>> adopted;
  };
  static constexpr std::size_t kNoMessage = static_cast<std::size_t>(-1);
  RoundScratch scratch_;

  bool tracing_ = false;
  /// trace_sample >= 1: record every processor (no hashing on the hot
  /// path). Otherwise trace_threshold_ is the 64-bit acceptance bound.
  bool trace_all_ = true;
  std::uint64_t trace_threshold_ = 0;
  std::vector<TraceEvent> trace_events_;
  /// Non-null only when params_.faults is an active plan; see fault.hpp.
  std::unique_ptr<FaultInjector> injector_;
  FaultStats fault_stats_;
  std::uint64_t exchange_round_ = 0;

  std::vector<std::string> phase_names_{std::string()};
  std::vector<PhaseId> phase_stack_;
  /// Aggregate capture mode (MetricsMode::kAggregate): keep per-phase
  /// *totals* only — phase_totals_ replaces phase_stats_ and chain_, and
  /// the message histograms are skipped. O(phases) accounting memory.
  bool aggregate_ = false;
  std::vector<PhaseStats> phase_totals_;
  /// Whether the traffic matrix is being accumulated (TrafficCapture).
  bool traffic_on_ = true;
  /// [phase][pid] busy-time/traffic accounting, lazily sized per phase.
  std::vector<std::vector<PhaseStats>> phase_stats_;
  /// [pid][phase] critical-path decomposition: each processor carries the
  /// phase-resolved cost terms of the dependency chain that produced its
  /// clock (waiting receivers and barrier laggards adopt the chain of the
  /// processor they waited on), so Sum over phases == clock for every pid.
  std::vector<std::vector<PathTerms>> chain_;
  /// Non-null only when params_.causal: the happens-before span DAG. Its
  /// hooks mirror the chain_ adoption logic exactly but run in both capture
  /// modes (the DAG is the aggregate mode's only critical-path record).
  std::unique_ptr<CausalGraph> causal_;
  MetricsRegistry metrics_;
  /// Hot-path instruments resolved once at construction — a map lookup per
  /// message would dominate at extreme p. MetricsRegistry guarantees
  /// reference stability for the registry's lifetime (std::map nodes), and
  /// reset() zeroes values without invalidating them.
  Histogram* h_msg_words_ = nullptr;
  Histogram* h_msg_hops_ = nullptr;
  Histogram* h_hop_latency_ = nullptr;
  Counter* c_messages_ = nullptr;
  Counter* c_words_ = nullptr;
  TrafficMatrix traffic_;
};

/// RAII phase bracket: `PhaseScope phase(machine, "shift");` tags everything
/// the machine does until end of scope.
class PhaseScope {
 public:
  PhaseScope(SimMachine& machine, std::string_view name) : machine_(machine) {
    machine_.begin_phase(name);
  }
  ~PhaseScope() { machine_.end_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  SimMachine& machine_;
};

}  // namespace hpmm
