#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/error.hpp"

namespace hpmm {

ThreadPool::ThreadPool(unsigned threads) {
  require(threads >= 1, "ThreadPool: need at least one thread");
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::drain(const std::function<void(std::size_t)>& body) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      body(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      body = body_;
    }
    drain(*body);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++workers_parked_;
    }
    batch_done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  ++wall_.batches;
  wall_.items += count;
  struct BusyTimer {  // charge the elapsed time even when body throws
    const std::chrono::steady_clock::time_point start;
    WallProfile& wall;
    ~BusyTimer() {
      wall.busy_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }
  } timer{t0, wall_};
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    workers_parked_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  work_ready_.notify_all();
  drain(body);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [&] { return workers_parked_ == workers_.size(); });
    body_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

}  // namespace hpmm
