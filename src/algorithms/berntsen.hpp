#pragma once

#include "algorithms/parallel_matmul.hpp"

namespace hpmm {

/// Berntsen's algorithm (Section 4.4): p = 2^{3q} processors with
/// p <= n^{3/2}. A is split into 2^q column slabs and B into 2^q row slabs;
/// the hypercube is split into 2^q subcubes of 2^{2q} processors, subcube s
/// computing the outer-product contribution A_s * B_s with Cannon's
/// algorithm on its internal 2^q x 2^q mesh. The 2^q partial products are
/// then summed across subcubes with a recursive-halving reduce-scatter,
/// leaving C distributed over all p processors.
///
/// Paper model (Eq. 5):
///   T_p = n^3/p + 2 t_s p^{1/3} + (1/3) t_s log p + 3 t_w n^2 / p^{2/3}.
///
/// The smallest communication overhead of the four compared algorithms, but
/// concurrency limited to p <= n^{3/2}, giving the worst isoefficiency,
/// Θ(p^2) (Section 5.2).
class BerntsenAlgorithm final : public ParallelMatmul {
 public:
  std::string name() const override { return "berntsen"; }
  void check_applicable(std::size_t n, std::size_t p) const override;
  MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                   const MachineParams& params) const override;
};

}  // namespace hpmm
