#include "algorithms/fox.hpp"

#include <cmath>

#include "matrix/block.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr int kTagBcastA = 1;
constexpr int kTagShiftB = 2;
constexpr int kTagPacket = 3;

}  // namespace

void FoxAlgorithm::check_applicable(std::size_t n, std::size_t p) const {
  require(p >= 1, "fox: need at least one processor");
  require(is_perfect_square(p), "fox: p must be a perfect square");
  require(p <= n * n, "fox: at most n^2 processors usable");
  const std::size_t sp = exact_sqrt(p);
  require(n % sp == 0, "fox: sqrt(p) must divide n");
  if (variant_ == Variant::kBinomialHypercube) {
    require(is_pow2(sp), "fox: sqrt(p) must be a power of two (hypercube rows)");
  }
}

void FoxAlgorithm::pipelined_row_broadcast(SimMachine& machine,
                                           const Torus2D& torus, std::size_t sp,
                                           const std::vector<Matrix>& a_blk,
                                           std::size_t iteration,
                                           std::vector<Matrix>& received) const {
  // Each root splits its block into up to sqrt(p) row-slices; packet j
  // leaves the root at round j and travels eastwards, one hop per round.
  // Every processor relays at most one packet per round (one-port safe).
  const std::size_t rows = a_blk.front().rows();
  const std::size_t cols = a_blk.front().cols();
  const std::size_t packets = std::min(sp, rows);
  const std::size_t chunk = (rows + packets - 1) / packets;

  // packet_store[pid][j]: packet j once it has arrived at pid.
  std::vector<std::vector<Matrix>> packet_store(
      sp * sp, std::vector<Matrix>(packets));
  for (std::size_t i = 0; i < sp; ++i) {
    const std::size_t root_col = (i + iteration) % sp;
    const Matrix& block = a_blk[i * sp + root_col];
    auto& store = packet_store[torus.rank(i, root_col)];
    for (std::size_t j = 0; j < packets; ++j) {
      const std::size_t r0 = j * chunk;
      const std::size_t h = std::min(chunk, rows - r0);
      store[j] = block.slice(r0, 0, h, cols);
    }
  }

  const std::size_t rounds = packets + sp - 2;  // last packet reaches d=sp-1
  for (std::size_t round = 0; sp > 1 && round < rounds; ++round) {
    std::vector<Message> msgs;
    for (std::size_t i = 0; i < sp; ++i) {
      const std::size_t root_col = (i + iteration) % sp;
      for (std::size_t d = 0; d + 1 < sp; ++d) {
        // Distance-d processor forwards packet (round - d), if it exists.
        if (round < d) continue;
        const std::size_t j = round - d;
        if (j >= packets) continue;
        const ProcId src = torus.rank(i, (root_col + d) % sp);
        const ProcId dst = torus.rank(i, (root_col + d + 1) % sp);
        msgs.emplace_back(src, dst, kTagPacket, packet_store[src][j]);
      }
    }
    if (msgs.empty()) continue;
    machine.exchange(std::move(msgs));
    for (std::size_t i = 0; i < sp; ++i) {
      const std::size_t root_col = (i + iteration) % sp;
      for (std::size_t d = 0; d + 1 < sp; ++d) {
        if (round < d) continue;
        const std::size_t j = round - d;
        if (j >= packets) continue;
        const ProcId dst = torus.rank(i, (root_col + d + 1) % sp);
        packet_store[dst][j] =
            std::move(machine.receive(dst, kTagPacket).blocks.front());
      }
    }
  }

  // Reassemble the broadcast block everywhere.
  for (std::size_t i = 0; i < sp; ++i) {
    for (std::size_t jcol = 0; jcol < sp; ++jcol) {
      const ProcId pid = torus.rank(i, jcol);
      Matrix block(rows, cols);
      std::size_t r0 = 0;
      for (std::size_t j = 0; j < packets; ++j) {
        block.paste(packet_store[pid][j], r0, 0);
        r0 += packet_store[pid][j].rows();
      }
      received[pid] = std::move(block);
    }
  }
}

MatmulResult FoxAlgorithm::run(const Matrix& a, const Matrix& b, std::size_t p,
                               const MachineParams& params) const {
  const std::size_t n = validated_order(a, b);
  check_applicable(n, p);
  const std::size_t sp = exact_sqrt(p);

  const Torus2D torus(sp, sp);
  std::shared_ptr<const Topology> topo;
  if (variant_ == Variant::kBinomialHypercube) {
    topo = std::make_shared<Hypercube>(Hypercube::with_procs(p));
  } else {
    topo = std::make_shared<Torus2D>(sp, sp);
  }
  SimMachine machine(topo, params);
  const auto rank = [sp](std::size_t i, std::size_t j) {
    return static_cast<ProcId>(i * sp + j);
  };
  // North neighbour on the logical wrap-around mesh.
  const auto north_of = [sp, &rank](std::size_t i, std::size_t j) {
    return rank((i + sp - 1) % sp, j);
  };

  const BlockGrid grid(n, n, sp, sp);
  std::vector<Matrix> a_blk = scatter_blocks(a, grid);
  std::vector<Matrix> b_blk = scatter_blocks(b, grid);
  std::vector<Matrix> c_blk(p);
  for (std::size_t idx = 0; idx < p; ++idx) {
    c_blk[idx] = Matrix(grid.block_rows(), grid.block_cols());
  }
  for (ProcId pid = 0; pid < p; ++pid) {
    machine.note_alloc(pid, 4 * grid.block_words());  // A, B, C + broadcast copy
  }

  for (std::size_t t = 0; t < sp; ++t) {
    // Row broadcasts: in row i, the processor at column (i + t) mod sqrt(p)
    // broadcasts its A block to the whole row.
    std::vector<Matrix> received(p);
    machine.begin_phase("broadcast");
    if (variant_ == Variant::kPipelinedRing) {
      pipelined_row_broadcast(machine, torus, sp, a_blk, t, received);
    } else {
      for (std::size_t i = 0; i < sp; ++i) {
        const std::size_t src_col = (i + t) % sp;
        std::vector<ProcId> group;
        group.reserve(sp);
        for (std::size_t j = 0; j < sp; ++j) group.push_back(rank(i, j));
        auto copies = broadcast_binomial(machine, group, src_col, kTagBcastA,
                                         a_blk[i * sp + src_col]);
        for (std::size_t j = 0; j < sp; ++j) {
          received[rank(i, j)] = std::move(copies[j]);
        }
      }
    }
    // Iterations are synchronous (the paper's default formulation): the
    // simulated time decomposes as sqrt(p) x (broadcast + multiply + roll).
    machine.synchronize();
    machine.end_phase();
    // Multiply the broadcast A block with the resident B block.
    std::vector<SimMachine::ComputeTask> phase;
    phase.reserve(p);
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        phase.push_back({rank(i, j),
                         &c_blk[i * sp + j],
                         {{&received[rank(i, j)], &b_blk[i * sp + j]}}});
      }
    }
    {
      PhaseScope scope(machine, "multiply");
      machine.compute_multiply_add_batch(phase);
    }
    // Roll B one step north (last iteration needs no roll).
    if (t + 1 == sp || sp == 1) continue;
    PhaseScope scope(machine, "roll");
    std::vector<Message> shift;
    shift.reserve(p);
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        shift.emplace_back(rank(i, j), north_of(i, j), kTagShiftB,
                           std::move(b_blk[i * sp + j]));
      }
    }
    machine.exchange(std::move(shift));
    for (std::size_t i = 0; i < sp; ++i) {
      for (std::size_t j = 0; j < sp; ++j) {
        b_blk[i * sp + j] =
            std::move(machine.receive(rank(i, j), kTagShiftB).blocks.front());
      }
    }
  }
  machine.synchronize();
  machine.assert_clean_run();

  MatmulResult result;
  result.c = gather_blocks(c_blk, grid);
  result.report = machine.report(name(), n, std::pow(static_cast<double>(n), 3.0));
  if (machine.tracing()) result.trace = machine.trace();
  return result;
}

}  // namespace hpmm
