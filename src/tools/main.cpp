// The `hpmm` command-line tool: the paper's algorithm library, selector and
// analysis machinery behind one binary. Run without arguments for usage.

#include <iostream>

#include "tools/commands.hpp"

int main(int argc, char** argv) {
  const hpmm::CliArgs args(argc, argv);
  return hpmm::tools::dispatch(args, std::cout, std::cerr);
}
