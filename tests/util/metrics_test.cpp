#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, KeepsLastSample) {
  Gauge g;
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsByUpperBound) {
  Histogram h({1.0, 4.0, 16.0});
  ASSERT_EQ(h.buckets(), 4u);  // three bounds + overflow
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive)
  h.observe(2.0);   // <= 4
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 103.5 / 4.0);
  EXPECT_TRUE(std::isinf(h.bucket_bound(3)));
}

TEST(Histogram, ResetKeepsBuckets) {
  Histogram h({2.0});
  h.observe(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.buckets(), 2u);
}

TEST(Histogram, ValidatesBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), PreconditionError);
}

TEST(Histogram, Pow2Bounds) {
  const auto bounds = Histogram::pow2_bounds(4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(TrafficMatrix, AccumulatesPerLink) {
  TrafficMatrix t(4);
  t.add(0, 1, 10);
  t.add(0, 1, 5);
  t.add(2, 3, 100);
  EXPECT_EQ(t.words(0, 1), 15u);
  EXPECT_EQ(t.words(1, 0), 0u);
  EXPECT_EQ(t.total_words(), 115u);
  EXPECT_EQ(t.links_used(), 2u);
  const auto busiest = t.busiest();
  EXPECT_EQ(busiest.src, 2u);
  EXPECT_EQ(busiest.dst, 3u);
  EXPECT_EQ(busiest.words, 100u);
}

TEST(TrafficMatrix, BusiestPrefersLowestPairOnTies) {
  TrafficMatrix t(4);
  t.add(3, 2, 7);
  t.add(0, 1, 7);
  EXPECT_EQ(t.busiest().src, 0u);
  EXPECT_EQ(t.busiest().dst, 1u);
}

TEST(TrafficMatrix, DenseExport) {
  TrafficMatrix t(2);
  t.add(1, 0, 9);
  const auto d = t.dense();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[1 * 2 + 0], 9u);
  EXPECT_EQ(d[0], 0u);
}

TEST(TrafficMatrix, ValidatesRange) {
  TrafficMatrix t(2);
  EXPECT_THROW(t.add(2, 0, 1), PreconditionError);
  EXPECT_THROW(t.words(0, 5), PreconditionError);
}

TEST(MetricsRegistry, FetchOrCreateByName) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.counter("a").add(1);  // same instrument
  EXPECT_EQ(reg.counter("a").value(), 4u);
  EXPECT_EQ(reg.find_counter("a")->value(), 4u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.find_gauge("g")->value(), 2.5);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
}

TEST(MetricsRegistry, NamesAreSorted) {
  MetricsRegistry reg;
  reg.counter("z");
  reg.counter("a");
  const auto names = reg.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "z");
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(1.0);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.find_histogram("h")->count(), 0u);
  EXPECT_EQ(reg.find_histogram("h")->buckets(), 2u);  // registration kept
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileValidatesRange) {
  Histogram h({1.0});
  EXPECT_THROW(h.quantile(-0.01), PreconditionError);
  EXPECT_THROW(h.quantile(1.01), PreconditionError);
}

TEST(Histogram, QuantileOverflowInterpolatesToMax) {
  Histogram h({1.0, 2.0});
  h.observe(10.0);
  h.observe(50.0);
  h.observe(30.0);
  // All three samples land in the overflow bucket. A rank there used to
  // collapse every quantile to the single largest sample; it now walks
  // (bounds.back(), max] linearly: rank ceil(0.5 * 3) = 2 of 3 gives
  // 2 + (50 - 2) * 2/3 = 34, and rank 3 reaches max exactly.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 34.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
}

TEST(Histogram, QuantileP99BeyondLastBucketEdge) {
  // Regression: 99 samples inside the buckets and one far outside. The p99
  // lands on the last in-bounds sample; the p100 must report the true max,
  // and quantiles between them interpolate instead of jumping to max.
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 99; ++i) h.observe(15.0);
  h.observe(5000.0);
  EXPECT_LE(h.quantile(0.99), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5000.0);
  const double p995 = h.quantile(0.995);
  EXPECT_GT(p995, 20.0);
  EXPECT_LE(p995, 5000.0);
}

TEST(Histogram, QuantileOverflowMaxAtBoundIsDefensive) {
  // max <= bounds.back() can only happen when every sample sits exactly on
  // the top bound; an overflow rank is then impossible, but the guard keeps
  // the estimate finite if it ever were.
  Histogram h({1.0, 50.0});
  h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
}

TEST(Histogram, QuantileBucketlessHistogramReportsMax) {
  // A default-constructed histogram has only the implicit overflow bucket
  // and no finite bound to interpolate from: every quantile of a non-empty
  // distribution must return the exactly-tracked max, never divide by an
  // empty bounds vector or read bounds_.back() of an empty vector.
  Histogram h;
  ASSERT_EQ(h.buckets(), 1u);
  h.observe(3.0);
  h.observe(7.0);
  h.observe(11.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 11.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 11.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 11.0);
}

TEST(Histogram, QuantileCrossesTheOverflowSeamExactly) {
  // Two samples inside the single finite bucket, two in overflow. The rank
  // walk must hand over from the bucketed interpolation to the overflow
  // interpolation without a gap: rank 2 tops out the finite bucket at its
  // bound, rank 3 is the first overflow step half-way to max, rank 4 is max.
  Histogram h({10.0});
  h.observe(5.0);
  h.observe(5.0);
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);    // rank 2: bucket upper bound
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 105.0);  // rank 3: 10 + (200-10)/2
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);   // rank 4: exact max
}

TEST(Histogram, QuantileIsMonotoneAcrossTheOverflowSeam) {
  // Property regression: for a mixed in-bounds/overflow distribution the
  // estimate must be non-decreasing in q — the overflow interpolation must
  // start above the last finite bound, not below it.
  Histogram h(Histogram::pow2_bounds(5));  // bounds 1, 2, 4, 8, 16
  for (const double v : {0.5, 1.5, 3.0, 6.0, 12.0, 20.0, 40.0, 80.0}) {
    h.observe(v);
  }
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double est = h.quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;
    EXPECT_LE(est, h.max()) << "q=" << q;
    prev = est;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 80.0);
}

TEST(Histogram, QuantileSingleBucketInterpolates) {
  Histogram h({8.0});
  for (int i = 0; i < 4; ++i) h.observe(6.0);
  // Four samples in [0, 8]: the q-th estimate walks the bucket linearly —
  // rank ceil(0.5 * 4) = 2 of 4 lands at 8 * (2/4) = 4, capped by max 6.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);  // capped at the recorded max
}

TEST(Histogram, QuantileInterpolatesBetweenBounds) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket [0, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // bucket (10, 20]
  // Rank ceil(0.75 * 20) = 15: the 5th of 10 samples in (10, 20] -> 15.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  // Rank 10 is the last sample of the first bucket -> its upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  // q = 0 floors the rank at 1: first sample of the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(Histogram, QuantileMonotoneInQ) {
  Histogram h(Histogram::pow2_bounds(16));
  Rng rng(7);
  for (int i = 0; i < 500; ++i) h.observe(rng.uniform(0.0, 40000.0));
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_LE(v, h.max());
    prev = v;
  }
}

TEST(MetricsRegistry, WriteJsonIncludesQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(3.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_valid(out)) << out;
  EXPECT_NE(out.find("\"p50\":"), std::string::npos);
  EXPECT_NE(out.find("\"p95\":"), std::string::npos);
  EXPECT_NE(out.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistry, WriteJsonIsValidAndComplete) {
  MetricsRegistry reg;
  reg.counter("msgs").add(7);
  reg.gauge("load").set(0.25);
  reg.histogram("size \"quoted\"", {1.0, 8.0}).observe(3.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_valid(out)) << out;
  EXPECT_NE(out.find("\"msgs\":7"), std::string::npos);
  EXPECT_NE(out.find("\"load\":0.25"), std::string::npos);
  EXPECT_NE(out.find("\"le\":\"inf\""), std::string::npos);
}

TEST(Histogram, QuantileSingleSample) {
  // One observation: every quantile resolves to (at most) that value.
  Histogram h({1.0, 2.0, 4.0});
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileAllSamplesInOneBucket) {
  // Ten identical samples in the (2, 4] bucket: interpolation through the
  // bucket is capped by the recorded max, so p50/p95/p99 agree.
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.observe(2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.5);
  EXPECT_EQ(h.count(), 10u);
}

TEST(Histogram, MaxTracksAllNegativeSamples) {
  // The running max must seed from the first sample, not from 0.0 —
  // otherwise an all-negative distribution reports max() == 0.
  Histogram h({1.0});
  h.observe(-5.0);
  h.observe(-2.0);
  EXPECT_DOUBLE_EQ(h.max(), -2.0);
  // Quantiles stay clamped to the true max, never above it.
  EXPECT_LE(h.quantile(0.5), -2.0);
  EXPECT_LE(h.quantile(0.99), -2.0);
}

TEST(MetricsRegistry, WriteJsonAlwaysValidOnEdgeCaseHistograms) {
  MetricsRegistry reg;
  reg.histogram("empty", {1.0, 2.0});              // no samples at all
  reg.histogram("negative", {1.0}).observe(-3.0);  // all-negative
  Histogram& single = reg.histogram("single", {8.0});
  single.observe(6.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_valid(out)) << out;
  // No bare NaN/inf tokens may leak into the numeric fields.
  EXPECT_EQ(out.find(":nan"), std::string::npos) << out;
  EXPECT_EQ(out.find(": nan"), std::string::npos) << out;
  EXPECT_EQ(out.find(":-nan"), std::string::npos) << out;
}

TEST(TimeSeries, ObservationsLandInFloorWindow) {
  TimeSeries s(100.0);
  s.observe(0.0, 1.0);
  s.observe(99.9, 2.0);
  s.observe(100.0, 4.0);  // exactly on the edge -> next window
  s.observe(250.0, 8.0);
  ASSERT_EQ(s.windows().size(), 3u);
  const TimeSeries::Window* w0 = s.find(0);
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->count, 2u);
  EXPECT_DOUBLE_EQ(w0->sum, 3.0);
  EXPECT_DOUBLE_EQ(w0->max, 2.0);
  EXPECT_EQ(s.find(1)->count, 1u);
  EXPECT_EQ(s.find(2)->count, 1u);
  EXPECT_EQ(s.find(3), nullptr);
  EXPECT_EQ(s.total_count(), 4u);
  EXPECT_DOUBLE_EQ(s.total_sum(), 15.0);
}

TEST(TimeSeries, NegativeTimesAndValues) {
  TimeSeries s(10.0);
  s.observe(-5.0, -3.0);  // floor(-0.5) = -1
  ASSERT_NE(s.find(-1), nullptr);
  EXPECT_DOUBLE_EQ(s.find(-1)->max, -3.0);  // max seeds from first sample
}

TEST(TimeSeries, PerWindowQuantilesWithHistograms) {
  TimeSeries s(100.0, {8.0, 64.0});
  for (int i = 0; i < 10; ++i) s.observe(50.0, 4.0);
  s.observe(150.0, 100.0);
  ASSERT_TRUE(s.has_histograms());
  EXPECT_DOUBLE_EQ(s.find(0)->hist.quantile(0.99), 4.0);  // capped at max
  EXPECT_DOUBLE_EQ(s.find(1)->hist.max(), 100.0);
  std::ostringstream os;
  s.write_json(os);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"p99\""), std::string::npos);
}

TEST(TimeSeries, ValidatesConstruction) {
  EXPECT_THROW(TimeSeries(0.0), PreconditionError);
  EXPECT_THROW(TimeSeries(-1.0), PreconditionError);
  EXPECT_THROW(TimeSeries(10.0, {2.0, 1.0}), PreconditionError);
}

TEST(MetricsRegistry, SeriesFetchOrCreateAndJsonSection) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  // No series registered: no "series" section (byte-stability of the
  // pre-existing exports).
  std::ostringstream before;
  reg.write_json(before);
  EXPECT_EQ(before.str().find("\"series\""), std::string::npos);

  reg.series("s", 100.0).observe(10.0, 1.0);
  reg.series("s", 999.0).observe(20.0, 2.0);  // same instrument; width kept
  const TimeSeries* s = reg.find_series("s");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->window_width(), 100.0);
  EXPECT_EQ(s->total_count(), 2u);
  EXPECT_EQ(reg.find_series("missing"), nullptr);
  ASSERT_EQ(reg.series_names().size(), 1u);
  EXPECT_EQ(reg.series_names()[0], "s");

  std::ostringstream after;
  reg.write_json(after);
  EXPECT_TRUE(json_valid(after.str())) << after.str();
  EXPECT_NE(after.str().find("\"series\""), std::string::npos);
  EXPECT_NE(after.str().find("\"window_width\":100"), std::string::npos);

  reg.reset();
  EXPECT_TRUE(reg.find_series("s")->empty());  // registration kept
}

}  // namespace
}  // namespace hpmm
