#include "analysis/technology.hpp"

#include "analysis/isoefficiency.hpp"

namespace hpmm {

std::optional<double> problem_growth_more_procs(const PerfModel& model, double p,
                                                double k, double efficiency) {
  const auto w0 = iso_problem_size(model, p, efficiency);
  const auto w1 = iso_problem_size(model, k * p, efficiency);
  if (!w0 || !w1) return std::nullopt;
  return *w1 / *w0;
}

}  // namespace hpmm
