#include "analysis/bounds.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace hpmm {

std::string to_string(BoundsClass cls) {
  switch (cls) {
    case BoundsClass::k2D: return "2D";
    case BoundsClass::k25D: return "2.5D";
    case BoundsClass::k3D: return "3D";
  }
  return "?";
}

BoundsClass bounds_class(const std::string& algorithm) {
  struct Row {
    const char* name;
    BoundsClass cls;
  };
  // Registry names plus the model names they alias (cannon-gray -> cannon,
  // fox-pipe -> fox), so both an Entry and its PerfModel resolve.
  static const Row kTable[] = {
      {"simple", BoundsClass::k2D},
      {"simple-ring", BoundsClass::k2D},
      {"simple-allport", BoundsClass::k2D},
      {"cannon", BoundsClass::k2D},
      {"cannon-gray", BoundsClass::k2D},
      {"fox", BoundsClass::k2D},
      {"fox-pipe", BoundsClass::k2D},
      {"cannon25d", BoundsClass::k25D},
      {"berntsen", BoundsClass::k3D},
      {"dns", BoundsClass::k3D},
      {"gk", BoundsClass::k3D},
      {"gk-jh", BoundsClass::k3D},
      {"gk-fc", BoundsClass::k3D},
      {"gk-allport", BoundsClass::k3D},
  };
  for (const Row& row : kTable) {
    if (algorithm == row.name) return row.cls;
  }
  throw PreconditionError("bounds_class: no bounds classification for '" +
                          algorithm +
                          "' -- add it to the table in analysis/bounds.cpp");
}

CommLowerBound comm_lower_bound(double n, double p, double memory_words) {
  require(n >= 1.0, "comm_lower_bound: n must be >= 1");
  require(p >= 1.0, "comm_lower_bound: p must be >= 1");
  require(memory_words > 0.0, "comm_lower_bound: memory must be positive");

  const double flops = n * n * n / p;  // multiply-adds per processor
  CommLowerBound b;
  b.memory_words = memory_words;
  b.words_mem_dependent =
      std::max(0.0, flops / std::sqrt(memory_words) - memory_words);
  b.words_mem_independent =
      std::max(0.0, 3.0 * std::cbrt(flops * flops) - 3.0 * n * n / p);
  b.words = std::max(b.words_mem_dependent, b.words_mem_independent);
  b.total_words = p * b.words;
  b.latency = b.words / memory_words;
  return b;
}

StrongScalingRange strong_scaling_range(BoundsClass cls, double n,
                                        double memory_words) {
  require(n >= 1.0, "strong_scaling_range: n must be >= 1");
  require(memory_words > 0.0, "strong_scaling_range: memory must be positive");
  const double p_2d = std::max(1.0, 3.0 * n * n / memory_words);
  const double p_3d = std::pow(p_2d, 1.5);
  switch (cls) {
    case BoundsClass::k2D: return {p_2d, p_2d};
    case BoundsClass::k25D: return {p_2d, p_3d};
    case BoundsClass::k3D: return {p_3d, p_3d};
  }
  return {p_2d, p_2d};
}

DistanceFromOptimal distance_from_measured(const PerfModel& model, double n,
                                           double p,
                                           double measured_total_words) {
  require(measured_total_words >= 0.0,
          "distance_from_measured: negative word count");
  DistanceFromOptimal d;
  d.algorithm = model.name();
  d.cls = bounds_class(d.algorithm);
  d.n = n;
  d.p = p;
  d.measured_total_words = measured_total_words;
  d.bound = comm_lower_bound(n, p, model.memory_per_proc(n, p));
  if (d.bound.total_words > 0.0) {
    d.ratio = measured_total_words / d.bound.total_words;
  } else {
    d.ratio = measured_total_words > 0.0
                  ? std::numeric_limits<double>::infinity()
                  : 1.0;
  }
  return d;
}

}  // namespace hpmm
