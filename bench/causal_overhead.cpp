// Causal-tracing overhead sweep (docs/observability.md): google-benchmark
// harness measuring what the happens-before span DAG costs the engine.
//
//   * BM_CausalRounds: butterfly exchange rounds on a 2^dim hypercube with
//     the causal recorder off (permil = -1) and on at sampling rates 0‰,
//     250‰ and 1000‰ of processors. events_per_sec is simulated messages
//     per wall-second — the permil sweep against the off-baseline gives the
//     span-propagation cost per message. dag_bytes_per_proc is the DAG's
//     arena footprint divided by p, spans the recorded span count.
//
// A fresh machine is built every iteration so the DAG cost is the
// steady-state per-message price, not an ever-growing arena; construction
// is identical across permil values, so ratios between them isolate the
// recorder. CI publishes the JSON (--benchmark_out=BENCH_causal.json) and
// bench/compare_bench.py --kind=causal gates events_per_sec against
// bench/baselines/BENCH_causal.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"

namespace {

using namespace hpmm;

MachineParams causal_params(std::int64_t permil) {
  MachineParams mp = machines::ncube2();
  mp.metrics_mode = MetricsMode::kAggregate;
  mp.traffic_capture = TrafficCapture::kOff;
  if (permil >= 0) {
    mp.causal = true;
    mp.trace_sample = static_cast<double>(permil) / 1000.0;
    mp.trace_sample_seed = 7;
  }
  return mp;
}

// `kRounds` butterfly rounds of `kMsgs` single-word messages per iteration:
// every message carries (and, when sampled, records) a SpanContext.
void BM_CausalRounds(benchmark::State& state) {
  const auto dim = static_cast<unsigned>(state.range(0));
  const std::int64_t permil = state.range(1);
  const std::size_t p = std::size_t{1} << dim;
  constexpr std::size_t kMsgs = 256;
  constexpr std::size_t kRounds = 8;
  const MachineParams mp = causal_params(permil);
  const auto topo = std::make_shared<Hypercube>(dim);
  const std::size_t stride = p / kMsgs;
  std::int64_t messages = 0;
  std::uint64_t spans = 0, dag_bytes = 0;
  for (auto _ : state) {
    SimMachine m(topo, mp);
    for (std::size_t r = 0; r < kRounds; ++r) {
      const unsigned bit = 1u << (r % dim);
      std::vector<Message> msgs;
      msgs.reserve(kMsgs);
      for (std::size_t i = 0; i < kMsgs; ++i) {
        const auto src = static_cast<ProcId>(i * stride);
        msgs.emplace_back(src, src ^ bit, r + 1, Matrix(1, 1));
      }
      m.exchange(std::move(msgs));
      for (std::size_t i = 0; i < kMsgs; ++i) {
        benchmark::DoNotOptimize(
            m.receive(static_cast<ProcId>(i * stride) ^ bit, r + 1));
      }
    }
    messages += static_cast<std::int64_t>(kMsgs * kRounds);
    if (const CausalGraph* g = m.causal()) {
      spans = static_cast<std::uint64_t>(g->spans().size());
      dag_bytes = g->approx_bytes();
    }
  }
  state.SetItemsProcessed(messages);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["p"] = benchmark::Counter(static_cast<double>(p));
  state.counters["sample_permil"] =
      benchmark::Counter(static_cast<double>(permil));
  state.counters["spans"] = benchmark::Counter(static_cast<double>(spans));
  state.counters["dag_bytes_per_proc"] = benchmark::Counter(
      static_cast<double>(dag_bytes) / static_cast<double>(p));
}

// permil -1 = recorder compiled out of the run (MachineParams::causal off);
// 0 = recorder on, every pid unsampled (gate-only cost); 250 = one in four;
// 1000 = complete DAG. dim 12 is the ctest smoke; dim 18 is the CI point.
BENCHMARK(BM_CausalRounds)
    ->ArgsProduct({{12, 18}, {-1, 0, 250, 1000}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
