#include "core/registry.hpp"

#include <functional>

#include "algorithms/berntsen.hpp"
#include "algorithms/cannon.hpp"
#include "algorithms/cannon_25d.hpp"
#include "algorithms/dns.hpp"
#include "algorithms/fox.hpp"
#include "algorithms/gk.hpp"
#include "algorithms/simple_2d.hpp"
#include "util/error.hpp"

namespace hpmm {

struct AlgorithmRegistry::Entry {
  std::string name;
  std::unique_ptr<ParallelMatmul> impl;
  std::function<std::unique_ptr<PerfModel>(const MachineParams&)> make_model;
};

AlgorithmRegistry::AlgorithmRegistry() {
  const auto add = [this](std::unique_ptr<ParallelMatmul> impl,
                          auto model_factory) {
    Entry e;
    e.name = impl->name();
    e.impl = std::move(impl);
    e.make_model = std::move(model_factory);
    entries_.push_back(std::move(e));
  };
  add(std::make_unique<SimpleAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<SimpleModel>(mp);
  });
  // The ring-all-to-all variant of the simple algorithm on a plain mesh;
  // its model is exact for the simulation.
  add(std::make_unique<SimpleAlgorithm>(SimpleAlgorithm::Variant::kOnePortRing),
      [](const MachineParams& mp) {
        return std::make_unique<SimpleRingModel>(mp);
      });
  add(std::make_unique<CannonAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<CannonModel>(mp);
  });
  // Gray-code hypercube embedding of Cannon's mesh: identical cost (Eq. 3),
  // demonstrating Section 4.4's mesh == hypercube observation.
  add(std::make_unique<CannonAlgorithm>(CannonAlgorithm::Mapping::kHypercubeGray),
      [](const MachineParams& mp) { return std::make_unique<CannonModel>(mp); });
  // 2.5D memory-replicated Cannon at the default replication c = 2; other
  // replication factors are reachable via the CLI's --c or by constructing
  // Cannon25DAlgorithm/Cannon25DModel directly.
  add(std::make_unique<Cannon25DAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<Cannon25DModel>(mp);
  });
  add(std::make_unique<FoxAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<FoxModel>(mp);
  });
  // Eq. 4's packet-pipelined row broadcast.
  add(std::make_unique<FoxAlgorithm>(FoxAlgorithm::Variant::kPipelinedRing),
      [](const MachineParams& mp) { return std::make_unique<FoxModel>(mp); });
  add(std::make_unique<BerntsenAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<BerntsenModel>(mp);
  });
  add(std::make_unique<DnsAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<DnsModel>(mp);
  });
  add(std::make_unique<GkAlgorithm>(), [](const MachineParams& mp) {
    return std::make_unique<GkModel>(mp);
  });
  add(std::make_unique<GkAlgorithm>(GkAlgorithm::Broadcast::kJohnssonHo),
      [](const MachineParams& mp) {
        return std::make_unique<GkJohnssonHoModel>(mp);
      });
  add(std::make_unique<GkAlgorithm>(GkAlgorithm::Broadcast::kBinomial,
                                    GkAlgorithm::Interconnect::kFullyConnected),
      [](const MachineParams& mp) { return std::make_unique<GkCm5Model>(mp); });
  add(std::make_unique<SimpleAlgorithm>(SimpleAlgorithm::Variant::kAllPort),
      [](const MachineParams& mp) {
        return std::make_unique<SimpleAllPortModel>(mp);
      });
  add(std::make_unique<GkAlgorithm>(GkAlgorithm::Broadcast::kAllPort),
      [](const MachineParams& mp) {
        return std::make_unique<GkAllPortModel>(mp);
      });
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

const AlgorithmRegistry::Entry& AlgorithmRegistry::find(
    const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  throw PreconditionError("AlgorithmRegistry: unknown algorithm '" + name + "'");
}

const ParallelMatmul& AlgorithmRegistry::implementation(
    const std::string& name) const {
  return *find(name).impl;
}

std::unique_ptr<PerfModel> AlgorithmRegistry::model(
    const std::string& name, const MachineParams& params) const {
  return find(name).make_model(params);
}

const AlgorithmRegistry& default_registry() {
  static const AlgorithmRegistry registry;
  return registry;
}

}  // namespace hpmm
