#pragma once

#include <string>

#include "algorithms/parallel_matmul.hpp"
#include "analysis/perf_model.hpp"
#include "sim/report.hpp"

namespace hpmm {

/// One model-vs-simulation comparison point.
struct ValidationPoint {
  std::string algorithm;
  std::size_t n = 0;
  std::size_t p = 0;
  double sim_t_parallel = 0.0;
  double model_t_parallel = 0.0;
  double max_numeric_error = 0.0;  ///< |C_sim - C_serial|_max
  bool product_correct = false;    ///< within floating-point tolerance
  RunReport report;                ///< the simulated run's full report

  double ratio() const noexcept {
    return model_t_parallel > 0.0 ? sim_t_parallel / model_t_parallel : 0.0;
  }
};

/// Run `impl` on random n x n matrices over p simulated processors, check
/// the product against the serial kernel, and compare simulated T_p with the
/// analytical model. `seed` makes the matrices reproducible.
ValidationPoint validate_algorithm(const ParallelMatmul& impl,
                                   const PerfModel& model, std::size_t n,
                                   std::size_t p, std::uint64_t seed = 42);

/// Floating-point tolerance used for product checks: scaled by n because the
/// dot products accumulate n rounding errors.
double product_tolerance(std::size_t n) noexcept;

}  // namespace hpmm
