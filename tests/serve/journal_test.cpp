#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/chaos.hpp"
#include "serve/server.hpp"
#include "serve/timeline.hpp"
#include "util/json.hpp"

namespace hpmm {
namespace {

TenantRequest clean_request(double arrival, const std::string& tenant = "a",
                            std::size_t n = 16, std::size_t p = 16) {
  TenantRequest req;
  req.tenant = tenant;
  req.arrival = arrival;
  req.algo = "cannon";
  req.n = n;
  req.p = p;
  return req;
}

/// Detect-only ABFT over certain corruption: every attempt completes but
/// reports uncorrected corruption — the retryable failure.
std::shared_ptr<FaultPlan> corrupting_plan(std::uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>();
  plan->corrupt_prob = 1.0;
  plan->abft = AbftMode::kDetect;
  plan->seed = seed;
  return plan;
}

std::vector<JournalKind> kinds_of(const std::vector<JournalEvent>& events) {
  std::vector<JournalKind> out;
  out.reserve(events.size());
  for (const auto& e : events) out.push_back(e.kind);
  return out;
}

TEST(EventJournal, CleanRequestSequence) {
  const Server server(ServeOptions{});
  const ServeReport report = server.run({clean_request(0.0)});
  const auto kinds = kinds_of(report.journal.events());
  const std::vector<JournalKind> expected = {
      JournalKind::kArrival, JournalKind::kPlanCacheMiss, JournalKind::kAdmit,
      JournalKind::kDispatch, JournalKind::kComplete};
  EXPECT_EQ(kinds, expected);
  const JournalEvent& dispatch = report.journal.events()[3];
  EXPECT_EQ(dispatch.slot, 0);
  EXPECT_EQ(dispatch.attempt, 1);
  EXPECT_EQ(dispatch.cause, "cannon");
  const JournalEvent& complete = report.journal.events()[4];
  EXPECT_EQ(complete.cause, "ok");
  EXPECT_TRUE(complete.has_value);
  EXPECT_DOUBLE_EQ(complete.value, report.requests[0].latency);
}

TEST(EventJournal, JsonlLinesAreEachValidJson) {
  ServeOptions opt;
  opt.max_retries = 1;
  const Server server(opt);
  TenantRequest failing = clean_request(0.0, "f");
  failing.faults = corrupting_plan(9);
  const ServeReport report = server.run({clean_request(0.0), failing});
  const std::string jsonl = report.journal.jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(json_valid(line)) << line;
    ++count;
  }
  EXPECT_EQ(count, report.journal.size());
  // seq is the journal position.
  for (std::size_t i = 0; i < report.journal.size(); ++i) {
    EXPECT_EQ(report.journal.events()[i].seq, i);
  }
}

TEST(EventJournal, RetryRecordsBackoffSchedule) {
  ServeOptions opt;
  opt.max_retries = 2;
  opt.backoff_base = 400.0;
  opt.backoff_factor = 3.0;
  opt.backoff_jitter = 0.0;  // deterministic schedule without the jitter draw
  const Server server(opt);
  TenantRequest failing = clean_request(0.0, "f");
  failing.faults = corrupting_plan(9);
  const ServeReport report = server.run({failing});
  const auto retries = report.journal.of_kind(JournalKind::kRetry);
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_EQ(retries[0].attempt, 1);
  EXPECT_DOUBLE_EQ(retries[0].value, 400.0);
  EXPECT_EQ(retries[1].attempt, 2);
  EXPECT_DOUBLE_EQ(retries[1].value, 1200.0);  // base * factor^1
  EXPECT_EQ(retries[0].cause, "attempt_failed");
  EXPECT_NE(retries[0].detail.find("abft detected"), std::string::npos);
  // Three dispatches (initial + both retries), then the final failure.
  EXPECT_EQ(report.journal.of_kind(JournalKind::kDispatch).size(), 3u);
  const auto completes = report.journal.of_kind(JournalKind::kComplete);
  ASSERT_EQ(completes.size(), 1u);
  EXPECT_EQ(completes[0].cause, "failed");
}

TEST(EventJournal, RejectionCausesAreMachineReadable) {
  ServeOptions opt;
  opt.queue_capacity = 1;
  const Server server(opt);
  TenantRequest invalid = clean_request(0.0, "bad");
  invalid.algo = "no-such-algorithm";
  // The second concurrent request finds the single queue unit taken.
  const ServeReport report = server.run(
      {invalid, clean_request(10.0, "a"), clean_request(11.0, "b")});
  const auto inv = report.journal.of_kind(JournalKind::kRejectInvalid);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0].tenant, "bad");
  EXPECT_EQ(inv[0].cause, "rejected_invalid");
  EXPECT_NE(inv[0].detail.find("no-such-algorithm"), std::string::npos);
  const auto full = report.journal.of_kind(JournalKind::kRejectQueueFull);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].tenant, "b");
  EXPECT_EQ(full[0].cause, "rejected_queue_full");
}

TEST(EventJournal, QuotaRejectionAttributed) {
  ServeOptions opt;
  opt.tenant_quota = 1;
  const Server server(opt);
  const ServeReport report =
      server.run({clean_request(0.0, "a"), clean_request(1.0, "a")});
  const auto quota = report.journal.of_kind(JournalKind::kRejectQuota);
  ASSERT_EQ(quota.size(), 1u);
  EXPECT_EQ(quota[0].tenant, "a");
  EXPECT_EQ(quota[0].request, 1);
  EXPECT_EQ(quota[0].cause, "rejected_quota");
}

TEST(EventJournal, BreakerLifecycleObservedThroughJournal) {
  ServeOptions opt;
  opt.breaker_threshold = 1;
  opt.breaker_cooldown = 100000.0;
  opt.max_retries = 0;
  const Server server(opt);
  TenantRequest failing = clean_request(0.0, "b");
  failing.faults = corrupting_plan(7);
  // Service takes a few thousand time units, so the breaker opens well
  // before 50000: that arrival lands mid-cooldown and is rejected, the
  // far-later one is the half-open probe.
  const ServeReport report = server.run(
      {failing, clean_request(50000.0, "b"), clean_request(500000.0, "b")});
  std::vector<JournalKind> breaker_kinds;
  for (const auto& e : report.journal.of_tenant("b")) {
    if (e.kind == JournalKind::kBreakerOpen ||
        e.kind == JournalKind::kBreakerHalfOpen ||
        e.kind == JournalKind::kBreakerClose) {
      breaker_kinds.push_back(e.kind);
    }
  }
  const std::vector<JournalKind> expected = {JournalKind::kBreakerOpen,
                                             JournalKind::kBreakerHalfOpen,
                                             JournalKind::kBreakerClose};
  EXPECT_EQ(breaker_kinds, expected);
  const auto opens = report.journal.of_kind(JournalKind::kBreakerOpen);
  ASSERT_EQ(opens.size(), 1u);
  EXPECT_TRUE(opens[0].has_value);
  EXPECT_DOUBLE_EQ(opens[0].value, 100000.0);  // the cooldown
  EXPECT_EQ(opens[0].cause, "consecutive_failures");
  // The mid-cooldown arrival was rejected by the breaker; the probe closed
  // it again.
  EXPECT_EQ(report.journal.of_kind(JournalKind::kRejectBreaker).size(), 1u);
  EXPECT_EQ(report.tenants.at("b").ok, 1u);
}

TEST(EventJournal, QueueFullRejectionDoesNotConsumeHalfOpenProbe) {
  ServeOptions opt;
  opt.breaker_threshold = 1;
  opt.breaker_cooldown = 100.0;
  opt.max_retries = 0;
  opt.queue_capacity = 1;
  const Server server(opt);
  TenantRequest failing = clean_request(0.0, "b");
  failing.faults = corrupting_plan(7);
  // The hog is admitted after b's failure freed the queue unit and is still
  // in service (its span is thousands of time units) when b's half-open
  // arrival hits the full queue; b's last arrival comes long after.
  const ServeReport report = server.run(
      {failing, clean_request(20000.0, "hog", 32, 16),
       clean_request(21000.0, "b"), clean_request(500000.0, "b")});
  // Exactly one half-open transition: the queue-full rejection did not
  // consume the probe, so the late arrival could still be admitted and
  // close the breaker. Had the probe been consumed, the late arrival would
  // have been rejected_breaker and the breaker never closed.
  EXPECT_EQ(report.journal.of_kind(JournalKind::kBreakerHalfOpen).size(), 1u);
  const auto full = report.journal.of_kind(JournalKind::kRejectQueueFull);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].tenant, "b");
  EXPECT_EQ(report.journal.of_kind(JournalKind::kBreakerClose).size(), 1u);
  EXPECT_EQ(report.tenants.at("b").rejected_breaker, 0u);
  EXPECT_EQ(report.tenants.at("b").ok, 1u);
}

TEST(EventJournal, DeadlineAbortJournaled) {
  ServeOptions opt;
  opt.deadline_factor = 0.01;  // far below the achievable service time
  const Server server(opt);
  const ServeReport report = server.run({clean_request(0.0)});
  const auto aborts = report.journal.of_kind(JournalKind::kDeadlineAbort);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0].cause, "budget_exhausted");
  EXPECT_TRUE(aborts[0].has_value);
  EXPECT_DOUBLE_EQ(aborts[0].value, report.requests[0].deadline);
  const auto completes = report.journal.of_kind(JournalKind::kComplete);
  ASSERT_EQ(completes.size(), 1u);
  EXPECT_EQ(completes[0].cause, "deadline_exceeded");
}

TEST(EventJournal, ByteIdenticalAcrossThreadsAndRuns) {
  NoisyNeighborOptions o;
  auto run_with = [&](unsigned threads) {
    ServeOptions opt;
    opt.threads = threads;
    opt.max_retries = 1;
    const Server server(opt);
    const ServeReport report = server.run(noisy_neighbor_scenario(o));
    std::ostringstream timeline;
    write_serve_timeline(timeline, report.journal, opt.slots);
    std::ostringstream json;
    report.write_json(json);
    return std::make_pair(report.journal.jsonl(),
                          timeline.str() + "\x1f" + json.str());
  };
  const auto first = run_with(1);
  const auto again = run_with(1);
  const auto threaded = run_with(4);
  EXPECT_EQ(first.first, again.first);    // same seed, same bytes
  EXPECT_EQ(first.second, again.second);
  EXPECT_EQ(first.first, threaded.first);  // host threads are invisible
  EXPECT_EQ(first.second, threaded.second);
  EXPECT_FALSE(first.first.empty());
}

TEST(EventJournal, HostileTenantNamesRoundTripThroughJsonl) {
  // Tenant names with quotes, backslashes, control bytes and non-ASCII must
  // come out of the JSONL journal as valid JSON with the bytes escaped —
  // a hostile tenant cannot break the log or smuggle extra fields into it.
  const std::string hostile =
      "ev\"il\\tenant\",\"admin\":true,\"x\":\"\x01\xc3\xa9";
  const Server server(ServeOptions{});
  const ServeReport report =
      server.run({clean_request(0.0, hostile), clean_request(1.0, "ok")});
  const std::string jsonl = report.journal.jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t hostile_lines = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(json_valid(line)) << line;
    // No raw control byte may survive into the serialized form.
    for (const char c : line) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << line;
    }
    if (line.find(json_escape(hostile)) != std::string::npos) ++hostile_lines;
  }
  // Every one of the hostile tenant's events carries the escaped name, and
  // the injection attempt stayed inside the string (no "admin" key).
  EXPECT_EQ(hostile_lines, report.journal.of_tenant(hostile).size());
  EXPECT_GT(hostile_lines, 0u);
  EXPECT_EQ(jsonl.find("\"admin\":true"), std::string::npos);
  // The same bytes survive a full report serialization too.
  std::ostringstream os;
  report.write_json(os);
  EXPECT_TRUE(json_valid(os.str()));
  EXPECT_NE(os.str().find(json_escape(hostile)), std::string::npos);
}

TEST(ServeTimeline, ValidJsonWithSlotAndTenantLanes) {
  ServeOptions opt;
  opt.slots = 2;
  const Server server(opt);
  const ServeReport report = server.run(
      {clean_request(0.0, "a"), clean_request(0.0, "b")});
  std::ostringstream os;
  write_serve_timeline(os, report.journal, opt.slots);
  const std::string timeline = os.str();
  EXPECT_TRUE(json_valid(timeline)) << timeline;
  EXPECT_NE(timeline.find("\"executor slots\""), std::string::npos);
  EXPECT_NE(timeline.find("\"tenants\""), std::string::npos);
  EXPECT_NE(timeline.find("\"slot 1\""), std::string::npos);
  EXPECT_NE(timeline.find("\"ph\":\"X\""), std::string::npos);
  // Both tenants' attempts appear as duration events.
  EXPECT_NE(timeline.find("a #0 a1"), std::string::npos);
  EXPECT_NE(timeline.find("b #1 a1"), std::string::npos);
}

TEST(ServeTimeline, RejectionsAndBreakerTransitionsAreInstants) {
  ServeOptions opt;
  opt.breaker_threshold = 1;
  opt.max_retries = 0;
  const Server server(opt);
  TenantRequest failing = clean_request(0.0, "b");
  failing.faults = corrupting_plan(7);
  const ServeReport report =
      server.run({failing, clean_request(5000.0, "b")});
  std::ostringstream os;
  write_serve_timeline(os, report.journal, opt.slots);
  const std::string timeline = os.str();
  EXPECT_TRUE(json_valid(timeline)) << timeline;
  EXPECT_NE(timeline.find("\"breaker_open\""), std::string::npos);
  EXPECT_NE(timeline.find("\"ph\":\"i\""), std::string::npos);
}

TEST(EventJournal, NoisyNeighborRunIsAttributable) {
  ServeOptions opt;
  opt.max_retries = 1;
  SloTarget target;
  target.availability = 0.9;
  opt.slos["*"] = target;
  const Server server(opt);
  const ServeReport report =
      server.run(noisy_neighbor_scenario(NoisyNeighborOptions{}));
  // Every breaker-open event belongs to the noisy tenant.
  const auto opens = report.journal.of_kind(JournalKind::kBreakerOpen);
  ASSERT_FALSE(opens.empty());
  for (const auto& e : opens) EXPECT_EQ(e.tenant, "noisy");
  // Every rejection carries a machine-readable cause token.
  for (const auto& e : report.journal.events()) {
    if (e.kind == JournalKind::kRejectBreaker ||
        e.kind == JournalKind::kRejectQueueFull ||
        e.kind == JournalKind::kRejectQuota) {
      EXPECT_FALSE(e.cause.empty());
      EXPECT_EQ(e.tenant, "noisy");  // isolation: only the bully is shed
    }
  }
  // SLO verdicts: the healthy tenant passes, the noisy tenant exhausts its
  // error budget.
  ASSERT_EQ(report.slo.size(), 2u);
  for (const auto& v : report.slo) {
    if (v.tenant == "steady") {
      EXPECT_FALSE(v.breached());
    } else {
      EXPECT_EQ(v.tenant, "noisy");
      EXPECT_TRUE(v.availability_breached);
    }
  }
  EXPECT_TRUE(report.slo_breached());
  // The report JSON carries the journal size and the verdicts.
  std::ostringstream os;
  report.write_json(os);
  EXPECT_TRUE(json_valid(os.str()));
  EXPECT_NE(os.str().find("\"journal_events\":"), std::string::npos);
  EXPECT_NE(os.str().find("\"slo\":["), std::string::npos);
}

}  // namespace
}  // namespace hpmm
