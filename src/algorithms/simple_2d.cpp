#include "algorithms/simple_2d.hpp"

#include <cmath>

#include "matrix/block.hpp"
#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr int kTagA = 1;
constexpr int kTagB = 2;

}  // namespace

std::string SimpleAlgorithm::name() const {
  switch (variant_) {
    case Variant::kOnePortRing: return "simple-ring";
    case Variant::kOnePortRecursiveDoubling: return "simple";
    case Variant::kAllPort: return "simple-allport";
  }
  return "simple";
}

void SimpleAlgorithm::check_applicable(std::size_t n, std::size_t p) const {
  require(p >= 1, "simple: need at least one processor");
  require(is_perfect_square(p), "simple: p must be a perfect square");
  const std::size_t sp = exact_sqrt(p);
  require(n % sp == 0, "simple: sqrt(p) must divide n");
  if (variant_ != Variant::kOnePortRing) {
    // Rows/columns of the mesh must be hypercube subcubes.
    require(is_pow2(sp), "simple: sqrt(p) must be a power of two on a hypercube");
  }
  if (variant_ == Variant::kAllPort) {
    // Section 7.1: every channel needs at least one word per transfer, which
    // requires n >= (1/2) sqrt(p) log p.
    const double log_p = p > 1 ? std::log2(static_cast<double>(p)) : 1.0;
    require(static_cast<double>(n) >=
                0.5 * std::sqrt(static_cast<double>(p)) * log_p,
            "simple-allport: n >= (1/2) sqrt(p) log p required to fill all "
            "channels (Section 7.1)");
  }
}

MatmulResult SimpleAlgorithm::run(const Matrix& a, const Matrix& b,
                                  std::size_t p,
                                  const MachineParams& params) const {
  const std::size_t n = validated_order(a, b);
  check_applicable(n, p);
  const std::size_t sp = exact_sqrt(p);

  std::shared_ptr<const Topology> topo;
  if (variant_ == Variant::kOnePortRing) {
    topo = std::make_shared<Torus2D>(sp, sp);
  } else {
    topo = std::make_shared<Hypercube>(Hypercube::with_procs(p));
  }
  MachineParams effective = params;
  effective.ports = variant_ == Variant::kAllPort ? PortModel::kAllPort
                                                  : PortModel::kOnePort;
  SimMachine machine(topo, effective);

  // Row-major mapping (i, j) -> i * sp + j. On the hypercube this makes each
  // mesh row an ascending subcube (low bits) and each column a subcube in
  // the high bits, so the collectives only cross physical links.
  const auto rank = [sp](std::size_t i, std::size_t j) {
    return static_cast<ProcId>(i * sp + j);
  };

  const BlockGrid grid(n, n, sp, sp);
  const std::size_t bw = grid.block_words();
  std::vector<Matrix> a_blocks = scatter_blocks(a, grid);
  std::vector<Matrix> b_blocks = scatter_blocks(b, grid);
  for (ProcId pid = 0; pid < p; ++pid) machine.note_alloc(pid, 2 * bw);

  // All-to-all broadcast of A blocks within each row and B blocks within
  // each column: afterwards processor (i, j) holds all of row i of A's
  // blocks and all of column j of B's blocks.
  std::vector<std::vector<Matrix>> row_a(p);  // indexed by rank; [k] = A(i,k)
  std::vector<std::vector<Matrix>> col_b(p);  // indexed by rank; [k] = B(k,j)

  const double m_words = static_cast<double>(bw);
  const double log_p = std::log2(static_cast<double>(p));
  machine.begin_phase("allgather-a");
  for (std::size_t i = 0; i < sp; ++i) {
    std::vector<ProcId> group;
    std::vector<Matrix> contribs;
    for (std::size_t j = 0; j < sp; ++j) {
      group.push_back(rank(i, j));
      contribs.push_back(a_blocks[i * sp + j]);
    }
    std::vector<std::vector<Matrix>> gathered;
    switch (variant_) {
      case Variant::kOnePortRing:
        gathered = all_to_all_ring(machine, group, kTagA, std::move(contribs));
        break;
      case Variant::kOnePortRecursiveDoubling:
        gathered = all_to_all_recursive_doubling(machine, group, kTagA,
                                                 std::move(contribs));
        break;
      case Variant::kAllPort: {
        // Section 7.1: both matrices move simultaneously on all ports for a
        // combined cost of 2 t_w n^2 sqrt(p)/(p log p) + (1/2) t_s log p
        // (Eq. 16); half is charged to the row phase, half to the column
        // phase below.
        const double phase_time =
            t_allport_phase(params, m_words, sp, log_p);
        gathered = all_to_all_modeled(machine, group, std::move(contribs),
                                      phase_time);
        break;
      }
    }
    for (std::size_t j = 0; j < sp; ++j) {
      row_a[rank(i, j)] = std::move(gathered[j]);
      machine.note_alloc(rank(i, j), (sp - 1) * bw);
    }
  }
  machine.end_phase();
  machine.begin_phase("allgather-b");
  for (std::size_t j = 0; j < sp; ++j) {
    std::vector<ProcId> group;
    std::vector<Matrix> contribs;
    for (std::size_t i = 0; i < sp; ++i) {
      group.push_back(rank(i, j));
      contribs.push_back(b_blocks[i * sp + j]);
    }
    std::vector<std::vector<Matrix>> gathered;
    switch (variant_) {
      case Variant::kOnePortRing:
        gathered = all_to_all_ring(machine, group, kTagB, std::move(contribs));
        break;
      case Variant::kOnePortRecursiveDoubling:
        gathered = all_to_all_recursive_doubling(machine, group, kTagB,
                                                 std::move(contribs));
        break;
      case Variant::kAllPort: {
        const double phase_time =
            t_allport_phase(params, m_words, sp, log_p);
        gathered = all_to_all_modeled(machine, group, std::move(contribs),
                                      phase_time);
        break;
      }
    }
    for (std::size_t i = 0; i < sp; ++i) {
      col_b[rank(i, j)] = std::move(gathered[i]);
      machine.note_alloc(rank(i, j), (sp - 1) * bw);
    }
  }
  machine.end_phase();

  // Local phase: C(i,j) = sum_k A(i,k) * B(k,j) — sqrt(p) block multiplies,
  // n^3/p multiply-add units in total per processor.
  Matrix c(n, n);
  std::vector<Matrix> c_block(p);
  std::vector<SimMachine::ComputeTask> phase;
  phase.reserve(p);
  for (std::size_t i = 0; i < sp; ++i) {
    for (std::size_t j = 0; j < sp; ++j) {
      const ProcId pid = rank(i, j);
      c_block[pid] = Matrix(grid.block_rows(), grid.block_cols());
      SimMachine::ComputeTask task{pid, &c_block[pid], {}};
      task.products.reserve(sp);
      for (std::size_t k = 0; k < sp; ++k) {
        task.products.emplace_back(&row_a[pid][k], &col_b[pid][k]);
      }
      phase.push_back(std::move(task));
    }
  }
  {
    PhaseScope scope(machine, "multiply");
    machine.compute_multiply_add_batch(phase);
  }
  for (std::size_t i = 0; i < sp; ++i) {
    for (std::size_t j = 0; j < sp; ++j) {
      const ProcId pid = rank(i, j);
      machine.note_alloc(pid, bw);
      grid.insert(c, c_block[pid], i, j);
    }
  }
  machine.synchronize();
  machine.assert_clean_run();

  MatmulResult result;
  result.c = std::move(c);
  result.report = machine.report(name(), n, std::pow(static_cast<double>(n), 3.0));
  if (machine.tracing()) result.trace = machine.trace();
  return result;
}

double SimpleAlgorithm::t_allport_phase(const MachineParams& params,
                                        double block_words, std::size_t sp,
                                        double log_p) {
  // Half of Eq. 16's communication term (the other half covers the other
  // matrix, which moves simultaneously on the remaining channels):
  //   (1/2) * [ 2 t_w m sqrt(p) / log p + (1/2) t_s log p ]
  if (sp <= 1 || log_p <= 0.0) return 0.0;  // single processor: no channels
  const double words_total = block_words * static_cast<double>(sp);
  return params.t_w * words_total / log_p + 0.25 * params.t_s * log_p;
}

}  // namespace hpmm
