#include "matrix/kernels.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hpmm {
namespace {

TEST(Kernels, SmallHandComputedProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = multiply(a, b, Kernel::kNaiveIjk);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Kernels, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix i = identity_matrix(16);
  EXPECT_TRUE(approx_equal(multiply(a, i), a, 1e-14));
  EXPECT_TRUE(approx_equal(multiply(i, a), a, 1e-14));
}

TEST(Kernels, MultiplyAddAccumulates) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0);
  Matrix c(2, 2, 10.0);
  multiply_add(a, b, c);
  EXPECT_EQ(c(0, 0), 12.0);  // 10 + 2
}

TEST(Kernels, ShapeValidation) {
  Matrix a(2, 3), b(2, 3), c(2, 3);
  EXPECT_THROW(multiply_add(a, b, c), PreconditionError);  // inner mismatch
  Matrix b2(3, 4), c_bad(2, 3);
  EXPECT_THROW(multiply_add(a, b2, c_bad), PreconditionError);  // C shape
}

TEST(Kernels, RectangularShapes) {
  Rng rng(2);
  const Matrix a = random_matrix(3, 5, rng);
  const Matrix b = random_matrix(5, 2, rng);
  const Matrix c = multiply(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  // Check one entry against the direct dot product.
  double expect = 0.0;
  for (std::size_t k = 0; k < 5; ++k) expect += a(1, k) * b(k, 1);
  EXPECT_NEAR(c(1, 1), expect, 1e-14);
}

TEST(Kernels, FlopCount) {
  EXPECT_EQ(matmul_flops(2, 3, 4), 24u);
  EXPECT_EQ(matmul_flops(64, 64, 64), 262144u);
}

TEST(Kernels, ToStringNames) {
  EXPECT_EQ(to_string(Kernel::kNaiveIjk), "naive-ijk");
  EXPECT_EQ(to_string(Kernel::kCacheIkj), "cache-ikj");
  EXPECT_EQ(to_string(Kernel::kBlocked), "blocked");
  EXPECT_EQ(to_string(Kernel::kTransposedB), "transposed-b");
  EXPECT_EQ(to_string(Kernel::kPacked), "packed");
}

TEST(Kernels, FromStringRoundTrips) {
  for (Kernel k : {Kernel::kNaiveIjk, Kernel::kCacheIkj, Kernel::kBlocked,
                   Kernel::kTransposedB, Kernel::kPacked}) {
    EXPECT_EQ(kernel_from_string(to_string(k)), k);
  }
  EXPECT_THROW(kernel_from_string("bogus"), PreconditionError);
  EXPECT_THROW(kernel_from_string(""), PreconditionError);
}

/// All kernels must agree with the naive reference on random inputs,
/// including sizes that straddle the blocked kernel's tile boundary.
class KernelAgreement
    : public ::testing::TestWithParam<std::tuple<Kernel, std::size_t>> {};

TEST_P(KernelAgreement, MatchesNaive) {
  const auto [kernel, n] = GetParam();
  Rng rng(17 + n);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const Matrix expect = multiply(a, b, Kernel::kNaiveIjk);
  const Matrix got = multiply(a, b, kernel);
  EXPECT_TRUE(approx_equal(expect, got, 1e-11 * static_cast<double>(n)))
      << to_string(kernel) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAndSizes, KernelAgreement,
    ::testing::Combine(::testing::Values(Kernel::kCacheIkj, Kernel::kBlocked,
                                         Kernel::kTransposedB,
                                         Kernel::kPacked),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{31}, std::size_t{32},
                                         std::size_t{33}, std::size_t{64},
                                         std::size_t{100})));

// The packed kernel accumulates every C element in plain increasing-k order
// regardless of tile sizes or threading, so results are bit-identical — not
// merely close — across tunings and thread counts.
TEST(PackedKernel, BitIdenticalAcrossTunings) {
  const PackedTuning saved = packed_tuning();
  Rng rng(23);
  const Matrix a = random_matrix(97, 83, rng);
  const Matrix b = random_matrix(83, 61, rng);
  set_packed_tuning({64, 32});
  const Matrix small_tiles = multiply(a, b, Kernel::kPacked);
  set_packed_tuning({256, 128});
  const Matrix large_tiles = multiply(a, b, Kernel::kPacked);
  set_packed_tuning(saved);
  ASSERT_EQ(small_tiles.rows(), large_tiles.rows());
  for (std::size_t i = 0; i < small_tiles.rows(); ++i) {
    for (std::size_t j = 0; j < small_tiles.cols(); ++j) {
      ASSERT_EQ(small_tiles(i, j), large_tiles(i, j)) << i << "," << j;
    }
  }
}

TEST(PackedKernel, BitIdenticalSerialVsThreaded) {
  const PackedTuning saved = packed_tuning();
  set_packed_tuning({32, 8});  // many row strips even at this size
  Rng rng(29);
  const Matrix a = random_matrix(120, 70, rng);
  const Matrix b = random_matrix(70, 90, rng);
  const Matrix serial = multiply(a, b, Kernel::kPacked);
  ThreadPool pool(4);
  const Matrix threaded = multiply(a, b, Kernel::kPacked, &pool);
  set_packed_tuning(saved);
  for (std::size_t i = 0; i < serial.rows(); ++i) {
    for (std::size_t j = 0; j < serial.cols(); ++j) {
      ASSERT_EQ(serial(i, j), threaded(i, j)) << i << "," << j;
    }
  }
}

TEST(PackedKernel, RectangularAndOddShapes) {
  Rng rng(31);
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {1, 1, 1}, {3, 9, 5}, {4, 8, 8}, {5, 4, 9}, {33, 17, 41}};
  for (const auto& [m, k, n] : shapes) {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    const Matrix expect = multiply(a, b, Kernel::kNaiveIjk);
    const Matrix got = multiply(a, b, Kernel::kPacked);
    EXPECT_TRUE(approx_equal(expect, got, 1e-12 * static_cast<double>(k + 1)))
        << m << "x" << k << "x" << n;
  }
}

TEST(PackedKernel, AutotuneReturnsCandidateTiles) {
  const PackedTuning t = autotune_packed(64);
  EXPECT_GE(t.kc, 1u);
  EXPECT_GE(t.mc, 1u);
}

TEST(PackedKernel, SetTuningValidates) {
  EXPECT_THROW(set_packed_tuning({0, 64}), PreconditionError);
  EXPECT_THROW(set_packed_tuning({64, 0}), PreconditionError);
}

TEST(PackedKernel, WallProfileCountsOnlyWhenEnabled) {
  Rng rng(31);
  const Matrix a = random_matrix(32, 32, rng);
  const Matrix b = random_matrix(32, 32, rng);
  reset_kernel_wall_profile();
  multiply(a, b, Kernel::kPacked);  // profiling off: nothing recorded
  EXPECT_EQ(kernel_wall_profile().calls, 0u);
  enable_kernel_wall_profile(true);
  multiply(a, b, Kernel::kPacked);
  multiply(a, b, Kernel::kPacked);
  enable_kernel_wall_profile(false);
  const KernelWallProfile w = kernel_wall_profile();
  EXPECT_EQ(w.calls, 2u);
  EXPECT_GE(w.seconds, 0.0);
  multiply(a, b, Kernel::kPacked);  // off again: count frozen
  EXPECT_EQ(kernel_wall_profile().calls, 2u);
  reset_kernel_wall_profile();
  EXPECT_EQ(kernel_wall_profile().calls, 0u);
}

}  // namespace
}  // namespace hpmm
