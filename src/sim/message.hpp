#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "matrix/matrix.hpp"
#include "topology/topology.hpp"

namespace hpmm {

/// Causal span context stamped onto every message by exchange() when
/// MachineParams::causal is set (see sim/causal.hpp): the run's trace id,
/// the sender's head span at send time (the span whose completion this
/// message causally depends on), and the causal hop depth — how many
/// message transfers the dependency chain behind it has already crossed.
/// Retransmissions of a message under the reliable-delivery protocol reuse
/// the same Message object, so every retry carries the same context. All
/// zero / kNoSpan when causal tracing is off or the sender is unsampled.
struct SpanContext {
  std::uint64_t trace = 0;
  std::uint32_t parent = 0xffffffffu;  ///< CausalGraph::kNoSpan when absent
  std::uint32_t hop = 0;
};

/// A point-to-point message: one or more matrix blocks moving from src to
/// dst in a single transfer. Its cost is t_s + t_w * words() (times hop
/// factors per the routing model).
struct Message {
  ProcId src = 0;
  ProcId dst = 0;
  int tag = 0;
  SpanContext span;
  std::vector<Matrix> blocks;

  Message() = default;
  Message(ProcId s, ProcId d, int t, Matrix block) : src(s), dst(d), tag(t) {
    blocks.push_back(std::move(block));
  }
  Message(ProcId s, ProcId d, int t, std::vector<Matrix> bs)
      : src(s), dst(d), tag(t), blocks(std::move(bs)) {}

  /// Total words carried (the m of t_s + t_w * m).
  std::size_t words() const noexcept {
    std::size_t w = 0;
    for (const auto& b : blocks) w += b.size();
    return w;
  }
};

}  // namespace hpmm
