#pragma once

#include "algorithms/parallel_matmul.hpp"

namespace hpmm {

/// Cannon's algorithm (Section 4.2): memory-efficient block algorithm on a
/// sqrt(p) x sqrt(p) wrap-around mesh. After skewing A's blocks left by their
/// row index and B's blocks up by their column index, the mesh performs
/// sqrt(p) multiply-shift steps (A rolls west, B rolls north).
///
/// Paper model (Eq. 3): T_p = n^3/p + 2 t_s sqrt(p) + 2 t_w n^2/sqrt(p).
/// Nearest-neighbour only, so mesh and hypercube performance coincide
/// (Section 4.4's opening observation) — demonstrable here by running the
/// same algorithm under the Gray-code embedding into a hypercube
/// (Mapping::kHypercubeGray), where every mesh link maps to one cube link
/// (dilation 1) and T_p is bit-identical even under store-and-forward.
class CannonAlgorithm final : public ParallelMatmul {
 public:
  enum class Mapping {
    kMesh,          ///< run on the wrap-around mesh itself
    kHypercubeGray  ///< embed the mesh in a hypercube via Gray codes
  };

  explicit CannonAlgorithm(Mapping mapping = Mapping::kMesh)
      : mapping_(mapping) {}

  std::string name() const override {
    return mapping_ == Mapping::kMesh ? "cannon" : "cannon-gray";
  }
  void check_applicable(std::size_t n, std::size_t p) const override;
  MatmulResult run(const Matrix& a, const Matrix& b, std::size_t p,
                   const MachineParams& params) const override;

  Mapping mapping() const noexcept { return mapping_; }

 private:
  Mapping mapping_;
};

}  // namespace hpmm
