#include "core/experiments.hpp"

#include <cmath>
#include <functional>

#include "analysis/crossover.hpp"
#include "analysis/isoefficiency.hpp"
#include "analysis/region_map.hpp"
#include "analysis/technology.hpp"
#include "core/registry.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace hpmm {
namespace {

ClaimCheck check(std::string claim, double paper, double measured, double lo,
                 double hi, std::string note = "") {
  ClaimCheck c;
  c.claim = std::move(claim);
  c.paper = paper;
  c.measured = measured;
  c.lo = lo;
  c.hi = hi;
  c.passed = measured >= lo && measured <= hi;
  c.note = std::move(note);
  return c;
}

ClaimCheck check_flag(std::string claim, bool expected, bool measured,
                      std::string note = "") {
  ClaimCheck c;
  c.claim = std::move(claim);
  c.paper = expected ? 1.0 : 0.0;
  c.measured = measured ? 1.0 : 0.0;
  c.lo = c.paper;
  c.hi = c.paper;
  c.passed = expected == measured;
  c.note = std::move(note);
  return c;
}

std::vector<double> log_grid(double lo, double hi, int count) {
  std::vector<double> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(lo * std::pow(hi / lo, double(i) / (count - 1)));
  }
  return out;
}

ExperimentResult run_table1() {
  ExperimentResult r{"table1",
                     "Table 1: asymptotic isoefficiency exponents",
                     {}};
  MachineParams mp;
  mp.t_s = 0.5;
  mp.t_w = 0.1;
  const auto ps = log_grid(1e6, 1e12, 7);
  const double e = 0.3;
  const auto fit = [&](const PerfModel& m) {
    return fit_isoefficiency_exponent(m, e, ps).exponent;
  };
  r.checks.push_back(check("Berntsen W ~ p^2 (concurrency bound)", 2.0,
                           fit(BerntsenModel(mp)), 1.9, 2.1));
  r.checks.push_back(
      check("Cannon W ~ p^1.5", 1.5, fit(CannonModel(mp)), 1.45, 1.55));
  r.checks.push_back(check("GK W ~ p^(1+o(1)), below Cannon", 1.0,
                           fit(GkModel(mp)), 1.0, 1.3));
  r.checks.push_back(check("DNS W ~ p^(1+o(1)), best of all", 1.0,
                           fit(DnsModel(mp)), 0.95, 1.2));
  return r;
}

ExperimentResult run_fig(const std::string& id) {
  if (id == "fig1") {
    ExperimentResult r{"fig1", "Figure 1 regions (t_s=150, t_w=3)", {}};
    const RegionMap map(machines::ncube2(), 1.0, 1e8, 48, 1.0, 1e5, 36);
    r.checks.push_back(check_flag("Berntsen region exists below p=n^1.5", true,
                                  map.fraction(Region::kBerntsen) > 0.1));
    r.checks.push_back(check_flag("GK region exists above p=n^1.5", true,
                                  map.fraction(Region::kGk) > 0.1));
    r.checks.push_back(check(
        "DNS region essentially absent (paper: none)", 0.0,
        map.fraction(Region::kDns), 0.0, 0.01,
        "exact Eq. 6 (log r) leaves a sliver at p>6e6; Table 1's bound has none"));
    return r;
  }
  if (id == "fig2") {
    ExperimentResult r{"fig2", "Figure 2 regions (t_s=10, t_w=3)", {}};
    const RegionMap map(machines::future_hypercube(), 1.0, 1e8, 48, 1.0, 1e5, 36);
    r.checks.push_back(check_flag("all four regions present at practical scale",
                                  true,
                                  map.fraction(Region::kGk) > 0.0 &&
                                      map.fraction(Region::kBerntsen) > 0.0 &&
                                      map.fraction(Region::kCannon) > 0.0 &&
                                      map.fraction(Region::kDns) > 0.0));
    return r;
  }
  if (id == "fig3") {
    ExperimentResult r{"fig3", "Figure 3 regions (t_s=0.5, t_w=3)", {}};
    const auto mp = machines::simd_cm2();
    const RegionMap map(mp, 1.0, 1e8, 48, 1.0, 1e5, 36);
    r.checks.push_back(check_flag("DNS best in n^2<=p<=n^3", true,
                                  RegionMap::best_at(mp, 100, 5e4) == Region::kDns));
    r.checks.push_back(check_flag(
        "Cannon best in n^1.5<=p<=n^2", true,
        RegionMap::best_at(mp, 100, 5e3) == Region::kCannon));
    r.checks.push_back(check_flag(
        "GK only at impractical p (footnote 4: p > 1.3e8)", true,
        map.fraction(Region::kGk) < 0.1));
    return r;
  }
  if (id == "fig4") {
    ExperimentResult r{"fig4", "Figure 4: Cannon vs GK, p=64, CM-5", {}};
    const auto mp = machines::cm5_measured();
    const GkCm5Model gk(mp);
    const CannonModel cannon(mp);
    const auto n_eq = n_equal_overhead(gk, cannon, 64.0, 1.0, 1e5);
    r.checks.push_back(check("predicted crossover order (paper: 83)", 83.0,
                             n_eq.value_or(0.0), 78.0, 88.0));
    // End-to-end simulated crossover over real matrices.
    std::vector<std::size_t> orders;
    for (std::size_t n = 16; n <= 160; n += 8) orders.push_back(n);
    const auto gk_sweep = efficiency_sweep("gk-fc", 64, mp, orders, 160);
    const auto cn_sweep = efficiency_sweep("cannon", 64, mp, orders, 160);
    const auto cross = crossover_order(gk_sweep, cn_sweep, true);
    r.checks.push_back(check(
        "simulated crossover order (paper measured: 96)", 96.0,
        cross ? double(*cross) : 0.0, 80.0, 104.0,
        "paper's CM-5 beat its own measured constants; shape reproduces"));
    r.checks.push_back(check_flag(
        "GK more efficient below the crossover", true,
        gk_sweep.front().model_efficiency > cn_sweep.front().model_efficiency));
    return r;
  }
  if (id == "fig5") {
    ExperimentResult r{"fig5", "Figure 5: Cannon p=484 vs GK p=512, CM-5", {}};
    const auto mp = machines::cm5_measured();
    const GkCm5Model gk(mp);
    const CannonModel cannon(mp);
    const auto n_eq = n_equal_overhead(gk, cannon, 512.0, 22.0, 1e5);
    r.checks.push_back(check("predicted crossover order (paper: 295)", 295.0,
                             n_eq.value_or(0.0), 285.0, 305.0));
    const double ratio = gk.efficiency(112, 512) / cannon.efficiency(110, 484);
    r.checks.push_back(check(
        "efficiency gap in GK region (paper: 0.50/0.28 = 1.79x)", 1.79, ratio,
        1.5, 2.2, "absolute E levels sit below the measured curves"));
    return r;
  }
  throw PreconditionError("unknown figure id " + id);
}

ExperimentResult run_sec6() {
  ExperimentResult r{"sec6", "Section 6: cut-off conditions", {}};
  {
    MachineParams mp;
    mp.t_s = 0.0;
    mp.t_w = 3.0;
    const GkModel gk(mp);
    const CannonModel cannon(mp);
    const auto cutoff = dominance_cutoff_p(gk, cannon, 1e12);
    r.checks.push_back(check("GK dominates Cannon beyond p (paper: 1.3e8)",
                             1.3e8, cutoff.value_or(0.0), 0.5e8, 3e8));
  }
  {
    const auto mp = machines::ncube2();
    const double lp_star = 6.0 * (mp.t_s + mp.t_w) / (5.0 * mp.t_w);
    r.checks.push_back(check("DNS-vs-GK curve crosses p=n^3 at (paper: 2.6e18)",
                             2.6e18, std::pow(2.0, lp_star), 2e18, 3.5e18));
  }
  {
    MachineParams mp;
    mp.t_s = 10.0;
    mp.t_w = 1.0;
    const GkModel gk(mp);
    const auto dns_to_table1 = [&](double n, double p) {
      return (mp.t_s + mp.t_w) *
             ((5.0 / 3.0) * p * std::log2(p) + 2.0 * n * n * n);
    };
    bool gk_always_wins = true;
    for (double p = 64; p <= 9216; p *= 2) {
      for (double n = std::cbrt(p); n * n <= p * 1.0001; n *= 1.1) {
        if (gk.t_overhead(n, p) >= dns_to_table1(n, p)) gk_always_wins = false;
      }
    }
    r.checks.push_back(check_flag(
        "t_s=10 t_w: GK beats DNS (Table 1 bound) up to ~10^4 procs", true,
        gk_always_wins));
  }
  return r;
}

ExperimentResult run_sec7() {
  ExperimentResult r{"sec7", "Section 7: all-port communication", {}};
  MachineParams mp;
  mp.t_s = 10.0;
  mp.t_w = 3.0;
  const SimpleModel one_port(mp);
  const SimpleAllPortModel all_port(mp);
  r.checks.push_back(check_flag(
      "all-port communication itself is cheaper (Eq. 16 < Eq. 2)", true,
      all_port.comm_time(1024, 4096) < one_port.comm_time(1024, 4096)));
  // Granularity bound outgrows the one-port isoefficiency.
  const auto ratio_at = [&](double p) {
    const auto w_iso = iso_problem_size(one_port, p, 0.7);
    const double n_min = all_port.min_n_for_channels(p);
    return std::pow(n_min, 3.0) / w_iso.value_or(1.0);
  };
  r.checks.push_back(check_flag(
      "channel-granularity W grows faster than one-port isoefficiency", true,
      ratio_at(1e8) > ratio_at(1e4)));
  return r;
}

ExperimentResult run_sec8() {
  ExperimentResult r{"sec8", "Section 8: technology factors", {}};
  MachineParams mp;
  mp.t_s = 0.0;
  mp.t_w = 3.0;
  const CannonModel cannon(mp);
  const auto more = problem_growth_more_procs(cannon, 1e6, 10.0, 0.7);
  r.checks.push_back(check("Cannon 10x processors => W x (paper: 31.6)", 31.6,
                           more.value_or(0.0), 31.0, 32.3));
  const auto faster =
      problem_growth_faster_procs<CannonModel>(mp, 1e6, 10.0, 0.7);
  r.checks.push_back(check("Cannon 10x faster CPUs => W x (paper: 1000)",
                           1000.0, faster.value_or(0.0), 990.0, 1010.0));
  MachineParams low = mp;
  low.t_s = 0.5;
  const auto duel = more_vs_faster<CannonModel>(low, 4096.0, 256.0, 4.0);
  r.checks.push_back(check_flag(
      "k-fold more processors can beat k-fold faster processors", true,
      duel.more_procs_wins()));
  return r;
}

ExperimentResult run_validation() {
  ExperimentResult r{"validation",
                     "simulation realises the paper's equations", {}};
  MachineParams mp;
  mp.t_s = 60.0;
  mp.t_w = 2.0;
  const auto& reg = default_registry();
  const auto ratio = [&](const char* name, std::size_t n, std::size_t p) {
    const auto model = reg.model(name, mp);
    return validate_algorithm(reg.implementation(name), *model, n, p).ratio();
  };
  r.checks.push_back(check("Cannon sim/Eq.3 ratio", 1.0,
                           ratio("cannon", 32, 64), 0.999, 1.001));
  r.checks.push_back(
      check("GK sim/Eq.7 ratio", 1.0, ratio("gk", 16, 64), 0.999, 1.001));
  r.checks.push_back(check("GK-fc sim/Eq.18 ratio", 1.0,
                           ratio("gk-fc", 16, 64), 0.999, 1.001));
  r.checks.push_back(
      check("DNS sim/Eq.6 ratio", 1.0, ratio("dns", 8, 128), 0.999, 1.001));
  r.checks.push_back(check("Berntsen sim/Eq.5 ratio (reduce-scatter form)",
                           1.0, ratio("berntsen", 32, 64), 0.9, 1.0));
  return r;
}

}  // namespace

std::vector<std::string> ExperimentSuite::ids() {
  return {"table1", "fig1", "fig2", "fig3", "fig4",
          "fig5",   "sec6", "sec7", "sec8", "validation"};
}

bool ExperimentSuite::contains(const std::string& id) {
  for (const auto& known : ids()) {
    if (known == id) return true;
  }
  return false;
}

ExperimentResult ExperimentSuite::run(const std::string& id) {
  if (id == "table1") return run_table1();
  if (id == "fig1" || id == "fig2" || id == "fig3" || id == "fig4" ||
      id == "fig5") {
    return run_fig(id);
  }
  if (id == "sec6") return run_sec6();
  if (id == "sec7") return run_sec7();
  if (id == "sec8") return run_sec8();
  if (id == "validation") return run_validation();
  throw PreconditionError("ExperimentSuite: unknown experiment '" + id + "'");
}

std::vector<ExperimentResult> ExperimentSuite::run_all() {
  std::vector<ExperimentResult> out;
  for (const auto& id : ids()) out.push_back(run(id));
  return out;
}

void ExperimentSuite::print_report(const std::vector<ExperimentResult>& results,
                                   std::ostream& os) {
  std::size_t passed = 0, total = 0;
  for (const auto& r : results) {
    os << "== " << r.id << ": " << r.title << "\n";
    for (const auto& c : r.checks) {
      ++total;
      if (c.passed) ++passed;
      os << "  [" << (c.passed ? "PASS" : "FAIL") << "] " << c.claim
         << ": paper " << format_number(c.paper, 4) << ", measured "
         << format_number(c.measured, 4) << " (band ["
         << format_number(c.lo, 4) << ", " << format_number(c.hi, 4) << "])";
      if (!c.note.empty()) os << "  -- " << c.note;
      os << "\n";
    }
  }
  os << "\n" << passed << "/" << total << " claims reproduced\n";
}

}  // namespace hpmm
