#include "analysis/speedup.hpp"

#include <cmath>

#include "analysis/isoefficiency.hpp"
#include "util/error.hpp"

namespace hpmm {

std::vector<SpeedupPoint> fixed_size_speedup(const PerfModel& model, double n,
                                             std::span<const double> procs) {
  require(n >= 1.0, "fixed_size_speedup: n must be >= 1");
  std::vector<SpeedupPoint> out;
  for (double p : procs) {
    if (!model.applicable(n, p)) continue;
    out.push_back(SpeedupPoint{p, model.speedup(n, p), model.efficiency(n, p)});
  }
  return out;
}

std::optional<SpeedupPoint> max_fixed_size_speedup(const PerfModel& model,
                                                   double n) {
  require(n >= 1.0, "max_fixed_size_speedup: n must be >= 1");
  // Scan a dense log grid of applicable p for the best point.
  double best_p = 0.0, best_s = -1.0;
  const double p_hi = std::min(model.max_procs(n), 1e30);
  if (p_hi < 1.0) return std::nullopt;
  const int kSamples = 400;
  for (int i = 0; i <= kSamples; ++i) {
    const double p =
        std::pow(p_hi, static_cast<double>(i) / static_cast<double>(kSamples));
    if (!model.applicable(n, p)) continue;
    const double s = model.speedup(n, p);
    if (s > best_s) {
      best_s = s;
      best_p = p;
    }
  }
  if (best_s < 0.0) return std::nullopt;
  // Golden-section refinement around the best sample.
  double lo = best_p / 2.0, hi = std::min(best_p * 2.0, p_hi);
  lo = std::max(lo, 1.0);
  constexpr double kPhi = 0.6180339887498949;
  for (int iter = 0; iter < 120 && hi - lo > 1e-9 * hi; ++iter) {
    const double x1 = hi - kPhi * (hi - lo);
    const double x2 = lo + kPhi * (hi - lo);
    const double s1 = model.applicable(n, x1) ? model.speedup(n, x1) : -1.0;
    const double s2 = model.applicable(n, x2) ? model.speedup(n, x2) : -1.0;
    if (s1 >= s2) {
      hi = x2;
    } else {
      lo = x1;
    }
  }
  const double p_star = 0.5 * (lo + hi);
  if (!model.applicable(n, p_star)) {
    return SpeedupPoint{best_p, best_s, best_s / best_p};
  }
  const double s_star = model.speedup(n, p_star);
  if (s_star < best_s) return SpeedupPoint{best_p, best_s, best_s / best_p};
  return SpeedupPoint{p_star, s_star, s_star / p_star};
}

std::vector<SpeedupPoint> isoefficient_speedup(const PerfModel& model,
                                               double efficiency,
                                               std::span<const double> procs) {
  std::vector<SpeedupPoint> out;
  for (double p : procs) {
    const auto n = iso_matrix_order(model, p, efficiency);
    if (!n) continue;
    out.push_back(SpeedupPoint{p, model.speedup(*n, p), model.efficiency(*n, p)});
  }
  return out;
}

}  // namespace hpmm
