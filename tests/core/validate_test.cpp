#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"

namespace hpmm {
namespace {

MachineParams params(double ts, double tw) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

TEST(Validate, CannonSimEqualsModelExactly) {
  const auto& reg = default_registry();
  const auto model = reg.model("cannon", params(150, 3));
  const auto pt = validate_algorithm(reg.implementation("cannon"), *model, 16, 16);
  EXPECT_TRUE(pt.product_correct);
  EXPECT_NEAR(pt.ratio(), 1.0, 1e-9);
}

TEST(Validate, GkSimEqualsModelExactly) {
  const auto& reg = default_registry();
  const auto model = reg.model("gk", params(150, 3));
  const auto pt = validate_algorithm(reg.implementation("gk"), *model, 16, 64);
  EXPECT_TRUE(pt.product_correct);
  EXPECT_NEAR(pt.ratio(), 1.0, 1e-9);
}

TEST(Validate, GkFcSimEqualsModelExactly) {
  const auto& reg = default_registry();
  const auto model = reg.model("gk-fc", machines::cm5_measured());
  const auto pt = validate_algorithm(reg.implementation("gk-fc"), *model, 16, 64);
  EXPECT_TRUE(pt.product_correct);
  EXPECT_NEAR(pt.ratio(), 1.0, 1e-9);
}

TEST(Validate, AllRegisteredAlgorithmsWithinModelBand) {
  // Across the registry the simulation should stay within a constant factor
  // of the paper expression (constants differ where the paper is loose —
  // e.g. the Simple algorithm's t_s coefficient and Fox's pipelining).
  const auto& reg = default_registry();
  struct Case {
    const char* name;
    std::size_t n, p;
  };
  for (const Case c : {Case{"simple", 16, 16}, Case{"cannon", 16, 16},
                       Case{"fox", 16, 16}, Case{"berntsen", 16, 8},
                       Case{"dns", 8, 128}, Case{"gk", 16, 64},
                       Case{"gk-jh", 16, 64}, Case{"gk-fc", 16, 64},
                       Case{"simple-allport", 16, 16},
                       Case{"gk-allport", 16, 64}}) {
    const auto model = reg.model(c.name, params(40, 2.5));
    const auto pt =
        validate_algorithm(reg.implementation(c.name), *model, c.n, c.p);
    EXPECT_TRUE(pt.product_correct) << c.name;
    EXPECT_GT(pt.ratio(), 0.2) << c.name;
    EXPECT_LT(pt.ratio(), 5.0) << c.name;
  }
}

TEST(Validate, ToleranceScalesWithN) {
  EXPECT_GT(product_tolerance(1000), product_tolerance(10));
}

TEST(Validate, SeedChangesInputsNotCorrectness) {
  const auto& reg = default_registry();
  const auto model = reg.model("cannon", params(10, 1));
  const auto p1 = validate_algorithm(reg.implementation("cannon"), *model, 8, 4, 1);
  const auto p2 = validate_algorithm(reg.implementation("cannon"), *model, 8, 4, 2);
  EXPECT_TRUE(p1.product_correct);
  EXPECT_TRUE(p2.product_correct);
  // Same timing (data-independent), different data.
  EXPECT_DOUBLE_EQ(p1.sim_t_parallel, p2.sim_t_parallel);
}

}  // namespace
}  // namespace hpmm
