#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "machine/params.hpp"
#include "matrix/matrix.hpp"
#include "sim/fault.hpp"

namespace hpmm {

/// Final disposition of one serve request (DESIGN.md "Serving mode &
/// robustness envelope"). The four rejections happen at arrival, before any
/// simulation; the other outcomes follow service (possibly after retries).
enum class ServeOutcome : std::uint8_t {
  kOk,                  ///< completed with no uncorrected fault
  kDeadlineExceeded,    ///< aborted when its virtual-time budget ran out
  kFailed,              ///< every allowed attempt ended with a detected fault
  kRejectedInvalid,     ///< unknown algorithm, or n/p of zero
  kRejectedInfeasible,  ///< no formulation applicable at (n, p)
  kRejectedBreaker,     ///< tenant's circuit breaker was open
  kRejectedQueueFull,   ///< server-wide admission queue at capacity
  kRejectedQuota,       ///< tenant's in-flight quota exhausted
};

const char* to_string(ServeOutcome outcome) noexcept;

/// True for the four admission-time rejections.
bool is_rejection(ServeOutcome outcome) noexcept;

/// One request of a serve workload: which multiplication to run, for whom,
/// when it arrives, and under what (optional) injected faults. Produced by
/// the script parser or the workload generators (serve/script.hpp,
/// serve/chaos.hpp).
struct TenantRequest {
  /// Position in the submitted stream; the server overwrites it, and the
  /// operand matrices and retry jitter derive from it, so a request's
  /// numerics depend only on where it sits in the workload.
  std::uint64_t id = 0;
  std::string tenant = "default";
  double arrival = 0.0;  ///< virtual arrival time
  std::string algo;      ///< formulation name; "" lets the selector choose
  std::size_t n = 0;     ///< matrix order
  std::size_t p = 0;     ///< simulated processors
  std::string machine = "ncube2";  ///< preset name (serve_machine_params)
  /// Deadline budget as a multiple of the plan's model-predicted T_p;
  /// 0 defers to the server-wide ServeOptions::deadline_factor.
  double deadline_factor = 0.0;
  /// Injected faults for this request's simulations; null = clean machine.
  std::shared_ptr<const FaultPlan> faults;
};

/// Machine preset by serve-script name: ideal, ncube2, future, cm2 or cm5.
/// Throws PreconditionError for anything else.
MachineParams serve_machine_params(const std::string& name);

/// Copy of `base` with its injection seed re-mixed for retry `attempt`
/// (attempt 0 returns `base` unchanged; null passes through). The injector
/// hashes (seed, round, src, dst, tag), so rerunning the same communication
/// pattern under the same plan reproduces the same faults — a retried
/// request must draw a fresh seed per attempt or it would relive the
/// identical corruption forever.
std::shared_ptr<const FaultPlan> fault_plan_for_attempt(
    const std::shared_ptr<const FaultPlan>& base, unsigned attempt);

/// Deterministic operand matrix for request `id` (`salt` distinguishes A
/// from B): integer entries in [1, 8], so products and ABFT checksums are
/// exact and no payload word is 0.0 — whose mantissa-flip corruption a
/// checksum cannot see.
Matrix request_operand(std::size_t n, std::uint64_t id, std::uint64_t salt);

/// Everything the server recorded about one request.
struct RequestRecord {
  TenantRequest request;
  ServeOutcome outcome = ServeOutcome::kOk;
  unsigned attempts = 0;      ///< service attempts run (0 for rejections)
  std::int64_t slot = -1;     ///< executor slot of the last attempt (-1 if
                              ///< the request was never dispatched)
  bool cache_hit = false;     ///< plan came from the plan cache
  std::string algorithm;      ///< formulation actually run ("" if rejected)
  double deadline = 0.0;      ///< virtual-time budget (0 = unbounded)
  double start = 0.0;         ///< virtual time service first began
  double finish = 0.0;        ///< virtual time of the final event
  double latency = 0.0;       ///< finish - arrival (wait + service + retries)
  double service_time = 0.0;  ///< simulated time of the last attempt
  std::string detail;         ///< failure explanation, "" when kOk
};

}  // namespace hpmm
