#include "serve/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/error.hpp"

namespace hpmm {

std::vector<TenantRequest> noisy_neighbor_scenario(
    const NoisyNeighborOptions& options) {
  require(options.gap > 0.0, "noisy_neighbor_scenario: gap must be positive");
  require(options.corrupt_prob >= 0.0 && options.corrupt_prob <= 1.0,
          "noisy_neighbor_scenario: corrupt_prob must be within [0, 1]");
  std::vector<TenantRequest> requests;
  requests.reserve(options.healthy_requests + options.noisy_requests);
  for (std::size_t i = 0; i < options.healthy_requests; ++i) {
    TenantRequest req;
    req.tenant = "steady";
    req.arrival = static_cast<double>(i) * options.gap;
    req.algo = "cannon";
    req.n = 16;
    req.p = 16;
    req.machine = options.machine;
    requests.push_back(std::move(req));
  }
  for (std::size_t i = 0; i < options.noisy_requests; ++i) {
    TenantRequest req;
    req.tenant = "noisy";
    // Offset by half a gap: interleaved with, never tied to, steady's
    // arrivals.
    req.arrival = (static_cast<double>(i) + 0.5) * options.gap;
    req.algo = "cannon";
    req.n = 16;
    req.p = 16;
    req.machine = options.machine;
    if (options.noisy_faulty) {
      auto plan = std::make_shared<FaultPlan>();
      plan->corrupt_prob = options.corrupt_prob;
      plan->abft = AbftMode::kDetect;  // detected but never repaired
      plan->seed = options.seed + i;
      req.faults = std::move(plan);
    }
    requests.push_back(std::move(req));
  }
  // Arrivals need not be sorted for the server, but a time-ordered script
  // reads better in request logs.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const TenantRequest& a, const TenantRequest& b) {
                     return a.arrival < b.arrival;
                   });
  return requests;
}

std::vector<TenantRequest> thundering_herd_scenario(
    const ThunderingHerdOptions& options) {
  require(options.tenants >= 1,
          "thundering_herd_scenario: tenants must be >= 1");
  std::vector<TenantRequest> requests;
  requests.reserve(options.requests);
  for (std::size_t i = 0; i < options.requests; ++i) {
    TenantRequest req;
    req.tenant = "herd" + std::to_string(i % options.tenants);
    req.arrival = 0.0;
    req.algo = "cannon";
    req.n = 16;
    req.p = 16;
    req.machine = options.machine;
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<TenantRequest> straggler_storm_scenario(
    const StragglerStormOptions& options) {
  require(options.requests >= 1,
          "straggler_storm_scenario: requests must be >= 1");
  require(options.gap > 0.0, "straggler_storm_scenario: gap must be positive");
  require(options.max_slowdown >= 1.0,
          "straggler_storm_scenario: max_slowdown must be >= 1");
  std::vector<TenantRequest> requests;
  requests.reserve(options.requests);
  for (std::size_t i = 0; i < options.requests; ++i) {
    TenantRequest req;
    req.tenant = "storm";
    req.arrival = static_cast<double>(i) * options.gap;
    req.algo = "cannon";
    req.n = 16;
    req.p = 16;
    req.machine = options.machine;
    // Slowdown ramps geometrically from 1 (clean) to max_slowdown.
    const double t =
        options.requests > 1
            ? static_cast<double>(i) / static_cast<double>(options.requests - 1)
            : 1.0;
    const double factor = std::pow(options.max_slowdown, t);
    if (factor > 1.0) {
      auto plan = std::make_shared<FaultPlan>();
      plan->stragglers.push_back({0, factor});
      plan->seed = options.seed + i;
      req.faults = std::move(plan);
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace hpmm
