#pragma once

#include <optional>

#include "analysis/perf_model.hpp"

namespace hpmm {

/// Equal-overhead analysis (Section 6): for two formulations and a given p,
/// the matrix order n_EqualTo(p) at which their total overheads coincide.
/// Below it the formulation with the cheaper startup side wins, above it the
/// one with the cheaper bandwidth side wins.

/// The n in [n_lo, n_hi] with T_o^A(n, p) = T_o^B(n, p), found by bisection
/// on the sign of the difference. Returns nullopt when the difference does
/// not change sign over the interval (one algorithm dominates throughout).
std::optional<double> n_equal_overhead(const PerfModel& a, const PerfModel& b,
                                       double p, double n_lo = 1.0,
                                       double n_hi = 1e9);

/// Closed form of Eq. 15 for GK vs Cannon:
///   n = sqrt( ((5/3) p log p - 2 p^{3/2}) t_s /
///             ((2 sqrt(p) - (5/3) p^{1/3} log p) t_w) ).
/// Returns nullopt when the expression is not a positive real (no crossover
/// at this p).
std::optional<double> n_equal_overhead_gk_cannon(const MachineParams& params,
                                                 double p);

/// The smallest p (searched over a log grid) beyond which model `a` has
/// smaller overhead than model `b` for *every* n in both ranges of
/// applicability — e.g. GK dominates Cannon for p > ~1.3e8 even at t_s = 0
/// (Section 6). Returns nullopt if no such p <= p_max exists.
std::optional<double> dominance_cutoff_p(const PerfModel& a, const PerfModel& b,
                                         double p_max = 1e20);

/// True when a's overhead is <= b's for every applicable n at this p.
bool dominates_at_p(const PerfModel& a, const PerfModel& b, double p);

}  // namespace hpmm
