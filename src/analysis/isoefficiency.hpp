#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analysis/perf_model.hpp"

namespace hpmm {

/// Numeric isoefficiency analysis (Section 3): for a model and a target
/// efficiency E, find how fast the problem size W = n^3 must grow with p to
/// hold E — the isoefficiency function f_E(p) of Equation (1).

/// The smallest matrix order n at which the model achieves efficiency >= E
/// on p processors, found by bisection (efficiency is monotonically
/// increasing in n at fixed p for every model in this library, up to the
/// concurrency bound). Returns nullopt when E is unreachable for this p —
/// e.g. above the DNS efficiency ceiling, or beyond a concurrency limit.
std::optional<double> iso_matrix_order(const PerfModel& model, double p,
                                       double target_efficiency);

/// The isoefficiency problem size W(p) = n^3 at fixed efficiency, or nullopt.
std::optional<double> iso_problem_size(const PerfModel& model, double p,
                                       double target_efficiency);

/// Result of fitting W(p) ~ c * p^x over a range of processor counts.
struct IsoFit {
  double exponent = 0.0;    ///< x in W ~ p^x (log-log least squares)
  double log_c = 0.0;       ///< intercept
  double max_residual = 0.0;///< worst |log W - fit| over the sample
  std::size_t points = 0;   ///< processor counts that admitted the efficiency
};

/// Fit the isoefficiency exponent over the given processor counts. Points
/// where the efficiency is unreachable are skipped (reflected in `points`).
IsoFit fit_isoefficiency_exponent(const PerfModel& model,
                                  double target_efficiency,
                                  std::span<const double> procs);

/// Closed-form asymptotic isoefficiency exponents from Table 1, for
/// reference and for validating the numeric fits:
/// berntsen 2.0, cannon 1.5, gk 1.0 (x (log p)^3), dns 1.0 (x log p).
double table1_asymptotic_exponent(const std::string& model_name);

}  // namespace hpmm
