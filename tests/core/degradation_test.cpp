// Graceful degradation: select_degraded re-plans onto the largest feasible
// surviving configuration, and run_resilient completes the multiplication
// through fail-stop failures instead of aborting.

#include <gtest/gtest.h>

#include <memory>

#include "core/runner.hpp"
#include "core/selector.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "sim/fault.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams test_params() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  return m;
}

TEST(SelectDegraded, FindsLargestFeasibleConfiguration) {
  // 15 survivors of an n=32 machine: no formulation takes p=15 (not a
  // square, not 2^(3q), ...), so the plan steps down until one fits.
  const DegradedSelection deg = select_degraded(32, 15, test_params());
  EXPECT_LT(deg.p, 15u);
  EXPECT_GE(deg.p, 1u);
  EXPECT_FALSE(deg.selection.best.empty());
  // Nothing between deg.p and 15 was feasible.
  for (std::size_t q = deg.p + 1; q <= 15; ++q) {
    EXPECT_TRUE(select_algorithm(32, q, test_params()).best.empty())
        << "p=" << q << " was feasible but skipped";
  }
}

TEST(SelectDegraded, KeepsFullCountWhenFeasible) {
  const DegradedSelection deg = select_degraded(32, 16, test_params());
  EXPECT_EQ(deg.p, 16u);  // 16 is a perfect square: cannon and friends fit
}

TEST(SelectDegraded, SingleSurvivorStillPlans) {
  const DegradedSelection deg = select_degraded(32, 1, test_params());
  EXPECT_EQ(deg.p, 1u);
  EXPECT_FALSE(deg.selection.best.empty());
}

TEST(SelectDegraded, ZeroSurvivorsIsAnError) {
  EXPECT_THROW(select_degraded(32, 0, test_params()), PreconditionError);
}

TEST(RunResilient, CompletesWithoutFaultsUnchanged) {
  Rng rng(21);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  const ResilientRun run = run_resilient(a, b, 16, test_params(), "cannon");
  EXPECT_EQ(run.algorithm, "cannon");
  EXPECT_EQ(run.procs, 16u);
  EXPECT_TRUE(run.degradations.empty());
  EXPECT_DOUBLE_EQ(run.wasted_time, 0.0);
}

TEST(RunResilient, AbsorbsOneFailStop) {
  const std::size_t n = 32, p = 16;
  Rng rng(22);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  const Matrix reference = multiply(a, b);

  MachineParams mp = test_params();
  auto plan = std::make_shared<FaultPlan>();
  plan->failstops.push_back({5, 200.0});
  mp.faults = plan;

  const ResilientRun run = run_resilient(a, b, p, mp, "cannon");
  ASSERT_EQ(run.degradations.size(), 1u);
  EXPECT_EQ(run.degradations[0].failed_pid, 5u);
  EXPECT_DOUBLE_EQ(run.degradations[0].failed_at, 200.0);
  EXPECT_EQ(run.degradations[0].procs_before, 16u);
  EXPECT_LT(run.procs, 16u);
  EXPECT_DOUBLE_EQ(run.wasted_time, 200.0);

  // The completed product is still right.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(run.result.c(i, j), reference(i, j), 1e-9);
    }
  }
}

TEST(RunResilient, AbsorbsCascadingFailStops) {
  // A second fail-stop scheduled on a processor that survives the first
  // re-plan fires during the replacement run and triggers another round.
  const std::size_t n = 32, p = 16;
  Rng rng(23);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);

  MachineParams mp = test_params();
  auto plan = std::make_shared<FaultPlan>();
  plan->failstops.push_back({5, 200.0});
  plan->failstops.push_back({0, 400.0});
  mp.faults = plan;

  const ResilientRun run = run_resilient(a, b, p, mp, "cannon");
  EXPECT_EQ(run.degradations.size(), 2u);
  EXPECT_GT(run.wasted_time, 200.0);
  const Matrix reference = multiply(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(run.result.c(i, j), reference(i, j), 1e-9);
    }
  }
}

TEST(RunResilient, SelectsAlgorithmWhenUnspecified) {
  Rng rng(24);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  const ResilientRun run = run_resilient(a, b, 16, test_params());
  EXPECT_FALSE(run.algorithm.empty());
  EXPECT_EQ(run.procs, 16u);
}

TEST(RunResilient, DegradationRemovesOtherFaultsOutsideNewConfiguration) {
  // Fail-stops pinned to processors beyond the shrunken machine must not
  // make the re-plan's machine construction fail.
  const std::size_t n = 32, p = 16;
  Rng rng(25);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);

  MachineParams mp = test_params();
  auto plan = std::make_shared<FaultPlan>();
  plan->failstops.push_back({3, 100.0});
  plan->failstops.push_back({15, 1e9});  // outside any smaller configuration
  plan->stragglers.push_back({14, 2.0});
  mp.faults = plan;

  const ResilientRun run = run_resilient(a, b, p, mp, "cannon");
  ASSERT_GE(run.degradations.size(), 1u);
  EXPECT_EQ(run.degradations[0].failed_pid, 3u);
  const Matrix reference = multiply(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(run.result.c(i, j), reference(i, j), 1e-9);
    }
  }
}

}  // namespace
}  // namespace hpmm
