#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algorithms/parallel_matmul.hpp"
#include "analysis/perf_model.hpp"

namespace hpmm {

/// Maps algorithm names to their simulatable implementation and analytical
/// model — the "library of algorithms" the paper's conclusion proposes, from
/// which "the best algorithm can be pulled out by a smart preprocessor".
class AlgorithmRegistry {
 public:
  /// Registry of every formulation with both an implementation and a model:
  /// simple, cannon, fox, berntsen, dns, gk, gk-jh, gk-fc, simple-allport,
  /// gk-allport.
  AlgorithmRegistry();

  /// Names in paper order.
  std::vector<std::string> names() const;

  bool contains(const std::string& name) const;

  /// The simulatable implementation; throws PreconditionError for unknown
  /// names.
  const ParallelMatmul& implementation(const std::string& name) const;

  /// A fresh analytical model bound to `params`; throws for unknown names.
  std::unique_ptr<PerfModel> model(const std::string& name,
                                   const MachineParams& params) const;

 private:
  struct Entry;
  std::vector<Entry> entries_;
  const Entry& find(const std::string& name) const;
};

/// Process-wide registry instance.
const AlgorithmRegistry& default_registry();

}  // namespace hpmm
