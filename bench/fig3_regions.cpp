// Figure 3: comparison of the four algorithms for t_w = 3, t_s = 0.5 (a
// CM-2-like SIMD machine). Expected picture: DNS (d) for n^2 <= p <= n^3,
// Cannon (c) for n^{3/2} <= p <= n^2, Berntsen (b) below, no GK region at
// practical scale.

#include "region_common.hpp"
#include "machine/params.hpp"

int main() {
  hpmm::bench::run_region_figure(hpmm::machines::simd_cm2(), "Figure 3");
  return 0;
}
