#include "matrix/generate.hpp"

namespace hpmm {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                     double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(lo, hi);
  return m;
}

Matrix identity_matrix(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix index_matrix(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = static_cast<double>(i * cols + j);
    }
  }
  return m;
}

Matrix constant_matrix(std::size_t rows, std::size_t cols, double value) {
  return Matrix(rows, cols, value);
}

Matrix hilbert_matrix(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = 1.0 / static_cast<double>(1 + i + j);
    }
  }
  return m;
}

}  // namespace hpmm
