#include "algorithms/dns.hpp"

#include <cmath>

#include "sim/collectives.hpp"
#include "sim/sim_machine.hpp"
#include "topology/hypercube.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr int kTagMoveA = 1;
constexpr int kTagMoveB = 2;
constexpr int kTagBcastA = 3;
constexpr int kTagBcastB = 4;
constexpr int kTagAlignA = 5;
constexpr int kTagAlignB = 6;
constexpr int kTagShiftA = 7;
constexpr int kTagShiftB = 8;
constexpr int kTagReduce = 9;

}  // namespace

void DnsAlgorithm::check_applicable(std::size_t n, std::size_t p) const {
  require(p >= 1, "dns: need at least one processor");
  require(is_pow2(n), "dns: n must be a power of two (hypercube addressing)");
  const std::size_t n2 = n * n;
  require(p >= n2, "dns: at least n^2 processors required (Table 1)");
  require(p % n2 == 0, "dns: p must be a multiple of n^2");
  const std::size_t r = p / n2;
  require(r <= n, "dns: at most n^3 processors usable");
  require(is_pow2(r), "dns: p/n^2 must be a power of two");
}

MatmulResult DnsAlgorithm::run(const Matrix& a, const Matrix& b, std::size_t p,
                               const MachineParams& params) const {
  const std::size_t n = validated_order(a, b);
  check_applicable(n, p);
  const std::size_t r = p / (n * n);  // superprocessor grid side
  const std::size_t m = n / r;        // internal mesh side (n/r)
  const std::size_t mm = m * m;       // processors per superprocessor

  auto topo = std::make_shared<Hypercube>(Hypercube::with_procs(p));
  SimMachine machine(topo, params);

  // Rank layout: [ i | j | k | u*m+v ] — superprocessor coordinates in the
  // high bits, internal mesh position in the low bits, so that every i/j/k
  // line and every internal mesh row is a hypercube subcube.
  const auto rank = [&](std::size_t i, std::size_t j, std::size_t k,
                        std::size_t u, std::size_t v) {
    return static_cast<ProcId>((((i * r + j) * r + k) * mm) + u * m + v);
  };

  // a_elem/b_elem: the single matrix element currently held by each
  // processor (1x1 matrices so they travel as ordinary messages).
  std::vector<Matrix> a_elem(p), b_elem(p);

  // Initial layout (plane i = 0): processor (0, j, k, u, v) holds
  // A[j*m+u][k*m+v] and B[j*m+u][k*m+v].
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = 0; k < r; ++k) {
      for (std::size_t u = 0; u < m; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          const ProcId pid = rank(0, j, k, u, v);
          Matrix ea(1, 1), eb(1, 1);
          ea(0, 0) = a(j * m + u, k * m + v);
          eb(0, 0) = b(j * m + u, k * m + v);
          a_elem[pid] = std::move(ea);
          b_elem[pid] = std::move(eb);
          machine.note_alloc(pid, 2);
        }
      }
    }
  }

  // --- Stage 1a: route A elements from (0, j, t) to (t, j, t) with
  // dimension-ordered hops along the i axis (log r rounds, worst case).
  // The element for A block (j, t) travels up its own (j, t, u, v) i-line,
  // so no two messages ever contend for a processor.
  machine.begin_phase("move-a");
  for (std::size_t dbit = 1; dbit < r; dbit <<= 1) {
    std::vector<Message> msgs;
    for (std::size_t j = 0; j < r; ++j) {
      for (std::size_t t = 0; t < r; ++t) {
        if ((t & dbit) == 0) continue;
        const std::size_t cur = t & (dbit - 1);
        for (std::size_t u = 0; u < m; ++u) {
          for (std::size_t v = 0; v < m; ++v) {
            const ProcId src = rank(cur, j, t, u, v);
            const ProcId dst = rank(cur | dbit, j, t, u, v);
            msgs.emplace_back(src, dst, kTagMoveA, std::move(a_elem[src]));
          }
        }
      }
    }
    if (msgs.empty()) continue;
    machine.exchange(std::move(msgs));
    for (std::size_t j = 0; j < r; ++j) {
      for (std::size_t t = 0; t < r; ++t) {
        if ((t & dbit) == 0) continue;
        const std::size_t cur = (t & (dbit - 1)) | dbit;
        for (std::size_t u = 0; u < m; ++u) {
          for (std::size_t v = 0; v < m; ++v) {
            const ProcId dst = rank(cur, j, t, u, v);
            a_elem[dst] = std::move(machine.receive(dst, kTagMoveA).blocks.front());
          }
        }
      }
    }
  }

  machine.synchronize();  // phase barrier: simulated time decomposes as Eq. 6
  machine.end_phase();

  // --- Stage 1b: same for B, from (0, t, k) to (t, t, k).
  machine.begin_phase("move-b");
  for (std::size_t dbit = 1; dbit < r; dbit <<= 1) {
    std::vector<Message> msgs;
    for (std::size_t t = 0; t < r; ++t) {
      if ((t & dbit) == 0) continue;
      const std::size_t cur = t & (dbit - 1);
      for (std::size_t k = 0; k < r; ++k) {
        for (std::size_t u = 0; u < m; ++u) {
          for (std::size_t v = 0; v < m; ++v) {
            const ProcId src = rank(cur, t, k, u, v);
            const ProcId dst = rank(cur | dbit, t, k, u, v);
            msgs.emplace_back(src, dst, kTagMoveB, std::move(b_elem[src]));
          }
        }
      }
    }
    if (msgs.empty()) continue;
    machine.exchange(std::move(msgs));
    for (std::size_t t = 0; t < r; ++t) {
      if ((t & dbit) == 0) continue;
      const std::size_t cur = (t & (dbit - 1)) | dbit;
      for (std::size_t k = 0; k < r; ++k) {
        for (std::size_t u = 0; u < m; ++u) {
          for (std::size_t v = 0; v < m; ++v) {
            const ProcId dst = rank(cur, t, k, u, v);
            b_elem[dst] = std::move(machine.receive(dst, kTagMoveB).blocks.front());
          }
        }
      }
    }
  }

  machine.synchronize();
  machine.end_phase();

  // --- Stage 1c: broadcast A along k-lines: (i, j, i) -> (i, j, *).
  // Superprocessor (i, j, k) must hold A block (j, i), element [u][v].
  if (r > 1) {
    machine.begin_phase("broadcast-a");
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        for (std::size_t u = 0; u < m; ++u) {
          for (std::size_t v = 0; v < m; ++v) {
            std::vector<ProcId> group;
            group.reserve(r);
            for (std::size_t k = 0; k < r; ++k) group.push_back(rank(i, j, k, u, v));
            auto copies = broadcast_binomial(machine, group, i, kTagBcastA,
                                             std::move(a_elem[group[i]]));
            for (std::size_t k = 0; k < r; ++k) {
              a_elem[group[k]] = std::move(copies[k]);
            }
          }
        }
      }
    }
    machine.synchronize();
    machine.end_phase();
    // --- Stage 1d: broadcast B along j-lines: (i, i, k) -> (i, *, k).
    machine.begin_phase("broadcast-b");
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t k = 0; k < r; ++k) {
        for (std::size_t u = 0; u < m; ++u) {
          for (std::size_t v = 0; v < m; ++v) {
            std::vector<ProcId> group;
            group.reserve(r);
            for (std::size_t j = 0; j < r; ++j) group.push_back(rank(i, j, k, u, v));
            auto copies = broadcast_binomial(machine, group, i, kTagBcastB,
                                             std::move(b_elem[group[i]]));
            for (std::size_t j = 0; j < r; ++j) {
              b_elem[group[j]] = std::move(copies[j]);
            }
          }
        }
      }
    }
    machine.synchronize();
    machine.end_phase();
  }

  machine.synchronize();

  // --- Stage 2: one-element-per-processor Cannon inside every
  // superprocessor: align, then m multiply-shift steps. (m = 1 makes this a
  // single scalar multiply-add — the classic DNS case.)
  std::vector<Matrix> c_elem(p);
  for (ProcId pid = 0; pid < p; ++pid) c_elem[pid] = Matrix(1, 1);

  const auto for_all_superprocs = [&](auto&& fn) {
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        for (std::size_t k = 0; k < r; ++k) fn(i, j, k);
      }
    }
  };

  if (m > 1) {
    // Alignment: element (u, v) of A moves left by u; of B moves up by v.
    PhaseScope scope(machine, "align");
    std::vector<Message> align_a, align_b;
    for_all_superprocs([&](std::size_t i, std::size_t j, std::size_t k) {
      for (std::size_t u = 0; u < m; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          if (u != 0) {
            align_a.emplace_back(rank(i, j, k, u, v),
                                 rank(i, j, k, u, (v + m - u) % m), kTagAlignA,
                                 std::move(a_elem[rank(i, j, k, u, v)]));
          }
          if (v != 0) {
            align_b.emplace_back(rank(i, j, k, u, v),
                                 rank(i, j, k, (u + m - v) % m, v), kTagAlignB,
                                 std::move(b_elem[rank(i, j, k, u, v)]));
          }
        }
      }
    });
    machine.exchange(std::move(align_a));
    machine.exchange(std::move(align_b));
    for_all_superprocs([&](std::size_t i, std::size_t j, std::size_t k) {
      for (std::size_t u = 0; u < m; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          const ProcId pid = rank(i, j, k, u, v);
          if (u != 0) {
            a_elem[pid] = std::move(machine.receive(pid, kTagAlignA).blocks.front());
          }
          if (v != 0) {
            b_elem[pid] = std::move(machine.receive(pid, kTagAlignB).blocks.front());
          }
        }
      }
    });
  }

  for (std::size_t step = 0; step < m; ++step) {
    std::vector<SimMachine::ComputeTask> phase;
    phase.reserve(p);
    for (ProcId pid = 0; pid < p; ++pid) {
      phase.push_back({pid, &c_elem[pid], {{&a_elem[pid], &b_elem[pid]}}});
    }
    {
      PhaseScope scope(machine, "multiply");
      machine.compute_multiply_add_batch(phase);
    }
    if (step + 1 == m) break;
    PhaseScope scope(machine, "shift");
    std::vector<Message> shift_a, shift_b;
    for_all_superprocs([&](std::size_t i, std::size_t j, std::size_t k) {
      for (std::size_t u = 0; u < m; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          const ProcId pid = rank(i, j, k, u, v);
          shift_a.emplace_back(pid, rank(i, j, k, u, (v + m - 1) % m), kTagShiftA,
                               std::move(a_elem[pid]));
          shift_b.emplace_back(pid, rank(i, j, k, (u + m - 1) % m, v), kTagShiftB,
                               std::move(b_elem[pid]));
        }
      }
    });
    machine.exchange(std::move(shift_a));
    machine.exchange(std::move(shift_b));
    for (ProcId pid = 0; pid < p; ++pid) {
      a_elem[pid] = std::move(machine.receive(pid, kTagShiftA).blocks.front());
      b_elem[pid] = std::move(machine.receive(pid, kTagShiftB).blocks.front());
    }
  }

  machine.synchronize();

  // --- Stage 3: sum the r partial products along each i-line into the
  // i = 0 plane (binomial tree, log r rounds of one-word messages).
  Matrix c(n, n);
  machine.begin_phase("reduce");
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = 0; k < r; ++k) {
      for (std::size_t u = 0; u < m; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          std::vector<ProcId> group;
          std::vector<Matrix> contribs;
          group.reserve(r);
          contribs.reserve(r);
          for (std::size_t i = 0; i < r; ++i) {
            group.push_back(rank(i, j, k, u, v));
            contribs.push_back(std::move(c_elem[rank(i, j, k, u, v)]));
          }
          Matrix sum = reduce_binomial(machine, group, 0, kTagReduce,
                                       std::move(contribs));
          c(j * m + u, k * m + v) = sum(0, 0);
        }
      }
    }
  }
  machine.synchronize();
  machine.end_phase();
  machine.assert_clean_run();

  MatmulResult result;
  result.c = std::move(c);
  result.report = machine.report(name(), n, std::pow(static_cast<double>(n), 3.0));
  if (machine.tracing()) result.trace = machine.trace();
  return result;
}

}  // namespace hpmm
