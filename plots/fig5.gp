# Figure 5 reproduction: efficiency vs matrix size, Cannon (p = 484) vs
# GK (p = 512), CM-5 parameters. Usage:
#   ./build/bench/export_figures --outdir=results
#   gnuplot -e "datadir='results'" plots/fig5.gp

if (!exists("datadir")) datadir = 'results'
set terminal pngcairo size 800,560
set output datadir.'/fig5.png'
set datafile separator comma
set title 'Figure 5: E vs n, Cannon (p=484) vs GK (p=512), CM-5'
set xlabel 'matrix order n'
set ylabel 'efficiency E'
set yrange [0:1]
set key bottom right
set grid
plot datadir.'/fig5_efficiency.csv' \
       using 2:(strcol(1) eq 'gk' ? $4 : NaN)     with linespoints title 'GK, p = 512', \
     '' using 2:(strcol(1) eq 'cannon' ? $4 : NaN) with linespoints title 'Cannon, p = 484'
