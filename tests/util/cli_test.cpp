#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hpmm {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, ParsesKeyValues) {
  const auto args = make({"prog", "--n=128", "--machine=cm5"});
  EXPECT_EQ(args.get_int("n", 0), 128);
  EXPECT_EQ(args.get("machine", ""), "cm5");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FlagWithoutValueIsTrue) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_int("n", 64), 64);
  EXPECT_DOUBLE_EQ(args.get_double("ts", 150.0), 150.0);
  EXPECT_FALSE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get("machine", "ncube2"), "ncube2");
}

TEST(Cli, Positionals) {
  const auto args = make({"prog", "run", "--x=1", "fast"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "run");
  EXPECT_EQ(args.positionals()[1], "fast");
}

TEST(Cli, DoubleParsing) {
  const auto args = make({"prog", "--tw=3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("tw", 0.0), 3.5);
}

TEST(Cli, BoolVariants) {
  EXPECT_TRUE(make({"p", "--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"p", "--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make({"p", "--a=no"}).get_bool("a", true));
}

// --p=abc used to silently parse as 0 (strtoll with a null end pointer);
// any token that does not fully parse must throw, naming the flag.
TEST(Cli, IntRejectsGarbage) {
  const auto args = make({"prog", "--p=abc"});
  try {
    args.get_int("p", 0);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--p"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(Cli, IntRejectsTrailingJunk) {
  EXPECT_THROW(make({"prog", "--n=12junk"}).get_int("n", 0), PreconditionError);
  EXPECT_THROW(make({"prog", "--n=1.5"}).get_int("n", 0), PreconditionError);
  EXPECT_THROW(make({"prog", "--n=12 "}).get_int("n", 0), PreconditionError);
}

TEST(Cli, IntRejectsEmptyValue) {
  EXPECT_THROW(make({"prog", "--n="}).get_int("n", 7), PreconditionError);
}

TEST(Cli, IntRejectsOverflow) {
  const auto args = make({"prog", "--n=99999999999999999999999"});
  EXPECT_THROW(args.get_int("n", 0), PreconditionError);
}

TEST(Cli, IntAcceptsSignsAndWholeTokens) {
  EXPECT_EQ(make({"prog", "--n=-12"}).get_int("n", 0), -12);
  EXPECT_EQ(make({"prog", "--n=+12"}).get_int("n", 0), 12);
}

TEST(Cli, DoubleRejectsGarbage) {
  const auto args = make({"prog", "--tw=fast"});
  try {
    args.get_double("tw", 0.0);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--tw"), std::string::npos);
  }
  EXPECT_THROW(make({"prog", "--tw=3.5x"}).get_double("tw", 0.0),
               PreconditionError);
  EXPECT_THROW(make({"prog", "--tw="}).get_double("tw", 0.0),
               PreconditionError);
}

TEST(Cli, DoubleRejectsOverflow) {
  EXPECT_THROW(make({"prog", "--tw=1e999"}).get_double("tw", 0.0),
               PreconditionError);
}

TEST(Cli, DoubleAcceptsScientificAndUnderflow) {
  EXPECT_DOUBLE_EQ(make({"prog", "--tw=2.5e-3"}).get_double("tw", 0.0), 2.5e-3);
  // Gradual underflow is representable, not an error.
  EXPECT_NO_THROW(make({"prog", "--tw=1e-400"}).get_double("tw", 0.0));
}

// A bare `--` used to register as an empty-string flag; it is the
// conventional end-of-flags marker, and everything after it is positional.
TEST(Cli, BareDashDashEndsFlags) {
  const auto args = make({"prog", "--n=4", "--", "--not-a-flag", "file"});
  EXPECT_EQ(args.get_int("n", 0), 4);
  EXPECT_FALSE(args.has("not-a-flag"));
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "--not-a-flag");
  EXPECT_EQ(args.positionals()[1], "file");
}

TEST(Cli, EmptyFlagNameRejected) {
  EXPECT_THROW(make({"prog", "--=value"}), PreconditionError);
}

}  // namespace
}  // namespace hpmm
