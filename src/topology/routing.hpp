#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "topology/grid3d.hpp"
#include "topology/hypercube.hpp"
#include "topology/topology.hpp"
#include "topology/torus.hpp"

namespace hpmm {

/// A directed physical link.
using Link = std::pair<ProcId, ProcId>;

/// A route: the ordered list of directed links a message traverses.
using Route = std::vector<Link>;

/// Dimension-ordered (e-cube) route on a hypercube: correct lowest-differing
/// bit first. Deadlock-free and minimal; the standard cut-through route the
/// paper assumes.
Route ecube_route(const Hypercube& cube, ProcId src, ProcId dst);

/// X-then-Y dimension-ordered route on a wrap-around mesh, taking the
/// shorter ring direction in each dimension.
Route xy_route(const Torus2D& torus, ProcId src, ProcId dst);

/// Route on any topology: e-cube for hypercubes, XY for tori, a single
/// direct link otherwise (fully connected).
Route route_on(const Topology& topology, ProcId src, ProcId dst);

/// Per-link load of a set of simultaneous transfers: how many messages use
/// each directed link. The paper's "non-conflicting paths" claim for
/// Cannon's alignment is exactly max_link_load == small constant.
std::map<Link, unsigned> link_loads(const Topology& topology,
                                    const std::vector<std::pair<ProcId, ProcId>>&
                                        transfers);

/// The largest number of simultaneous messages sharing one directed link
/// (1 = perfectly conflict-free, as in a unit shift or a binomial tree
/// round). 0 for an empty transfer set.
unsigned max_link_load(const Topology& topology,
                       const std::vector<std::pair<ProcId, ProcId>>& transfers);

}  // namespace hpmm
