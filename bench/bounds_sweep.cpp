// Distance-from-optimal sweep (DESIGN.md §14): simulate every registry
// algorithm at a small grid of paper-scale (n, p) points and score its
// exact measured word count against the communication lower bound at the
// model's own memory footprint. Prints the scoreboard and writes the rows
// as JSON for the CI perf-trajectory gate:
//
//   ./bounds_sweep [--out=BENCH_bounds.json]
//
// The gated metric is the ratio measured/bound: it is deterministic (no
// wall-clock in it), must never drop below 1 (that would mean an algorithm
// beat a lower bound — an accounting bug), and must not creep upward past
// the checked-in baseline (a communication regression).

#include <fstream>
#include <iostream>
#include <string>

#include "analysis/bounds.hpp"
#include "core/distance.hpp"
#include "core/registry.hpp"
#include "machine/params.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hpmm;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_bounds.json");
  const MachineParams mp = machines::ncube2();

  Table pretty({"algorithm", "class", "n", "p", "measured words",
                "bound words", "ratio"});
  Table json({"algorithm", "class", "n", "p", "measured_words", "bound_words",
              "ratio"});

  std::cout << "=== communication lower-bound scoreboard (" << mp.label
            << ") ===\n\n";

  int points = 0;
  const AlgorithmRegistry& reg = default_registry();
  for (const std::string& name : reg.names()) {
    const ParallelMatmul& impl = reg.implementation(name);
    for (const std::size_t n : {16u, 64u}) {
      for (const std::size_t p : {64u, 512u}) {
        if (!impl.applicable(n, p)) continue;
        const DistanceFromOptimal d = distance_from_optimal(name, n, p, mp);
        pretty.begin_row()
            .add(d.algorithm)
            .add(to_string(d.cls))
            .add_int(static_cast<long long>(n))
            .add_int(static_cast<long long>(p))
            .add_num(d.measured_total_words, 1)
            .add_num(d.bound.total_words, 1)
            .add_num(d.ratio, 6);
        json.begin_row()
            .add(d.algorithm)
            .add(to_string(d.cls))
            .add_int(static_cast<long long>(n))
            .add_int(static_cast<long long>(p))
            .add_num(d.measured_total_words, 6)
            .add_num(d.bound.total_words, 6)
            .add_num(d.ratio, 6);
        ++points;
      }
    }
  }
  pretty.print_aligned(std::cout);
  std::cout << "\n" << points
            << " points; every ratio must stay >= 1 (the oracle invariant) "
               "and within\ntolerance of bench/baselines/BENCH_bounds.json "
               "(a growing ratio is a\ncommunication regression).\n";

  std::ofstream out(out_path);
  json.print_json(out);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
