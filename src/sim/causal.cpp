#include "sim/causal.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpmm {

std::string_view CausalGraph::kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kCompute:
      return "compute";
    case Kind::kSend:
      return "send";
    case Kind::kRetry:
      return "retry";
    case Kind::kTransfer:
      return "transfer";
    case Kind::kModeled:
      return "modeled";
  }
  return "?";
}

CausalGraph::CausalGraph(std::size_t procs, bool complete,
                         std::uint64_t trace_id)
    : complete_(complete), trace_id_(trace_id) {
  heads_.assign(procs, kNoSpan);
}

std::uint32_t CausalGraph::chain(ProcId pid, Kind kind, std::uint16_t phase,
                                 double start, double end,
                                 const PathTerms& terms,
                                 double fault_overhead) {
  require(spans_.size() < kNoSpan, "CausalGraph: span arena full");
  Span s;
  s.pred = heads_[pid];
  s.pid = pid;
  s.phase = phase;
  s.kind = kind;
  s.hop = hop(pid);
  s.start = start;
  s.end = end;
  s.terms = terms;
  s.fault_overhead = fault_overhead;
  const auto idx = static_cast<std::uint32_t>(spans_.size());
  spans_.push_back(s);
  heads_[pid] = idx;
  return idx;
}

std::uint32_t CausalGraph::adopt(ProcId pid, std::uint32_t pred,
                                 std::uint32_t hop, std::uint16_t phase,
                                 double start, double end,
                                 const PathTerms& terms,
                                 double fault_overhead) {
  require(spans_.size() < kNoSpan, "CausalGraph: span arena full");
  Span s;
  s.pred = pred;
  s.pid = pid;
  s.phase = phase;
  s.kind = Kind::kTransfer;
  s.hop = hop;
  s.start = start;
  s.end = end;
  s.terms = terms;
  s.fault_overhead = fault_overhead;
  const auto idx = static_cast<std::uint32_t>(spans_.size());
  spans_.push_back(s);
  heads_[pid] = idx;
  return idx;
}

std::uint64_t CausalGraph::approx_bytes() const noexcept {
  return static_cast<std::uint64_t>(spans_.capacity()) * sizeof(Span) +
         static_cast<std::uint64_t>(heads_.capacity()) * sizeof(heads_[0]) +
         sizeof(*this);
}

CausalGraph::CriticalPath CausalGraph::critical_path(ProcId pid) const {
  CriticalPath cp;
  // pred always points at an earlier arena index (spans are appended in
  // event order), so the walk is strictly decreasing and terminates.
  for (std::uint32_t s = heads_[pid]; s != kNoSpan; s = spans_[s].pred) {
    cp.spans.push_back(s);
  }
  std::reverse(cp.spans.begin(), cp.spans.end());
  // Root-to-head summation matches the order the chain_ cells accumulated
  // their terms in, so the reconciliation against RunReport::critical_path
  // differs only by summation association (well inside 1e-9).
  for (const std::uint32_t s : cp.spans) {
    const Span& sp = spans_[s];
    cp.terms.compute += sp.terms.compute;
    cp.terms.startup += sp.terms.startup;
    cp.terms.word += sp.terms.word;
    cp.terms.modeled += sp.terms.modeled;
    cp.terms.other += sp.terms.other;
    cp.fault_overhead += sp.fault_overhead;
  }
  return cp;
}

void CausalGraph::write_json(std::ostream& os) const {
  os << "{\"trace_id\": " << trace_id_
     << ", \"complete\": " << (complete_ ? "true" : "false")
     << ", \"spans\": [";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (i) os << ", ";
    os << "{\"kind\": \"" << kind_name(s.kind) << "\", \"pid\": " << s.pid
       << ", \"phase\": " << s.phase << ", \"hop\": " << s.hop
       << ", \"pred\": ";
    if (s.pred == kNoSpan) {
      os << "null";
    } else {
      os << s.pred;
    }
    os << ", \"start\": " << json_number(s.start)
       << ", \"end\": " << json_number(s.end)
       << ", \"compute\": " << json_number(s.terms.compute)
       << ", \"startup\": " << json_number(s.terms.startup)
       << ", \"word\": " << json_number(s.terms.word)
       << ", \"modeled\": " << json_number(s.terms.modeled)
       << ", \"other\": " << json_number(s.terms.other)
       << ", \"fault_overhead\": " << json_number(s.fault_overhead) << "}";
  }
  os << "], \"heads\": [";
  for (std::size_t pid = 0; pid < heads_.size(); ++pid) {
    if (pid) os << ", ";
    if (heads_[pid] == kNoSpan) {
      os << "null";
    } else {
      os << heads_[pid];
    }
  }
  os << "]}";
}

void CausalGraph::reset() {
  spans_.clear();
  std::fill(heads_.begin(), heads_.end(), kNoSpan);
}

}  // namespace hpmm
