#include "sim/report.hpp"

#include "util/json.hpp"
#include "util/table.hpp"

namespace hpmm {

namespace {

void write_path_terms(std::ostream& os, const PathTerms& p) {
  os << "{\"compute\":" << json_number(p.compute)
     << ",\"startup\":" << json_number(p.startup)
     << ",\"word\":" << json_number(p.word)
     << ",\"modeled\":" << json_number(p.modeled)
     << ",\"other\":" << json_number(p.other)
     << ",\"total\":" << json_number(p.total()) << '}';
}

}  // namespace

std::string RunReport::summary() const {
  std::string s = algorithm + ": n=" + std::to_string(n) +
                  " p=" + std::to_string(p) +
                  " T_p=" + format_number(t_parallel) +
                  " S=" + format_number(speedup()) +
                  " E=" + format_number(efficiency()) +
                  " T_o=" + format_number(total_overhead());
  if (faults.any()) s += " faults[" + faults.summary() + "]";
  return s;
}

void RunReport::write_json(std::ostream& os) const {
  os << "{\"algorithm\":" << json_quote(algorithm) << ",\"n\":" << n
     << ",\"p\":" << p;
  os << ",\"machine\":{\"label\":" << json_quote(params.label)
     << ",\"t_s\":" << json_number(params.t_s)
     << ",\"t_w\":" << json_number(params.t_w)
     << ",\"t_h\":" << json_number(params.t_h) << '}';
  os << ",\"t_parallel\":" << json_number(t_parallel)
     << ",\"w_useful\":" << json_number(w_useful)
     << ",\"speedup\":" << json_number(speedup())
     << ",\"efficiency\":" << json_number(efficiency())
     << ",\"total_overhead\":" << json_number(total_overhead());
  os << ",\"max_compute_time\":" << json_number(max_compute_time)
     << ",\"max_comm_time\":" << json_number(max_comm_time)
     << ",\"max_idle_time\":" << json_number(max_idle_time)
     << ",\"total_flops\":" << total_flops
     << ",\"total_messages\":" << total_messages
     << ",\"total_words\":" << total_words
     << ",\"max_peak_words\":" << max_peak_words;
  os << ",\"critical_path\":";
  write_path_terms(os, critical_path);
  os << ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseBreakdown& ph = phases[i];
    if (i > 0) os << ',';
    os << "{\"name\":" << json_quote(ph.name)
       << ",\"max_compute_time\":" << json_number(ph.max_compute_time)
       << ",\"max_comm_time\":" << json_number(ph.max_comm_time)
       << ",\"max_idle_time\":" << json_number(ph.max_idle_time)
       << ",\"flops\":" << ph.flops << ",\"messages\":" << ph.messages
       << ",\"words\":" << ph.words << ",\"path\":";
    write_path_terms(os, ph.path);
    os << '}';
  }
  os << ']';
  if (faults.any()) {
    os << ",\"faults\":" << json_quote(faults.summary());
  }
  os << '}';
}

}  // namespace hpmm
