#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hpmm {

/// Minimal `--key=value` / `--flag` command-line parser for the example
/// programs and benchmark harnesses. Unrecognised positional arguments are
/// collected in positionals().
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Value of --key=value, or `fallback` if absent.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace hpmm
