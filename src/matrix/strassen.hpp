#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"

namespace hpmm {

/// Strassen's O(n^{log2 7}) serial multiplication — the "serial matrix
/// multiplication algorithm with better complexity" that the paper's
/// footnote 1 sets aside because of its higher constants. Provided as an
/// extension so the constant-factor trade-off can be measured; the parallel
/// formulations and the W = n^3 accounting deliberately stick to the
/// conventional algorithm, exactly as the paper does.
///
/// Works for any square order (operands are padded to the next power of two
/// internally); recursion switches to the cache-friendly conventional kernel
/// below `cutoff`.
Matrix multiply_strassen(const Matrix& a, const Matrix& b,
                         std::size_t cutoff = 64);

/// Number of scalar multiplications Strassen performs for order n with the
/// given cutoff (counting the conventional kernel's n^3 below the cutoff) —
/// for quantifying footnote 1's constant-factor argument.
std::uint64_t strassen_multiplications(std::size_t n, std::size_t cutoff = 64);

}  // namespace hpmm
