#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "util/metrics.hpp"

namespace hpmm {

/// Per-tenant service-level objectives, both optional (0 = not set).
/// Latency is in virtual-time units (the same units as t_s and t_w);
/// availability is the target fraction of submitted requests that must end
/// kOk, in (0, 1) — every other final disposition (failure, deadline abort,
/// any rejection) spends error budget.
struct SloTarget {
  double p99 = 0.0;           ///< latency objective for the tenant's p99
  double availability = 0.0;  ///< target success fraction

  bool any() const noexcept { return p99 > 0.0 || availability > 0.0; }
};

/// Map of tenant name -> objective. The special key "*" supplies a default
/// applied to every tenant without an explicit entry.
using SloTargets = std::map<std::string, SloTarget>;

/// The target governing `tenant`: its own entry, else the "*" default,
/// else an empty target.
SloTarget slo_target_for(const SloTargets& targets, const std::string& tenant);

/// End-of-run SLO accounting for one tenant (DESIGN.md §13). Error budget
/// is the absolute number of allowed errors, (1 - availability) x
/// submitted; burn rates divide an observed error rate by the allowed rate
/// (1 - availability), so burn 1.0 spends the budget exactly at the
/// end of the run, and burn k spends it k times too fast.
struct SloVerdict {
  std::string tenant;
  SloTarget target;

  std::uint64_t submitted = 0;
  std::uint64_t errors = 0;       ///< final dispositions that were not kOk
  double error_budget = 0.0;      ///< allowed errors for the whole run
  double budget_remaining = 0.0;  ///< budget - errors; negative = exhausted
  double burn_overall = 0.0;      ///< whole-run error rate / allowed rate
  double burn_fast = 0.0;         ///< worst single-window burn rate
  double burn_slow = 0.0;         ///< worst rolling-6-window burn rate
  bool availability_breached = false;  ///< budget_remaining < 0

  double p99_observed = 0.0;
  bool p99_breached = false;  ///< p99 target set and observed p99 above it

  bool breached() const noexcept {
    return availability_breached || p99_breached;
  }

  /// One JSON object with every field above (targets serialized as
  /// "slo_p99" / "slo_availability", 0 = not set).
  void write_json(std::ostream& os) const;
};

/// Evaluate one tenant's objectives. `finals` and `errors_series` are the
/// per-window final-disposition and error counts (the serve.series.* time
/// series); either may be null, in which case the windowed burn rates read
/// 0. Throws PreconditionError for an availability target outside (0, 1)
/// or a negative p99 target.
SloVerdict evaluate_slo(const std::string& tenant, const SloTarget& target,
                        std::uint64_t submitted, std::uint64_t errors,
                        double p99_observed, const TimeSeries* finals,
                        const TimeSeries* errors_series);

}  // namespace hpmm
