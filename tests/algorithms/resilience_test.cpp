// End-to-end resilience acceptance tests: algorithms running over a faulty
// SimMachine must either mask every injected fault (reliable messaging,
// ABFT-correct) or surface it honestly (detect-only counters), and an
// all-zero FaultPlan must leave simulated times bit-identical to the ideal
// machine — the fault path costs nothing when disabled.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "sim/fault.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpmm {
namespace {

MachineParams test_params() {
  MachineParams m;
  m.t_s = 10.0;
  m.t_w = 2.0;
  return m;
}

/// Matrices with small positive integer entries: products and checksums are
/// exactly representable, so "exact product" means bitwise equality; and no
/// payload word is 0.0 (a mantissa flip of 0.0 is an undetectable denormal).
Matrix int_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = std::floor(rng.uniform(1.0, 9.0));
    }
  }
  return m;
}

MatmulResult run(const std::string& algorithm, const Matrix& a,
                 const Matrix& b, std::size_t p,
                 std::shared_ptr<const FaultPlan> plan) {
  MachineParams mp = test_params();
  mp.faults = std::move(plan);
  return default_registry().implementation(algorithm).run(a, b, p, mp);
}

void expect_exact_product(const Matrix& c, const Matrix& reference) {
  ASSERT_EQ(c.rows(), reference.rows());
  ASSERT_EQ(c.cols(), reference.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      ASSERT_DOUBLE_EQ(c(i, j), reference(i, j))
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(Resilience, AllZeroPlanIsBitIdenticalToNoPlan) {
  // The acceptance regression: attaching a default (all-zero) FaultPlan must
  // not perturb the simulated time of any formulation by a single bit.
  struct Case {
    const char* name;
    std::size_t n, p;
  };
  const Case cases[] = {
      {"simple", 16, 16}, {"cannon", 16, 16}, {"fox", 16, 16},
      {"berntsen", 16, 8}, {"dns", 8, 128},   {"gk", 16, 8},
  };
  Rng rng(404);
  for (const auto& c : cases) {
    const Matrix a = random_matrix(c.n, c.n, rng);
    const Matrix b = random_matrix(c.n, c.n, rng);
    const MatmulResult ideal = run(c.name, a, b, c.p, nullptr);
    const MatmulResult zeroed =
        run(c.name, a, b, c.p, std::make_shared<FaultPlan>());
    EXPECT_EQ(ideal.report.t_parallel, zeroed.report.t_parallel) << c.name;
    EXPECT_EQ(ideal.report.total_messages, zeroed.report.total_messages)
        << c.name;
    EXPECT_EQ(ideal.report.total_words, zeroed.report.total_words) << c.name;
    EXPECT_FALSE(zeroed.report.faults.any()) << c.name;
    expect_exact_product(zeroed.c, ideal.c);
  }
}

TEST(Resilience, CannonExactUnderDropsAndStraggler) {
  // The ISSUE scenario: 1%-class message loss plus one 2x straggler. The
  // reliable protocol must mask both — exact product, but visible
  // retransmission counters and a slower clock.
  const std::size_t n = 32, p = 16;
  Rng rng(7);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);
  const Matrix reference = multiply(a, b);

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 1;
  plan->drop_prob = 0.01;
  plan->stragglers.push_back({3, 2.0});

  const MatmulResult faulty = run("cannon", a, b, p, plan);
  expect_exact_product(faulty.c, reference);
  EXPECT_GT(faulty.report.faults.retransmissions, 0u);
  EXPECT_EQ(faulty.report.faults.messages_lost, 0u);

  const MatmulResult ideal = run("cannon", a, b, p, nullptr);
  expect_exact_product(ideal.c, reference);
  EXPECT_GT(faulty.report.t_parallel, ideal.report.t_parallel);
}

TEST(Resilience, GkExactUnderDropsAndStraggler) {
  const std::size_t n = 32, p = 64;
  Rng rng(8);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);
  const Matrix reference = multiply(a, b);

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 2;
  plan->drop_prob = 0.05;
  plan->stragglers.push_back({1, 2.0});

  const MatmulResult faulty = run("gk", a, b, p, plan);
  expect_exact_product(faulty.c, reference);
  EXPECT_GT(faulty.report.faults.retransmissions, 0u);

  const MatmulResult ideal = run("gk", a, b, p, nullptr);
  EXPECT_GT(faulty.report.t_parallel, ideal.report.t_parallel);
}

TEST(Resilience, DuplicatesAndDelaysDoNotChangeTheProduct) {
  const std::size_t n = 32, p = 16;
  Rng rng(9);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 4;
  plan->duplicate_prob = 0.2;
  plan->delay_prob = 0.3;
  plan->delay_factor = 1.5;

  const MatmulResult faulty = run("cannon", a, b, p, plan);
  expect_exact_product(faulty.c, multiply(a, b));
  EXPECT_GT(faulty.report.faults.duplicates_suppressed, 0u);
  EXPECT_GT(faulty.report.faults.deliveries_delayed, 0u);
}

TEST(Resilience, CorruptionWithAbftCorrectIsExact) {
  const std::size_t n = 32;
  Rng rng(10);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);
  const Matrix reference = multiply(a, b);

  for (const auto& [name, p] :
       std::vector<std::pair<std::string, std::size_t>>{{"cannon", 16},
                                                        {"gk", 64}}) {
    auto plan = std::make_shared<FaultPlan>();
    plan->seed = 6;
    plan->corrupt_prob = 0.1;
    plan->abft = AbftMode::kCorrect;
    const MatmulResult r = run(name, a, b, p, plan);
    EXPECT_GT(r.report.faults.elements_corrupted, 0u) << name;
    EXPECT_GT(r.report.faults.abft_corrected, 0u) << name;
    expect_exact_product(r.c, reference);
  }
}

TEST(Resilience, CorruptionWithDetectOnlyCountsButDoesNotRepair) {
  const std::size_t n = 32, p = 16;
  Rng rng(11);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 6;
  plan->corrupt_prob = 0.1;
  plan->abft = AbftMode::kDetect;

  const MatmulResult r = run("cannon", a, b, p, plan);
  EXPECT_GT(r.report.faults.abft_detected, 0u);
  EXPECT_EQ(r.report.faults.abft_corrected, 0u);
}

TEST(Resilience, FaultyRunsAreReproducible) {
  const std::size_t n = 32, p = 16;
  Rng rng(12);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 13;
  plan->drop_prob = 0.05;
  plan->duplicate_prob = 0.05;
  plan->delay_prob = 0.1;

  const MatmulResult r1 = run("cannon", a, b, p, plan);
  const MatmulResult r2 = run("cannon", a, b, p, plan);
  EXPECT_EQ(r1.report.t_parallel, r2.report.t_parallel);
  EXPECT_EQ(r1.report.faults.retransmissions, r2.report.faults.retransmissions);
  EXPECT_EQ(r1.report.faults.deliveries_delayed,
            r2.report.faults.deliveries_delayed);
  EXPECT_EQ(r1.report.faults.duplicates_suppressed,
            r2.report.faults.duplicates_suppressed);
  expect_exact_product(r1.c, r2.c);
}

TEST(Resilience, FailStopPropagatesAsProcessorFailure) {
  const std::size_t n = 32, p = 16;
  Rng rng(13);
  const Matrix a = int_matrix(n, rng);
  const Matrix b = int_matrix(n, rng);

  auto plan = std::make_shared<FaultPlan>();
  plan->failstops.push_back({5, 100.0});

  try {
    (void)run("cannon", a, b, p, plan);
    FAIL() << "expected ProcessorFailure";
  } catch (const ProcessorFailure& failure) {
    EXPECT_EQ(failure.pid(), 5u);
    EXPECT_DOUBLE_EQ(failure.at_time(), 100.0);
  }
}

}  // namespace
}  // namespace hpmm
