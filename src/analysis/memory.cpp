#include "analysis/memory.hpp"

#include <cmath>

#include "analysis/isoefficiency.hpp"
#include "util/error.hpp"

namespace hpmm {

std::optional<double> max_order_for_memory(const PerfModel& model, double p,
                                           double memory_words) {
  require(p >= 1.0, "max_order_for_memory: p must be >= 1");
  require(memory_words > 0.0, "max_order_for_memory: memory must be positive");
  if (model.memory_per_proc(1.0, p) > memory_words) return std::nullopt;
  // Footprints grow like n^2 (per fixed p); bracket then bisect.
  double lo = 1.0, hi = 2.0;
  const double kHuge = 1e15;
  while (hi < kHuge && model.memory_per_proc(hi, p) <= memory_words) {
    lo = hi;
    hi *= 2.0;
  }
  if (hi >= kHuge) return kHuge;  // effectively unconstrained
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (model.memory_per_proc(mid, p) <= memory_words) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<double> max_efficiency_for_memory(const PerfModel& model,
                                                double p, double memory_words) {
  const auto n_mem = max_order_for_memory(model, p, memory_words);
  if (!n_mem) return std::nullopt;
  // Efficiency is monotone in n, so the best memory-feasible efficiency sits
  // at the largest applicable n not exceeding the memory cap. The
  // applicability range in n is [n_min, n_max] with p <= max_procs(n)
  // forcing n up and p >= min_procs(n) capping it (DNS).
  double n = *n_mem;
  // Respect min_procs (DNS: n <= sqrt(p)).
  if (model.min_procs(2.0) > model.min_procs(1.0)) {
    double cap_lo = 1.0, cap_hi = 1.0;
    while (cap_hi < 1e15 && model.min_procs(cap_hi) <= p) cap_hi *= 2.0;
    for (int iter = 0; iter < 200 && cap_hi - cap_lo > 1e-9 * cap_hi; ++iter) {
      const double mid = 0.5 * (cap_lo + cap_hi);
      if (model.min_procs(mid) <= p) {
        cap_lo = mid;
      } else {
        cap_hi = mid;
      }
    }
    n = std::min(n, cap_lo);
  }
  if (!model.applicable(n, p)) return std::nullopt;
  return model.efficiency(n, p);
}

std::optional<double> max_procs_at_efficiency_and_memory(
    const PerfModel& model, double efficiency, double memory_words,
    double limit) {
  require(efficiency > 0.0 && efficiency < 1.0,
          "max_procs_at_efficiency_and_memory: efficiency must be in (0,1)");
  // Feasible(p): the isoefficiency order at p fits in memory.
  const auto feasible = [&](double p) {
    const auto n_iso = iso_matrix_order(model, p, efficiency);
    if (!n_iso) return false;
    return model.memory_per_proc(*n_iso, p) <= memory_words;
  };
  if (!feasible(1.0)) return std::nullopt;
  double lo = 1.0, hi = 2.0;
  while (hi <= limit && feasible(hi)) {
    lo = hi;
    hi *= 2.0;
  }
  if (hi > limit) return limit;
  for (int iter = 0; iter < 100 && hi / lo > 1.0 + 1e-6; ++iter) {
    const double mid = std::sqrt(lo * hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace hpmm
