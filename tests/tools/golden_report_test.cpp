// Byte-identity property test (DESIGN.md §12): the arena/sparse-capture
// engine must reproduce the pre-refactor run reports *byte for byte* in the
// default capture mode. The files under tests/golden/reports/ were generated
// by the dense engine (one per algorithm x seed, plus machine variants) via
//   hpmm run --algorithm=<a> --n=<n> --p=<p> --seed=<s> [flags] --format=json
// and are never regenerated automatically — a diff here means the refactor
// changed observable behaviour.
#include "tools/commands.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace hpmm::tools {
namespace {

std::string run_json(std::vector<std::string> args) {
  args.insert(args.begin(), {"hpmm", "run"});
  args.push_back("--format=json");
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream os, es;
  const int code =
      dispatch(CliArgs(static_cast<int>(argv.size()), argv.data()), os, es);
  EXPECT_EQ(code, 0) << es.str();
  return os.str();
}

std::string golden(const std::string& name) {
  const std::string path =
      std::string(HPMM_SOURCE_DIR) + "/tests/golden/reports/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct GoldenCase {
  std::string file;
  std::vector<std::string> args;
};

std::vector<GoldenCase> cases() {
  std::vector<GoldenCase> c;
  for (const std::string seed : {"42", "7"}) {
    const std::string tag = "_s" + seed + ".json";
    const std::string sf = "--seed=" + seed;
    c.push_back({"simple_n16_p16" + tag,
                 {"--algorithm=simple", "--n=16", "--p=16", sf}});
    c.push_back({"cannon_n16_p16" + tag,
                 {"--algorithm=cannon", "--n=16", "--p=16", sf}});
    c.push_back(
        {"fox_n16_p16" + tag, {"--algorithm=fox", "--n=16", "--p=16", sf}});
    c.push_back(
        {"dns_n8_p64" + tag, {"--algorithm=dns", "--n=8", "--p=64", sf}});
    c.push_back({"berntsen_n16_p64" + tag,
                 {"--algorithm=berntsen", "--n=16", "--p=64", sf}});
    c.push_back(
        {"gk_n16_p64" + tag, {"--algorithm=gk", "--n=16", "--p=64", sf}});
    c.push_back({"cannon25d_n16_p32" + tag,
                 {"--algorithm=cannon25d", "--n=16", "--p=32", "--c=2", sf}});
  }
  c.push_back({"gk_n16_p64_s42_ideal.json",
               {"--algorithm=gk", "--n=16", "--p=64", "--seed=42",
                "--machine=ideal"}});
  c.push_back({"cannon_n16_p16_s42_cm5.json",
               {"--algorithm=cannon", "--n=16", "--p=16", "--seed=42",
                "--machine=cm5"}});
  return c;
}

TEST(GoldenReports, AllSevenAlgorithmsAreByteIdenticalToPreRefactorEngine) {
  for (const auto& gc : cases()) {
    const std::string expect = golden(gc.file);
    ASSERT_FALSE(expect.empty()) << gc.file;
    const std::string got = run_json(gc.args);
    EXPECT_EQ(got, expect) << "run report diverged from golden " << gc.file;
  }
}

TEST(GoldenReports, ExplicitDefaultCaptureFlagsStayOnTheGoldenPath) {
  // Spelling out the defaults (--metrics=full --traffic=auto
  // --trace-sample=1.0) must not change a single byte either.
  const std::string expect = golden("gk_n16_p64_s42.json");
  const std::string got =
      run_json({"--algorithm=gk", "--n=16", "--p=64", "--seed=42",
                "--metrics=full", "--traffic=auto", "--trace-sample=1.0",
                "--trace-seed=0"});
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace hpmm::tools
