// The algorithm variants added beyond the paper's baseline formulations:
// Cannon under the Gray-code hypercube embedding (Section 4.4's mesh ==
// hypercube claim) and Fox with Eq. 4's packet-pipelined row broadcast.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/cannon.hpp"
#include "algorithms/fox.hpp"
#include "matrix/generate.hpp"
#include "matrix/kernels.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

MachineParams test_params(double ts = 40.0, double tw = 2.5) {
  MachineParams m;
  m.t_s = ts;
  m.t_w = tw;
  return m;
}

MatmulResult run(const ParallelMatmul& alg, std::size_t n, std::size_t p,
                 const MachineParams& mp) {
  Rng rng(61);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  return alg.run(a, b, p, mp);
}

// ---- Cannon under the Gray-code embedding ----------------------------------

TEST(CannonGray, ProductCorrect) {
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{8, 4},
                            {16, 16}, {16, 64}}) {
    Rng rng(62);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    const auto res = CannonAlgorithm(CannonAlgorithm::Mapping::kHypercubeGray)
                         .run(a, b, p, test_params());
    EXPECT_LE(max_abs_diff(res.c, multiply(a, b)), 1e-12 * double(n));
  }
}

TEST(CannonGray, IdenticalTimeToMeshUnderCutThrough) {
  // Section 4.4: "Cannon's algorithm's performance is the same on both mesh
  // and hypercube architectures."
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{16, 16},
                            {32, 64}}) {
    const auto mesh = run(CannonAlgorithm(), n, p, test_params());
    const auto gray = run(CannonAlgorithm(CannonAlgorithm::Mapping::kHypercubeGray),
                          n, p, test_params());
    EXPECT_DOUBLE_EQ(mesh.report.t_parallel, gray.report.t_parallel)
        << "n=" << n << " p=" << p;
    EXPECT_EQ(mesh.c, gray.c);
  }
}

TEST(CannonGray, DilationOneSurvivesStoreAndForwardShifts) {
  // The embedding maps every *unit* mesh link to one cube link, so the
  // multiply-shift phase costs the same even under store-and-forward. (The
  // alignment's multi-step moves route differently, so compare a run where
  // alignment is trivial: p = 4 aligns by at most one step.)
  MachineParams sf = test_params();
  sf.routing = Routing::kStoreAndForward;
  const auto mesh = run(CannonAlgorithm(), 8, 4, sf);
  const auto gray =
      run(CannonAlgorithm(CannonAlgorithm::Mapping::kHypercubeGray), 8, 4, sf);
  EXPECT_DOUBLE_EQ(mesh.report.t_parallel, gray.report.t_parallel);
}

TEST(CannonGray, RequiresPow2Side) {
  CannonAlgorithm gray(CannonAlgorithm::Mapping::kHypercubeGray);
  EXPECT_FALSE(gray.applicable(12, 9));  // 3x3 mesh has no Gray embedding
  EXPECT_TRUE(CannonAlgorithm().applicable(12, 9));
  EXPECT_TRUE(gray.applicable(16, 16));
}

TEST(CannonGray, NamesDiffer) {
  EXPECT_EQ(CannonAlgorithm().name(), "cannon");
  EXPECT_EQ(CannonAlgorithm(CannonAlgorithm::Mapping::kHypercubeGray).name(),
            "cannon-gray");
}

// ---- Pipelined Fox -----------------------------------------------------------

TEST(FoxPipelined, ProductCorrect) {
  for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{8, 4},
                            {16, 16}, {12, 9}, {32, 64}, {15, 25}}) {
    Rng rng(63);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    const auto res = FoxAlgorithm(FoxAlgorithm::Variant::kPipelinedRing)
                         .run(a, b, p, test_params());
    EXPECT_LE(max_abs_diff(res.c, multiply(a, b)), 1e-12 * double(n))
        << "n=" << n << " p=" << p;
  }
}

TEST(FoxPipelined, WorksOnNonPow2Mesh) {
  // Unlike the hypercube variant, the ring pipeline accepts any square p.
  FoxAlgorithm pipe(FoxAlgorithm::Variant::kPipelinedRing);
  EXPECT_TRUE(pipe.applicable(12, 9));
  EXPECT_FALSE(FoxAlgorithm().applicable(12, 9));
}

TEST(FoxPipelined, CutsTheBroadcastTwTerm) {
  // At large blocks (t_w-dominated), pipelining beats the binomial broadcast
  // whose t_w term carries a log sqrt(p) factor.
  MachineParams cheap_start = test_params(1.0, 2.5);
  const std::size_t n = 64, p = 16;
  const auto pipe = run(FoxAlgorithm(FoxAlgorithm::Variant::kPipelinedRing), n,
                        p, cheap_start);
  const auto tree = run(FoxAlgorithm(), n, p, cheap_start);
  EXPECT_LT(pipe.report.t_parallel, tree.report.t_parallel);
}

TEST(FoxPipelined, TreeWinsWhenStartupDominates) {
  // With huge t_s the pipeline's ~2 sqrt(p) startups per iteration lose to
  // the tree's log sqrt(p).
  MachineParams pricey = test_params(5000.0, 0.1);
  const std::size_t n = 16, p = 16;
  const auto pipe =
      run(FoxAlgorithm(FoxAlgorithm::Variant::kPipelinedRing), n, p, pricey);
  const auto tree = run(FoxAlgorithm(), n, p, pricey);
  EXPECT_GT(pipe.report.t_parallel, tree.report.t_parallel);
}

TEST(FoxPipelined, WithinBandOfEq4) {
  // Eq. 4: T_p = n^3/p + 2 t_w n^2/sqrt(p) + t_s p. The simulated pipeline
  // pays roughly twice the startup term (packets + drain), so expect the
  // ratio in [0.8, 2.5].
  const std::size_t n = 64, p = 64;
  const MachineParams mp = test_params();
  const auto pipe =
      run(FoxAlgorithm(FoxAlgorithm::Variant::kPipelinedRing), n, p, mp);
  const double eq4 = double(n) * n * n / double(p) +
                     2.0 * mp.t_w * double(n) * n / std::sqrt(double(p)) +
                     mp.t_s * double(p);
  EXPECT_GT(pipe.report.t_parallel / eq4, 0.8);
  EXPECT_LT(pipe.report.t_parallel / eq4, 2.5);
}

TEST(FoxPipelined, SingleProcessorDegenerates) {
  const auto res = run(FoxAlgorithm(FoxAlgorithm::Variant::kPipelinedRing), 8,
                       1, test_params());
  EXPECT_DOUBLE_EQ(res.report.t_parallel, 512.0);
}

TEST(FoxPipelined, FlopConservation) {
  const auto res = run(FoxAlgorithm(FoxAlgorithm::Variant::kPipelinedRing), 16,
                       16, test_params());
  EXPECT_EQ(res.report.total_flops, 16ULL * 16 * 16);
}

}  // namespace
}  // namespace hpmm
