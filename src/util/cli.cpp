#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace hpmm {

CliArgs::CliArgs(int argc, const char* const* argv) {
  require(argc >= 1, "CliArgs: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace hpmm
