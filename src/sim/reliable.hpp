#pragma once

#include <cstdint>

#include "sim/fault.hpp"

namespace hpmm {

/// Outcome of delivering one message over a lossy link under the
/// ack/timeout/retransmit protocol, in virtual time.
///
/// Protocol model (see DESIGN.md "Fault model & resilience"): the sender
/// transmits (cost = the message's base cost), then expects an
/// acknowledgement. Acks are piggybacked/small and charged zero time. If the
/// transmission was dropped, the sender notices after a timeout of
/// rto_factor x base cost (doubling by rto_backoff per retry — exponential
/// backoff) and retransmits. The receiver de-duplicates by message identity,
/// so network-duplicated copies are counted and discarded, never delivered
/// twice.
///
/// Sender timeline for r retransmissions (c = base cost, T = departure):
///   busy  [T, T+c], wait [T+c, T+c+rto), busy [.., +c], ...
///   span  = (r+1) * c + sum_{k=0}^{r-1} rto * backoff^k
/// The delivering attempt's payload arrives at T + span + delay.
struct ReliableOutcome {
  unsigned attempts = 1;      ///< transmissions performed (1 = no retry)
  bool delivered = true;      ///< false only in unreliable mode
  bool duplicated = false;    ///< network delivered an extra copy
  bool corrupted = false;     ///< delivered payload carries a flipped word
  unsigned corrupt_attempt = 0;  ///< attempt whose corruption survived
  double delay = 0.0;         ///< in-flight delay of the delivering attempt
  double busy = 0.0;          ///< sender transmission time, attempts * cost
  double wait = 0.0;          ///< sender timeout time between attempts

  unsigned retransmissions() const noexcept { return attempts - 1; }
  /// Total sender-side elapsed time; the payload arrives at
  /// departure + span() + delay.
  double span() const noexcept { return busy + wait; }
};

/// Walk the retry schedule for one message whose per-attempt fates come from
/// `injector`. `base_cost` is the fault-free cost of one transmission
/// (topology, contention and straggler factors included). With
/// plan.reliable == false a single attempt is made and a drop means the
/// message is simply lost (delivered = false, duplicates are delivered).
///
/// Throws InternalError when plan.max_retries consecutive transmissions are
/// all dropped — with any realistic drop probability this indicates a
/// mis-configured plan rather than bad luck.
ReliableOutcome reliable_delivery(const FaultInjector& injector,
                                  const Message& m, std::uint64_t round,
                                  double base_cost);

}  // namespace hpmm
