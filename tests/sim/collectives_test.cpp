#include "sim/collectives.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "topology/hypercube.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

constexpr double kTs = 10.0;
constexpr double kTw = 2.0;

MachineParams test_params() {
  MachineParams m;
  m.t_s = kTs;
  m.t_w = kTw;
  return m;
}

SimMachine make_machine(unsigned dim) {
  return SimMachine(std::make_shared<Hypercube>(dim), test_params());
}

std::vector<ProcId> iota_group(std::size_t g) {
  std::vector<ProcId> out(g);
  std::iota(out.begin(), out.end(), 0u);
  return out;
}

Matrix stamped(std::size_t words, double value) {
  Matrix m(1, words);
  m.fill(value);
  return m;
}

double msg_cost(std::size_t words) { return kTs + kTw * static_cast<double>(words); }

// ---- broadcast_binomial ----------------------------------------------------

TEST(BroadcastBinomial, DeliversPayloadToAll) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  const auto result = broadcast_binomial(m, group, 0, 1, stamped(4, 3.5));
  ASSERT_EQ(result.size(), 8u);
  for (const auto& copy : result) {
    ASSERT_EQ(copy.size(), 4u);
    EXPECT_EQ(copy(0, 0), 3.5);
  }
  EXPECT_EQ(m.pending_messages(), 0u);
}

TEST(BroadcastBinomial, CostIsLogGMessages) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  broadcast_binomial(m, group, 0, 1, stamped(4, 1.0));
  // (t_s + t_w m) log2 8 = 18 * 3 on the critical path.
  EXPECT_DOUBLE_EQ(m.time(), 3.0 * msg_cost(4));
}

TEST(BroadcastBinomial, NonZeroRoot) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  const auto result = broadcast_binomial(m, group, 5, 1, stamped(2, -1.0));
  for (const auto& copy : result) EXPECT_EQ(copy(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.time(), 3.0 * msg_cost(2));
}

TEST(BroadcastBinomial, NonPowerOfTwoGroup) {
  auto m = make_machine(3);
  const auto group = std::vector<ProcId>{0, 1, 2, 3, 4, 5};
  const auto result = broadcast_binomial(m, group, 2, 1, stamped(1, 9.0));
  ASSERT_EQ(result.size(), 6u);
  for (const auto& copy : result) EXPECT_EQ(copy(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m.time(), 3.0 * msg_cost(1));  // ceil(log2 6) = 3 rounds
}

TEST(BroadcastBinomial, SingletonGroupIsFree) {
  auto m = make_machine(2);
  const std::vector<ProcId> group{2};
  const auto result = broadcast_binomial(m, group, 0, 1, stamped(3, 4.0));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(m.time(), 0.0);
}

TEST(BroadcastBinomial, SubcubeGroupUsesPhysicalLinksOnly) {
  // Group = an ascending subcube; verify by running on a store-and-forward
  // machine, where multi-hop sends would be visibly more expensive.
  auto params = test_params();
  params.routing = Routing::kStoreAndForward;
  SimMachine m(std::make_shared<Hypercube>(4), params);
  const std::vector<ProcId> group{8, 9, 10, 11, 12, 13, 14, 15};
  broadcast_binomial(m, group, 0, 1, stamped(2, 1.0));
  EXPECT_DOUBLE_EQ(m.time(), 3.0 * msg_cost(2));  // every hop is one link
}

// ---- reduce_binomial ---------------------------------------------------------

TEST(ReduceBinomial, SumsContributions) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  std::vector<Matrix> contribs;
  for (std::size_t i = 0; i < 8; ++i) contribs.push_back(stamped(4, double(i)));
  const Matrix sum = reduce_binomial(m, group, 0, 1, std::move(contribs));
  EXPECT_EQ(sum(0, 0), 28.0);  // 0+1+...+7
  EXPECT_DOUBLE_EQ(m.time(), 3.0 * msg_cost(4));
}

TEST(ReduceBinomial, NonZeroRoot) {
  auto m = make_machine(2);
  const auto group = iota_group(4);
  std::vector<Matrix> contribs;
  for (std::size_t i = 0; i < 4; ++i) contribs.push_back(stamped(1, 1.0));
  const Matrix sum = reduce_binomial(m, group, 3, 1, std::move(contribs));
  EXPECT_EQ(sum(0, 0), 4.0);
}

TEST(ReduceBinomial, AddCostCharged) {
  auto m = make_machine(1);
  const auto group = iota_group(2);
  std::vector<Matrix> contribs{stamped(8, 1.0), stamped(8, 2.0)};
  reduce_binomial(m, group, 0, 1, std::move(contribs), 0.5);
  // One message (cost 26) plus 0.5 * 8 = 4 add time at the root.
  EXPECT_DOUBLE_EQ(m.clock(0), msg_cost(8) + 4.0);
}

TEST(ReduceBinomial, ContributionCountValidated) {
  auto m = make_machine(2);
  const auto group = iota_group(4);
  std::vector<Matrix> contribs(3, stamped(1, 0.0));
  EXPECT_THROW(reduce_binomial(m, group, 0, 1, std::move(contribs)),
               PreconditionError);
}

// ---- all_to_all_ring ---------------------------------------------------------

TEST(AllToAllRing, EveryoneGetsEverythingInOrder) {
  auto m = make_machine(2);
  const auto group = iota_group(4);
  std::vector<Matrix> contribs;
  for (std::size_t i = 0; i < 4; ++i) contribs.push_back(stamped(3, double(i + 1)));
  const auto result = all_to_all_ring(m, group, 1, std::move(contribs));
  ASSERT_EQ(result.size(), 4u);
  for (std::size_t pos = 0; pos < 4; ++pos) {
    ASSERT_EQ(result[pos].size(), 4u);
    for (std::size_t origin = 0; origin < 4; ++origin) {
      EXPECT_EQ(result[pos][origin](0, 0), double(origin + 1))
          << "pos=" << pos << " origin=" << origin;
    }
  }
}

TEST(AllToAllRing, CostIsGMinusOneMessages) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  std::vector<Matrix> contribs(8, stamped(5, 1.0));
  all_to_all_ring(m, group, 1, std::move(contribs));
  EXPECT_DOUBLE_EQ(m.time(), 7.0 * msg_cost(5));
}

TEST(AllToAllRing, SingletonGroup) {
  auto m = make_machine(1);
  const std::vector<ProcId> group{1};
  std::vector<Matrix> contribs;
  contribs.push_back(stamped(2, 6.0));
  const auto result = all_to_all_ring(m, group, 1, std::move(contribs));
  EXPECT_EQ(result[0][0](0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.time(), 0.0);
}

// ---- all_to_all_recursive_doubling ------------------------------------------

TEST(AllToAllRecursiveDoubling, EveryoneGetsEverything) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  std::vector<Matrix> contribs;
  for (std::size_t i = 0; i < 8; ++i) contribs.push_back(stamped(2, double(i)));
  const auto result = all_to_all_recursive_doubling(m, group, 1, std::move(contribs));
  for (std::size_t pos = 0; pos < 8; ++pos) {
    for (std::size_t origin = 0; origin < 8; ++origin) {
      EXPECT_EQ(result[pos][origin](0, 0), double(origin));
    }
  }
}

TEST(AllToAllRecursiveDoubling, CostMatchesClosedForm) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  const std::size_t words = 4;
  std::vector<Matrix> contribs(8, stamped(words, 1.0));
  all_to_all_recursive_doubling(m, group, 1, std::move(contribs));
  // t_s log g + t_w m (g - 1): message doubles each round.
  const double expect = kTs * 3 + kTw * static_cast<double>(words) * 7;
  EXPECT_DOUBLE_EQ(m.time(), expect);
}

TEST(AllToAllRecursiveDoubling, RequiresPow2Group) {
  auto m = make_machine(3);
  const auto group = std::vector<ProcId>{0, 1, 2};
  std::vector<Matrix> contribs(3, stamped(1, 1.0));
  EXPECT_THROW(all_to_all_recursive_doubling(m, group, 1, std::move(contribs)),
               PreconditionError);
}

// ---- reduce_scatter_halving --------------------------------------------------

TEST(ReduceScatterHalving, SlicesOfTheSum) {
  auto m = make_machine(2);
  const auto group = iota_group(4);
  // Contribution from member i: 8x2 matrix with every entry i+1.
  std::vector<Matrix> contribs;
  for (std::size_t i = 0; i < 4; ++i) {
    contribs.push_back(Matrix(8, 2, double(i + 1)));
  }
  const auto slices = reduce_scatter_halving(m, group, 1, std::move(contribs));
  ASSERT_EQ(slices.size(), 4u);
  for (std::size_t pos = 0; pos < 4; ++pos) {
    ASSERT_EQ(slices[pos].rows(), 2u);  // 8 rows / 4 members
    ASSERT_EQ(slices[pos].cols(), 2u);
    for (double v : slices[pos].data()) EXPECT_EQ(v, 10.0);  // 1+2+3+4
  }
}

TEST(ReduceScatterHalving, DistinctRowsLandAtDistinctMembers) {
  auto m = make_machine(2);
  const auto group = iota_group(4);
  std::vector<Matrix> contribs;
  for (std::size_t i = 0; i < 4; ++i) {
    Matrix c(4, 1);
    for (std::size_t r = 0; r < 4; ++r) c(r, 0) = double(r);  // row index
    contribs.push_back(std::move(c));
  }
  const auto slices = reduce_scatter_halving(m, group, 1, std::move(contribs));
  for (std::size_t pos = 0; pos < 4; ++pos) {
    // Member pos holds row `pos` of the 4-way sum: value 4 * pos.
    EXPECT_EQ(slices[pos](0, 0), 4.0 * double(pos));
  }
}

TEST(ReduceScatterHalving, CostMatchesClosedForm) {
  auto m = make_machine(3);
  const auto group = iota_group(8);
  const std::size_t rows = 64, cols = 1;
  std::vector<Matrix> contribs(8, Matrix(rows, cols, 1.0));
  reduce_scatter_halving(m, group, 1, std::move(contribs));
  // sum_{s=1..3} (t_s + t_w m / 2^s) = 3 t_s + t_w m (1 - 1/8)
  const double expect = 3 * kTs + kTw * 64.0 * (1.0 - 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.time(), expect);
}

TEST(ReduceScatterHalving, Validation) {
  auto m = make_machine(2);
  std::vector<Matrix> three(3, Matrix(4, 1));
  EXPECT_THROW(
      reduce_scatter_halving(m, std::vector<ProcId>{0, 1, 2}, 1, std::move(three)),
      PreconditionError);  // non-pow2 group
  std::vector<Matrix> bad_rows(4, Matrix(6, 1));
  EXPECT_THROW(reduce_scatter_halving(m, iota_group(4), 1, std::move(bad_rows)),
               PreconditionError);  // 4 does not divide 6
}

// ---- Johnsson-Ho (modeled) ---------------------------------------------------

TEST(JohnssonHo, ClosedFormValue) {
  MachineParams p = test_params();
  const double words = 80.0;
  const double logg = 3.0;
  const double packets = std::sqrt(p.t_s * words / (p.t_w * logg));
  const double expect = p.t_s * logg + p.t_w * words + 2.0 * p.t_w * logg * packets;
  EXPECT_DOUBLE_EQ(johnsson_ho_broadcast_time(p, words, 8), expect);
}

TEST(JohnssonHo, DegeneratePacketGuard) {
  MachineParams p;
  p.t_s = 0.001;  // tiny startup -> packet count would fall below 1
  p.t_w = 10.0;
  const double t = johnsson_ho_broadcast_time(p, 4.0, 8);
  // With packets clamped to 1: t_s log g + t_w m + 2 t_w log g.
  EXPECT_DOUBLE_EQ(t, 0.001 * 3 + 40.0 + 2.0 * 10.0 * 3);
}

TEST(JohnssonHo, FasterThanBinomialForLargeMessages) {
  MachineParams p = test_params();
  const double words = 10000.0;
  const double binomial = (p.t_s + p.t_w * words) * 4;  // log 16 rounds
  EXPECT_LT(johnsson_ho_broadcast_time(p, words, 16), binomial);
}

TEST(JohnssonHo, TrivialCases) {
  MachineParams p = test_params();
  EXPECT_DOUBLE_EQ(johnsson_ho_broadcast_time(p, 100.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(johnsson_ho_broadcast_time(p, 0.0, 8), p.t_s * 3);
}

// ---- modeled collectives -----------------------------------------------------

TEST(BroadcastModeled, ReplicatesAndCharges) {
  auto m = make_machine(2);
  const auto group = iota_group(4);
  const auto result = broadcast_modeled(m, group, 1, stamped(2, 7.0), 33.0);
  ASSERT_EQ(result.size(), 4u);
  for (const auto& copy : result) EXPECT_EQ(copy(0, 1), 7.0);
  for (ProcId pid = 0; pid < 4; ++pid) EXPECT_DOUBLE_EQ(m.clock(pid), 33.0);
}

TEST(AllToAllModeled, ReplicatesAndCharges) {
  auto m = make_machine(1);
  const auto group = iota_group(2);
  std::vector<Matrix> contribs{stamped(1, 1.0), stamped(1, 2.0)};
  const auto result = all_to_all_modeled(m, group, std::move(contribs), 5.0);
  EXPECT_EQ(result[0][1](0, 0), 2.0);
  EXPECT_EQ(result[1][0](0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.time(), 5.0);
}

}  // namespace
}  // namespace hpmm
