#include "sim/reliable.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/fault.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

Matrix payload(std::size_t words) { return Matrix(1, words); }

std::shared_ptr<FaultPlan> make_plan() { return std::make_shared<FaultPlan>(); }

/// Find a (round, seed) pair whose first `k` attempts drop and attempt k
/// succeeds, so timeline arithmetic can be checked exactly.
std::uint64_t round_with_drops(const FaultInjector& inj, const Message& m,
                               unsigned k) {
  for (std::uint64_t round = 1; round < 100000; ++round) {
    unsigned a = 0;
    while (a < k && inj.fate(m, round, a, 1.0).dropped) ++a;
    if (a == k && !inj.fate(m, round, k, 1.0).dropped) return round;
  }
  ADD_FAILURE() << "no round with " << k << " leading drops found";
  return 0;
}

TEST(ReliableDelivery, CleanTransmissionCostsOneMessageTime) {
  auto plan = make_plan();
  plan->drop_prob = 0.0;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  const ReliableOutcome out = reliable_delivery(inj, m, 1, 25.0);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.retransmissions(), 0u);
  EXPECT_TRUE(out.delivered);
  EXPECT_DOUBLE_EQ(out.busy, 25.0);
  EXPECT_DOUBLE_EQ(out.wait, 0.0);
  EXPECT_DOUBLE_EQ(out.span(), 25.0);
}

TEST(ReliableDelivery, SingleDropCostsTimeoutPlusRetransmission) {
  auto plan = make_plan();
  plan->seed = 17;
  plan->drop_prob = 0.3;
  plan->rto_factor = 2.0;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  const std::uint64_t round = round_with_drops(inj, m, 1);
  const double cost = 25.0;
  const ReliableOutcome out = reliable_delivery(inj, m, round, cost);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.retransmissions(), 1u);
  EXPECT_TRUE(out.delivered);
  EXPECT_DOUBLE_EQ(out.busy, 2 * cost);            // two transmissions
  EXPECT_DOUBLE_EQ(out.wait, plan->rto_factor * cost);  // one timeout
  EXPECT_DOUBLE_EQ(out.span(), 2 * cost + 2.0 * cost);
}

TEST(ReliableDelivery, BackoffDoublesSuccessiveTimeouts) {
  auto plan = make_plan();
  plan->seed = 23;
  plan->drop_prob = 0.5;
  plan->rto_factor = 2.0;
  plan->rto_backoff = 2.0;
  const FaultInjector inj(plan);
  const Message m(2, 3, 5, payload(8));
  const std::uint64_t round = round_with_drops(inj, m, 2);
  const double cost = 10.0;
  const ReliableOutcome out = reliable_delivery(inj, m, round, cost);
  EXPECT_EQ(out.attempts, 3u);
  // Timeouts: rto, then rto * backoff.
  EXPECT_DOUBLE_EQ(out.wait, 2.0 * cost + 4.0 * cost);
  EXPECT_DOUBLE_EQ(out.busy, 3 * cost);
}

TEST(ReliableDelivery, NoBackoffKeepsTimeoutsFlat) {
  auto plan = make_plan();
  plan->seed = 23;
  plan->drop_prob = 0.5;
  plan->rto_factor = 3.0;
  plan->rto_backoff = 1.0;
  const FaultInjector inj(plan);
  const Message m(2, 3, 5, payload(8));
  const std::uint64_t round = round_with_drops(inj, m, 2);
  const ReliableOutcome out = reliable_delivery(inj, m, round, 10.0);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_DOUBLE_EQ(out.wait, 30.0 + 30.0);
}

/// Span formula from reliable.hpp, for r retransmissions at base cost c:
///   span = (r+1)*c + sum_{k=0}^{r-1} rto_factor * backoff^k * c
/// pinned here for r = 0, 1 and r = max_retries (the largest r that can
/// succeed), together with the attempt indexing the counters expose.
TEST(ReliableDelivery, SpanFormulaAcrossDropCounts) {
  auto plan = make_plan();
  plan->seed = 41;
  plan->drop_prob = 0.5;
  plan->rto_factor = 2.0;
  plan->rto_backoff = 3.0;
  plan->max_retries = 3;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  const double c = 10.0;
  for (const unsigned r : {0u, 1u, 3u}) {  // 3 == max_retries still succeeds
    const std::uint64_t round = round_with_drops(inj, m, r);
    const ReliableOutcome out = reliable_delivery(inj, m, round, c);
    EXPECT_EQ(out.attempts, r + 1) << "r=" << r;
    EXPECT_EQ(out.retransmissions(), r) << "r=" << r;
    EXPECT_TRUE(out.delivered);
    double expected_wait = 0.0, rto = plan->rto_factor * c;
    for (unsigned k = 0; k < r; ++k) {
      expected_wait += rto;
      rto *= plan->rto_backoff;
    }
    EXPECT_DOUBLE_EQ(out.busy, (r + 1) * c) << "r=" << r;
    EXPECT_DOUBLE_EQ(out.wait, expected_wait) << "r=" << r;
    EXPECT_DOUBLE_EQ(out.span(), (r + 1) * c + expected_wait) << "r=" << r;
    // The delivering attempt is the last one, 0-indexed.
    EXPECT_EQ(out.corrupt_attempt, r) << "r=" << r;
  }
}

TEST(ReliableDelivery, OneDropPastTheBudgetThrows) {
  auto plan = make_plan();
  plan->seed = 41;
  plan->drop_prob = 0.5;
  plan->max_retries = 2;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  // A round whose first 3 attempts drop needs 3 retries; budget is 2.
  const std::uint64_t round = round_with_drops(inj, m, 3);
  EXPECT_THROW(reliable_delivery(inj, m, round, 10.0), InternalError);
}

TEST(ReliableDelivery, ZeroRetryBudgetBoundary) {
  // max_retries = 0: a clean first attempt succeeds, any drop is fatal.
  auto clean = make_plan();
  clean->max_retries = 0;
  const FaultInjector clean_inj(clean);
  const Message m(0, 1, 1, payload(4));
  const ReliableOutcome out = reliable_delivery(clean_inj, m, 1, 10.0);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_TRUE(out.delivered);
  EXPECT_DOUBLE_EQ(out.span(), 10.0);

  auto lossy = make_plan();
  lossy->drop_prob = 1.0;
  lossy->max_retries = 0;
  const FaultInjector lossy_inj(lossy);
  EXPECT_THROW(reliable_delivery(lossy_inj, m, 1, 10.0), InternalError);
}

TEST(ReliableDelivery, UnreliableModeLeavesCorruptAttemptAtZero) {
  auto plan = make_plan();
  plan->seed = 47;
  plan->drop_prob = 0.5;
  plan->corrupt_prob = 0.5;
  plan->reliable = false;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  for (std::uint64_t round = 1; round <= 20; ++round) {
    const ReliableOutcome out = reliable_delivery(inj, m, round, 10.0);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.corrupt_attempt, 0u);  // only attempt 0 exists
  }
}

TEST(ReliableDelivery, ExhaustedRetryBudgetIsAnInternalError) {
  auto plan = make_plan();
  plan->drop_prob = 1.0;
  plan->max_retries = 4;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  EXPECT_THROW(reliable_delivery(inj, m, 1, 10.0), InternalError);
}

TEST(ReliableDelivery, UnreliableModeGivesUpAfterOneAttempt) {
  auto plan = make_plan();
  plan->drop_prob = 1.0;
  plan->reliable = false;
  const FaultInjector inj(plan);
  const Message m(0, 1, 1, payload(4));
  const ReliableOutcome out = reliable_delivery(inj, m, 1, 10.0);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_FALSE(out.delivered);
  EXPECT_DOUBLE_EQ(out.busy, 10.0);  // the doomed transmission is still paid
  EXPECT_DOUBLE_EQ(out.wait, 0.0);
}

TEST(ReliableDelivery, DeterministicAcrossCalls) {
  auto plan = make_plan();
  plan->seed = 31;
  plan->drop_prob = 0.4;
  plan->duplicate_prob = 0.2;
  plan->corrupt_prob = 0.1;
  plan->delay_prob = 0.3;
  const FaultInjector inj(plan);
  for (std::uint64_t round = 1; round <= 50; ++round) {
    const Message m(1, 2, 3, payload(6));
    const ReliableOutcome a = reliable_delivery(inj, m, round, 7.0);
    const ReliableOutcome b = reliable_delivery(inj, m, round, 7.0);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.duplicated, b.duplicated);
    EXPECT_EQ(a.corrupted, b.corrupted);
    EXPECT_DOUBLE_EQ(a.span(), b.span());
    EXPECT_DOUBLE_EQ(a.delay, b.delay);
  }
}

}  // namespace
}  // namespace hpmm
