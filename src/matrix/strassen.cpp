#include "matrix/strassen.hpp"

#include "matrix/kernels.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace hpmm {
namespace {

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix strassen_rec(const Matrix& a, const Matrix& b, std::size_t cutoff) {
  const std::size_t n = a.rows();
  if (n <= cutoff || n % 2 != 0) {
    return multiply(a, b, Kernel::kCacheIkj);
  }
  const std::size_t h = n / 2;
  const Matrix a11 = a.slice(0, 0, h, h), a12 = a.slice(0, h, h, h);
  const Matrix a21 = a.slice(h, 0, h, h), a22 = a.slice(h, h, h, h);
  const Matrix b11 = b.slice(0, 0, h, h), b12 = b.slice(0, h, h, h);
  const Matrix b21 = b.slice(h, 0, h, h), b22 = b.slice(h, h, h, h);

  const Matrix m1 = strassen_rec(add(a11, a22), add(b11, b22), cutoff);
  const Matrix m2 = strassen_rec(add(a21, a22), b11, cutoff);
  const Matrix m3 = strassen_rec(a11, sub(b12, b22), cutoff);
  const Matrix m4 = strassen_rec(a22, sub(b21, b11), cutoff);
  const Matrix m5 = strassen_rec(add(a11, a12), b22, cutoff);
  const Matrix m6 = strassen_rec(sub(a21, a11), add(b11, b12), cutoff);
  const Matrix m7 = strassen_rec(sub(a12, a22), add(b21, b22), cutoff);

  Matrix c(n, n);
  c.paste(add(sub(add(m1, m4), m5), m7), 0, 0);   // c11
  c.paste(add(m3, m5), 0, h);                     // c12
  c.paste(add(m2, m4), h, 0);                     // c21
  c.paste(add(sub(add(m1, m3), m2), m6), h, h);   // c22
  return c;
}

}  // namespace

Matrix multiply_strassen(const Matrix& a, const Matrix& b, std::size_t cutoff) {
  require(a.square() && b.square() && a.rows() == b.rows(),
          "multiply_strassen: operands must be square and equal order");
  require(cutoff >= 1, "multiply_strassen: cutoff must be positive");
  const std::size_t n = a.rows();
  if (n == 0) return Matrix();
  if (n <= cutoff) return multiply(a, b, Kernel::kCacheIkj);

  // Pad to the next power of two so every recursion level halves evenly.
  std::size_t padded = 1;
  while (padded < n) padded <<= 1;
  if (padded == n) return strassen_rec(a, b, cutoff);
  Matrix ap(padded, padded), bp(padded, padded);
  ap.paste(a, 0, 0);
  bp.paste(b, 0, 0);
  const Matrix cp = strassen_rec(ap, bp, cutoff);
  return cp.slice(0, 0, n, n);
}

std::uint64_t strassen_multiplications(std::size_t n, std::size_t cutoff) {
  require(cutoff >= 1, "strassen_multiplications: cutoff must be positive");
  std::size_t padded = 1;
  while (padded < n) padded <<= 1;
  if (n <= cutoff) {
    return static_cast<std::uint64_t>(n) * n * n;
  }
  // Recurse on the padded order (as the implementation does).
  std::uint64_t mults = 1;
  std::size_t order = padded;
  while (order > cutoff && order % 2 == 0) {
    mults *= 7;
    order /= 2;
  }
  return mults * static_cast<std::uint64_t>(order) * order * order;
}

}  // namespace hpmm
