// Ablations over the design choices DESIGN.md calls out:
//  1. all-to-all scheme inside the Simple algorithm (ring vs recursive
//     doubling) — why Eq. 2's constants assume the hypercube scheme;
//  2. GK broadcast scheme (binomial vs Johnsson-Ho vs all-port) — the
//     Section 5.4/7.2 ladder;
//  3. link-contention accounting (the paper ignores it; the kLinkLoad mode
//     quantifies what that hides, esp. Cannon's alignment);
//  4. hypercube vs fully-connected interconnect for GK (Eq. 7 vs Eq. 18).

#include <iostream>

#include "core/registry.hpp"
#include "matrix/generate.hpp"
#include "util/table.hpp"

using namespace hpmm;

namespace {

double run_time(const char* name, std::size_t n, std::size_t p,
                const MachineParams& mp) {
  Rng rng(7);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  return default_registry()
      .implementation(name)
      .run(a, b, p, mp)
      .report.t_parallel;
}

}  // namespace

int main() {
  MachineParams mp;
  mp.t_s = 60.0;
  mp.t_w = 2.0;
  mp.label = "t_s=60, t_w=2";
  std::cout << "=== Ablations (" << mp.label << ") ===\n\n";

  {
    std::cout << "--- 1. Simple algorithm: ring vs recursive-doubling "
                 "all-to-all ---\n\n";
    Table t({"n", "p", "T_p ring  (p-1 startups)", "T_p rec-dbl (log p startups)",
             "ratio"});
    for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{16, 16},
                              {32, 64}, {64, 64}, {64, 256}}) {
      const double ring = run_time("simple-ring", n, p, mp);
      const double rd = run_time("simple", n, p, mp);
      t.begin_row()
          .add_int(static_cast<long long>(n))
          .add_int(static_cast<long long>(p))
          .add_num(ring, 5)
          .add_num(rd, 5)
          .add_num(ring / rd, 3);
    }
    t.print_aligned(std::cout);
    std::cout << "\nRecursive doubling wins on startups (log p vs sqrt(p)-1 per\n"
                 "phase) at equal word traffic — the scheme Eq. 2 assumes.\n\n";
  }

  {
    std::cout << "--- 2. GK broadcast scheme ladder ---\n\n";
    Table t({"n", "p", "binomial (Eq. 7)", "Johnsson-Ho (5.4.1)",
             "all-port (Eq. 17)"});
    for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{16, 64},
                              {32, 64}, {32, 512}, {64, 512}}) {
      t.begin_row()
          .add_int(static_cast<long long>(n))
          .add_int(static_cast<long long>(p))
          .add_num(run_time("gk", n, p, mp), 5)
          .add_num(run_time("gk-jh", n, p, mp), 5)
          .add_num(run_time("gk-allport", n, p, mp), 5);
    }
    t.print_aligned(std::cout);
    std::cout << "\nThe pipelined broadcast trades startups for packets; all-port\n"
                 "hardware buys a log p factor on the t_w term. Neither changes\n"
                 "the isoefficiency class (Sections 5.4.1, 7.2).\n\n";
  }

  {
    std::cout << "--- 3. Link-contention accounting (kIgnore vs kLinkLoad) ---\n\n";
    MachineParams loaded = mp;
    loaded.contention = Contention::kLinkLoad;
    Table t({"algorithm", "n", "p", "T_p (paper model)", "T_p (contention)",
             "overhead hidden"});
    for (const char* name : {"cannon", "simple-ring", "gk", "berntsen"}) {
      const std::size_t n = 32, p = 64;
      if (!default_registry().implementation(name).applicable(n, p)) continue;
      const double ignore = run_time(name, n, p, mp);
      const double contended = run_time(name, n, p, loaded);
      t.begin_row()
          .add(name)
          .add_int(static_cast<long long>(n))
          .add_int(static_cast<long long>(p))
          .add_num(ignore, 5)
          .add_num(contended, 5)
          .add(format_number((contended / ignore - 1.0) * 100.0, 2) + "%");
    }
    t.print_aligned(std::cout);
    std::cout << "\nOnly Cannon's multi-hop alignment sees contention (its shifts,\n"
                 "the broadcasts' tree rounds and GK's routed moves are\n"
                 "link-disjoint) — quantifying why the paper could ignore it.\n\n";
  }

  {
    std::cout << "--- 4. GK interconnect: hypercube (Eq. 7) vs fully connected "
                 "(Eq. 18) ---\n\n";
    Table t({"n", "p", "hypercube", "fully connected", "speedup factor"});
    for (const auto [n, p] : {std::pair<std::size_t, std::size_t>{16, 64},
                              {32, 512}, {64, 512}}) {
      const double cube = run_time("gk", n, p, mp);
      const double fc = run_time("gk-fc", n, p, mp);
      t.begin_row()
          .add_int(static_cast<long long>(n))
          .add_int(static_cast<long long>(p))
          .add_num(cube, 5)
          .add_num(fc, 5)
          .add_num(cube / fc, 3);
    }
    t.print_aligned(std::cout);
    std::cout << "\n(5/3) log p phases vs (log p + 2): the fully connected (CM-5)\n"
                 "view saves the dimension-ordered routing rounds of stage 1.\n";
  }
  return 0;
}
