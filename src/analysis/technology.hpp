#pragma once

#include <optional>

#include "analysis/perf_model.hpp"

namespace hpmm {

/// Section 8: dependence of scalability on technology factors.
///
/// Because t_w enters most isoefficiency functions as t_w^3, replacing the
/// CPUs with k-times faster ones (which scales the *relative* communication
/// costs t_s, t_w by k) forces the problem size up by ~k^3 to hold the same
/// efficiency — whereas k times more processors only costs the isoefficiency
/// power (k^{1.5} for Cannon). Hence "more processors" can beat "faster
/// processors".

/// Factor by which W must grow when moving from p to k*p processors at fixed
/// efficiency: W(k p)/W(p). (Cannon, k = 10 -> ~31.6.)
std::optional<double> problem_growth_more_procs(const PerfModel& model, double p,
                                                double k, double efficiency);

/// Factor by which W must grow when the processors become k times faster
/// (same p, t_s and t_w scaled by k) at fixed efficiency. Requires a factory
/// for the model with scaled parameters, so it is expressed per model type.
template <typename Model>
std::optional<double> problem_growth_faster_procs(const MachineParams& params,
                                                  double p, double k,
                                                  double efficiency);

/// Wall-clock comparison for a *fixed* problem: time (in original-CPU
/// multiply-add units) to multiply n x n matrices on
///   (a) k*p processors of the original speed, vs
///   (b) p processors that are k times faster.
/// Returns the pair {T_more_procs, T_faster_procs}.
struct MoreVsFaster {
  double t_more_procs = 0.0;
  double t_faster_procs = 0.0;
  bool more_procs_wins() const noexcept { return t_more_procs < t_faster_procs; }
};
template <typename Model>
MoreVsFaster more_vs_faster(const MachineParams& params, double n, double p,
                            double k);

}  // namespace hpmm

#include "analysis/technology_impl.hpp"
