#include "sim/sim_machine.hpp"

#include <algorithm>

#include "sim/reliable.hpp"
#include "topology/routing.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hpmm {

SimMachine::SimMachine(std::shared_ptr<const Topology> topology,
                       MachineParams params)
    : topology_(std::move(topology)), params_(std::move(params)) {
  require(topology_ != nullptr, "SimMachine: topology must not be null");
  require(params_.exec.threads >= 1, "SimMachine: exec.threads must be >= 1");
  require(params_.trace_sample >= 0.0 && params_.trace_sample <= 1.0,
          "SimMachine: trace_sample must be in [0, 1]");
  if (params_.exec.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(params_.exec.threads);
  }
  const std::size_t p = topology_->size();
  stats_.resize(p);
  inbox_head_.assign(p, kNilSlot);
  inbox_tail_.assign(p, kNilSlot);
  chain_.resize(p);
  traffic_ = TrafficMatrix(p);
  // Capture sparsity (DESIGN.md §12): aggregate metrics and traffic-matrix
  // gating are resolved once so the per-message hot path only tests bools.
  aggregate_ = params_.metrics_mode == MetricsMode::kAggregate;
  traffic_on_ =
      params_.traffic_capture == TrafficCapture::kOn ||
      (params_.traffic_capture == TrafficCapture::kAuto &&
       p <= MachineParams::kTrafficAutoThreshold);
  trace_all_ = params_.trace_sample >= 1.0;
  trace_threshold_ =
      trace_all_ ? ~std::uint64_t{0}
                 : static_cast<std::uint64_t>(params_.trace_sample *
                                              18446744073709551616.0);
  // Round scratch, allocated once; exchange() touches only participants.
  scratch_.sends.assign(p, 0);
  scratch_.recvs.assign(p, 0);
  scratch_.send_busy.assign(p, 0.0);
  scratch_.send_span.assign(p, 0.0);
  scratch_.arrival_max.assign(p, 0.0);
  scratch_.arrival_msg.assign(p, kNoMessage);
  scratch_.busiest_msg.assign(p, kNoMessage);
  scratch_.in_round.assign(p, 0);
  // Register the standard distributions up front so they appear in metric
  // exports even before the first message, and cache the hot-path
  // instruments so exchange() never does a by-name lookup per message.
  h_msg_words_ =
      &metrics_.histogram("sim.message_words", Histogram::pow2_bounds(24));
  h_msg_hops_ =
      &metrics_.histogram("sim.message_hops", Histogram::pow2_bounds(8));
  h_hop_latency_ =
      &metrics_.histogram("sim.hop_latency", Histogram::pow2_bounds(24));
  c_messages_ = &metrics_.counter("sim.messages");
  c_words_ = &metrics_.counter("sim.words");
  tracing_ = params_.trace;
  if (params_.causal) {
    causal_ = std::make_unique<CausalGraph>(
        p, trace_all_, 0x9e3779b97f4a7c15ull ^ params_.trace_sample_seed);
  }
  wall_start_ = std::chrono::steady_clock::now();
  // The fault path only exists when a plan can actually fire; an inactive
  // plan keeps the machine on the exact ideal code path (bit-identical
  // times), which tests/algorithms/resilience_test.cpp pins down.
  if (params_.faults && params_.faults->active()) {
    injector_ = std::make_unique<FaultInjector>(params_.faults);
    for (const auto& s : params_.faults->stragglers) {
      require(s.pid < procs(), "FaultPlan: straggler pid out of range");
    }
    for (const auto& f : params_.faults->failstops) {
      require(f.pid < procs(), "FaultPlan: fail-stop pid out of range");
    }
  }
}

bool SimMachine::trace_sampled(ProcId pid) const noexcept {
  // splitmix64 finalizer over the (pid, seed) pair: a stateless, seeded,
  // uniform hash, so the sampled processor set is reproducible and
  // independent of event order and of p.
  std::uint64_t z = static_cast<std::uint64_t>(pid) + 0x9e3779b97f4a7c15ull +
                    params_.trace_sample_seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z < trace_threshold_;
}

void SimMachine::record(ProcId pid, TraceEvent::Kind kind, double start,
                        double end, std::uint64_t words) {
  if (!tracing_ || end <= start) return;
  if (!trace_all_ && !trace_sampled(pid)) return;
  trace_events_.push_back(
      TraceEvent{pid, kind, start, end, words, current_phase()});
}

SimMachine::PhaseId SimMachine::begin_phase(std::string_view name) {
  require(!name.empty(), "SimMachine::begin_phase: empty phase name");
  PhaseId id = 0;
  for (std::size_t i = 1; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) {
      id = static_cast<PhaseId>(i);
      break;
    }
  }
  if (id == 0) {
    require(phase_names_.size() < 0xffff,
            "SimMachine::begin_phase: too many distinct phases");
    id = static_cast<PhaseId>(phase_names_.size());
    phase_names_.emplace_back(name);
  }
  phase_stack_.push_back(id);
  return id;
}

void SimMachine::end_phase() {
  require(!phase_stack_.empty(), "SimMachine::end_phase: no open phase");
  phase_stack_.pop_back();
}

PhaseStats& SimMachine::phase_cell(PhaseId phase, ProcId pid) {
  if (phase_stats_.size() <= phase) phase_stats_.resize(phase + 1u);
  auto& row = phase_stats_[phase];
  if (row.size() < procs()) row.resize(procs());
  return row[pid];
}

PhaseStats& SimMachine::phase_total(PhaseId phase) {
  if (phase_totals_.size() <= phase) phase_totals_.resize(phase + 1u);
  return phase_totals_[phase];
}

PathTerms& SimMachine::chain_cell(ProcId pid) {
  auto& row = chain_[pid];
  const PhaseId phase = current_phase();
  if (row.size() <= phase) row.resize(phase + 1u);
  return row[phase];
}

void SimMachine::compute(ProcId pid, double flops) {
  require(pid < procs(), "SimMachine::compute: pid out of range");
  require(flops >= 0.0, "SimMachine::compute: negative flops");
  auto& st = stats_[pid];
  double duration = flops;  // t_c = 1 multiply-add unit
  if (injector_) {
    check_alive(pid);
    duration = flops * injector_->slowdown(pid);  // straggler runs slower
  }
  record(pid, TraceEvent::Kind::kCompute, st.clock, st.clock + duration);
  if (duration > 0.0 && causal_on(pid)) {
    PathTerms terms;
    terms.compute = duration;
    // Straggler clock-rate inflation is the fault slice of a compute span.
    causal_->chain(pid, CausalGraph::Kind::kCompute, current_phase(), st.clock,
                   st.clock + duration, terms, duration - flops);
  }
  ++events_;
  st.clock += duration;
  st.compute_time += duration;
  st.flops += static_cast<std::uint64_t>(flops);
  if (aggregate_) {
    auto& cell = phase_total(current_phase());
    cell.compute_time += duration;
    cell.flops += static_cast<std::uint64_t>(flops);
  } else {
    auto& cell = phase_cell(current_phase(), pid);
    cell.compute_time += duration;
    cell.flops += static_cast<std::uint64_t>(flops);
    chain_cell(pid).compute += duration;
  }
  check_deadline(pid);
}

SimMachine::~SimMachine() = default;
SimMachine::SimMachine(SimMachine&&) noexcept = default;
SimMachine& SimMachine::operator=(SimMachine&&) noexcept = default;

void SimMachine::compute_multiply_add(ProcId pid, const Matrix& a,
                                      const Matrix& b, Matrix& c) {
  compute_multiply_add(pid, a, b, c, params_.exec.kernel);
}

void SimMachine::compute_multiply_add(ProcId pid, const Matrix& a,
                                      const Matrix& b, Matrix& c,
                                      Kernel kernel) {
  multiply_add(a, b, c, kernel, pool_.get());
  compute(pid, static_cast<double>(matmul_flops(a.rows(), a.cols(), b.cols())));
}

void SimMachine::compute_multiply_add_batch(
    const std::vector<ComputeTask>& tasks) {
  const Kernel kernel = params_.exec.kernel;
  for (const auto& t : tasks) {
    require(t.c != nullptr, "compute_multiply_add_batch: null output matrix");
    require(t.pid < procs(), "compute_multiply_add_batch: pid out of range");
  }
  // Numerics first: tasks touch disjoint outputs, so they run concurrently
  // across the pool. A single task instead threads inside the kernel.
  const auto run_task = [&](const ComputeTask& t, ThreadPool* pool) {
    for (const auto& [a, b] : t.products) multiply_add(*a, *b, *t.c, kernel, pool);
  };
  if (pool_ != nullptr && tasks.size() > 1) {
    pool_->parallel_for(tasks.size(),
                        [&](std::size_t i) { run_task(tasks[i], nullptr); });
  } else {
    for (const auto& t : tasks) run_task(t, pool_.get());
  }
  // Virtual-time accounting: serial and order-preserving — one charge per
  // product, exactly like the equivalent compute_multiply_add sequence
  // (same clocks, same trace events, ProcessorFailure at the same point).
  for (const auto& t : tasks) {
    for (const auto& [a, b] : t.products) {
      compute(t.pid,
              static_cast<double>(matmul_flops(a->rows(), a->cols(), b->cols())));
    }
  }
}

double SimMachine::message_cost(const Message& m,
                                unsigned contention_load) const {
  const unsigned hops = topology_->hops(m.src, m.dst);
  const double base = params_.message_time(static_cast<double>(m.words()), hops);
  if (contention_load <= 1) return base;
  // Under link contention the per-word part serialises with the other
  // messages sharing the bottleneck link; startup/hop latency is unaffected.
  const double tw_part = params_.t_w * static_cast<double>(m.words()) *
                         (params_.routing == Routing::kStoreAndForward
                              ? static_cast<double>(hops)
                              : 1.0);
  return base + tw_part * static_cast<double>(contention_load - 1);
}

double SimMachine::message_startup(const Message& m) const {
  const unsigned hops = topology_->hops(m.src, m.dst);
  if (hops == 0) return 0.0;
  if (params_.routing == Routing::kStoreAndForward) {
    return params_.t_s * static_cast<double>(hops);
  }
  return params_.t_s + params_.t_h * static_cast<double>(hops);
}

void SimMachine::exchange(std::vector<Message> messages) {
  ++exchange_round_;  // identifies this round in fault-fate hashing
  auto& rs = scratch_;
  // Entry-time cleanup of the previous round's footprint: doing it here
  // rather than on exit means an exception thrown mid-round (deadline,
  // processor failure, precondition) cannot poison the next round.
  for (const ProcId pid : rs.participants) {
    rs.sends[pid] = 0;
    rs.recvs[pid] = 0;
    rs.send_busy[pid] = 0.0;
    rs.send_span[pid] = 0.0;
    rs.arrival_max[pid] = 0.0;
    rs.arrival_msg[pid] = kNoMessage;
    rs.busiest_msg[pid] = kNoMessage;
    rs.in_round[pid] = 0;
  }
  rs.participants.clear();

  // Validate endpoints and count sends/receives, discovering the round's
  // participants. Everything below loops over participants or messages —
  // never over all p processors — so a round between a handful of
  // processors costs the same on a 16-processor machine as on a
  // million-processor one (the "lazy clocks" half of DESIGN.md §12).
  for (const auto& m : messages) {
    require(m.src < procs() && m.dst < procs(),
            "SimMachine::exchange: endpoint out of range");
    require(m.src != m.dst, "SimMachine::exchange: self-message");
    if (injector_) {
      check_alive(m.src);
      check_alive(m.dst);
    }
    if (!rs.in_round[m.src]) {
      rs.in_round[m.src] = 1;
      rs.participants.push_back(m.src);
    }
    if (!rs.in_round[m.dst]) {
      rs.in_round[m.dst] = 1;
      rs.participants.push_back(m.dst);
    }
    ++rs.sends[m.src];
    ++rs.recvs[m.dst];
  }
  // Ascending pid order keeps the processor loops below byte-identical to
  // the historical full 0..p-1 scans (which a non-participant passed
  // through without effect).
  std::sort(rs.participants.begin(), rs.participants.end());
  const bool one_port = params_.ports == PortModel::kOnePort;
  const unsigned limit =
      one_port ? 1u : std::max(1u, topology_->ports_per_proc());
  for (const ProcId pid : rs.participants) {
    require(rs.sends[pid] <= limit,
            "SimMachine::exchange: too many sends from one processor for the "
            "port model (split the pattern into multiple rounds)");
    require(rs.recvs[pid] <= limit,
            "SimMachine::exchange: too many receives at one processor for the "
            "port model (split the pattern into multiple rounds)");
  }

  // Optional contention model: each message's per-word time scales with the
  // worst link load along its route within this round.
  rs.load_factor.assign(messages.size(), 1);
  if (params_.contention == Contention::kLinkLoad && !messages.empty()) {
    std::vector<std::pair<ProcId, ProcId>> transfers;
    transfers.reserve(messages.size());
    for (const auto& m : messages) transfers.emplace_back(m.src, m.dst);
    const auto loads = link_loads(*topology_, transfers);
    for (std::size_t i = 0; i < messages.size(); ++i) {
      unsigned worst = 1;
      for (const Link& link :
           route_on(*topology_, messages[i].src, messages[i].dst)) {
        worst = std::max(worst, loads.at(link));
      }
      rs.load_factor[i] = worst;
    }
  }

  // Senders are busy for the full duration of their transfers. Under the
  // all-port model multiple transfers from one processor run concurrently,
  // so the busy time is the max (not the sum) of their costs. With an
  // active fault plan each message additionally walks the reliable-delivery
  // retry schedule (sim/reliable.hpp): timeouts extend the sender's elapsed
  // span beyond its busy time, and the arrival moves to the successful
  // attempt (plus any in-flight delay).
  rs.deliver.assign(messages.size(), 1);
  rs.deliver_dup.assign(messages.size(), 0);
  // Critical-path bookkeeping (pure metadata — never feeds back into the
  // clock arithmetic below): which message sets each receiver's arrival,
  // which sets each sender's busy time, and each message's startup/word/
  // other split. Retry timeouts, in-flight delays and straggler inflation
  // all land in `other`.
  const PhaseId cur = current_phase();
  rs.msg_startup.assign(messages.size(), 0.0);
  rs.msg_word.assign(messages.size(), 0.0);
  rs.msg_other.assign(messages.size(), 0.0);
  events_ += messages.size();
  for (std::size_t i = 0; i < messages.size(); ++i) {
    auto& m = messages[i];
    if (causal_) {
      // Span context travels with the payload (and with every retransmission
      // of it): the sender's head at send time is the span this message
      // causally depends on. Heads only mutate in the participant loop
      // below, so this snapshot is the pre-round chain — exactly what a
      // waiting receiver adopts.
      m.span.trace = causal_->trace_id();
      m.span.parent = causal_->head(m.src);
      m.span.hop = causal_->hop(m.src) + 1;
    }
    double cost = message_cost(m, rs.load_factor[i]);
    double busy = cost, span = cost, arrival_delay = 0.0;
    if (injector_) {
      cost *= injector_->slowdown(m.src);  // a straggler's sends run slower
      const ReliableOutcome out =
          reliable_delivery(*injector_, m, exchange_round_, cost);
      busy = out.busy;
      span = out.span();
      arrival_delay = out.delay;
      rs.deliver[i] = out.delivered ? 1 : 0;
      auto& fs = fault_stats_;
      fs.transmissions_dropped += out.attempts - 1 + (out.delivered ? 0 : 1);
      fs.retransmissions += out.retransmissions();
      stats_[m.src].retransmissions += out.retransmissions();
      if (out.delay > 0.0) ++fs.deliveries_delayed;
      if (!out.delivered) ++fs.messages_lost;
      if (out.duplicated) {
        // The reliable protocol de-duplicates at the receiver; without it
        // the extra copy really lands in the inbox.
        if (injector_->plan().reliable) {
          ++fs.duplicates_suppressed;
        } else {
          rs.deliver_dup[i] = out.delivered ? 1 : 0;
          if (out.delivered) ++fs.duplicates_delivered;
        }
      }
      if (out.delivered && out.corrupted) {
        corrupt_message_word(
            m, injector_->corrupt_word_index(m, exchange_round_,
                                             out.corrupt_attempt));
        ++fs.elements_corrupted;
      }
    }
    if (rs.deliver[i]) {
      const double arrival = stats_[m.src].clock + span + arrival_delay;
      if (arrival > rs.arrival_max[m.dst]) {
        rs.arrival_max[m.dst] = arrival;
        rs.arrival_msg[m.dst] = i;
      }
    }
    if (busy > rs.send_busy[m.src]) {
      rs.send_busy[m.src] = busy;
      rs.busiest_msg[m.src] = i;
    }
    rs.send_span[m.src] = std::max(rs.send_span[m.src], span);
    stats_[m.src].messages_sent += 1;
    stats_[m.src].words_sent += m.words();
    // Cost split: startup is the t_s/hop slice of the *base* cost, the rest
    // of the transfer time (contention included) is per-word, and everything
    // past the successful transfer (timeouts, delay, slowdown) is "other".
    rs.msg_startup[i] = std::min(message_startup(m), busy);
    rs.msg_word[i] = busy - rs.msg_startup[i];
    rs.msg_other[i] = (span + arrival_delay) - busy;
    if (aggregate_) {
      auto& totals = phase_total(cur);
      totals.messages_sent += 1;
      totals.words_sent += m.words();
    } else {
      auto& pcell = phase_cell(cur, m.src);
      pcell.messages_sent += 1;
      pcell.words_sent += m.words();
      const unsigned hops = topology_->hops(m.src, m.dst);
      h_msg_words_->observe(static_cast<double>(m.words()));
      h_msg_hops_->observe(static_cast<double>(hops));
      if (hops > 0) h_hop_latency_->observe(cost / static_cast<double>(hops));
    }
    c_messages_->add();
    c_words_->add(m.words());
    if (traffic_on_) traffic_.add(m.src, m.dst, m.words());
  }
  // Receivers that end up waiting adopt the chain that produced their
  // arrival: the sender's pre-round decomposition plus this message's cost,
  // attributed to the phase open now (snapshot the chains before the
  // mutation loop below touches them). Aggregate capture keeps no chains.
  if (!aggregate_) {
    rs.adopted.resize(std::max(rs.adopted.size(), rs.participants.size()));
    for (std::size_t k = 0; k < rs.participants.size(); ++k) {
      const ProcId pid = rs.participants[k];
      auto& chain = rs.adopted[k];
      chain.clear();
      const std::size_t mi = rs.arrival_msg[pid];
      if (mi == kNoMessage) continue;
      const Message& m = messages[mi];
      chain = chain_[m.src];
      if (chain.size() <= cur) chain.resize(cur + 1u);
      chain[cur].startup += rs.msg_startup[mi];
      chain[cur].word += rs.msg_word[mi];
      chain[cur].other += rs.msg_other[mi];
    }
  }
  for (std::size_t k = 0; k < rs.participants.size(); ++k) {
    const ProcId pid = rs.participants[k];
    auto& st = stats_[pid];
    const double busy_until = st.clock + rs.send_busy[pid];
    record(pid, TraceEvent::Kind::kSend, st.clock, busy_until);
    st.comm_time += rs.send_busy[pid];
    if (aggregate_) {
      phase_total(cur).comm_time += rs.send_busy[pid];
    } else {
      phase_cell(cur, pid).comm_time += rs.send_busy[pid];
      if (rs.busiest_msg[pid] != kNoMessage) {
        const std::size_t mi = rs.busiest_msg[pid];
        auto& cell = chain_cell(pid);
        cell.startup += rs.msg_startup[mi];
        cell.word += rs.msg_word[mi];
      }
    }
    if (rs.busiest_msg[pid] != kNoMessage && causal_on(pid)) {
      // Mirror of the chain_cell update above, but capture-mode independent:
      // the sender's clock advance is explained by its busiest message.
      // Retransmission busy time and straggler send inflation exceed the
      // fault-free message cost — that excess is the span's fault slice.
      const std::size_t mi = rs.busiest_msg[pid];
      PathTerms terms;
      terms.startup = rs.msg_startup[mi];
      terms.word = rs.msg_word[mi];
      const double ideal = message_cost(messages[mi], rs.load_factor[mi]);
      causal_->chain(pid, CausalGraph::Kind::kSend, cur, st.clock, busy_until,
                     terms, std::max(0.0, rs.send_busy[pid] - ideal));
    }
    double next = busy_until;
    if (rs.send_span[pid] > rs.send_busy[pid]) {
      // Timeout-and-retransmit overhead beyond the pure transfer time.
      const double span_until = st.clock + rs.send_span[pid];
      record(pid, TraceEvent::Kind::kRetry, next, span_until);
      st.idle_time += span_until - next;
      if (aggregate_) {
        phase_total(cur).idle_time += span_until - next;
      } else {
        phase_cell(cur, pid).idle_time += span_until - next;
        chain_cell(pid).other += span_until - next;
      }
      if (causal_on(pid)) {
        // Timeout gaps between retransmissions: pure fault overhead.
        PathTerms terms;
        terms.other = span_until - next;
        causal_->chain(pid, CausalGraph::Kind::kRetry, cur, next, span_until,
                       terms, span_until - next);
      }
      next = span_until;
    }
    if (rs.arrival_max[pid] > next) {
      record(pid, TraceEvent::Kind::kWait, next, rs.arrival_max[pid]);
      st.idle_time += rs.arrival_max[pid] - next;
      if (aggregate_) {
        phase_total(cur).idle_time += rs.arrival_max[pid] - next;
      } else {
        phase_cell(cur, pid).idle_time += rs.arrival_max[pid] - next;
        // The wait ends at the arrival: pid's clock is now explained by the
        // producing chain, not by what pid did this round.
        if (rs.arrival_msg[pid] != kNoMessage) {
          chain_[pid] = std::move(rs.adopted[k]);
        }
      }
      if (rs.arrival_msg[pid] != kNoMessage && causal_on(pid)) {
        // The transfer span is the cross-processor edge: its pred is the
        // sender's pre-round head (carried on the wire), and adopting it as
        // pid's head mirrors the chain_ adoption above in both capture
        // modes. Timeouts, delays and send inflation put the span past the
        // fault-free message cost — that excess is the fault slice.
        const std::size_t mi = rs.arrival_msg[pid];
        const Message& m = messages[mi];
        PathTerms terms;
        terms.startup = rs.msg_startup[mi];
        terms.word = rs.msg_word[mi];
        terms.other = rs.msg_other[mi];
        const double span_time = terms.startup + terms.word + terms.other;
        const double ideal = message_cost(m, rs.load_factor[mi]);
        causal_->adopt(pid, m.span.parent, m.span.hop, cur,
                       rs.arrival_max[pid] - span_time, rs.arrival_max[pid],
                       terms, std::max(0.0, span_time - ideal));
      }
      next = rs.arrival_max[pid];
    }
    st.clock = next;
    check_deadline(pid);
  }
  // Deliver payloads.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (!rs.deliver[i]) continue;
    const ProcId dst = messages[i].dst;
    if (rs.deliver_dup[i]) inbox_push(dst, Message(messages[i]));
    inbox_push(dst, std::move(messages[i]));
  }
}

void SimMachine::inbox_push(ProcId dst, Message&& m) {
  std::uint32_t slot;
  if (inbox_free_ != kNilSlot) {
    slot = inbox_free_;
    inbox_free_ = inbox_slots_[slot].next;
    inbox_slots_[slot].msg = std::move(m);
  } else {
    require(inbox_slots_.size() < kNilSlot,
            "SimMachine::inbox_push: inbox arena full");
    slot = static_cast<std::uint32_t>(inbox_slots_.size());
    inbox_slots_.push_back(InboxSlot{std::move(m), kNilSlot});
  }
  inbox_slots_[slot].next = kNilSlot;
  if (inbox_head_[dst] == kNilSlot) {
    inbox_head_[dst] = slot;
  } else {
    inbox_slots_[inbox_tail_[dst]].next = slot;
  }
  inbox_tail_[dst] = slot;
  ++pending_;
  pending_high_water_ =
      std::max(pending_high_water_, static_cast<std::uint64_t>(pending_));
}

Message SimMachine::receive(ProcId pid, int tag) {
  require(pid < procs(), "SimMachine::receive: pid out of range");
  std::uint32_t prev = kNilSlot;
  for (std::uint32_t s = inbox_head_[pid]; s != kNilSlot;
       prev = s, s = inbox_slots_[s].next) {
    if (inbox_slots_[s].msg.tag != tag) continue;
    Message out = std::move(inbox_slots_[s].msg);
    const std::uint32_t next = inbox_slots_[s].next;
    if (prev == kNilSlot) {
      inbox_head_[pid] = next;
    } else {
      inbox_slots_[prev].next = next;
    }
    if (inbox_tail_[pid] == s) inbox_tail_[pid] = prev;
    // Release the payload's heap blocks now (the moved-from state may keep
    // capacity) and recycle the slot.
    inbox_slots_[s].msg = Message{};
    inbox_slots_[s].next = inbox_free_;
    inbox_free_ = s;
    --pending_;
    return out;
  }
  throw PreconditionError(
      "SimMachine::receive: no pending message with requested tag");
}

bool SimMachine::has_message(ProcId pid, int tag) const {
  require(pid < procs(), "SimMachine::has_message: pid out of range");
  for (std::uint32_t s = inbox_head_[pid]; s != kNilSlot;
       s = inbox_slots_[s].next) {
    if (inbox_slots_[s].msg.tag == tag) return true;
  }
  return false;
}

std::size_t SimMachine::pending_messages() const noexcept { return pending_; }

void SimMachine::assert_clean_run() const {
  for (ProcId pid = 0; pid < procs(); ++pid) {
    if (inbox_head_[pid] == kNilSlot) continue;
    const Message& m = inbox_slots_[inbox_head_[pid]].msg;
    throw InternalError(
        "SimMachine::assert_clean_run: leftover message with tag " +
        std::to_string(m.tag) + " pending at destination processor " +
        std::to_string(pid) + " (from " + std::to_string(m.src) + ", " +
        std::to_string(pending_messages()) + " pending in total)");
  }
}

void SimMachine::note_abft(bool detected, bool corrected) {
  if (detected) ++fault_stats_.abft_detected;
  if (corrected) ++fault_stats_.abft_corrected;
}

void SimMachine::check_alive(ProcId pid) const {
  const auto fail_at = injector_->fail_time(pid);
  if (fail_at && stats_[pid].clock >= *fail_at) {
    throw ProcessorFailure(pid, *fail_at);
  }
}

double SimMachine::synchronize() {
  const double t = time();
  // Barrier laggards adopt the chain of the processor that set the barrier
  // time — their clock is now explained by its critical path.
  const PhaseId cur = current_phase();
  std::vector<PathTerms> crit_chain;
  if (!aggregate_) {
    for (ProcId pid = 0; pid < procs(); ++pid) {
      if (stats_[pid].clock == t) {
        crit_chain = chain_[pid];
        break;
      }
    }
  }
  std::uint32_t crit_head = CausalGraph::kNoSpan;
  if (causal_) {
    for (ProcId pid = 0; pid < procs(); ++pid) {
      if (stats_[pid].clock == t) {
        crit_head = causal_->head(pid);
        break;
      }
    }
  }
  for (ProcId pid = 0; pid < procs(); ++pid) {
    auto& st = stats_[pid];
    record(pid, TraceEvent::Kind::kWait, st.clock, t);
    st.idle_time += t - st.clock;
    if (t > st.clock) {
      if (aggregate_) {
        phase_total(cur).idle_time += t - st.clock;
      } else {
        phase_cell(cur, pid).idle_time += t - st.clock;
        chain_[pid] = crit_chain;
      }
      // Barrier laggards' clocks are explained by the barrier-setting
      // chain; head adoption is pure metadata, so it applies to unsampled
      // processors too (their own spans just were not recorded).
      if (causal_) causal_->set_head(pid, crit_head);
    }
    st.clock = t;
  }
  return t;
}

void SimMachine::charge_group_comm(std::span<const ProcId> group,
                                   double time_cost,
                                   std::uint64_t words_per_member) {
  require(time_cost >= 0.0, "charge_group_comm: negative time");
  double start = 0.0;
  for (ProcId pid : group) {
    require(pid < procs(), "charge_group_comm: pid out of range");
    start = std::max(start, stats_[pid].clock);
  }
  // As at a barrier, members that wait for the group's latest processor
  // adopt its chain; the modeled charge itself then lands on everyone.
  const PhaseId cur = current_phase();
  std::vector<PathTerms> crit_chain;
  if (!aggregate_) {
    for (ProcId pid : group) {
      if (stats_[pid].clock == start) {
        crit_chain = chain_[pid];
        break;
      }
    }
  }
  std::uint32_t crit_head = CausalGraph::kNoSpan;
  if (causal_) {
    for (ProcId pid : group) {
      if (stats_[pid].clock == start) {
        crit_head = causal_->head(pid);
        break;
      }
    }
  }
  events_ += group.size();
  for (ProcId pid : group) {
    auto& st = stats_[pid];
    if (start > st.clock) {
      record(pid, TraceEvent::Kind::kWait, st.clock, start);
      st.idle_time += start - st.clock;
      if (aggregate_) {
        phase_total(cur).idle_time += start - st.clock;
      } else {
        phase_cell(cur, pid).idle_time += start - st.clock;
        chain_[pid] = crit_chain;
      }
      if (causal_) causal_->set_head(pid, crit_head);
    }
    if (time_cost > 0.0 && causal_on(pid)) {
      PathTerms terms;
      terms.modeled = time_cost;
      causal_->chain(pid, CausalGraph::Kind::kModeled, cur, start,
                     start + time_cost, terms, 0.0);
    }
    record(pid, TraceEvent::Kind::kModeledComm, start, start + time_cost);
    st.comm_time += time_cost;
    if (words_per_member > 0) {
      st.messages_sent += 1;
      st.words_sent += words_per_member;
    }
    if (aggregate_) {
      phase_total(cur).comm_time += time_cost;
      if (words_per_member > 0) {
        phase_total(cur).messages_sent += 1;
        phase_total(cur).words_sent += words_per_member;
      }
    } else {
      phase_cell(cur, pid).comm_time += time_cost;
      chain_cell(pid).modeled += time_cost;
      if (words_per_member > 0) {
        phase_cell(cur, pid).messages_sent += 1;
        phase_cell(cur, pid).words_sent += words_per_member;
      }
    }
    st.clock = start + time_cost;
    check_deadline(pid);
  }
}

void SimMachine::note_alloc(ProcId pid, std::uint64_t words) {
  require(pid < procs(), "note_alloc: pid out of range");
  auto& st = stats_[pid];
  st.words_stored += words;
  st.peak_words_stored = std::max(st.peak_words_stored, st.words_stored);
}

void SimMachine::note_free(ProcId pid, std::uint64_t words) {
  require(pid < procs(), "note_free: pid out of range");
  auto& st = stats_[pid];
  require(st.words_stored >= words, "note_free: freeing more than stored");
  st.words_stored -= words;
}

double SimMachine::clock(ProcId pid) const {
  require(pid < procs(), "SimMachine::clock: pid out of range");
  return stats_[pid].clock;
}

const ProcStats& SimMachine::stats(ProcId pid) const {
  require(pid < procs(), "SimMachine::stats: pid out of range");
  return stats_[pid];
}

double SimMachine::time() const noexcept {
  double t = 0.0;
  for (const auto& st : stats_) t = std::max(t, st.clock);
  return t;
}

std::uint64_t SimMachine::approx_footprint_bytes() const noexcept {
  const auto vec_bytes = [](const auto& v) noexcept -> std::uint64_t {
    return static_cast<std::uint64_t>(v.capacity()) * sizeof(v[0]);
  };
  std::uint64_t total = sizeof(*this);
  total += vec_bytes(stats_);
  total += vec_bytes(inbox_head_) + vec_bytes(inbox_tail_);
  total += vec_bytes(inbox_slots_);
  for (const auto& slot : inbox_slots_) {
    for (const auto& block : slot.msg.blocks) {
      total += static_cast<std::uint64_t>(block.size()) * sizeof(double);
    }
  }
  total += vec_bytes(trace_events_);
  total += vec_bytes(phase_totals_);
  for (const auto& row : phase_stats_) total += vec_bytes(row);
  total += vec_bytes(phase_stats_);
  total += vec_bytes(chain_);
  for (const auto& row : chain_) total += vec_bytes(row);
  total += vec_bytes(scratch_.sends) + vec_bytes(scratch_.recvs) +
           vec_bytes(scratch_.send_busy) + vec_bytes(scratch_.send_span) +
           vec_bytes(scratch_.arrival_max) + vec_bytes(scratch_.arrival_msg) +
           vec_bytes(scratch_.busiest_msg) + vec_bytes(scratch_.in_round) +
           vec_bytes(scratch_.participants) + vec_bytes(scratch_.load_factor) +
           vec_bytes(scratch_.deliver) + vec_bytes(scratch_.deliver_dup) +
           vec_bytes(scratch_.msg_startup) + vec_bytes(scratch_.msg_word) +
           vec_bytes(scratch_.msg_other);
  for (const auto& row : scratch_.adopted) total += vec_bytes(row);
  total += vec_bytes(scratch_.adopted);
  // Sparse traffic cells: unordered_map node ~= key + value + bucket/next
  // pointers. 56 bytes is the usual libstdc++ figure for a 16-byte payload.
  total += static_cast<std::uint64_t>(traffic_.links_used()) * 56;
  if (causal_) total += causal_->approx_bytes();
  return total;
}

RunReport SimMachine::report(std::string algorithm, std::size_t n,
                             double w_useful, bool keep_proc_stats) const {
  RunReport r;
  r.algorithm = std::move(algorithm);
  r.n = n;
  r.p = procs();
  r.params = params_;
  r.t_parallel = time();
  r.w_useful = w_useful;
  for (const auto& st : stats_) {
    r.max_compute_time = std::max(r.max_compute_time, st.compute_time);
    r.max_comm_time = std::max(r.max_comm_time, st.comm_time);
    r.max_idle_time = std::max(r.max_idle_time, st.idle_time);
    r.total_flops += st.flops;
    r.total_messages += st.messages_sent;
    r.total_words += st.words_sent;
    r.max_peak_words = std::max(r.max_peak_words, st.peak_words_stored);
  }
  r.faults = fault_stats_;
  r.engine_footprint_bytes = approx_footprint_bytes();
  if (keep_proc_stats) r.procs = stats_;
  // Phase table + critical-path decomposition. The first processor whose
  // clock attains T_p carries a complete dependency chain for the run (its
  // per-phase terms sum to exactly T_p). Aggregate capture keeps neither
  // chains nor per-processor cells: per-phase totals fill the flops/
  // messages/words columns, the maxima and path terms read as zero.
  ProcId crit = 0;
  for (ProcId pid = 0; pid < procs(); ++pid) {
    if (stats_[pid].clock == r.t_parallel) {
      crit = pid;
      break;
    }
  }
  const auto& crit_chain = chain_[crit];
  for (std::size_t ph = 0; ph < phase_names_.size(); ++ph) {
    PhaseBreakdown b;
    b.name = phase_names_[ph];
    if (aggregate_) {
      if (ph < phase_totals_.size()) {
        b.flops = phase_totals_[ph].flops;
        b.messages = phase_totals_[ph].messages_sent;
        b.words = phase_totals_[ph].words_sent;
      }
    } else if (ph < phase_stats_.size()) {
      for (const auto& cell : phase_stats_[ph]) {
        b.max_compute_time = std::max(b.max_compute_time, cell.compute_time);
        b.max_comm_time = std::max(b.max_comm_time, cell.comm_time);
        b.max_idle_time = std::max(b.max_idle_time, cell.idle_time);
        b.flops += cell.flops;
        b.messages += cell.messages_sent;
        b.words += cell.words_sent;
      }
    }
    if (ph < crit_chain.size()) b.path = crit_chain[ph];
    r.critical_path.compute += b.path.compute;
    r.critical_path.startup += b.path.startup;
    r.critical_path.word += b.path.word;
    r.critical_path.modeled += b.path.modeled;
    r.critical_path.other += b.path.other;
    // Drop the unattributed row when nothing happened outside a phase.
    if (ph == 0 && b.path.total() == 0.0 && b.max_compute_time == 0.0 &&
        b.max_comm_time == 0.0 && b.max_idle_time == 0.0 && b.flops == 0 &&
        b.messages == 0) {
      // Aggregate capture has no maxima; consult the totals so unattributed
      // idle/comm time still keeps the row.
      if (!aggregate_ || phase_totals_.empty() ||
          (phase_totals_[0].compute_time == 0.0 &&
           phase_totals_[0].comm_time == 0.0 &&
           phase_totals_[0].idle_time == 0.0)) {
        continue;
      }
    }
    r.phases.push_back(std::move(b));
  }
  // Engine self-telemetry: how the simulator itself behaved. The wall-clock
  // rates are nondeterministic by nature; everything else is a pure function
  // of the simulated run. None of it is serialized by write_json.
  {
    EngineTelemetry& e = r.engine;
    e.inbox_slots = inbox_slots_.size();
    for (std::uint32_t s = inbox_free_; s != kNilSlot;
         s = inbox_slots_[s].next) {
      ++e.inbox_free;
    }
    e.inbox_pending = pending_;
    e.inbox_high_water = pending_high_water_;
    e.arena_bytes = r.engine_footprint_bytes;
    e.events = events_;
    e.events_per_vtime =
        r.t_parallel > 0.0 ? static_cast<double>(events_) / r.t_parallel : 0.0;
    e.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start_)
                         .count();
    e.events_per_wall_sec =
        e.wall_seconds > 0.0 ? static_cast<double>(events_) / e.wall_seconds
                             : 0.0;
    if (pool_) {
      const auto& wp = pool_->wall_profile();
      e.pool_threads = pool_->size();
      e.pool_batches = wp.batches;
      e.pool_items = wp.items;
      e.pool_busy_seconds = wp.busy_seconds;
    }
    if (causal_) {
      e.causal_spans = causal_->spans().size();
      e.causal_bytes = causal_->approx_bytes();
    }
    // Exported snapshot: the run's registry plus the telemetry as engine.*
    // gauges, so --metrics-out and the Prometheus exposition carry them.
    r.metrics = metrics_;
    const auto gset = [&r](const char* name, double v) {
      r.metrics.gauge(name).set(v);
    };
    gset("engine.inbox.slots", static_cast<double>(e.inbox_slots));
    gset("engine.inbox.free", static_cast<double>(e.inbox_free));
    gset("engine.inbox.pending", static_cast<double>(e.inbox_pending));
    gset("engine.inbox.high_water", static_cast<double>(e.inbox_high_water));
    gset("engine.arena.bytes", static_cast<double>(e.arena_bytes));
    gset("engine.events", static_cast<double>(e.events));
    gset("engine.events.virtual_rate", e.events_per_vtime);
    gset("engine.events.wall_rate", e.events_per_wall_sec);
    if (pool_) {
      gset("engine.pool.threads", static_cast<double>(e.pool_threads));
      gset("engine.pool.batches", static_cast<double>(e.pool_batches));
      gset("engine.pool.items", static_cast<double>(e.pool_items));
      gset("engine.pool.busy_seconds", e.pool_busy_seconds);
    }
    if (causal_) {
      gset("engine.causal.spans", static_cast<double>(e.causal_spans));
      gset("engine.causal.bytes", static_cast<double>(e.causal_bytes));
    }
  }
  // Causal DAG summary: the measured critical path, walked from the
  // happens-before DAG itself (independent of the chain_ bookkeeping), and
  // the fault-bearing spans on it. Only a complete DAG (trace_sample >= 1)
  // yields a well-defined path.
  if (causal_) {
    r.causal.enabled = true;
    r.causal.complete = causal_->complete();
    r.causal.spans = causal_->spans().size();
    r.causal.bytes = causal_->approx_bytes();
    if (causal_->complete()) {
      const auto cp = causal_->critical_path(crit);
      r.causal.path_spans = cp.spans.size();
      r.causal.measured = cp.terms;
      r.causal.fault_overhead = cp.fault_overhead;
      for (const std::uint32_t idx : cp.spans) {
        const auto& s = causal_->spans()[idx];
        if (s.fault_overhead <= 0.0) continue;
        CausalSpanNote note;
        note.kind = std::string(CausalGraph::kind_name(s.kind));
        note.pid = s.pid;
        note.phase = s.phase < phase_names_.size() ? phase_names_[s.phase]
                                                   : std::string();
        note.start = s.start;
        note.end = s.end;
        note.overhead = s.fault_overhead;
        r.causal.fault_spans.push_back(std::move(note));
      }
    }
  }
  return r;
}

void SimMachine::reset() {
  for (auto& st : stats_) st = ProcStats{};
  inbox_slots_.clear();
  inbox_free_ = kNilSlot;
  std::fill(inbox_head_.begin(), inbox_head_.end(), kNilSlot);
  std::fill(inbox_tail_.begin(), inbox_tail_.end(), kNilSlot);
  pending_ = 0;
  // Round scratch: clear whatever the last round touched (cheap, and makes
  // reset() equivalent to a freshly constructed machine).
  for (const ProcId pid : scratch_.participants) {
    scratch_.sends[pid] = 0;
    scratch_.recvs[pid] = 0;
    scratch_.send_busy[pid] = 0.0;
    scratch_.send_span[pid] = 0.0;
    scratch_.arrival_max[pid] = 0.0;
    scratch_.arrival_msg[pid] = kNoMessage;
    scratch_.busiest_msg[pid] = kNoMessage;
    scratch_.in_round[pid] = 0;
  }
  scratch_.participants.clear();
  trace_events_.clear();
  fault_stats_ = FaultStats{};
  exchange_round_ = 0;
  phase_names_.assign(1, std::string());
  phase_stack_.clear();
  phase_stats_.clear();
  phase_totals_.clear();
  for (auto& row : chain_) row.clear();
  if (causal_) causal_->reset();
  pending_high_water_ = 0;
  events_ = 0;
  wall_start_ = std::chrono::steady_clock::now();
  metrics_.reset();
  traffic_ = TrafficMatrix(procs());
}

}  // namespace hpmm
