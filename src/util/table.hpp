#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace hpmm {

/// Column-oriented table builder used by the benchmark harnesses to print the
/// paper's tables and figure series in aligned plain-text, Markdown or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row. Cells are appended with add()/add_num().
  Table& begin_row();

  /// Append a pre-formatted cell to the current row.
  Table& add(std::string cell);

  /// Append a numeric cell formatted with `precision` significant digits
  /// (fixed for moderate magnitudes, scientific for extreme ones).
  Table& add_num(double value, int precision = 4);

  /// Append an integer cell.
  Table& add_int(long long value);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// The raw text of cell (row, col); throws if out of range.
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Render with aligned columns, a header rule, one row per line.
  void print_aligned(std::ostream& os) const;

  /// Render as GitHub-flavoured Markdown.
  void print_markdown(std::ostream& os) const;

  /// Render as CSV (no quoting of commas — callers avoid commas in cells).
  void print_csv(std::ostream& os) const;

  /// Render as a JSON array of objects keyed by the headers; numeric-looking
  /// cells are emitted unquoted.
  void print_json(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double with `precision` significant digits, choosing fixed or
/// scientific notation by magnitude. "1234", "0.001234", "1.234e+09".
std::string format_number(double value, int precision = 4);

/// Format a count with SI-style suffix: 1500 -> "1.5K", 2.6e18 -> "2.6E".
std::string format_si(double value, int precision = 3);

}  // namespace hpmm
